#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "sim/network_sim.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs::sim {
namespace {

using model::ArcId;
using model::ConstraintGraph;
using model::ImplementationGraph;
using model::Path;
using model::VertexId;

/// One channel over one radio link: an M/D/1 queue whose analytics we can
/// sanity-check.
struct SingleLink {
  ConstraintGraph cg;
  commlib::Library lib = commlib::wan_library();
  std::unique_ptr<ImplementationGraph> impl;

  explicit SingleLink(double bandwidth = 10.0) {
    const VertexId u = cg.add_port("u", {0, 0});
    const VertexId v = cg.add_port("v", {3, 4});
    cg.add_channel(u, v, bandwidth);
    impl = std::make_unique<ImplementationGraph>(cg, lib);
    impl->register_path(ArcId{0},
                        Path{{impl->add_link_arc(u, v, 0)}});  // radio, 11
  }
};

TEST(NetworkSim, DeterministicForSeed) {
  const SingleLink s;
  SimConfig cfg;
  cfg.duration = 200.0;
  const SimReport a = simulate_network(*s.impl, cfg);
  const SimReport b = simulate_network(*s.impl, cfg);
  ASSERT_EQ(a.channels.size(), 1u);
  EXPECT_EQ(a.channels[0].injected, b.channels[0].injected);
  EXPECT_DOUBLE_EQ(a.channels[0].mean_latency, b.channels[0].mean_latency);
  cfg.seed = 2;
  const SimReport c = simulate_network(*s.impl, cfg);
  EXPECT_NE(a.channels[0].injected, c.channels[0].injected);
}

TEST(NetworkSim, UtilizationMatchesOfferedLoad) {
  // Offered rate = load * b(a) / size = 0.8 * 10; service = size / 11.
  // Expected utilization = rate * service = 0.8 * 10/11 = 0.7272...
  const SingleLink s;
  SimConfig cfg;
  cfg.duration = 5000.0;
  cfg.load = 0.8;
  const SimReport r = simulate_network(*s.impl, cfg);
  EXPECT_NEAR(r.links[0].utilization, 0.8 * 10.0 / 11.0, 0.03);
  EXPECT_TRUE(r.stable());
  // Throughput delivered matches the offered bandwidth fraction.
  EXPECT_NEAR(r.channels[0].throughput, 8.0, 0.4);
  // Latency at least the no-queue floor: service + propagation.
  const double floor = 1.0 / 11.0 + 5.0 * cfg.delay.link_delay_per_length;
  EXPECT_GE(r.channels[0].mean_latency, floor - 1e-9);
}

TEST(NetworkSim, OverloadSaturatesAndDestabilizes) {
  const SingleLink s;
  SimConfig cfg;
  cfg.duration = 2000.0;
  cfg.load = 1.5;  // 15 offered over an 11-capacity radio
  const SimReport r = simulate_network(*s.impl, cfg);
  EXPECT_GT(r.links[0].utilization, 0.98);
  EXPECT_FALSE(r.stable());
  // Delivered throughput clips at roughly the link capacity.
  EXPECT_LT(r.channels[0].throughput, 11.5);
  EXPECT_GT(r.channels[0].mean_latency, 1.0);  // queues exploded
}

TEST(NetworkSim, ParallelPathsSplitLoad) {
  // 20 Mbps over two radios: both links share the flow per the planned
  // split, each staying under capacity.
  ConstraintGraph cg;
  const VertexId u = cg.add_port("u", {0, 0});
  const VertexId v = cg.add_port("v", {3, 4});
  cg.add_channel(u, v, 20.0);
  const commlib::Library lib = commlib::wan_library();
  ImplementationGraph impl(cg, lib);
  const ArcId l1 = impl.add_link_arc(u, v, 0);
  const ArcId l2 = impl.add_link_arc(u, v, 0);
  impl.register_path(ArcId{0}, Path{{l1}});
  impl.register_path(ArcId{0}, Path{{l2}});
  SimConfig cfg;
  cfg.duration = 3000.0;
  cfg.load = 0.9;
  const SimReport r = simulate_network(impl, cfg);
  EXPECT_TRUE(r.stable());
  EXPECT_GT(r.links[l1.index()].utilization, 0.3);
  EXPECT_GT(r.links[l2.index()].utilization, 0.3);
  EXPECT_NEAR(r.channels[0].throughput, 18.0, 1.0);
}

TEST(NetworkSim, SynthesizedWanSustainsRatedLoad) {
  const ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  const synth::SynthesisResult result = synth::synthesize(cg, lib).value();
  SimConfig cfg;
  cfg.duration = 1500.0;
  cfg.load = 0.85;
  cfg.delay.link_delay_per_length = 0.005;  // ~5 us/km in ms
  const SimReport r = simulate_network(*result.implementation, cfg);
  EXPECT_TRUE(r.stable());
  // The shared optical trunk carries all three merged channels: its
  // utilization is tiny (30/1000) but its served count dominates.
  for (const ChannelSimStats& c : r.channels) {
    EXPECT_GT(c.delivered, 0u) << c.name;
  }
}

TEST(NetworkSim, EmptyImplementationYieldsEmptyReport) {
  ConstraintGraph cg;
  const VertexId u = cg.add_port("u", {0, 0});
  const VertexId v = cg.add_port("v", {1, 0});
  cg.add_channel(u, v, 5.0);
  const commlib::Library lib = commlib::wan_library();
  const ImplementationGraph impl(cg, lib);  // nothing registered
  const SimReport r = simulate_network(impl, {});
  ASSERT_EQ(r.channels.size(), 1u);
  EXPECT_EQ(r.channels[0].injected, 0u);
  EXPECT_TRUE(r.stable());  // vacuously
}

}  // namespace
}  // namespace cdcs::sim
