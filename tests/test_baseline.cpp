#include <gtest/gtest.h>

#include "baseline/baselines.hpp"
#include "commlib/standard_libraries.hpp"
#include "workloads/random_gen.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs::baseline {
namespace {

TEST(PointToPoint, WanCostMatchesHandComputation) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const BaselineResult r =
      point_to_point_baseline(cg, commlib::wan_library());
  EXPECT_EQ(r.groups.size(), 8u);
  // Every 10 Mbps channel fits a radio at $2000/km: total = 2000 * sum(d).
  double total_km = 0.0;
  for (model::ArcId a : cg.arcs()) total_km += cg.distance(a);
  EXPECT_NEAR(r.cost, 2000.0 * total_km, 1e-6);
}

TEST(PointToPoint, ThrowsWhenInfeasible) {
  model::ConstraintGraph cg;
  const model::VertexId u = cg.add_port("u", {0, 0});
  const model::VertexId v = cg.add_port("v", {10, 0});
  cg.add_channel(u, v, 1.0);
  commlib::Library lib("weak");
  lib.add_link(commlib::Link{
      .name = "short", .max_span = 1.0, .bandwidth = 5.0, .fixed_cost = 1.0});
  EXPECT_THROW(point_to_point_baseline(cg, lib), std::runtime_error);
}

TEST(GreedyMerge, WanIsAGreedyTrap) {
  // The optimum merges {a4,a5,a6}, but every 2-way sub-merging exactly TIES
  // its separate radios (optical $4000/km == two radios at $2000/km each),
  // so pairwise-greedy never takes the first step and stays at the
  // point-to-point solution. This is precisely the local optimum the
  // paper's exact candidate-generation + UCP pipeline escapes.
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  const BaselineResult greedy = greedy_merge_baseline(cg, lib);
  const BaselineResult ptp = point_to_point_baseline(cg, lib);
  EXPECT_NEAR(greedy.cost, ptp.cost, 1e-6);
  EXPECT_EQ(greedy.groups.size(), 8u);

  // Confirm the tie that traps greedy: every pair within {a4,a5,a6} merges
  // at exactly its separate cost.
  for (std::uint32_t i = 3; i <= 5; ++i) {
    for (std::uint32_t j = i + 1; j <= 5; ++j) {
      const auto pair_plan = synth::price_merging(
          cg, lib, {model::ArcId{i}, model::ArcId{j}});
      ASSERT_TRUE(pair_plan.has_value());
      const double separate = 2000.0 * (cg.distance(model::ArcId{i}) +
                                        cg.distance(model::ArcId{j}));
      EXPECT_NEAR(pair_plan->cost, separate, 1.0);
    }
  }

  // The 3-way merging, by contrast, saves outright.
  const auto triple = synth::price_merging(
      cg, lib, {model::ArcId{3}, model::ArcId{4}, model::ArcId{5}});
  ASSERT_TRUE(triple.has_value());
  const double separate3 =
      2000.0 * (cg.distance(model::ArcId{3}) + cg.distance(model::ArcId{4}) +
                cg.distance(model::ArcId{5}));
  EXPECT_LT(triple->cost, separate3 - 100000.0);
}

TEST(GreedyMerge, NeverWorseThanPointToPoint) {
  for (int seed = 0; seed < 6; ++seed) {
    workloads::RandomWorkloadParams params;
    params.seed = seed;
    params.num_channels = 7;
    const model::ConstraintGraph cg = workloads::random_workload(params);
    const commlib::Library lib = commlib::wan_library();
    EXPECT_LE(greedy_merge_baseline(cg, lib).cost,
              point_to_point_baseline(cg, lib).cost + 1e-9)
        << "seed " << seed;
  }
}

TEST(Exhaustive, RefusesLargeInstances) {
  workloads::RandomWorkloadParams params;
  params.num_channels = 12;
  const model::ConstraintGraph cg = workloads::random_workload(params);
  EXPECT_THROW(
      exhaustive_partition_optimum(cg, commlib::wan_library(),
                                   model::CapacityPolicy::kSharedSum, 10),
      std::invalid_argument);
}

TEST(Exhaustive, TinyInstanceByHand) {
  // Two parallel 10 Mbps channels over 10 km: the best partition merges
  // them onto one optical link ($40,000), matching two separate radios --
  // with three channels the merge wins outright.
  model::ConstraintGraph cg;
  const model::VertexId u = cg.add_port("u", {0, 0});
  const model::VertexId v = cg.add_port("v", {10, 0});
  cg.add_channel(u, v, 10.0);
  cg.add_channel(u, v, 10.0);
  cg.add_channel(u, v, 10.0);
  const BaselineResult best =
      exhaustive_partition_optimum(cg, commlib::wan_library());
  EXPECT_NEAR(best.cost, 40000.0, 1e-6);
  EXPECT_EQ(best.groups.size(), 1u);
  EXPECT_EQ(best.groups.front().size(), 3u);
}

TEST(Exhaustive, OrderingOfGroupsIrrelevant) {
  // The partition enumerator must consider singleton-first and
  // merged-first shapes equally; verify group count on an instance whose
  // optimum is all singletons.
  model::ConstraintGraph cg;
  const model::VertexId a = cg.add_port("a", {0, 0});
  const model::VertexId b = cg.add_port("b", {5, 0});
  const model::VertexId c = cg.add_port("c", {0, 5});
  const model::VertexId d = cg.add_port("d", {5, 5});
  cg.add_channel(a, b, 5.0);
  cg.add_channel(c, d, 5.0);
  const BaselineResult best =
      exhaustive_partition_optimum(cg, commlib::wan_library());
  EXPECT_EQ(best.groups.size(), 2u);
  EXPECT_NEAR(best.cost, 2 * 5.0 * 2000.0, 1e-6);
}

}  // namespace
}  // namespace cdcs::baseline
