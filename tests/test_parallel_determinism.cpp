// The engine's headline guarantee for --threads N (docs/performance.md):
// parallel pricing is BIT-IDENTICAL to serial. Enumeration, pruning, and
// the cover solve stay serial; only the pure per-subset pricing fans out,
// and results are folded back in enumeration order. So for any thread
// count the candidate set, the chosen cover, the total cost, and the
// degradation stage must match the single-threaded run exactly -- not
// within a tolerance, exactly.
#include <sstream>

#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "synth/pricing_cache.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/mpeg4_soc.hpp"
#include "workloads/noc_mesh.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs::synth {
namespace {

/// Exact textual fingerprint of everything the determinism guarantee
/// covers. Costs are printed with full precision so a 1-ulp divergence
/// between runs fails the comparison.
std::string fingerprint(const SynthesisResult& r) {
  std::ostringstream os;
  os.precision(17);
  for (const Candidate& c : r.candidates()) {
    os << '[';
    for (model::ArcId a : c.arcs) os << a.value << ',';
    os << "] cost=" << c.cost << " s=" << c.ptp.has_value()
       << c.merging.has_value() << c.chain.has_value() << c.tree.has_value()
       << '\n';
  }
  os << "chosen:";
  for (std::size_t j : r.cover.chosen) os << ' ' << j;
  os << "\ntotal=" << r.total_cost
     << "\nstage=" << to_string(r.degradation.stage)
     << "\nucp_nodes=" << r.cover.nodes_explored << '\n';
  return os.str();
}

void expect_thread_invariant(const model::ConstraintGraph& cg,
                             const commlib::Library& lib,
                             SynthesisOptions options) {
  options.threads = 1;
  const auto serial = synthesize(cg, lib, options);
  ASSERT_TRUE(serial.ok()) << serial.status().to_string();
  const std::string want = fingerprint(*serial);
  EXPECT_EQ(serial->candidate_set.stats.threads_used, 1u);

  for (int threads : {2, 8}) {
    options.threads = threads;
    const auto parallel = synthesize(cg, lib, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().to_string();
    EXPECT_EQ(fingerprint(*parallel), want) << "threads=" << threads;
    EXPECT_EQ(parallel->candidate_set.stats.threads_used,
              static_cast<std::size_t>(threads));
  }
}

TEST(ParallelDeterminism, Wan2002) {
  expect_thread_invariant(workloads::wan2002(), commlib::wan_library(), {});
}

TEST(ParallelDeterminism, Wan2002MaxPolicyLean) {
  SynthesisOptions options;
  options.policy = model::CapacityPolicy::kMaxPerConstraint;
  options.drop_unprofitable = true;
  expect_thread_invariant(workloads::wan2002(), commlib::wan_library(),
                          options);
}

TEST(ParallelDeterminism, Mpeg4Soc) {
  expect_thread_invariant(workloads::mpeg4_soc(), commlib::soc_library(), {});
}

TEST(ParallelDeterminism, NocMeshHotspot) {
  workloads::NocMeshParams p;
  p.rows = 3;
  p.cols = 3;
  const model::ConstraintGraph cg = workloads::noc_mesh(p);
  expect_thread_invariant(cg, commlib::noc_library(), {});
}

TEST(ParallelDeterminism, SharedPricingCacheDoesNotPerturbResults) {
  // A warm cross-run cache changes how plans are OBTAINED, never what they
  // are: run 1 (cold) and run 2 (all hits) must fingerprint identically,
  // in both serial and parallel mode.
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();

  SynthesisOptions cold;
  const auto baseline = synthesize(cg, lib, cold);
  ASSERT_TRUE(baseline.ok());
  const std::string want = fingerprint(*baseline);

  PricingCache cache;
  for (int threads : {1, 8}) {
    SynthesisOptions options;
    options.threads = threads;
    options.pricing_cache = &cache;
    const auto run = synthesize(cg, lib, options);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(fingerprint(*run), want)
        << "threads=" << threads << " cached=" << cache.stats().hits;
  }
  EXPECT_GT(cache.stats().hits, 0u);  // second run actually hit the cache
}

}  // namespace
}  // namespace cdcs::synth
