#include <gtest/gtest.h>

#include "synth/latency_insensitive.hpp"
#include "workloads/mpeg4_soc.hpp"

namespace cdcs::synth {
namespace {

TEST(DsmSegment, DegeneratesToPlainSegmentation) {
  // Clock reach beyond the wire: no latches, repeaters = ceil(L/l)-1.
  DsmParams p{.l_crit = 0.6, .clock_reach = 100.0};
  const DsmSegmentation s = dsm_segment(2.45, p);
  EXPECT_EQ(s.buffers, 4);
  EXPECT_EQ(s.latches, 0);
  EXPECT_EQ(s.pipeline_depth, 0);
  EXPECT_DOUBLE_EQ(s.cost, 4.0);
}

TEST(DsmSegment, LatchesReplaceBuffersOneForOne) {
  // L = 2.45, l_crit 0.6 -> 4 repeaters total; clock reach 1.0 -> crosses 2
  // clock boundaries -> 2 latches + 2 buffers.
  DsmParams p{.l_crit = 0.6, .clock_reach = 1.0, .buffer_cost = 1.0,
              .latch_cost = 3.0};
  const DsmSegmentation s = dsm_segment(2.45, p);
  EXPECT_EQ(s.buffers + s.latches, 4);
  EXPECT_EQ(s.latches, 2);
  EXPECT_EQ(s.pipeline_depth, 2);
  EXPECT_DOUBLE_EQ(s.cost, 2.0 * 1.0 + 2.0 * 3.0);
}

TEST(DsmSegment, LatchDemandCappedByRepeaterCount) {
  // Pathological: clock reach shorter than l_crit would demand more latches
  // than there are repeater sites; the cap keeps the model sane.
  DsmParams p{.l_crit = 1.0, .clock_reach = 0.2};
  const DsmSegmentation s = dsm_segment(2.5, p);
  EXPECT_EQ(s.buffers, 0);
  EXPECT_EQ(s.latches, 2);  // only ceil(2.5/1)-1 = 2 sites exist
}

TEST(DsmSegment, ShortWireNeedsNothing) {
  DsmParams p{.l_crit = 0.6, .clock_reach = 5.0};
  const DsmSegmentation s = dsm_segment(0.5, p);
  EXPECT_EQ(s.buffers, 0);
  EXPECT_EQ(s.latches, 0);
  EXPECT_DOUBLE_EQ(s.cost, 0.0);
}

TEST(DsmSegment, ExactMultiplesHandled) {
  DsmParams p{.l_crit = 0.6, .clock_reach = 1.2};
  const DsmSegmentation s = dsm_segment(1.2, p);  // exactly 2 segments
  EXPECT_EQ(s.buffers + s.latches, 1);
  EXPECT_EQ(s.latches, 0);  // exactly one clock period: no boundary crossed
}

TEST(DsmSegment, RejectsBadInputs) {
  EXPECT_THROW(dsm_segment(0.0, {}), std::invalid_argument);
  EXPECT_THROW(dsm_segment(-1.0, {}), std::invalid_argument);
  DsmParams bad;
  bad.l_crit = 0.0;
  EXPECT_THROW(dsm_segment(1.0, bad), std::invalid_argument);
  bad = {};
  bad.clock_reach = -1.0;
  EXPECT_THROW(dsm_segment(1.0, bad), std::invalid_argument);
}

TEST(DsmPlan, Mpeg4At018MicronMatchesFigure5) {
  // With a generous clock reach (0.18u), the DSM planner must reproduce the
  // paper's 55 stateless repeaters with zero added latency.
  const model::ConstraintGraph cg = workloads::mpeg4_soc();
  const DsmPlan plan = dsm_plan(cg, {.l_crit = 0.6, .clock_reach = 12.0});
  EXPECT_EQ(plan.total_buffers, 55);
  EXPECT_EQ(plan.total_latches, 0);
  EXPECT_DOUBLE_EQ(plan.total_cost, 55.0);
  EXPECT_EQ(plan.rows.size(), cg.num_channels());
}

TEST(DsmPlan, ShrinkingTechnologyIntroducesLatches) {
  const model::ConstraintGraph cg = workloads::mpeg4_soc();
  const DsmPlan old_node = dsm_plan(cg, {.l_crit = 0.6, .clock_reach = 12.0});
  const DsmPlan new_node = dsm_plan(cg, {.l_crit = 0.3, .clock_reach = 1.5});
  EXPECT_EQ(old_node.total_latches, 0);
  EXPECT_GT(new_node.total_latches, 0);
  // Total repeater sites grow as l_crit shrinks.
  EXPECT_GT(new_node.total_buffers + new_node.total_latches,
            old_node.total_buffers);
  // Latches are costlier, so total cost rises superlinearly.
  EXPECT_GT(new_node.total_cost, 2.0 * old_node.total_cost);
}

}  // namespace
}  // namespace cdcs::synth
