// Chaos soak for the durability layer: >= 200 seeded iterations drive
// random edit batches through journaled Engine sessions while a rotating
// FaultPlan fires every registered fault site with every trigger kind.
// After EVERY apply -- success or injected failure -- the session must hold
// its invariants: a failed apply leaves the graph byte-identical to its
// pre-apply state (all-or-nothing), the journal on disk always reads back
// cleanly, and a clean-options Engine::recover() of that journal agrees
// with the live session's graph. The suite also pins schedule determinism
// (identical seed + plan => identical fault schedule) and the acceptance
// byte-equivalence pin for a failed apply. CI runs this under ASan+UBSan
// (chaos-smoke job).
#include <cstdint>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "io/journal.hpp"
#include "io/text_format.hpp"
#include "model/delta.hpp"
#include "support/fault.hpp"
#include "synth/engine.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs {
namespace {

using support::FaultInjector;
using support::FaultPlan;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "cdcs_chaos_" + name;
}

std::string graph_bytes(const model::ConstraintGraph& cg) {
  return io::write_constraint_graph(cg);
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string fingerprint(const synth::SynthesisResult& r) {
  std::ostringstream os;
  os.precision(17);
  for (const synth::Candidate& c : r.candidates()) {
    os << '[';
    for (model::ArcId a : c.arcs) os << a.value << ',';
    os << "] cost=" << c.cost << '\n';
  }
  os << "chosen:";
  for (std::size_t j : r.cover.chosen) os << ' ' << j;
  os << "\ntotal=" << r.total_cost
     << "\nstage=" << to_string(r.degradation.stage)
     << "\nucp_nodes=" << r.cover.nodes_explored << '\n';
  return os.str();
}

/// Small valid-by-construction random edit batches (the chaos sibling of
/// test_incremental.cpp's ScriptGen): retunes, port nudges, new traffic.
class ChaosGen {
 public:
  explicit ChaosGen(std::uint32_t seed) : rng_(seed) {}

  model::Delta next_batch(model::ConstraintGraph& shadow) {
    model::Delta batch;
    const int n = 1 + static_cast<int>(rng_() % 2);
    for (int i = 0; i < n; ++i) {
      model::Delta one;
      one.ops.push_back(next_op(shadow));
      const auto effect = model::apply_delta(shadow, one);
      EXPECT_TRUE(effect.ok()) << effect.status().to_string();
      batch.ops.push_back(std::move(one.ops.front()));
    }
    return batch;
  }

 private:
  model::EditOp next_op(const model::ConstraintGraph& shadow) {
    const std::vector<model::VertexId> ports = shadow.ports();
    while (true) {
      switch (rng_() % 4) {
        case 0: {
          const model::ArcId a{
              static_cast<std::uint32_t>(rng_() % shadow.num_channels())};
          return model::SetBandwidthOp{
              shadow.channel(a).name,
              1.0 + static_cast<double>(rng_() % 390) / 10.0};
        }
        case 1:
        case 2: {
          const model::VertexId v = ports[rng_() % ports.size()];
          const geom::Point2D p = shadow.port(v).position;
          return model::MovePortOp{shadow.port(v).name,
                                   {p.x + jitter(), p.y + jitter()}};
        }
        default: {
          const model::VertexId u = ports[rng_() % ports.size()];
          const model::VertexId v = ports[rng_() % ports.size()];
          if (u == v) continue;
          return model::AddArcOp{"ce" + std::to_string(counter_++),
                                 shadow.port(u).name, shadow.port(v).name,
                                 1.0 + static_cast<double>(rng_() % 200) / 10.0};
        }
      }
    }
  }

  double jitter() { return (static_cast<double>(rng_() % 41) - 20.0) / 10.0; }

  std::mt19937 rng_;
  int counter_ = 0;
};

/// One fault plan per soak iteration: rotate through every registered site
/// and all three trigger kinds, always seeded for reproducibility.
std::string plan_for_iteration(int i) {
  const auto& sites = support::all_fault_sites();
  const std::string site(sites[static_cast<std::size_t>(i) % sites.size()]);
  std::string rule;
  switch ((i / static_cast<int>(sites.size())) % 3) {
    case 0:
      rule = site + "@" + std::to_string(1 + i % 3);
      break;
    case 1:
      rule = site + "%" + std::to_string(1 + i % 2);
      break;
    default:
      rule = site + "~0.4";
      break;
  }
  return rule + ";seed=" + std::to_string(1000 + i);
}

// ---------------------------------------------------------------------------
// The soak (>= 200 iterations; ASan+UBSan in CI's chaos-smoke job)
// ---------------------------------------------------------------------------

TEST(ChaosSoak, JournaledSessionsSurviveEveryFaultSite) {
  constexpr int kIterations = 240;  // 10 sites x 3 triggers x 8 rounds
  constexpr int kBatches = 3;
  const model::ConstraintGraph base = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();

  int injected_failures = 0;
  int successful_applies = 0;
  int degraded_applies = 0;
  for (int i = 0; i < kIterations; ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i) + " plan " +
                 plan_for_iteration(i));
    const auto plan = FaultPlan::parse(plan_for_iteration(i));
    ASSERT_TRUE(plan.ok()) << plan.status().to_string();

    synth::SynthesisOptions options;
    options.threads = 1 + i % 2;
    options.fault_injection.injector = std::make_shared<FaultInjector>(*plan);
    // Cover solves go through the deterministic parallel engine so the
    // rotation exercises the ucp.frontier site; WAN instances sit under
    // the dense-DP row cutoff, so the shortcut must be off for
    // branch-and-bound (and its frontier) to run at all.
    options.solver.mode = ucp::BnbMode::kRounds;
    options.solver.threads = options.threads;
    options.solver.dense_dp_max_rows = 0;

    synth::Engine engine(base, lib, options);
    const std::string journal = temp_path("soak_" + std::to_string(i % 8) +
                                          ".journal");
    // open_journal consults the io.journal.open site, so it may itself be
    // the injected failure; a session without a journal is still sound.
    const bool journaled = engine.open_journal(journal).ok();

    ChaosGen gen(0xC0FFEE + static_cast<std::uint32_t>(i));
    model::ConstraintGraph shadow = engine.graph();
    for (int b = 0; b < kBatches; ++b) {
      const model::Delta batch = gen.next_batch(shadow);
      const std::string before = graph_bytes(engine.graph());
      const auto result = engine.apply(batch);
      if (result.ok()) {
        ++successful_applies;
        if (result->degradation.degraded()) ++degraded_applies;
        ASSERT_GT(result->total_cost, 0.0);
        ASSERT_TRUE(result->cover.chosen.size() > 0);
      } else {
        ++injected_failures;
        // Clean failure: a real Status, and the session graph rolled back
        // byte-identically (all-or-nothing).
        ASSERT_FALSE(result.status().to_string().empty());
        ASSERT_EQ(graph_bytes(engine.graph()), before);
        // Re-sync the shadow: the batch was NOT applied.
        shadow = engine.graph();
      }
      if (journaled && engine.journaling()) {
        // Whatever just happened, the on-disk journal must read back
        // cleanly and replay to the live session's graph.
        const auto contents = io::read_journal(journal);
        ASSERT_TRUE(contents.ok()) << contents.status().to_string();
        model::ConstraintGraph replayed = contents->base;
        for (const model::Delta& d : contents->deltas) {
          ASSERT_TRUE(model::apply_delta(replayed, d).ok());
        }
        ASSERT_EQ(graph_bytes(replayed), graph_bytes(engine.graph()));
      }
    }

    if (journaled && engine.journaling()) {
      // Clean-options recovery of the journal agrees with the live session.
      auto recovered = synth::Engine::recover(journal, lib);
      ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
      ASSERT_EQ(graph_bytes((*recovered)->graph()), graph_bytes(engine.graph()));
    }
  }
  // The rotation must exercise every outcome heavily: hard failures (the
  // engine.apply / io.journal.* / engine.recover sites), degraded-but-valid
  // results (the ucp.* / pricer.merge ladder sites), and clean successes.
  // All three counts are deterministic given the seeds above.
  // (The frontier site degrades the cover rather than failing the apply,
  // so growing the registry to 10 sites shifted a slice of the rotation
  // from hard failures to degraded-but-valid results.)
  EXPECT_GT(injected_failures, 25);
  EXPECT_GT(degraded_applies, 50);
  EXPECT_GT(successful_applies, 200);
}

// ---------------------------------------------------------------------------
// Schedule determinism
// ---------------------------------------------------------------------------

TEST(ChaosSoak, IdenticalSeedAndPlanGiveIdenticalFaultSchedule) {
  // Replay one probabilistic chaos iteration twice: the injected-failure
  // pattern and the injector's hit/fire accounting must match exactly.
  const auto run = [] {
    synth::SynthesisOptions options;
    options.fault_injection.injector = std::make_shared<FaultInjector>(
        FaultPlan::parse("ucp.solve~0.5;pricer.merge~0.2;seed=77").value());
    synth::Engine engine(workloads::wan2002(), commlib::wan_library(),
                         options);
    ChaosGen gen(99);
    model::ConstraintGraph shadow = engine.graph();
    std::vector<std::string> outcomes;
    for (int b = 0; b < 6; ++b) {
      const auto result = engine.apply(gen.next_batch(shadow));
      if (result.ok()) {
        outcomes.push_back("ok stage=" +
                           std::string(to_string(result->degradation.stage)));
      } else {
        outcomes.push_back("fail " + result.status().to_string());
        shadow = engine.graph();
      }
    }
    std::ostringstream os;
    for (const auto& [site, s] :
         options.fault_injection.injector->stats()) {
      os << site << ":" << s.hits << "/" << s.fires << ";";
    }
    return std::make_pair(outcomes, os.str());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// ---------------------------------------------------------------------------
// All-or-nothing acceptance pin: byte-equivalence after a failed apply
// ---------------------------------------------------------------------------

TEST(ChaosSoak, FailedApplyIsByteEquivalentToPreApplyState) {
  synth::SynthesisOptions options;
  // Hit 1 = the first apply (succeeds untouched), hit 2 = the second apply
  // fails AFTER the journal append and the state mutation -- the deepest
  // rollback path.
  options.fault_injection.injector = std::make_shared<FaultInjector>(
      FaultPlan::parse("engine.apply@2").value());
  synth::Engine engine(workloads::wan2002(), commlib::wan_library(), options);
  const std::string journal = temp_path("all_or_nothing.journal");
  ASSERT_TRUE(engine.open_journal(journal).ok());

  model::Delta first;
  first.ops.push_back(model::SetBandwidthOp{"a3", 25.0});
  const auto ok1 = engine.apply(first);
  ASSERT_TRUE(ok1.ok()) << ok1.status().to_string();

  const std::string graph_before = graph_bytes(engine.graph());
  const std::string journal_before = file_bytes(journal);
  const auto stats_before = engine.stats();

  model::Delta second;
  second.ops.push_back(model::SetBandwidthOp{"a1", 17.0});
  const auto failed = engine.apply(second);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), support::ErrorCode::kInternal);

  // Byte-equivalence: graph, journal file, and session counters all
  // exactly as before the failed apply.
  EXPECT_EQ(graph_bytes(engine.graph()), graph_before);
  EXPECT_EQ(file_bytes(journal), journal_before);
  const auto stats_after = engine.stats();
  EXPECT_EQ(stats_after.applies, stats_before.applies);
  EXPECT_EQ(stats_after.cover_solves, stats_before.cover_solves);
  EXPECT_EQ(stats_after.cover_reuses, stats_before.cover_reuses);
  EXPECT_EQ(stats_after.revision, stats_before.revision);

  // The nth-hit rule is spent: retrying the same batch succeeds and is
  // bit-identical to cold synthesis of the edited graph.
  const auto retried = engine.apply(second);
  ASSERT_TRUE(retried.ok()) << retried.status().to_string();
  model::ConstraintGraph edited = workloads::wan2002();
  ASSERT_TRUE(model::apply_delta(edited, first).ok());
  ASSERT_TRUE(model::apply_delta(edited, second).ok());
  const auto cold =
      synth::synthesize(edited, commlib::wan_library(), synth::SynthesisOptions{});
  ASSERT_TRUE(cold.ok()) << cold.status().to_string();
  EXPECT_EQ(fingerprint(*retried), fingerprint(*cold));
}

TEST(ChaosSoak, JournalAppendExhaustionRollsBackTheApply) {
  synth::SynthesisOptions options;
  // Every io.journal.write hit fires -> open_journal's snapshot append
  // would already fail, so arm the plan only after the journal exists.
  synth::Engine engine(workloads::wan2002(), commlib::wan_library(), options);
  const std::string journal = temp_path("append_exhaustion.journal");
  io::JournalOptions journal_options;
  journal_options.injector = std::make_shared<FaultInjector>(
      FaultPlan::parse("io.journal.write@2;io.journal.write@3;"
                       "io.journal.write@4")
          .value());
  ASSERT_TRUE(engine.open_journal(journal, journal_options).ok());

  const std::string graph_before = graph_bytes(engine.graph());
  const std::string journal_before = file_bytes(journal);

  model::Delta d;
  d.ops.push_back(model::SetBandwidthOp{"a3", 25.0});
  const auto failed = engine.apply(d);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(graph_bytes(engine.graph()), graph_before);
  EXPECT_EQ(file_bytes(journal), journal_before);

  // The write rules are spent; the session keeps working and journaling.
  const auto retried = engine.apply(d);
  ASSERT_TRUE(retried.ok()) << retried.status().to_string();
  const auto contents = io::read_journal(journal);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->deltas.size(), 1u);
}

}  // namespace
}  // namespace cdcs
