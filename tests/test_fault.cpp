// support::FaultPlan / FaultInjector unit tests: spec parsing and
// round-tripping, the three trigger kinds, schedule determinism (identical
// seed + plan => identical fault schedule, the chaos-soak prerequisite),
// thread-safety of the hit counters, and the legacy FaultInjection bool
// shims booking through the same accounting (synth/options.hpp).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "synth/options.hpp"

namespace cdcs::support {
namespace {

using cdcs::synth::FaultInjection;

TEST(FaultPlan, ParsesEveryTriggerKindAndSeed) {
  const auto plan = FaultPlan::parse(
      "io.journal.write@3; engine.apply%2, ucp.solve~0.25;seed=42");
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  ASSERT_EQ(plan->rules.size(), 3u);
  EXPECT_EQ(plan->seed, 42u);

  EXPECT_EQ(plan->rules[0].site, "io.journal.write");
  EXPECT_EQ(plan->rules[0].trigger, FaultRule::Trigger::kNthHit);
  EXPECT_EQ(plan->rules[0].n, 3u);

  EXPECT_EQ(plan->rules[1].site, "engine.apply");
  EXPECT_EQ(plan->rules[1].trigger, FaultRule::Trigger::kEveryK);
  EXPECT_EQ(plan->rules[1].n, 2u);

  EXPECT_EQ(plan->rules[2].site, "ucp.solve");
  EXPECT_EQ(plan->rules[2].trigger, FaultRule::Trigger::kProbability);
  EXPECT_DOUBLE_EQ(plan->rules[2].probability, 0.25);
}

TEST(FaultPlan, EmptySpecParsesToEmptyPlan) {
  const auto plan = FaultPlan::parse("");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty());
  EXPECT_EQ(plan->to_string(), "");
}

TEST(FaultPlan, ToStringRoundTrips) {
  const auto plan =
      FaultPlan::parse("pricer.merge%1;ucp.greedy@2;ucp.solve~0.5;seed=7");
  ASSERT_TRUE(plan.ok());
  const std::string canonical = plan->to_string();
  const auto reparsed = FaultPlan::parse(canonical);
  ASSERT_TRUE(reparsed.ok()) << canonical;
  EXPECT_EQ(reparsed->to_string(), canonical);
  EXPECT_EQ(reparsed->rules.size(), plan->rules.size());
  EXPECT_EQ(reparsed->seed, plan->seed);
}

TEST(FaultPlan, RejectsUnknownSitesListingRegisteredOnes) {
  const auto plan = FaultPlan::parse("io.journal.wrte@1");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), ErrorCode::kInvalidInput);
  // The diagnostic lists the registered sites so typos are self-serviceable.
  EXPECT_NE(plan.status().to_string().find("io.journal.write"),
            std::string::npos)
      << plan.status().to_string();
}

TEST(FaultPlan, RejectsMalformedRules) {
  for (const char* bad :
       {"engine.apply", "engine.apply@0", "engine.apply%0", "engine.apply@x",
        "engine.apply~1.5", "engine.apply~-0.1", "engine.apply~nan",
        "@3", "seed=abc"}) {
    const auto plan = FaultPlan::parse(bad);
    EXPECT_FALSE(plan.ok()) << bad;
    EXPECT_EQ(plan.status().code(), ErrorCode::kInvalidInput) << bad;
  }
}

TEST(FaultInjector, NthHitFiresExactlyOnce) {
  FaultInjector inj(FaultPlan::parse("engine.apply@3").value());
  std::vector<bool> fires;
  for (int i = 0; i < 6; ++i) {
    fires.push_back(inj.should_fail(fault_sites::kEngineApply));
  }
  EXPECT_EQ(fires, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(inj.total_fires(), 1u);
  const auto stats = inj.stats();
  ASSERT_TRUE(stats.contains("engine.apply"));
  EXPECT_EQ(stats.at("engine.apply").hits, 6u);
  EXPECT_EQ(stats.at("engine.apply").fires, 1u);
}

TEST(FaultInjector, EveryKFiresPeriodically) {
  FaultInjector inj(FaultPlan::parse("pricer.merge%2").value());
  std::vector<bool> fires;
  for (int i = 0; i < 6; ++i) {
    fires.push_back(inj.should_fail(fault_sites::kPricerMerge));
  }
  EXPECT_EQ(fires,
            (std::vector<bool>{false, true, false, true, false, true}));
}

TEST(FaultInjector, ProbabilityScheduleIsSeedDeterministic) {
  // Identical seed + plan => identical fault schedule; a different seed
  // gives a different (but equally reproducible) one.
  const auto schedule = [](std::uint64_t seed) {
    FaultInjector inj(
        FaultPlan::parse("ucp.solve~0.5;seed=" + std::to_string(seed))
            .value());
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) {
      fires.push_back(inj.should_fail(fault_sites::kUcpSolve));
    }
    return fires;
  };
  const auto a = schedule(42);
  EXPECT_EQ(a, schedule(42));
  EXPECT_NE(a, schedule(43));  // 2^-64 flake odds: effectively impossible
  // p=0.5 over 64 draws: both outcomes must actually occur.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 64);
}

TEST(FaultInjector, ProbabilityBoundsAreExact) {
  FaultInjector never(FaultPlan::parse("ucp.solve~0").value());
  FaultInjector always(FaultPlan::parse("ucp.greedy~1").value());
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(never.should_fail(fault_sites::kUcpSolve));
    EXPECT_TRUE(always.should_fail(fault_sites::kUcpGreedy));
  }
}

TEST(FaultInjector, UnarmedSitesCountHitsButNeverFire) {
  FaultInjector inj(FaultPlan::parse("engine.apply@1").value());
  EXPECT_FALSE(inj.should_fail(fault_sites::kUcpSolve));
  EXPECT_FALSE(inj.should_fail(fault_sites::kUcpSolve));
  const auto stats = inj.stats();
  EXPECT_EQ(stats.at("ucp.solve").hits, 2u);
  EXPECT_EQ(stats.at("ucp.solve").fires, 0u);
}

TEST(FaultInjector, ConcurrentNthHitFiresExactlyOnce) {
  // The firing-hit decision is a pure function of the (atomic) hit index,
  // so exactly one thread observes the firing ticket.
  FaultInjector inj(FaultPlan::parse("engine.apply@100").value());
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        if (inj.should_fail(fault_sites::kEngineApply)) {
          fired.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(inj.stats().at("engine.apply").hits, 400u);
}

TEST(FaultShims, LegacyBoolsMapToTheirSites) {
  FaultInjection fi;
  fi.fail_merging_pricers = true;
  fi.expire_solver_deadline = true;
  fi.drop_incumbent = true;
  fi.fail_greedy_cover = true;
  EXPECT_TRUE(fi.fires(fault_sites::kPricerMerge));
  EXPECT_TRUE(fi.fires(fault_sites::kUcpSolve));
  EXPECT_TRUE(fi.fires(fault_sites::kUcpIncumbent));
  EXPECT_TRUE(fi.fires(fault_sites::kUcpGreedy));
  // Bools never cover the durability sites.
  EXPECT_FALSE(fi.fires(fault_sites::kEngineApply));
  EXPECT_FALSE(fi.fires(fault_sites::kJournalWrite));
}

TEST(FaultShims, BoolFiresAreBookedInTheMetricsRegistry) {
  auto& fires = MetricsRegistry::global().counter("fault.fires");
  auto& site_fires =
      MetricsRegistry::global().counter("fault.fires.pricer.merge");
  const auto before = fires.value();
  const auto site_before = site_fires.value();

  FaultInjection fi;
  fi.fail_merging_pricers = true;
  EXPECT_TRUE(fi.fires(fault_sites::kPricerMerge));
  EXPECT_EQ(fires.value(), before + 1);
  EXPECT_EQ(site_fires.value(), site_before + 1);
}

TEST(FaultShims, PlanAndBoolAgreeOnFiring) {
  // A plan rule takes precedence (the injector is consulted first); the
  // bool only forces sites the plan leaves quiet.
  FaultInjection fi;
  fi.injector = std::make_shared<FaultInjector>(
      FaultPlan::parse("pricer.merge@2").value());
  EXPECT_FALSE(fi.fires(fault_sites::kPricerMerge));  // hit 1: not yet
  EXPECT_TRUE(fi.fires(fault_sites::kPricerMerge));   // hit 2: plan fires
  EXPECT_FALSE(fi.fires(fault_sites::kPricerMerge));  // hit 3: once-only

  fi.fail_merging_pricers = true;  // the shim now forces it every time
  EXPECT_TRUE(fi.fires(fault_sites::kPricerMerge));
  EXPECT_TRUE(fi.fires(fault_sites::kPricerMerge));
}

TEST(FaultSites, RegistryIsStableAndComplete) {
  const auto& sites = all_fault_sites();
  EXPECT_EQ(sites.size(), 10u);
  for (const std::string_view s : {fault_sites::kJournalOpen,
                                   fault_sites::kJournalWrite,
                                   fault_sites::kJournalFsync,
                                   fault_sites::kEngineApply,
                                   fault_sites::kEngineRecover,
                                   fault_sites::kPricerMerge,
                                   fault_sites::kUcpSolve,
                                   fault_sites::kUcpIncumbent,
                                   fault_sites::kUcpGreedy,
                                   fault_sites::kUcpFrontier}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), s), sites.end()) << s;
  }
}

}  // namespace
}  // namespace cdcs::support
