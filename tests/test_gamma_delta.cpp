#include <gtest/gtest.h>

#include "io/tables.hpp"
#include "synth/gamma_delta.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs::synth {
namespace {

TEST(GammaDelta, DefinitionsOnTinyGraph) {
  model::ConstraintGraph cg(geom::Norm::kEuclidean);
  const model::VertexId a = cg.add_port("a", {0, 0});
  const model::VertexId b = cg.add_port("b", {3, 4});
  const model::VertexId c = cg.add_port("c", {6, 0});
  cg.add_channel(a, b, 1.0);  // d = 5
  cg.add_channel(b, c, 2.0);  // d = 5
  const ArcPairMatrix gamma = gamma_matrix(cg);
  const ArcPairMatrix delta = delta_matrix(cg);
  const model::ArcId a1{0}, a2{1};
  EXPECT_DOUBLE_EQ(gamma(a1, a2), 10.0);
  EXPECT_DOUBLE_EQ(gamma(a1, a1), 10.0);  // diagonal = 2 d(a)
  // Delta(a1,a2) = ||a-b|| + ||b-c|| = 5 + 5.
  EXPECT_DOUBLE_EQ(delta(a1, a2), 10.0);
  EXPECT_DOUBLE_EQ(delta(a1, a1), 0.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(gamma(a2, a1), gamma(a1, a2));
  EXPECT_DOUBLE_EQ(delta(a2, a1), delta(a1, a2));
}

TEST(GammaDelta, BandwidthVector) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const std::vector<double> b = bandwidth_vector(cg);
  ASSERT_EQ(b.size(), 8u);
  for (double x : b) EXPECT_DOUBLE_EQ(x, 10.0);
}

// The full Table 1 and Table 2 of the paper, entry by entry. Values are the
// paper's printed (truncated) strings; Gamma(a1,a5) and Delta(a1,a7) appear
// rounded in print and are checked numerically instead.
TEST(GammaDelta, Table1FullReproduction) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const ArcPairMatrix gamma = gamma_matrix(cg);
  const auto arcs = cg.arcs();
  static const char* kRows[8][8] = {
      {"", "10.38", "14.05", "102.02", "~105.18", "103.61", "8.60", "8.60"},
      {"", "", "14.44", "102.40", "105.56", "104.00", "8.99", "8.99"},
      {"", "", "", "106.07", "109.23", "107.67", "12.66", "12.66"},
      {"", "", "", "", "197.20", "195.63", "100.62", "100.62"},
      {"", "", "", "", "", "198.79", "103.78", "103.78"},
      {"", "", "", "", "", "", "102.22", "102.22"},
      {"", "", "", "", "", "", "", "7.21"},
      {"", "", "", "", "", "", "", ""}};
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) {
      std::string expected = kRows[i][j];
      const double value = gamma(arcs[i], arcs[j]);
      if (expected.front() == '~') {  // printed rounded in the paper
        EXPECT_NEAR(value, std::stod(expected.substr(1)), 0.005)
            << "entry (" << i + 1 << "," << j + 1 << ")";
      } else {
        EXPECT_EQ(io::truncate_decimals(value), expected)
            << "entry (" << i + 1 << "," << j + 1 << ")";
      }
    }
  }
}

TEST(GammaDelta, Table2FullReproduction) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const ArcPairMatrix delta = delta_matrix(cg);
  const auto arcs = cg.arcs();
  static const char* kRows[8][8] = {
      {"", "9.05", "14.05", "102.02", "97.02", "102.40", "200.09", "200.17"},
      {"", "", "5.00", "103.61", "98.61", "104.00", "201.69", "201.58"},
      {"", "", "", "98.61", "103.61", "107.67", "198.61", "198.42"},
      {"", "", "", "", "5.00", "9.05", "100.00", "~100.63"},
      {"", "", "", "", "", "5.38", "103.07", "103.78"},
      {"", "", "", "", "", "", "101.40", "102.22"},
      {"", "", "", "", "", "", "", "7.21"},
      {"", "", "", "", "", "", "", ""}};
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) {
      std::string expected = kRows[i][j];
      const double value = delta(arcs[i], arcs[j]);
      if (expected.front() == '~') {
        EXPECT_NEAR(value, std::stod(expected.substr(1)), 0.005)
            << "entry (" << i + 1 << "," << j + 1 << ")";
      } else {
        EXPECT_EQ(io::truncate_decimals(value), expected)
            << "entry (" << i + 1 << "," << j + 1 << ")";
      }
    }
  }
}

TEST(Tables, TruncationIsTowardZero) {
  EXPECT_EQ(io::truncate_decimals(10.389), "10.38");
  EXPECT_EQ(io::truncate_decimals(10.381), "10.38");
  EXPECT_EQ(io::truncate_decimals(5.0), "5.00");
  EXPECT_EQ(io::truncate_decimals(0.999), "0.99");
  EXPECT_EQ(io::truncate_decimals(7.2111), "7.21");
}

TEST(Tables, MatrixRenderingHasHeaderAndBlankLowerTriangle) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const std::string table =
      io::format_arc_pair_matrix(cg, gamma_matrix(cg));
  EXPECT_NE(table.find("a1"), std::string::npos);
  EXPECT_NE(table.find("10.38"), std::string::npos);
  EXPECT_NE(table.find("7.21"), std::string::npos);
  // 9 lines: header + 8 rows.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 9);
}

}  // namespace
}  // namespace cdcs::synth
