#include <gtest/gtest.h>

#include "baseline/baselines.hpp"
#include "commlib/standard_libraries.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/mpeg4_soc.hpp"
#include "workloads/random_gen.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs::synth {
namespace {

TEST(Synthesizer, WanReproducesFigure4) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  const SynthesisResult result = synthesize(cg, lib).value();

  EXPECT_TRUE(result.cover.optimal);
  EXPECT_TRUE(result.validation.ok());

  // Exactly one merging: {a4, a5, a6} on the optical link; rest radio.
  std::size_t mergings = 0;
  for (const Candidate* c : result.selected()) {
    if (c->merging) {
      ++mergings;
      ASSERT_EQ(c->arcs.size(), 3u);
      EXPECT_EQ(c->arcs[0].index(), 3u);
      EXPECT_EQ(c->arcs[1].index(), 4u);
      EXPECT_EQ(c->arcs[2].index(), 5u);
      EXPECT_EQ(lib.link(c->merging->trunk->link).name, "optical");
    } else {
      EXPECT_EQ(lib.link(c->ptp->link).name, "radio");
    }
  }
  EXPECT_EQ(mergings, 1u);

  // The merged architecture saves substantially over point-to-point.
  const baseline::BaselineResult ptp =
      baseline::point_to_point_baseline(cg, lib);
  EXPECT_LT(result.total_cost, ptp.cost - 100000.0);

  // Def 2.5 total equals the sum of the chosen candidates' costs (no
  // inter-candidate sharing in this instance).
  double chosen_sum = 0.0;
  for (const Candidate* c : result.selected()) chosen_sum += c->cost;
  EXPECT_NEAR(result.total_cost, chosen_sum, 1.0);
}

TEST(Synthesizer, WanClassifiesStructures) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  const SynthesisResult result = synthesize(cg, lib).value();
  const auto& impl = *result.implementation;
  // a4, a5, a6 (indices 3..5) share the optical trunk -> merged; the other
  // five arcs are plain matchings.
  for (std::uint32_t i = 0; i < 8; ++i) {
    const model::ImplKind kind = impl.classify(model::ArcId{i});
    if (i >= 3 && i <= 5) {
      EXPECT_EQ(kind, model::ImplKind::kMergedShare) << "arc " << i;
    } else {
      EXPECT_EQ(kind, model::ImplKind::kMatching) << "arc " << i;
    }
  }
  // One junction node (the split) was instantiated.
  EXPECT_EQ(impl.count_nodes(commlib::NodeKind::kSwitch), 1u);
}

TEST(Synthesizer, Soc55Repeaters) {
  const model::ConstraintGraph cg = workloads::mpeg4_soc();
  const commlib::Library lib = commlib::soc_library(0.6);
  const SynthesisResult result = synthesize(cg, lib).value();
  EXPECT_TRUE(result.cover.optimal);
  EXPECT_TRUE(result.validation.ok());
  EXPECT_EQ(result.implementation->count_nodes(commlib::NodeKind::kRepeater),
            55u);
  EXPECT_DOUBLE_EQ(result.total_cost, 55.0);
  // Pure segmentation: every selected candidate is point-to-point.
  for (const Candidate* c : result.selected()) {
    EXPECT_TRUE(c->ptp.has_value());
    EXPECT_EQ(c->ptp->parallel, 1);
  }
}

TEST(Synthesizer, MaxPolicyChangesWanOptimum) {
  // Under the literal Def 2.8 capacity reading, radio trunks can be shared
  // freely, so merging gets much cheaper than Figure 4's optical solution.
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  SynthesisOptions opts;
  opts.policy = model::CapacityPolicy::kMaxPerConstraint;
  const SynthesisResult max_result = synthesize(cg, lib, opts).value();
  const SynthesisResult sum_result = synthesize(cg, lib).value();
  EXPECT_LT(max_result.total_cost, sum_result.total_cost);
  EXPECT_TRUE(
      model::validate(*max_result.implementation,
                      model::CapacityPolicy::kMaxPerConstraint)
          .ok());
}

TEST(Synthesizer, SelectedCandidatesCoverEveryArcOnce) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  const SynthesisResult result = synthesize(cg, lib).value();
  std::vector<int> covered(cg.num_channels(), 0);
  for (const Candidate* c : result.selected()) {
    for (model::ArcId a : c->arcs) ++covered[a.index()];
  }
  for (int count : covered) EXPECT_EQ(count, 1);  // positive costs -> no overlap
}

// End-to-end exactness: on random small instances, the full pipeline must
// match the exhaustive partition optimum, with and without pruning, and the
// greedy baseline must never beat it.
class RandomExactness : public ::testing::TestWithParam<int> {};

TEST_P(RandomExactness, PipelineMatchesExhaustive) {
  workloads::RandomWorkloadParams params;
  params.seed = static_cast<std::uint64_t>(GetParam()) * 7919 + 3;
  params.num_clusters = 2;
  params.ports_per_cluster = 3;
  params.num_channels = 6;
  params.cluster_radius = 4.0;
  params.area_extent = 120.0;
  const model::ConstraintGraph cg = workloads::random_workload(params);
  const commlib::Library lib = commlib::wan_library();

  const baseline::BaselineResult exhaustive =
      baseline::exhaustive_partition_optimum(cg, lib);

  const SynthesisResult pruned = synthesize(cg, lib).value();
  ASSERT_TRUE(pruned.cover.optimal);
  EXPECT_TRUE(pruned.validation.ok());
  EXPECT_NEAR(pruned.total_cost, exhaustive.cost,
              1e-6 * std::max(1.0, exhaustive.cost))
      << "pruned pipeline lost the optimum (seed " << params.seed << ")";

  SynthesisOptions no_pruning;
  no_pruning.use_lemma31 = false;
  no_pruning.use_lemma32 = false;
  no_pruning.use_theorem31 = false;
  no_pruning.use_theorem32 = false;
  const SynthesisResult full = synthesize(cg, lib, no_pruning).value();
  EXPECT_NEAR(full.total_cost, exhaustive.cost,
              1e-6 * std::max(1.0, exhaustive.cost))
      << "unpruned pipeline disagrees (seed " << params.seed << ")";

  const baseline::BaselineResult greedy =
      baseline::greedy_merge_baseline(cg, lib);
  EXPECT_GE(greedy.cost, exhaustive.cost - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExactness, ::testing::Range(0, 8));

// The strong (every-pivot) rule must also preserve the optimum.
class StrongPruningExactness : public ::testing::TestWithParam<int> {};

TEST_P(StrongPruningExactness, AnyPivotKeepsOptimum) {
  workloads::RandomWorkloadParams params;
  params.seed = static_cast<std::uint64_t>(GetParam()) * 104729 + 11;
  params.num_clusters = 2;
  params.ports_per_cluster = 2;
  params.num_channels = 5;
  const model::ConstraintGraph cg = workloads::random_workload(params);
  const commlib::Library lib = commlib::wan_library();

  SynthesisOptions strong;
  strong.pivot_rule = PivotRule::kAnyPivot;
  const SynthesisResult result = synthesize(cg, lib, strong).value();
  const baseline::BaselineResult exhaustive =
      baseline::exhaustive_partition_optimum(cg, lib);
  EXPECT_NEAR(result.total_cost, exhaustive.cost,
              1e-6 * std::max(1.0, exhaustive.cost));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrongPruningExactness, ::testing::Range(0, 6));

TEST(Synthesizer, ValidatesUnderBothPoliciesWhenSumPolicyUsed) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  const SynthesisResult result = synthesize(cg, lib).value();
  // Sum-feasible implies max-feasible.
  EXPECT_TRUE(model::validate(*result.implementation,
                              model::CapacityPolicy::kSharedSum)
                  .ok());
  EXPECT_TRUE(model::validate(*result.implementation,
                              model::CapacityPolicy::kMaxPerConstraint)
                  .ok());
}

TEST(Synthesizer, EmptyConstraintGraph) {
  const model::ConstraintGraph cg;
  const commlib::Library lib = commlib::wan_library();
  const SynthesisResult result = synthesize(cg, lib).value();
  EXPECT_DOUBLE_EQ(result.total_cost, 0.0);
  EXPECT_TRUE(result.validation.ok());
}

}  // namespace
}  // namespace cdcs::synth
