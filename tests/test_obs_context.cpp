// Second observability layer (docs/observability.md): scoped contexts,
// the always-on flight recorder + postmortem artifacts, and the in-process
// profiler. Four guarantees:
//
//   1. ATTRIBUTION. ObsContext paths nest/restore correctly, survive the
//      thread-pool hop, and are stamped onto trace events and flight
//      recorder entries at emission time.
//   2. SCHEMA. Postmortem and profile documents are well-formed JSON even
//      under hostile scope labels (quotes, newlines, UTF-8), and a forced
//      fault or degraded exit yields EXACTLY ONE postmortem artifact.
//   3. DETERMINISM. Scoping + recording are write-only metadata: a scoped,
//      traced, recorded run is bit-identical to a bare run at 1/2/8
//      threads.
//   4. CONCURRENCY. Scope churn, flight recording, and per-scope metric
//      deltas may race across pool workers; the ObsContextConcurrency and
//      FlightRecorderConcurrency suites run under TSan in CI.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "json_checker.hpp"

#include "commlib/standard_libraries.hpp"
#include "io/report.hpp"
#include "support/deadline.hpp"
#include "support/fault.hpp"
#include "support/flight_recorder.hpp"
#include "support/metrics.hpp"
#include "support/obs_context.hpp"
#include "support/profiler.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs::support {
namespace {

using testsupport::JsonChecker;

// ---- Scoped contexts -------------------------------------------------------

TEST(ObsContext, NestingBuildsPathsAndRestores) {
  EXPECT_EQ(current_obs_scope_path(), "");
  EXPECT_EQ(current_obs_scope(), nullptr);
  {
    ObsContext session("session=wan_a");
    EXPECT_EQ(session.path(), "session=wan_a");
    EXPECT_EQ(current_obs_scope_path(), "session=wan_a");
    {
      ObsContext solve("solve=17");
      EXPECT_EQ(solve.path(), "session=wan_a/solve=17");
      EXPECT_EQ(current_obs_scope_path(), "session=wan_a/solve=17");
      const ObsScopeHandle node = current_obs_scope();
      ASSERT_NE(node, nullptr);
      EXPECT_EQ(node->label(), "solve=17");
      ASSERT_NE(node->parent(), nullptr);
      EXPECT_EQ(node->parent()->label(), "session=wan_a");
    }
    EXPECT_EQ(current_obs_scope_path(), "session=wan_a");
  }
  EXPECT_EQ(current_obs_scope_path(), "");
}

TEST(ObsContext, ScopeIsThreadLocal) {
  ObsContext outer("main-only");
  std::string seen = "unset";
  std::thread t([&] { seen = current_obs_scope_path(); });
  t.join();
  EXPECT_EQ(seen, "");  // a fresh thread starts unscoped
  EXPECT_EQ(current_obs_scope_path(), "main-only");
}

TEST(ObsContext, GuardInstallsAndRestoresAcrossThreads) {
  ObsScopeHandle handle;
  {
    ObsContext scope("carried");
    handle = current_obs_scope();
  }
  ASSERT_NE(handle, nullptr);  // the handle outlives the frame
  std::string inside, after;
  std::thread t([&] {
    {
      ObsScopeGuard guard(handle);
      inside = current_obs_scope_path();
    }
    after = current_obs_scope_path();
  });
  t.join();
  EXPECT_EQ(inside, "carried");
  EXPECT_EQ(after, "");
}

TEST(ObsContext, StampsTraceEventsAfterSinkCheck) {
  // Begin/counter/instant events carry the emitter's scope path; End events
  // deliberately do not (the profiler attributes a span to its Begin).
  ScopedTraceSession session;
  {
    ObsContext scope("session=t");
    Span span("scoped-span", "test");
    trace_counter("scoped-counter", 1.0, "test");
    trace_instant("scoped-instant", "test");
  }
  trace_instant("unscoped-instant", "test");
  session.close();

  const std::vector<TraceEvent> events = session.sink().snapshot();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].scope, "session=t");  // B scoped-span
  EXPECT_EQ(events[1].scope, "session=t");  // C scoped-counter
  EXPECT_EQ(events[2].scope, "session=t");  // i scoped-instant
  EXPECT_EQ(events[3].scope, "");           // E (attributed via its B)
  EXPECT_EQ(events[4].scope, "");           // i unscoped

  const std::ostringstream os = [&] {
    std::ostringstream o;
    write_chrome_trace(o, session.sink());
    return o;
  }();
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
  EXPECT_NE(os.str().find("\"scope\":\"session=t\""), std::string::npos)
      << os.str();
}

TEST(ObsContext, PoolWorkersInheritSubmitterScope) {
  ScopedTraceSession session;
  const std::uint32_t main_tid = trace_thread_id();
  {
    ObsContext scope("fanout");
    ThreadPool pool(4);
    const std::vector<int> out =
        parallel_map_ordered(&pool, 64, [](std::size_t i) {
          Span span("work", "test");
          return static_cast<int>(i);
        });
    ASSERT_EQ(out.size(), 64u);
  }
  session.close();

  std::size_t scoped_work = 0;
  for (const TraceEvent& e : session.sink().snapshot()) {
    if (e.phase == TraceEvent::Phase::kBegin &&
        std::string(e.name) == "work") {
      EXPECT_EQ(e.scope, "fanout");
      EXPECT_NE(e.thread_id, main_tid)
          << "pool tasks must run on workers, not the submitter";
      ++scoped_work;
    }
  }
  EXPECT_EQ(scoped_work, 64u);
}

TEST(ObsContext, PerScopeMetricsDelta) {
  Counter& counter = MetricsRegistry::global().counter("obs.test.delta");
  counter.add(5);  // pre-scope noise the delta must exclude
  ObsContext scope("delta-view", kCaptureMetricsBaseline);
  counter.add(3);
  const MetricsSnapshot delta = scope.delta();
  EXPECT_EQ(delta.counters.at("obs.test.delta"), 3u);
}

TEST(ObsContext, DefaultConstructorSkipsBaseline) {
  MetricsRegistry::global().counter("obs.test.nodelta").add(2);
  ObsContext scope("no-baseline");
  MetricsRegistry::global().counter("obs.test.nodelta").add(2);
  // No baseline captured: delta() degrades to an empty view, never a
  // full-registry dump that would misattribute pre-scope counts.
  EXPECT_TRUE(scope.delta().counters.empty());
}

// ---- Flight recorder -------------------------------------------------------

TEST(FlightRecorder, RingWrapsKeepingNewestWithContiguousSeq) {
  FlightRecorder recorder(16);
  for (int i = 0; i < 40; ++i) {
    recorder.record("stage", "event " + std::to_string(i));
  }
  EXPECT_EQ(recorder.capacity(), 16u);
  EXPECT_EQ(recorder.total_recorded(), 40u);

  const std::vector<FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 16u);
  // Oldest surviving first: seq 24..39, contiguous, timestamps monotone.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 24u + i);
    if (i > 0) {
      EXPECT_GE(events[i].timestamp_us, events[i - 1].timestamp_us);
    }
  }
  EXPECT_EQ(events.back().detail, "event 39");
}

TEST(FlightRecorder, CapacityFloorIsSixteen) {
  FlightRecorder tiny(1);
  EXPECT_EQ(tiny.capacity(), 16u);
}

TEST(FlightRecorder, GlobalRecordCarriesScope) {
  {
    ObsContext scope("recorded-scope");
    flight_record("stage", "obs-test-marker");
  }
  const std::vector<FlightEvent> events = FlightRecorder::global().snapshot();
  ASSERT_FALSE(events.empty());
  const FlightEvent& last = events.back();
  EXPECT_STREQ(last.kind, "stage");
  EXPECT_EQ(last.detail, "obs-test-marker");
  EXPECT_EQ(last.scope, "recorded-scope");
}

// ---- Postmortem artifacts --------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Fresh (created, empty) per-test postmortem directory.
std::string make_postmortem_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "cdcs_pm_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<std::string> postmortem_files(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    out.push_back(entry.path().string());
  }
  return out;
}

/// Disarms automatic dumps when a test exits, however it exits.
struct PostmortemDisarmer {
  ~PostmortemDisarmer() { set_postmortem_dir(""); }
};

TEST(Postmortem, DumpSchemaIsValidWithoutSink) {
  flight_record("stage", "before-dump");
  std::ostringstream os;
  {
    ObsContext scope("pm-scope");
    dump_postmortem(os, "test", "manual dump");
  }
  const std::string doc = os.str();
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"postmortem\""), std::string::npos);
  EXPECT_NE(doc.find("\"trigger\": \"test\""), std::string::npos);
  EXPECT_NE(doc.find("\"scope\": \"pm-scope\""), std::string::npos);
  EXPECT_NE(doc.find("\"flight_recorder\""), std::string::npos);
  EXPECT_NE(doc.find("before-dump"), std::string::npos);
  EXPECT_NE(doc.find("\"metrics\""), std::string::npos);
  // No sink installed: the trace section is an explicit null, not absent.
  EXPECT_NE(doc.find("\"trace\": null"), std::string::npos);
}

TEST(Postmortem, DumpEmbedsInstalledTraceRing) {
  ScopedTraceSession session;
  { Span span("traced-before-dump", "test"); }
  std::ostringstream os;
  dump_postmortem(os, "test", "with trace");
  session.close();
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
  EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(os.str().find("traced-before-dump"), std::string::npos);
}

TEST(Postmortem, OneShotLatchAndReset) {
  PostmortemDisarmer disarm;
  const std::string dir = make_postmortem_dir("latch");
  set_postmortem_dir(dir);

  Counter& suppressed =
      MetricsRegistry::global().counter("postmortem.suppressed");
  const std::uint64_t suppressed_before = suppressed.value();

  const std::string first = maybe_dump_postmortem("fault", "first");
  ASSERT_FALSE(first.empty());
  EXPECT_TRUE(JsonChecker(read_file(first)).valid());

  // Latched: cascading triggers are suppressed, counted, and write nothing.
  EXPECT_EQ(maybe_dump_postmortem("degraded", "second"), "");
  EXPECT_EQ(suppressed.value(), suppressed_before + 1);
  EXPECT_EQ(postmortem_files(dir).size(), 1u);

  // Re-opening the latch dumps again, to a DISTINCT file.
  reset_postmortem_latch();
  const std::string third = maybe_dump_postmortem("fault", "third");
  ASSERT_FALSE(third.empty());
  EXPECT_NE(third, first);
  EXPECT_EQ(postmortem_files(dir).size(), 2u);

  set_postmortem_dir("");
  EXPECT_EQ(maybe_dump_postmortem("fault", "disarmed"), "");
}

TEST(Postmortem, ForcedFaultYieldsExactlyOneArtifact) {
  PostmortemDisarmer disarm;
  const std::string dir = make_postmortem_dir("fault");
  set_postmortem_dir(dir);

  synth::SynthesisOptions opts;
  opts.fault_injection.injector = std::make_shared<FaultInjector>(
      FaultPlan::parse("ucp.frontier@1").value());
  const auto result =
      synth::synthesize(workloads::wan2002(), commlib::wan_library(), opts);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result->degradation.degraded());

  // The fault fire dumps; the degraded exit that follows is suppressed by
  // the latch -- exactly one artifact, and it is valid, attributed JSON.
  const std::vector<std::string> files = postmortem_files(dir);
  ASSERT_EQ(files.size(), 1u);
  const std::string doc = read_file(files[0]);
  EXPECT_TRUE(JsonChecker(doc).valid()) << files[0];
  EXPECT_NE(doc.find("\"trigger\": \"fault\""), std::string::npos);
  EXPECT_NE(doc.find("ucp.frontier"), std::string::npos);
}

TEST(Postmortem, DegradedExitYieldsExactlyOneArtifact) {
  PostmortemDisarmer disarm;
  const std::string dir = make_postmortem_dir("degraded");
  set_postmortem_dir(dir);

  synth::SynthesisOptions opts;
  opts.deadline = Deadline::expire_after_checks(0);
  const auto result =
      synth::synthesize(workloads::wan2002(), commlib::wan_library(), opts);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  ASSERT_TRUE(result->degradation.degraded());

  const std::vector<std::string> files = postmortem_files(dir);
  ASSERT_EQ(files.size(), 1u);
  const std::string doc = read_file(files[0]);
  EXPECT_TRUE(JsonChecker(doc).valid()) << files[0];
  EXPECT_NE(doc.find("\"trigger\": \"degraded\""), std::string::npos);
}

// ---- In-process profiler ---------------------------------------------------

TraceEvent make_event(const char* name, TraceEvent::Phase phase,
                      std::int64_t ts, std::uint32_t tid = 0,
                      std::string scope = "") {
  TraceEvent e;
  e.name = name;
  e.phase = phase;
  e.timestamp_us = ts;
  e.thread_id = tid;
  e.scope = std::move(scope);
  return e;
}

std::size_t expected_bucket(double us) {
  const std::vector<double>& bounds = profile_bucket_bounds();
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (us <= bounds[i]) return i;
  }
  return bounds.size();
}

TEST(Profiler, AggregatesCountTotalSelfMax) {
  using Phase = TraceEvent::Phase;
  std::vector<TraceEvent> events;
  events.push_back(make_event("outer", Phase::kBegin, 0, 0, "s"));
  events.push_back(make_event("inner", Phase::kBegin, 10, 0, "s"));
  events.push_back(make_event("inner", Phase::kEnd, 30, 0));
  events.push_back(make_event("outer", Phase::kEnd, 50, 0));
  events.push_back(make_event("inner", Phase::kBegin, 60, 0, "s"));
  events.push_back(make_event("inner", Phase::kEnd, 100, 0));

  const std::vector<ProfileEntry> profile = build_profile(events);
  ASSERT_EQ(profile.size(), 2u);  // (scope, name) order: inner before outer
  const ProfileEntry& inner = profile[0];
  EXPECT_EQ(inner.scope, "s");
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.count, 2u);
  EXPECT_EQ(inner.total_us, 20 + 40);
  EXPECT_EQ(inner.self_us, 20 + 40);  // leaf: inclusive == exclusive
  EXPECT_EQ(inner.max_us, 40);
  const ProfileEntry& outer = profile[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(outer.total_us, 50);
  EXPECT_EQ(outer.self_us, 50 - 20);  // minus the nested inner instance
  EXPECT_EQ(outer.max_us, 50);

  ASSERT_EQ(inner.buckets.size(), profile_bucket_bounds().size() + 1);
  // 20us and 40us share a power-of-4 latency bucket (16 < v <= 64).
  ASSERT_EQ(expected_bucket(20), expected_bucket(40));
  EXPECT_EQ(inner.buckets[expected_bucket(20)], 2u);
  EXPECT_EQ(outer.buckets[expected_bucket(50)], 1u);
}

TEST(Profiler, RepairsOrphansAndOpenSpansLikeTheExporter) {
  using Phase = TraceEvent::Phase;
  std::vector<TraceEvent> events;
  // Orphan End (its Begin was overwritten by the ring): dropped.
  events.push_back(make_event("lost", Phase::kEnd, 5, 0));
  // Still-open span: closed synthetically at the stream's last timestamp.
  events.push_back(make_event("open", Phase::kBegin, 100, 0, "s"));
  events.push_back(make_event("mark", Phase::kInstant, 200, 0));

  const std::vector<ProfileEntry> profile = build_profile(events);
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_EQ(profile[0].name, "open");
  EXPECT_EQ(profile[0].count, 1u);
  EXPECT_EQ(profile[0].total_us, 100);  // 200 - 100
}

TEST(Profiler, SeparatesScopesAndThreads) {
  using Phase = TraceEvent::Phase;
  std::vector<TraceEvent> events;
  // Same span name under two scopes and two threads: scopes aggregate
  // separately, threads replay on independent stacks.
  events.push_back(make_event("solve", Phase::kBegin, 0, 0, "a"));
  events.push_back(make_event("solve", Phase::kBegin, 0, 1, "b"));
  events.push_back(make_event("solve", Phase::kEnd, 10, 0));
  events.push_back(make_event("solve", Phase::kEnd, 30, 1));

  const std::vector<ProfileEntry> profile = build_profile(events);
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_EQ(profile[0].scope, "a");
  EXPECT_EQ(profile[0].total_us, 10);
  EXPECT_EQ(profile[1].scope, "b");
  EXPECT_EQ(profile[1].total_us, 30);
}

TEST(Profiler, JsonExportIsValid) {
  ScopedTraceSession session;
  {
    ObsContext scope("profile-json");
    Span outer("outer", "test");
    { Span inner("inner", "test"); }
  }
  session.close();
  std::ostringstream os;
  write_profile_json(os, build_profile(session.sink()));
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
  EXPECT_NE(os.str().find("\"buckets_us\""), std::string::npos);
  EXPECT_NE(os.str().find("\"scope\": \"profile-json\""), std::string::npos);
}

TEST(Profiler, CountsAreDeterministicAcrossSerialRuns) {
  // Two identical serial synthesize runs must profile to the same
  // (scope, name, count) rows -- what bench_perf_summary's `profile`
  // section pins and tools/check_bench_regression.py diffs.
  auto profile_counts = [] {
    ScopedTraceSession session;
    ObsContext scope("bench=wan_profile");
    (void)synth::synthesize(workloads::wan2002(), commlib::wan_library())
        .value();
    std::vector<std::pair<std::string, std::uint64_t>> rows;
    for (const ProfileEntry& e : build_profile(session.sink())) {
      rows.emplace_back(e.scope + "\x1f" + e.name, e.count);
    }
    return rows;
  };
  const auto first = profile_counts();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, profile_counts());
}

TEST(Profiler, DescribeProfileRanksByTotalTime) {
  std::vector<ProfileEntry> entries(2);
  entries[0].scope = "s";
  entries[0].name = "cheap";
  entries[0].count = 4;
  entries[0].total_us = 1000;
  entries[0].self_us = 1000;
  entries[0].max_us = 400;
  entries[1].scope = "s";
  entries[1].name = "hot";
  entries[1].count = 2;
  entries[1].total_us = 90000;
  entries[1].self_us = 80000;
  entries[1].max_us = 60000;

  const std::string top1 = io::describe_profile(entries, 1);
  EXPECT_NE(top1.find("hot"), std::string::npos) << top1;
  EXPECT_EQ(top1.find("cheap"), std::string::npos) << top1;
  const std::string all = io::describe_profile(entries);
  EXPECT_LT(all.find("hot"), all.find("cheap")) << all;
}

// ---- Hostile scope labels through every exporter ---------------------------

TEST(ObsEscaping, HostileScopeLabelsExportValidJson) {
  const std::string hostile =
      "evil=\"quoted\"\\back\nnew\tline\x01 utf8=日本語";
  ScopedTraceSession session;
  {
    ObsContext scope(hostile);
    Span span("hostile-span", "test");
    trace_counter("hostile-counter", 1.0, "test");
    trace_instant("hostile-instant", "test");
    flight_record("stage", "under a hostile scope");
  }
  session.close();

  std::ostringstream trace_os;
  write_chrome_trace(trace_os, session.sink());
  EXPECT_TRUE(JsonChecker(trace_os.str()).valid()) << trace_os.str();

  std::ostringstream profile_os;
  write_profile_json(profile_os, build_profile(session.sink()));
  EXPECT_TRUE(JsonChecker(profile_os.str()).valid()) << profile_os.str();

  std::ostringstream pm_os;
  dump_postmortem(pm_os, "test", hostile);
  EXPECT_TRUE(JsonChecker(pm_os.str()).valid()) << pm_os.str();
}

TEST(ObsEscaping, HostileMetricNamesExportValidJson) {
  MetricsRegistry registry;
  registry.counter("bad\"name\nwith\\escapes").add(1);
  std::ostringstream os;
  write_metrics_json(os, registry.snapshot());
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

// ---- Determinism: scoped + recorded == bare --------------------------------

std::string result_fingerprint(const synth::SynthesisResult& r) {
  std::ostringstream os;
  os.precision(17);
  for (const synth::Candidate& c : r.candidates()) {
    os << '[';
    for (model::ArcId a : c.arcs) os << a.value << ',';
    os << "] " << c.cost << '\n';
  }
  os << "chosen:";
  for (std::size_t j : r.cover.chosen) os << ' ' << j;
  os << " total=" << r.total_cost
     << " nodes=" << r.cover.nodes_explored;
  return os.str();
}

TEST(ObsDeterminism, ScopedRecordedRunsBitIdentical) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  for (int threads : {1, 2, 8}) {
    synth::SynthesisOptions options;
    options.threads = threads;

    const auto bare = synth::synthesize(cg, lib, options);
    ASSERT_TRUE(bare.ok()) << bare.status().to_string();

    std::string scoped_fp;
    {
      ScopedTraceSession session;
      set_timing_enabled(true);
      ObsContext run("session=determinism", kCaptureMetricsBaseline);
      ObsContext inner("solve=0");
      const auto scoped = synth::synthesize(cg, lib, options);
      set_timing_enabled(false);
      ASSERT_TRUE(scoped.ok()) << scoped.status().to_string();
      scoped_fp = result_fingerprint(*scoped);
    }
    EXPECT_EQ(scoped_fp, result_fingerprint(*bare)) << "threads=" << threads;
  }
}

// ---- Concurrency (TSan targets) --------------------------------------------

TEST(ObsContextConcurrency, ScopeChurnAcrossPool) {
  ScopedTraceSession session;
  {
    ThreadPool pool(8);
    ObsContext outer("churn");
    parallel_map_ordered(&pool, 128, [](std::size_t i) {
      ObsContext task_scope("task=" + std::to_string(i));
      Span span("churn-work", "test");
      trace_counter("churn-progress", static_cast<double>(i), "test");
      {
        ObsContext nested("inner");
        trace_instant("churn-mark", "test");
      }
      flight_record("stage", "churn " + std::to_string(i));
      return 0;
    });
  }
  session.close();
  std::ostringstream os;
  write_chrome_trace(os, session.sink());
  EXPECT_TRUE(JsonChecker(os.str()).valid());
}

TEST(ObsContextConcurrency, DeltaSinceUnderConcurrentScopeChurn) {
  Counter& counter = MetricsRegistry::global().counter("obs.churn.count");
  ObsContext base("delta-churn", kCaptureMetricsBaseline);
  {
    ThreadPool pool(8);
    std::vector<std::future<void>> reads;
    for (int r = 0; r < 8; ++r) {
      reads.push_back(pool.submit([&base] {
        for (int k = 0; k < 50; ++k) {
          (void)base.delta();  // snapshot+delta racing the writers below
        }
      }));
    }
    parallel_map_ordered(&pool, 64, [&counter](std::size_t i) {
      ObsContext scope("writer=" + std::to_string(i));
      for (int k = 0; k < 100; ++k) counter.add(1);
      return 0;
    });
    for (auto& f : reads) f.get();
  }
  EXPECT_EQ(base.delta().counters.at("obs.churn.count"), 64u * 100u);
}

TEST(FlightRecorderConcurrency, ParallelRecordsKeepSeqOrdered) {
  FlightRecorder recorder(64);
  {
    ThreadPool pool(8);
    parallel_map_ordered(&pool, 8, [&recorder](std::size_t t) {
      for (int i = 0; i < 500; ++i) {
        recorder.record("stage", "t" + std::to_string(t));
      }
      return 0;
    });
  }
  EXPECT_EQ(recorder.total_recorded(), 8u * 500u);
  const std::vector<FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 64u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1)
        << "ring order diverged from emission order";
  }
}

}  // namespace
}  // namespace cdcs::support
