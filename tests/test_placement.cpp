#include <gtest/gtest.h>

#include "place/placement.hpp"

namespace cdcs::place {
namespace {

TEST(Placement, SingleMovableGoesToWeightedBarycenter) {
  PlacementProblem p;
  const std::size_t pad_w = p.add_fixed("west", {0, 0});
  const std::size_t pad_e = p.add_fixed("east", {10, 0});
  const std::size_t m = p.add_module("core");
  p.connect(m, pad_w, 1.0);
  p.connect(m, pad_e, 3.0);  // pulled 3x harder east
  const PlacementResult r = place(p);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.positions[m].x, 7.5, 1e-7);  // (1*0 + 3*10) / 4
  EXPECT_NEAR(r.positions[m].y, 0.0, 1e-7);
}

TEST(Placement, ChainBetweenPadsSpacesEvenly) {
  PlacementProblem p;
  const std::size_t a = p.add_fixed("a", {0, 0});
  const std::size_t m1 = p.add_module("m1");
  const std::size_t m2 = p.add_module("m2");
  const std::size_t m3 = p.add_module("m3");
  const std::size_t b = p.add_fixed("b", {8, 4});
  p.connect(a, m1);
  p.connect(m1, m2);
  p.connect(m2, m3);
  p.connect(m3, b);
  const PlacementResult r = place(p);
  EXPECT_TRUE(r.converged);
  // Equal springs -> equally spaced along the segment.
  EXPECT_NEAR(r.positions[m1].x, 2.0, 1e-6);
  EXPECT_NEAR(r.positions[m2].x, 4.0, 1e-6);
  EXPECT_NEAR(r.positions[m3].x, 6.0, 1e-6);
  EXPECT_NEAR(r.positions[m2].y, 2.0, 1e-6);
}

TEST(Placement, FixedModulesDoNotMove) {
  PlacementProblem p;
  const std::size_t a = p.add_fixed("a", {1, 2});
  const std::size_t m = p.add_module("m");
  p.connect(a, m);
  const PlacementResult r = place(p);
  EXPECT_EQ(r.positions[a], (geom::Point2D{1, 2}));
  // A movable tied to a single fixed module collapses onto it.
  EXPECT_NEAR(r.positions[m].x, 1.0, 1e-7);
  EXPECT_NEAR(r.positions[m].y, 2.0, 1e-7);
}

TEST(Placement, WirelengthIsStationaryUnderPerturbation) {
  // Property: at the CG solution, nudging any movable module in any
  // direction must not decrease the quadratic wirelength.
  PlacementProblem p;
  const std::size_t pads[4] = {
      p.add_fixed("p0", {0, 0}), p.add_fixed("p1", {10, 0}),
      p.add_fixed("p2", {10, 10}), p.add_fixed("p3", {0, 10})};
  const std::size_t m1 = p.add_module("m1");
  const std::size_t m2 = p.add_module("m2");
  p.connect(m1, pads[0], 2.0);
  p.connect(m1, pads[1], 1.0);
  p.connect(m1, m2, 4.0);
  p.connect(m2, pads[2], 1.5);
  p.connect(m2, pads[3], 0.5);
  const PlacementResult r = place(p);
  ASSERT_TRUE(r.converged);

  auto phi = [&](const std::vector<geom::Point2D>& pos) {
    double total = 0.0;
    for (const Net& n : p.nets) {
      total += n.weight * geom::squared_length(pos[n.a] - pos[n.b]);
    }
    return total;
  };
  const double base = phi(r.positions);
  EXPECT_NEAR(base, r.quadratic_wirelength, 1e-9 * std::max(base, 1.0));
  for (std::size_t m : {m1, m2}) {
    for (const geom::Point2D d :
         {geom::Point2D{0.01, 0}, geom::Point2D{-0.01, 0},
          geom::Point2D{0, 0.01}, geom::Point2D{0, -0.01}}) {
      std::vector<geom::Point2D> nudged = r.positions;
      nudged[m] += d;
      EXPECT_GE(phi(nudged), base - 1e-9);
    }
  }
}

TEST(Placement, ValidateCatchesProblems) {
  PlacementProblem p;
  const std::size_t m = p.add_module("floating");
  EXPECT_FALSE(p.validate().empty());  // no anchor

  PlacementProblem p2;
  const std::size_t a = p2.add_fixed("a", {0, 0});
  const std::size_t b = p2.add_module("b");
  p2.connect(a, b, -1.0);
  EXPECT_FALSE(p2.validate().empty());  // negative weight

  PlacementProblem p3;
  const std::size_t c = p3.add_fixed("c", {0, 0});
  p3.connect(c, c);
  EXPECT_FALSE(p3.validate().empty());  // self-net

  PlacementProblem p4;
  p4.add_fixed("x", {0, 0});
  p4.nets.push_back(Net{0, 99, 1.0});
  EXPECT_FALSE(p4.validate().empty());  // out of range

  (void)m;
  EXPECT_THROW(place(p), std::invalid_argument);
}

TEST(Placement, AllFixedIsTrivial) {
  PlacementProblem p;
  p.add_fixed("a", {0, 0});
  p.add_fixed("b", {5, 5});
  p.connect(0, 1, 2.0);
  const PlacementResult r = place(p);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.quadratic_wirelength, 2.0 * 50.0);
}

}  // namespace
}  // namespace cdcs::place
