#include <cmath>

#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "synth/ptp.hpp"

namespace cdcs::synth {
namespace {

TEST(Ptp, MatchingWhenOneLinkSuffices) {
  const commlib::Library lib = commlib::wan_library();
  const auto plan = best_point_to_point(5.0, 10.0, lib);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->is_matching());
  EXPECT_EQ(lib.link(plan->link).name, "radio");
  EXPECT_DOUBLE_EQ(plan->cost, 5.0 * 2000.0);
}

TEST(Ptp, PicksFasterLinkWhenBandwidthDemands) {
  const commlib::Library lib = commlib::wan_library();
  // 30 Mbps > 11 Mbps radio: either 3 parallel radios (6000/km + free
  // junction mux/demux) or one optical (4000/km). Optical wins.
  const auto plan = best_point_to_point(10.0, 30.0, lib);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(lib.link(plan->link).name, "optical");
  EXPECT_TRUE(plan->is_matching());
}

TEST(Ptp, DuplicationWhenCheaperThanUpgrade) {
  // 20 Mbps: 2 radios cost 4000/km, equal to optical's 4000/km; tie is
  // broken by evaluation order (radio first), but force the interesting
  // case at 21 Mbps where duplication still needs 2 radios.
  const commlib::Library lib = commlib::wan_library();
  const auto plan = best_point_to_point(10.0, 21.0, lib);
  ASSERT_TRUE(plan.has_value());
  // 2 radios = 4000/km == optical 4000/km; either is optimal.
  EXPECT_DOUBLE_EQ(plan->cost, 40000.0);
  if (plan->parallel == 2) {
    EXPECT_EQ(lib.link(plan->link).name, "radio");
    ASSERT_TRUE(plan->mux.has_value());
    ASSERT_TRUE(plan->demux.has_value());
  }
}

TEST(Ptp, SegmentationCountsRepeaters) {
  const commlib::Library lib = commlib::soc_library(0.6);
  const auto plan = best_point_to_point(2.0, 1.0, lib);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->segments, 4);  // ceil(2.0 / 0.6)
  EXPECT_EQ(plan->parallel, 1);
  ASSERT_TRUE(plan->repeater.has_value());
  EXPECT_DOUBLE_EQ(plan->cost, 3.0);  // 3 repeaters, wires free
}

TEST(Ptp, ExactMultipleSpanAvoidsOffByOne) {
  const commlib::Library lib = commlib::soc_library(0.6);
  // 1.8 mm = exactly 3 wires; a naive ceil(1.8/0.6) with floating point
  // noise could give 4.
  const auto plan = best_point_to_point(1.8, 1.0, lib);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->segments, 3);
  EXPECT_DOUBLE_EQ(plan->cost, 2.0);
}

TEST(Ptp, SegmentationAndDuplicationCombined) {
  commlib::Library lib("grid");
  lib.add_link(commlib::Link{.name = "short-slow",
                             .max_span = 1.0,
                             .bandwidth = 5.0,
                             .fixed_cost = 1.0,
                             .cost_per_length = 0.0});
  lib.add_node(commlib::Node{
      .name = "rep", .kind = commlib::NodeKind::kRepeater, .cost = 10.0});
  lib.add_node(commlib::Node{
      .name = "mux", .kind = commlib::NodeKind::kMux, .cost = 3.0});
  lib.add_node(commlib::Node{
      .name = "demux", .kind = commlib::NodeKind::kDemux, .cost = 3.0});
  const auto plan = best_point_to_point(2.5, 12.0, lib);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->segments, 3);   // ceil(2.5/1)
  EXPECT_EQ(plan->parallel, 3);   // ceil(12/5)
  // 3 branches x 3 links x $1 + 3 branches x 2 repeaters x $10 + mux+demux.
  EXPECT_DOUBLE_EQ(plan->cost, 9.0 + 60.0 + 6.0);
}

TEST(Ptp, InfeasibleWithoutRepeater) {
  commlib::Library lib("norep");
  lib.add_link(commlib::Link{
      .name = "short", .max_span = 1.0, .bandwidth = 5.0, .fixed_cost = 1.0});
  EXPECT_FALSE(best_point_to_point(2.0, 1.0, lib).has_value());
  EXPECT_TRUE(std::isinf(best_point_to_point_cost(2.0, 1.0, lib)));
  // Within reach it is feasible.
  EXPECT_TRUE(best_point_to_point(0.9, 1.0, lib).has_value());
}

TEST(Ptp, InfeasibleWithoutMuxDemux) {
  commlib::Library lib("nomux");
  lib.add_link(commlib::Link{
      .name = "slow", .max_span = 10.0, .bandwidth = 5.0, .fixed_cost = 1.0});
  EXPECT_FALSE(best_point_to_point(1.0, 6.0, lib).has_value());
  EXPECT_TRUE(best_point_to_point(1.0, 5.0, lib).has_value());
}

TEST(Ptp, ZeroSpanIsLegal) {
  const commlib::Library lib = commlib::wan_library();
  const auto plan = best_point_to_point(0.0, 10.0, lib);
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->cost, 0.0);  // per-length links cost nothing at 0
  EXPECT_EQ(plan->segments, 1);
}

TEST(Ptp, SkipsZeroBandwidthLinks) {
  commlib::Library lib("zb");
  lib.add_link(commlib::Link{.name = "broken", .bandwidth = 0.0});
  lib.add_link(commlib::Link{
      .name = "ok", .bandwidth = 1.0, .fixed_cost = 1.0});
  const auto plan = best_point_to_point(1.0, 1.0, lib);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(lib.link(plan->link).name, "ok");
}

// Assumption 2.1 must hold on the paper's libraries: optimal point-to-point
// cost is monotone in (distance, bandwidth) and positive.
class Assumption21 : public ::testing::TestWithParam<const char*> {};

TEST_P(Assumption21, HoldsOnStandardLibraries) {
  const std::string which = GetParam();
  commlib::Library lib =
      which == "wan"   ? commlib::wan_library()
      : which == "soc" ? commlib::soc_library(0.6)
                       : commlib::lan_library();
  // For the SoC library, channels shorter than l_crit cost zero repeaters,
  // so C(P(a)) > 0 only holds on the paper instance's range d > l_crit
  // (every MPEG-4 critical channel is); check the assumption there.
  const std::vector<double> spans = which == "soc"
                                        ? std::vector<double>{0.7, 1.0, 2.0,
                                                              3.7, 5.0, 20.0}
                                        : std::vector<double>{0.1, 0.5, 1.0,
                                                              2.0, 5.0, 20.0,
                                                              100.0};
  const std::vector<double> bws = {0.5, 1.0, 5.0, 10.0, 25.0, 60.0};
  EXPECT_TRUE(check_assumption_2_1(lib, spans, bws).empty());
}

INSTANTIATE_TEST_SUITE_P(Libraries, Assumption21,
                         ::testing::Values("wan", "soc", "lan"));

TEST(Assumption21, DetectsViolatingLibrary) {
  // A pathological library: a long-reach link CHEAPER than the short one,
  // making cost non-monotone in distance (cost drops when d crosses 1.0).
  commlib::Library lib("weird");
  lib.add_link(commlib::Link{.name = "short-pricey",
                             .max_span = 1.0,
                             .bandwidth = 10.0,
                             .fixed_cost = 100.0});
  lib.add_link(commlib::Link{.name = "long-cheap",
                             .max_span = 100.0,
                             .bandwidth = 10.0,
                             .fixed_cost = 100.0,
                             .cost_per_length = 0.0});
  // Monotone actually (equal costs). Make short strictly worse via usage:
  // at d <= 1 both links cost 100 -> still monotone. Force violation with a
  // fixed+per-length crossing instead:
  commlib::Library lib2("crossing");
  lib2.add_link(commlib::Link{.name = "per-meter",
                              .max_span = 2.0,
                              .bandwidth = 10.0,
                              .cost_per_length = 50.0});
  lib2.add_link(commlib::Link{.name = "flat-rate",
                              .max_span = 100.0,
                              .bandwidth = 10.0,
                              .fixed_cost = 60.0});
  // d=0.5 -> min(25, 60) = 25; d=2.0 -> min(100,60) = 60: monotone. The
  // grid check should accordingly find no violation here...
  EXPECT_TRUE(check_assumption_2_1(lib2, {0.5, 2.0}, {1.0}).empty());
  // ...but a zero-cost point breaks positivity.
  commlib::Library lib3("freebie");
  lib3.add_link(commlib::Link{.name = "free-short",
                              .max_span = 1.0,
                              .bandwidth = 10.0});
  EXPECT_FALSE(check_assumption_2_1(lib3, {0.5}, {1.0}).empty());
}

}  // namespace
}  // namespace cdcs::synth
