// Unit tests for the structured-diagnostic primitives (support/status.hpp)
// and the cooperative deadline (support/deadline.hpp) that the resilience
// layer is built on.
#include <gtest/gtest.h>

#include "support/deadline.hpp"
#include "support/status.hpp"

namespace cdcs::support {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(Status, FactoriesCarryCodeMessageAndLocation) {
  const Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_NE(std::string(s.file()).find("test_status.cpp"), std::string::npos);
  EXPECT_GT(s.line(), 0);

  EXPECT_EQ(Status::InvalidInput("x").code(), ErrorCode::kInvalidInput);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Infeasible("x").code(), ErrorCode::kInfeasible);
  EXPECT_EQ(Status::Internal("x").code(), ErrorCode::kInternal);
  // An "error" with an OK code is a bug; it is coerced to internal rather
  // than minted as a success.
  EXPECT_EQ(Status::Error(ErrorCode::kOk, "x").code(), ErrorCode::kInternal);
}

TEST(Status, ExitCodesAreStable) {
  EXPECT_EQ(exit_code(ErrorCode::kOk), 0);
  EXPECT_EQ(exit_code(ErrorCode::kParseError), 3);
  EXPECT_EQ(exit_code(ErrorCode::kInvalidInput), 4);
  EXPECT_EQ(exit_code(ErrorCode::kDeadlineExceeded), 5);
  EXPECT_EQ(exit_code(ErrorCode::kInfeasible), 6);
  EXPECT_EQ(exit_code(ErrorCode::kInternal), 7);
}

TEST(Status, ContextChainsRenderOutermostFirst) {
  Status s = Status::ParseError("line 3: bad bandwidth");
  s.add_context("reading 'x.graph'");
  Status outer = std::move(s).with_context("synthesize");
  ASSERT_EQ(outer.context().size(), 2u);
  // Stored innermost-first...
  EXPECT_EQ(outer.context()[0], "reading 'x.graph'");
  EXPECT_EQ(outer.context()[1], "synthesize");
  // ...rendered outermost-first, like a call stack unwinding.
  const std::string rendered = outer.to_string();
  EXPECT_NE(rendered.find("[parse-error] synthesize: reading 'x.graph': "
                          "line 3: bad bandwidth"),
            std::string::npos)
      << rendered;
}

TEST(Status, ContextOnOkStatusIsIgnored) {
  Status s;
  s.add_context("should not stick");
  EXPECT_TRUE(s.context().empty());
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Expected, HoldsValueOrStatus) {
  Expected<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good.status().ok());
  EXPECT_EQ(*good, 42);
  EXPECT_EQ(good.value(), 42);

  Expected<int> bad(Status::Infeasible("no cover"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kInfeasible);
  EXPECT_EQ(std::move(Expected<int>(Status::Infeasible("no cover")))
                .value_or(-1),
            -1);
}

TEST(Expected, ValueThrowsStatusErrorCarryingTheStatus) {
  Expected<int> bad(Status::InvalidInput("NaN bandwidth"));
  try {
    (void)bad.value();
    FAIL() << "value() on an error must throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), ErrorCode::kInvalidInput);
    EXPECT_NE(std::string(e.what()).find("NaN bandwidth"), std::string::npos);
  }
}

TEST(Expected, TakeStatusSupportsContextPropagation) {
  Expected<int> bad(Status::ParseError("line 1: junk"));
  const Status s = std::move(bad).take_status().with_context("reading lib");
  EXPECT_EQ(s.code(), ErrorCode::kParseError);
  ASSERT_EQ(s.context().size(), 1u);
  EXPECT_EQ(s.context()[0], "reading lib");
}

TEST(Expected, ConstructingFromOkStatusIsAnInternalError) {
  Expected<int> bogus((Status()));
  ASSERT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.status().code(), ErrorCode::kInternal);
}

TEST(Deadline, NeverIsUnlimitedAndNeverExpires) {
  const Deadline d = Deadline::never();
  EXPECT_TRUE(d.unlimited());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_ms(), std::numeric_limits<double>::infinity());
}

TEST(Deadline, ZeroBudgetExpiresOnFirstPoll) {
  const Deadline d = Deadline::after_ms(0.0);
  EXPECT_FALSE(d.unlimited());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0.0);
}

TEST(Deadline, ExpireAfterChecksCountsPollsDeterministically) {
  const Deadline d = Deadline::expire_after_checks(2);
  EXPECT_FALSE(d.unlimited());
  EXPECT_FALSE(d.expired());  // poll 1
  EXPECT_FALSE(d.expired());  // poll 2
  EXPECT_TRUE(d.expired());   // poll 3 = the (n+1)-th
}

TEST(Deadline, ExpiryLatches) {
  const Deadline d = Deadline::expire_after_checks(0);
  EXPECT_TRUE(d.expired());
  // Once expired, always expired -- later stages can trust earlier ones.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0.0);
}

TEST(Deadline, CancelTokenIsSharedAcrossCopies) {
  CancelToken token;
  Deadline original;
  original.attach(token);
  const Deadline copy = original;
  EXPECT_FALSE(original.unlimited());
  EXPECT_FALSE(copy.expired());
  token.cancel();
  EXPECT_TRUE(copy.expired());
  EXPECT_TRUE(original.expired());
}

}  // namespace
}  // namespace cdcs::support
