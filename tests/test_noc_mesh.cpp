#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/noc_mesh.hpp"

namespace cdcs::workloads {
namespace {

TEST(NocMesh, NeighborTrafficShape) {
  NocMeshParams p;
  p.rows = 3;
  p.cols = 4;
  p.traffic = NocTraffic::kNeighbor;
  const model::ConstraintGraph cg = noc_mesh(p);
  EXPECT_EQ(cg.num_ports(), 12u);
  // East channels: 3 rows x 3, south channels: 2 x 4.
  EXPECT_EQ(cg.num_channels(), 9u + 8u);
  EXPECT_EQ(cg.norm(), geom::Norm::kManhattan);
  // Every neighbor channel spans exactly one tile pitch.
  for (model::ArcId a : cg.arcs()) {
    EXPECT_NEAR(cg.distance(a), p.tile_pitch_mm, 1e-12);
  }
}

TEST(NocMesh, HotspotTargetsTheController) {
  NocMeshParams p;
  p.rows = 4;
  p.cols = 4;
  p.traffic = NocTraffic::kHotspotMemory;
  const model::ConstraintGraph cg = noc_mesh(p);
  EXPECT_EQ(cg.num_channels(), 15u);  // every tile but the controller
  const model::VertexId controller = cg.target(model::ArcId{0});
  EXPECT_EQ(cg.port(controller).name, "tile_3_2");
  for (model::ArcId a : cg.arcs()) {
    EXPECT_EQ(cg.target(a), controller);
    EXPECT_NE(cg.source(a), controller);
  }
}

TEST(NocMesh, BitComplementPairsTiles) {
  NocMeshParams p;
  p.rows = 4;
  p.cols = 4;
  p.traffic = NocTraffic::kBitComplement;
  const model::ConstraintGraph cg = noc_mesh(p);
  EXPECT_EQ(cg.num_channels(), 16u);  // no tile is its own complement
  for (model::ArcId a : cg.arcs()) {
    const geom::Point2D u = cg.position(cg.source(a));
    const geom::Point2D v = cg.position(cg.target(a));
    // Complement pairs are point-symmetric about the grid center.
    EXPECT_NEAR(u.x + v.x, 3 * p.tile_pitch_mm, 1e-9);
    EXPECT_NEAR(u.y + v.y, 3 * p.tile_pitch_mm, 1e-9);
  }
}

TEST(NocMesh, OddGridCenterTileSkipsSelfChannel) {
  NocMeshParams p;
  p.rows = 3;
  p.cols = 3;
  p.traffic = NocTraffic::kBitComplement;
  const model::ConstraintGraph cg = noc_mesh(p);
  EXPECT_EQ(cg.num_channels(), 8u);  // center tile maps to itself
}

TEST(NocMesh, RejectsTinyGrids) {
  NocMeshParams p;
  p.rows = 1;
  EXPECT_THROW(noc_mesh(p), std::invalid_argument);
}

TEST(NocMesh, HotspotSynthesisMergesAndValidates) {
  NocMeshParams p;
  p.rows = 3;
  p.cols = 3;
  p.traffic = NocTraffic::kHotspotMemory;
  const model::ConstraintGraph cg = noc_mesh(p);
  const commlib::Library lib = commlib::noc_library();
  synth::SynthesisOptions opts;
  opts.drop_unprofitable = true;
  opts.max_merge_k = 4;
  const synth::SynthesisResult result = synth::synthesize(cg, lib, opts).value();
  EXPECT_TRUE(result.validation.ok());
  std::size_t merged = 0;
  for (const synth::Candidate* c : result.selected()) {
    if (!c->ptp) ++merged;
  }
  EXPECT_GT(merged, 0u);
}

TEST(NocLibrary, BusEconomyOfScale) {
  const commlib::Library lib = commlib::noc_library();
  const commlib::Link& wire = lib.link(*lib.find_link("wire"));
  const commlib::Link& bus = lib.link(*lib.find_link("bus4"));
  // The bundle is cheaper per unit bandwidth but pricier per instance.
  EXPECT_LT(bus.cost_per_length / bus.bandwidth,
            wire.cost_per_length / wire.bandwidth);
  EXPECT_GT(bus.cost_per_length, wire.cost_per_length);
  EXPECT_TRUE(lib.validate().empty());
}

}  // namespace
}  // namespace cdcs::workloads
