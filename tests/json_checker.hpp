// Minimal strict JSON syntax checker shared by the observability tests.
//
// The repo carries no JSON dependency, so the schema tests validate the
// exporters with a strict recursive-descent syntax pass (structure only, no
// DOM). Any deviation from RFC 8259 grammar fails the parse.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace cdcs::testsupport {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (static_cast<unsigned char>(s_[pos_]) < 0x20) return false;
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                                         static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               s_[pos_ - 1]));
  }

  bool literal(const char* lit) {
    for (; *lit != '\0'; ++lit, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *lit) return false;
    }
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_{0};
};

}  // namespace cdcs::testsupport
