#include <cmath>

#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "io/dot.hpp"
#include "io/text_format.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs::io {
namespace {

using support::ErrorCode;

/// The parse-error code of a failed read, or kOk when the read succeeded.
template <typename T>
ErrorCode code_of(const support::Expected<T>& e) {
  return e.status().code();
}

TEST(TextFormat, ConstraintGraphRoundTrip) {
  const model::ConstraintGraph original = workloads::wan2002();
  const std::string text = write_constraint_graph(original);
  const model::ConstraintGraph parsed =
      read_constraint_graph_from_string(text).value();

  ASSERT_EQ(parsed.num_ports(), original.num_ports());
  ASSERT_EQ(parsed.num_channels(), original.num_channels());
  EXPECT_EQ(parsed.norm(), original.norm());
  for (model::VertexId v : original.ports()) {
    EXPECT_EQ(parsed.port(v).name, original.port(v).name);
    EXPECT_EQ(parsed.position(v), original.position(v));
  }
  for (model::ArcId a : original.arcs()) {
    EXPECT_EQ(parsed.channel(a).name, original.channel(a).name);
    EXPECT_DOUBLE_EQ(parsed.bandwidth(a), original.bandwidth(a));
    EXPECT_DOUBLE_EQ(parsed.distance(a), original.distance(a));
  }
}

TEST(TextFormat, ParsesCommentsAndBlanks) {
  const model::ConstraintGraph cg = read_constraint_graph_from_string(
      "# a comment\n"
      "norm manhattan\n"
      "\n"
      "port a 0 0   # trailing comment\n"
      "port b 1 2\n"
      "channel c1 a b 5\n").value();
  EXPECT_EQ(cg.norm(), geom::Norm::kManhattan);
  EXPECT_EQ(cg.num_ports(), 2u);
  EXPECT_DOUBLE_EQ(cg.distance(model::ArcId{0}), 3.0);
}

TEST(TextFormat, RejectsMalformedGraphs) {
  EXPECT_EQ(code_of(read_constraint_graph_from_string("norm bogus\n")),
            ErrorCode::kParseError);
  EXPECT_EQ(code_of(read_constraint_graph_from_string("port a 0\n")),
            ErrorCode::kParseError);
  EXPECT_EQ(code_of(read_constraint_graph_from_string("channel c a b 1\n")),
            ErrorCode::kParseError);  // unknown ports
  EXPECT_EQ(code_of(read_constraint_graph_from_string(
                "port a 0 0\nport a 1 1\n")),
            ErrorCode::kParseError);  // duplicate port
  EXPECT_EQ(code_of(read_constraint_graph_from_string("frobnicate\n")),
            ErrorCode::kParseError);
  EXPECT_EQ(code_of(read_constraint_graph_from_string(
                "norm euclidean\nnorm euclidean\n")),
            ErrorCode::kParseError);  // duplicate norm
  EXPECT_EQ(code_of(read_constraint_graph_from_string("port a x y\n")),
            ErrorCode::kParseError);  // bad numbers
}

TEST(TextFormat, ParseErrorsCarryLineNumbers) {
  const auto result = read_constraint_graph_from_string(
      "norm euclidean\n"
      "port a 0 0\n"
      "port b 1 1\n"
      "channel c a b nonsense\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kParseError);
  EXPECT_NE(result.status().to_string().find("line 4"), std::string::npos)
      << result.status().to_string();
}

TEST(TextFormat, LibraryRoundTrip) {
  for (const commlib::Library& original :
       {commlib::wan_library(), commlib::soc_library(0.6),
        commlib::lan_library()}) {
    const commlib::Library parsed =
        read_library_from_string(write_library(original)).value();
    EXPECT_EQ(parsed.name(), original.name());
    ASSERT_EQ(parsed.links().size(), original.links().size());
    ASSERT_EQ(parsed.nodes().size(), original.nodes().size());
    for (std::size_t i = 0; i < original.links().size(); ++i) {
      EXPECT_EQ(parsed.link(i).name, original.link(i).name);
      EXPECT_EQ(parsed.link(i).max_span, original.link(i).max_span);
      EXPECT_DOUBLE_EQ(parsed.link(i).bandwidth, original.link(i).bandwidth);
      EXPECT_DOUBLE_EQ(parsed.link(i).fixed_cost, original.link(i).fixed_cost);
      EXPECT_DOUBLE_EQ(parsed.link(i).cost_per_length,
                       original.link(i).cost_per_length);
    }
    for (std::size_t i = 0; i < original.nodes().size(); ++i) {
      EXPECT_EQ(parsed.node(i).name, original.node(i).name);
      EXPECT_EQ(parsed.node(i).kind, original.node(i).kind);
      EXPECT_DOUBLE_EQ(parsed.node(i).cost, original.node(i).cost);
    }
  }
}

TEST(TextFormat, LibraryParsesInfinityAndRejectsJunk) {
  const commlib::Library lib = read_library_from_string(
      "library x\nlink l inf 10 0 1\nnode n switch 2\n").value();
  EXPECT_TRUE(std::isinf(lib.link(0).max_span));
  EXPECT_EQ(lib.node(0).kind, commlib::NodeKind::kSwitch);
  EXPECT_EQ(code_of(read_library_from_string("link l\n")),
            ErrorCode::kParseError);
  EXPECT_EQ(code_of(read_library_from_string("node n gizmo 1\n")),
            ErrorCode::kParseError);
  EXPECT_EQ(code_of(read_library_from_string("link l inf ten 0 1\n")),
            ErrorCode::kParseError);
}

TEST(Dot, ConstraintGraphContainsPortsAndChannels) {
  const std::string dot = to_dot(workloads::wan2002());
  EXPECT_NE(dot.find("digraph constraints"), std::string::npos);
  EXPECT_NE(dot.find("\"A\""), std::string::npos);
  EXPECT_NE(dot.find("a8"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Dot, ImplementationGraphShowsLinksAndNodes) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  const synth::SynthesisResult result = synth::synthesize(cg, lib).value();
  const std::string dot = to_dot(*result.implementation);
  EXPECT_NE(dot.find("digraph implementation"), std::string::npos);
  EXPECT_NE(dot.find("radio"), std::string::npos);
  EXPECT_NE(dot.find("optical"), std::string::npos);
  EXPECT_NE(dot.find("junction"), std::string::npos);   // the split node
  EXPECT_NE(dot.find("shape=box"), std::string::npos);  // comm vertices
}

}  // namespace
}  // namespace cdcs::io
