// io::journal + Engine durability tests: record format and CRC, torn-tail
// truncation semantics, bounded write retries under injected faults, the
// malformed-journal corpus in data/edits/, and the ISSUE 6 acceptance pin:
// truncating the journal at ANY record boundary (and at a torn mid-record
// offset) then Engine::recover() + resynthesize() reproduces the
// uninterrupted session's result bit-identically (same cover cost, same
// ucp_nodes) on WAN/SoC/NoC at 1/2/8 threads.
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "io/journal.hpp"
#include "io/text_format.hpp"
#include "model/delta.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "synth/engine.hpp"
#include "workloads/mpeg4_soc.hpp"
#include "workloads/noc_mesh.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs {
namespace {

using support::ErrorCode;
using support::FaultInjector;
using support::FaultPlan;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "cdcs_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A raw [length][crc][payload] record, little-endian, optionally with a
/// deliberately wrong checksum.
std::string raw_record(const std::string& payload, std::uint32_t crc) {
  std::string rec;
  for (int shift = 0; shift < 32; shift += 8) {
    rec.push_back(static_cast<char>(
        (static_cast<std::uint32_t>(payload.size()) >> shift) & 0xFF));
  }
  for (int shift = 0; shift < 32; shift += 8) {
    rec.push_back(static_cast<char>((crc >> shift) & 0xFF));
  }
  return rec + payload;
}

model::Delta retune(const std::string& channel, double bw) {
  model::Delta d;
  d.ops.push_back(model::SetBandwidthOp{channel, bw});
  return d;
}

/// Same exhaustive fingerprint as tests/test_incremental.cpp: candidates,
/// cover, cost, stage, and the solver's node count.
std::string fingerprint(const synth::SynthesisResult& r) {
  std::ostringstream os;
  os.precision(17);
  for (const synth::Candidate& c : r.candidates()) {
    os << '[';
    for (model::ArcId a : c.arcs) os << a.value << ',';
    os << "] cost=" << c.cost << '\n';
  }
  os << "chosen:";
  for (std::size_t j : r.cover.chosen) os << ' ' << j;
  os << "\ntotal=" << r.total_cost
     << "\nstage=" << to_string(r.degradation.stage)
     << "\nucp_nodes=" << r.cover.nodes_explored << '\n';
  return os.str();
}

// ---------------------------------------------------------------------------
// CRC and record format
// ---------------------------------------------------------------------------

TEST(Crc32, MatchesTheStandardCheckValue) {
  // The canonical CRC-32 check vector (and zlib/binascii agreement).
  EXPECT_EQ(io::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(io::crc32(""), 0u);
  EXPECT_NE(io::crc32("journal"), io::crc32("journaL"));
}

TEST(Journal, RoundTripsSnapshotAndDeltas) {
  const std::string path = temp_path("roundtrip.journal");
  const model::ConstraintGraph base = workloads::wan2002();
  auto writer = io::JournalWriter::create(path, base);
  ASSERT_TRUE(writer.ok()) << writer.status().to_string();
  ASSERT_TRUE(writer->append_delta(retune("a3", 25.0)).ok());
  ASSERT_TRUE(writer->append_delta(retune("a1", 15.0)).ok());
  EXPECT_EQ(writer->records(), 3u);

  const auto contents = io::read_journal(path);
  ASSERT_TRUE(contents.ok()) << contents.status().to_string();
  EXPECT_EQ(contents->records_recovered, 3u);
  ASSERT_EQ(contents->deltas.size(), 2u);
  EXPECT_EQ(contents->bytes_dropped, 0u);
  EXPECT_FALSE(contents->tail_truncated());
  EXPECT_EQ(contents->valid_prefix_bytes, writer->end_offset());
  // The snapshot round-trips byte-identically through the text format.
  EXPECT_EQ(io::write_constraint_graph(contents->base),
            io::write_constraint_graph(base));
  EXPECT_EQ(contents->deltas[0].ops.size(), 1u);
}

TEST(Journal, EmptyDeltaBatchesAreLegalRecords) {
  const std::string path = temp_path("empty_batch.journal");
  auto writer = io::JournalWriter::create(path, workloads::wan2002());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->append_delta(model::Delta{}).ok());
  const auto contents = io::read_journal(path);
  ASSERT_TRUE(contents.ok()) << contents.status().to_string();
  ASSERT_EQ(contents->deltas.size(), 1u);
  EXPECT_TRUE(contents->deltas[0].empty());
}

// ---------------------------------------------------------------------------
// Torn tails and corruption
// ---------------------------------------------------------------------------

TEST(Journal, TornHeaderIsTruncatedCleanly) {
  const std::string path = temp_path("torn_header.journal");
  auto writer = io::JournalWriter::create(path, workloads::wan2002());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->append_delta(retune("a3", 25.0)).ok());
  const std::string healthy = read_file(path);
  write_file(path, healthy + std::string("\x20\x01\x00", 3));  // torn header

  const auto contents = io::read_journal(path);
  ASSERT_TRUE(contents.ok()) << contents.status().to_string();
  EXPECT_EQ(contents->records_recovered, 2u);
  EXPECT_EQ(contents->bytes_dropped, 3u);
  EXPECT_TRUE(contents->tail_truncated());
  EXPECT_EQ(contents->valid_prefix_bytes, healthy.size());
}

TEST(Journal, TornPayloadIsTruncatedCleanly) {
  const std::string path = temp_path("torn_payload.journal");
  auto writer = io::JournalWriter::create(path, workloads::wan2002());
  ASSERT_TRUE(writer.ok());
  const std::string healthy = read_file(path);
  // A record header promising 1000 payload bytes, followed by only 4.
  const std::string torn = raw_record("full", io::crc32("full"));
  write_file(path, healthy + torn.substr(0, 8) + "xxxx");
  // (length field says 4, but deliberately lie with a bigger one)
  std::string big = healthy;
  big += raw_record(std::string(1000, 'y'), 0).substr(0, 8);
  big += "only-a-few-bytes";
  write_file(path, big);

  const auto contents = io::read_journal(path);
  ASSERT_TRUE(contents.ok()) << contents.status().to_string();
  EXPECT_EQ(contents->records_recovered, 1u);
  EXPECT_TRUE(contents->tail_truncated());
  EXPECT_EQ(contents->valid_prefix_bytes, healthy.size());
}

TEST(Journal, BadCrcStopsTheValidPrefixAtThatRecord) {
  const std::string path = temp_path("bad_crc.journal");
  auto writer = io::JournalWriter::create(path, workloads::wan2002());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->append_delta(retune("a3", 25.0)).ok());
  const std::string healthy = read_file(path);
  const std::string payload = "delta\nset-bandwidth a1 12\nsolve\n";
  write_file(path, healthy + raw_record(payload, io::crc32(payload) ^ 1u));

  const auto contents = io::read_journal(path);
  ASSERT_TRUE(contents.ok()) << contents.status().to_string();
  EXPECT_EQ(contents->records_recovered, 2u);
  EXPECT_EQ(contents->bytes_dropped, 8u + payload.size());
  EXPECT_EQ(contents->valid_prefix_bytes, healthy.size());
}

TEST(Journal, ChecksummedButUnparseablePayloadIsAParseError) {
  const std::string path = temp_path("bad_tag.journal");
  auto writer = io::JournalWriter::create(path, workloads::wan2002());
  ASSERT_TRUE(writer.ok());
  const std::string healthy = read_file(path);
  const std::string payload = "bogus\nnot a record\n";
  write_file(path, healthy + raw_record(payload, io::crc32(payload)));

  const auto contents = io::read_journal(path);
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), ErrorCode::kParseError);
  // The diagnostic names the record number and byte offset.
  EXPECT_NE(contents.status().to_string().find("record 2"), std::string::npos)
      << contents.status().to_string();
}

TEST(Journal, BadMagicIsAParseError) {
  const std::string path = temp_path("bad_magic.journal");
  write_file(path, "NOTAWAL0 some bytes");
  const auto contents = io::read_journal(path);
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), ErrorCode::kParseError);
}

TEST(Journal, TornBaseSnapshotIsAParseError) {
  const std::string path = temp_path("torn_base.journal");
  const std::string healthy =
      read_file(([&] {
        const std::string p = temp_path("torn_base_src.journal");
        auto w = io::JournalWriter::create(p, workloads::wan2002());
        EXPECT_TRUE(w.ok());
        return p;
      })());
  // Keep the magic plus half the snapshot record: nothing recoverable.
  write_file(path, healthy.substr(0, 8 + (healthy.size() - 8) / 2));
  const auto contents = io::read_journal(path);
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), ErrorCode::kParseError);
}

// ---------------------------------------------------------------------------
// data/edits/ malformed-journal corpus
// ---------------------------------------------------------------------------

std::string corpus_path(const std::string& file) {
  return std::string(CDCS_SOURCE_DIR) + "/data/edits/" + file;
}

TEST(JournalCorpus, BadCrcJournalRecoversThePrefix) {
  const auto contents = io::read_journal(corpus_path("malformed_bad_crc.journal"));
  ASSERT_TRUE(contents.ok()) << contents.status().to_string();
  EXPECT_EQ(contents->records_recovered, 2u);  // snapshot + 1 delta
  EXPECT_EQ(contents->deltas.size(), 1u);
  EXPECT_TRUE(contents->tail_truncated());
  EXPECT_GT(contents->bytes_dropped, 0u);
}

TEST(JournalCorpus, TruncatedLengthPrefixRecoversThePrefix) {
  const auto contents =
      io::read_journal(corpus_path("malformed_truncated_length.journal"));
  ASSERT_TRUE(contents.ok()) << contents.status().to_string();
  EXPECT_EQ(contents->records_recovered, 2u);
  EXPECT_TRUE(contents->tail_truncated());
  EXPECT_LT(contents->bytes_dropped, 8u);  // a partial header
}

TEST(JournalCorpus, TornTailRecoversThePrefix) {
  const auto contents =
      io::read_journal(corpus_path("malformed_torn_tail.journal"));
  ASSERT_TRUE(contents.ok()) << contents.status().to_string();
  EXPECT_EQ(contents->records_recovered, 3u);  // snapshot + 2 deltas
  EXPECT_EQ(contents->deltas.size(), 2u);
  EXPECT_TRUE(contents->tail_truncated());
}

TEST(JournalCorpus, BadMagicJournalIsAParseError) {
  const auto contents =
      io::read_journal(corpus_path("malformed_bad_magic.journal"));
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), ErrorCode::kParseError);
}

// ---------------------------------------------------------------------------
// Write-path fault injection: bounded retry + deterministic backoff
// ---------------------------------------------------------------------------

TEST(Journal, TransientWriteFaultIsRetriedAndSucceeds) {
  const std::string path = temp_path("retry_ok.journal");
  io::JournalOptions options;
  // Hit 1 is the snapshot append; the first delta-append attempt (hit 2)
  // fires once, the retry (hit 3) goes through.
  options.injector = std::make_shared<FaultInjector>(
      FaultPlan::parse("io.journal.write@2").value());
  const auto retries_before =
      support::MetricsRegistry::global().counter("io.journal.retries").value();

  auto writer =
      io::JournalWriter::create(path, workloads::wan2002(), options);
  ASSERT_TRUE(writer.ok()) << writer.status().to_string();
  ASSERT_TRUE(writer->append_delta(retune("a3", 25.0)).ok());

  EXPECT_GE(
      support::MetricsRegistry::global().counter("io.journal.retries").value(),
      retries_before + 1);
  const auto contents = io::read_journal(path);
  ASSERT_TRUE(contents.ok()) << contents.status().to_string();
  EXPECT_EQ(contents->records_recovered, 2u);
  EXPECT_EQ(contents->bytes_dropped, 0u);  // the torn attempt was cleaned up
}

TEST(Journal, PersistentWriteFaultExhaustsRetriesAndHealsTheFile) {
  const std::string path = temp_path("retry_exhausted.journal");
  io::JournalOptions options;
  // Hits 2, 3, 4 = all three attempts of the first delta append.
  options.injector = std::make_shared<FaultInjector>(
      FaultPlan::parse(
          "io.journal.write@2;io.journal.write@3;io.journal.write@4")
          .value());
  auto writer =
      io::JournalWriter::create(path, workloads::wan2002(), options);
  ASSERT_TRUE(writer.ok()) << writer.status().to_string();

  const support::Status failed = writer->append_delta(retune("a3", 25.0));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), ErrorCode::kInternal);
  EXPECT_NE(failed.to_string().find("io.journal.write"), std::string::npos)
      << failed.to_string();
  EXPECT_NE(failed.to_string().find("3 attempt"), std::string::npos)
      << failed.to_string();

  // The failed record was truncated out: the file is still a valid
  // snapshot-only journal.
  const auto contents = io::read_journal(path);
  ASSERT_TRUE(contents.ok()) << contents.status().to_string();
  EXPECT_EQ(contents->records_recovered, 1u);
  EXPECT_EQ(contents->bytes_dropped, 0u);
}

TEST(Journal, FsyncFaultIsRetriedLikeAWriteFault) {
  const std::string path = temp_path("fsync_retry.journal");
  io::JournalOptions options;
  options.injector = std::make_shared<FaultInjector>(
      FaultPlan::parse("io.journal.fsync@1").value());
  auto writer =
      io::JournalWriter::create(path, workloads::wan2002(), options);
  ASSERT_TRUE(writer.ok()) << writer.status().to_string();  // retried
  const auto contents = io::read_journal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->records_recovered, 1u);
}

TEST(Journal, OpenFaultFailsCreation) {
  io::JournalOptions options;
  options.injector = std::make_shared<FaultInjector>(
      FaultPlan::parse("io.journal.open@1").value());
  auto writer = io::JournalWriter::create(temp_path("open_fault.journal"),
                                          workloads::wan2002(), options);
  ASSERT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), ErrorCode::kInternal);
}

TEST(Journal, TruncateLastRecordUndoesAppends) {
  const std::string path = temp_path("truncate.journal");
  auto writer = io::JournalWriter::create(path, workloads::wan2002());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->append_delta(retune("a3", 25.0)).ok());
  ASSERT_TRUE(writer->append_delta(retune("a1", 15.0)).ok());

  ASSERT_TRUE(writer->truncate_last_record().ok());
  auto contents = io::read_journal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->deltas.size(), 1u);

  ASSERT_TRUE(writer->truncate_last_record().ok());
  contents = io::read_journal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->deltas.size(), 0u);

  // The base snapshot is not removable.
  EXPECT_FALSE(writer->truncate_last_record().ok());
}

// ---------------------------------------------------------------------------
// Engine::recover crash-recovery pin (acceptance criterion)
// ---------------------------------------------------------------------------

/// Three small generic batches valid on any workload graph: retune the
/// first channel, nudge the first port, add a port + channel.
std::vector<model::Delta> generic_script(const model::ConstraintGraph& cg) {
  const std::vector<model::VertexId> ports = cg.ports();
  const std::string arc0 = cg.channel(model::ArcId{0}).name;
  const std::string port0 = cg.port(ports.at(0)).name;
  const std::string port1 = cg.port(ports.at(1)).name;
  const geom::Point2D p0 = cg.port(ports.at(0)).position;

  std::vector<model::Delta> script(3);
  script[0].ops.push_back(
      model::SetBandwidthOp{arc0, cg.bandwidth(model::ArcId{0}) * 1.5});
  script[1].ops.push_back(model::MovePortOp{port0, {p0.x + 0.5, p0.y - 0.5}});
  script[2].ops.push_back(model::AddPortOp{"jp1", {p0.x + 1.0, p0.y + 1.0}});
  script[2].ops.push_back(model::AddArcOp{"je1", port1, "jp1", 7.5});
  return script;
}

/// The pin itself: run a journaled session, then for EVERY record boundary
/// (and one torn mid-record offset) truncate a copy of the journal there,
/// recover, resynthesize, and demand the bit-identical fingerprint the
/// uninterrupted session produced at that point.
void recovery_pin(const std::string& tag, model::ConstraintGraph base,
                  const commlib::Library& lib, int threads) {
  const std::string path = temp_path("pin_" + tag + ".journal");
  synth::SynthesisOptions options;
  options.threads = threads;

  synth::Engine engine(base, lib, options);
  ASSERT_TRUE(engine.open_journal(path).ok());
  std::vector<std::string> fps;  // fps[k] = fingerprint after k deltas
  const auto baseline = engine.resynthesize();
  ASSERT_TRUE(baseline.ok()) << baseline.status().to_string();
  fps.push_back(fingerprint(*baseline));
  const std::vector<model::Delta> script = generic_script(engine.graph());
  for (const model::Delta& d : script) {
    const auto r = engine.apply(d);
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    fps.push_back(fingerprint(*r));
  }
  engine.close_journal();

  const auto contents = io::read_journal(path);
  ASSERT_TRUE(contents.ok()) << contents.status().to_string();
  ASSERT_EQ(contents->records_recovered, 1u + script.size());
  const std::string full = read_file(path);

  // Record boundaries: after the snapshot, after each delta.
  std::vector<std::uint64_t> boundaries(contents->record_offsets.begin() + 1,
                                        contents->record_offsets.end());
  boundaries.push_back(contents->valid_prefix_bytes);
  for (std::size_t k = 0; k < boundaries.size(); ++k) {
    const std::string cut = temp_path("pin_" + tag + "_cut.journal");
    write_file(cut, full.substr(0, boundaries[k]));

    synth::Engine::RecoveryReport report;
    auto recovered = synth::Engine::recover(cut, lib, options,
                                            synth::Engine::WarmPolicy::kBitIdentical,
                                            &report);
    ASSERT_TRUE(recovered.ok())
        << tag << " boundary " << k << ": " << recovered.status().to_string();
    EXPECT_EQ(report.records_recovered, k + 1);
    EXPECT_EQ(report.deltas_replayed, k);
    EXPECT_FALSE(report.tail_truncated);

    const auto result = (*recovered)->resynthesize();
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    EXPECT_EQ(fingerprint(*result), fps[k])
        << tag << " boundary " << k << " threads " << threads;
  }

  // Torn mid-record: all but half of the last record. Recovery truncates
  // the torn bytes and lands on the previous boundary's state.
  const std::uint64_t last_start =
      contents->record_offsets.back();
  const std::uint64_t torn_end =
      last_start + (contents->valid_prefix_bytes - last_start) / 2;
  const std::string torn = temp_path("pin_" + tag + "_torn.journal");
  write_file(torn, full.substr(0, torn_end));

  synth::Engine::RecoveryReport report;
  auto recovered = synth::Engine::recover(torn, lib, options,
                                          synth::Engine::WarmPolicy::kBitIdentical,
                                          &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_TRUE(report.tail_truncated);
  EXPECT_GT(report.bytes_dropped, 0u);
  EXPECT_EQ(report.deltas_replayed, script.size() - 1);
  const auto result = (*recovered)->resynthesize();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(fingerprint(*result), fps[script.size() - 1]) << tag << " torn";
  // The healed journal keeps accepting appends: replay the last batch and
  // converge with the uninterrupted session.
  EXPECT_TRUE((*recovered)->journaling());
  const auto replayed = (*recovered)->apply(script.back());
  ASSERT_TRUE(replayed.ok()) << replayed.status().to_string();
  EXPECT_EQ(fingerprint(*replayed), fps[script.size()]) << tag << " replay";
}

TEST(EngineRecovery, WanBitIdenticalAtEveryBoundary1Thread) {
  recovery_pin("wan_t1", workloads::wan2002(), commlib::wan_library(), 1);
}
TEST(EngineRecovery, WanBitIdenticalAtEveryBoundary2Threads) {
  recovery_pin("wan_t2", workloads::wan2002(), commlib::wan_library(), 2);
}
TEST(EngineRecovery, WanBitIdenticalAtEveryBoundary8Threads) {
  recovery_pin("wan_t8", workloads::wan2002(), commlib::wan_library(), 8);
}
TEST(EngineRecovery, SocBitIdenticalAtEveryBoundary1Thread) {
  recovery_pin("soc_t1", workloads::mpeg4_soc(), commlib::soc_library(), 1);
}
TEST(EngineRecovery, SocBitIdenticalAtEveryBoundary2Threads) {
  recovery_pin("soc_t2", workloads::mpeg4_soc(), commlib::soc_library(), 2);
}
TEST(EngineRecovery, SocBitIdenticalAtEveryBoundary8Threads) {
  recovery_pin("soc_t8", workloads::mpeg4_soc(), commlib::soc_library(), 8);
}
TEST(EngineRecovery, NocBitIdenticalAtEveryBoundary1Thread) {
  workloads::NocMeshParams p;
  p.rows = 3;
  p.cols = 3;
  recovery_pin("noc_t1", workloads::noc_mesh(p), commlib::noc_library(), 1);
}
TEST(EngineRecovery, NocBitIdenticalAtEveryBoundary2Threads) {
  workloads::NocMeshParams p;
  p.rows = 3;
  p.cols = 3;
  recovery_pin("noc_t2", workloads::noc_mesh(p), commlib::noc_library(), 2);
}
TEST(EngineRecovery, NocBitIdenticalAtEveryBoundary8Threads) {
  workloads::NocMeshParams p;
  p.rows = 3;
  p.cols = 3;
  recovery_pin("noc_t8", workloads::noc_mesh(p), commlib::noc_library(), 8);
}

TEST(EngineRecovery, RecoverOnMissingFileFailsCleanly) {
  auto recovered = synth::Engine::recover(temp_path("does_not_exist.journal"),
                                          commlib::wan_library());
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), ErrorCode::kInvalidInput);
}

TEST(EngineRecovery, InjectedRecoverFaultSurfacesAsInternal) {
  const std::string path = temp_path("recover_fault.journal");
  {
    synth::Engine engine(workloads::wan2002(), commlib::wan_library());
    ASSERT_TRUE(engine.open_journal(path).ok());
    ASSERT_TRUE(engine.resynthesize().ok());
  }
  synth::SynthesisOptions options;
  options.fault_injection.injector = std::make_shared<FaultInjector>(
      FaultPlan::parse("engine.recover@1").value());
  auto recovered =
      synth::Engine::recover(path, commlib::wan_library(), options);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), ErrorCode::kInternal);
  // Second try: the nth-hit rule is spent, recovery succeeds.
  auto retried = synth::Engine::recover(path, commlib::wan_library(), options);
  EXPECT_TRUE(retried.ok()) << retried.status().to_string();
}

}  // namespace
}  // namespace cdcs
