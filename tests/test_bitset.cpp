// Word-boundary behavior of ucp::Bitset (ISSUE 8 satellite): the parallel
// branch-and-bound engines lean on these kernels from many threads at once,
// so every word-parallel operation is pinned against the obvious per-bit
// definition at sizes that straddle the 64-bit word edge (63/64/65/128),
// with particular attention to the trailing-word mask. Also pins the
// CoverProblem::row_cover lazy transpose, which the NodeEvaluator warms
// once and then reads concurrently.
#include <vector>

#include <gtest/gtest.h>

#include "ucp/bitset.hpp"
#include "ucp/cover.hpp"

namespace cdcs::ucp {
namespace {

const std::size_t kEdgeSizes[] = {63, 64, 65, 128};

/// Reference model: the same set as plain bools.
std::vector<bool> as_bools(const Bitset& b) {
  std::vector<bool> out(b.size(), false);
  b.for_each([&](std::size_t i) { out[i] = true; });
  return out;
}

TEST(BitsetBoundary, SetAllMasksTheTrailingWord) {
  for (const std::size_t n : kEdgeSizes) {
    Bitset b(n);
    b.set_all();
    EXPECT_EQ(b.count(), n) << n;
    EXPECT_TRUE(b.any()) << n;
    // Every in-range bit set, and iteration never escapes the range.
    std::size_t seen = 0;
    std::size_t max_index = 0;
    b.for_each([&](std::size_t i) {
      ++seen;
      max_index = i;
    });
    EXPECT_EQ(seen, n) << n;
    EXPECT_EQ(max_index, n - 1) << n;
    // A full word-parallel complement pass finds nothing outside the range:
    // subtracting the full set from itself must empty it exactly.
    Bitset c = b;
    c.subtract(b);
    EXPECT_TRUE(c.none()) << n;
    EXPECT_EQ(c.count(), 0u) << n;
  }
}

TEST(BitsetBoundary, SetTestResetAtWordEdges) {
  Bitset b(128);
  for (const std::size_t i : {std::size_t{0}, std::size_t{62}, std::size_t{63},
                              std::size_t{64}, std::size_t{127}}) {
    EXPECT_FALSE(b.test(i)) << i;
    b.set(i);
    EXPECT_TRUE(b.test(i)) << i;
  }
  EXPECT_EQ(b.count(), 5u);
  EXPECT_EQ(b.first(), 0u);
  b.reset(0);
  EXPECT_EQ(b.first(), 62u);
  b.reset(63);
  EXPECT_TRUE(b.test(62));
  EXPECT_TRUE(b.test(64));  // neighbours across the edge untouched
  EXPECT_EQ(b.count(), 3u);
}

TEST(BitsetBoundary, SetAlgebraAcrossTheWordEdge) {
  for (const std::size_t n : kEdgeSizes) {
    Bitset a(n);
    Bitset b(n);
    // a = every third bit, b = every fourth: straddles 63/64 whenever the
    // size does.
    for (std::size_t i = 0; i < n; i += 3) a.set(i);
    for (std::size_t i = 0; i < n; i += 4) b.set(i);

    Bitset uni = a;
    uni.unite(b);
    Bitset inter = a;
    inter.intersect(b);
    Bitset diff = a;
    diff.subtract(b);
    Bitset ua(n);
    ua.unite_and(a, b);  // starts empty: equals a & b

    const std::vector<bool> av = as_bools(a);
    const std::vector<bool> bv = as_bools(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(uni.test(i), av[i] || bv[i]) << n << ':' << i;
      EXPECT_EQ(inter.test(i), av[i] && bv[i]) << n << ':' << i;
      EXPECT_EQ(diff.test(i), av[i] && !bv[i]) << n << ':' << i;
      EXPECT_EQ(ua.test(i), av[i] && bv[i]) << n << ':' << i;
    }
    EXPECT_EQ(ua, inter) << n;
    EXPECT_EQ(a.intersection_count(b), inter.count()) << n;
    EXPECT_EQ(a.intersects(b), inter.any()) << n;
    EXPECT_TRUE(inter.is_subset_of(a)) << n;
    EXPECT_TRUE(inter.is_subset_of(b)) << n;
    EXPECT_EQ(a.is_subset_of(uni), true) << n;
  }
}

TEST(BitsetBoundary, CappedCountAndMaskedProbesNearTheEdge) {
  Bitset a(65);
  a.set(62);
  a.set(63);
  a.set(64);
  Bitset b(65);
  b.set(63);
  b.set(64);

  EXPECT_EQ(a.intersection_count(b), 2u);
  EXPECT_EQ(a.intersection_count_capped(b, 1), 1u);
  EXPECT_EQ(a.intersection_count_capped(b, 2), 2u);
  EXPECT_EQ(a.intersection_count_capped(b, 8), 2u);
  EXPECT_EQ(a.first_and(b), 63u);

  Bitset mask(65);
  EXPECT_FALSE(a.intersects_masked(b, mask));  // empty mask
  mask.set(64);  // the lone bit of the trailing word
  EXPECT_TRUE(a.intersects_masked(b, mask));
  EXPECT_TRUE(a.and_is_subset_of(mask, b));  // a & {64} = {64} subseteq b
  mask.set(62);
  EXPECT_FALSE(a.and_is_subset_of(mask, b));  // 62 in a & mask, not in b

  // first()/first_and() return size() (one PAST the last valid index) on
  // empty intersections -- pinned, because callers compare against it.
  Bitset empty(65);
  EXPECT_EQ(empty.first(), 65u);
  EXPECT_EQ(a.first_and(empty), 65u);
}

TEST(BitsetBoundary, DotAndReachesTheTrailingWord) {
  Bitset cols(65);
  cols.set(1);
  cols.set(63);
  cols.set(64);
  Bitset mask(65);
  mask.set(63);
  mask.set(64);
  std::vector<double> weights(65, 0.0);
  weights[1] = 100.0;  // masked out; must not contribute
  weights[63] = 1.5;
  weights[64] = 2.25;
  EXPECT_DOUBLE_EQ(cols.dot_and(mask, weights.data()), 3.75);
}

TEST(BitsetBoundary, ForEachVariantsAscendAcrossWords) {
  Bitset b(128);
  const std::vector<std::size_t> want = {0, 63, 64, 100, 127};
  for (std::size_t i : want) b.set(i);

  std::vector<std::size_t> seen;
  b.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, want);

  // for_each_until stops exactly at the first hit past the word edge.
  std::vector<std::size_t> until;
  const bool stopped = b.for_each_until([&](std::size_t i) {
    until.push_back(i);
    return i >= 64;
  });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(until, (std::vector<std::size_t>{0, 63, 64}));

  Bitset other(128);
  other.set(63);
  other.set(127);
  std::vector<std::size_t> both;
  b.for_each_and(other, [&](std::size_t i) { both.push_back(i); });
  EXPECT_EQ(both, (std::vector<std::size_t>{63, 127}));
}

TEST(BitsetBoundary, EqualityComparesTheMaskedRepresentation) {
  for (const std::size_t n : kEdgeSizes) {
    Bitset a(n);
    Bitset b(n);
    a.set_all();
    for (std::size_t i = 0; i < n; ++i) b.set(i);
    // set_all's word-parallel fill and the per-bit loop must agree exactly,
    // including the trailing-word mask (operator== compares raw words).
    EXPECT_EQ(a, b) << n;
    b.reset(n - 1);
    EXPECT_FALSE(a == b) << n;
  }
}

// The lazy transpose the solvers (and the parallel NodeEvaluator warm-up)
// depend on: row_cover(r) lists exactly the columns covering r, and the
// cache rebuilds after add_column invalidates it.
TEST(BitsetBoundary, RowCoverTransposeTracksMutation) {
  // 70 rows forces two words in every row_cover bitset... transposed the
  // other way: 70 columns per row set straddles the word edge.
  CoverProblem p(3);
  for (std::size_t j = 0; j < 70; ++j) {
    std::vector<std::size_t> rows;
    if (j % 2 == 0) rows.push_back(0);
    if (j % 3 == 0) rows.push_back(1);
    if (rows.empty()) rows.push_back(2);
    p.add_column(rows, 1.0);
  }
  for (std::size_t r = 0; r < 3; ++r) {
    const Bitset& cov = p.row_cover(r);
    EXPECT_EQ(cov.size(), p.num_columns());
    cov.for_each([&](std::size_t j) {
      EXPECT_TRUE(p.column(j).rows.test(r)) << r << ':' << j;
    });
    for (std::size_t j = 0; j < p.num_columns(); ++j) {
      EXPECT_EQ(cov.test(j), p.column(j).rows.test(r)) << r << ':' << j;
    }
  }

  // Mutate after the first read: the transpose must grow and stay exact.
  const std::size_t added = p.add_column({0, 2}, 1.0);
  const Bitset& cov0 = p.row_cover(0);
  EXPECT_EQ(cov0.size(), p.num_columns());
  EXPECT_TRUE(cov0.test(added));
  EXPECT_FALSE(p.row_cover(1).test(added));
  EXPECT_TRUE(p.row_cover(2).test(added));
}

}  // namespace
}  // namespace cdcs::ucp
