#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "model/validator.hpp"
#include "synth/synthesizer.hpp"

namespace cdcs::synth {
namespace {

using model::ArcId;
using model::ConstraintGraph;
using model::VertexId;

/// Source at the origin, three 15 Mbps channels to collinear targets at
/// x = 10, 20, 30 km. Per-channel 15 Mbps exceeds the 11 Mbps radio, so
/// every star spoke costs optical-rate $4000/km -- the chain (whose
/// segments reuse the same corridor) should win 120k vs 160k.
ConstraintGraph bus_instance() {
  ConstraintGraph cg;
  const VertexId s = cg.add_port("s", {0, 0});
  const VertexId t1 = cg.add_port("t1", {10, 0});
  const VertexId t2 = cg.add_port("t2", {20, 0});
  const VertexId t3 = cg.add_port("t3", {30, 0});
  cg.add_channel(s, t1, 15.0, "c1");
  cg.add_channel(s, t2, 15.0, "c2");
  cg.add_channel(s, t3, 15.0, "c3");
  return cg;
}

TEST(ChainPricer, BeatsStarOnCollinearBus) {
  const ConstraintGraph cg = bus_instance();
  const commlib::Library lib = commlib::wan_library();
  const std::vector<ArcId> subset = {ArcId{0}, ArcId{1}, ArcId{2}};

  const auto star = price_merging(cg, lib, subset);
  const auto chain = price_chain_merging(cg, lib, subset);
  ASSERT_TRUE(star.has_value());
  ASSERT_TRUE(chain.has_value());
  EXPECT_NEAR(chain->cost, 120000.0, 500.0);
  EXPECT_NEAR(star->cost, 160000.0, 500.0);
  EXPECT_LT(chain->cost, star->cost);
}

TEST(ChainPricer, OrdersDropsAlongTheCorridor) {
  const ConstraintGraph cg = bus_instance();
  const commlib::Library lib = commlib::wan_library();
  // Shuffled subset order must not matter: drops come out nearest-first.
  const auto chain =
      price_chain_merging(cg, lib, {ArcId{2}, ArcId{0}, ArcId{1}});
  ASSERT_TRUE(chain.has_value());
  ASSERT_EQ(chain->arcs.size(), 3u);
  EXPECT_EQ(chain->arcs[0], ArcId{0});  // t1 dropped first
  EXPECT_EQ(chain->arcs[1], ArcId{1});
  EXPECT_EQ(chain->arcs[2], ArcId{2});  // t3 terminates the trunk
  ASSERT_EQ(chain->drop_pos.size(), 2u);
  EXPECT_NEAR(chain->drop_pos[0].x, 10.0, 1e-6);
  EXPECT_NEAR(chain->drop_pos[1].x, 20.0, 1e-6);
  // Segment bandwidths shrink as channels drop off: 45, 30, 15.
  ASSERT_EQ(chain->segment_bandwidth.size(), 3u);
  EXPECT_DOUBLE_EQ(chain->segment_bandwidth[0], 45.0);
  EXPECT_DOUBLE_EQ(chain->segment_bandwidth[1], 30.0);
  EXPECT_DOUBLE_EQ(chain->segment_bandwidth[2], 15.0);
}

TEST(ChainPricer, TargetRootedMirror) {
  ConstraintGraph cg;
  const VertexId s1 = cg.add_port("s1", {10, 0});
  const VertexId s2 = cg.add_port("s2", {20, 0});
  const VertexId s3 = cg.add_port("s3", {30, 0});
  const VertexId t = cg.add_port("t", {0, 0});
  cg.add_channel(s1, t, 15.0);
  cg.add_channel(s2, t, 15.0);
  cg.add_channel(s3, t, 15.0);
  const auto chain = price_chain_merging(cg, commlib::wan_library(),
                                         {ArcId{0}, ArcId{1}, ArcId{2}});
  ASSERT_TRUE(chain.has_value());
  EXPECT_FALSE(chain->source_rooted);
  EXPECT_NEAR(chain->cost, 120000.0, 500.0);
}

TEST(ChainPricer, RejectsHeterogeneousEndpoints) {
  ConstraintGraph cg;
  const VertexId a = cg.add_port("a", {0, 0});
  const VertexId b = cg.add_port("b", {10, 0});
  const VertexId c = cg.add_port("c", {0, 10});
  const VertexId d = cg.add_port("d", {10, 10});
  cg.add_channel(a, b, 10.0);
  cg.add_channel(c, d, 10.0);
  EXPECT_FALSE(price_chain_merging(cg, commlib::wan_library(),
                                   {ArcId{0}, ArcId{1}})
                   .has_value());
}

TEST(ChainPricer, RejectsParallelArcs) {
  // Common source AND target: the star (shared trunk, no nodes) is the
  // canonical structure; the chain declines.
  ConstraintGraph cg;
  const VertexId a = cg.add_port("a", {0, 0});
  const VertexId b = cg.add_port("b", {10, 0});
  cg.add_channel(a, b, 10.0);
  cg.add_channel(a, b, 10.0);
  EXPECT_FALSE(price_chain_merging(cg, commlib::wan_library(),
                                   {ArcId{0}, ArcId{1}})
                   .has_value());
}

TEST(ChainPricer, RequiresDropNode) {
  const ConstraintGraph cg = bus_instance();
  commlib::Library lib("nodrop");
  lib.add_link(commlib::Link{
      .name = "l", .bandwidth = 100.0, .cost_per_length = 1.0});
  EXPECT_FALSE(price_chain_merging(cg, lib, {ArcId{0}, ArcId{1}, ArcId{2}})
                   .has_value());
}

TEST(ChainSynthesis, EndToEndSelectsChainAndValidates) {
  const ConstraintGraph cg = bus_instance();
  const commlib::Library lib = commlib::wan_library();
  const SynthesisResult result = synthesize(cg, lib).value();
  ASSERT_TRUE(result.cover.optimal);
  EXPECT_TRUE(result.validation.ok()) << (result.validation.problems.empty()
                                              ? ""
                                              : result.validation.problems[0]);
  // The chain over all three channels is the optimum.
  ASSERT_EQ(result.cover.chosen.size(), 1u);
  const Candidate& c = *result.selected().front();
  ASSERT_TRUE(c.chain.has_value());
  EXPECT_NEAR(result.total_cost, 120000.0, 500.0);
  // Structure: two demux-capable drops materialized.
  EXPECT_EQ(result.implementation->num_comm_vertices(), 2u);
  // All three arcs classified as merged (they share trunk segment 1).
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(result.implementation->classify(ArcId{i}),
              model::ImplKind::kMergedShare);
  }
}

TEST(ChainSynthesis, TargetRootedEndToEndValidates) {
  ConstraintGraph cg;
  const VertexId s1 = cg.add_port("s1", {10, 2});
  const VertexId s2 = cg.add_port("s2", {21, -1});
  const VertexId s3 = cg.add_port("s3", {30, 1});
  const VertexId t = cg.add_port("t", {0, 0});
  cg.add_channel(s1, t, 15.0);
  cg.add_channel(s2, t, 15.0);
  cg.add_channel(s3, t, 15.0);
  const SynthesisResult result = synthesize(cg, commlib::wan_library()).value();
  EXPECT_TRUE(result.validation.ok()) << (result.validation.problems.empty()
                                              ? ""
                                              : result.validation.problems[0]);
  bool used_chain = false;
  for (const Candidate* c : result.selected()) {
    if (c->chain) used_chain = true;
  }
  EXPECT_TRUE(used_chain);
}

TEST(ChainSynthesis, DisablingChainsFallsBackToStar) {
  const ConstraintGraph cg = bus_instance();
  const commlib::Library lib = commlib::wan_library();
  SynthesisOptions star_only_opts;
  star_only_opts.enable_chain_topology = false;
  // The Steiner tree of collinear targets IS the chain, so it must be
  // disabled too for a genuine star-only run.
  star_only_opts.enable_tree_topology = false;
  const SynthesisResult star_only = synthesize(cg, lib, star_only_opts).value();
  const SynthesisResult with_chain = synthesize(cg, lib).value();
  EXPECT_TRUE(star_only.validation.ok());
  EXPECT_GT(star_only.total_cost, with_chain.total_cost);
  for (const Candidate* c : star_only.selected()) {
    EXPECT_FALSE(c->chain.has_value());
    EXPECT_FALSE(c->tree.has_value());
  }

  // With only chains disabled, the tree structure recovers the same cost.
  SynthesisOptions no_chain;
  no_chain.enable_chain_topology = false;
  const SynthesisResult tree_fallback = synthesize(cg, lib, no_chain).value();
  EXPECT_TRUE(tree_fallback.validation.ok());
  EXPECT_NEAR(tree_fallback.total_cost, with_chain.total_cost,
              1e-6 * with_chain.total_cost);
}

TEST(ChainSynthesis, WanStillPrefersStar) {
  // On the paper's WAN the star {a4,a5,a6} beats any chain, so enabling
  // chains must not change the Figure 4 architecture.
  const ConstraintGraph cg = [] {
    ConstraintGraph g;
    const VertexId d = g.add_port("D", {-2, -97});
    const VertexId a = g.add_port("A", {0, 0});
    const VertexId b = g.add_port("B", {4, 3});
    const VertexId c = g.add_port("C", {9, 1});
    g.add_channel(d, a, 10.0);
    g.add_channel(d, b, 10.0);
    g.add_channel(d, c, 10.0);
    return g;
  }();
  const commlib::Library lib = commlib::wan_library();
  const auto star = price_merging(cg, lib, {ArcId{0}, ArcId{1}, ArcId{2}});
  const auto chain =
      price_chain_merging(cg, lib, {ArcId{0}, ArcId{1}, ArcId{2}});
  ASSERT_TRUE(star.has_value());
  ASSERT_TRUE(chain.has_value());
  EXPECT_LT(star->cost, chain->cost);
}

}  // namespace
}  // namespace cdcs::synth
