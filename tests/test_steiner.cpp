#include <gtest/gtest.h>

#include "geom/steiner.hpp"
#include "synth/tree_pricer.hpp"

#include "commlib/standard_libraries.hpp"
#include "model/validator.hpp"
#include "synth/synthesizer.hpp"

namespace cdcs::geom {
namespace {

SteinerGraph path_graph(int n) {
  SteinerGraph g;
  g.num_vertices = n;
  for (int i = 0; i + 1 < n; ++i) {
    g.edges.push_back({static_cast<std::size_t>(i),
                       static_cast<std::size_t>(i + 1), 1.0});
  }
  return g;
}

TEST(SteinerGraphSolver, TwoTerminalsIsShortestPath) {
  // Triangle with a shortcut: 0-1 (5), 0-2 (1), 2-1 (1).
  SteinerGraph g;
  g.num_vertices = 3;
  g.edges.push_back({0, 1, 5.0});
  g.edges.push_back({0, 2, 1.0});
  g.edges.push_back({2, 1, 1.0});
  const SteinerTree t = steiner_in_graph(g, {0, 1});
  EXPECT_DOUBLE_EQ(t.cost, 2.0);
  EXPECT_EQ(t.edges.size(), 2u);
}

TEST(SteinerGraphSolver, StarCenterIsTheSteinerPoint) {
  // Terminals at the tips of a 3-spoke star; the optimum uses the center.
  SteinerGraph g;
  g.num_vertices = 4;  // 0 center, 1..3 tips
  g.edges.push_back({0, 1, 1.0});
  g.edges.push_back({0, 2, 1.0});
  g.edges.push_back({0, 3, 1.0});
  // Expensive direct rim edges that a pairwise-path solution would use.
  g.edges.push_back({1, 2, 2.5});
  g.edges.push_back({2, 3, 2.5});
  const SteinerTree t = steiner_in_graph(g, {1, 2, 3});
  EXPECT_DOUBLE_EQ(t.cost, 3.0);
  EXPECT_EQ(t.edges.size(), 3u);
}

TEST(SteinerGraphSolver, PathGraphSpansTheRange) {
  const SteinerGraph g = path_graph(6);
  const SteinerTree t = steiner_in_graph(g, {1, 4});
  EXPECT_DOUBLE_EQ(t.cost, 3.0);
  const SteinerTree t2 = steiner_in_graph(g, {0, 3, 5});
  EXPECT_DOUBLE_EQ(t2.cost, 5.0);
}

TEST(SteinerGraphSolver, SingleTerminalIsFree) {
  const SteinerGraph g = path_graph(3);
  const SteinerTree t = steiner_in_graph(g, {1});
  EXPECT_DOUBLE_EQ(t.cost, 0.0);
  EXPECT_TRUE(t.edges.empty());
}

TEST(SteinerGraphSolver, RejectsBadInputs) {
  const SteinerGraph g = path_graph(3);
  EXPECT_THROW(steiner_in_graph(g, {}), std::invalid_argument);
  EXPECT_THROW(steiner_in_graph(g, {0, 7}), std::invalid_argument);
  EXPECT_THROW(steiner_in_graph(g, {0, 0}), std::invalid_argument);
  SteinerGraph bad = g;
  bad.edges.push_back({0, 1, -1.0});
  EXPECT_THROW(steiner_in_graph(bad, {0, 1}), std::invalid_argument);
  // Disconnected terminals.
  SteinerGraph split;
  split.num_vertices = 4;
  split.edges.push_back({0, 1, 1.0});
  split.edges.push_back({2, 3, 1.0});
  EXPECT_THROW(steiner_in_graph(split, {0, 3}), std::runtime_error);
}

TEST(HananSteiner, RectilinearCrossUsesSteinerPoint) {
  // Four terminals at the arms of a plus sign: the RSMT routes through the
  // center Hanan point, total length 4; pairwise spanning would pay 6.
  const std::vector<Point2D> terminals = {
      {0, 1}, {2, 1}, {1, 0}, {1, 2}};
  const PlanarSteinerTree t =
      steiner_tree_on_hanan_grid(terminals, Norm::kManhattan);
  EXPECT_DOUBLE_EQ(t.cost, 4.0);
  // The center (1,1) must appear as a junction vertex.
  bool center = false;
  for (const Point2D& v : t.vertices) {
    if (almost_equal(v, {1, 1})) center = true;
  }
  EXPECT_TRUE(center);
}

TEST(HananSteiner, LShapeNeedsNoSteinerPoint) {
  const std::vector<Point2D> terminals = {{0, 0}, {3, 0}, {3, 4}};
  const PlanarSteinerTree t =
      steiner_tree_on_hanan_grid(terminals, Norm::kManhattan);
  EXPECT_DOUBLE_EQ(t.cost, 7.0);
}

TEST(HananSteiner, CoincidentTerminalsShareAVertex) {
  const std::vector<Point2D> terminals = {{0, 0}, {1, 0}, {1, 0}};
  const PlanarSteinerTree t =
      steiner_tree_on_hanan_grid(terminals, Norm::kManhattan);
  EXPECT_DOUBLE_EQ(t.cost, 1.0);
  EXPECT_EQ(t.terminal_vertex[1], t.terminal_vertex[2]);
}

TEST(HananSteiner, BeatsOrMatchesStarAndChainLowerBounds) {
  // Property: the RSMT cost never exceeds the best star (sum of center-to-
  // terminal distances over any Hanan center) or any chain over terminals.
  const std::vector<Point2D> terminals = {
      {0, 0}, {4, 1}, {2, 5}, {6, 3}, {1, 3}};
  const PlanarSteinerTree t =
      steiner_tree_on_hanan_grid(terminals, Norm::kManhattan);
  // Chain in input order.
  double chain = 0.0;
  for (std::size_t i = 0; i + 1 < terminals.size(); ++i) {
    chain += distance(terminals[i], terminals[i + 1], Norm::kManhattan);
  }
  EXPECT_LE(t.cost, chain + 1e-9);
  // Star at each terminal.
  for (const Point2D& c : terminals) {
    double star = 0.0;
    for (const Point2D& p : terminals) {
      star += distance(c, p, Norm::kManhattan);
    }
    EXPECT_LE(t.cost, star + 1e-9);
  }
}

TEST(HananSteiner, NeverExceedsTerminalMst) {
  // Property: the Steiner tree is at most the minimum spanning tree of the
  // terminals (the MST is a feasible Steiner tree). Random point sets,
  // deterministic LCG.
  std::uint64_t state = 0x2545F4914F6CDD1Dull;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) / 9007199254740992.0;
  };
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Point2D> pts;
    const int n = 3 + trial % 5;
    for (int i = 0; i < n; ++i) {
      pts.push_back({next() * 30.0, next() * 30.0});
    }
    const PlanarSteinerTree t =
        steiner_tree_on_hanan_grid(pts, Norm::kManhattan);
    // Prim's MST over the terminal metric closure.
    std::vector<bool> in(n, false);
    std::vector<double> key(n, 1e18);
    key[0] = 0.0;
    double mst = 0.0;
    for (int it = 0; it < n; ++it) {
      int best = -1;
      for (int v = 0; v < n; ++v) {
        if (!in[v] && (best == -1 || key[v] < key[best])) best = v;
      }
      in[best] = true;
      mst += key[best];
      for (int v = 0; v < n; ++v) {
        if (!in[v]) {
          key[v] = std::min(key[v],
                            distance(pts[best], pts[v], Norm::kManhattan));
        }
      }
    }
    EXPECT_LE(t.cost, mst + 1e-9) << "trial " << trial;
    // And at least the Steiner ratio bound: RSMT >= 2/3 * MST.
    EXPECT_GE(t.cost, 2.0 / 3.0 * mst - 1e-9) << "trial " << trial;
    // Tree edge lengths sum to the reported cost.
    double sum = 0.0;
    for (const auto& e : t.edges) sum += e.length;
    EXPECT_NEAR(sum, t.cost, 1e-9);
  }
}

}  // namespace
}  // namespace cdcs::geom

namespace cdcs::synth {
namespace {

using model::ArcId;
using model::ConstraintGraph;
using model::VertexId;

TEST(TreePricer, CrossFanoutBeatsStarAndChain) {
  // Manhattan cross with an extended north arm. Under the max capacity
  // policy every edge carries the same unit bandwidth, so pricing is pure
  // length and the RSMT topology is provably the best of the three
  // structures: it shares the stem, branches at the crossing, and serves
  // the far-north target by passing through the near one.
  // (Under sum-based pricing no structure dominates universally -- trunk
  // bandwidth upgrades can favor chains; the generator prices all three.)
  ConstraintGraph cg(geom::Norm::kManhattan);
  const VertexId s = cg.add_port("s", {2, 0});
  const VertexId t1 = cg.add_port("t1", {0, 4});
  const VertexId t2 = cg.add_port("t2", {2, 6});
  const VertexId t3 = cg.add_port("t3", {4, 4});
  const VertexId t4 = cg.add_port("t4", {2, 8});
  cg.add_channel(s, t1, 1.0);
  cg.add_channel(s, t2, 1.0);
  cg.add_channel(s, t3, 1.0);
  cg.add_channel(s, t4, 1.0);
  const commlib::Library lib = commlib::noc_library(/*l_crit_mm=*/10.0);
  const std::vector<ArcId> all = {ArcId{0}, ArcId{1}, ArcId{2}, ArcId{3}};
  const auto policy = model::CapacityPolicy::kMaxPerConstraint;

  const auto tree = price_tree_merging(cg, lib, all, policy);
  const auto star = price_merging(cg, lib, all, policy);
  const auto chain = price_chain_merging(cg, lib, all, policy);
  ASSERT_TRUE(tree.has_value());
  ASSERT_TRUE(star.has_value());
  ASSERT_TRUE(chain.has_value());
  EXPECT_LT(tree->cost, star->cost);
  EXPECT_LT(tree->cost, chain->cost);
  EXPECT_TRUE(tree->source_rooted);
  // RSMT wire length is 12 mm; one branching junction plus the drop
  // junction at the pass-through terminal t2.
  double edge_len = 0.0;
  for (const auto& e : tree->edges) edge_len += e.plan.span;
  EXPECT_NEAR(edge_len, 12.0, 1e-9);
  EXPECT_TRUE(tree->drop[1].has_value());  // t2 sits at a junction
}

TEST(TreePricer, RejectsMixedEndpointsAndParallelArcs) {
  ConstraintGraph cg;
  const VertexId a = cg.add_port("a", {0, 0});
  const VertexId b = cg.add_port("b", {5, 0});
  const VertexId c = cg.add_port("c", {0, 5});
  const VertexId d = cg.add_port("d", {5, 5});
  cg.add_channel(a, b, 1.0);
  cg.add_channel(c, d, 1.0);
  cg.add_channel(a, b, 1.0);
  const commlib::Library lib = commlib::wan_library();
  EXPECT_FALSE(price_tree_merging(cg, lib, {ArcId{0}, ArcId{1}}).has_value());
  EXPECT_FALSE(price_tree_merging(cg, lib, {ArcId{0}, ArcId{2}}).has_value());
}

TEST(TreePricer, EndToEndTreeSelectionValidates) {
  // A 2-D hotspot where the tree is the natural aggregation structure.
  ConstraintGraph cg(geom::Norm::kManhattan);
  const VertexId hub = cg.add_port("mem", {2, 0});
  const VertexId a = cg.add_port("a", {0, 3});
  const VertexId b = cg.add_port("b", {2, 4});
  const VertexId c = cg.add_port("c", {4, 3});
  cg.add_channel(a, hub, 1.0);
  cg.add_channel(b, hub, 1.0);
  cg.add_channel(c, hub, 1.0);
  const commlib::Library lib = commlib::noc_library(/*l_crit_mm=*/0.6);
  synth::SynthesisOptions opts;
  opts.drop_unprofitable = true;
  const SynthesisResult result = synthesize(cg, lib, opts).value();
  EXPECT_TRUE(result.validation.ok())
      << (result.validation.problems.empty()
              ? ""
              : result.validation.problems.front());
  // Whatever structure wins, it must not lose to point-to-point; and if a
  // tree was selected, its materialization round-trips the validator.
  for (const Candidate* cand : result.selected()) {
    if (cand->tree) {
      EXPECT_FALSE(cand->tree->source_rooted);  // common target
      EXPECT_GE(cand->tree->edges.size(), cand->arcs.size());
    }
  }
}

TEST(TreePricer, DegradesToChainOnCollinearTargets) {
  // Collinear corridor: tree cost equals the chain cost (same structure).
  ConstraintGraph cg;
  const VertexId s = cg.add_port("s", {0, 0});
  const VertexId t1 = cg.add_port("t1", {10, 0});
  const VertexId t2 = cg.add_port("t2", {20, 0});
  const VertexId t3 = cg.add_port("t3", {30, 0});
  cg.add_channel(s, t1, 15.0);
  cg.add_channel(s, t2, 15.0);
  cg.add_channel(s, t3, 15.0);
  const commlib::Library lib = commlib::wan_library();
  const std::vector<ArcId> all = {ArcId{0}, ArcId{1}, ArcId{2}};
  const auto tree = price_tree_merging(cg, lib, all);
  const auto chain = price_chain_merging(cg, lib, all);
  ASSERT_TRUE(tree.has_value());
  ASSERT_TRUE(chain.has_value());
  EXPECT_NEAR(tree->cost, chain->cost, 1e-6 * chain->cost);
}

}  // namespace
}  // namespace cdcs::synth
