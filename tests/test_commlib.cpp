#include <cmath>

#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"

namespace cdcs::commlib {
namespace {

TEST(Link, SpanAndCost) {
  const Link l{.name = "wire",
               .max_span = 0.6,
               .bandwidth = 1.0,
               .fixed_cost = 2.0,
               .cost_per_length = 5.0};
  EXPECT_TRUE(l.spans(0.6));
  EXPECT_TRUE(l.spans(0.0));
  EXPECT_FALSE(l.spans(0.61));
  EXPECT_DOUBLE_EQ(l.cost(0.4), 2.0 + 5.0 * 0.4);
}

TEST(Node, SwitchActsAsAnything) {
  const Node sw{.name = "sw", .kind = NodeKind::kSwitch, .cost = 1.0};
  EXPECT_TRUE(sw.can_act_as(NodeKind::kRepeater));
  EXPECT_TRUE(sw.can_act_as(NodeKind::kMux));
  EXPECT_TRUE(sw.can_act_as(NodeKind::kDemux));
  EXPECT_TRUE(sw.can_act_as(NodeKind::kSwitch));
  const Node rep{.name = "rep", .kind = NodeKind::kRepeater, .cost = 1.0};
  EXPECT_TRUE(rep.can_act_as(NodeKind::kRepeater));
  EXPECT_FALSE(rep.can_act_as(NodeKind::kMux));
}

TEST(Library, LookupByName) {
  Library lib("test");
  lib.add_link(Link{.name = "a", .bandwidth = 1.0});
  lib.add_link(Link{.name = "b", .bandwidth = 2.0});
  lib.add_node(Node{.name = "r", .kind = NodeKind::kRepeater, .cost = 3.0});
  EXPECT_EQ(lib.find_link("b").value(), 1u);
  EXPECT_FALSE(lib.find_link("zzz").has_value());
  EXPECT_EQ(lib.find_node("r").value(), 0u);
  EXPECT_FALSE(lib.find_node("zzz").has_value());
}

TEST(Library, CheapestNodePrefersSpecificOverExpensiveSwitch) {
  Library lib("test");
  lib.add_node(Node{.name = "sw", .kind = NodeKind::kSwitch, .cost = 10.0});
  lib.add_node(Node{.name = "rep", .kind = NodeKind::kRepeater, .cost = 2.0});
  EXPECT_EQ(lib.node(*lib.cheapest_node(NodeKind::kRepeater)).name, "rep");
  // No mux exists, but the switch can stand in.
  EXPECT_EQ(lib.node(*lib.cheapest_node(NodeKind::kMux)).name, "sw");
}

TEST(Library, CheapestNodeEmptyWhenNothingFits) {
  Library lib("test");
  lib.add_node(Node{.name = "rep", .kind = NodeKind::kRepeater, .cost = 1.0});
  EXPECT_FALSE(lib.cheapest_node(NodeKind::kMux).has_value());
}

TEST(Library, MaxBandwidthAndSpan) {
  const Library wan = wan_library();
  EXPECT_DOUBLE_EQ(wan.max_link_bandwidth(), 1000.0);
  EXPECT_TRUE(std::isinf(wan.max_link_span()));
  const Library soc = soc_library(0.6);
  EXPECT_DOUBLE_EQ(soc.max_link_span(), 0.6);
}

TEST(Library, ValidateFlagsProblems) {
  Library lib("bad");
  EXPECT_FALSE(lib.validate().empty());  // no links

  lib.add_link(Link{.name = "zero-bw", .bandwidth = 0.0});
  lib.add_link(Link{.name = "neg-cost", .bandwidth = 1.0, .fixed_cost = -1.0});
  lib.add_link(Link{.name = "free-unbounded", .bandwidth = 1.0});
  lib.add_node(Node{.name = "neg-node", .cost = -2.0});
  // zero-bw trips both the bandwidth check and (being unbounded and free)
  // the Assumption-2.1 positivity check: 2 + 1 + 1 + 1.
  const auto problems = lib.validate();
  EXPECT_EQ(problems.size(), 5u);
}

TEST(StandardLibraries, WanMatchesPaper) {
  const Library lib = wan_library();
  ASSERT_TRUE(lib.find_link("radio").has_value());
  ASSERT_TRUE(lib.find_link("optical").has_value());
  const Link& radio = lib.link(*lib.find_link("radio"));
  EXPECT_DOUBLE_EQ(radio.bandwidth, 11.0);        // 11 Mbps
  EXPECT_DOUBLE_EQ(radio.cost_per_length, 2000.0);  // $2/m in $/km
  const Link& optical = lib.link(*lib.find_link("optical"));
  EXPECT_DOUBLE_EQ(optical.bandwidth, 1000.0);  // 1 Gbps
  EXPECT_DOUBLE_EQ(optical.cost_per_length, 4000.0);
  EXPECT_TRUE(lib.validate().empty());
}

TEST(StandardLibraries, SocWireLengthIsCritical) {
  const Library lib = soc_library(0.6);
  const Link& wire = lib.link(*lib.find_link("metal-wire"));
  EXPECT_DOUBLE_EQ(wire.max_span, 0.6);
  EXPECT_DOUBLE_EQ(wire.cost(0.6), 0.0);  // repeaters carry the cost
  EXPECT_DOUBLE_EQ(lib.node(*lib.cheapest_node(NodeKind::kRepeater)).cost, 1.0);
  EXPECT_TRUE(lib.cheapest_node(NodeKind::kMux).has_value());
  EXPECT_TRUE(lib.cheapest_node(NodeKind::kDemux).has_value());
}

TEST(StandardLibraries, LanIsValid) {
  EXPECT_TRUE(lan_library().validate().empty());
}

TEST(NodeKind, Names) {
  EXPECT_EQ(to_string(NodeKind::kRepeater), "repeater");
  EXPECT_EQ(to_string(NodeKind::kMux), "mux");
  EXPECT_EQ(to_string(NodeKind::kDemux), "demux");
  EXPECT_EQ(to_string(NodeKind::kSwitch), "switch");
}

}  // namespace
}  // namespace cdcs::commlib
