// support::Deadline semantics pins, with emphasis on the copy behavior of
// the on_expiry callback (ISSUE: copies share the fired-flag via
// shared_ptr): the callback fires EXACTLY ONCE across all copies and
// threads, a copy of a latched deadline stays latched, and registering a
// callback on an already-expired deadline fires it immediately instead of
// silently never (the pre-fix bug: polls short-circuit on the latch and
// never reach the firing path).
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/deadline.hpp"

namespace cdcs::support {
namespace {

TEST(Deadline, DefaultIsUnlimitedAndNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_FALSE(d.latched());
}

TEST(Deadline, ExpireAfterChecksCountsPolls) {
  Deadline d = Deadline::expire_after_checks(2);
  EXPECT_FALSE(d.unlimited());
  EXPECT_FALSE(d.expired());  // poll 1
  EXPECT_FALSE(d.expired());  // poll 2
  EXPECT_TRUE(d.expired());   // poll 3 trips
  EXPECT_TRUE(d.latched());
  EXPECT_TRUE(d.expired());   // latched forever
}

TEST(Deadline, CallbackFiresOnceOnExpiry) {
  int fired = 0;
  Deadline d = Deadline::expire_after_checks(0);
  d.on_expiry([&] { ++fired; });
  EXPECT_TRUE(d.expired());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(fired, 1);
}

TEST(Deadline, CallbackFiresOnceAcrossCopies) {
  // Copies snapshot the poll budget but SHARE the callback's once-only
  // flag: whichever copy latches first fires it, and no other copy (or the
  // original) can fire it again.
  int fired = 0;
  Deadline original = Deadline::expire_after_checks(0);
  original.on_expiry([&] { ++fired; });
  Deadline copy1 = original;
  Deadline copy2 = original;

  EXPECT_TRUE(copy1.expired());  // copy1 latches and fires
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(copy2.expired());  // snapshot budget: latches, must NOT re-fire
  EXPECT_TRUE(original.expired());
  EXPECT_EQ(fired, 1);
}

TEST(Deadline, CopyAssignmentSharesTheCallbackFlag) {
  int fired = 0;
  Deadline original = Deadline::expire_after_checks(0);
  original.on_expiry([&] { ++fired; });
  Deadline assigned;
  assigned = original;

  EXPECT_TRUE(original.expired());
  EXPECT_TRUE(assigned.expired());
  EXPECT_EQ(fired, 1);
}

TEST(Deadline, RegisterAfterExpiryFiresImmediately) {
  // The pre-fix bug: a callback registered after the latch tripped never
  // fired, because every later poll short-circuits on expired_ and never
  // reaches latch(). Registration must fire it on the spot instead.
  Deadline d = Deadline::expire_after_checks(0);
  EXPECT_TRUE(d.expired());  // latch first

  int fired = 0;
  d.on_expiry([&] { ++fired; });
  EXPECT_EQ(fired, 1);       // fired at registration, not never
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(fired, 1);       // and only once
}

TEST(Deadline, RegisterOnUnexpiredDeadlineDoesNotFireEarly) {
  Deadline d = Deadline::expire_after_checks(1);
  int fired = 0;
  d.on_expiry([&] { ++fired; });
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(fired, 1);
}

TEST(Deadline, ReRegisteringInstallsAFreshOnceFlag) {
  // Re-registration replaces the callback AND its once-flag; on an
  // already-expired deadline each registration fires its own callback
  // exactly once.
  Deadline d = Deadline::expire_after_checks(0);
  int first = 0;
  int second = 0;
  d.on_expiry([&] { ++first; });
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(first, 1);

  d.on_expiry([&] { ++second; });  // already expired: fires immediately
  EXPECT_EQ(second, 1);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(Deadline, CopyOfLatchedDeadlineStaysLatched) {
  Deadline d = Deadline::expire_after_checks(0);
  EXPECT_TRUE(d.expired());
  Deadline copy = d;
  EXPECT_TRUE(copy.latched());
  EXPECT_TRUE(copy.expired());
  EXPECT_FALSE(copy.unlimited());
}

TEST(Deadline, CancelTokenExpiresEveryCopy) {
  CancelToken token;
  Deadline d = Deadline::never();
  d.attach(token);
  Deadline copy = d;
  EXPECT_FALSE(d.expired());
  EXPECT_FALSE(copy.expired());
  token.cancel();
  EXPECT_TRUE(d.expired());
  EXPECT_TRUE(copy.expired());
}

TEST(Deadline, CallbackFiresOnceUnderConcurrentPolls) {
  // Many threads hammer copies of one deadline; the callback must fire
  // exactly once regardless of which thread's poll trips the latch.
  std::atomic<int> fired{0};
  Deadline d = Deadline::expire_after_checks(100);
  d.on_expiry([&] { fired.fetch_add(1, std::memory_order_relaxed); });

  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&d] {
      // Each thread polls the SHARED object (copies snapshot the budget,
      // which would make the race trivial).
      for (int i = 0; i < 200; ++i) (void)d.expired();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(d.latched());
  EXPECT_EQ(fired.load(), 1);
}

}  // namespace
}  // namespace cdcs::support
