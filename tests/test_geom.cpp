#include <cmath>

#include <gtest/gtest.h>

#include "geom/bbox.hpp"
#include "geom/minimize.hpp"
#include "geom/norm.hpp"
#include "geom/weiszfeld.hpp"

namespace cdcs::geom {
namespace {

TEST(Point2D, Arithmetic) {
  const Point2D a{1.0, 2.0};
  const Point2D b{3.0, -1.0};
  EXPECT_EQ((a + b), (Point2D{4.0, 1.0}));
  EXPECT_EQ((a - b), (Point2D{-2.0, 3.0}));
  EXPECT_EQ((2.0 * a), (Point2D{2.0, 4.0}));
  EXPECT_EQ((a / 2.0), (Point2D{0.5, 1.0}));
}

TEST(Point2D, Lerp) {
  const Point2D a{0.0, 0.0};
  const Point2D b{10.0, -4.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Point2D{5.0, -2.0}));
}

TEST(Norm, EuclideanMatchesHypot) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}, Norm::kEuclidean), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}, Norm::kEuclidean), 0.0);
}

TEST(Norm, Manhattan) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}, Norm::kManhattan), 7.0);
  EXPECT_DOUBLE_EQ(distance({-1, 2}, {2, -2}, Norm::kManhattan), 7.0);
}

TEST(Norm, Chebyshev) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}, Norm::kChebyshev), 4.0);
}

TEST(Norm, RoundTripNames) {
  for (Norm n : {Norm::kEuclidean, Norm::kManhattan, Norm::kChebyshev}) {
    EXPECT_EQ(norm_from_string(std::string(to_string(n))), n);
  }
  EXPECT_THROW(norm_from_string("taxicab"), std::invalid_argument);
}

// Every norm must satisfy the norm axioms on sample vectors; the merging
// lemmas implicitly rely on the triangle inequality.
class NormAxioms : public ::testing::TestWithParam<Norm> {};

TEST_P(NormAxioms, TriangleInequalityAndSymmetry) {
  const Norm norm = GetParam();
  const Point2D pts[] = {{0, 0},   {1, 2},  {-3, 4},   {10, -7},
                         {0.5, 0}, {-2, -2}, {8.25, 3}, {100, 1}};
  for (const Point2D& a : pts) {
    for (const Point2D& b : pts) {
      EXPECT_NEAR(distance(a, b, norm), distance(b, a, norm), 1e-12);
      for (const Point2D& c : pts) {
        EXPECT_LE(distance(a, c, norm),
                  distance(a, b, norm) + distance(b, c, norm) + 1e-12);
      }
    }
  }
}

TEST_P(NormAxioms, HomogeneousAlongSegments) {
  // Straight-line subdivision splits length proportionally under any norm:
  // the assembler relies on this to place repeaters.
  const Norm norm = GetParam();
  const Point2D a{1.0, -2.0};
  const Point2D b{-7.5, 11.0};
  const double total = distance(a, b, norm);
  for (int k = 1; k <= 5; ++k) {
    const Point2D mid = lerp(a, b, static_cast<double>(k) / 5.0);
    EXPECT_NEAR(distance(a, mid, norm), total * k / 5.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllNorms, NormAxioms,
                         ::testing::Values(Norm::kEuclidean, Norm::kManhattan,
                                           Norm::kChebyshev));

TEST(BBox, ExpandContainsClamp) {
  BBox box;
  EXPECT_TRUE(box.empty());
  box.expand({1, 1});
  box.expand({-2, 5});
  EXPECT_FALSE(box.empty());
  EXPECT_TRUE(box.contains({0, 3}));
  EXPECT_FALSE(box.contains({2, 3}));
  EXPECT_EQ(box.clamp({10, 0}), (Point2D{1, 1}));
  EXPECT_DOUBLE_EQ(box.width(), 3.0);
  EXPECT_DOUBLE_EQ(box.height(), 4.0);
}

TEST(BBox, InflateAndCenter) {
  BBox box;
  box.expand({0, 0});
  box.expand({2, 2});
  box.inflate(1.0);
  EXPECT_TRUE(box.contains({-0.5, 2.5}));
  EXPECT_EQ(box.center(), (Point2D{1, 1}));
}

TEST(GoldenSection, FindsParabolaMinimum) {
  const auto r = golden_section([](double x) { return (x - 3.0) * (x - 3.0); },
                                -10.0, 10.0);
  EXPECT_NEAR(r.x, 3.0, 1e-7);
  EXPECT_NEAR(r.value, 0.0, 1e-12);
}

TEST(GoldenSection, HandlesReversedBounds) {
  const auto r =
      golden_section([](double x) { return std::abs(x + 1.0); }, 5.0, -5.0);
  EXPECT_NEAR(r.x, -1.0, 1e-7);
}

TEST(NelderMead, QuadraticBowl) {
  const auto r = nelder_mead(
      [](Point2D p) {
        return (p.x - 1.0) * (p.x - 1.0) + 3.0 * (p.y + 2.0) * (p.y + 2.0);
      },
      {10.0, 10.0}, {.initial_step = 2.0});
  EXPECT_NEAR(r.x.x, 1.0, 1e-5);
  EXPECT_NEAR(r.x.y, -2.0, 1e-5);
}

TEST(MinimizeInBox, NonConvexTwoWells) {
  // Two wells; the deeper one is at (4, 4). A pure local method seeded at
  // the center could fall into the wrong well; the grid stage must not.
  auto f = [](Point2D p) {
    const double d1 = squared_length(p - Point2D{0.0, 0.0});
    const double d2 = squared_length(p - Point2D{4.0, 4.0});
    return std::min(d1 + 1.0, d2);
  };
  BBox box;
  box.expand({-1, -1});
  box.expand({5, 5});
  const auto r = minimize_in_box(f, box);
  EXPECT_NEAR(r.x.x, 4.0, 1e-4);
  EXPECT_NEAR(r.x.y, 4.0, 1e-4);
}

TEST(Weiszfeld, SinglePointIsItself) {
  const Point2D t{3.0, 4.0};
  const Point2D m = weighted_geometric_median({{t}}, {{1.0}},
                                              Norm::kEuclidean);
  EXPECT_NEAR(m.x, 3.0, 1e-8);
  EXPECT_NEAR(m.y, 4.0, 1e-8);
}

TEST(Weiszfeld, MedianOfTwoIsAnywhereOnSegmentCostWise) {
  // For two equal-weight points, any point on the segment is optimal; the
  // cost must equal the separation.
  const std::vector<Point2D> pts = {{0, 0}, {10, 0}};
  const std::vector<double> ws = {1.0, 1.0};
  const Point2D m = weighted_geometric_median(pts, ws, Norm::kEuclidean);
  EXPECT_NEAR(fermat_weber_cost(m, pts, ws, Norm::kEuclidean), 10.0, 1e-6);
}

TEST(Weiszfeld, EquilateralTriangleFermatPoint) {
  // The Fermat point of an equilateral triangle is its centroid.
  const double h = std::sqrt(3.0) / 2.0;
  const std::vector<Point2D> pts = {{0, 0}, {1, 0}, {0.5, h}};
  const std::vector<double> ws = {1, 1, 1};
  const Point2D m = weighted_geometric_median(pts, ws, Norm::kEuclidean);
  EXPECT_NEAR(m.x, 0.5, 1e-6);
  EXPECT_NEAR(m.y, h / 3.0, 1e-6);
}

TEST(Weiszfeld, HeavyWeightPinsOptimum) {
  // Kuhn's condition: when one terminal's weight exceeds the sum of the
  // others, the optimum is exactly that terminal.
  const std::vector<Point2D> pts = {{0, 0}, {10, 0}, {0, 10}};
  const std::vector<double> ws = {5.0, 1.0, 1.0};
  const Point2D m = weighted_geometric_median(pts, ws, Norm::kEuclidean);
  EXPECT_NEAR(m.x, 0.0, 1e-6);
  EXPECT_NEAR(m.y, 0.0, 1e-6);
}

TEST(Weiszfeld, ManhattanIsCoordinatewiseMedian) {
  const std::vector<Point2D> pts = {{0, 0}, {2, 7}, {10, 3}};
  const std::vector<double> ws = {1, 1, 1};
  const Point2D m = weighted_geometric_median(pts, ws, Norm::kManhattan);
  EXPECT_DOUBLE_EQ(m.x, 2.0);
  EXPECT_DOUBLE_EQ(m.y, 3.0);
}

TEST(Weiszfeld, RejectsMismatchedSizes) {
  const std::vector<Point2D> pts = {{0, 0}};
  const std::vector<double> ws = {1.0, 2.0};
  EXPECT_THROW(weighted_geometric_median(pts, ws, Norm::kEuclidean),
               std::invalid_argument);
}

TEST(Weiszfeld, RejectsNegativeWeights) {
  const std::vector<Point2D> pts = {{0, 0}, {1, 0}};
  const std::vector<double> ws = {1.0, -2.0};
  EXPECT_THROW(weighted_geometric_median(pts, ws, Norm::kEuclidean),
               std::invalid_argument);
}

// Property: the returned point is no worse than a grid of probes.
class WeiszfeldOptimality
    : public ::testing::TestWithParam<std::tuple<Norm, int>> {};

TEST_P(WeiszfeldOptimality, BeatsProbeGrid) {
  const auto [norm, seed] = GetParam();
  std::vector<Point2D> pts;
  std::vector<double> ws;
  // Simple LCG so the test is hermetic and deterministic.
  std::uint64_t state = 0x9E3779B97F4A7C15ull * (seed + 1);
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) / 9007199254740992.0;
  };
  for (int i = 0; i < 6; ++i) {
    pts.push_back({next() * 20.0 - 10.0, next() * 20.0 - 10.0});
    ws.push_back(0.5 + next() * 3.0);
  }
  const Point2D m = weighted_geometric_median(pts, ws, norm);
  const double best = fermat_weber_cost(m, pts, ws, norm);
  for (double x = -10.0; x <= 10.0; x += 2.5) {
    for (double y = -10.0; y <= 10.0; y += 2.5) {
      EXPECT_GE(fermat_weber_cost({x, y}, pts, ws, norm), best - 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WeiszfeldOptimality,
    ::testing::Combine(::testing::Values(Norm::kEuclidean, Norm::kManhattan,
                                         Norm::kChebyshev),
                       ::testing::Range(0, 6)));

}  // namespace
}  // namespace cdcs::geom
