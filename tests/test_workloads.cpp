#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "baseline/baselines.hpp"
#include "commlib/standard_libraries.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/fingerprint.hpp"
#include "workloads/lan.hpp"
#include "workloads/mcm.hpp"
#include "workloads/mpeg4_soc.hpp"
#include "workloads/noc_mesh.hpp"
#include "workloads/random_gen.hpp"
#include "workloads/scale_gen.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs::workloads {
namespace {

TEST(Wan2002, StructureMatchesReconstruction) {
  const model::ConstraintGraph cg = wan2002();
  EXPECT_EQ(cg.num_ports(), 5u);
  EXPECT_EQ(cg.num_channels(), 8u);
  EXPECT_EQ(cg.norm(), geom::Norm::kEuclidean);
  EXPECT_TRUE(cg.validate().empty());

  // Arc lengths against the closed forms of the reconstruction.
  const double expected[] = {5.0,
                             std::sqrt(29.0),
                             std::sqrt(82.0),
                             std::sqrt(9413.0),
                             std::sqrt(10036.0),
                             std::sqrt(9725.0),
                             std::sqrt(13.0),
                             std::sqrt(13.0)};
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(cg.distance(model::ArcId{i}), expected[i], 1e-12)
        << "a" << i + 1;
    EXPECT_DOUBLE_EQ(cg.bandwidth(model::ArcId{i}), kWanBandwidthMbps);
  }
  // a7 and a8 are the two directions between D and E.
  EXPECT_EQ(cg.port(cg.source(model::ArcId{6})).name, "D");
  EXPECT_EQ(cg.port(cg.target(model::ArcId{6})).name, "E");
  EXPECT_EQ(cg.port(cg.source(model::ArcId{7})).name, "E");
  EXPECT_EQ(cg.port(cg.target(model::ArcId{7})).name, "D");
}

TEST(Mpeg4Soc, TotalsFiftyFivePaperCosts) {
  const model::ConstraintGraph cg = mpeg4_soc();
  EXPECT_EQ(cg.norm(), geom::Norm::kManhattan);
  EXPECT_EQ(cg.num_ports(), 10u);
  EXPECT_EQ(cg.num_channels(), 14u);
  std::size_t total = 0;
  for (model::ArcId a : cg.arcs()) {
    const double d = cg.distance(a);
    total += static_cast<std::size_t>(std::floor(d / kMpeg4CritLengthMm));
    // No channel sits exactly on a multiple of l_crit (keeps the paper's
    // floor() cost and the physical ceil()-1 repeater count identical).
    EXPECT_GT(std::fmod(d + 1e-12, kMpeg4CritLengthMm), 1e-6) << "channel "
        << cg.channel(a).name;
    // Every critical channel needs at least one repeater.
    EXPECT_GT(d, kMpeg4CritLengthMm);
  }
  EXPECT_EQ(total, 55u);
}

TEST(CampusLan, ShapesAndUnits) {
  const model::ConstraintGraph cg = campus_lan();
  EXPECT_EQ(cg.num_ports(), 6u);
  EXPECT_EQ(cg.num_channels(), 10u);
  EXPECT_TRUE(cg.validate().empty());
  // The mirroring channel is the big one.
  bool found = false;
  for (model::ArcId a : cg.arcs()) {
    if (cg.channel(a).name == "dc->backup") {
      EXPECT_DOUBLE_EQ(cg.bandwidth(a), 2000.0);
      EXPECT_LT(cg.distance(a), 20.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(McmBoard, ShapeAndSynthesis) {
  const model::ConstraintGraph cg = mcm_board();
  EXPECT_EQ(cg.num_ports(), 4u);
  EXPECT_EQ(cg.num_channels(), 10u);
  EXPECT_TRUE(cg.validate().empty());
  // Coherence channels exceed the 8 GB/s PCB bundle: the synthesizer must
  // either bundle traces or use serdes, never fail.
  const commlib::Library lib = commlib::mcm_library();
  const synth::SynthesisResult result = synth::synthesize(cg, lib).value();
  EXPECT_TRUE(result.validation.ok());
  const baseline::BaselineResult ptp =
      baseline::point_to_point_baseline(cg, lib);
  EXPECT_LE(result.total_cost, ptp.cost + 1e-9);
}

TEST(RandomWorkload, DeterministicForSeed) {
  RandomWorkloadParams p;
  p.seed = 42;
  const model::ConstraintGraph a = random_workload(p);
  const model::ConstraintGraph b = random_workload(p);
  ASSERT_EQ(a.num_channels(), b.num_channels());
  for (model::ArcId arc : a.arcs()) {
    EXPECT_DOUBLE_EQ(a.distance(arc), b.distance(arc));
    EXPECT_DOUBLE_EQ(a.bandwidth(arc), b.bandwidth(arc));
  }
  p.seed = 43;
  const model::ConstraintGraph c = random_workload(p);
  bool any_diff = false;
  for (model::ArcId arc : a.arcs()) {
    if (std::abs(a.distance(arc) - c.distance(arc)) > 1e-12) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomWorkload, HonorsParameters) {
  RandomWorkloadParams p;
  p.num_clusters = 4;
  p.ports_per_cluster = 2;
  p.num_channels = 9;
  p.min_bandwidth = 3.0;
  p.max_bandwidth = 4.0;
  p.norm = geom::Norm::kManhattan;
  const model::ConstraintGraph cg = random_workload(p);
  EXPECT_EQ(cg.num_ports(), 8u);
  EXPECT_EQ(cg.num_channels(), 9u);
  EXPECT_EQ(cg.norm(), geom::Norm::kManhattan);
  for (model::ArcId a : cg.arcs()) {
    EXPECT_GE(cg.bandwidth(a), 3.0);
    EXPECT_LE(cg.bandwidth(a), 4.0);
  }
  EXPECT_TRUE(cg.validate().empty());
}

TEST(RandomWorkload, SingleClusterHasNoInterTraffic) {
  RandomWorkloadParams p;
  p.num_clusters = 1;
  p.ports_per_cluster = 5;
  p.num_channels = 6;
  p.inter_cluster_fraction = 1.0;  // must degrade gracefully
  const model::ConstraintGraph cg = random_workload(p);
  EXPECT_EQ(cg.num_channels(), 6u);
}

// --- Pinned generator fingerprints (workloads/fingerprint.hpp) ----------
// Every generator's full construction-visible output (norm, port names and
// position bit patterns, arc endpoints, bandwidth bit patterns) is pinned:
// ANY drift -- a nudged coordinate, a reordered arc, a renamed port --
// fails here loudly instead of silently shifting the benchmark baselines
// (the partitioned-scaling costs in BENCH_pr.json are compared exactly
// across machines, which is only sound while the inputs are bit-stable).

TEST(GeneratorFingerprints, HandWrittenCorpusPinned) {
  EXPECT_EQ(fingerprint(wan2002()), 0xf48331dac8e45094ull);
  EXPECT_EQ(fingerprint(mpeg4_soc()), 0x45af6710eb10ea3eull);
  EXPECT_EQ(fingerprint(campus_lan()), 0x3d7f37732267ed5cull);
  EXPECT_EQ(fingerprint(mcm_board()), 0x05191521fd679af6ull);
}

TEST(GeneratorFingerprints, NocMeshPinned) {
  EXPECT_EQ(fingerprint(noc_mesh(NocMeshParams{})), 0xf645c1d269b2f0a3ull);
  NocMeshParams big;
  big.rows = 16;
  big.cols = 16;
  EXPECT_EQ(fingerprint(noc_mesh(big)), 0xb116193616e1cca8ull);
  // 16x16 is only constructible since the channel-name separator fix in
  // noc_mesh.cpp; pin that large meshes stay duplicate-free.
  EXPECT_TRUE(noc_mesh(big).validate().empty());
}

TEST(GeneratorFingerprints, ScaleGeneratorsPinned) {
  // splitmix64-based (portable across standard libraries and platforms:
  // scale_gen.hpp documents why these never use std::*_distribution).
  EXPECT_EQ(fingerprint(geo_wan(GeoWanParams{})), 0xf35df1887b3de0efull);
  EXPECT_EQ(fingerprint(geo_wan(GeoWanParams::sized(100, 7))),
            0xcd0d68ef8181e651ull);
  EXPECT_EQ(fingerprint(geo_wan(GeoWanParams::sized(1000, 7))),
            0x65b4e049bc0a41e8ull);
  EXPECT_EQ(fingerprint(fat_tree_traffic(FatTreeParams{})),
            0xb7052aed43b93a1full);
  EXPECT_EQ(fingerprint(fat_tree_traffic(FatTreeParams::sized(500, 3))),
            0xdbab2298fe390c2bull);
}

#ifdef __GLIBCXX__
TEST(GeneratorFingerprints, RandomWorkloadPinnedPerStdlib) {
  // random_gen draws through std::mt19937_64 + std::*_distribution, whose
  // exact output is standard-library specific (random_gen.hpp documents
  // the caveat) -- so this pin is guarded: it holds for libstdc++, the
  // toolchain every CI job uses.
  RandomWorkloadParams p;
  p.seed = 42;
  EXPECT_EQ(fingerprint(random_workload(p)), 0x25f9fcea8afbe800ull);
}
#endif

TEST(ScaleGen, GeoWanSizedHitsExactArcCountAndIsSeedDeterministic) {
  for (const std::size_t arcs : {std::size_t{100}, std::size_t{500},
                                 std::size_t{1000}}) {
    const model::ConstraintGraph cg = geo_wan(GeoWanParams::sized(arcs, 7));
    EXPECT_EQ(cg.num_channels(), arcs);
    EXPECT_TRUE(cg.validate().empty());
  }
  EXPECT_EQ(fingerprint(geo_wan(GeoWanParams::sized(200, 3))),
            fingerprint(geo_wan(GeoWanParams::sized(200, 3))));
  EXPECT_NE(fingerprint(geo_wan(GeoWanParams::sized(200, 3))),
            fingerprint(geo_wan(GeoWanParams::sized(200, 4))));
}

TEST(ScaleGen, FatTreeSizedHitsExactArcCountAndIsSeedDeterministic) {
  for (const std::size_t arcs : {std::size_t{120}, std::size_t{500}}) {
    const model::ConstraintGraph cg =
        fat_tree_traffic(FatTreeParams::sized(arcs, 3));
    EXPECT_EQ(cg.num_channels(), arcs);
    EXPECT_TRUE(cg.validate().empty());
  }
  EXPECT_EQ(fingerprint(fat_tree_traffic(FatTreeParams::sized(150, 1))),
            fingerprint(fat_tree_traffic(FatTreeParams::sized(150, 1))));
  EXPECT_NE(fingerprint(fat_tree_traffic(FatTreeParams::sized(150, 1))),
            fingerprint(fat_tree_traffic(FatTreeParams::sized(150, 2))));
}

TEST(ScaleGen, GeoWanStructure) {
  const GeoWanParams p = GeoWanParams::sized(100, 7);
  const model::ConstraintGraph cg = geo_wan(p);
  EXPECT_EQ(cg.num_ports(), p.sites * p.ports_per_site);
  for (model::ArcId a : cg.arcs()) {
    EXPECT_NE(cg.source(a).index(), cg.target(a).index());
    EXPECT_GE(cg.bandwidth(a), p.min_bandwidth);
    EXPECT_LE(cg.bandwidth(a), p.max_bandwidth);
  }
}

}  // namespace
}  // namespace cdcs::workloads
