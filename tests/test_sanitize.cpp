// Tests for the model::sanitize input gate: strict mode rejects defective
// instances with a structured diagnosis naming the offending element;
// repair mode fixes what can be fixed on a copy and records every action.
#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "model/sanitize.hpp"

namespace cdcs {
namespace {

using model::ConstraintGraph;
using model::SanitizeOptions;
using model::SanitizeReport;
using model::VertexId;
using support::ErrorCode;

ConstraintGraph two_port_graph(VertexId* u_out, VertexId* v_out) {
  ConstraintGraph cg(geom::Norm::kEuclidean);
  *u_out = cg.add_port("u", {0, 0});
  *v_out = cg.add_port("v", {3, 4});
  return cg;
}

TEST(Sanitize, CleanGraphCopiesOverUnchanged) {
  VertexId u, v;
  ConstraintGraph cg = two_port_graph(&u, &v);
  cg.add_channel(u, v, 10.0, "c1");
  cg.add_channel(v, u, 5.0, "c2");

  SanitizeReport report;
  auto out = model::sanitize(cg, SanitizeOptions{}, &report);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_TRUE(report.clean());
  ASSERT_EQ(out->num_channels(), 2u);
  // Arc numbering, names, and bandwidths are preserved verbatim.
  EXPECT_EQ(out->channel(model::ArcId{0}).name, "c1");
  EXPECT_EQ(out->channel(model::ArcId{1}).name, "c2");
  EXPECT_DOUBLE_EQ(out->bandwidth(model::ArcId{0}), 10.0);
  EXPECT_DOUBLE_EQ(out->bandwidth(model::ArcId{1}), 5.0);
  EXPECT_DOUBLE_EQ(out->distance(model::ArcId{0}), 5.0);
}

TEST(Sanitize, StrictRejectsDuplicateChannelNames) {
  VertexId u, v;
  ConstraintGraph cg = two_port_graph(&u, &v);
  cg.add_channel(u, v, 10.0, "dup");
  cg.add_channel(v, u, 5.0, "dup");

  const auto out = model::sanitize(cg);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), ErrorCode::kInvalidInput);
  EXPECT_NE(out.status().message().find("'dup'"), std::string::npos)
      << out.status().to_string();
}

TEST(Sanitize, RepairRenamesDuplicateChannelNames) {
  VertexId u, v;
  ConstraintGraph cg = two_port_graph(&u, &v);
  // Opposite directions so parallel-merge (ordered pairs) stays out of play.
  cg.add_channel(u, v, 10.0, "dup");
  cg.add_channel(v, u, 5.0, "dup");

  SanitizeReport report;
  auto out = model::sanitize(cg, SanitizeOptions{.repair = true}, &report);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  ASSERT_EQ(out->num_channels(), 2u);
  EXPECT_EQ(out->channel(model::ArcId{0}).name, "dup");
  EXPECT_EQ(out->channel(model::ArcId{1}).name, "dup#2");
  ASSERT_EQ(report.repairs.size(), 1u);
  EXPECT_NE(report.repairs[0].find("renamed"), std::string::npos);
}

TEST(Sanitize, RepairMergesParallelChannelsSummingBandwidth) {
  VertexId u, v;
  ConstraintGraph cg = two_port_graph(&u, &v);
  cg.add_channel(u, v, 10.0, "c1");
  cg.add_channel(u, v, 7.0, "c2");
  cg.add_channel(v, u, 3.0, "back");  // opposite direction: not merged

  SanitizeReport report;
  auto out = model::sanitize(cg, SanitizeOptions{.repair = true}, &report);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  ASSERT_EQ(out->num_channels(), 2u);
  EXPECT_EQ(out->channel(model::ArcId{0}).name, "c1");
  EXPECT_DOUBLE_EQ(out->bandwidth(model::ArcId{0}), 17.0);
  EXPECT_EQ(out->channel(model::ArcId{1}).name, "back");
  EXPECT_DOUBLE_EQ(out->bandwidth(model::ArcId{1}), 3.0);
  ASSERT_EQ(report.repairs.size(), 1u);
  EXPECT_NE(report.repairs[0].find("merged 2 parallel channels"),
            std::string::npos)
      << report.repairs[0];
}

TEST(Sanitize, ParallelChannelsAreLegalWithoutRepair) {
  // Parallel channels are valid inputs (independent covering rows); strict
  // mode must pass them through untouched.
  VertexId u, v;
  ConstraintGraph cg = two_port_graph(&u, &v);
  cg.add_channel(u, v, 10.0, "c1");
  cg.add_channel(u, v, 7.0, "c2");

  SanitizeReport report;
  auto out = model::sanitize(cg, SanitizeOptions{}, &report);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(out->num_channels(), 2u);
}

TEST(Sanitize, MergeCanBeDisabledIndependentlyOfRepair) {
  VertexId u, v;
  ConstraintGraph cg = two_port_graph(&u, &v);
  cg.add_channel(u, v, 10.0, "c1");
  cg.add_channel(u, v, 7.0, "c2");

  SanitizeReport report;
  auto out = model::sanitize(
      cg,
      SanitizeOptions{.repair = true, .merge_parallel_channels = false},
      &report);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(out->num_channels(), 2u);
}

TEST(CheckInputs, FlagsDuplicateNamesWithGraphContext) {
  VertexId u, v;
  ConstraintGraph cg = two_port_graph(&u, &v);
  cg.add_channel(u, v, 10.0, "dup");
  cg.add_channel(v, u, 5.0, "dup");

  const support::Status s =
      model::check_inputs(cg, commlib::wan_library());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kInvalidInput);
  ASSERT_FALSE(s.context().empty());
  EXPECT_EQ(s.context().back(), "constraint graph");
}

TEST(CheckInputs, FlagsEmptyLibraryByName) {
  VertexId u, v;
  ConstraintGraph cg = two_port_graph(&u, &v);
  cg.add_channel(u, v, 10.0);

  const commlib::Library empty("bare");
  const support::Status s = model::check_inputs(cg, empty);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kInvalidInput);
  EXPECT_NE(s.to_string().find("'bare'"), std::string::npos)
      << s.to_string();
}

TEST(CheckInputs, PassesCleanInstance) {
  VertexId u, v;
  ConstraintGraph cg = two_port_graph(&u, &v);
  cg.add_channel(u, v, 10.0);
  EXPECT_TRUE(model::check_inputs(cg, commlib::wan_library()).ok());
}

}  // namespace
}  // namespace cdcs
