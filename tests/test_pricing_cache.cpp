// Pricing-cache correctness: exact hit/miss accounting, bit-identical
// results under repeated synthesize() calls against a shared cache (the
// Pareto-sweep / sensitivity-run use case), and automatic invalidation
// when the library fingerprint changes. The cache never evicts, so these
// tests also pin the "entries only grow" retention behaviour.
#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "synth/pricing_cache.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs::synth {
namespace {

TEST(LibraryFingerprint, StableAndDiscriminating) {
  const commlib::Library wan1 = commlib::wan_library();
  const commlib::Library wan2 = commlib::wan_library();
  EXPECT_EQ(wan1.fingerprint(), wan2.fingerprint());  // deterministic
  EXPECT_NE(wan1.fingerprint(), commlib::soc_library().fingerprint());

  // Any element edit that could change a pricing must change the digest.
  commlib::Library extra = commlib::wan_library();
  extra.add_link({.name = "extra", .bandwidth = 1.0, .fixed_cost = 1.0});
  EXPECT_NE(extra.fingerprint(), wan1.fingerprint());

  commlib::Library repriced("wan-2002");
  for (commlib::Link l : wan1.links()) {
    l.cost_per_length *= 1.01;
    repriced.add_link(std::move(l));
  }
  for (const commlib::Node& n : wan1.nodes()) repriced.add_node(n);
  EXPECT_NE(repriced.fingerprint(), wan1.fingerprint());
}

TEST(PricingKey, CanonicalSubsetSignature) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  const std::vector<model::ArcId> subset{model::ArcId{0}, model::ArcId{1}};

  const auto k1 = make_pricing_key(cg, lib, subset,
                                   model::CapacityPolicy::kSharedSum,
                                   /*chain_enabled=*/true,
                                   /*tree_enabled=*/true);
  const auto k2 = make_pricing_key(cg, lib, subset,
                                   model::CapacityPolicy::kSharedSum, true,
                                   true);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(k1.arc_geometry.size(), 10u);  // five doubles per arc

  // Every knob the pricers read must separate keys.
  const auto other_subset = make_pricing_key(
      cg, lib, {model::ArcId{0}, model::ArcId{2}},
      model::CapacityPolicy::kSharedSum, true, true);
  EXPECT_FALSE(k1 == other_subset);
  const auto other_policy = make_pricing_key(
      cg, lib, subset, model::CapacityPolicy::kMaxPerConstraint, true, true);
  EXPECT_FALSE(k1 == other_policy);
  const auto no_chains = make_pricing_key(
      cg, lib, subset, model::CapacityPolicy::kSharedSum, false, true);
  EXPECT_FALSE(k1 == no_chains);
  const auto other_lib = make_pricing_key(
      cg, commlib::lan_library(), subset, model::CapacityPolicy::kSharedSum,
      true, true);
  EXPECT_FALSE(k1 == other_lib);
}

TEST(PricingCacheAccounting, LookupInsertLookup) {
  PricingCache cache;
  PricingCache::Key key;
  key.library_fingerprint = 42;
  key.arc_geometry = {0, 0, 1, 1, 2.5};

  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  // An all-nullopt entry is a definitive "no structure realizable" answer
  // and must round-trip like any other.
  cache.insert(key, PricingCache::Entry::make({model::ArcId{0}}, {0},
                                              std::nullopt, std::nullopt,
                                              std::nullopt));
  EXPECT_EQ(cache.stats().entries, 1u);

  const auto entry = cache.lookup(key);
  ASSERT_TRUE(entry.has_value());
  EXPECT_FALSE(entry->star.has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(PricingCacheAccounting, RepeatedSynthesisHitsEverySubset) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  PricingCache cache;
  SynthesisOptions options;
  options.pricing_cache = &cache;

  const auto first = synthesize(cg, lib, options);
  ASSERT_TRUE(first.ok());
  const auto& s1 = first->candidate_set.stats;
  EXPECT_EQ(s1.pricing_cache_hits, 0u);  // cold cache: every probe misses
  EXPECT_GT(s1.pricing_cache_misses, 0u);
  const std::size_t priced = s1.pricing_cache_misses;
  EXPECT_EQ(cache.stats().entries, priced);  // no evictions, no dupes

  const auto second = synthesize(cg, lib, options);
  ASSERT_TRUE(second.ok());
  const auto& s2 = second->candidate_set.stats;
  EXPECT_EQ(s2.pricing_cache_hits, priced);  // warm: every probe hits
  EXPECT_EQ(s2.pricing_cache_misses, 0u);
  EXPECT_EQ(cache.stats().entries, priced);  // nothing new inserted

  // And the warm-cache result is the same result.
  EXPECT_DOUBLE_EQ(second->total_cost, first->total_cost);
  EXPECT_EQ(second->cover.chosen, first->cover.chosen);
  ASSERT_EQ(second->candidates().size(), first->candidates().size());
  for (std::size_t i = 0; i < first->candidates().size(); ++i) {
    EXPECT_DOUBLE_EQ(second->candidates()[i].cost, first->candidates()[i].cost);
    EXPECT_EQ(second->candidates()[i].arcs, first->candidates()[i].arcs);
  }
}

// Two sessions over geometrically identical graphs whose arcs were
// inserted in different orders (so ArcId values are permuted) must share
// cache entries: the key is canonicalized by geometry record, not by the
// caller's subset order. Regression test for the cross-session warm-start
// use case (reload a design file whose channel order changed).
TEST(PricingCacheAccounting, PermutedArcInsertionOrderStillHits) {
  const model::ConstraintGraph cg = workloads::wan2002();

  // Same ports, same channels, reversed insertion order: arc k here is
  // arc (7 - k) in the reference graph.
  model::ConstraintGraph shuffled(geom::Norm::kEuclidean);
  const model::VertexId a = shuffled.add_port("A", {0.0, 0.0});
  const model::VertexId b = shuffled.add_port("B", {4.0, 3.0});
  const model::VertexId c = shuffled.add_port("C", {9.0, 1.0});
  const model::VertexId d = shuffled.add_port("D", {-2.0, -97.0});
  const model::VertexId e = shuffled.add_port("E", {0.0, -100.0});
  const double bw = workloads::kWanBandwidthMbps;
  shuffled.add_channel(e, d, bw, "a8");
  shuffled.add_channel(d, e, bw, "a7");
  shuffled.add_channel(d, c, bw, "a6");
  shuffled.add_channel(d, b, bw, "a5");
  shuffled.add_channel(d, a, bw, "a4");
  shuffled.add_channel(c, a, bw, "a3");
  shuffled.add_channel(c, b, bw, "a2");
  shuffled.add_channel(a, b, bw, "a1");

  const commlib::Library lib = commlib::wan_library();
  PricingCache cache;
  SynthesisOptions options;
  options.pricing_cache = &cache;

  const auto cold = synthesize(cg, lib, options);
  ASSERT_TRUE(cold.ok());
  const std::size_t priced = cold->candidate_set.stats.pricing_cache_misses;
  ASSERT_GT(priced, 0u);

  // The shuffled graph enumerates the geometrically same subsets (in a
  // different order, with different arc ids): every probe must hit.
  const auto warm = synthesize(shuffled, lib, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->candidate_set.stats.pricing_cache_hits, priced);
  EXPECT_EQ(warm->candidate_set.stats.pricing_cache_misses, 0u);
  EXPECT_EQ(cache.stats().entries, priced);

  // And the retargeted plans price identically: same candidate count and
  // the same optimal cost. (The chosen cover itself may be a different
  // equal-cost optimum -- permuting arc ids reorders the candidate list,
  // which legitimately changes UCP tie-breaking.)
  EXPECT_DOUBLE_EQ(warm->total_cost, cold->total_cost);
  ASSERT_EQ(warm->candidates().size(), cold->candidates().size());
}

TEST(PricingCacheAccounting, LibraryChangeInvalidatesEverything) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  PricingCache cache;
  SynthesisOptions options;
  options.pricing_cache = &cache;

  const auto warm = synthesize(cg, lib, options);
  ASSERT_TRUE(warm.ok());
  const std::size_t wan_entries = cache.stats().entries;
  ASSERT_GT(wan_entries, 0u);

  // Reprice every link 10% higher: same names, same geometry, different
  // costs. Every cached plan is now wrong for this library, and the
  // fingerprint keying must make the run miss on every subset.
  commlib::Library pricier("wan-2002-pricier");
  for (commlib::Link l : lib.links()) {
    l.fixed_cost *= 1.1;
    l.cost_per_length *= 1.1;
    pricier.add_link(std::move(l));
  }
  for (const commlib::Node& n : lib.nodes()) pricier.add_node(n);
  ASSERT_NE(pricier.fingerprint(), lib.fingerprint());

  const auto repriced = synthesize(cg, pricier, options);
  ASSERT_TRUE(repriced.ok());
  const auto& s = repriced->candidate_set.stats;
  EXPECT_EQ(s.pricing_cache_hits, 0u);  // no stale reuse
  EXPECT_GT(s.pricing_cache_misses, 0u);
  EXPECT_GT(cache.stats().entries, wan_entries);  // new keys coexist

  // Costs scale with the library, proving plans were re-priced.
  EXPECT_GT(repriced->total_cost, warm->total_cost);

  // The original library still hits its own (untouched) entries.
  const auto again = synthesize(cg, lib, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->candidate_set.stats.pricing_cache_misses, 0u);
  EXPECT_DOUBLE_EQ(again->total_cost, warm->total_cost);
}

}  // namespace
}  // namespace cdcs::synth
