#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "ucp/bnb.hpp"
#include "ucp/dp.hpp"
#include "ucp/greedy.hpp"

namespace cdcs::ucp {
namespace {

TEST(Bitset, BasicOps) {
  Bitset b(130);
  EXPECT_TRUE(b.none());
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_EQ(b.count(), 3u);
  EXPECT_TRUE(b.test(64));
  EXPECT_FALSE(b.test(63));
  b.reset(64);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.first(), 0u);

  Bitset c(130);
  c.set(0);
  EXPECT_TRUE(c.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(c));
  EXPECT_TRUE(b.intersects(c));
  EXPECT_EQ(b.intersection_count(c), 1u);

  b.subtract(c);
  EXPECT_FALSE(b.test(0));
  EXPECT_TRUE(b.test(129));

  std::vector<std::size_t> seen;
  b.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{129}));
}

TEST(Bitset, WordParallelOps) {
  // The ops added for the branch-and-bound rewrite: each must agree with
  // the obvious per-bit definition, including across word boundaries.
  Bitset a(130);
  a.set(1);
  a.set(63);
  a.set(64);
  a.set(129);
  Bitset b(130);
  b.set(63);
  b.set(64);
  b.set(100);

  EXPECT_EQ(a.intersection_count_capped(b, 1), 1u);  // stops at the cap
  EXPECT_EQ(a.intersection_count_capped(b, 8), 2u);

  Bitset mask(130);
  mask.set(63);
  EXPECT_TRUE(a.intersects_masked(b, mask));  // a & b & mask has bit 63
  mask.reset(63);
  mask.set(1);
  EXPECT_FALSE(a.intersects_masked(b, mask));  // b lacks bit 1

  // (a & mask) subset of b: mask={1} selects only bit 1, absent from b.
  EXPECT_FALSE(a.and_is_subset_of(mask, b));
  Bitset mask2(130);
  mask2.set(63);
  mask2.set(64);
  EXPECT_TRUE(a.and_is_subset_of(mask2, b));

  Bitset u(130);
  u.set(2);
  u.unite_and(a, b);  // u |= a & b = {63, 64}
  EXPECT_TRUE(u.test(2));
  EXPECT_TRUE(u.test(63));
  EXPECT_TRUE(u.test(64));
  EXPECT_EQ(u.count(), 3u);

  EXPECT_EQ(a.first_and(b), 63u);
  EXPECT_EQ(a.first_and(Bitset(130)), a.size());  // empty intersection

  std::vector<std::size_t> seen;
  a.for_each_and(b, [&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{63, 64}));

  seen.clear();
  const bool stopped = a.for_each_until([&](std::size_t i) {
    seen.push_back(i);
    return i >= 64;  // stop once past the first word
  });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(seen, (std::vector<std::size_t>{1, 63, 64}));

  Bitset full(130);
  full.set_all();
  EXPECT_EQ(full.count(), 130u);  // tail word must stay masked
  EXPECT_FALSE(full.test(130));
}

TEST(CoverProblem, RowCoverTransposeTracksMutation) {
  CoverProblem p(3);
  p.add_column({0, 1}, 1.0);
  p.add_column({1, 2}, 1.0);
  EXPECT_TRUE(p.row_cover(1).test(0));
  EXPECT_TRUE(p.row_cover(1).test(1));
  EXPECT_FALSE(p.row_cover(0).test(1));

  // Adding a column must invalidate the cached transpose.
  p.add_column({0, 2}, 1.0);
  EXPECT_TRUE(p.row_cover(0).test(2));
  EXPECT_EQ(p.row_cover(2).count(), 2u);
}

CoverProblem tiny_problem() {
  // rows {0,1,2}; columns: A={0,1} w=3, B={1,2} w=3, C={0,1,2} w=5, D={2} w=1.
  CoverProblem p(3);
  p.add_column({0, 1}, 3.0);
  p.add_column({1, 2}, 3.0);
  p.add_column({0, 1, 2}, 5.0);
  p.add_column({2}, 1.0);
  return p;
}

TEST(CoverProblem, Construction) {
  const CoverProblem p = tiny_problem();
  EXPECT_EQ(p.num_rows(), 3u);
  EXPECT_EQ(p.num_columns(), 4u);
  EXPECT_TRUE(p.feasible());
  EXPECT_TRUE(p.covers_all({2}));
  EXPECT_FALSE(p.covers_all({0}));
  EXPECT_DOUBLE_EQ(p.cost_of({0, 3}), 4.0);
}

TEST(CoverProblem, RejectsBadColumns) {
  CoverProblem p(3);
  EXPECT_THROW(p.add_column({0}, -1.0), std::invalid_argument);
  EXPECT_THROW(p.add_column({7}, 1.0), std::out_of_range);
  EXPECT_THROW(p.add_column({}, 1.0), std::invalid_argument);
}

TEST(Exact, SolvesTinyProblem) {
  const CoverSolution s = solve_exact(tiny_problem());
  // Optimum: A {0,1} + D {2} = 4.
  EXPECT_TRUE(s.optimal);
  EXPECT_DOUBLE_EQ(s.cost, 4.0);
  EXPECT_EQ(s.chosen, (std::vector<std::size_t>{0, 3}));
}

TEST(Exact, EssentialColumnIsForced) {
  CoverProblem p(2);
  p.add_column({0}, 10.0);  // only column covering row 0
  p.add_column({1}, 1.0);
  p.add_column({1}, 2.0);
  const CoverSolution s = solve_exact(p);
  EXPECT_DOUBLE_EQ(s.cost, 11.0);
}

TEST(Exact, InfeasibleReported) {
  CoverProblem p(2);
  p.add_column({0}, 1.0);  // row 1 uncoverable
  const CoverSolution s = solve_exact(p);
  EXPECT_TRUE(s.chosen.empty());
  EXPECT_FALSE(s.optimal);
  EXPECT_TRUE(std::isinf(s.cost));
}

TEST(Exact, EmptyProblemIsTrivial) {
  CoverProblem p(0);
  const CoverSolution s = solve_exact(p);
  EXPECT_TRUE(s.optimal);
  EXPECT_DOUBLE_EQ(s.cost, 0.0);
  EXPECT_TRUE(s.chosen.empty());
}

TEST(Greedy, CanBeSuboptimal) {
  // Classic greedy trap: the big column's ratio (0.9) beats the optimum's
  // blocks (1.0 each), but taking it strands row 3 with an expensive
  // singleton: greedy = 2.7 + 1.5 = 4.2 > optimum 4.0.
  CoverProblem p(4);
  p.add_column({0, 1, 2}, 2.7);  // ratio 0.9 -- greedy picks this
  p.add_column({0, 1}, 2.0);     // optimum: {0,1} + {2,3} = 4.0
  p.add_column({2, 3}, 2.0);
  p.add_column({3}, 1.5);
  const CoverSolution g = solve_greedy(p);
  const CoverSolution e = solve_exact(p);
  EXPECT_TRUE(e.optimal);
  EXPECT_DOUBLE_EQ(e.cost, 4.0);
  EXPECT_GT(g.cost, e.cost);
  EXPECT_TRUE(p.covers_all(g.chosen));
}

TEST(Greedy, InfeasibleGivesInfiniteCost) {
  CoverProblem p(2);
  p.add_column({0}, 1.0);
  EXPECT_TRUE(std::isinf(solve_greedy(p).cost));
}

/// Brute-force oracle: tries all 2^columns subsets.
double brute_force_optimum(const CoverProblem& p) {
  const std::size_t n = p.num_columns();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::vector<std::size_t> chosen;
    for (std::size_t j = 0; j < n; ++j) {
      if (mask & (std::size_t{1} << j)) chosen.push_back(j);
    }
    if (p.covers_all(chosen)) best = std::min(best, p.cost_of(chosen));
  }
  return best;
}

class ExactVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(ExactVsBruteForce, RandomMatrices) {
  std::mt19937 rng(GetParam() * 1000 + 17);
  std::uniform_int_distribution<int> rows_dist(3, 9);
  std::uniform_real_distribution<double> w(0.5, 10.0);
  std::uniform_real_distribution<double> density(0.0, 1.0);

  const int rows = rows_dist(rng);
  const int cols = std::uniform_int_distribution<int>(rows, 14)(rng);
  CoverProblem p(rows);
  int added = 0;
  for (int j = 0; j < cols; ++j) {
    std::vector<std::size_t> covered;
    for (int r = 0; r < rows; ++r) {
      if (density(rng) < 0.4) covered.push_back(r);
    }
    if (covered.empty()) covered.push_back(j % rows);
    p.add_column(covered, w(rng));
    ++added;
  }
  // Ensure feasibility with per-row singletons.
  for (int r = 0; r < rows; ++r) p.add_column({static_cast<std::size_t>(r)}, 8.0);

  const double oracle = brute_force_optimum(p);

  // Default dispatch (dense DP for these row counts).
  const CoverSolution s = solve_exact(p);
  EXPECT_TRUE(s.optimal);
  EXPECT_TRUE(p.covers_all(s.chosen));
  EXPECT_NEAR(s.cost, oracle, 1e-9);
  EXPECT_NEAR(p.cost_of(s.chosen), s.cost, 1e-9);

  // Forced branch-and-bound must agree.
  BnbOptions branch_only;
  branch_only.dense_dp_max_rows = 0;
  const CoverSolution b = solve_exact(p, branch_only);
  EXPECT_TRUE(b.optimal);
  EXPECT_TRUE(p.covers_all(b.chosen));
  EXPECT_NEAR(b.cost, oracle, 1e-9);

  // The DP entry point directly.
  const CoverSolution d = solve_dp(p);
  EXPECT_TRUE(d.optimal);
  EXPECT_NEAR(d.cost, oracle, 1e-9);

  const CoverSolution g = solve_greedy(p);
  EXPECT_GE(g.cost, s.cost - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsBruteForce, ::testing::Range(0, 12));

TEST(DenseDp, EdgeCases) {
  // Zero rows: trivially optimal and empty.
  const CoverSolution empty = solve_dp(CoverProblem(0));
  EXPECT_TRUE(empty.optimal);
  EXPECT_DOUBLE_EQ(empty.cost, 0.0);

  // Infeasible: row 1 uncoverable.
  CoverProblem p(2);
  p.add_column({0}, 1.0);
  const CoverSolution inf = solve_dp(p);
  EXPECT_FALSE(inf.optimal);
  EXPECT_TRUE(std::isinf(inf.cost));

  // Row-count guard.
  EXPECT_THROW(solve_dp(CoverProblem(kDenseDpMaxRows + 1)),
               std::invalid_argument);

  // A column may cover rows redundantly with another; dedup must keep the
  // cheaper and still find the optimum.
  CoverProblem q(2);
  q.add_column({0, 1}, 5.0);
  q.add_column({0, 1}, 3.0);  // same mask, cheaper
  const CoverSolution s = solve_dp(q);
  EXPECT_DOUBLE_EQ(s.cost, 3.0);
  EXPECT_EQ(s.chosen, (std::vector<std::size_t>{1}));
}

TEST(Exact, ReductionAblationsAgree) {
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> w(0.5, 10.0);
  std::uniform_real_distribution<double> density(0.0, 1.0);
  CoverProblem p(8);
  for (int j = 0; j < 18; ++j) {
    std::vector<std::size_t> covered;
    for (int r = 0; r < 8; ++r) {
      if (density(rng) < 0.35) covered.push_back(r);
    }
    if (covered.empty()) covered.push_back(j % 8);
    p.add_column(covered, w(rng));
  }
  for (int r = 0; r < 8; ++r) p.add_column({static_cast<std::size_t>(r)}, 9.0);

  BnbOptions all;
  BnbOptions no_dom;
  no_dom.use_row_dominance = false;
  no_dom.use_column_dominance = false;
  BnbOptions no_lb;
  no_lb.use_mis_lower_bound = false;
  const double c1 = solve_exact(p, all).cost;
  const double c2 = solve_exact(p, no_dom).cost;
  const double c3 = solve_exact(p, no_lb).cost;
  EXPECT_NEAR(c1, c2, 1e-9);
  EXPECT_NEAR(c1, c3, 1e-9);
}

TEST(Exact, NodeBudgetReturnsIncumbent) {
  CoverProblem p(6);
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> w(0.5, 10.0);
  for (int j = 0; j < 30; ++j) {
    std::vector<std::size_t> covered;
    for (int r = 0; r < 6; ++r) {
      if ((rng() & 3) == 0) covered.push_back(r);
    }
    if (covered.empty()) covered.push_back(j % 6);
    p.add_column(covered, w(rng));
  }
  for (int r = 0; r < 6; ++r) p.add_column({static_cast<std::size_t>(r)}, 9.0);
  BnbOptions tight;
  tight.max_nodes = 1;
  tight.dense_dp_max_rows = 0;  // force the branching path under test
  // With the root Lagrangian bound on, one node can be enough to PROVE the
  // greedy incumbent optimal; disable it so the budget genuinely bites.
  tight.use_lagrangian_bound = false;
  tight.use_reduced_cost_fixing = false;
  const CoverSolution s = solve_exact(p, tight);
  EXPECT_FALSE(s.optimal);           // budget exhausted
  EXPECT_TRUE(p.covers_all(s.chosen));  // but still feasible (greedy incumbent)
}

/// Same generator as bench/bench_ucp_solver.cpp: keep the two in sync so
/// the pinned node counts below describe the bench corpus exactly.
CoverProblem corpus_problem(int rows, int cols, double density,
                            unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> weight(0.5, 10.0);
  CoverProblem p(rows);
  for (int j = 0; j < cols; ++j) {
    std::vector<std::size_t> covered;
    for (int r = 0; r < rows; ++r) {
      if (unit(rng) < density) covered.push_back(r);
    }
    if (covered.empty()) covered.push_back(j % rows);
    p.add_column(covered, weight(rng));
  }
  for (int r = 0; r < rows; ++r) {
    p.add_column({static_cast<std::size_t>(r)}, 12.0);
  }
  return p;
}

/// The v1 reference configuration: Lagrangian bounds and reduced-cost
/// fixing off, DFS order. Solver v2 promises this reproduces the legacy
/// search tree node-for-node.
BnbOptions legacy_options() {
  BnbOptions opt;
  opt.dense_dp_max_rows = 0;  // force branch-and-bound
  opt.use_lagrangian_bound = false;
  opt.use_reduced_cost_fixing = false;
  opt.search_order = SearchOrder::kDepthFirst;
  return opt;
}

// The bitset rewrite of the branch-and-bound reductions (essential-column
// scan, row/column dominance, MIS bound) must not change the search tree:
// every predicate, visit order, and tie-break is word-parallel but
// semantically identical to the scalar version. These node counts were
// captured from the pre-bitset implementation on the bench_ucp_solver
// corpus; any drift here means the reductions changed behaviour, not just
// speed. Solver v2 keeps this tree reachable behind legacy_options().
TEST(Exact, SeedCorpusNodeCounts) {
  const BnbOptions force_bnb = legacy_options();

  const struct {
    int rows, cols;
    double density;
    std::size_t expected_nodes;
  } corpus[] = {
      {10, 30, 0.30, 7},
      {12, 200, 0.25, 33},
      {15, 60, 0.25, 98},
      {20, 100, 0.20, 123},
  };
  for (const auto& c : corpus) {
    const CoverProblem p =
        corpus_problem(c.rows, c.cols, c.density, 91 + c.rows);
    const CoverSolution s = solve_exact(p, force_bnb);
    EXPECT_TRUE(s.optimal);
    EXPECT_EQ(s.nodes_explored, c.expected_nodes)
        << c.rows << "x" << c.cols << " density " << c.density;
  }

  // The reduction ablation instance from the bench, all three variants.
  const CoverProblem p = corpus_problem(20, 100, 0.2, 111);
  BnbOptions no_dom = force_bnb;
  no_dom.use_row_dominance = false;
  no_dom.use_column_dominance = false;
  BnbOptions no_lb = force_bnb;
  no_lb.use_mis_lower_bound = false;
  EXPECT_EQ(solve_exact(p, force_bnb).nodes_explored, 123u);
  EXPECT_EQ(solve_exact(p, no_dom).nodes_explored, 329u);
  EXPECT_EQ(solve_exact(p, no_lb).nodes_explored, 126u);
}

// Solver v2 contract: every configuration (legacy DFS, v2 DFS with
// Lagrangian bounds + reduced-cost fixing, best-first) proves the SAME
// optimal cover cost on the corpus, and the v2 bounds never expand more
// nodes than the legacy tree.
TEST(Exact, SolverV2CostEqualityAndNodeReduction) {
  const struct {
    int rows, cols;
    double density;
  } corpus[] = {
      {10, 30, 0.30},
      {12, 200, 0.25},
      {15, 60, 0.25},
      {20, 100, 0.20},
  };
  for (const auto& c : corpus) {
    const CoverProblem p =
        corpus_problem(c.rows, c.cols, c.density, 91 + c.rows);

    const CoverSolution legacy = solve_exact(p, legacy_options());

    BnbOptions v2;
    v2.dense_dp_max_rows = 0;
    const CoverSolution dfs = solve_exact(p, v2);

    BnbOptions best_first = v2;
    best_first.search_order = SearchOrder::kBestFirst;
    const CoverSolution bfs = solve_exact(p, best_first);

    ASSERT_TRUE(legacy.optimal);
    ASSERT_TRUE(dfs.optimal);
    ASSERT_TRUE(bfs.optimal);
    EXPECT_NEAR(dfs.cost, legacy.cost, 1e-9)
        << c.rows << "x" << c.cols << " density " << c.density;
    EXPECT_NEAR(bfs.cost, legacy.cost, 1e-9)
        << c.rows << "x" << c.cols << " density " << c.density;
    EXPECT_TRUE(p.covers_all(dfs.chosen));
    EXPECT_TRUE(p.covers_all(bfs.chosen));
    EXPECT_LE(dfs.nodes_explored, legacy.nodes_explored);
    // Optimal exits report a tight bound.
    EXPECT_NEAR(dfs.lower_bound, dfs.cost, 1e-9);
  }
}

// A warm-start cover seeds the incumbent: with a warm start matching the
// optimum, the search only needs to PROVE optimality, never to find it.
TEST(Exact, WarmStartSeedsIncumbent) {
  const CoverProblem p = corpus_problem(15, 60, 0.25, 91 + 15);
  BnbOptions plain;
  plain.dense_dp_max_rows = 0;
  const CoverSolution base = solve_exact(p, plain);
  ASSERT_TRUE(base.optimal);

  BnbOptions warmed = plain;
  warmed.warm_start = base.chosen;
  const CoverSolution warm = solve_exact(p, warmed);
  EXPECT_TRUE(warm.optimal);
  EXPECT_NEAR(warm.cost, base.cost, 1e-9);
  EXPECT_LE(warm.nodes_explored, base.nodes_explored);

  // An invalid warm start (not a cover / out of range) is ignored, not
  // trusted.
  BnbOptions bogus = plain;
  bogus.warm_start = {p.num_columns() + 5};
  const CoverSolution b = solve_exact(p, bogus);
  EXPECT_TRUE(b.optimal);
  EXPECT_NEAR(b.cost, base.cost, 1e-9);
}

// Warm re-solve: a branch-and-bound run exports the root multipliers its
// Lagrangian ascent converged to, and feeding them back into a re-solve of
// the same (or a near-identical) instance seeds the root ascent without
// ever changing the proven optimum. Relaxation is a lower-bounding device,
// so ANY multiplier seed is sound; only the node counts may differ.
TEST(Exact, WarmMultipliersResolveSameOptimum) {
  const struct {
    int rows, cols;
    double density;
  } corpus[] = {
      {12, 200, 0.25},
      {15, 60, 0.25},
      {20, 100, 0.20},
  };
  for (const auto& c : corpus) {
    const CoverProblem p =
        corpus_problem(c.rows, c.cols, c.density, 91 + c.rows);
    BnbOptions cold;
    cold.dense_dp_max_rows = 0;
    const CoverSolution base = solve_exact(p, cold);
    ASSERT_TRUE(base.optimal);
    ASSERT_EQ(base.root_multipliers.size(), p.num_rows());

    // Parent multipliers + previous cover as incumbent: the full warm
    // re-solve an incremental session performs.
    BnbOptions warmed = cold;
    warmed.warm_multipliers = base.root_multipliers;
    warmed.warm_start = base.chosen;
    const CoverSolution warm = solve_exact(p, warmed);
    EXPECT_TRUE(warm.optimal);
    EXPECT_NEAR(warm.cost, base.cost, 1e-9)
        << c.rows << "x" << c.cols << " density " << c.density;
    EXPECT_TRUE(p.covers_all(warm.chosen));

    // Mis-sized multipliers are ignored, not trusted.
    BnbOptions bogus = cold;
    bogus.warm_multipliers.assign(p.num_rows() + 3, 1.0);
    const CoverSolution b = solve_exact(p, bogus);
    EXPECT_TRUE(b.optimal);
    EXPECT_NEAR(b.cost, base.cost, 1e-9);
    EXPECT_EQ(b.nodes_explored, base.nodes_explored);  // identical cold tree
  }
}

// Empty warm_multipliers (the default) must reproduce the cold search tree
// node-for-node -- the bit-identity invariant the incremental engine's
// default mode rests on.
TEST(Exact, EmptyWarmMultipliersIsColdTree) {
  const CoverProblem p = corpus_problem(20, 100, 0.2, 111);
  BnbOptions cold;
  cold.dense_dp_max_rows = 0;
  const CoverSolution a = solve_exact(p, cold);
  const CoverSolution b = solve_exact(p, cold);
  EXPECT_EQ(a.nodes_explored, b.nodes_explored);
  EXPECT_EQ(a.chosen, b.chosen);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.root_multipliers, b.root_multipliers);
}

}  // namespace
}  // namespace cdcs::ucp
