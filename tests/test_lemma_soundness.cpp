// Empirical soundness of the pruning lemmas against the actual pricers.
//
// Lemma 3.1 (and 3.2) promise that a pruned subset cannot be part of an
// optimal merging under Assumption 2.1. The theory's proof lives in the
// authors' technical report; here we validate the claim operationally: on
// random instances, whenever a pair/triple is pruned, the best merged
// realization our pricers can find (star, chain or tree) must not beat the
// sum of the members' point-to-point optima.
#include <random>

#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "synth/candidate_generator.hpp"

namespace cdcs::synth {
namespace {

double best_merged_cost(const model::ConstraintGraph& cg,
                        const commlib::Library& lib,
                        const std::vector<model::ArcId>& subset) {
  double best = std::numeric_limits<double>::infinity();
  if (const auto star = price_merging(cg, lib, subset)) {
    best = std::min(best, star->cost);
  }
  if (const auto chain = price_chain_merging(cg, lib, subset)) {
    best = std::min(best, chain->cost);
  }
  if (const auto tree = price_tree_merging(cg, lib, subset)) {
    best = std::min(best, tree->cost);
  }
  return best;
}

class LemmaSoundness : public ::testing::TestWithParam<int> {};

TEST_P(LemmaSoundness, PrunedPairsNeverSaveMoney) {
  std::mt19937_64 rng(GetParam() * 6151 + 7);
  std::uniform_real_distribution<double> coord(-60.0, 60.0);
  std::uniform_real_distribution<double> bw(5.0, 11.0);  // radio-carriable

  const commlib::Library lib = commlib::wan_library();
  int pruned_pairs_checked = 0;
  for (int instance = 0; instance < 6; ++instance) {
    model::ConstraintGraph cg;
    std::vector<model::VertexId> ports;
    for (int i = 0; i < 6; ++i) {
      ports.push_back(
          cg.add_port("p" + std::to_string(i), {coord(rng), coord(rng)}));
    }
    std::uniform_int_distribution<int> pick(0, 5);
    for (int c = 0; c < 5; ++c) {
      int u = pick(rng);
      int v = pick(rng);
      if (u == v) v = (v + 1) % 6;
      cg.add_channel(ports[u], ports[v], bw(rng));
    }

    const ArcPairMatrix gamma = gamma_matrix(cg);
    const ArcPairMatrix delta = delta_matrix(cg);
    const auto arcs = cg.arcs();
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      for (std::size_t j = i + 1; j < arcs.size(); ++j) {
        if (!lemma31_prunes(gamma, delta, arcs[i], arcs[j])) continue;
        ++pruned_pairs_checked;
        const double merged = best_merged_cost(cg, lib, {arcs[i], arcs[j]});
        const double separate =
            best_point_to_point_cost(cg.distance(arcs[i]),
                                     cg.bandwidth(arcs[i]), lib) +
            best_point_to_point_cost(cg.distance(arcs[j]),
                                     cg.bandwidth(arcs[j]), lib);
        EXPECT_GE(merged, separate - 1e-6 * separate)
            << "pruned pair saved money (instance " << instance << ")";
      }
    }
  }
  // The test must actually exercise pruned pairs to mean anything.
  EXPECT_GT(pruned_pairs_checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LemmaSoundness, ::testing::Range(0, 6));

TEST(LemmaSoundness, PrunedTriplesOnWan) {
  // Every WAN triple pruned by the (any-pivot) Lemma 3.2 must price at or
  // above its members' point-to-point sum.
  const commlib::Library lib = commlib::wan_library();
  model::ConstraintGraph cg;
  const model::VertexId a = cg.add_port("A", {0, 0});
  const model::VertexId b = cg.add_port("B", {4, 3});
  const model::VertexId c = cg.add_port("C", {9, 1});
  const model::VertexId d = cg.add_port("D", {-2, -97});
  const model::VertexId e = cg.add_port("E", {0, -100});
  cg.add_channel(a, b, 10.0);
  cg.add_channel(c, b, 10.0);
  cg.add_channel(c, a, 10.0);
  cg.add_channel(d, a, 10.0);
  cg.add_channel(d, b, 10.0);
  cg.add_channel(d, c, 10.0);
  cg.add_channel(d, e, 10.0);
  cg.add_channel(e, d, 10.0);

  const ArcPairMatrix gamma = gamma_matrix(cg);
  const ArcPairMatrix delta = delta_matrix(cg);
  const auto arcs = cg.arcs();
  int pruned_checked = 0;
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    for (std::size_t j = i + 1; j < arcs.size(); ++j) {
      for (std::size_t k = j + 1; k < arcs.size(); ++k) {
        const std::vector<model::ArcId> triple = {arcs[i], arcs[j], arcs[k]};
        if (!lemma32_prunes(cg, gamma, delta, triple, PivotRule::kAnyPivot)) {
          continue;
        }
        ++pruned_checked;
        const double merged = best_merged_cost(cg, lib, triple);
        double separate = 0.0;
        for (model::ArcId arc : triple) {
          separate +=
              best_point_to_point_cost(cg.distance(arc), cg.bandwidth(arc), lib);
        }
        EXPECT_GE(merged, separate - 1e-6 * separate);
      }
    }
  }
  EXPECT_GT(pruned_checked, 20);  // most of the 56 triples are pruned
}

}  // namespace
}  // namespace cdcs::synth
