#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "synth/candidate_generator.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs::synth {
namespace {

TEST(CandidateStats, PrunedCountsAddUp) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  const CandidateSet set = generate_candidates(cg, lib, {}).value();
  const auto& s = set.stats;
  // At k=2 the 28 pairs split into survivors + geometric prunes (no
  // bandwidth prunes fire on this instance).
  EXPECT_EQ(s.survivors_per_k[2] + s.pruned_geometry_per_k[2], 28u);
  EXPECT_EQ(s.pruned_bandwidth_per_k[2], 0u);
  EXPECT_FALSE(s.enumeration_truncated);
  // Total subsets examined = sum over k of C(active_k, k); must be at least
  // the survivors at every level.
  std::size_t total_survivors = 0;
  for (std::size_t k = 2; k < s.survivors_per_k.size(); ++k) {
    total_survivors += s.survivors_per_k[k];
  }
  EXPECT_GT(s.subsets_examined, total_survivors);
}

TEST(CandidateStats, TruncationFlagFires) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  SynthesisOptions opts;
  opts.max_subsets_per_k = 5;  // absurdly small budget
  const CandidateSet set = generate_candidates(cg, lib, opts).value();
  EXPECT_TRUE(set.stats.enumeration_truncated);
  // Point-to-point candidates are always present regardless.
  EXPECT_GE(set.candidates.size(), cg.num_channels());
}

TEST(CandidateStats, BandwidthPruningFires) {
  // A library whose fastest link is barely above a single channel: any
  // 2-subset trips Theorem 3.2 (sum >= max_l b + min b).
  model::ConstraintGraph cg;
  const model::VertexId a = cg.add_port("a", {0, 0});
  const model::VertexId b = cg.add_port("b", {1, 0});
  const model::VertexId c = cg.add_port("c", {0, 1});
  cg.add_channel(a, b, 10.0);
  cg.add_channel(a, c, 10.0);
  commlib::Library lib("tight");
  lib.add_link(commlib::Link{
      .name = "only", .bandwidth = 10.0, .cost_per_length = 1.0});
  lib.add_node(commlib::Node{
      .name = "sw", .kind = commlib::NodeKind::kSwitch, .cost = 0.1});
  const CandidateSet set = generate_candidates(cg, lib, {}).value();
  EXPECT_EQ(set.stats.pruned_bandwidth_per_k[2], 1u);
  EXPECT_EQ(set.stats.survivors_per_k[2], 0u);
  EXPECT_EQ(set.candidates.size(), 2u);  // singletons only
}

TEST(CandidateStats, UnpriceableSurvivorsCounted) {
  // Two channels whose merging survives the geometric tests but cannot be
  // structured: differing sources and targets need both a mux and a demux,
  // and the library has neither.
  model::ConstraintGraph cg;
  const model::VertexId u1 = cg.add_port("u1", {0, 0});
  const model::VertexId u2 = cg.add_port("u2", {0, 1});
  const model::VertexId v1 = cg.add_port("v1", {100, 0});
  const model::VertexId v2 = cg.add_port("v2", {100, 1});
  cg.add_channel(u1, v1, 5.0);
  cg.add_channel(u2, v2, 5.0);
  commlib::Library lib("nonodes");
  lib.add_link(commlib::Link{
      .name = "wire", .bandwidth = 100.0, .cost_per_length = 1.0});
  const CandidateSet set = generate_candidates(cg, lib, {}).value();
  EXPECT_EQ(set.stats.survivors_per_k[2], 1u);
  EXPECT_EQ(set.stats.unpriceable_per_k[2], 1u);
  EXPECT_EQ(set.candidates.size(), 2u);
}

/// Candidate sets must be bit-identical with the grid pre-filter on and
/// off: it may only skip subsets the lemma tests were going to prune.
void expect_same_candidates(const CandidateSet& a, const CandidateSet& b) {
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].arcs, b.candidates[i].arcs) << "candidate " << i;
    EXPECT_DOUBLE_EQ(a.candidates[i].cost, b.candidates[i].cost)
        << "candidate " << i;
  }
  EXPECT_EQ(a.stats.survivors_per_k, b.stats.survivors_per_k);
  EXPECT_EQ(a.stats.pruned_geometry_per_k, b.stats.pruned_geometry_per_k);
  EXPECT_EQ(a.stats.pruned_bandwidth_per_k, b.stats.pruned_bandwidth_per_k);
}

TEST(CandidateStats, GridPrefilterIsPureSpeedup) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  SynthesisOptions with_grid;
  with_grid.use_grid_prefilter = true;
  SynthesisOptions without_grid;
  without_grid.use_grid_prefilter = false;
  const CandidateSet a = generate_candidates(cg, lib, with_grid).value();
  const CandidateSet b = generate_candidates(cg, lib, without_grid).value();
  expect_same_candidates(a, b);
  // With the filter off, no skips may be reported.
  for (std::size_t skips : b.stats.grid_prefilter_skips_per_k) {
    EXPECT_EQ(skips, 0u);
  }
  // Skips are a subset of the geometric prunes, never exceeding them.
  for (std::size_t k = 0; k < a.stats.grid_prefilter_skips_per_k.size(); ++k) {
    EXPECT_LE(a.stats.grid_prefilter_skips_per_k[k],
              a.stats.pruned_geometry_per_k[k]);
  }
}

TEST(CandidateStats, GridPrefilterSkipsFarApartPairs) {
  // Two tight clusters very far apart: every cross-cluster pair is
  // geometrically unmergeable by a margin the grid alone certifies, so the
  // pre-filter must skip those without consulting the lemma.
  model::ConstraintGraph cg;
  const double kFar = 1e5;
  for (int c = 0; c < 2; ++c) {
    const double base = c * kFar;
    for (int i = 0; i < 3; ++i) {
      const model::VertexId u =
          cg.add_port("u" + std::to_string(c) + std::to_string(i),
                      {base, static_cast<double>(i)});
      const model::VertexId v =
          cg.add_port("v" + std::to_string(c) + std::to_string(i),
                      {base + 10.0, static_cast<double>(i)});
      cg.add_channel(u, v, 5.0);
    }
  }
  const commlib::Library lib = commlib::wan_library();
  SynthesisOptions with_grid;
  const CandidateSet a = generate_candidates(cg, lib, with_grid).value();
  // 9 of the C(6,2) = 15 pairs are cross-cluster; all must be grid-skipped.
  EXPECT_GE(a.stats.grid_prefilter_skips_per_k[2], 9u);

  SynthesisOptions without_grid;
  without_grid.use_grid_prefilter = false;
  const CandidateSet b = generate_candidates(cg, lib, without_grid).value();
  expect_same_candidates(a, b);

  // With the lemmas ablated the filter must deactivate too -- skipping
  // would change the candidate set, not just its cost.
  SynthesisOptions no_lemmas;
  no_lemmas.use_lemma31 = false;
  no_lemmas.use_lemma32 = false;
  const CandidateSet c = generate_candidates(cg, lib, no_lemmas).value();
  for (std::size_t skips : c.stats.grid_prefilter_skips_per_k) {
    EXPECT_EQ(skips, 0u);
  }
}

TEST(CandidateStats, MaxIndexPivotDiffersFromMinDistance) {
  // Pivot rules are genuinely different policies; on the WAN they agree at
  // k=2..4 but generally diverge (documented in bench_scaling_ablation).
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  SynthesisOptions max_idx;
  max_idx.pivot_rule = PivotRule::kMaxIndex;
  const CandidateSet a = generate_candidates(cg, lib, max_idx).value();
  EXPECT_EQ(a.stats.survivors_per_k[2], 13u);
  EXPECT_EQ(a.stats.survivors_per_k[3], 21u);
  EXPECT_EQ(a.stats.survivors_per_k[4], 16u);
}

}  // namespace
}  // namespace cdcs::synth
