// Worker-pool and concurrent-deadline regression tests. The pool's single
// correctness obligation is ordered, exception-transparent fan-out (the
// synthesis engine's determinism rests on it); the Deadline's is that many
// threads may poll one object without tearing the fault-injection count or
// double-firing the expiry callback.
#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/deadline.hpp"
#include "support/thread_pool.hpp"

namespace cdcs::support {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f1 = pool.submit([] { return 41 + 1; });
  auto f2 = pool.submit([] { return std::string("done"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "done");
}

TEST(ThreadPool, ZeroWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DrainsQueueBeforeJoining) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor must wait for all 100, not just in-flight ones
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ParallelMapOrderedPreservesIndexOrder) {
  ThreadPool pool(4);
  const std::size_t n = 200;
  const auto out = parallel_map_ordered(&pool, n, [](std::size_t i) {
    if (i % 7 == 0) std::this_thread::yield();  // jitter completion order
    return i * i;
  });
  ASSERT_EQ(out.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ParallelMapOrderedInlineWithoutPool) {
  // Null pool and single-worker pool both take the inline path and must
  // agree with the pooled result -- this is the determinism contract.
  auto square = [](std::size_t i) { return i * 3 + 1; };
  const auto inline_out = parallel_map_ordered(nullptr, 50, square);
  ThreadPool one(1);
  const auto single_out = parallel_map_ordered(&one, 50, square);
  ThreadPool many(4);
  const auto pooled_out = parallel_map_ordered(&many, 50, square);
  EXPECT_EQ(inline_out, single_out);
  EXPECT_EQ(inline_out, pooled_out);
}

TEST(ThreadPool, ParallelMapOrderedPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_map_ordered(&pool, 10,
                                    [](std::size_t i) -> int {
                                      if (i == 3) {
                                        throw std::runtime_error("boom");
                                      }
                                      return static_cast<int>(i);
                                    }),
               std::runtime_error);
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(resolve_thread_count(3), 3u);
  EXPECT_EQ(resolve_thread_count(1), 1u);
  EXPECT_GE(resolve_thread_count(0), 1u);   // all hardware, at least one
  EXPECT_GE(resolve_thread_count(-5), 1u);
}

// --- Deadline under concurrency -----------------------------------------

TEST(DeadlineConcurrency, PollsNeverTearTheCheckCount) {
  // N threads hammer expired() on a shared check-counted deadline. The
  // fetch_sub ticket scheme hands each poll a distinct ticket, so the
  // observable invariant is: at most `budget` polls return false, and once
  // any poll returns true the latch holds for everyone.
  constexpr long kBudget = 10000;
  Deadline d = Deadline::expire_after_checks(kBudget);
  constexpr int kThreads = 8;
  std::atomic<long> alive_polls{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&d, &alive_polls] {
      for (int i = 0; i < 2000; ++i) {
        if (!d.expired()) alive_polls.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  // 16000 total polls against a budget of 10000: the deadline must have
  // tripped, and no poll after the budget may have reported alive.
  EXPECT_TRUE(d.latched());
  EXPECT_LE(alive_polls.load(), kBudget);
  EXPECT_TRUE(d.expired());  // latch holds
}

TEST(DeadlineConcurrency, ExpiryCallbackFiresExactlyOnce) {
  std::atomic<int> fired{0};
  Deadline d = Deadline::expire_after_checks(100);
  d.on_expiry([&fired] { fired.fetch_add(1); });

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&d] {
      for (int i = 0; i < 1000; ++i) (void)d.expired();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(fired.load(), 1);
}

TEST(DeadlineConcurrency, CallbackSharedAcrossCopies) {
  // Copies snapshot the poll budget but SHARE the once-only callback state:
  // whichever copy latches first fires it, and the others stay silent.
  std::atomic<int> fired{0};
  Deadline original = Deadline::expire_after_checks(5);
  original.on_expiry([&fired] { fired.fetch_add(1); });
  Deadline copy = original;

  for (int i = 0; i < 20; ++i) (void)copy.expired();
  EXPECT_EQ(fired.load(), 1);
  for (int i = 0; i < 20; ++i) (void)original.expired();
  EXPECT_EQ(fired.load(), 1);  // still once, across both copies
}

TEST(DeadlineConcurrency, CancelTokenObservedByAllPollers) {
  CancelToken token;
  Deadline d = Deadline::never();
  d.attach(token);
  EXPECT_FALSE(d.expired());

  std::atomic<bool> all_saw_expiry{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&d, &all_saw_expiry] {
      // Spin until this thread observes the cancellation. Bounded by wall
      // clock, not iterations: under a loaded ctest -j the cancelling
      // thread may not be scheduled for many milliseconds.
      const auto give_up =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (std::chrono::steady_clock::now() < give_up) {
        if (d.expired()) return;
        std::this_thread::yield();
      }
      all_saw_expiry.store(false);
    });
  }
  token.cancel();
  for (auto& th : threads) th.join();
  EXPECT_TRUE(all_saw_expiry.load());
}

TEST(DeadlineConcurrency, LatchedIsPollFree) {
  Deadline d = Deadline::expire_after_checks(2);
  EXPECT_FALSE(d.latched());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(d.latched());  // consumes nothing
  EXPECT_FALSE(d.expired());  // poll 1
  EXPECT_FALSE(d.expired());  // poll 2
  EXPECT_FALSE(d.latched());
  EXPECT_TRUE(d.expired());   // poll 3 trips
  EXPECT_TRUE(d.latched());
}

}  // namespace
}  // namespace cdcs::support
