// Solver v2 bound machinery: the subgradient Lagrangian relaxation
// (ucp/lagrangian.hpp) and the reduced-cost fixing rule built on it.
//
// The contracts under test are the ones branch-and-bound correctness hangs
// on:
//   * L(lambda) is a valid lower bound for every lambda >= 0, and the
//     ascent's best iterate DOMINATES the greedy independent-rows (MIS)
//     bound (it starts from multipliers that reproduce it exactly);
//   * reduced-cost fixing never removes a column that belongs to ANY
//     optimal cover (strict comparison against the incumbent);
//   * degraded solver exits report the Lagrangian root bound.
#include <cmath>
#include <limits>
#include <random>

#include <gtest/gtest.h>

#include "support/deadline.hpp"
#include "ucp/bnb.hpp"
#include "ucp/dp.hpp"
#include "ucp/greedy.hpp"
#include "ucp/lagrangian.hpp"

namespace cdcs::ucp {
namespace {

CoverProblem random_problem(int rows, int cols, double density,
                            unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> weight(0.5, 10.0);
  CoverProblem p(rows);
  for (int j = 0; j < cols; ++j) {
    std::vector<std::size_t> covered;
    for (int r = 0; r < rows; ++r) {
      if (unit(rng) < density) covered.push_back(r);
    }
    if (covered.empty()) covered.push_back(j % rows);
    p.add_column(covered, weight(rng));
  }
  for (int r = 0; r < rows; ++r) {
    p.add_column({static_cast<std::size_t>(r)}, 12.0);
  }
  return p;
}

/// Exact dual value L(lambda) recomputed independently of the ascent code.
double dual_value(const CoverProblem& p, const std::vector<double>& lambda) {
  double value = 0.0;
  for (std::size_t r = 0; r < p.num_rows(); ++r) value += lambda[r];
  for (std::size_t j = 0; j < p.num_columns(); ++j) {
    double rc = p.column(j).weight;
    p.column(j).rows.for_each([&](std::size_t r) { rc -= lambda[r]; });
    if (rc < 0.0) value += rc;
  }
  return value;
}

// Bound hierarchy on random instances small enough for the exact DP:
//   0 <= MIS bound <= Lagrangian bound <= optimum.
TEST(Lagrangian, BoundHierarchyOnRandomInstances) {
  for (unsigned seed = 0; seed < 20; ++seed) {
    std::mt19937 meta(seed * 7919 + 3);
    const int rows = std::uniform_int_distribution<int>(4, 12)(meta);
    const int cols = std::uniform_int_distribution<int>(rows, 40)(meta);
    const double density =
        std::uniform_real_distribution<double>(0.15, 0.5)(meta);
    const CoverProblem p = random_problem(rows, cols, density, seed);

    const CoverSolution opt = solve_dp(p);
    ASSERT_TRUE(opt.optimal);

    const double mis = independent_rows_lower_bound(p);
    const double lagr = lagrangian_root_bound(p);

    EXPECT_GE(mis, 0.0);
    EXPECT_GE(lagr, mis - 1e-9) << "seed " << seed;
    EXPECT_LE(lagr, opt.cost + 1e-6) << "seed " << seed;
  }
}

// subgradient_bound's reported (bound, multipliers) pair is self-consistent:
// re-evaluating L at the returned multipliers reproduces the bound, so the
// bound really is L(lambda) for an explicit lambda >= 0 -- a machine-checked
// certificate, not just a number.
TEST(Lagrangian, ReportedBoundMatchesItsMultipliers) {
  const CoverProblem p = random_problem(10, 40, 0.3, 42);
  Bitset uncovered(p.num_rows());
  uncovered.set_all();
  Bitset available(p.num_columns());
  available.set_all();

  const CoverSolution greedy = solve_greedy(p);
  const LagrangianBound lb =
      subgradient_bound(p, uncovered, available, greedy.cost);
  for (double m : lb.multipliers) EXPECT_GE(m, 0.0);
  EXPECT_NEAR(dual_value(p, lb.multipliers), lb.bound, 1e-9);
}

// The MIS-seeded start reproduces the MIS bound exactly: independent rows
// share no available column, so every reduced cost stays >= 0 and L
// collapses to the sum of the seeds. This is the dominance argument.
TEST(Lagrangian, MisSeedReproducesMisBound) {
  for (unsigned seed = 100; seed < 110; ++seed) {
    const CoverProblem p = random_problem(8, 30, 0.3, seed);
    Bitset uncovered(p.num_rows());
    uncovered.set_all();
    Bitset available(p.num_columns());
    available.set_all();
    const std::vector<double> lambda = mis_multipliers(p, uncovered, available);
    EXPECT_NEAR(dual_value(p, lambda), independent_rows_lower_bound(p), 1e-9)
        << "seed " << seed;
  }
}

// Reduced-cost fixing safety: enumerate EVERY optimal cover by brute force
// and check that no column in any of them is fixed out at the root, with the
// incumbent set to the exact optimum (the tightest budget the solver ever
// fixes against).
TEST(Lagrangian, FixingPreservesEveryOptimalCover) {
  for (unsigned seed = 0; seed < 12; ++seed) {
    std::mt19937 meta(seed * 131 + 7);
    const int rows = std::uniform_int_distribution<int>(4, 7)(meta);
    const int cols = std::uniform_int_distribution<int>(8, 14)(meta);
    const CoverProblem p = random_problem(rows, cols, 0.35, 1000 + seed);

    const CoverSolution opt = solve_dp(p);
    ASSERT_TRUE(opt.optimal);

    // Columns appearing in at least one optimal cover.
    std::vector<bool> in_some_optimum(p.num_columns(), false);
    const std::size_t n = p.num_columns();
    ASSERT_LE(n, 22u) << "brute force would be too slow";
    for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
      std::vector<std::size_t> chosen;
      for (std::size_t j = 0; j < n; ++j) {
        if (mask & (std::size_t{1} << j)) chosen.push_back(j);
      }
      if (!p.covers_all(chosen)) continue;
      if (p.cost_of(chosen) <= opt.cost + 1e-9) {
        for (std::size_t j : chosen) in_some_optimum[j] = true;
      }
    }

    Bitset uncovered(p.num_rows());
    uncovered.set_all();
    Bitset available(p.num_columns());
    available.set_all();
    const LagrangianBound lagr =
        subgradient_bound(p, uncovered, available, opt.cost);

    // The fixing rule from ucp/bnb.cpp, with the optimum as incumbent.
    for (std::size_t j = 0; j < p.num_columns(); ++j) {
      const double through =
          lagr.bound + std::max(0.0, lagr.reduced_costs[j]);
      const bool fixed_out = through > opt.cost * (1.0 + 1e-12) + 1e-9;
      if (fixed_out) {
        EXPECT_FALSE(in_some_optimum[j])
            << "seed " << seed << ": column " << j
            << " is in an optimal cover but was fixed out (bound "
            << lagr.bound << ", rc " << lagr.reduced_costs[j] << ", opt "
            << opt.cost << ")";
      }
    }
  }
}

// Degraded exits carry the Lagrangian root bound: expire the deadline
// instantly and check the reported lower_bound dominates the independent-
// rows bound and still sits below the (greedy) incumbent cost.
TEST(Lagrangian, DeadlineExpiryReportsRootBound) {
  const CoverProblem p = random_problem(25, 120, 0.2, 77);

  BnbOptions opt;
  opt.dense_dp_max_rows = 0;
  opt.deadline = support::Deadline::expire_after_checks(0);
  const CoverSolution s = solve_exact(p, opt);

  EXPECT_FALSE(s.optimal);
  EXPECT_TRUE(s.deadline_expired);
  EXPECT_GE(s.lower_bound, independent_rows_lower_bound(p) - 1e-9);
  EXPECT_GT(s.lower_bound, 0.0);
  // The bound must be valid: never above the cost of the returned cover.
  EXPECT_LE(s.lower_bound, s.cost + 1e-9);

  // Same contract through the dense-DP dispatch path (rows <= 20).
  const CoverProblem small = random_problem(15, 60, 0.25, 78);
  BnbOptions dp_opt;
  dp_opt.deadline = support::Deadline::expire_after_checks(0);
  const CoverSolution d = solve_exact(small, dp_opt);
  EXPECT_FALSE(d.optimal);
  EXPECT_TRUE(d.deadline_expired);
  EXPECT_GE(d.lower_bound, independent_rows_lower_bound(small) - 1e-9);
  EXPECT_GT(d.lower_bound, 0.0);
  EXPECT_LE(d.lower_bound, d.cost + 1e-9);
}

// Best-first search returns the same proven-optimal cost as DFS even on
// instances with many cost ties, and its frontier cap degrades gracefully.
TEST(Lagrangian, BestFirstMatchesDfsAndCapsGracefully) {
  for (unsigned seed = 300; seed < 306; ++seed) {
    const CoverProblem p = random_problem(14, 80, 0.25, seed);
    BnbOptions dfs;
    dfs.dense_dp_max_rows = 0;
    BnbOptions bfs = dfs;
    bfs.search_order = SearchOrder::kBestFirst;

    const CoverSolution a = solve_exact(p, dfs);
    const CoverSolution b = solve_exact(p, bfs);
    ASSERT_TRUE(a.optimal);
    ASSERT_TRUE(b.optimal);
    EXPECT_NEAR(a.cost, b.cost, 1e-9) << "seed " << seed;
  }

  // A tiny frontier cap must still return a feasible cover, just unproven.
  const CoverProblem p = random_problem(22, 150, 0.2, 321);
  BnbOptions capped;
  capped.dense_dp_max_rows = 0;
  capped.search_order = SearchOrder::kBestFirst;
  capped.best_first_max_frontier = 2;
  capped.use_lagrangian_bound = false;  // keep the root from proving optimality
  capped.use_reduced_cost_fixing = false;
  const CoverSolution s = solve_exact(p, capped);
  EXPECT_TRUE(p.covers_all(s.chosen));
  EXPECT_TRUE(std::isfinite(s.cost));
}

}  // namespace
}  // namespace cdcs::ucp
