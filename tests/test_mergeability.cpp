#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "synth/candidate_generator.hpp"
#include "synth/mergeability.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs::synth {
namespace {

struct WanFixture : ::testing::Test {
  model::ConstraintGraph cg = workloads::wan2002();
  ArcPairMatrix gamma = gamma_matrix(cg);
  ArcPairMatrix delta = delta_matrix(cg);
  model::ArcId arc(int one_based) const {
    return model::ArcId{static_cast<std::uint32_t>(one_based - 1)};
  }
};

TEST_F(WanFixture, Lemma31PairsMatchPaper) {
  // The 13 surviving pairs of the paper (Sec. 4); everything else pruned.
  const std::pair<int, int> surviving[] = {{1, 2}, {1, 5}, {1, 6}, {2, 3},
                                           {2, 5}, {3, 4}, {3, 5}, {4, 5},
                                           {4, 6}, {4, 7}, {5, 6}, {5, 7},
                                           {6, 7}};
  std::size_t survivors = 0;
  for (int i = 1; i <= 8; ++i) {
    for (int j = i + 1; j <= 8; ++j) {
      const bool pruned = lemma31_prunes(gamma, delta, arc(i), arc(j));
      const bool expected_survivor =
          std::find(std::begin(surviving), std::end(surviving),
                    std::make_pair(i, j)) != std::end(surviving);
      EXPECT_EQ(!pruned, expected_survivor)
          << "pair (a" << i << ",a" << j << ")";
      if (!pruned) ++survivors;
    }
  }
  EXPECT_EQ(survivors, 13u);
}

TEST_F(WanFixture, Lemma31PrunesOnExactEquality) {
  // Gamma(a6,a8) == Delta(a6,a8) exactly (both d6 + d7); the lemma's "<="
  // must prune this degenerate pair.
  EXPECT_DOUBLE_EQ(gamma(arc(6), arc(8)), delta(arc(6), arc(8)));
  EXPECT_TRUE(lemma31_prunes(gamma, delta, arc(6), arc(8)));
}

TEST_F(WanFixture, Lemma32PivotEquivalenceAtK2) {
  // At k = 2 Lemma 3.2 with either pivot reduces to Lemma 3.1.
  for (int i = 1; i <= 8; ++i) {
    for (int j = i + 1; j <= 8; ++j) {
      const std::vector<model::ArcId> pair = {arc(i), arc(j)};
      EXPECT_EQ(lemma31_prunes(gamma, delta, arc(i), arc(j)),
                lemma32_prunes_with_pivot(gamma, delta, pair, arc(i)));
      EXPECT_EQ(lemma31_prunes(gamma, delta, arc(i), arc(j)),
                lemma32_prunes_with_pivot(gamma, delta, pair, arc(j)));
    }
  }
}

TEST_F(WanFixture, Lemma32TripleWithPrunedPairCanSurvive) {
  // {a1,a2,a3} contains the pruned pair (a1,a3) yet survives the pivot test
  // -- this is why the paper counts 21 3-way candidates, not 8 triangles.
  const std::vector<model::ArcId> triple = {arc(1), arc(2), arc(3)};
  EXPECT_TRUE(lemma31_prunes(gamma, delta, arc(1), arc(3)));
  EXPECT_FALSE(
      lemma32_prunes(cg, gamma, delta, triple, PivotRule::kMinDistance));
}

TEST_F(WanFixture, AnyPivotPrunesAtLeastAsMuchAsSinglePivot) {
  // Soundness ordering: every subset pruned by the single-pivot rule is
  // pruned by the any-pivot rule.
  const std::vector<model::ArcId> arcs = cg.arcs();
  std::vector<model::ArcId> subset(3);
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    for (std::size_t j = i + 1; j < arcs.size(); ++j) {
      for (std::size_t k = j + 1; k < arcs.size(); ++k) {
        subset = {arcs[i], arcs[j], arcs[k]};
        if (lemma32_prunes(cg, gamma, delta, subset,
                           PivotRule::kMinDistance)) {
          EXPECT_TRUE(
              lemma32_prunes(cg, gamma, delta, subset, PivotRule::kAnyPivot));
        }
      }
    }
  }
}

TEST(Theorem32, BandwidthSumTriggers) {
  // max link bandwidth 100; three channels of 40 each: 120 >= 100 + 40 is
  // false -> not pruned; four channels: 160 >= 140 -> pruned.
  const std::vector<double> three = {40, 40, 40};
  EXPECT_FALSE(theorem32_prunes(three, 100.0));
  const std::vector<double> four = {40, 40, 40, 40};
  EXPECT_TRUE(theorem32_prunes(four, 100.0));
  // Boundary: equality prunes.
  const std::vector<double> edge = {60, 40};
  EXPECT_TRUE(theorem32_prunes(edge, 60.0));
}

TEST(Theorem32, NeverFiresOnWanExample) {
  // 8 x 10 Mbps never reaches 1000 + 10.
  const std::vector<double> all(8, 10.0);
  EXPECT_FALSE(theorem32_prunes(all, 1000.0));
}

TEST_F(WanFixture, GeneratorReproducesPaperCounts) {
  const commlib::Library lib = commlib::wan_library();
  SynthesisOptions opts;  // defaults = paper-matching
  const CandidateSet set = generate_candidates(cg, lib, opts).value();
  const auto& s = set.stats;
  EXPECT_EQ(s.survivors_per_k[2], 13u);
  EXPECT_EQ(s.survivors_per_k[3], 21u);
  EXPECT_EQ(s.survivors_per_k[4], 16u);
  // Known divergence from the paper's "five": the published sufficient
  // conditions leave six 5-subsets (see bench_fig3 header).
  EXPECT_EQ(s.survivors_per_k[5], 6u);
  EXPECT_EQ(s.survivors_per_k[6], 1u);
  // a8 unmergeable (Theorem 3.1 at k=2); a7 dies after k=5.
  EXPECT_EQ(s.arc_eliminated_after_k[7], 2);
  EXPECT_EQ(s.arc_eliminated_after_k[6], 5);
  // 8 singletons + 13 + 21 + 16 + 6 + 1 = 65 columns.
  EXPECT_EQ(set.candidates.size(), 65u);
}

TEST_F(WanFixture, GeneratorAblationLemmaOff) {
  const commlib::Library lib = commlib::wan_library();
  SynthesisOptions opts;
  opts.use_lemma31 = false;
  opts.use_lemma32 = false;
  opts.use_theorem31 = false;
  opts.max_merge_k = 3;  // keep the unpruned explosion bounded
  const CandidateSet set = generate_candidates(cg, lib, opts).value();
  EXPECT_EQ(set.stats.survivors_per_k[2], 28u);  // C(8,2)
  EXPECT_EQ(set.stats.survivors_per_k[3], 56u);  // C(8,3)
}

TEST_F(WanFixture, GeneratorRespectsMaxK) {
  const commlib::Library lib = commlib::wan_library();
  SynthesisOptions opts;
  opts.max_merge_k = 2;
  const CandidateSet set = generate_candidates(cg, lib, opts).value();
  EXPECT_EQ(set.stats.survivors_per_k.size(), 3u);
  EXPECT_EQ(set.candidates.size(), 8u + 13u);
}

TEST_F(WanFixture, DropUnprofitableShrinksColumnsOnly) {
  const commlib::Library lib = commlib::wan_library();
  SynthesisOptions lean;
  lean.drop_unprofitable = true;
  const CandidateSet lean_set = generate_candidates(cg, lib, lean).value();
  const CandidateSet full_set = generate_candidates(cg, lib, {}).value();
  EXPECT_LT(lean_set.candidates.size(), full_set.candidates.size());
  // Survivor statistics (the paper's counts) are unaffected.
  EXPECT_EQ(lean_set.stats.survivors_per_k, full_set.stats.survivors_per_k);
  // The profitable merging {a4,a5,a6} must survive the drop.
  bool found = false;
  for (const Candidate& c : lean_set.candidates) {
    if (c.arcs.size() == 3 && c.arcs[0].index() == 3 &&
        c.arcs[1].index() == 4 && c.arcs[2].index() == 5) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Generator, InfeasibleOnUnimplementableArc) {
  model::ConstraintGraph cg(geom::Norm::kEuclidean);
  const model::VertexId u = cg.add_port("u", {0, 0});
  const model::VertexId v = cg.add_port("v", {10, 0});
  cg.add_channel(u, v, 5.0);
  commlib::Library lib("weak");
  lib.add_link(commlib::Link{
      .name = "short", .max_span = 1.0, .bandwidth = 10.0, .fixed_cost = 1.0});
  // No repeater: 10-unit span unreachable.
  const auto result = generate_candidates(cg, lib, {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), support::ErrorCode::kInfeasible);
  EXPECT_NE(result.status().message().find("'a1'"), std::string::npos)
      << result.status().message();
}

}  // namespace
}  // namespace cdcs::synth
