#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "synth/merging_pricer.hpp"
#include "synth/ptp.hpp"

namespace cdcs::synth {
namespace {

using model::ArcId;
using model::CapacityPolicy;
using model::ConstraintGraph;
using model::VertexId;

TEST(Pricer, RejectsSingletons) {
  ConstraintGraph cg;
  const VertexId u = cg.add_port("u", {0, 0});
  const VertexId v = cg.add_port("v", {1, 0});
  cg.add_channel(u, v, 1.0);
  EXPECT_FALSE(
      price_merging(cg, commlib::wan_library(), {ArcId{0}}).has_value());
}

TEST(Pricer, ParallelArcsShareOneTrunk) {
  // Two 10 Mbps channels u -> v: merged they need 20 Mbps, which the 1 Gbps
  // optical carries on ONE link at $4000/km -- cheaper than two radios at
  // $2000/km each. No hub/split nodes needed (common source AND target).
  ConstraintGraph cg;
  const VertexId u = cg.add_port("u", {0, 0});
  const VertexId v = cg.add_port("v", {10, 0});
  cg.add_channel(u, v, 10.0, "c1");
  cg.add_channel(u, v, 10.0, "c2");
  const commlib::Library lib = commlib::wan_library();
  const auto plan = price_merging(cg, lib, {ArcId{0}, ArcId{1}});
  ASSERT_TRUE(plan.has_value());
  EXPECT_FALSE(plan->has_hub);
  EXPECT_FALSE(plan->has_split);
  EXPECT_DOUBLE_EQ(plan->trunk_bandwidth, 20.0);
  // At exactly 20 Mbps, one optical ($4000/km) ties two bundled radios
  // (2 x $2000/km with free junctions); either realization is optimal.
  EXPECT_DOUBLE_EQ(plan->cost, 10.0 * 4000.0);
  // A third channel breaks the tie: 3 radios ($6000/km) lose to optical.
  cg.add_channel(u, v, 10.0, "c3");
  const auto plan3 = price_merging(cg, lib, {ArcId{0}, ArcId{1}, ArcId{2}});
  ASSERT_TRUE(plan3.has_value());
  EXPECT_EQ(lib.link(plan3->trunk->link).name, "optical");
  EXPECT_DOUBLE_EQ(plan3->cost, 10.0 * 4000.0);
  EXPECT_LT(plan3->cost, 3 * 10.0 * 2000.0);
}

TEST(Pricer, CommonSourceStarUsesSplitOnly) {
  // The WAN winner {a4,a5,a6}: common source D, targets A/B/C. The plan
  // must anchor the trunk at D (no hub) and place a split near the cluster.
  ConstraintGraph cg;
  const VertexId d = cg.add_port("D", {-2, -97});
  const VertexId a = cg.add_port("A", {0, 0});
  const VertexId b = cg.add_port("B", {4, 3});
  const VertexId c = cg.add_port("C", {9, 1});
  cg.add_channel(d, a, 10.0, "a4");
  cg.add_channel(d, b, 10.0, "a5");
  cg.add_channel(d, c, 10.0, "a6");
  const commlib::Library lib = commlib::wan_library();
  const auto plan =
      price_merging(cg, lib, {ArcId{0}, ArcId{1}, ArcId{2}});
  ASSERT_TRUE(plan.has_value());
  EXPECT_FALSE(plan->has_hub);
  EXPECT_TRUE(plan->has_split);
  EXPECT_EQ(plan->hub_pos, (geom::Point2D{-2, -97}));
  EXPECT_EQ(lib.link(plan->trunk->link).name, "optical");  // 30 > 11 Mbps
  // Must beat three dedicated radios ($591,620).
  const double separate = 2000.0 * (cg.distance(ArcId{0}) +
                                    cg.distance(ArcId{1}) +
                                    cg.distance(ArcId{2}));
  EXPECT_LT(plan->cost, separate);
  // And the split lands inside the A/B/C cluster's neighborhood.
  EXPECT_GT(plan->split_pos.y, -15.0);
  EXPECT_LT(plan->split_pos.y, 10.0);
}

TEST(Pricer, CommonTargetMirrorsCommonSource) {
  ConstraintGraph cg;
  const VertexId a = cg.add_port("A", {0, 0});
  const VertexId b = cg.add_port("B", {4, 3});
  const VertexId d = cg.add_port("D", {-2, -97});
  cg.add_channel(a, d, 10.0);
  cg.add_channel(b, d, 10.0);
  const auto plan =
      price_merging(cg, commlib::wan_library(), {ArcId{0}, ArcId{1}});
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->has_hub);
  EXPECT_FALSE(plan->has_split);
  EXPECT_EQ(plan->split_pos, (geom::Point2D{-2, -97}));
}

TEST(Pricer, GeneralCaseHasHubAndSplit) {
  // THREE channels crossing a 100 km gap: separate radios cost $6000/km of
  // gap while a shared optical trunk costs $4000/km, so the optimum wants a
  // long trunk with the hub pulled toward the sources and the split toward
  // the targets. (With only two channels the trunk per-km rate ties the
  // separate radios and the objective is flat -- covered separately above.)
  ConstraintGraph cg;
  const VertexId u1 = cg.add_port("u1", {0, 0});
  const VertexId u2 = cg.add_port("u2", {0, 4});
  const VertexId u3 = cg.add_port("u3", {0, 8});
  const VertexId v1 = cg.add_port("v1", {100, 0});
  const VertexId v2 = cg.add_port("v2", {100, 4});
  const VertexId v3 = cg.add_port("v3", {100, 8});
  cg.add_channel(u1, v1, 10.0);
  cg.add_channel(u2, v2, 10.0);
  cg.add_channel(u3, v3, 10.0);
  const commlib::Library lib = commlib::wan_library();
  const auto plan = price_merging(cg, lib, {ArcId{0}, ArcId{1}, ArcId{2}});
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->has_hub);
  EXPECT_TRUE(plan->has_split);
  ASSERT_EQ(plan->ingress.size(), 3u);
  EXPECT_TRUE(plan->ingress[0].has_value());
  EXPECT_TRUE(plan->egress[2].has_value());
  EXPECT_EQ(lib.link(plan->trunk->link).name, "optical");
  // Hub near the sources, split near the targets.
  EXPECT_LT(plan->hub_pos.x, 25.0);
  EXPECT_GT(plan->split_pos.x, 75.0);
  // And the merged plan beats three dedicated radio links.
  const double separate = 2000.0 * (cg.distance(ArcId{0}) +
                                    cg.distance(ArcId{1}) +
                                    cg.distance(ArcId{2}));
  EXPECT_LT(plan->cost, separate);
}

TEST(Pricer, MaxPolicyKeepsTrunkOnRadio) {
  // Under the literal Def 2.8 capacity rule the trunk only needs
  // max(b) = 10 Mbps, so the radio suffices.
  ConstraintGraph cg;
  const VertexId d = cg.add_port("D", {0, 0});
  const VertexId a = cg.add_port("A", {50, 1});
  const VertexId b = cg.add_port("B", {50, -1});
  cg.add_channel(d, a, 10.0);
  cg.add_channel(d, b, 10.0);
  const commlib::Library lib = commlib::wan_library();
  const auto sum_plan = price_merging(cg, lib, {ArcId{0}, ArcId{1}},
                                      CapacityPolicy::kSharedSum);
  const auto max_plan = price_merging(cg, lib, {ArcId{0}, ArcId{1}},
                                      CapacityPolicy::kMaxPerConstraint);
  ASSERT_TRUE(sum_plan.has_value());
  ASSERT_TRUE(max_plan.has_value());
  EXPECT_DOUBLE_EQ(sum_plan->trunk_bandwidth, 20.0);
  EXPECT_DOUBLE_EQ(max_plan->trunk_bandwidth, 10.0);
  EXPECT_EQ(lib.link(max_plan->trunk->link).name, "radio");
  EXPECT_LT(max_plan->cost, sum_plan->cost);
}

TEST(Pricer, InfeasibleWithoutMuxCapableNode) {
  ConstraintGraph cg;
  const VertexId u1 = cg.add_port("u1", {0, 0});
  const VertexId u2 = cg.add_port("u2", {0, 4});
  const VertexId v = cg.add_port("v", {100, 0});
  cg.add_channel(u1, v, 1.0);
  cg.add_channel(u2, v, 1.0);
  commlib::Library lib("nonodes");
  lib.add_link(commlib::Link{
      .name = "l", .bandwidth = 10.0, .cost_per_length = 1.0});
  // Differing sources need a hub, but the library offers no node at all.
  EXPECT_FALSE(price_merging(cg, lib, {ArcId{0}, ArcId{1}}).has_value());
}

TEST(Pricer, ManhattanNormStarMerging) {
  // SoC-style: two wires from a common source heading the same way share
  // their trunk; with sum capacity of 2 > wire bandwidth 1 the trunk must
  // duplicate, so no repeater is saved -- merging costs at least as much as
  // separate segmentation plus mux/demux. The pricer must discover this.
  ConstraintGraph cg(geom::Norm::kManhattan);
  const VertexId s = cg.add_port("s", {0, 0});
  const VertexId t1 = cg.add_port("t1", {3.0, 0.1});
  const VertexId t2 = cg.add_port("t2", {3.0, -0.1});
  cg.add_channel(s, t1, 1.0);
  cg.add_channel(s, t2, 1.0);
  const commlib::Library lib = commlib::soc_library(0.6);
  const auto plan = price_merging(cg, lib, {ArcId{0}, ArcId{1}});
  ASSERT_TRUE(plan.has_value());
  const double separate =
      best_point_to_point_cost(cg.distance(ArcId{0}), 1.0, lib) +
      best_point_to_point_cost(cg.distance(ArcId{1}), 1.0, lib);
  EXPECT_GE(plan->cost, separate);
}

TEST(Pricer, ArcsGetCanonicalGeometryOrder) {
  // The plan lists arcs in canonical geometry-record order
  // (synth/canonical_order.hpp), independent of the ids or the order the
  // caller passes -- the invariant that keeps pricing a pure function of
  // geometry across renumbered graphs.
  ConstraintGraph cg;
  const VertexId u = cg.add_port("u", {0, 0});
  const VertexId v = cg.add_port("v", {10, 0});
  const VertexId w = cg.add_port("w", {0, 5});
  const VertexId x = cg.add_port("x", {10, 5});
  cg.add_channel(w, x, 10.0);  // ArcId 0: record starts (0, 5, ...)
  cg.add_channel(u, v, 10.0);  // ArcId 1: record starts (0, 0, ...)
  for (const auto& subset : {std::vector<ArcId>{ArcId{0}, ArcId{1}},
                             std::vector<ArcId>{ArcId{1}, ArcId{0}}}) {
    const auto plan = price_merging(cg, commlib::wan_library(), subset);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->arcs[0], ArcId{1});  // geometry sorts arc 1 first
    EXPECT_EQ(plan->arcs[1], ArcId{0});
  }
}

TEST(Pricer, GeometricallyIdenticalArcsKeepCallerOrder) {
  // Arcs with identical geometry records are indistinguishable to pricing;
  // the canonical sort is stable, so they stay in presentation order.
  ConstraintGraph cg;
  const VertexId u = cg.add_port("u", {0, 0});
  const VertexId v = cg.add_port("v", {10, 0});
  cg.add_channel(u, v, 10.0);
  cg.add_channel(u, v, 10.0);
  const auto plan =
      price_merging(cg, commlib::wan_library(), {ArcId{1}, ArcId{0}});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->arcs[0], ArcId{1});
  EXPECT_EQ(plan->arcs[1], ArcId{0});
}

}  // namespace
}  // namespace cdcs::synth
