#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "io/report.hpp"
#include "model/validator.hpp"
#include "synth/assemble.hpp"
#include "synth/candidate_generator.hpp"
#include "synth/synthesizer.hpp"

namespace cdcs::synth {
namespace {

using model::ArcId;
using model::ConstraintGraph;
using model::VertexId;

TEST(Assemble, SegmentationPlacesRepeatersEvenly) {
  ConstraintGraph cg(geom::Norm::kManhattan);
  const VertexId u = cg.add_port("u", {0, 0});
  const VertexId v = cg.add_port("v", {1.5, 0.3});  // 1.8 mm -> 3 wires
  cg.add_channel(u, v, 1.0);
  const commlib::Library lib = commlib::soc_library(0.6);
  const SynthesisResult result = synthesize(cg, lib).value();
  const auto& impl = *result.implementation;
  ASSERT_EQ(impl.num_comm_vertices(), 2u);  // 2 repeaters
  // Repeaters at 1/3 and 2/3 of the straight segment.
  const VertexId r1{2}, r2{3};
  EXPECT_TRUE(impl.is_communication(r1));
  EXPECT_NEAR(impl.position(r1).x, 0.5, 1e-9);
  EXPECT_NEAR(impl.position(r1).y, 0.1, 1e-9);
  EXPECT_NEAR(impl.position(r2).x, 1.0, 1e-9);
  // Each wire spans exactly 0.6 mm.
  for (std::size_t i = 0; i < impl.num_link_arcs(); ++i) {
    EXPECT_NEAR(impl.arc_span(ArcId{static_cast<std::uint32_t>(i)}), 0.6,
                1e-9);
  }
  // Path shape: one path with 3 arcs.
  const auto& paths = impl.arc_implementation(ArcId{0});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].arcs.size(), 3u);
  EXPECT_EQ(impl.classify(ArcId{0}), model::ImplKind::kSegmentation);
}

TEST(Assemble, DuplicationRegistersParallelPathsAndAccounting) {
  ConstraintGraph cg;
  const VertexId u = cg.add_port("u", {0, 0});
  const VertexId v = cg.add_port("v", {1.0, 0});
  cg.add_channel(u, v, 25.0);  // needs 3 radios or optical; make radios win
  commlib::Library lib("radios");
  lib.add_link(commlib::Link{
      .name = "radio", .bandwidth = 11.0, .cost_per_length = 2000.0});
  lib.add_node(commlib::Node{
      .name = "mux", .kind = commlib::NodeKind::kMux, .cost = 5.0});
  lib.add_node(commlib::Node{
      .name = "demux", .kind = commlib::NodeKind::kDemux, .cost = 5.0});
  const SynthesisResult result = synthesize(cg, lib).value();
  const auto& impl = *result.implementation;
  // 3 parallel links, plus mux+demux accounting vertices.
  EXPECT_EQ(impl.num_link_arcs(), 3u);
  EXPECT_EQ(impl.count_nodes(commlib::NodeKind::kMux), 1u);
  EXPECT_EQ(impl.count_nodes(commlib::NodeKind::kDemux), 1u);
  EXPECT_EQ(impl.arc_implementation(ArcId{0}).size(), 3u);
  EXPECT_EQ(impl.classify(ArcId{0}), model::ImplKind::kDuplication);
  // Def 2.5 cost: 3 links + both bundle nodes.
  EXPECT_NEAR(result.total_cost, 3 * 2000.0 + 10.0, 1e-6);
  EXPECT_TRUE(result.validation.ok());
}

TEST(Assemble, MergingSharesTrunkArcsAcrossConstraints) {
  // WAN star: a4/a5/a6 paths must share the identical trunk arc ids.
  ConstraintGraph cg;
  const VertexId d = cg.add_port("D", {-2, -97});
  const VertexId a = cg.add_port("A", {0, 0});
  const VertexId b = cg.add_port("B", {4, 3});
  const VertexId c = cg.add_port("C", {9, 1});
  cg.add_channel(d, a, 10.0);
  cg.add_channel(d, b, 10.0);
  cg.add_channel(d, c, 10.0);
  const SynthesisResult result = synthesize(cg, commlib::wan_library()).value();
  const auto& impl = *result.implementation;
  const auto& p0 = impl.arc_implementation(ArcId{0});
  const auto& p1 = impl.arc_implementation(ArcId{1});
  ASSERT_FALSE(p0.empty());
  ASSERT_FALSE(p1.empty());
  // First arc of each path is the shared trunk link out of chi(D).
  EXPECT_EQ(p0[0].arcs.front(), p1[0].arcs.front());
  // Trunk first, then the spoke: every path has exactly 2 arcs.
  EXPECT_EQ(p0[0].arcs.size(), 2u);
  EXPECT_TRUE(result.validation.ok());
}

TEST(Assemble, ThrowsWhenCoverIncomplete) {
  ConstraintGraph cg;
  const VertexId u = cg.add_port("u", {0, 0});
  const VertexId v = cg.add_port("v", {1, 0});
  cg.add_channel(u, v, 1.0);
  cg.add_channel(v, u, 1.0);
  const commlib::Library lib = commlib::wan_library();
  const CandidateSet set = generate_candidates(cg, lib, {}).value();
  // Select only the first singleton: arc 2 uncovered.
  EXPECT_THROW(assemble(cg, lib, set.candidates, {0}), std::invalid_argument);
}

TEST(Assemble, OverlappingCoverIsLegalIfWasteful) {
  ConstraintGraph cg;
  const VertexId u = cg.add_port("u", {0, 0});
  const VertexId v = cg.add_port("v", {10, 0});
  cg.add_channel(u, v, 10.0);
  cg.add_channel(u, v, 10.0);
  const commlib::Library lib = commlib::wan_library();
  const CandidateSet set = generate_candidates(cg, lib, {}).value();
  // Take both singletons AND the 2-way merging: arcs covered twice.
  std::vector<std::size_t> chosen;
  for (std::size_t i = 0; i < set.candidates.size(); ++i) chosen.push_back(i);
  const auto impl = assemble(cg, lib, set.candidates, chosen);
  const auto report = model::validate(*impl);
  EXPECT_TRUE(report.ok()) << (report.problems.empty()
                                   ? ""
                                   : report.problems.front());
  // Each arc has paths from its singleton and from the merging.
  EXPECT_GE(impl->arc_implementation(ArcId{0}).size(), 2u);
}

TEST(Report, DescribeCandidateMentionsStructure) {
  const ConstraintGraph cg = [] {
    ConstraintGraph g;
    const VertexId s = g.add_port("s", {0, 0});
    const VertexId t1 = g.add_port("t1", {10, 0});
    const VertexId t2 = g.add_port("t2", {20, 0});
    g.add_channel(s, t1, 15.0);
    g.add_channel(s, t2, 15.0);
    return g;
  }();
  const commlib::Library lib = commlib::wan_library();
  const SynthesisResult result = synthesize(cg, lib).value();
  const std::string report = io::describe(result, cg, lib);
  EXPECT_NE(report.find("Selected implementation"), std::string::npos);
  EXPECT_NE(report.find("Validation: PASS"), std::string::npos);
  // A chain or merge should be described with its structure keyword.
  const bool mentions_structure =
      report.find("chain-merge") != std::string::npos ||
      report.find("merge {") != std::string::npos ||
      report.find("point-to-point") != std::string::npos;
  EXPECT_TRUE(mentions_structure);
}

}  // namespace
}  // namespace cdcs::synth
