#include <gtest/gtest.h>

#include "baseline/baselines.hpp"
#include "commlib/standard_libraries.hpp"
#include "sim/delay.hpp"
#include "synth/plan_delay.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs::synth {
namespace {

using model::ArcId;
using model::ConstraintGraph;
using model::VertexId;

TEST(PlanDelay, PtpPlanMatchesClosedForm) {
  const commlib::Library lib = commlib::soc_library(0.6);
  const auto plan = best_point_to_point(2.0, 1.0, lib);  // 4 segments
  ASSERT_TRUE(plan.has_value());
  const sim::DelayModel m{.link_delay_per_length = 80.0, .node_delay = 30.0};
  EXPECT_NEAR(ptp_plan_delay(*plan, m), 80.0 * 2.0 + 30.0 * 3, 1e-9);
}

TEST(PlanDelay, MatchesMaterializedDelays) {
  // The plan-level figures must equal sim::analyze_delays on the built
  // graph -- star, chain and tree alike.
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  const SynthesisResult result = synthesize(cg, lib).value();
  const sim::DelayModel m{.link_delay_per_length = 5.0, .node_delay = 2.0};
  const sim::DelayReport report =
      sim::analyze_delays(*result.implementation, m);
  for (const Candidate* c : result.selected()) {
    double plan_worst = 0.0;
    if (c->ptp) {
      plan_worst = ptp_plan_delay(*c->ptp, m);
    } else if (c->merging) {
      plan_worst = worst_arc_delay(*c->merging, m);
    } else if (c->chain) {
      plan_worst = worst_arc_delay(*c->chain, m);
    } else if (c->tree) {
      plan_worst = worst_arc_delay(*c->tree, m);
    }
    double measured_worst = 0.0;
    for (const sim::ChannelDelay& cd : report.channels) {
      for (ArcId a : c->arcs) {
        if (cd.arc == a) {
          measured_worst = std::max(measured_worst, cd.worst_path_delay);
        }
      }
    }
    EXPECT_NEAR(plan_worst, measured_worst, 1e-6 * std::max(1.0, plan_worst));
  }
}

TEST(DelayBudget, PtpPicksFasterLinkUnderBudget) {
  // 2 mm at l_crit 0.6: the wire plan needs 3 repeaters. Give the library a
  // second, long-reach but pricey link: without a budget the cheap wire
  // wins; with a tight budget only the express link qualifies.
  commlib::Library lib("two-speed");
  lib.add_link(commlib::Link{.name = "wire",
                             .max_span = 0.6,
                             .bandwidth = 1.0,
                             .cost_per_length = 1.0});
  lib.add_link(commlib::Link{.name = "express",
                             .max_span = 5.0,
                             .bandwidth = 1.0,
                             .fixed_cost = 10.0,
                             .cost_per_length = 1.0});
  lib.add_node(commlib::Node{
      .name = "rep", .kind = commlib::NodeKind::kRepeater, .cost = 0.1});
  const auto cheap = best_point_to_point(2.0, 1.0, lib);
  ASSERT_TRUE(cheap.has_value());
  EXPECT_EQ(lib.link(cheap->link).name, "wire");

  const sim::DelayModel m{.link_delay_per_length = 1.0, .node_delay = 5.0};
  const DelayConstraint tight{&m, 3.0};  // wire: 2 + 3*5 = 17 > 3
  const auto fast = best_point_to_point(2.0, 1.0, lib, &tight);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(lib.link(fast->link).name, "express");
  EXPECT_EQ(fast->segments, 1);

  const DelayConstraint impossible{&m, 1.0};
  EXPECT_FALSE(best_point_to_point(2.0, 1.0, lib, &impossible).has_value());
}

TEST(DelayBudget, TightBudgetDissolvesTheWanMerging) {
  const ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  const sim::DelayModel m{.link_delay_per_length = 1.0, .node_delay = 0.5};

  // Generous budget: Figure 4's merging survives.
  SynthesisOptions loose;
  loose.delay_budget = {{m, 150.0}};
  const SynthesisResult merged = synthesize(cg, lib, loose).value();
  bool has_merging = false;
  for (const Candidate* c : merged.selected()) {
    if (!c->ptp) has_merging = true;
  }
  EXPECT_TRUE(has_merging);
  EXPECT_TRUE(merged.validation.ok());

  // Budget between the longest direct channel (a5: 100.18) and the cheapest
  // saving merging's worst channel (~100.7 through the split): every
  // cost-saving merged structure is filtered, so the optimum collapses to
  // the point-to-point cost. (Degenerate zero-detour mergings may still be
  // selected at cost ties; the cost and the delays are what the budget
  // guarantees.)
  SynthesisOptions tight;
  tight.delay_budget = {{m, 100.4}};
  const SynthesisResult direct = synthesize(cg, lib, tight).value();
  const baseline::BaselineResult ptp =
      baseline::point_to_point_baseline(cg, lib);
  EXPECT_NEAR(direct.total_cost, ptp.cost, 1e-6 * ptp.cost);
  EXPECT_GT(direct.total_cost, merged.total_cost);
  // The delay report confirms every channel meets the budget.
  const sim::DelayReport report =
      sim::analyze_delays(*direct.implementation, m);
  EXPECT_TRUE(report.violations(100.4 + 1e-9).empty());

  // A budget below the longest channel's direct line is unsatisfiable.
  SynthesisOptions impossible;
  impossible.delay_budget = {{m, 90.0}};
  const auto infeasible = synthesize(cg, lib, impossible);
  ASSERT_FALSE(infeasible.ok());
  EXPECT_EQ(infeasible.status().code(), support::ErrorCode::kInfeasible);
}

TEST(DelayBudget, BudgetNeverBreaksValidation) {
  const ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  const sim::DelayModel m{.link_delay_per_length = 1.0, .node_delay = 0.5};
  for (double budget : {102.0, 110.0, 130.0, 200.0}) {
    SynthesisOptions opts;
    opts.delay_budget = {{m, budget}};
    const SynthesisResult result = synthesize(cg, lib, opts).value();
    EXPECT_TRUE(result.validation.ok()) << "budget " << budget;
    const sim::DelayReport report =
        sim::analyze_delays(*result.implementation, m);
    EXPECT_TRUE(report.violations(budget + 1e-6).empty())
        << "budget " << budget;
  }
}

}  // namespace
}  // namespace cdcs::synth
