#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "io/impl_format.hpp"
#include "model/validator.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/mpeg4_soc.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs::io {
namespace {

void expect_equivalent(const model::ImplementationGraph& a,
                       const model::ImplementationGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_link_arcs(), b.num_link_arcs());
  EXPECT_NEAR(a.cost(), b.cost(), 1e-9 * std::max(1.0, a.cost()));
  for (std::size_t i = 0; i < a.num_vertices(); ++i) {
    const model::VertexId v{static_cast<std::uint32_t>(i)};
    ASSERT_EQ(a.is_communication(v), b.is_communication(v));
    if (a.is_communication(v)) {
      EXPECT_EQ(a.comm_vertex(v).node, b.comm_vertex(v).node);
      EXPECT_TRUE(geom::almost_equal(a.position(v), b.position(v), 1e-9));
    }
  }
  for (std::size_t i = 0; i < a.num_link_arcs(); ++i) {
    const model::ArcId arc{static_cast<std::uint32_t>(i)};
    EXPECT_EQ(a.arc_source(arc), b.arc_source(arc));
    EXPECT_EQ(a.arc_target(arc), b.arc_target(arc));
    EXPECT_EQ(a.link_arc(arc).link, b.link_arc(arc).link);
  }
  for (model::ArcId ca : a.constraints().arcs()) {
    const auto& pa = a.arc_implementation(ca);
    const auto& pb = b.arc_implementation(ca);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t q = 0; q < pa.size(); ++q) {
      EXPECT_EQ(pa[q].arcs, pb[q].arcs);
    }
  }
}

TEST(ImplFormat, RoundTripsWanSynthesis) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  const synth::SynthesisResult result = synth::synthesize(cg, lib).value();

  const std::string text = write_implementation(*result.implementation);
  const auto parsed = read_implementation_from_string(text, cg, lib).value();
  expect_equivalent(*result.implementation, *parsed);
  EXPECT_TRUE(model::validate(*parsed).ok());
}

TEST(ImplFormat, RoundTripsSocSegmentation) {
  const model::ConstraintGraph cg = workloads::mpeg4_soc();
  const commlib::Library lib = commlib::soc_library(0.6);
  const synth::SynthesisResult result = synth::synthesize(cg, lib).value();
  const std::string text = write_implementation(*result.implementation);
  const auto parsed = read_implementation_from_string(text, cg, lib).value();
  expect_equivalent(*result.implementation, *parsed);
  EXPECT_EQ(parsed->count_nodes(commlib::NodeKind::kRepeater), 55u);
}

TEST(ImplFormat, RoundTripsChainStructures) {
  // A collinear bus instance synthesizes to a daisy chain; its materialized
  // graph (drop junctions, shrinking trunk segments) must survive the
  // serialization round trip.
  model::ConstraintGraph cg;
  const model::VertexId s = cg.add_port("s", {0, 0});
  const model::VertexId t1 = cg.add_port("t1", {10, 0});
  const model::VertexId t2 = cg.add_port("t2", {20, 0});
  const model::VertexId t3 = cg.add_port("t3", {30, 0});
  cg.add_channel(s, t1, 15.0);
  cg.add_channel(s, t2, 15.0);
  cg.add_channel(s, t3, 15.0);
  const commlib::Library lib = commlib::wan_library();
  const synth::SynthesisResult result = synth::synthesize(cg, lib).value();
  const auto parsed = read_implementation_from_string(
      write_implementation(*result.implementation), cg, lib).value();
  expect_equivalent(*result.implementation, *parsed);
  EXPECT_TRUE(model::validate(*parsed).ok());
}

TEST(ImplFormat, RoundTripsTreeStructures) {
  model::ConstraintGraph cg(geom::Norm::kManhattan);
  const model::VertexId s = cg.add_port("s", {2, 0});
  const model::VertexId t1 = cg.add_port("t1", {0, 4});
  const model::VertexId t2 = cg.add_port("t2", {2, 6});
  const model::VertexId t3 = cg.add_port("t3", {4, 4});
  cg.add_channel(s, t1, 1.0);
  cg.add_channel(s, t2, 1.0);
  cg.add_channel(s, t3, 1.0);
  const commlib::Library lib = commlib::noc_library(/*l_crit_mm=*/0.7);
  const synth::SynthesisResult result = synth::synthesize(cg, lib).value();
  ASSERT_TRUE(result.validation.ok());
  const auto parsed = read_implementation_from_string(
      write_implementation(*result.implementation), cg, lib).value();
  expect_equivalent(*result.implementation, *parsed);
}

TEST(ImplFormat, RejectsCorruptedInputs) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();

  const auto rejects = [&](const std::string& text) {
    const auto result = read_implementation_from_string(text, cg, lib);
    ASSERT_FALSE(result.ok()) << text;
    EXPECT_EQ(result.status().code(), support::ErrorCode::kParseError)
        << result.status().to_string();
    EXPECT_FALSE(result.status().message().empty());
  };

  rejects("");  // missing header
  // Ports take indices 0..4, so the first comm vertex must be 5.
  EXPECT_TRUE(read_implementation_from_string(
                  "implementation\ncomm_vertex 5 junction 0 0\n", cg, lib)
                  .ok());
  rejects("implementation\ncomm_vertex 7 junction 0 0\n");  // skips ahead
  rejects("implementation\ncomm_vertex 5 gizmo 0 0\n");  // unknown node
  rejects("implementation\nlink_arc 0 0 99 radio\n");  // endpoint range
  rejects("implementation\nlink_arc 0 0 1 fishing-line\n");  // unknown link
  rejects("implementation\npath a1 0\n");  // path over nonexistent arc
  rejects("implementation\nlink_arc 0 0 1 radio\npath zz 0\n");  // channel
  // Path direction mismatch (a1 is 0->1).
  rejects("implementation\nlink_arc 0 1 0 radio\npath a1 0\n");
}

TEST(ImplFormat, HandRolledFileParses) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  // Implement a1 (A->B, vertices 0->1) with one radio link; leave others
  // unimplemented (read_implementation does not enforce completeness; the
  // validator does).
  const auto impl = read_implementation_from_string(
      "# hand-written\n"
      "implementation\n"
      "link_arc 0 0 1 radio\n"
      "path a1 0\n",
      cg, lib).value();
  EXPECT_EQ(impl->num_link_arcs(), 1u);
  EXPECT_EQ(impl->arc_implementation(model::ArcId{0}).size(), 1u);
  EXPECT_FALSE(model::validate(*impl).ok());  // 7 channels unimplemented
}

}  // namespace
}  // namespace cdcs::io
