// The incremental engine's contract (synth/engine.hpp): under the default
// WarmPolicy::kBitIdentical, Engine::apply() after ANY edit sequence is
// BIT-IDENTICAL to from-scratch synthesize() on the edited graph -- same
// candidates, same chosen cover, same cost, same degradation stage, same
// cover-solver node count -- at 1, 2, and 8 pricing threads. This file pins
// that oracle with 200 deterministic random edit scripts, plus unit tests
// for the model::Delta layer, the io edit-script parser, the checked-in
// data/edits/ corpus, and the opt-in WarmPolicy::kWarmStart mode (same
// proven-optimal cost, tie-breaks free).
#include <cstdint>
#include <fstream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "io/edit_script.hpp"
#include "io/text_format.hpp"
#include "model/delta.hpp"
#include "synth/engine.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/mpeg4_soc.hpp"
#include "workloads/noc_mesh.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs::synth {
namespace {

using support::ErrorCode;

/// Same exhaustive fingerprint test_parallel_determinism.cpp uses: full
/// precision, and `ucp_nodes` so "bit-identical" includes the cover
/// solver's search trajectory, not just its answer.
std::string fingerprint(const SynthesisResult& r) {
  std::ostringstream os;
  os.precision(17);
  for (const Candidate& c : r.candidates()) {
    os << '[';
    for (model::ArcId a : c.arcs) os << a.value << ',';
    os << "] cost=" << c.cost << " s=" << c.ptp.has_value()
       << c.merging.has_value() << c.chain.has_value() << c.tree.has_value()
       << '\n';
  }
  os << "chosen:";
  for (std::size_t j : r.cover.chosen) os << ' ' << j;
  os << "\ntotal=" << r.total_cost
     << "\nstage=" << to_string(r.degradation.stage)
     << "\nucp_nodes=" << r.cover.nodes_explored << '\n';
  return os.str();
}

std::optional<model::ArcId> arc_by_name(const model::ConstraintGraph& cg,
                                        std::string_view name) {
  for (std::size_t i = 0; i < cg.num_channels(); ++i) {
    const model::ArcId a{static_cast<std::uint32_t>(i)};
    if (cg.channel(a).name == name) return a;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// model::Delta unit tests
// ---------------------------------------------------------------------------

TEST(ModelDelta, SetBandwidthDirtiesExactlyThatArc) {
  model::ConstraintGraph cg = workloads::wan2002();
  const std::uint64_t rev0 = cg.revision();

  model::Delta d;
  d.ops.push_back(model::SetBandwidthOp{"a3", 25.0});
  const auto effect = model::apply_delta(cg, d);
  ASSERT_TRUE(effect.ok()) << effect.status().to_string();

  const auto a3 = arc_by_name(cg, "a3");
  ASSERT_TRUE(a3.has_value());
  EXPECT_EQ(cg.bandwidth(*a3), 25.0);
  ASSERT_EQ(effect->dirty_arcs.size(), 1u);
  EXPECT_EQ(effect->dirty_arcs[0], *a3);
  EXPECT_FALSE(effect->structure_changed);
  ASSERT_EQ(effect->arc_remap.size(), 8u);  // identity remap
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(effect->arc_remap[i].index(), i);
  }
  EXPECT_EQ(effect->revision_before, rev0);
  EXPECT_GT(effect->revision_after, rev0);
  EXPECT_EQ(effect->revision_after, cg.revision());
}

TEST(ModelDelta, MovePortDirtiesAllIncidentArcs) {
  model::ConstraintGraph cg = workloads::wan2002();
  model::Delta d;
  d.ops.push_back(model::MovePortOp{"D", {-1.0, -95.0}});
  const auto effect = model::apply_delta(cg, d);
  ASSERT_TRUE(effect.ok()) << effect.status().to_string();

  // D touches a4 (D->A), a5 (D->B), a6 (D->C), a7 (D->E), a8 (E->D).
  std::vector<std::string> dirty_names;
  for (model::ArcId a : effect->dirty_arcs) {
    dirty_names.push_back(cg.channel(a).name);
  }
  EXPECT_EQ(dirty_names,
            (std::vector<std::string>{"a4", "a5", "a6", "a7", "a8"}));
  EXPECT_FALSE(effect->structure_changed);
}

TEST(ModelDelta, RemoveArcRenumbersAndRemaps) {
  model::ConstraintGraph cg = workloads::wan2002();
  model::Delta d;
  d.ops.push_back(model::RemoveArcOp{"a2"});
  const auto effect = model::apply_delta(cg, d);
  ASSERT_TRUE(effect.ok()) << effect.status().to_string();

  EXPECT_TRUE(effect->structure_changed);
  EXPECT_EQ(cg.num_channels(), 7u);
  EXPECT_FALSE(arc_by_name(cg, "a2").has_value());
  // Survivors keep their names and relative order under dense renumbering.
  ASSERT_EQ(effect->arc_remap.size(), 8u);
  EXPECT_EQ(effect->arc_remap[0].index(), 0u);       // a1 stays
  EXPECT_FALSE(effect->arc_remap[1].valid());        // a2 removed
  for (std::size_t old = 2; old < 8; ++old) {        // a3..a8 shift down
    ASSERT_TRUE(effect->arc_remap[old].valid());
    EXPECT_EQ(effect->arc_remap[old].index(), old - 1);
  }
  EXPECT_EQ(cg.channel(model::ArcId{1}).name, "a3");
  // Removing a row does not dirty the survivors' pricing inputs.
  EXPECT_TRUE(effect->dirty_arcs.empty());
}

TEST(ModelDelta, AddPortAndArcMarksNewArcDirty) {
  model::ConstraintGraph cg = workloads::wan2002();
  model::Delta d;
  d.ops.push_back(model::AddPortOp{"F", {8.0, -2.0}});
  d.ops.push_back(model::AddArcOp{"f1", "D", "F", 10.0});
  const auto effect = model::apply_delta(cg, d);
  ASSERT_TRUE(effect.ok()) << effect.status().to_string();

  EXPECT_TRUE(effect->structure_changed);
  EXPECT_EQ(cg.num_ports(), 6u);
  EXPECT_EQ(cg.num_channels(), 9u);
  ASSERT_EQ(effect->dirty_arcs.size(), 1u);
  EXPECT_EQ(cg.channel(effect->dirty_arcs[0]).name, "f1");
}

TEST(ModelDelta, RejectedBatchIsAtomic) {
  model::ConstraintGraph cg = workloads::wan2002();
  const std::uint64_t rev0 = cg.revision();
  const auto a1 = arc_by_name(cg, "a1");
  ASSERT_TRUE(a1.has_value());
  const double bw0 = cg.bandwidth(*a1);

  model::Delta d;
  d.ops.push_back(model::SetBandwidthOp{"a1", 99.0});        // valid
  d.ops.push_back(model::SetBandwidthOp{"no-such", 5.0});    // invalid
  const auto effect = model::apply_delta(cg, d);
  ASSERT_FALSE(effect.ok());
  EXPECT_EQ(effect.status().code(), ErrorCode::kInvalidInput);
  // The diagnostic names the offending op, 1-based.
  EXPECT_NE(effect.status().to_string().find("delta op 2"), std::string::npos)
      << effect.status().to_string();

  // Nothing happened, including the valid first op.
  EXPECT_EQ(cg.bandwidth(*a1), bw0);
  EXPECT_EQ(cg.revision(), rev0);
  EXPECT_EQ(cg.num_channels(), 8u);
}

TEST(ModelDelta, RejectsNonFiniteAndNonPositiveValues) {
  model::ConstraintGraph cg = workloads::wan2002();
  {
    model::Delta d;
    d.ops.push_back(model::SetBandwidthOp{"a1", -5.0});
    EXPECT_EQ(model::apply_delta(cg, d).status().code(),
              ErrorCode::kInvalidInput);
  }
  {
    model::Delta d;
    d.ops.push_back(
        model::MovePortOp{"A", {std::numeric_limits<double>::quiet_NaN(), 0}});
    EXPECT_EQ(model::apply_delta(cg, d).status().code(),
              ErrorCode::kInvalidInput);
  }
  {
    model::Delta d;  // duplicate port name
    d.ops.push_back(model::AddPortOp{"A", {1.0, 1.0}});
    EXPECT_EQ(model::apply_delta(cg, d).status().code(),
              ErrorCode::kInvalidInput);
  }
}

// ---------------------------------------------------------------------------
// io edit-script parser
// ---------------------------------------------------------------------------

TEST(EditScriptParser, ParsesAllDirectivesAndBatches) {
  const std::string text =
      "# comment\n"
      "add-port F 8 -2\n"
      "add-arc f1 D F 10\n"
      "solve\n"
      "set-bandwidth a3 25   # trailing comment\n"
      "move-port B 5 4\n"
      "solve\n"
      "solve\n"            // bare solve: legal empty batch
      "remove-arc a2\n";   // trailing ops: implicit final batch
  const auto script = io::read_edit_script_from_string(text);
  ASSERT_TRUE(script.ok()) << script.status().to_string();
  ASSERT_EQ(script->batches.size(), 4u);
  EXPECT_EQ(script->batches[0].ops.size(), 2u);
  EXPECT_EQ(script->batches[1].ops.size(), 2u);
  EXPECT_TRUE(script->batches[2].empty());
  EXPECT_EQ(script->batches[3].ops.size(), 1u);
  EXPECT_EQ(script->total_ops(), 5u);
  EXPECT_EQ(model::op_kind(script->batches[0].ops[0]), "add-port");
  EXPECT_EQ(model::op_kind(script->batches[3].ops[0]), "remove-arc");
}

TEST(EditScriptParser, RoundTripsThroughWriter) {
  const std::string text =
      "add-port F 8 -2\n"
      "add-arc f1 D F 10\n"
      "solve\n"
      "set-bandwidth a3 25\n"
      "move-port B 5 4\n"
      "solve\n";
  const auto script = io::read_edit_script_from_string(text);
  ASSERT_TRUE(script.ok());
  const std::string canonical = io::write_edit_script(*script);
  const auto reparsed = io::read_edit_script_from_string(canonical);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().to_string();
  EXPECT_EQ(io::write_edit_script(*reparsed), canonical);  // fixed point
  ASSERT_EQ(reparsed->batches.size(), script->batches.size());
  EXPECT_EQ(reparsed->total_ops(), script->total_ops());
}

TEST(EditScriptParser, MalformedInputsAreLineNumberedParseErrors) {
  const struct {
    const char* text;
    const char* needle;
  } cases[] = {
      {"rename-arc a1 a9\n", "line 1"},           // unknown directive
      {"solve\nmove-port Z 3\n", "line 2"},       // wrong arity
      {"set-bandwidth a1 fast\n", "line 1"},      // not a number
      {"set-bandwidth a1 -5\n", "line 1"},        // non-positive
      {"set-bandwidth a1 1e999\n", "line 1"},     // overflows to inf
      {"add-port Z nan 0\n", "line 1"},           // non-finite coordinate
      {"add-arc x A\n", "line 1"},                // wrong arity
  };
  for (const auto& c : cases) {
    const auto script = io::read_edit_script_from_string(c.text);
    ASSERT_FALSE(script.ok()) << c.text;
    EXPECT_EQ(script.status().code(), ErrorCode::kParseError) << c.text;
    EXPECT_NE(script.status().to_string().find(c.needle), std::string::npos)
        << c.text << " -> " << script.status().to_string();
  }
}

// ---------------------------------------------------------------------------
// data/edits/ corpus
// ---------------------------------------------------------------------------

std::string corpus_path(const std::string& file) {
  return std::string(CDCS_SOURCE_DIR) + "/data/edits/" + file;
}

support::Expected<io::EditScript> read_corpus(const std::string& file) {
  std::ifstream in(corpus_path(file));
  EXPECT_TRUE(in.good()) << "missing corpus file " << corpus_path(file);
  return io::read_edit_script(in);
}

TEST(EditCorpus, WellFormedScriptsParse) {
  const auto wan = read_corpus("wan_single_arc.edits");
  ASSERT_TRUE(wan.ok()) << wan.status().to_string();
  EXPECT_EQ(wan->batches.size(), 6u);
  EXPECT_EQ(wan->total_ops(), 6u);  // single-op batches throughout

  const auto churn = read_corpus("wan_churn.edits");
  ASSERT_TRUE(churn.ok()) << churn.status().to_string();
  EXPECT_EQ(churn->batches.size(), 6u);
  EXPECT_TRUE(churn->batches[4].empty());  // the bare `solve`
  EXPECT_EQ(churn->total_ops(), 12u);

  const auto soc = read_corpus("soc_ports.edits");
  ASSERT_TRUE(soc.ok()) << soc.status().to_string();
  EXPECT_EQ(soc->batches.size(), 5u);
  EXPECT_EQ(soc->total_ops(), 9u);
}

TEST(EditCorpus, MalformedScriptsFailWithLineNumbers) {
  const struct {
    const char* file;
    const char* needle;
  } cases[] = {
      {"malformed_unknown_directive.edits", "line 5"},
      {"malformed_bad_number.edits", "line 4"},
      {"malformed_wrong_arity.edits", "line 3"},
  };
  for (const auto& c : cases) {
    const auto script = read_corpus(c.file);
    ASSERT_FALSE(script.ok()) << c.file;
    EXPECT_EQ(script.status().code(), ErrorCode::kParseError) << c.file;
    EXPECT_NE(script.status().to_string().find(c.needle), std::string::npos)
        << c.file << " -> " << script.status().to_string();
  }
}

/// Replays a corpus script through an Engine, cross-checking every batch
/// against from-scratch synthesis on the edited graph.
void replay_corpus_bit_identical(const std::string& file,
                                 model::ConstraintGraph base,
                                 const commlib::Library& lib) {
  const auto script = read_corpus(file);
  ASSERT_TRUE(script.ok()) << script.status().to_string();

  Engine engine(std::move(base), lib);
  const auto baseline = engine.resynthesize();
  ASSERT_TRUE(baseline.ok()) << baseline.status().to_string();

  for (std::size_t b = 0; b < script->batches.size(); ++b) {
    const auto warm = engine.apply(script->batches[b]);
    ASSERT_TRUE(warm.ok()) << file << " batch " << b + 1 << ": "
                           << warm.status().to_string();
    const auto cold = synthesize(engine.graph(), lib);
    ASSERT_TRUE(cold.ok()) << cold.status().to_string();
    EXPECT_EQ(fingerprint(*warm), fingerprint(*cold))
        << file << " batch " << b + 1;
  }
}

TEST(EditCorpus, WanSingleArcReplayIsBitIdentical) {
  replay_corpus_bit_identical("wan_single_arc.edits", workloads::wan2002(),
                              commlib::wan_library());
}

TEST(EditCorpus, WanChurnReplayIsBitIdentical) {
  replay_corpus_bit_identical("wan_churn.edits", workloads::wan2002(),
                              commlib::wan_library());
}

TEST(EditCorpus, SocPortsReplayIsBitIdentical) {
  // The SoC corpus addresses the names in data/mpeg4_soc.graph (which
  // differ from the workloads::mpeg4_soc() builder's), so replay against
  // the checked-in graph file like the CLI does.
  std::ifstream in(std::string(CDCS_SOURCE_DIR) + "/data/mpeg4_soc.graph");
  ASSERT_TRUE(in.good());
  auto cg = io::read_constraint_graph(in);
  ASSERT_TRUE(cg.ok()) << cg.status().to_string();
  replay_corpus_bit_identical("soc_ports.edits", std::move(*cg),
                              commlib::soc_library());
}

// ---------------------------------------------------------------------------
// Engine session behavior
// ---------------------------------------------------------------------------

TEST(EngineSession, EmptyApplyReusesCoverAndPricing) {
  Engine engine(workloads::wan2002(), commlib::wan_library());
  const auto first = engine.resynthesize();
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  const std::string want = fingerprint(*first);
  const auto after_first = engine.stats();
  EXPECT_EQ(after_first.applies, 1u);
  EXPECT_EQ(after_first.cover_solves, 1u);
  EXPECT_EQ(after_first.cover_reuses, 0u);
  EXPECT_GT(after_first.pricing_misses, 0u);

  const auto second = engine.resynthesize();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(fingerprint(*second), want);
  const auto after_second = engine.stats();
  EXPECT_EQ(after_second.applies, 2u);
  EXPECT_EQ(after_second.cover_solves, 1u);  // identical UCP: skipped
  EXPECT_EQ(after_second.cover_reuses, 1u);
  // Re-pricing the unchanged graph is served entirely from the cache.
  EXPECT_EQ(after_second.pricing_misses, after_first.pricing_misses);
  EXPECT_GT(after_second.pricing_hits, after_first.pricing_hits);
}

TEST(EngineSession, RevertedEditHitsCacheCompletely) {
  Engine engine(workloads::wan2002(), commlib::wan_library());
  const auto first = engine.resynthesize();
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  const std::string want = fingerprint(*first);

  model::Delta edit;
  edit.ops.push_back(model::SetBandwidthOp{"a3", 25.0});
  ASSERT_TRUE(engine.apply(edit).ok());
  const auto mid = engine.stats();

  model::Delta revert;
  revert.ops.push_back(model::SetBandwidthOp{"a3", 10.0});
  const auto back = engine.apply(revert);
  ASSERT_TRUE(back.ok());
  // Every subset was priced before under identical inputs: zero misses.
  EXPECT_EQ(engine.stats().pricing_misses, mid.pricing_misses);
  EXPECT_EQ(engine.stats().last_dirty_arcs, 1u);
  EXPECT_EQ(fingerprint(*back), want);
}

TEST(EngineSession, RejectedDeltaLeavesSessionUsable) {
  Engine engine(workloads::wan2002(), commlib::wan_library());
  ASSERT_TRUE(engine.resynthesize().ok());
  const auto before = engine.stats();

  model::Delta bad;
  bad.ops.push_back(model::SetBandwidthOp{"no-such-channel", 5.0});
  const auto rejected = engine.apply(bad);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), ErrorCode::kInvalidInput);
  EXPECT_EQ(engine.stats().applies, before.applies);
  EXPECT_EQ(engine.graph().num_channels(), 8u);

  model::Delta good;
  good.ops.push_back(model::SetBandwidthOp{"a1", 15.0});
  const auto after = engine.apply(good);
  ASSERT_TRUE(after.ok()) << after.status().to_string();
  const auto cold = synthesize(engine.graph(), commlib::wan_library());
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(fingerprint(*after), fingerprint(*cold));
}

TEST(EngineSession, SharedExternalCacheWarmsSecondSession) {
  PricingCache cache;
  SynthesisOptions options;
  options.pricing_cache = &cache;

  Engine first(workloads::wan2002(), commlib::wan_library(), options);
  const auto a = first.resynthesize();
  ASSERT_TRUE(a.ok());
  const auto misses_after_first = cache.stats().misses;
  EXPECT_GT(misses_after_first, 0u);

  Engine second(workloads::wan2002(), commlib::wan_library(), options);
  const auto b = second.resynthesize();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(cache.stats().misses, misses_after_first);  // all hits
  EXPECT_EQ(fingerprint(*b), fingerprint(*a));
}

// ---------------------------------------------------------------------------
// WarmPolicy::kWarmStart: same proven-optimal cost, tie-breaks free
// ---------------------------------------------------------------------------

TEST(EngineWarmStart, CostEqualAndOptimalAcrossEdits) {
  Engine warm(workloads::wan2002(), commlib::wan_library(), {},
              Engine::WarmPolicy::kWarmStart);
  ASSERT_TRUE(warm.resynthesize().ok());

  const char* script =
      "set-bandwidth a3 25\nsolve\n"
      "move-port B 5 4\nsolve\n"
      "add-port F 8 -2\nadd-arc f1 D F 10\nsolve\n"
      "remove-arc a2\nsolve\n"
      "set-bandwidth f1 20\nsolve\n";
  const auto batches = io::read_edit_script_from_string(script);
  ASSERT_TRUE(batches.ok());

  for (std::size_t b = 0; b < batches->batches.size(); ++b) {
    const auto w = warm.apply(batches->batches[b]);
    ASSERT_TRUE(w.ok()) << "batch " << b + 1 << ": "
                        << w.status().to_string();
    const auto cold = synthesize(warm.graph(), commlib::wan_library());
    ASSERT_TRUE(cold.ok());
    // Warm seeding may reorder the search, but on an exact run it must
    // land on the same optimal cost and prove it.
    EXPECT_EQ(w->degradation.stage, SynthesisStage::kExact) << "batch "
                                                            << b + 1;
    EXPECT_TRUE(w->cover.optimal) << "batch " << b + 1;
    EXPECT_DOUBLE_EQ(w->total_cost, cold->total_cost) << "batch " << b + 1;
  }
}

// ---------------------------------------------------------------------------
// The oracle: random edit scripts, every step cross-checked from scratch
// ---------------------------------------------------------------------------

/// Deterministic random edit generator. Ops are drawn against a shadow
/// graph that tracks the session state, so every generated batch is valid
/// by construction; the same seed always yields the same script.
class ScriptGen {
 public:
  explicit ScriptGen(std::uint32_t seed) : rng_(seed) {}

  model::Delta next_batch(model::ConstraintGraph& shadow, int max_ops) {
    model::Delta batch;
    const int n = 1 + static_cast<int>(rng_() % max_ops);
    for (int i = 0; i < n; ++i) {
      model::Delta one;
      one.ops.push_back(next_op(shadow));
      const auto effect = model::apply_delta(shadow, one);
      // Valid by construction; if generation drifts, fail loudly.
      EXPECT_TRUE(effect.ok()) << effect.status().to_string();
      batch.ops.push_back(std::move(one.ops.front()));
    }
    return batch;
  }

 private:
  model::EditOp next_op(const model::ConstraintGraph& shadow) {
    const std::size_t arcs = shadow.num_channels();
    const std::vector<model::VertexId> ports = shadow.ports();
    while (true) {
      switch (rng_() % 10) {
        case 0:
        case 1:
        case 2: {  // retune a channel
          const auto a = random_arc(shadow);
          return model::SetBandwidthOp{shadow.channel(a).name, random_bw()};
        }
        case 3:
        case 4:
        case 5: {  // nudge a module
          const model::VertexId v =
              ports[rng_() % ports.size()];
          const geom::Point2D p = shadow.port(v).position;
          return model::MovePortOp{shadow.port(v).name,
                                   {p.x + jitter(), p.y + jitter()}};
        }
        case 6:  // new module (traffic to it arrives via later add-arc)
          return model::AddPortOp{
              "np" + std::to_string(counter_++),
              {jitter() * 4.0, jitter() * 4.0}};
        case 7:
        case 8: {  // new traffic between existing modules
          const model::VertexId u = ports[rng_() % ports.size()];
          const model::VertexId v = ports[rng_() % ports.size()];
          if (u == v) continue;  // self-loops are invalid
          return model::AddArcOp{"ne" + std::to_string(counter_++),
                                 shadow.port(u).name, shadow.port(v).name,
                                 random_bw()};
        }
        case 9:  // drop a channel (keep the instance non-trivial)
          if (arcs <= 3) continue;
          return model::RemoveArcOp{shadow.channel(random_arc(shadow)).name};
      }
    }
  }

  model::ArcId random_arc(const model::ConstraintGraph& shadow) {
    return model::ArcId{
        static_cast<std::uint32_t>(rng_() % shadow.num_channels())};
  }
  double random_bw() { return 1.0 + static_cast<double>(rng_() % 390) / 10.0; }
  double jitter() { return (static_cast<double>(rng_() % 41) - 20.0) / 10.0; }

  std::mt19937 rng_;
  int counter_ = 0;
};

/// Generates `num_scripts` scripts of `num_batches` batches each and
/// replays every one through an Engine at each thread count, comparing
/// every step's fingerprint against from-scratch synthesis (with its own
/// cold pricing cache) on the engine's post-edit graph.
void run_random_oracle(const model::ConstraintGraph& base,
                       const commlib::Library& lib, int num_scripts,
                       int num_batches, std::uint32_t seed_base,
                       const std::vector<int>& thread_counts) {
  for (int s = 0; s < num_scripts; ++s) {
    // One script per seed, shared across all thread counts.
    ScriptGen gen(seed_base + static_cast<std::uint32_t>(s));
    model::ConstraintGraph shadow = base;
    std::vector<model::Delta> script;
    script.reserve(static_cast<std::size_t>(num_batches));
    for (int b = 0; b < num_batches; ++b) {
      script.push_back(gen.next_batch(shadow, 3));
    }

    for (int threads : thread_counts) {
      SynthesisOptions options;
      options.threads = threads;
      Engine engine(base, lib, options);
      const auto baseline = engine.resynthesize();
      ASSERT_TRUE(baseline.ok())
          << "seed " << seed_base + s << ": " << baseline.status().to_string();

      for (std::size_t b = 0; b < script.size(); ++b) {
        const auto warm = engine.apply(script[b]);
        ASSERT_TRUE(warm.ok()) << "seed " << seed_base + s << " batch "
                               << b + 1 << ": " << warm.status().to_string();

        SynthesisOptions cold_options;
        cold_options.threads = threads;
        const auto cold = synthesize(engine.graph(), lib, cold_options);
        ASSERT_TRUE(cold.ok()) << "seed " << seed_base + s << " batch "
                               << b + 1 << ": " << cold.status().to_string();
        ASSERT_EQ(fingerprint(*warm), fingerprint(*cold))
            << "seed " << seed_base + s << " batch " << b + 1 << " threads "
            << threads;
      }
    }
  }
}

// 200 scripts total across the three paper workloads, single-threaded.
TEST(IncrementalOracle, RandomEditScriptsWan) {
  run_random_oracle(workloads::wan2002(), commlib::wan_library(),
                    /*num_scripts=*/100, /*num_batches=*/3, 1000, {1});
}

TEST(IncrementalOracle, RandomEditScriptsSoc) {
  run_random_oracle(workloads::mpeg4_soc(), commlib::soc_library(),
                    /*num_scripts=*/60, /*num_batches=*/3, 2000, {1});
}

TEST(IncrementalOracle, RandomEditScriptsNoc) {
  workloads::NocMeshParams p;
  p.rows = 3;
  p.cols = 3;
  run_random_oracle(workloads::noc_mesh(p), commlib::noc_library(),
                    /*num_scripts=*/40, /*num_batches=*/2, 3000, {1});
}

// The same oracle at 1/2/8 pricing threads (fewer seeds: each script costs
// six engine replays plus six cold solves per batch). This is the TSan
// edit-fuzz surface: parallel pricing fed by incrementally edited graphs.
TEST(IncrementalOracle, RandomEditScriptsMultiThread) {
  run_random_oracle(workloads::wan2002(), commlib::wan_library(),
                    /*num_scripts=*/6, /*num_batches=*/3, 4000, {1, 2, 8});
  run_random_oracle(workloads::mpeg4_soc(), commlib::soc_library(),
                    /*num_scripts=*/4, /*num_batches=*/2, 5000, {1, 2, 8});
}

}  // namespace
}  // namespace cdcs::synth
