#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "model/validator.hpp"
#include "sim/flow.hpp"

namespace cdcs {
namespace {

using model::ArcId;
using model::CapacityPolicy;
using model::ConstraintGraph;
using model::ImplementationGraph;
using model::Path;
using model::VertexId;

struct Fixture {
  ConstraintGraph cg{geom::Norm::kEuclidean};
  commlib::Library lib = commlib::wan_library();
  commlib::LinkIndex radio = *lib.find_link("radio");
  commlib::LinkIndex optical = *lib.find_link("optical");
};

TEST(Validator, PassesSimpleMatching) {
  Fixture f;
  const VertexId u = f.cg.add_port("u", {0, 0});
  const VertexId v = f.cg.add_port("v", {3, 4});
  f.cg.add_channel(u, v, 10.0);
  ImplementationGraph impl(f.cg, f.lib);
  impl.register_path(ArcId{0}, Path{{impl.add_link_arc(u, v, f.radio)}});
  EXPECT_TRUE(model::validate(impl, CapacityPolicy::kSharedSum).ok());
  EXPECT_TRUE(model::validate(impl, CapacityPolicy::kMaxPerConstraint).ok());
}

TEST(Validator, FlagsMissingImplementation) {
  Fixture f;
  const VertexId u = f.cg.add_port("u", {0, 0});
  const VertexId v = f.cg.add_port("v", {3, 4});
  f.cg.add_channel(u, v, 10.0);
  const ImplementationGraph impl(f.cg, f.lib);
  const auto report = model::validate(impl);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.problems.front().find("no implementation"),
            std::string::npos);
}

TEST(Validator, FlagsInsufficientBandwidthUnderMaxPolicy) {
  Fixture f;
  const VertexId u = f.cg.add_port("u", {0, 0});
  const VertexId v = f.cg.add_port("v", {3, 4});
  f.cg.add_channel(u, v, 50.0);  // > 11 Mbps radio
  ImplementationGraph impl(f.cg, f.lib);
  impl.register_path(ArcId{0}, Path{{impl.add_link_arc(u, v, f.radio)}});
  EXPECT_FALSE(model::validate(impl, CapacityPolicy::kMaxPerConstraint).ok());
  EXPECT_FALSE(model::validate(impl, CapacityPolicy::kSharedSum).ok());
}

TEST(Validator, PolicyDifferenceOnSharedTrunk) {
  // Two 10 Mbps channels share one 11 Mbps radio trunk: legal under the
  // literal Def 2.4 (each constraint individually fits) but a 9 Mbps
  // oversubscription physically.
  Fixture f;
  const VertexId u = f.cg.add_port("u", {0, 0});
  const VertexId v = f.cg.add_port("v", {3, 4});
  f.cg.add_channel(u, v, 10.0, "c1");
  f.cg.add_channel(u, v, 10.0, "c2");
  ImplementationGraph impl(f.cg, f.lib);
  const ArcId trunk = impl.add_link_arc(u, v, f.radio);
  impl.register_path(ArcId{0}, Path{{trunk}});
  impl.register_path(ArcId{1}, Path{{trunk}});
  EXPECT_TRUE(model::validate(impl, CapacityPolicy::kMaxPerConstraint).ok());
  EXPECT_FALSE(model::validate(impl, CapacityPolicy::kSharedSum).ok());

  // An optical trunk carries both sums comfortably.
  ImplementationGraph impl2(f.cg, f.lib);
  const ArcId trunk2 = impl2.add_link_arc(u, v, f.optical);
  impl2.register_path(ArcId{0}, Path{{trunk2}});
  impl2.register_path(ArcId{1}, Path{{trunk2}});
  EXPECT_TRUE(model::validate(impl2, CapacityPolicy::kSharedSum).ok());
}

TEST(Flow, SplitsAcrossParallelPaths) {
  Fixture f;
  const VertexId u = f.cg.add_port("u", {0, 0});
  const VertexId v = f.cg.add_port("v", {3, 4});
  f.cg.add_channel(u, v, 20.0);  // needs two 11 Mbps radios
  ImplementationGraph impl(f.cg, f.lib);
  const ArcId l1 = impl.add_link_arc(u, v, f.radio);
  const ArcId l2 = impl.add_link_arc(u, v, f.radio);
  impl.register_path(ArcId{0}, Path{{l1}});
  impl.register_path(ArcId{0}, Path{{l2}});
  const sim::FlowAssignment flows = sim::assign_flows(impl);
  EXPECT_TRUE(flows.feasible());
  EXPECT_DOUBLE_EQ(flows.arc_load[0] + flows.arc_load[1], 20.0);
  EXPECT_LE(flows.arc_load[0], 11.0 + 1e-9);
  EXPECT_LE(flows.arc_load[1], 11.0 + 1e-9);
  EXPECT_TRUE(sim::capacity_violations(impl, flows).empty());
}

TEST(Flow, ReportsUnroutedDemand) {
  Fixture f;
  const VertexId u = f.cg.add_port("u", {0, 0});
  const VertexId v = f.cg.add_port("v", {3, 4});
  f.cg.add_channel(u, v, 25.0);
  ImplementationGraph impl(f.cg, f.lib);
  const ArcId l1 = impl.add_link_arc(u, v, f.radio);
  const ArcId l2 = impl.add_link_arc(u, v, f.radio);
  impl.register_path(ArcId{0}, Path{{l1}});
  impl.register_path(ArcId{0}, Path{{l2}});
  const sim::FlowAssignment flows = sim::assign_flows(impl);
  EXPECT_FALSE(flows.feasible());
  EXPECT_NEAR(flows.unrouted[0], 3.0, 1e-9);  // 25 - 2*11
  EXPECT_FALSE(sim::capacity_violations(impl, flows).empty());
}

TEST(Flow, SharedTrunkLoadsSum) {
  Fixture f;
  const VertexId u = f.cg.add_port("u", {0, 0});
  const VertexId v = f.cg.add_port("v", {3, 4});
  f.cg.add_channel(u, v, 10.0, "c1");
  f.cg.add_channel(u, v, 10.0, "c2");
  ImplementationGraph impl(f.cg, f.lib);
  const ArcId trunk = impl.add_link_arc(u, v, f.optical);
  impl.register_path(ArcId{0}, Path{{trunk}});
  impl.register_path(ArcId{1}, Path{{trunk}});
  const sim::FlowAssignment flows = sim::assign_flows(impl);
  EXPECT_TRUE(flows.feasible());
  EXPECT_DOUBLE_EQ(flows.arc_load[trunk.index()], 20.0);
}

TEST(Flow, EmptyGraphIsTriviallyFeasible) {
  Fixture f;
  const ImplementationGraph impl(f.cg, f.lib);
  const sim::FlowAssignment flows = sim::assign_flows(impl);
  EXPECT_TRUE(flows.feasible());
  EXPECT_TRUE(sim::capacity_violations(impl, flows).empty());
}

}  // namespace
}  // namespace cdcs
