#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "model/validator.hpp"
#include "sim/flow.hpp"

namespace cdcs {
namespace {

using model::ArcId;
using model::CapacityPolicy;
using model::ConstraintGraph;
using model::ImplementationGraph;
using model::Path;
using model::VertexId;

struct Fixture {
  ConstraintGraph cg{geom::Norm::kEuclidean};
  commlib::Library lib = commlib::wan_library();
  commlib::LinkIndex radio = *lib.find_link("radio");
  commlib::LinkIndex optical = *lib.find_link("optical");
};

TEST(Validator, PassesSimpleMatching) {
  Fixture f;
  const VertexId u = f.cg.add_port("u", {0, 0});
  const VertexId v = f.cg.add_port("v", {3, 4});
  f.cg.add_channel(u, v, 10.0);
  ImplementationGraph impl(f.cg, f.lib);
  impl.register_path(ArcId{0}, Path{{impl.add_link_arc(u, v, f.radio)}});
  EXPECT_TRUE(model::validate(impl, CapacityPolicy::kSharedSum).ok());
  EXPECT_TRUE(model::validate(impl, CapacityPolicy::kMaxPerConstraint).ok());
}

TEST(Validator, FlagsMissingImplementation) {
  Fixture f;
  const VertexId u = f.cg.add_port("u", {0, 0});
  const VertexId v = f.cg.add_port("v", {3, 4});
  f.cg.add_channel(u, v, 10.0);
  const ImplementationGraph impl(f.cg, f.lib);
  const auto report = model::validate(impl);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.problems.front().find("no implementation"),
            std::string::npos);
}

TEST(Validator, FlagsInsufficientBandwidthUnderMaxPolicy) {
  Fixture f;
  const VertexId u = f.cg.add_port("u", {0, 0});
  const VertexId v = f.cg.add_port("v", {3, 4});
  f.cg.add_channel(u, v, 50.0);  // > 11 Mbps radio
  ImplementationGraph impl(f.cg, f.lib);
  impl.register_path(ArcId{0}, Path{{impl.add_link_arc(u, v, f.radio)}});
  EXPECT_FALSE(model::validate(impl, CapacityPolicy::kMaxPerConstraint).ok());
  EXPECT_FALSE(model::validate(impl, CapacityPolicy::kSharedSum).ok());
}

TEST(Validator, PolicyDifferenceOnSharedTrunk) {
  // Two 10 Mbps channels share one 11 Mbps radio trunk: legal under the
  // literal Def 2.4 (each constraint individually fits) but a 9 Mbps
  // oversubscription physically.
  Fixture f;
  const VertexId u = f.cg.add_port("u", {0, 0});
  const VertexId v = f.cg.add_port("v", {3, 4});
  f.cg.add_channel(u, v, 10.0, "c1");
  f.cg.add_channel(u, v, 10.0, "c2");
  ImplementationGraph impl(f.cg, f.lib);
  const ArcId trunk = impl.add_link_arc(u, v, f.radio);
  impl.register_path(ArcId{0}, Path{{trunk}});
  impl.register_path(ArcId{1}, Path{{trunk}});
  EXPECT_TRUE(model::validate(impl, CapacityPolicy::kMaxPerConstraint).ok());
  EXPECT_FALSE(model::validate(impl, CapacityPolicy::kSharedSum).ok());

  // An optical trunk carries both sums comfortably.
  ImplementationGraph impl2(f.cg, f.lib);
  const ArcId trunk2 = impl2.add_link_arc(u, v, f.optical);
  impl2.register_path(ArcId{0}, Path{{trunk2}});
  impl2.register_path(ArcId{1}, Path{{trunk2}});
  EXPECT_TRUE(model::validate(impl2, CapacityPolicy::kSharedSum).ok());
}

TEST(Flow, SplitsAcrossParallelPaths) {
  Fixture f;
  const VertexId u = f.cg.add_port("u", {0, 0});
  const VertexId v = f.cg.add_port("v", {3, 4});
  f.cg.add_channel(u, v, 20.0);  // needs two 11 Mbps radios
  ImplementationGraph impl(f.cg, f.lib);
  const ArcId l1 = impl.add_link_arc(u, v, f.radio);
  const ArcId l2 = impl.add_link_arc(u, v, f.radio);
  impl.register_path(ArcId{0}, Path{{l1}});
  impl.register_path(ArcId{0}, Path{{l2}});
  const sim::FlowAssignment flows = sim::assign_flows(impl);
  EXPECT_TRUE(flows.feasible());
  EXPECT_DOUBLE_EQ(flows.arc_load[0] + flows.arc_load[1], 20.0);
  EXPECT_LE(flows.arc_load[0], 11.0 + 1e-9);
  EXPECT_LE(flows.arc_load[1], 11.0 + 1e-9);
  EXPECT_TRUE(sim::capacity_violations(impl, flows).empty());
}

TEST(Flow, ReportsUnroutedDemand) {
  Fixture f;
  const VertexId u = f.cg.add_port("u", {0, 0});
  const VertexId v = f.cg.add_port("v", {3, 4});
  f.cg.add_channel(u, v, 25.0);
  ImplementationGraph impl(f.cg, f.lib);
  const ArcId l1 = impl.add_link_arc(u, v, f.radio);
  const ArcId l2 = impl.add_link_arc(u, v, f.radio);
  impl.register_path(ArcId{0}, Path{{l1}});
  impl.register_path(ArcId{0}, Path{{l2}});
  const sim::FlowAssignment flows = sim::assign_flows(impl);
  EXPECT_FALSE(flows.feasible());
  EXPECT_NEAR(flows.unrouted[0], 3.0, 1e-9);  // 25 - 2*11
  EXPECT_FALSE(sim::capacity_violations(impl, flows).empty());
}

TEST(Flow, SharedTrunkLoadsSum) {
  Fixture f;
  const VertexId u = f.cg.add_port("u", {0, 0});
  const VertexId v = f.cg.add_port("v", {3, 4});
  f.cg.add_channel(u, v, 10.0, "c1");
  f.cg.add_channel(u, v, 10.0, "c2");
  ImplementationGraph impl(f.cg, f.lib);
  const ArcId trunk = impl.add_link_arc(u, v, f.optical);
  impl.register_path(ArcId{0}, Path{{trunk}});
  impl.register_path(ArcId{1}, Path{{trunk}});
  const sim::FlowAssignment flows = sim::assign_flows(impl);
  EXPECT_TRUE(flows.feasible());
  EXPECT_DOUBLE_EQ(flows.arc_load[trunk.index()], 20.0);
}

// The validator's diagnostics name the offending element and quantify the
// slack, so a failed run can be triaged from the message alone.

TEST(Validator, ShortfallMessageNamesArcAndSlack) {
  Fixture f;
  const VertexId u = f.cg.add_port("u", {0, 0});
  const VertexId v = f.cg.add_port("v", {3, 4});
  f.cg.add_channel(u, v, 50.0, "hungry");  // > 11 Mbps radio
  ImplementationGraph impl(f.cg, f.lib);
  impl.register_path(ArcId{0}, Path{{impl.add_link_arc(u, v, f.radio)}});
  const auto report =
      model::validate(impl, CapacityPolicy::kMaxPerConstraint);
  ASSERT_FALSE(report.ok());
  const std::string& msg = report.problems.front();
  EXPECT_NE(msg.find("'hungry'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("shortfall 39"), std::string::npos) << msg;
}

TEST(Flow, OverCapacityMessageNamesLinkAndExcess) {
  // assign_flows never overloads a link (it water-fills within residual
  // capacity), so exercise the overload diagnostic the way an external
  // simulator would: hand capacity_violations an assignment that pushed
  // both 10 Mbps demands onto the 11 Mbps radio trunk.
  Fixture f;
  const VertexId u = f.cg.add_port("u", {0, 0});
  const VertexId v = f.cg.add_port("v", {3, 4});
  f.cg.add_channel(u, v, 10.0, "c1");
  f.cg.add_channel(u, v, 10.0, "c2");
  ImplementationGraph impl(f.cg, f.lib);
  const ArcId trunk = impl.add_link_arc(u, v, f.radio);  // 11 Mbps capacity
  impl.register_path(ArcId{0}, Path{{trunk}});
  impl.register_path(ArcId{1}, Path{{trunk}});
  sim::FlowAssignment flows;
  flows.arc_load = {20.0};
  flows.unrouted = {0.0, 0.0};
  const auto problems = sim::capacity_violations(impl, flows);
  ASSERT_FALSE(problems.empty());
  bool found = false;
  for (const std::string& msg : problems) {
    if (msg.find("'radio'") != std::string::npos &&
        msg.find("excess 9") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << problems.front();
}

TEST(Flow, UnroutedMessageNamesArcAndDemand) {
  Fixture f;
  const VertexId u = f.cg.add_port("u", {0, 0});
  const VertexId v = f.cg.add_port("v", {3, 4});
  f.cg.add_channel(u, v, 25.0, "wide");
  ImplementationGraph impl(f.cg, f.lib);
  impl.register_path(ArcId{0}, Path{{impl.add_link_arc(u, v, f.radio)}});
  impl.register_path(ArcId{0}, Path{{impl.add_link_arc(u, v, f.radio)}});
  const sim::FlowAssignment flows = sim::assign_flows(impl);
  const auto problems = sim::capacity_violations(impl, flows);
  ASSERT_FALSE(problems.empty());
  bool found = false;
  for (const std::string& msg : problems) {
    if (msg.find("'wide'") != std::string::npos &&
        msg.find("3.000000 of its 25.000000") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << problems.front();
}

TEST(Flow, EmptyGraphIsTriviallyFeasible) {
  Fixture f;
  const ImplementationGraph impl(f.cg, f.lib);
  const sim::FlowAssignment flows = sim::assign_flows(impl);
  EXPECT_TRUE(flows.feasible());
  EXPECT_TRUE(sim::capacity_violations(impl, flows).empty());
}

}  // namespace
}  // namespace cdcs
