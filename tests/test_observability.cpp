// Tracing & metrics layer (docs/observability.md), three guarantees:
//
//   1. SCHEMA. The Chrome trace exporter always emits well-formed JSON with
//      per-thread balanced B/E pairs and per-thread monotonic timestamps --
//      even when the ring buffer truncated the stream or a failure left
//      spans open.
//   2. DETERMINISM. Instrumentation is write-only: a traced run is
//      bit-identical (candidates, cover, cost, UCP node counts) to an
//      untraced run on the seed workloads at 1/2/8 threads.
//   3. CONCURRENCY. Spans and metrics may be emitted from every pool worker
//      at once; the TraceConcurrency/MetricsConcurrency suites run under
//      TSan in CI.
#include <cctype>
#include <cstddef>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "json_checker.hpp"

#include "commlib/standard_libraries.hpp"
#include "io/edit_script.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"
#include "synth/engine.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/mpeg4_soc.hpp"
#include "workloads/noc_mesh.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs::support {
namespace {

// ---- Minimal JSON syntax checker ------------------------------------------
// Shared with test_obs_context.cpp; see json_checker.hpp.

using testsupport::JsonChecker;

/// Chrome-trace schema invariants over the EXPORTED event stream: balanced
/// B/E per thread with matching names, per-thread non-decreasing
/// timestamps, and only known phases. Checked on the pre-serialization
/// events (the exporter writes them in this order).
void expect_schema_valid(const std::vector<TraceEvent>& events) {
  std::vector<std::vector<const TraceEvent*>> open;
  std::vector<std::int64_t> last_ts;
  for (const TraceEvent& e : events) {
    if (e.thread_id >= open.size()) {
      open.resize(e.thread_id + 1);
      last_ts.resize(e.thread_id + 1, 0);
    }
    EXPECT_GE(e.timestamp_us, last_ts[e.thread_id])
        << "timestamps regress on thread " << e.thread_id;
    last_ts[e.thread_id] = e.timestamp_us;
    switch (e.phase) {
      case TraceEvent::Phase::kBegin:
        open[e.thread_id].push_back(&e);
        break;
      case TraceEvent::Phase::kEnd: {
        ASSERT_FALSE(open[e.thread_id].empty())
            << "unmatched E for '" << e.name << "' on thread " << e.thread_id;
        EXPECT_STREQ(open[e.thread_id].back()->name, e.name)
            << "E closes a different span than the innermost open B";
        open[e.thread_id].pop_back();
        break;
      }
      case TraceEvent::Phase::kCounter:
      case TraceEvent::Phase::kInstant:
        break;
    }
  }
}

std::string export_json(const TraceSink& sink) {
  std::ostringstream os;
  write_chrome_trace(os, sink);
  return os.str();
}

// ---- Trace unit tests ------------------------------------------------------

TEST(Trace, DisabledEmitsAreInert) {
  ASSERT_EQ(trace_sink(), nullptr);
  {
    Span s("noop", "test");
    trace_counter("noop", 1.0, "test");
    trace_instant("noop", "test");
  }
  EXPECT_FALSE(tracing_enabled());
}

TEST(Trace, SpanPairingAndNesting) {
  ScopedTraceSession session;
  {
    Span outer("outer", "test", "{\"k\":1}");
    { Span inner("inner", "test"); }
    trace_instant("mark", "test");
  }
  session.close();

  const std::vector<TraceEvent> events = session.sink().snapshot();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kBegin);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].args, "{\"k\":1}");
  EXPECT_EQ(events[1].phase, TraceEvent::Phase::kBegin);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[2].phase, TraceEvent::Phase::kEnd);
  EXPECT_STREQ(events[2].name, "inner");
  EXPECT_EQ(events[3].phase, TraceEvent::Phase::kInstant);
  EXPECT_EQ(events[4].phase, TraceEvent::Phase::kEnd);
  EXPECT_STREQ(events[4].name, "outer");
  // All from this thread, with monotonic timestamps.
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.thread_id, events[0].thread_id);
  }
  expect_schema_valid(events);
}

TEST(Trace, CounterCarriesValue) {
  ScopedTraceSession session;
  trace_counter("ucp.nodes", 1024.0, "ucp");
  session.close();
  const std::vector<TraceEvent> events = session.sink().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kCounter);
  EXPECT_DOUBLE_EQ(events[0].value, 1024.0);
}

TEST(Trace, RingOverwritesOldestAndCountsDrops) {
  TraceSink sink(16);  // minimum capacity
  install_trace_sink(&sink);
  for (int i = 0; i < 40; ++i) trace_instant("tick", "test");
  install_trace_sink(nullptr);

  EXPECT_EQ(sink.size(), 16u);
  EXPECT_EQ(sink.dropped(), 24u);
  const std::vector<TraceEvent> events = sink.snapshot();
  ASSERT_EQ(events.size(), 16u);
  // Oldest-first snapshot: timestamps never regress across the wrap seam.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].timestamp_us, events[i - 1].timestamp_us);
  }
}

TEST(Trace, TruncatedStreamExportsBalanced) {
  // A ring so small the outermost begins are overwritten: the exporter must
  // drop the orphaned ends and still emit valid JSON.
  TraceSink sink(16);
  install_trace_sink(&sink);
  {
    Span a("a", "test");
    Span b("b", "test");
    for (int i = 0; i < 20; ++i) Span leaf("leaf", "test");
  }
  install_trace_sink(nullptr);
  ASSERT_GT(sink.dropped(), 0u);

  std::ostringstream os;
  const std::size_t written = write_chrome_trace(os, sink);
  EXPECT_GT(written, 0u);
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

TEST(Trace, OpenSpansGetSyntheticEnds) {
  TraceSink sink;
  install_trace_sink(&sink);
  auto* leaked = new Span("never-closed", "test");  // deliberately left open
  trace_instant("mark", "test");
  install_trace_sink(nullptr);

  std::ostringstream os;
  // 1 B + 1 i recorded; the exporter adds the synthetic E.
  EXPECT_EQ(write_chrome_trace(os, sink), 3u);
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
  EXPECT_NE(os.str().find("\"ph\":\"E\""), std::string::npos);
  // The late destructor still records its real end against the captured
  // sink (which outlives it here); the export above already repaired.
  delete leaked;
}

TEST(Trace, ExportEscapesHostileNames) {
  TraceSink sink;
  install_trace_sink(&sink);
  trace_instant("quote\"back\\slash\nnewline\ttab", "cat\"egory");
  install_trace_sink(nullptr);
  EXPECT_TRUE(JsonChecker(export_json(sink)).valid()) << export_json(sink);
}

TEST(Trace, SpanEndsAgainstCapturedSink) {
  // The end event must reach the sink that saw the begin, even if the
  // global pointer changed mid-span -- otherwise a swap mid-pipeline would
  // strand an unbalanced B in the old sink.
  TraceSink first;
  install_trace_sink(&first);
  {
    Span s("crossing", "test");
    install_trace_sink(nullptr);  // swapped away mid-span
  }
  EXPECT_EQ(first.size(), 2u);
  expect_schema_valid(first.snapshot());
}

// ---- Golden schema check over a real synthesis run -------------------------

TEST(TraceSchema, GoldenSynthesisRun) {
  ScopedTraceSession session;
  synth::SynthesisOptions options;
  options.threads = 2;
  const auto result =
      synth::synthesize(workloads::wan2002(), commlib::wan_library(), options);
  session.close();
  ASSERT_TRUE(result.ok()) << result.status().to_string();

  const std::vector<TraceEvent> events = session.sink().snapshot();
  ASSERT_FALSE(events.empty());
  expect_schema_valid(events);

  // The pipeline's span taxonomy is a stable surface: every stage must
  // appear, from more than one thread (the pricing fan-out).
  std::set<std::string> names;
  std::set<std::uint32_t> tids;
  for (const TraceEvent& e : events) {
    names.insert(e.name);
    tids.insert(e.thread_id);
  }
  for (const char* expected :
       {"synthesize", "generate", "price.subset", "cover", "ladder",
        "assemble", "validate", "ucp.solve", "task"}) {
    EXPECT_TRUE(names.count(expected) == 1) << "missing span: " << expected;
  }
  EXPECT_GT(tids.size(), 1u) << "pool workers emitted no spans";

  const std::string json = export_json(session.sink());
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST(TraceSchema, FailedSessionStillExportsValidTrace) {
  // The corpus script parses cleanly, solves once, then fails apply() on an
  // unknown port. The trace captured up to the failure must export as a
  // well-formed (truncated) Chrome trace -- the CLI-level counterpart is
  // the example_failed_session_still_flushes_trace ctest.
  std::ifstream in(std::string(CDCS_SOURCE_DIR) +
                   "/data/edits/wan_fail_mid_session.edits");
  ASSERT_TRUE(in.good());
  const auto script = io::read_edit_script(in);
  ASSERT_TRUE(script.ok()) << script.status().to_string();
  ASSERT_EQ(script->batches.size(), 2u);

  ScopedTraceSession session;
  synth::Engine engine(workloads::wan2002(), commlib::wan_library());
  ASSERT_TRUE(engine.resynthesize().ok());
  ASSERT_TRUE(engine.apply(script->batches[0]).ok());
  const auto failed = engine.apply(script->batches[1]);
  session.close();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), ErrorCode::kInvalidInput);

  const std::string json = export_json(session.sink());
  EXPECT_TRUE(JsonChecker(json).valid());
  expect_schema_valid(session.sink().snapshot());
  EXPECT_NE(json.find("engine.apply"), std::string::npos);
}

// ---- Determinism: traced == untraced ---------------------------------------

std::string fingerprint(const synth::SynthesisResult& r) {
  std::ostringstream os;
  os.precision(17);
  for (const synth::Candidate& c : r.candidates()) {
    os << '[';
    for (model::ArcId a : c.arcs) os << a.value << ',';
    os << "] " << c.cost << '\n';
  }
  os << "chosen:";
  for (std::size_t j : r.cover.chosen) os << ' ' << j;
  os << " total=" << r.total_cost
     << " stage=" << to_string(r.degradation.stage)
     << " nodes=" << r.cover.nodes_explored;
  return os.str();
}

void expect_trace_invariant(const model::ConstraintGraph& cg,
                            const commlib::Library& lib) {
  for (int threads : {1, 2, 8}) {
    synth::SynthesisOptions options;
    options.threads = threads;

    const auto untraced = synth::synthesize(cg, lib, options);
    ASSERT_TRUE(untraced.ok()) << untraced.status().to_string();

    std::string traced_fp;
    {
      ScopedTraceSession session;
      set_timing_enabled(true);  // trace AND time: the maximal overhead path
      const auto traced = synth::synthesize(cg, lib, options);
      set_timing_enabled(false);
      ASSERT_TRUE(traced.ok()) << traced.status().to_string();
      traced_fp = fingerprint(*traced);
    }
    EXPECT_EQ(traced_fp, fingerprint(*untraced)) << "threads=" << threads;
  }
}

TEST(TraceDeterminism, Wan2002BitIdentical) {
  expect_trace_invariant(workloads::wan2002(), commlib::wan_library());
}

TEST(TraceDeterminism, Mpeg4SocBitIdentical) {
  expect_trace_invariant(workloads::mpeg4_soc(), commlib::soc_library());
}

TEST(TraceDeterminism, NocMeshBitIdentical) {
  workloads::NocMeshParams p;
  p.rows = 3;
  p.cols = 3;
  expect_trace_invariant(workloads::noc_mesh(p), commlib::noc_library());
}

// ---- Concurrency (TSan targets) --------------------------------------------

TEST(TraceConcurrency, SpansFromThreadPool) {
  ScopedTraceSession session;
  {
    ThreadPool pool(8);
    const std::vector<int> out =
        parallel_map_ordered(&pool, 256, [](std::size_t i) {
          Span span("work", "test");
          trace_counter("progress", static_cast<double>(i), "test");
          { Span inner("inner", "test"); }
          return static_cast<int>(i);
        });
    ASSERT_EQ(out.size(), 256u);
  }
  session.close();

  const std::vector<TraceEvent> events = session.sink().snapshot();
  // 256 tasks x (2 B + 2 E + 1 C) + the pool's own "task" spans; exact
  // interleaving is scheduler-dependent, the schema must hold regardless.
  EXPECT_GE(events.size(), 256u * 5u);
  EXPECT_TRUE(JsonChecker(export_json(session.sink())).valid());
}

TEST(TraceConcurrency, InstallUninstallRace) {
  // Emitters race a sink being uninstalled: no event may be lost from a
  // span whose begin was recorded (the Span captured the sink), and no
  // crash/TSan report may occur. The sink outlives the emitters by scope.
  TraceSink sink;
  install_trace_sink(&sink);
  std::vector<std::thread> emitters;
  emitters.reserve(4);
  for (int t = 0; t < 4; ++t) {
    emitters.emplace_back([] {
      for (int i = 0; i < 1000; ++i) {
        Span span("racing", "test");
        trace_instant("tick", "test");
      }
    });
  }
  std::thread flipper([&sink] {
    for (int i = 0; i < 500; ++i) {
      install_trace_sink(nullptr);
      install_trace_sink(&sink);
    }
  });
  for (std::thread& t : emitters) t.join();
  flipper.join();
  install_trace_sink(nullptr);
  expect_schema_valid(sink.snapshot());
}

TEST(MetricsConcurrency, ShardedCountersSum) {
  Counter counter;
  Histogram hist(Histogram::latency_us_bounds());
  Gauge gauge;
  {
    ThreadPool pool(8);
    parallel_map_ordered(&pool, 64, [&](std::size_t i) {
      for (int k = 0; k < 1000; ++k) counter.add(1);
      hist.observe(static_cast<double>(i));
      gauge.set_max(static_cast<double>(i));
      return 0;
    });
  }
  EXPECT_EQ(counter.value(), 64u * 1000u);
  EXPECT_EQ(hist.snapshot().count, 64u);
  EXPECT_DOUBLE_EQ(gauge.value(), 63.0);
}

// ---- Metrics unit tests ----------------------------------------------------

TEST(Metrics, CounterGaugeBasics) {
  Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set_max(1.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set_max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(Metrics, HistogramBucketsAndMean) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(10.0);   // bucket 1 (<= 10, boundary inclusive)
  h.observe(50.0);   // bucket 2
  h.observe(1e6);    // overflow bucket
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.buckets.size(), 4u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 10.0 + 50.0 + 1e6);
  EXPECT_DOUBLE_EQ(s.mean(), s.sum / 4.0);
}

TEST(Metrics, RegistryGetOrCreateIsStable) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x.count");
  Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("x.count"), 3u);
}

TEST(Metrics, SnapshotDeltaIsPerRunView) {
  MetricsRegistry registry;
  registry.counter("runs").add(5);
  registry.histogram("lat.us").observe(10.0);
  const MetricsSnapshot before = registry.snapshot();

  registry.counter("runs").add(2);
  registry.histogram("lat.us").observe(20.0);
  registry.counter("fresh").add(1);  // born after the baseline
  const MetricsSnapshot delta = registry.snapshot().delta_since(before);

  EXPECT_EQ(delta.counters.at("runs"), 2u);
  EXPECT_EQ(delta.counters.at("fresh"), 1u);
  EXPECT_EQ(delta.histograms.at("lat.us").count, 1u);
  EXPECT_DOUBLE_EQ(delta.histograms.at("lat.us").sum, 20.0);
}

TEST(Metrics, JsonExportIsValid) {
  MetricsRegistry registry;
  registry.counter("a.count").add(7);
  registry.gauge("b.depth").set(3.0);
  registry.histogram("c.us").observe(123.0);
  std::ostringstream os;
  write_metrics_json(os, registry.snapshot());
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
  EXPECT_NE(os.str().find("\"a.count\": 7"), std::string::npos) << os.str();
}

TEST(Metrics, ScopedTimerInertWithoutTimingOrTracing) {
  ASSERT_FALSE(timing_enabled());
  ASSERT_FALSE(tracing_enabled());
  Histogram h(Histogram::latency_us_bounds());
  { ScopedTimer t("inert", "test", &h); }
  EXPECT_EQ(h.snapshot().count, 0u);

  set_timing_enabled(true);
  { ScopedTimer t("timed", "test", &h); }
  set_timing_enabled(false);
  EXPECT_EQ(h.snapshot().count, 1u);
}

}  // namespace
}  // namespace cdcs::support
