// Structural invariants of the geometric partitioner (synth/partition.hpp):
// determinism, exact arc coverage, cluster-size and boundary-fraction caps,
// and the lossless-refinement guarantee that tight instances are never
// split. The synthesis-level contracts (exact fallback, stitched cost,
// thread-count determinism) live in test_partitioned_synth.cpp.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "synth/partition.hpp"
#include "workloads/scale_gen.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs::synth {
namespace {

PartitioningOptions enabled() {
  PartitioningOptions opts;
  opts.enabled = true;
  return opts;
}

/// Flattened (cluster -> arc list) view for equality comparisons.
std::vector<std::vector<std::uint32_t>> shape(const Partition& p) {
  std::vector<std::vector<std::uint32_t>> out;
  for (const Cluster& c : p.clusters) {
    std::vector<std::uint32_t> arcs;
    for (model::ArcId a : c.arcs) arcs.push_back(a.index());
    out.push_back(std::move(arcs));
  }
  return out;
}

TEST(Partition, EveryArcExactlyOnce) {
  const model::ConstraintGraph cg =
      workloads::geo_wan(workloads::GeoWanParams::sized(200, 9));
  const Partition p = partition_graph(cg, enabled());
  std::set<std::uint32_t> seen;
  for (const Cluster& c : p.clusters) {
    EXPECT_TRUE(std::is_sorted(c.arcs.begin(), c.arcs.end(),
                               [](model::ArcId a, model::ArcId b) {
                                 return a.index() < b.index();
                               }));
    for (model::ArcId a : c.arcs) {
      EXPECT_TRUE(seen.insert(a.index()).second)
          << "arc " << a.index() << " in two clusters";
    }
  }
  EXPECT_EQ(seen.size(), cg.num_channels());
}

TEST(Partition, DeterministicAcrossCalls) {
  const model::ConstraintGraph cg =
      workloads::geo_wan(workloads::GeoWanParams::sized(300, 4));
  const Partition a = partition_graph(cg, enabled());
  const Partition b = partition_graph(cg, enabled());
  EXPECT_EQ(shape(a), shape(b));
  EXPECT_EQ(a.num_interior, b.num_interior);
  ASSERT_EQ(a.boundary_arcs.size(), b.boundary_arcs.size());
  for (std::size_t i = 0; i < a.boundary_arcs.size(); ++i) {
    EXPECT_EQ(a.boundary_arcs[i].index(), b.boundary_arcs[i].index());
  }
}

TEST(Partition, RespectsClusterSizeCap) {
  PartitioningOptions opts = enabled();
  opts.max_cluster_arcs = 10;
  const model::ConstraintGraph cg =
      workloads::geo_wan(workloads::GeoWanParams::sized(250, 2));
  const Partition p = partition_graph(cg, opts);
  for (const Cluster& c : p.clusters) {
    EXPECT_LE(c.arcs.size(), opts.max_cluster_arcs);
    EXPECT_FALSE(c.arcs.empty());
  }
}

TEST(Partition, BoundaryFractionCapped) {
  const model::ConstraintGraph cg =
      workloads::geo_wan(workloads::GeoWanParams::sized(400, 13));
  PartitioningOptions opts = enabled();
  const Partition p = partition_graph(cg, opts);
  EXPECT_LE(static_cast<double>(p.boundary_arcs.size()),
            opts.max_boundary_fraction *
                static_cast<double>(cg.num_channels()));
  // Repair groups trail the interior clusters and carry exactly the
  // boundary arcs.
  std::size_t repair_arcs = 0;
  for (std::size_t i = 0; i < p.clusters.size(); ++i) {
    EXPECT_EQ(p.clusters[i].repair, i >= p.num_interior);
    if (p.clusters[i].repair) repair_arcs += p.clusters[i].arcs.size();
  }
  EXPECT_EQ(repair_arcs, p.boundary_arcs.size());
}

TEST(Partition, ZeroBoundaryFractionDisablesExtraction) {
  PartitioningOptions opts = enabled();
  opts.max_boundary_fraction = 0.0;
  const model::ConstraintGraph cg =
      workloads::geo_wan(workloads::GeoWanParams::sized(200, 9));
  const Partition p = partition_graph(cg, opts);
  EXPECT_TRUE(p.boundary_arcs.empty());
  EXPECT_EQ(p.num_interior, p.clusters.size());
}

TEST(Partition, TightInstanceStaysWhole) {
  // wan2002's 8 arcs fit one leaf and are geometrically entangled: the
  // lossless refinement must not split what the mergeability geometry
  // cannot prove separate.
  const model::ConstraintGraph cg = workloads::wan2002();
  const Partition p = partition_graph(cg, enabled());
  ASSERT_EQ(p.clusters.size(), 1u);
  EXPECT_EQ(p.clusters[0].arcs.size(), cg.num_channels());
  EXPECT_TRUE(p.boundary_arcs.empty());
}

TEST(Partition, ArclessGraphYieldsNoClusters) {
  model::ConstraintGraph cg(geom::Norm::kEuclidean);
  cg.add_port("a", {0.0, 0.0});
  cg.add_port("b", {1.0, 0.0});
  const Partition p = partition_graph(cg, enabled());
  EXPECT_TRUE(p.clusters.empty());
  EXPECT_TRUE(p.boundary_arcs.empty());
}

TEST(Partition, FarApartSitesSeparate) {
  // Two 2-arc bundles 1000 apart with arc lengths ~1: the midpoint
  // separation test proves every cross pair unmergeable, so the partition
  // must produce (at least) two clusters and no boundary arcs.
  model::ConstraintGraph cg(geom::Norm::kEuclidean);
  const auto a0 = cg.add_port("a0", {0.0, 0.0});
  const auto a1 = cg.add_port("a1", {1.0, 0.0});
  const auto b0 = cg.add_port("b0", {1000.0, 0.0});
  const auto b1 = cg.add_port("b1", {1001.0, 0.0});
  cg.add_channel(a0, a1, 1.0);
  cg.add_channel(a1, a0, 1.0);
  cg.add_channel(b0, b1, 1.0);
  cg.add_channel(b1, b0, 1.0);
  PartitioningOptions opts = enabled();
  opts.max_cluster_arcs = 2;
  const Partition p = partition_graph(cg, opts);
  EXPECT_EQ(p.clusters.size(), 2u);
  EXPECT_TRUE(p.boundary_arcs.empty());
  for (const Cluster& c : p.clusters) EXPECT_EQ(c.arcs.size(), 2u);
}

}  // namespace
}  // namespace cdcs::synth
