// The anytime degradation ladder, rung by rung:
//
//   exact -> incumbent -> greedy -> point-to-point
//
// Each transition is forced deterministically -- a FaultPlan rule on the
// rung's fault site (support/fault.hpp), or a check-counted Deadline, never
// wall-clock races -- on the paper's WAN
// instance, and every rung must still hand back a validator-passing
// implementation with an honest DegradationReport: the stage, a
// human-readable reason, the root lower bound, and the optimality gap.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/baselines.hpp"
#include "commlib/standard_libraries.hpp"
#include "support/fault.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs {
namespace {

using support::Deadline;
using support::FaultInjector;
using support::FaultPlan;
using synth::SynthesisOptions;
using synth::SynthesisResult;
using synth::SynthesisStage;

struct Wan {
  model::ConstraintGraph cg = workloads::wan2002();
  commlib::Library lib = commlib::wan_library();
};

/// Arms `opts` with a parsed --fault-plan style spec (the scriptable way
/// to reach each ladder rung; the legacy bools are pinned separately in
/// LegacyBoolsStillDriveTheLadder).
void arm(SynthesisOptions& opts, const std::string& spec) {
  opts.fault_injection.injector =
      std::make_shared<FaultInjector>(FaultPlan::parse(spec).value());
}

double exact_cost(const Wan& w) {
  static const double cost =
      synth::synthesize(w.cg, w.lib).value().total_cost;
  return cost;
}

TEST(Degradation, UnlimitedRunIsExactWithZeroGap) {
  Wan w;
  const SynthesisResult result = synth::synthesize(w.cg, w.lib).value();
  EXPECT_EQ(result.degradation.stage, SynthesisStage::kExact);
  EXPECT_FALSE(result.degradation.degraded());
  EXPECT_TRUE(result.degradation.reason.empty());
  EXPECT_DOUBLE_EQ(result.degradation.optimality_gap, 0.0);
  // For an exact run the lower bound IS the achieved cover cost.
  EXPECT_NEAR(result.degradation.lower_bound, result.cover.cost, 1e-9);
  EXPECT_TRUE(result.validation.ok());
}

TEST(Degradation, ExpiredSolverDeadlineFallsToIncumbent) {
  Wan w;
  SynthesisOptions opts;
  arm(opts, "ucp.solve@1");
  const SynthesisResult result =
      synth::synthesize(w.cg, w.lib, opts).value();
  EXPECT_EQ(result.degradation.stage, SynthesisStage::kIncumbent);
  EXPECT_TRUE(result.degradation.degraded());
  EXPECT_NE(result.degradation.reason.find("deadline"), std::string::npos)
      << result.degradation.reason;
  EXPECT_TRUE(result.cover.deadline_expired);
  // Still a valid implementation, at most as good as the exact optimum,
  // with a bound-relative gap the caller can act on.
  EXPECT_TRUE(result.validation.ok());
  EXPECT_GE(result.total_cost, exact_cost(w) - 1e-6);
  EXPECT_GT(result.degradation.lower_bound, 0.0);
  EXPECT_GE(result.cover.cost, result.degradation.lower_bound - 1e-9);
  EXPECT_GE(result.degradation.optimality_gap, 0.0);
}

TEST(Degradation, ZeroMsDeadlineStillReturnsValidCover) {
  // The acceptance scenario: a deadline that has already expired when
  // synthesis starts. Singletons are never deadline-gated, so a valid
  // (if degraded) cover must come back -- never an error.
  Wan w;
  SynthesisOptions opts;
  opts.deadline = Deadline::after_ms(0.0);
  const auto synthesis = synth::synthesize(w.cg, w.lib, opts);
  ASSERT_TRUE(synthesis.ok()) << synthesis.status().to_string();
  const SynthesisResult& result = *synthesis;
  EXPECT_NE(result.degradation.stage, SynthesisStage::kExact);
  EXPECT_TRUE(result.candidate_set.stats.deadline_expired);
  EXPECT_TRUE(result.validation.ok());
  EXPECT_FALSE(result.degradation.reason.empty());
  EXPECT_GE(result.total_cost, exact_cost(w) - 1e-6);
  EXPECT_GE(result.degradation.optimality_gap, 0.0);
}

TEST(Degradation, CheckCountedDeadlineIsDeterministic) {
  // expire_after_checks(0) latches on the very first poll, wherever that
  // happens to be -- the whole pipeline then sees an expired deadline.
  Wan w;
  SynthesisOptions opts;
  opts.deadline = Deadline::expire_after_checks(0);
  const SynthesisResult result =
      synth::synthesize(w.cg, w.lib, opts).value();
  EXPECT_TRUE(result.degradation.degraded());
  EXPECT_TRUE(result.validation.ok());
}

TEST(Degradation, DroppedIncumbentFallsToGreedy) {
  Wan w;
  SynthesisOptions opts;
  arm(opts, "ucp.incumbent@1");
  const SynthesisResult result =
      synth::synthesize(w.cg, w.lib, opts).value();
  EXPECT_EQ(result.degradation.stage, SynthesisStage::kGreedy);
  EXPECT_NE(result.degradation.reason.find("greedy"), std::string::npos)
      << result.degradation.reason;
  EXPECT_TRUE(result.validation.ok());
  EXPECT_GE(result.total_cost, exact_cost(w) - 1e-6);
  EXPECT_GE(result.degradation.optimality_gap, 0.0);
}

TEST(Degradation, LastRungIsPointToPoint) {
  Wan w;
  SynthesisOptions opts;
  arm(opts, "ucp.incumbent@1;ucp.greedy@1");
  const SynthesisResult result =
      synth::synthesize(w.cg, w.lib, opts).value();
  EXPECT_EQ(result.degradation.stage, SynthesisStage::kPointToPoint);
  EXPECT_TRUE(result.validation.ok());

  // The cover is exactly the per-arc singletons: candidate i covers arc i.
  ASSERT_EQ(result.cover.chosen.size(), w.cg.num_channels());
  for (std::size_t i = 0; i < result.cover.chosen.size(); ++i) {
    EXPECT_EQ(result.cover.chosen[i], i);
    EXPECT_TRUE(result.candidates()[i].ptp.has_value());
  }
  // ...and therefore costs what the point-to-point baseline costs. On this
  // instance merging saves real money, so the reported gap must be > 0.
  const baseline::BaselineResult ptp =
      baseline::point_to_point_baseline(w.cg, w.lib);
  EXPECT_NEAR(result.total_cost, ptp.cost, 1e-6 * ptp.cost);
  EXPECT_GT(result.total_cost, exact_cost(w) + 1e-6);
  EXPECT_GT(result.degradation.optimality_gap, 0.0);
}

TEST(Degradation, FailedPricersLeaveOnlySingletons) {
  Wan w;
  SynthesisOptions opts;
  arm(opts, "pricer.merge%1");  // every merged-subset pricing attempt
  const SynthesisResult result =
      synth::synthesize(w.cg, w.lib, opts).value();
  // Generation yields only the |A| point-to-point columns; the solver then
  // proves the singleton cover optimal over that (crippled) candidate set.
  EXPECT_EQ(result.candidates().size(), w.cg.num_channels());
  const baseline::BaselineResult ptp =
      baseline::point_to_point_baseline(w.cg, w.lib);
  EXPECT_NEAR(result.total_cost, ptp.cost, 1e-6 * ptp.cost);
  EXPECT_TRUE(result.validation.ok());
}

TEST(Degradation, LegacyBoolsStillDriveTheLadder) {
  // The pre-FaultPlan switches are shims over the same sites (see
  // synth/options.hpp) and must keep forcing their rungs.
  Wan w;
  {
    SynthesisOptions opts;
    opts.fault_injection.expire_solver_deadline = true;
    const SynthesisResult result =
        synth::synthesize(w.cg, w.lib, opts).value();
    EXPECT_EQ(result.degradation.stage, SynthesisStage::kIncumbent);
    EXPECT_TRUE(result.validation.ok());
  }
  {
    SynthesisOptions opts;
    opts.fault_injection.drop_incumbent = true;
    opts.fault_injection.fail_greedy_cover = true;
    const SynthesisResult result =
        synth::synthesize(w.cg, w.lib, opts).value();
    EXPECT_EQ(result.degradation.stage, SynthesisStage::kPointToPoint);
    EXPECT_TRUE(result.validation.ok());
  }
}

TEST(Degradation, DegradedCostNeverBeatsTheReportedLowerBound) {
  Wan w;
  for (const long checks : {0L, 1L, 5L, 25L, 100L}) {
    SynthesisOptions opts;
    opts.deadline = Deadline::expire_after_checks(checks);
    const SynthesisResult result =
        synth::synthesize(w.cg, w.lib, opts).value();
    EXPECT_TRUE(result.validation.ok()) << "checks=" << checks;
    EXPECT_GE(result.cover.cost,
              result.degradation.lower_bound - 1e-9)
        << "checks=" << checks;
    if (result.degradation.degraded()) {
      EXPECT_FALSE(result.degradation.reason.empty());
    } else {
      EXPECT_DOUBLE_EQ(result.degradation.optimality_gap, 0.0);
    }
  }
}

}  // namespace
}  // namespace cdcs
