// Synthesis-level contracts of hierarchical partitioned synthesis
// (synth/partitioned_synthesizer.hpp):
//
//   * exact fallback -- with partitioning enabled, instances at or below
//     the arc threshold take the unmodified exact pipeline, bit-identical
//     to a run with partitioning off (the whole pinned seed corpus);
//   * forced partitioned runs produce valid implementations, an honest
//     summed lower bound, and stay within the 10% optimality-gap
//     acceptance bound of the true exact optimum on small instances;
//   * PartitionedDeterminism -- the stitched result is bit-identical at
//     1, 2, and 8 worker threads (this suite also runs under TSan in CI).
#include <cmath>

#include <gtest/gtest.h>

#include "baseline/baselines.hpp"
#include "commlib/standard_libraries.hpp"
#include "synth/partitioned_synthesizer.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/lan.hpp"
#include "workloads/mcm.hpp"
#include "workloads/mpeg4_soc.hpp"
#include "workloads/scale_gen.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs::synth {
namespace {

void expect_bit_identical(const SynthesisResult& a, const SynthesisResult& b,
                          const char* what) {
  EXPECT_EQ(a.total_cost, b.total_cost) << what;
  EXPECT_EQ(a.cover.cost, b.cover.cost) << what;
  EXPECT_EQ(a.cover.chosen, b.cover.chosen) << what;
  EXPECT_EQ(a.cover.nodes_explored, b.cover.nodes_explored) << what;
  ASSERT_EQ(a.candidates().size(), b.candidates().size()) << what;
  for (std::size_t i = 0; i < a.candidates().size(); ++i) {
    EXPECT_EQ(a.candidates()[i].cost, b.candidates()[i].cost)
        << what << " candidate " << i;
  }
}

TEST(PartitionedSynth, BelowThresholdIsExactPath) {
  // Every pinned seed-corpus instance sits far below the default 64-arc
  // threshold: enabling partitioning must not change one bit of the
  // result (cost, chosen columns, node counts, candidate costs).
  const struct {
    const char* name;
    model::ConstraintGraph cg;
    commlib::Library lib;
  } corpus[] = {
      {"wan2002", workloads::wan2002(), commlib::wan_library()},
      {"mpeg4_soc", workloads::mpeg4_soc(), commlib::soc_library()},
      {"campus_lan", workloads::campus_lan(), commlib::lan_library()},
      {"mcm_board", workloads::mcm_board(), commlib::mcm_library()},
  };
  for (const auto& entry : corpus) {
    ASSERT_FALSE(
        partitioning_applies(entry.cg, [] {
          SynthesisOptions o;
          o.partitioning.enabled = true;
          return o;
        }()))
        << entry.name;
    SynthesisOptions off;
    SynthesisOptions on;
    on.partitioning.enabled = true;
    const SynthesisResult exact =
        synthesize(entry.cg, entry.lib, off).value();
    const SynthesisResult fallback =
        synthesize(entry.cg, entry.lib, on).value();
    expect_bit_identical(exact, fallback, entry.name);
    EXPECT_EQ(fallback.degradation.stage, exact.degradation.stage)
        << entry.name;
  }
}

TEST(PartitionedSynth, ForcedPartitionBracketedByExactAndPointToPoint) {
  // Force the partitioned path on wan2002 (threshold 1, 3-arc clusters).
  // wan2002 is deliberately merge-heavy -- its optimal mergings span most
  // of the instance -- so tiny forced clusters DO lose real cost (which is
  // exactly why the arc_threshold fallback exists; the scaling acceptance
  // bound lives on the large geo-WAN instances where clusters align with
  // the merge structure). What must hold unconditionally: the stitch is
  // bracketed by the exact optimum below and the all-point-to-point
  // baseline above, and the summed cluster lower bound stays honest.
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  const SynthesisResult exact = synthesize(cg, lib).value();
  const baseline::BaselineResult ptp =
      baseline::point_to_point_baseline(cg, lib);

  SynthesisOptions opts;
  opts.partitioning.enabled = true;
  opts.partitioning.arc_threshold = 1;
  opts.partitioning.max_cluster_arcs = 3;
  ASSERT_TRUE(partitioning_applies(cg, opts));
  const SynthesisResult part = synthesize(cg, lib, opts).value();

  EXPECT_TRUE(part.validation.ok());
  EXPECT_GE(part.total_cost, exact.total_cost - 1e-9);
  EXPECT_LE(part.total_cost, ptp.cost + 1e-9);
  EXPECT_GT(part.degradation.lower_bound, 0.0);
  EXPECT_LE(part.degradation.lower_bound, part.cover.cost + 1e-9);
  EXPECT_LE(part.degradation.optimality_gap, 0.10);
  EXPECT_GE(part.degradation.stage, SynthesisStage::kIncumbent);
  EXPECT_NE(part.degradation.reason.find("partitioned synthesis"),
            std::string::npos);
  EXPECT_FALSE(part.cover.optimal);  // global optimality is not proven
}

TEST(PartitionedSynth, LargeInstanceEndToEnd) {
  // A real multi-cluster instance through the public synthesize() entry:
  // valid implementation, every arc covered, honest gap.
  const model::ConstraintGraph cg =
      workloads::geo_wan(workloads::GeoWanParams::sized(150, 5));
  SynthesisOptions opts;
  opts.partitioning.enabled = true;
  const SynthesisResult r =
      synthesize(cg, commlib::wan_library(), opts).value();
  EXPECT_TRUE(r.validation.ok());
  EXPECT_GT(r.degradation.lower_bound, 0.0);
  EXPECT_LE(r.degradation.optimality_gap, 0.10);
  EXPECT_NE(r.degradation.reason.find("clusters"), std::string::npos);
}

// The acceptance contract for the parallel fan-out: the stitched result is
// a deterministic function of the instance alone, for ANY worker count.
// CI runs this suite under ThreadSanitizer as well (ci.yml tsan job).
TEST(PartitionedDeterminism, SameResultAtOneTwoEightThreads) {
  const model::ConstraintGraph cg =
      workloads::geo_wan(workloads::GeoWanParams::sized(150, 5));
  const commlib::Library lib = commlib::wan_library();
  SynthesisOptions opts;
  opts.partitioning.enabled = true;
  opts.threads = 1;
  const SynthesisResult serial = synthesize(cg, lib, opts).value();
  for (const int threads : {2, 8}) {
    opts.threads = threads;
    const SynthesisResult parallel = synthesize(cg, lib, opts).value();
    expect_bit_identical(serial, parallel, "threads");
    EXPECT_EQ(parallel.degradation.lower_bound,
              serial.degradation.lower_bound);
    EXPECT_EQ(parallel.degradation.reason, serial.degradation.reason);
  }
}

TEST(PartitionedDeterminism, FatTreeAcrossThreads) {
  const model::ConstraintGraph cg =
      workloads::fat_tree_traffic(workloads::FatTreeParams::sized(120, 3));
  const commlib::Library lib = commlib::wan_library();
  SynthesisOptions opts;
  opts.partitioning.enabled = true;
  opts.partitioning.arc_threshold = 32;
  opts.threads = 1;
  const SynthesisResult serial = synthesize(cg, lib, opts).value();
  EXPECT_TRUE(serial.validation.ok());
  opts.threads = 8;
  const SynthesisResult parallel = synthesize(cg, lib, opts).value();
  expect_bit_identical(serial, parallel, "fat_tree");
}

}  // namespace
}  // namespace cdcs::synth
