// Cross-checks the matrix-free CG placement against a dense Gaussian-
// elimination oracle on random anchored Laplacian systems.
#include <random>

#include <gtest/gtest.h>

#include "place/placement.hpp"

namespace cdcs::place {
namespace {

/// Dense solve of the same quadratic placement: build the movable-submatrix
/// Laplacian L and rhs, solve L x = b by Gaussian elimination.
std::vector<geom::Point2D> dense_oracle(const PlacementProblem& p) {
  std::vector<std::size_t> movable_index(p.modules.size(), SIZE_MAX);
  std::vector<std::size_t> movable;
  for (std::size_t i = 0; i < p.modules.size(); ++i) {
    if (!p.modules[i].fixed) {
      movable_index[i] = movable.size();
      movable.push_back(i);
    }
  }
  const std::size_t m = movable.size();
  std::vector<geom::Point2D> out(p.modules.size());
  for (std::size_t i = 0; i < p.modules.size(); ++i) {
    out[i] = p.modules[i].position;
  }
  if (m == 0) return out;

  for (int axis = 0; axis < 2; ++axis) {
    std::vector<double> A(m * m, 0.0);
    std::vector<double> b(m, 0.0);
    for (const Net& n : p.nets) {
      const std::size_t ia = movable_index[n.a];
      const std::size_t ib = movable_index[n.b];
      auto coord = [&](std::size_t v) {
        return axis == 0 ? p.modules[v].position.x : p.modules[v].position.y;
      };
      if (ia != SIZE_MAX) A[ia * m + ia] += n.weight;
      if (ib != SIZE_MAX) A[ib * m + ib] += n.weight;
      if (ia != SIZE_MAX && ib != SIZE_MAX) {
        A[ia * m + ib] -= n.weight;
        A[ib * m + ia] -= n.weight;
      } else if (ia != SIZE_MAX) {
        b[ia] += n.weight * coord(n.b);
      } else if (ib != SIZE_MAX) {
        b[ib] += n.weight * coord(n.a);
      }
    }
    // Gaussian elimination with partial pivoting.
    for (std::size_t col = 0; col < m; ++col) {
      std::size_t pivot = col;
      for (std::size_t r = col + 1; r < m; ++r) {
        if (std::abs(A[r * m + col]) > std::abs(A[pivot * m + col])) {
          pivot = r;
        }
      }
      for (std::size_t c = 0; c < m; ++c) {
        std::swap(A[col * m + c], A[pivot * m + c]);
      }
      std::swap(b[col], b[pivot]);
      for (std::size_t r = col + 1; r < m; ++r) {
        const double f = A[r * m + col] / A[col * m + col];
        for (std::size_t c = col; c < m; ++c) A[r * m + c] -= f * A[col * m + c];
        b[r] -= f * b[col];
      }
    }
    std::vector<double> x(m);
    for (std::size_t r = m; r-- > 0;) {
      double acc = b[r];
      for (std::size_t c = r + 1; c < m; ++c) acc -= A[r * m + c] * x[c];
      x[r] = acc / A[r * m + r];
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (axis == 0) {
        out[movable[i]].x = x[i];
      } else {
        out[movable[i]].y = x[i];
      }
    }
  }
  return out;
}

class PlacementOracle : public ::testing::TestWithParam<int> {};

TEST_P(PlacementOracle, CgMatchesDenseSolve) {
  std::mt19937 rng(GetParam() * 7907 + 13);
  std::uniform_real_distribution<double> coord(0.0, 50.0);
  std::uniform_real_distribution<double> weight(0.2, 5.0);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  PlacementProblem p;
  const int pads = 3 + GetParam() % 3;
  const int blocks = 4 + GetParam() % 6;
  for (int i = 0; i < pads; ++i) {
    p.add_fixed("pad" + std::to_string(i), {coord(rng), coord(rng)});
  }
  for (int i = 0; i < blocks; ++i) {
    p.add_module("m" + std::to_string(i));
  }
  // Spanning connectivity: each block ties to a random earlier module,
  // guaranteeing an anchored system; plus random extra nets.
  std::uniform_int_distribution<std::size_t> earlier(0, pads - 1);
  for (int i = 0; i < blocks; ++i) {
    const std::size_t self = pads + i;
    std::uniform_int_distribution<std::size_t> prev(0, self - 1);
    p.connect(self, prev(rng), weight(rng));
    if (unit(rng) < 0.7) p.connect(self, earlier(rng), weight(rng));
  }
  ASSERT_TRUE(p.validate().empty());

  const PlacementResult cg_result = place(p);
  ASSERT_TRUE(cg_result.converged);
  const std::vector<geom::Point2D> oracle = dense_oracle(p);
  for (std::size_t i = 0; i < p.modules.size(); ++i) {
    EXPECT_NEAR(cg_result.positions[i].x, oracle[i].x, 1e-5) << "module " << i;
    EXPECT_NEAR(cg_result.positions[i].y, oracle[i].y, 1e-5) << "module " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementOracle, ::testing::Range(0, 8));

}  // namespace
}  // namespace cdcs::place
