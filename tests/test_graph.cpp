#include <random>

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"

namespace cdcs::graph {
namespace {

using G = Digraph<int, double>;

TEST(Digraph, AddAndQuery) {
  G g;
  const VertexId a = g.add_vertex(10);
  const VertexId b = g.add_vertex(20);
  const ArcId e = g.add_arc(a, b, 1.5);
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.num_arcs(), 1u);
  EXPECT_EQ(g.vertex(a), 10);
  EXPECT_EQ(g.arc(e).payload, 1.5);
  EXPECT_EQ(g.source(e), a);
  EXPECT_EQ(g.target(e), b);
  EXPECT_EQ(g.out_degree(a), 1u);
  EXPECT_EQ(g.in_degree(b), 1u);
  EXPECT_EQ(g.out_degree(b), 0u);
}

TEST(Digraph, ParallelArcsAndSelfLoops) {
  G g;
  const VertexId a = g.add_vertex();
  const VertexId b = g.add_vertex();
  g.add_arc(a, b, 1.0);
  g.add_arc(a, b, 2.0);  // parallel arcs are legal (duplication!)
  g.add_arc(a, a, 3.0);  // self-loop is representable at this layer
  EXPECT_EQ(g.num_arcs(), 3u);
  EXPECT_EQ(g.out_degree(a), 3u);
  EXPECT_EQ(g.in_degree(b), 2u);
}

TEST(Digraph, InvalidIdsThrow) {
  G g;
  const VertexId a = g.add_vertex();
  EXPECT_THROW(g.vertex(VertexId{5}), std::out_of_range);
  EXPECT_THROW(g.add_arc(a, VertexId{5}), std::out_of_range);
  EXPECT_THROW(g.arc(ArcId{0}), std::out_of_range);
  EXPECT_THROW(g.vertex(VertexId{}), std::out_of_range);  // invalid sentinel
}

TEST(Digraph, IdHashing) {
  std::hash<VertexId> h;
  EXPECT_EQ(h(VertexId{3}), h(VertexId{3}));
  EXPECT_NE(h(VertexId{3}), h(VertexId{4}));
}

G chain_graph(int n) {
  G g;
  std::vector<VertexId> v;
  for (int i = 0; i < n; ++i) v.push_back(g.add_vertex(i));
  for (int i = 0; i + 1 < n; ++i) g.add_arc(v[i], v[i + 1], 1.0);
  return g;
}

TEST(Reachability, ChainIsForwardOnly) {
  const G g = chain_graph(4);
  const auto from0 = reachable_from(g, VertexId{0});
  EXPECT_TRUE(from0[3]);
  const auto from3 = reachable_from(g, VertexId{3});
  EXPECT_FALSE(from3[0]);
  EXPECT_TRUE(from3[3]);
}

TEST(Dijkstra, PicksCheaperOfTwoRoutes) {
  G g;
  const VertexId s = g.add_vertex();
  const VertexId m = g.add_vertex();
  const VertexId t = g.add_vertex();
  g.add_arc(s, t, 10.0);
  g.add_arc(s, m, 3.0);
  g.add_arc(m, t, 4.0);
  const auto sp =
      dijkstra(g, s, [&](ArcId a) { return g.arc(a).payload; });
  EXPECT_DOUBLE_EQ(sp.distance[t.index()], 7.0);
  const auto path = extract_path(g, sp, t);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(g.target(path[1]), t);
}

TEST(Dijkstra, RespectsAllowedMask) {
  G g;
  const VertexId s = g.add_vertex();
  const VertexId m = g.add_vertex();
  const VertexId t = g.add_vertex();
  g.add_arc(s, m, 1.0);
  g.add_arc(m, t, 1.0);
  std::vector<bool> allowed = {true, false, true};  // forbid m
  const auto sp = dijkstra(
      g, s, [&](ArcId a) { return g.arc(a).payload; }, &allowed);
  EXPECT_FALSE(sp.reached(t));
}

TEST(Dijkstra, MatchesBruteForceOnRandomGraphs) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    G g;
    const int n = 8;
    std::vector<VertexId> v;
    for (int i = 0; i < n; ++i) v.push_back(g.add_vertex());
    std::uniform_int_distribution<int> pick(0, n - 1);
    std::uniform_real_distribution<double> w(0.1, 10.0);
    for (int e = 0; e < 20; ++e) {
      const int a = pick(rng);
      const int b = pick(rng);
      if (a != b) g.add_arc(v[a], v[b], w(rng));
    }
    const auto sp =
        dijkstra(g, v[0], [&](ArcId a) { return g.arc(a).payload; });
    // Bellman-Ford as the oracle.
    std::vector<double> dist(n, 1e18);
    dist[0] = 0.0;
    for (int round = 0; round < n; ++round) {
      g.for_each_arc([&](ArcId a) {
        const double nd = dist[g.source(a).index()] + g.arc(a).payload;
        if (nd < dist[g.target(a).index()]) dist[g.target(a).index()] = nd;
      });
    }
    for (int i = 0; i < n; ++i) {
      if (dist[i] >= 1e17) {
        EXPECT_FALSE(sp.reached(v[i]));
      } else {
        EXPECT_NEAR(sp.distance[i], dist[i], 1e-9);
      }
    }
  }
}

TEST(WidestPath, MaximizesBottleneck) {
  G g;
  const VertexId s = g.add_vertex();
  const VertexId m1 = g.add_vertex();
  const VertexId m2 = g.add_vertex();
  const VertexId t = g.add_vertex();
  g.add_arc(s, m1, 10.0);
  g.add_arc(m1, t, 2.0);  // route A: bottleneck 2
  g.add_arc(s, m2, 5.0);
  g.add_arc(m2, t, 6.0);  // route B: bottleneck 5
  const VertexId isolated = g.add_vertex();
  const auto wp =
      widest_paths(g, s, [&](ArcId a) { return g.arc(a).payload; });
  EXPECT_DOUBLE_EQ(bottleneck_of(wp, t), 5.0);
  EXPECT_DOUBLE_EQ(bottleneck_of(wp, isolated), 0.0);  // unreached vertex
}

TEST(WeakComponents, TwoIslands) {
  G g;
  const VertexId a = g.add_vertex();
  const VertexId b = g.add_vertex();
  const VertexId c = g.add_vertex();
  g.add_vertex();  // isolated d
  g.add_arc(a, b);
  g.add_arc(c, b);  // direction ignored for weak connectivity
  const auto comp = weak_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(Topological, OrderRespectsArcs) {
  const G g = chain_graph(5);
  const auto order = topological_order(g);
  ASSERT_EQ(order.size(), 5u);
  std::vector<int> position(5);
  for (int i = 0; i < 5; ++i) position[order[i].index()] = i;
  g.for_each_arc([&](ArcId a) {
    EXPECT_LT(position[g.source(a).index()], position[g.target(a).index()]);
  });
  EXPECT_FALSE(has_cycle(g));
}

TEST(Topological, DetectsCycle) {
  G g;
  const VertexId a = g.add_vertex();
  const VertexId b = g.add_vertex();
  g.add_arc(a, b);
  g.add_arc(b, a);
  EXPECT_TRUE(topological_order(g).empty());
  EXPECT_TRUE(has_cycle(g));
}

}  // namespace
}  // namespace cdcs::graph
