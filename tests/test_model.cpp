#include <cmath>

#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "model/implementation_graph.hpp"

namespace cdcs::model {
namespace {

ConstraintGraph simple_cg() {
  ConstraintGraph cg(geom::Norm::kEuclidean);
  const VertexId u = cg.add_port("u", {0, 0});
  const VertexId v = cg.add_port("v", {3, 4});
  cg.add_channel(u, v, 5.0, "ch");
  return cg;
}

TEST(ConstraintGraph, DistanceDerivedFromPositions) {
  const ConstraintGraph cg = simple_cg();
  EXPECT_DOUBLE_EQ(cg.distance(ArcId{0}), 5.0);
  EXPECT_DOUBLE_EQ(cg.bandwidth(ArcId{0}), 5.0);
  EXPECT_EQ(cg.channel(ArcId{0}).name, "ch");
}

TEST(ConstraintGraph, ManhattanNormChangesDistances) {
  ConstraintGraph cg(geom::Norm::kManhattan);
  const VertexId u = cg.add_port("u", {0, 0});
  const VertexId v = cg.add_port("v", {3, 4});
  cg.add_channel(u, v, 1.0);
  EXPECT_DOUBLE_EQ(cg.distance(ArcId{0}), 7.0);
}

TEST(ConstraintGraph, DefaultArcNamesArePaperStyle) {
  ConstraintGraph cg;
  const VertexId u = cg.add_port("u", {0, 0});
  const VertexId v = cg.add_port("v", {1, 0});
  cg.add_channel(u, v, 1.0);
  cg.add_channel(v, u, 1.0);
  EXPECT_EQ(cg.channel(ArcId{0}).name, "a1");
  EXPECT_EQ(cg.channel(ArcId{1}).name, "a2");
}

TEST(ConstraintGraph, RejectsBadInputs) {
  ConstraintGraph cg;
  const VertexId u = cg.add_port("u", {0, 0});
  const VertexId v = cg.add_port("v", {1, 0});
  using support::ErrorCode;
  EXPECT_EQ(cg.try_add_channel(u, v, 0.0).status().code(),
            ErrorCode::kInvalidInput);
  EXPECT_EQ(cg.try_add_channel(u, v, -1.0).status().code(),
            ErrorCode::kInvalidInput);
  EXPECT_EQ(cg.try_add_channel(u, v, std::nan("")).status().code(),
            ErrorCode::kInvalidInput);
  EXPECT_EQ(cg.try_add_channel(u, u, 1.0).status().code(),
            ErrorCode::kInvalidInput);
  EXPECT_EQ(cg.try_add_port("w", {std::nan(""), 0.0}).status().code(),
            ErrorCode::kInvalidInput);
  // The legacy throwing wrappers surface the same diagnosis as StatusError.
  EXPECT_THROW(cg.add_channel(u, v, 0.0), support::StatusError);
  EXPECT_THROW(cg.add_port("w", {std::nan(""), 0.0}), support::StatusError);
}

TEST(ConstraintGraph, ValidatePassesOnWellFormed) {
  EXPECT_TRUE(simple_cg().validate().empty());
}

class ImplGraphTest : public ::testing::Test {
 protected:
  ImplGraphTest()
      : cg_(simple_cg()),
        lib_(commlib::wan_library()),
        impl_(cg_, lib_),
        radio_(*lib_.find_link("radio")),
        optical_(*lib_.find_link("optical")),
        junction_(*lib_.find_node("junction")) {}

  ConstraintGraph cg_;
  commlib::Library lib_;
  ImplementationGraph impl_;
  commlib::LinkIndex radio_;
  commlib::LinkIndex optical_;
  commlib::NodeIndex junction_;
};

TEST_F(ImplGraphTest, ChiMirrorsComputationalVertices) {
  EXPECT_EQ(impl_.num_vertices(), 2u);
  EXPECT_TRUE(impl_.is_computational(VertexId{0}));
  EXPECT_TRUE(impl_.is_computational(VertexId{1}));
  EXPECT_EQ(impl_.position(VertexId{1}), cg_.position(VertexId{1}));
  EXPECT_THROW(impl_.comm_vertex(VertexId{0}), std::invalid_argument);
}

TEST_F(ImplGraphTest, MatchingCostAndClassification) {
  const ArcId link = impl_.add_link_arc(VertexId{0}, VertexId{1}, radio_);
  impl_.register_path(ArcId{0}, Path{{link}});
  EXPECT_DOUBLE_EQ(impl_.arc_span(link), 5.0);
  EXPECT_DOUBLE_EQ(impl_.arc_cost(link), 5.0 * 2000.0);
  EXPECT_DOUBLE_EQ(impl_.cost(), 10000.0);
  EXPECT_EQ(impl_.classify(ArcId{0}), ImplKind::kMatching);
  EXPECT_DOUBLE_EQ(impl_.arc_implementation_cost(ArcId{0}), 10000.0);
}

TEST_F(ImplGraphTest, SegmentationThroughRepeater) {
  const VertexId mid = impl_.add_comm_vertex(junction_, {1.5, 2.0});
  const ArcId l1 = impl_.add_link_arc(VertexId{0}, mid, radio_);
  const ArcId l2 = impl_.add_link_arc(mid, VertexId{1}, radio_);
  impl_.register_path(ArcId{0}, Path{{l1, l2}});
  EXPECT_EQ(impl_.classify(ArcId{0}), ImplKind::kSegmentation);
  EXPECT_EQ(impl_.num_comm_vertices(), 1u);
  EXPECT_DOUBLE_EQ(impl_.path_length(impl_.arc_implementation(ArcId{0})[0]),
                   5.0);
  EXPECT_DOUBLE_EQ(impl_.path_bandwidth(impl_.arc_implementation(ArcId{0})[0]),
                   11.0);
}

TEST_F(ImplGraphTest, DuplicationClassification) {
  const ArcId l1 = impl_.add_link_arc(VertexId{0}, VertexId{1}, radio_);
  const ArcId l2 = impl_.add_link_arc(VertexId{0}, VertexId{1}, radio_);
  impl_.register_path(ArcId{0}, Path{{l1}});
  impl_.register_path(ArcId{0}, Path{{l2}});
  EXPECT_EQ(impl_.classify(ArcId{0}), ImplKind::kDuplication);
}

TEST_F(ImplGraphTest, RegisterPathRejectsMalformed) {
  const ArcId l1 = impl_.add_link_arc(VertexId{0}, VertexId{1}, radio_);
  const ArcId back = impl_.add_link_arc(VertexId{1}, VertexId{0}, radio_);
  EXPECT_THROW(impl_.register_path(ArcId{0}, Path{{}}), std::invalid_argument);
  // Wrong direction: ends at chi(u), not chi(v).
  EXPECT_THROW(impl_.register_path(ArcId{0}, Path{{back}}),
               std::invalid_argument);
  // Not contiguous.
  EXPECT_THROW(impl_.register_path(ArcId{0}, Path{{l1, l1}}),
               std::invalid_argument);
}

TEST_F(ImplGraphTest, RegisterPathRejectsThroughComputational) {
  ConstraintGraph cg3(geom::Norm::kEuclidean);
  const VertexId u = cg3.add_port("u", {0, 0});
  const VertexId w = cg3.add_port("w", {1, 0});
  const VertexId v = cg3.add_port("v", {2, 0});
  cg3.add_channel(u, v, 1.0);
  ImplementationGraph impl(cg3, lib_);
  const ArcId l1 = impl.add_link_arc(u, w, radio_);
  const ArcId l2 = impl.add_link_arc(w, v, radio_);
  // Path u -> w -> v passes through computational vertex w: Def 2.4 forbids.
  EXPECT_THROW(impl.register_path(ArcId{0}, Path{{l1, l2}}),
               std::invalid_argument);
}

TEST_F(ImplGraphTest, LinkSpanLimitEnforced) {
  const commlib::Library soc = commlib::soc_library(0.6);
  ConstraintGraph cg(geom::Norm::kManhattan);
  const VertexId u = cg.add_port("u", {0, 0});
  const VertexId v = cg.add_port("v", {1.0, 0});
  cg.add_channel(u, v, 1.0);
  ImplementationGraph impl(cg, soc);
  // 1.0 mm exceeds the 0.6 mm wire.
  EXPECT_THROW(impl.add_link_arc(u, v, *soc.find_link("metal-wire")),
               std::invalid_argument);
}

TEST_F(ImplGraphTest, MergedShareDetected) {
  ConstraintGraph cg(geom::Norm::kEuclidean);
  const VertexId u = cg.add_port("u", {0, 0});
  const VertexId v = cg.add_port("v", {10, 0});
  cg.add_channel(u, v, 5.0, "c1");
  cg.add_channel(u, v, 5.0, "c2");
  ImplementationGraph impl(cg, lib_);
  const ArcId trunk = impl.add_link_arc(u, v, optical_);
  impl.register_path(ArcId{0}, Path{{trunk}});
  impl.register_path(ArcId{1}, Path{{trunk}});
  EXPECT_EQ(impl.classify(ArcId{0}), ImplKind::kMergedShare);
  EXPECT_EQ(impl.classify(ArcId{1}), ImplKind::kMergedShare);
  // Def 2.5 counts the shared link once...
  EXPECT_DOUBLE_EQ(impl.cost(), 10.0 * 4000.0);
  // ...while the per-arc implementation costs double-count it (Eq. 2).
  EXPECT_DOUBLE_EQ(impl.arc_implementation_cost(ArcId{0}) +
                       impl.arc_implementation_cost(ArcId{1}),
                   2 * 10.0 * 4000.0);
}

TEST_F(ImplGraphTest, CountNodesByKind) {
  impl_.add_comm_vertex(junction_, {1, 1});
  EXPECT_EQ(impl_.count_nodes(commlib::NodeKind::kSwitch), 1u);
  EXPECT_EQ(impl_.count_nodes(commlib::NodeKind::kRepeater), 0u);
}

TEST(ImplKindNames, AllDistinct) {
  EXPECT_EQ(to_string(ImplKind::kMatching), "matching");
  EXPECT_EQ(to_string(ImplKind::kSegmentation), "segmentation");
  EXPECT_EQ(to_string(ImplKind::kDuplication), "duplication");
  EXPECT_EQ(to_string(ImplKind::kCompound), "compound");
  EXPECT_EQ(to_string(ImplKind::kMergedShare), "merged");
}

}  // namespace
}  // namespace cdcs::model
