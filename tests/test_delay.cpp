#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "sim/delay.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/mpeg4_soc.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs::sim {
namespace {

TEST(Delay, MatchingIsPureWireDelay) {
  model::ConstraintGraph cg;
  const model::VertexId u = cg.add_port("u", {0, 0});
  const model::VertexId v = cg.add_port("v", {3, 4});
  cg.add_channel(u, v, 10.0);
  const commlib::Library lib = commlib::wan_library();
  model::ImplementationGraph impl(cg, lib);
  impl.register_path(model::ArcId{0},
                     model::Path{{impl.add_link_arc(u, v, 0)}});
  // 5 km at 3.34 us/km (radio ~ speed of light).
  const DelayReport r = analyze_delays(impl, {.link_delay_per_length = 3.34});
  ASSERT_EQ(r.channels.size(), 1u);
  EXPECT_NEAR(r.channels[0].worst_path_delay, 16.7, 1e-9);
  EXPECT_EQ(r.channels[0].hops, 0u);
  EXPECT_DOUBLE_EQ(r.max_delay, r.channels[0].worst_path_delay);
}

TEST(Delay, SegmentationAddsNodeDelays) {
  const model::ConstraintGraph cg = workloads::mpeg4_soc();
  const commlib::Library lib = commlib::soc_library(0.6);
  const synth::SynthesisResult result = synth::synthesize(cg, lib).value();
  // 80 ps/mm wire (post-repeatering), 30 ps per repeater.
  const DelayReport r = analyze_delays(
      *result.implementation, {.link_delay_per_length = 80.0,
                               .node_delay = 30.0});
  ASSERT_EQ(r.channels.size(), cg.num_channels());
  // Every channel's delay = 80*d + 30*repeaters; check one exactly:
  // sdram->video_out has d = 5.70 mm and 9 repeaters.
  bool found = false;
  for (const ChannelDelay& c : r.channels) {
    if (c.name == "sdram->video_out") {
      EXPECT_EQ(c.hops, 9u);
      EXPECT_NEAR(c.worst_path_delay, 80.0 * 5.70 + 30.0 * 9, 1e-6);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // With a 500 ps budget (2 GHz), the long channels violate -- the paper's
  // motivation for latency-insensitive design at DSM nodes.
  EXPECT_FALSE(r.violations(500.0).empty());
  EXPECT_TRUE(r.violations(1e6).empty());
}

TEST(Delay, MergedChannelsSeeTrunkDetour) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  const synth::SynthesisResult result = synth::synthesize(cg, lib).value();
  const DelayReport r =
      analyze_delays(*result.implementation, {.link_delay_per_length = 5.0});
  ASSERT_EQ(r.channels.size(), 8u);
  for (const ChannelDelay& c : r.channels) {
    const double direct = 5.0 * cg.distance(c.arc);
    // Delay is at least the direct-line bound and reasonably close to it
    // (the trunk detour through the split point is small).
    EXPECT_GE(c.worst_path_delay, direct - 1e-6);
    EXPECT_LE(c.worst_path_delay, 1.2 * direct + 1e-6);
    // Merged arcs pass exactly one comm vertex (the split junction).
    if (c.arc.index() >= 3 && c.arc.index() <= 5) {
      EXPECT_EQ(c.hops, 1u);
    } else {
      EXPECT_EQ(c.hops, 0u);
    }
  }
}

TEST(Delay, BestAndWorstDifferAcrossParallelPaths) {
  model::ConstraintGraph cg;
  const model::VertexId u = cg.add_port("u", {0, 0});
  const model::VertexId v = cg.add_port("v", {10, 0});
  cg.add_channel(u, v, 10.0);
  const commlib::Library lib = commlib::wan_library();
  model::ImplementationGraph impl(cg, lib);
  const model::ArcId direct = impl.add_link_arc(u, v, 0);
  const model::VertexId mid =
      impl.add_comm_vertex(*lib.find_node("junction"), {5.0, 5.0});
  const model::ArcId d1 = impl.add_link_arc(u, mid, 0);
  const model::ArcId d2 = impl.add_link_arc(mid, v, 0);
  impl.register_path(model::ArcId{0}, model::Path{{direct}});
  impl.register_path(model::ArcId{0}, model::Path{{d1, d2}});
  const DelayReport r =
      analyze_delays(impl, {.link_delay_per_length = 1.0, .node_delay = 2.0});
  ASSERT_EQ(r.channels.size(), 1u);
  EXPECT_DOUBLE_EQ(r.channels[0].best_path_delay, 10.0);
  EXPECT_NEAR(r.channels[0].worst_path_delay,
              2.0 * std::sqrt(25.0 + 25.0) + 2.0, 1e-9);
}

TEST(Delay, SkipsUnimplementedArcs) {
  model::ConstraintGraph cg;
  const model::VertexId u = cg.add_port("u", {0, 0});
  const model::VertexId v = cg.add_port("v", {1, 0});
  cg.add_channel(u, v, 1.0);
  const commlib::Library lib = commlib::wan_library();
  const model::ImplementationGraph impl(cg, lib);
  EXPECT_TRUE(analyze_delays(impl, {}).channels.empty());
}

}  // namespace
}  // namespace cdcs::sim
