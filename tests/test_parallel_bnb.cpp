// The parallel branch-and-bound contract (docs/performance.md section 8):
//
//   * kRounds is DETERMINISTIC across thread counts: the explored-node set
//     (pinned via CoverSolution::explored_fingerprint), node count, chosen
//     cover, and cost are bit-identical at 1, 2, and 8 workers, on the
//     solver corpus and through the whole synthesis pipeline.
//   * kFreeRun is deterministic only in its ANSWER: every run returns the
//     same proven-optimal cost the serial solver proves.
//   * A firing ucp.frontier fault degrades a solve all-or-nothing: the
//     returned incumbent is a valid cover (never torn), just no longer
//     claimed optimal.
//
// The ParallelBnbConcurrency suite doubles as the TSan target for the
// shared-frontier engine (.github/workflows/ci.yml tsan job).
#include <random>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "commlib/standard_libraries.hpp"
#include "support/fault.hpp"
#include "synth/synthesizer.hpp"
#include "ucp/bnb.hpp"
#include "workloads/mpeg4_soc.hpp"
#include "workloads/noc_mesh.hpp"
#include "workloads/wan2002.hpp"

namespace cdcs::ucp {
namespace {

/// Same generator as tests/test_ucp.cpp and bench/bench_ucp_solver.cpp:
/// keep the three in sync so all pinned numbers describe one corpus.
CoverProblem corpus_problem(int rows, int cols, double density,
                            unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> weight(0.5, 10.0);
  CoverProblem p(rows);
  for (int j = 0; j < cols; ++j) {
    std::vector<std::size_t> covered;
    for (int r = 0; r < rows; ++r) {
      if (unit(rng) < density) covered.push_back(r);
    }
    if (covered.empty()) covered.push_back(j % rows);
    p.add_column(covered, weight(rng));
  }
  for (int r = 0; r < rows; ++r) {
    p.add_column({static_cast<std::size_t>(r)}, 12.0);
  }
  return p;
}

struct CorpusInstance {
  int rows, cols;
  double density;
  unsigned seed;
};

const CorpusInstance kCorpus[] = {
    {10, 30, 0.30, 101},
    {12, 200, 0.25, 103},
    {15, 60, 0.25, 106},
    {20, 100, 0.20, 111},
    {20, 2000, 0.15, 111},  // the bench_perf_summary headline instance
};

BnbOptions parallel_options(BnbMode mode, int threads) {
  BnbOptions opt;
  opt.dense_dp_max_rows = 0;  // force branch-and-bound
  opt.mode = mode;
  opt.threads = threads;
  return opt;
}

TEST(ParallelBnbDeterminism, RoundsBitIdenticalAcrossThreadCounts) {
  for (const CorpusInstance& c : kCorpus) {
    const CoverProblem p = corpus_problem(c.rows, c.cols, c.density, c.seed);

    const CoverSolution serial =
        solve_exact(p, parallel_options(BnbMode::kSerial, 1));
    ASSERT_TRUE(serial.optimal);
    EXPECT_EQ(serial.explored_fingerprint, 0u);  // serial does not hash

    CoverSolution baseline;
    for (const int threads : {1, 2, 8}) {
      const CoverSolution s =
          solve_exact(p, parallel_options(BnbMode::kRounds, threads));
      EXPECT_TRUE(s.optimal) << threads;
      EXPECT_TRUE(p.covers_all(s.chosen)) << threads;
      EXPECT_NEAR(s.cost, serial.cost, 1e-9)
          << c.rows << "x" << c.cols << " threads=" << threads;
      if (threads == 1) {
        baseline = s;
        EXPECT_NE(s.explored_fingerprint, 0u);
        continue;
      }
      // The determinism contract: not "same cost", the SAME computation.
      EXPECT_EQ(s.cost, baseline.cost) << threads;
      EXPECT_EQ(s.chosen, baseline.chosen) << threads;
      EXPECT_EQ(s.nodes_explored, baseline.nodes_explored) << threads;
      EXPECT_EQ(s.explored_fingerprint, baseline.explored_fingerprint)
          << c.rows << "x" << c.cols << " threads=" << threads;
    }
  }
}

TEST(ParallelBnbDeterminism, RoundsBatchSizeChangesTreeNotAnswer) {
  const CoverProblem p = corpus_problem(15, 60, 0.25, 106);
  const CoverSolution serial =
      solve_exact(p, parallel_options(BnbMode::kSerial, 1));
  for (const std::size_t batch : {std::size_t{1}, std::size_t{4},
                                  std::size_t{64}}) {
    BnbOptions opt = parallel_options(BnbMode::kRounds, 2);
    opt.rounds_batch_size = batch;
    const CoverSolution s = solve_exact(p, opt);
    EXPECT_TRUE(s.optimal) << batch;
    EXPECT_NEAR(s.cost, serial.cost, 1e-9) << batch;
  }
}

TEST(ParallelBnbDeterminism, FreeRunProvesTheSerialOptimum) {
  for (const CorpusInstance& c : kCorpus) {
    const CoverProblem p = corpus_problem(c.rows, c.cols, c.density, c.seed);
    const CoverSolution serial =
        solve_exact(p, parallel_options(BnbMode::kSerial, 1));
    ASSERT_TRUE(serial.optimal);
    for (const int threads : {1, 2, 8}) {
      const CoverSolution s =
          solve_exact(p, parallel_options(BnbMode::kFreeRun, threads));
      EXPECT_TRUE(s.optimal)
          << c.rows << "x" << c.cols << " threads=" << threads;
      EXPECT_TRUE(p.covers_all(s.chosen)) << threads;
      EXPECT_NEAR(s.cost, serial.cost, 1e-9)
          << c.rows << "x" << c.cols << " threads=" << threads;
    }
  }
}

TEST(ParallelBnbDeterminism, StopReasonDistinguishesBudgets) {
  const CoverProblem p = corpus_problem(15, 60, 0.25, 106);

  BnbOptions done = parallel_options(BnbMode::kRounds, 2);
  EXPECT_EQ(solve_exact(p, done).stop, CoverStop::kCompleted);

  BnbOptions budget = parallel_options(BnbMode::kRounds, 2);
  budget.max_nodes = 1;
  const CoverSolution b = solve_exact(p, budget);
  EXPECT_FALSE(b.optimal);
  EXPECT_EQ(b.stop, CoverStop::kNodeBudget);
  EXPECT_FALSE(b.deadline_expired);
  EXPECT_TRUE(p.covers_all(b.chosen));  // incumbent survives the cutoff

  BnbOptions late = parallel_options(BnbMode::kRounds, 2);
  late.deadline = support::Deadline::expire_after_checks(0);
  const CoverSolution d = solve_exact(p, late);
  EXPECT_FALSE(d.optimal);
  EXPECT_EQ(d.stop, CoverStop::kDeadline);
  EXPECT_TRUE(d.deadline_expired);

  BnbOptions cramped = parallel_options(BnbMode::kRounds, 2);
  cramped.best_first_max_frontier = 2;
  const CoverSolution f = solve_exact(p, cramped);
  EXPECT_FALSE(f.optimal);
  EXPECT_EQ(f.stop, CoverStop::kFrontierCap);
  EXPECT_FALSE(f.deadline_expired);
  EXPECT_TRUE(p.covers_all(f.chosen));
}

// ---- Whole-pipeline determinism -------------------------------------------

std::string pipeline_fingerprint(const synth::SynthesisResult& r) {
  std::ostringstream os;
  os.precision(17);
  os << "chosen:";
  for (std::size_t j : r.cover.chosen) os << ' ' << j;
  os << "\ntotal=" << r.total_cost << "\ncost=" << r.cover.cost
     << "\nstage=" << synth::to_string(r.degradation.stage)
     << "\nucp_nodes=" << r.cover.nodes_explored
     << "\nfp=" << r.cover.explored_fingerprint << '\n';
  return os.str();
}

void expect_pipeline_rounds_invariant(const model::ConstraintGraph& cg,
                                      const commlib::Library& lib) {
  synth::SynthesisOptions serial;
  serial.solver.dense_dp_max_rows = 0;  // force B&B (WAN is only 19 rows)
  const auto want = synth::synthesize(cg, lib, serial);
  ASSERT_TRUE(want.ok()) << want.status().to_string();

  std::string baseline;
  for (const int threads : {1, 2, 8}) {
    synth::SynthesisOptions options;
    options.solver.dense_dp_max_rows = 0;
    options.solver.mode = BnbMode::kRounds;
    options.solver.threads = threads;
    const auto run = synth::synthesize(cg, lib, options);
    ASSERT_TRUE(run.ok()) << run.status().to_string();
    EXPECT_NEAR(run->total_cost, want->total_cost, 1e-9)
        << "threads=" << threads;
    const std::string fp = pipeline_fingerprint(*run);
    if (threads == 1) {
      baseline = fp;
    } else {
      EXPECT_EQ(fp, baseline) << "ucp-threads=" << threads;
    }
  }
}

TEST(ParallelBnbDeterminism, PipelineWan2002) {
  expect_pipeline_rounds_invariant(workloads::wan2002(),
                                   commlib::wan_library());
}

TEST(ParallelBnbDeterminism, PipelineMpeg4Soc) {
  expect_pipeline_rounds_invariant(workloads::mpeg4_soc(),
                                   commlib::soc_library());
}

TEST(ParallelBnbDeterminism, PipelineNocMesh) {
  workloads::NocMeshParams p;
  p.rows = 3;
  p.cols = 3;
  expect_pipeline_rounds_invariant(workloads::noc_mesh(p),
                                   commlib::noc_library());
}

// ---- Concurrency / robustness (TSan targets) ------------------------------

TEST(ParallelBnbConcurrency, FreeRunStressRepeats) {
  // Hammer the shared frontier + atomic incumbent from 8 workers, several
  // times, on two instances; every run must prove the same optimum.
  const CorpusInstance instances[] = {{15, 60, 0.25, 106}, {20, 100, 0.20, 111}};
  for (const CorpusInstance& c : instances) {
    const CoverProblem p = corpus_problem(c.rows, c.cols, c.density, c.seed);
    const CoverSolution serial =
        solve_exact(p, parallel_options(BnbMode::kSerial, 1));
    for (int repeat = 0; repeat < 3; ++repeat) {
      const CoverSolution s =
          solve_exact(p, parallel_options(BnbMode::kFreeRun, 8));
      ASSERT_TRUE(s.optimal);
      ASSERT_TRUE(p.covers_all(s.chosen));
      EXPECT_NEAR(s.cost, serial.cost, 1e-9);
    }
  }
}

TEST(ParallelBnbConcurrency, RoundsStressSmallBatches) {
  // Small batches maximize round turnover (merge/fan-out churn) under TSan.
  const CoverProblem p = corpus_problem(20, 100, 0.20, 111);
  const CoverSolution serial =
      solve_exact(p, parallel_options(BnbMode::kSerial, 1));
  BnbOptions opt = parallel_options(BnbMode::kRounds, 8);
  opt.rounds_batch_size = 2;
  for (int repeat = 0; repeat < 3; ++repeat) {
    const CoverSolution s = solve_exact(p, opt);
    ASSERT_TRUE(s.optimal);
    EXPECT_NEAR(s.cost, serial.cost, 1e-9);
  }
}

TEST(ParallelBnbConcurrency, RoundsFrontierFaultAbortsAllOrNothing) {
  const CoverProblem p = corpus_problem(15, 60, 0.25, 106);
  const CoverSolution serial =
      solve_exact(p, parallel_options(BnbMode::kSerial, 1));

  auto plan = support::FaultPlan::parse("ucp.frontier@1");
  ASSERT_TRUE(plan.ok());
  support::FaultInjector injector(*plan);

  BnbOptions opt = parallel_options(BnbMode::kRounds, 2);
  opt.fault_injector = &injector;
  const CoverSolution s = solve_exact(p, opt);
  // First frontier consultation fires: the solve aborts before expanding a
  // single node, handing back the seeded incumbent -- a complete, valid
  // cover, not a torn one.
  EXPECT_EQ(s.stop, CoverStop::kAborted);
  EXPECT_FALSE(s.optimal);
  EXPECT_EQ(s.nodes_explored, 0u);
  EXPECT_TRUE(p.covers_all(s.chosen));
  EXPECT_GE(s.cost, serial.cost - 1e-9);  // never better than the optimum
  EXPECT_GT(injector.total_fires(), 0u);
}

TEST(ParallelBnbConcurrency, FreeRunWorkerDeathLeavesValidCover) {
  const CoverProblem p = corpus_problem(15, 60, 0.25, 106);
  const CoverSolution serial =
      solve_exact(p, parallel_options(BnbMode::kSerial, 1));

  auto plan = support::FaultPlan::parse("ucp.frontier@3");
  ASSERT_TRUE(plan.ok());
  support::FaultInjector injector(*plan);

  BnbOptions opt = parallel_options(BnbMode::kFreeRun, 4);
  opt.fault_injector = &injector;
  const CoverSolution s = solve_exact(p, opt);
  // One worker died mid-solve; the survivors finished the search. The
  // result is conservative (not claimed optimal) but must be a coherent
  // cover at least as good as the greedy seed and never below the optimum.
  EXPECT_EQ(s.stop, CoverStop::kAborted);
  EXPECT_FALSE(s.optimal);
  EXPECT_TRUE(p.covers_all(s.chosen));
  EXPECT_GE(s.cost, serial.cost - 1e-9);
  EXPECT_GT(injector.total_fires(), 0u);
}

}  // namespace
}  // namespace cdcs::ucp
