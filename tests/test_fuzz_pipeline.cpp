// Randomized end-to-end property tests: random libraries x random
// constraint graphs, through the full pipeline. These don't pin exact
// values; they enforce the invariants that must hold for EVERY instance:
//
//   * the synthesized implementation validates (Def 2.4 + capacity policy);
//   * the UCP optimum never exceeds the point-to-point sum (its columns
//     include every singleton);
//   * the materialized graph's Def 2.5 cost equals the sum of the selected
//     candidates' costs (no double counting, nothing dropped);
//   * re-validating under the weaker literal policy also passes when the
//     sum policy was used for synthesis;
//   * infeasible instances produce a typed kInfeasible status, not a crash.
//
// Plus a malformed-input corpus: every hostile file in kMalformedCorpus must
// come back as a structured parse/input diagnostic -- never an exception,
// never a crash (the CI sanitizer job runs this test under ASan+UBSan).
//
// Note these hold regardless of Assumption 2.1 (random libraries may
// violate it; the pruning lemmas then lose their optimality guarantee but
// never their soundness w.r.t. validity).
#include <random>

#include <gtest/gtest.h>

#include "baseline/baselines.hpp"
#include "commlib/library.hpp"
#include "io/text_format.hpp"
#include "model/validator.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/random_gen.hpp"

namespace cdcs {
namespace {

commlib::Library random_library(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  commlib::Library lib("fuzz");
  const int n_links = 1 + static_cast<int>(unit(rng) * 3);
  for (int i = 0; i < n_links; ++i) {
    const bool bounded = unit(rng) < 0.4;
    lib.add_link(commlib::Link{
        .name = "link" + std::to_string(i),
        .max_span = bounded ? 5.0 + unit(rng) * 60.0
                            : std::numeric_limits<double>::infinity(),
        .bandwidth = 5.0 + unit(rng) * 40.0,
        .fixed_cost = unit(rng) < 0.5 ? unit(rng) * 50.0 : 0.0,
        .cost_per_length = 0.5 + unit(rng) * 10.0});
  }
  if (unit(rng) < 0.9) {
    lib.add_node(commlib::Node{.name = "rep",
                               .kind = commlib::NodeKind::kRepeater,
                               .cost = unit(rng) * 20.0});
  }
  if (unit(rng) < 0.9) {
    lib.add_node(commlib::Node{.name = "mux",
                               .kind = commlib::NodeKind::kMux,
                               .cost = unit(rng) * 20.0});
    lib.add_node(commlib::Node{.name = "demux",
                               .kind = commlib::NodeKind::kDemux,
                               .cost = unit(rng) * 20.0});
  }
  if (unit(rng) < 0.5) {
    lib.add_node(commlib::Node{.name = "sw",
                               .kind = commlib::NodeKind::kSwitch,
                               .cost = unit(rng) * 30.0});
  }
  return lib;
}

class PipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzz, InvariantsHoldOnRandomInstances) {
  std::mt19937_64 rng(0xC0FFEEull + GetParam() * 977);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  const commlib::Library lib = random_library(rng);

  workloads::RandomWorkloadParams params;
  params.seed = rng();
  params.num_clusters = 1 + static_cast<int>(unit(rng) * 3);
  params.ports_per_cluster = 2 + static_cast<int>(unit(rng) * 2);
  params.num_channels = 4 + static_cast<int>(unit(rng) * 5);
  params.min_bandwidth = 2.0;
  params.max_bandwidth = 2.0 + unit(rng) * 50.0;
  params.norm = unit(rng) < 0.5 ? geom::Norm::kEuclidean
                                : geom::Norm::kManhattan;
  params.area_extent = 30.0 + unit(rng) * 150.0;
  const model::ConstraintGraph cg = workloads::random_workload(params);

  synth::SynthesisOptions opts;
  if (unit(rng) < 0.3) opts.pivot_rule = synth::PivotRule::kAnyPivot;
  if (unit(rng) < 0.3) opts.drop_unprofitable = true;
  if (unit(rng) < 0.2) opts.enable_chain_topology = false;
  if (unit(rng) < 0.2) opts.enable_tree_topology = false;

  auto synthesis = synth::synthesize(cg, lib, opts);
  if (!synthesis.ok()) {
    // Unimplementable instance for this library (e.g. demand above every
    // link with no mux): a clean, typed failure is the contract.
    EXPECT_EQ(synthesis.status().code(), support::ErrorCode::kInfeasible)
        << synthesis.status().to_string();
    return;
  }
  const synth::SynthesisResult result = *std::move(synthesis);

  // 1. Validity under the synthesis policy and the weaker literal policy.
  EXPECT_TRUE(result.validation.ok())
      << "seed " << GetParam() << ": "
      << (result.validation.problems.empty()
              ? ""
              : result.validation.problems.front());
  EXPECT_TRUE(model::validate(*result.implementation,
                              model::CapacityPolicy::kMaxPerConstraint)
                  .ok());

  // 2. Never worse than point-to-point.
  const baseline::BaselineResult ptp =
      baseline::point_to_point_baseline(cg, lib);
  EXPECT_LE(result.total_cost, ptp.cost + 1e-6 * std::max(1.0, ptp.cost));

  // 3. Def 2.5 cost equals the selected candidates' cost sum (candidates
  // never share elements across columns).
  double chosen_sum = 0.0;
  for (const synth::Candidate* c : result.selected()) chosen_sum += c->cost;
  EXPECT_NEAR(result.total_cost, chosen_sum,
              1e-6 * std::max(1.0, chosen_sum));

  // 4. Every arc covered by exactly one column (positive costs).
  std::vector<int> covered(cg.num_channels(), 0);
  for (const synth::Candidate* c : result.selected()) {
    for (model::ArcId a : c->arcs) ++covered[a.index()];
  }
  for (int count : covered) EXPECT_EQ(count, 1);

  // 5. Every arc classifies to a defined structure.
  for (model::ArcId a : cg.arcs()) {
    EXPECT_NO_THROW((void)result.implementation->classify(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz, ::testing::Range(0, 40));

// --- Malformed-input corpus -------------------------------------------------

struct MalformedCase {
  const char* label;
  const char* text;
};

constexpr MalformedCase kMalformedGraphs[] = {
    {"empty-directive", "port\n"},
    {"port-missing-coordinate", "port a 0\n"},
    {"port-junk-coordinates", "port a x y\n"},
    {"port-nan-coordinate", "port a nan 0\n"},
    {"port-inf-coordinate", "port a inf 0\n"},
    {"duplicate-port", "port a 0 0\nport a 1 1\n"},
    {"channel-unknown-port", "channel c a b 1\n"},
    {"channel-missing-bandwidth", "port a 0 0\nport b 1 1\nchannel c a b\n"},
    {"channel-zero-bandwidth", "port a 0 0\nport b 1 1\nchannel c a b 0\n"},
    {"channel-negative-bandwidth",
     "port a 0 0\nport b 1 1\nchannel c a b -5\n"},
    {"channel-nan-bandwidth", "port a 0 0\nport b 1 1\nchannel c a b nan\n"},
    {"channel-overflow-bandwidth",
     "port a 0 0\nport b 1 1\nchannel c a b 1e999\n"},
    {"channel-self-loop", "port a 0 0\nchannel c a a 1\n"},
    {"duplicate-channel-name",
     "port a 0 0\nport b 1 1\nchannel c a b 1\nchannel c a b 2\n"},
    {"unknown-directive", "frobnicate\n"},
    {"duplicate-norm", "norm euclidean\nnorm euclidean\n"},
    {"bogus-norm", "norm bogus\n"},
    {"trailing-junk-after-port", "port a 0 0 extra\n"},
    {"binary-garbage", "\x01\x02\x03\xff\xfe graph\n"},
};

constexpr MalformedCase kMalformedLibraries[] = {
    {"link-missing-fields", "link l\n"},
    {"link-junk-bandwidth", "link l inf ten 0 1\n"},
    {"link-zero-bandwidth", "link l inf 0 0 1\n"},
    {"link-negative-cost", "link l inf 10 -3 1\n"},
    {"link-nan-span", "link l nan 10 0 1\n"},
    {"link-zero-span", "link l 0 10 0 1\n"},
    {"duplicate-link", "link l inf 10 0 1\nlink l inf 20 0 2\n"},
    {"node-unknown-kind", "node n gizmo 1\n"},
    {"node-negative-cost", "node n switch -2\n"},
    {"duplicate-node", "node n switch 1\nnode n mux 2\n"},
    {"unknown-directive", "frobnicate 1 2\n"},
    {"binary-garbage", "\x7f\x45\x4c\x46 library\n"},
};

TEST(MalformedCorpus, GraphsFailWithStructuredDiagnostics) {
  for (const MalformedCase& c : kMalformedGraphs) {
    const auto result = io::read_constraint_graph_from_string(c.text);
    ASSERT_FALSE(result.ok()) << c.label;
    EXPECT_EQ(result.status().code(), support::ErrorCode::kParseError)
        << c.label << ": " << result.status().to_string();
    EXPECT_FALSE(result.status().message().empty()) << c.label;
  }
}

TEST(MalformedCorpus, LibrariesFailWithStructuredDiagnostics) {
  for (const MalformedCase& c : kMalformedLibraries) {
    const auto result = io::read_library_from_string(c.text);
    ASSERT_FALSE(result.ok()) << c.label;
    EXPECT_EQ(result.status().code(), support::ErrorCode::kParseError)
        << c.label << ": " << result.status().to_string();
    EXPECT_FALSE(result.status().message().empty()) << c.label;
  }
}

TEST(MalformedCorpus, DefectiveGraphObjectsAreGatedBySynthesize) {
  // Structurally defective instances that parse-level checks cannot see
  // (built through the legacy unchecked API) still get a typed diagnosis
  // from the synthesize() input gate instead of a deep-stack failure.
  model::ConstraintGraph cg(geom::Norm::kEuclidean);
  const auto u = cg.add_port("u", {0, 0});
  const auto v = cg.add_port("v", {1, 0});
  cg.add_channel(u, v, 1.0, "dup");
  cg.add_channel(u, v, 2.0, "dup2");
  commlib::Library lib("empty");  // no links at all
  const auto result = synth::synthesize(cg, lib);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), support::ErrorCode::kInvalidInput)
      << result.status().to_string();
}

}  // namespace
}  // namespace cdcs
