// Pluggable cover-solver backends and the deterministic race portfolio
// (ucp/cover_solver.hpp): registry surface, per-backend byte-identity with
// the legacy dispatch, the CoverStop contract across every backend, and the
// portfolio's thread-count-invariant winner.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

#include "support/deadline.hpp"
#include "support/fault.hpp"
#include "support/thread_pool.hpp"
#include "ucp/bnb.hpp"
#include "ucp/cover_solver.hpp"
#include "ucp/hitting_set.hpp"

namespace {

using namespace cdcs;
using ucp::BnbOptions;
using ucp::CoverProblem;
using ucp::CoverSolution;
using ucp::CoverStop;

/// Same generator as tests/test_ucp.cpp and bench_perf_summary.cpp: seeded
/// random matrix plus one weight-12 singleton per row (always feasible).
CoverProblem corpus_problem(int rows, int cols, double density,
                            unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> weight(0.5, 10.0);
  CoverProblem p(rows);
  for (int j = 0; j < cols; ++j) {
    std::vector<std::size_t> covered;
    for (int r = 0; r < rows; ++r) {
      if (unit(rng) < density) covered.push_back(r);
    }
    if (covered.empty()) covered.push_back(j % rows);
    p.add_column(covered, weight(rng));
  }
  for (int r = 0; r < rows; ++r) {
    p.add_column({static_cast<std::size_t>(r)}, 12.0);
  }
  return p;
}

/// The v1 reference configuration (tests/test_ucp.cpp legacy_options).
BnbOptions legacy_options() {
  BnbOptions o;
  o.dense_dp_max_rows = 0;
  o.use_lagrangian_bound = false;
  o.use_reduced_cost_fixing = false;
  return o;
}

BnbOptions backend_options(const char* name) {
  BnbOptions o;
  o.backend = name;
  return o;
}

TEST(CoverSolverRegistry, FixedPriorityOrder) {
  const std::vector<std::string> names = ucp::registered_cover_solver_names();
  const std::vector<std::string> expected = {
      "dense_dp", "bnb_v2", "hitting_set", "parallel_bnb", "dfs_v1"};
  EXPECT_EQ(names, expected);
  for (const std::string& n : names) {
    const ucp::CoverSolver* s = ucp::find_cover_solver(n);
    ASSERT_NE(s, nullptr) << n;
    EXPECT_EQ(s->name(), n);
  }
  EXPECT_EQ(ucp::find_cover_solver("no_such_backend"), nullptr);
  EXPECT_EQ(ucp::registered_cover_solver_list(),
            "dense_dp, bnb_v2, hitting_set, parallel_bnb, dfs_v1");
}

TEST(CoverSolverRegistry, UnknownOrInapplicableBackendThrows) {
  const CoverProblem small = corpus_problem(10, 30, 0.30, 101);
  EXPECT_THROW(ucp::solve_exact(small, backend_options("no_such_backend")),
               std::invalid_argument);
  // dense_dp is structurally limited to kDenseDpMaxRows rows.
  const CoverProblem wide = corpus_problem(30, 90, 0.20, 131);
  EXPECT_FALSE(ucp::find_cover_solver("dense_dp")->applicable(wide));
  EXPECT_THROW(ucp::solve_exact(wide, backend_options("dense_dp")),
               std::invalid_argument);
}

TEST(CoverSolverRegistry, SolutionCarriesInstanceFeatures) {
  const CoverProblem p = corpus_problem(10, 30, 0.30, 101);
  const CoverSolution s = ucp::solve_exact(p, backend_options("bnb_v2"));
  EXPECT_EQ(s.backend, "bnb_v2");
  EXPECT_EQ(s.rows, 10u);
  EXPECT_EQ(s.cols, 40u);  // 30 random columns + 10 singletons
  EXPECT_GT(s.density, 0.0);
  EXPECT_LE(s.density, 1.0);
  EXPECT_DOUBLE_EQ(s.density, ucp::cover_density(p));
}

// Every backend proves the same optimal cost on the corpus, and the dfs_v1
// backend reproduces the pinned v1 reference tree byte-for-byte.
TEST(CoverSolverMatrix, AllBackendsProveEqualCost) {
  const struct {
    int rows, cols;
    double density;
    std::size_t pinned_v1_nodes;
  } kCorpus[] = {
      {10, 30, 0.30, 7},
      {12, 200, 0.25, 33},
      {15, 60, 0.25, 98},
      {20, 100, 0.20, 123},
  };
  for (const auto& c : kCorpus) {
    const CoverProblem p =
        corpus_problem(c.rows, c.cols, c.density, 91 + c.rows);
    const CoverSolution reference = ucp::solve_exact(p, {});
    ASSERT_TRUE(reference.optimal);
    for (const ucp::CoverSolver* solver : ucp::registered_cover_solvers()) {
      if (!solver->applicable(p)) continue;
      const CoverSolution s =
          ucp::solve_exact(p, backend_options(std::string(solver->name()).c_str()));
      EXPECT_TRUE(s.optimal) << solver->name();
      EXPECT_NEAR(s.cost, reference.cost, 1e-9)
          << solver->name() << " on " << c.rows << "x" << c.cols;
      EXPECT_DOUBLE_EQ(s.lower_bound, s.cost) << solver->name();
      EXPECT_TRUE(p.covers_all(s.chosen)) << solver->name();
      EXPECT_EQ(s.backend, solver->name());
    }
    // Pinned v1 reference tree, node-for-node through the registry.
    const CoverSolution v1 = ucp::solve_exact(p, backend_options("dfs_v1"));
    EXPECT_EQ(v1.nodes_explored, c.pinned_v1_nodes)
        << c.rows << "x" << c.cols;
  }
}

// Selecting the backend the legacy dispatch would have picked is
// byte-identical to not selecting one at all.
TEST(CoverSolverMatrix, BackendSelectionIsByteIdenticalToLegacyDispatch) {
  const CoverProblem p = corpus_problem(15, 60, 0.25, 106);

  const CoverSolution legacy = ucp::solve_exact(p, legacy_options());
  BnbOptions forced = legacy_options();
  forced.backend = "dfs_v1";
  const CoverSolution via_registry = ucp::solve_exact(p, forced);
  EXPECT_EQ(legacy.backend, "dfs_v1");  // auto dispatch labels after the fact
  EXPECT_EQ(via_registry.chosen, legacy.chosen);
  EXPECT_DOUBLE_EQ(via_registry.cost, legacy.cost);
  EXPECT_EQ(via_registry.nodes_explored, legacy.nodes_explored);

  BnbOptions bf;
  bf.dense_dp_max_rows = 0;
  bf.search_order = ucp::SearchOrder::kBestFirst;
  const CoverSolution v2 = ucp::solve_exact(p, bf);
  const CoverSolution v2_named = ucp::solve_exact(p, backend_options("bnb_v2"));
  EXPECT_EQ(v2.backend, "bnb_v2");
  EXPECT_EQ(v2_named.chosen, v2.chosen);
  EXPECT_EQ(v2_named.nodes_explored, v2.nodes_explored);
}

TEST(CoverSolverHeuristic, SelectsByInstanceFeatures) {
  EXPECT_EQ(ucp::select_cover_backend(10, 100, 0.30), "dense_dp");
  EXPECT_EQ(ucp::select_cover_backend(24, 10, 0.90), "dense_dp");
  EXPECT_EQ(ucp::select_cover_backend(100, 1000, 0.05), "hitting_set");
  EXPECT_EQ(ucp::select_cover_backend(100, 300, 0.05), "bnb_v2");  // too narrow
  EXPECT_EQ(ucp::select_cover_backend(100, 1000, 0.50), "bnb_v2");  // too dense

  const CoverProblem small = corpus_problem(10, 30, 0.30, 101);
  const CoverSolution s = ucp::solve_exact(small, backend_options("heuristic"));
  EXPECT_TRUE(s.optimal);
  EXPECT_EQ(s.backend, "dense_dp");
}

TEST(HittingSet, ProvesOptimumAndHonoursWarmStart) {
  const CoverProblem p = corpus_problem(12, 200, 0.25, 103);
  const CoverSolution reference = ucp::solve_exact(p, {});
  const CoverSolution hs = ucp::solve_hitting_set(p, {});
  EXPECT_TRUE(hs.optimal);
  EXPECT_NEAR(hs.cost, reference.cost, 1e-9);
  EXPECT_TRUE(p.covers_all(hs.chosen));
  EXPECT_DOUBLE_EQ(hs.lower_bound, hs.cost);
  EXPECT_GT(hs.nodes_explored, 0u);
}

TEST(HittingSet, InfeasibleAndTrivialInstances) {
  CoverProblem empty(0);
  const CoverSolution e = ucp::solve_hitting_set(empty, {});
  EXPECT_TRUE(e.optimal);
  EXPECT_DOUBLE_EQ(e.cost, 0.0);

  CoverProblem infeasible(2);
  infeasible.add_column({0}, 1.0);  // row 1 uncoverable
  const CoverSolution inf = ucp::solve_hitting_set(infeasible, {});
  EXPECT_FALSE(inf.optimal);
  EXPECT_TRUE(std::isinf(inf.cost));
  EXPECT_TRUE(inf.chosen.empty());
}

// The CoverStop contract across every backend: the same budget produces the
// same stop reason, a feasible incumbent, and an honest lower bound.
TEST(CoverStopContract, DeadlineStopsEveryBackend) {
  const CoverProblem p = corpus_problem(15, 60, 0.25, 106);
  const double optimum = ucp::solve_exact(p, {}).cost;
  for (const char* name :
       {"dense_dp", "bnb_v2", "hitting_set", "parallel_bnb", "dfs_v1"}) {
    BnbOptions o = backend_options(name);
    o.deadline = support::Deadline::expire_after_checks(0);
    const CoverSolution s = ucp::solve_exact(p, o);
    EXPECT_FALSE(s.optimal) << name;
    EXPECT_EQ(s.stop, CoverStop::kDeadline) << name;
    EXPECT_TRUE(s.deadline_expired) << name;
    EXPECT_TRUE(p.covers_all(s.chosen)) << name;  // incumbent survives
    EXPECT_GT(s.lower_bound, 0.0) << name;
    EXPECT_LE(s.lower_bound, optimum + 1e-9) << name;
  }
}

TEST(CoverStopContract, NodeBudgetStopsEveryBackend) {
  const CoverProblem p = corpus_problem(15, 60, 0.25, 106);
  const double optimum = ucp::solve_exact(p, {}).cost;
  for (const char* name :
       {"dense_dp", "bnb_v2", "hitting_set", "parallel_bnb", "dfs_v1"}) {
    BnbOptions o = backend_options(name);
    o.max_nodes = 1;
    const CoverSolution s = ucp::solve_exact(p, o);
    EXPECT_FALSE(s.optimal) << name;
    EXPECT_EQ(s.stop, CoverStop::kNodeBudget) << name;
    EXPECT_FALSE(s.deadline_expired) << name;
    EXPECT_TRUE(p.covers_all(s.chosen)) << name;
    EXPECT_GE(s.lower_bound, 0.0) << name;
    EXPECT_LE(s.lower_bound, optimum + 1e-9) << name;
  }
}

TEST(CoverStopContract, FrontierCapStopsFrontierBackends) {
  const CoverProblem p = corpus_problem(15, 60, 0.25, 106);
  const double optimum = ucp::solve_exact(p, {}).cost;
  // Only the frontier-carrying engines can hit the cap; dense_dp and the
  // recursive dfs_v1 have no frontier by construction.
  for (const char* name : {"bnb_v2", "hitting_set", "parallel_bnb"}) {
    BnbOptions o = backend_options(name);
    o.best_first_max_frontier = 1;
    const CoverSolution s = ucp::solve_exact(p, o);
    EXPECT_FALSE(s.optimal) << name;
    EXPECT_EQ(s.stop, CoverStop::kFrontierCap) << name;
    EXPECT_TRUE(p.covers_all(s.chosen)) << name;
    EXPECT_LE(s.lower_bound, optimum + 1e-9) << name;
  }
}

TEST(CoverStopContract, InjectedFaultAbortsEveryBackend) {
  const CoverProblem p = corpus_problem(15, 60, 0.25, 106);
  for (const char* name :
       {"dense_dp", "bnb_v2", "hitting_set", "parallel_bnb", "dfs_v1"}) {
    auto plan = support::FaultPlan::parse("ucp.frontier@1");
    ASSERT_TRUE(plan.ok());
    support::FaultInjector injector(*plan);
    BnbOptions o = backend_options(name);
    o.fault_injector = &injector;
    const CoverSolution s = ucp::solve_exact(p, o);
    EXPECT_FALSE(s.optimal) << name;
    EXPECT_EQ(s.stop, CoverStop::kAborted) << name;
  }
}

// The determinism contract: the portfolio winner, cost, and exact cover are
// a pure function of (instance, options) -- identical across pool sizes and
// repeated runs.
TEST(PortfolioDeterminism, WinnerIsThreadCountInvariant) {
  const struct {
    int rows, cols;
    double density;
    unsigned seed;
    const char* expected_winner;
  } kCases[] = {
      {10, 30, 0.30, 101, "dense_dp"},
      {15, 60, 0.25, 106, "dense_dp"},
      // dense_dp inapplicable above kDenseDpMaxRows rows: the next racing
      // prover in priority order wins.
      {30, 120, 0.15, 131, "bnb_v2"},
  };
  for (const auto& c : kCases) {
    const CoverProblem p = corpus_problem(c.rows, c.cols, c.density, c.seed);
    const double optimum = ucp::solve_exact(p, {}).cost;
    CoverSolution base;
    for (const int workers : {1, 2, 8}) {
      support::ThreadPool pool(static_cast<std::size_t>(workers));
      for (int rep = 0; rep < 2; ++rep) {
        BnbOptions o = backend_options("portfolio");
        o.pool = &pool;
        const CoverSolution s = ucp::solve_exact(p, o);
        ASSERT_TRUE(s.optimal)
            << c.rows << "x" << c.cols << " workers=" << workers;
        EXPECT_NEAR(s.cost, optimum, 1e-9);
        EXPECT_EQ(s.backend, c.expected_winner)
            << c.rows << "x" << c.cols << " workers=" << workers;
        if (workers == 1 && rep == 0) {
          base = s;
        } else {
          EXPECT_EQ(s.chosen, base.chosen)
              << c.rows << "x" << c.cols << " workers=" << workers;
          EXPECT_DOUBLE_EQ(s.cost, base.cost);
          EXPECT_EQ(s.backend, base.backend);
        }
      }
    }
  }
}

TEST(PortfolioDeterminism, ReportsMembersInPriorityOrder) {
  const CoverProblem p = corpus_problem(10, 30, 0.30, 101);
  support::ThreadPool pool(2);
  BnbOptions o = backend_options("portfolio");
  o.pool = &pool;
  const CoverSolution s = ucp::solve_exact(p, o);
  // parallel_bnb opts out of racing; everything else is applicable here.
  const std::vector<std::string> expected = {"dense_dp", "bnb_v2",
                                             "hitting_set", "dfs_v1"};
  ASSERT_EQ(s.portfolio.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(s.portfolio[i].backend, expected[i]);
  }
  EXPECT_EQ(s.portfolio[0].outcome, ucp::BackendOutcome::kWon);
  EXPECT_EQ(s.portfolio[0].backend, s.backend);
  EXPECT_EQ(ucp::to_string(ucp::BackendOutcome::kWon), "won");
  EXPECT_EQ(ucp::to_string(ucp::BackendOutcome::kLost), "lost");
  EXPECT_EQ(ucp::to_string(ucp::BackendOutcome::kCancelled), "cancelled");
  EXPECT_EQ(ucp::to_string(ucp::BackendOutcome::kDegraded), "degraded");
}

TEST(PortfolioDeterminism, ArmedInjectorForcesSequentialRace) {
  // With a fault plan armed the portfolio must not race (racing members
  // would consume the plan's hit schedule in pool-timing order). The @1
  // rule kills the highest-priority member (dense_dp); the injector is
  // then spent, so bnb_v2 -- next in fixed priority -- proves and wins.
  // Fully deterministic because the members run in priority order.
  const CoverProblem p = corpus_problem(10, 30, 0.30, 101);
  const double optimum = ucp::solve_exact(p, {}).cost;
  support::ThreadPool pool(4);
  for (int rep = 0; rep < 2; ++rep) {
    auto plan = support::FaultPlan::parse("ucp.frontier@1");
    ASSERT_TRUE(plan.ok());
    support::FaultInjector injector(*plan);
    BnbOptions o = backend_options("portfolio");
    o.pool = &pool;
    o.fault_injector = &injector;
    const CoverSolution s = ucp::solve_exact(p, o);
    EXPECT_TRUE(s.optimal);
    EXPECT_NEAR(s.cost, optimum, 1e-9);
    EXPECT_EQ(s.backend, "bnb_v2");
    ASSERT_GE(s.portfolio.size(), 2u);
    EXPECT_EQ(s.portfolio[0].backend, "dense_dp");
    EXPECT_EQ(s.portfolio[0].outcome, ucp::BackendOutcome::kDegraded);
    EXPECT_EQ(s.portfolio[0].stop, CoverStop::kAborted);
    EXPECT_EQ(s.portfolio[1].outcome, ucp::BackendOutcome::kWon);
  }
}

TEST(PortfolioDeterminism, NoPoolRunsSequentiallyAndStillWins) {
  const CoverProblem p = corpus_problem(15, 60, 0.25, 106);
  const double optimum = ucp::solve_exact(p, {}).cost;
  const CoverSolution s = ucp::solve_exact(p, backend_options("portfolio"));
  EXPECT_TRUE(s.optimal);
  EXPECT_NEAR(s.cost, optimum, 1e-9);
  EXPECT_EQ(s.backend, "dense_dp");
  // Sequential mode stops after the first prover: lower-priority members
  // never start and report as cancelled.
  bool saw_won = false;
  for (const ucp::PortfolioMember& m : s.portfolio) {
    if (m.outcome == ucp::BackendOutcome::kWon) {
      saw_won = true;
    } else if (saw_won) {
      EXPECT_EQ(m.outcome, ucp::BackendOutcome::kCancelled) << m.backend;
    }
  }
  EXPECT_TRUE(saw_won);
}

}  // namespace
