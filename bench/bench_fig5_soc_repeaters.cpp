// Reproduces Figure 5: optimal repeater insertion on the critical channels
// of a multi-processor MPEG-4 decoder (0.18u, l_crit = 0.6 mm, Manhattan
// distance, cost per arc = floor((|dx| + |dy|) / l_crit)). Paper result: a
// total of 55 repeaters.
//
// The floorplan is a documented substitution (DESIGN.md #5.1): the paper's
// is proprietary, so a canonical MPEG-4 decoder floorplan with the same
// total segmentation demand drives the identical code path.
#include <cmath>
#include <cstdio>

#include "commlib/standard_libraries.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/mpeg4_soc.hpp"

int main() {
  using namespace cdcs;
  const double l_crit = workloads::kMpeg4CritLengthMm;
  const model::ConstraintGraph cg = workloads::mpeg4_soc();
  const commlib::Library lib = commlib::soc_library(l_crit);

  const synth::SynthesisResult result = synth::synthesize(cg, lib).value();

  std::puts("=== Figure 5: MPEG-4 decoder repeater insertion ===");
  std::printf("%-22s %10s %12s %12s\n", "channel", "d [mm]", "paper-cost",
              "repeaters");
  int failures = 0;
  std::size_t total = 0;
  for (const synth::Candidate* c : result.selected()) {
    if (!c->ptp) {
      std::puts("FAIL: a merging was selected; Fig. 5 is pure segmentation");
      ++failures;
      continue;
    }
    const double d = c->ptp->span;
    // The paper's closed-form arc cost.
    const int paper_cost = static_cast<int>(std::floor(d / l_crit));
    const int repeaters = (c->ptp->segments - 1) * c->ptp->parallel;
    total += repeaters;
    std::printf("%-22s %10.2f %12d %12d\n",
                cg.channel(c->arcs.front()).name.c_str(), d, paper_cost,
                repeaters);
    if (repeaters != paper_cost) {
      std::printf("FAIL: %s disagrees with the closed-form cost\n",
                  cg.channel(c->arcs.front()).name.c_str());
      ++failures;
    }
  }
  const std::size_t inserted =
      result.implementation->count_nodes(commlib::NodeKind::kRepeater);
  std::printf("%-22s %10s %12s %12zu\n", "TOTAL", "", "", total);
  std::printf("\nInserted repeater vertices: %zu;  paper total: 55\n", inserted);
  if (inserted != 55 || total != 55) {
    std::puts("FAIL: repeater total does not match the paper");
    ++failures;
  }
  if (!result.validation.ok()) {
    std::puts("FAIL: implementation does not validate");
    ++failures;
  }
  std::puts(failures == 0 ? "\nFigure 5 result: REPRODUCED"
                          : "\nFigure 5 result: FAILED");
  return failures == 0 ? 0 : 1;
}
