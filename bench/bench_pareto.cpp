// Extension bench: the cost-latency Pareto frontier of the WAN instance.
//
// Delay-constrained synthesis (SynthesisOptions::delay_budget) filters
// structures whose slowest channel would exceed a latency budget. Sweeping
// the budget maps the frontier:
//
//   * unconstrained / loose budgets admit Figure 4's merged architecture
//     (cheapest, but the merged channels detour through the split);
//   * as the budget tightens past the detour latency, the merging dissolves
//     and cost steps up to the point-to-point optimum;
//   * below the longest channel's direct line the instance is infeasible.
//
// Delay model: 1 time unit per km (propagation-dominated), 0.5 per
// communication node.
#include <cstdio>

#include "commlib/standard_libraries.hpp"
#include "sim/delay.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/wan2002.hpp"

int main() {
  using namespace cdcs;
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  const sim::DelayModel m{.link_delay_per_length = 1.0, .node_delay = 0.5};

  std::puts("=== Cost-latency Pareto frontier (WAN, Fig. 4 instance) ===\n");
  std::printf("%10s | %12s | %12s | %s\n", "budget", "cost", "worst-delay",
              "architecture");

  int failures = 0;
  double prev_cost = -1.0;
  for (double budget : {200.0, 130.0, 110.0, 102.0, 100.8, 100.4}) {
    synth::SynthesisOptions opts;
    opts.delay_budget = {{m, budget}};
    opts.drop_unprofitable = true;
    const auto synthesis = synth::synthesize(cg, lib, opts);
    if (synthesis.ok()) {
      const synth::SynthesisResult& result = *synthesis;
      const sim::DelayReport delays =
          sim::analyze_delays(*result.implementation, m);
      std::size_t merged = 0;
      for (const synth::Candidate* c : result.selected()) {
        if (!c->ptp) merged += c->arcs.size();
      }
      std::printf("%10.1f | %12.0f | %12.2f | %zu arcs merged%s\n", budget,
                  result.total_cost, delays.max_delay, merged,
                  merged == 0 ? " (all direct)" : "");
      if (!result.validation.ok() ||
          !delays.violations(budget + 1e-6).empty()) {
        std::printf("FAIL: budget %.1f violated\n", budget);
        ++failures;
      }
      // Tightening the budget can only cost more (monotone frontier).
      if (prev_cost > 0.0 && result.total_cost < prev_cost - 1e-6) {
        std::printf("FAIL: cost decreased as the budget tightened\n");
        ++failures;
      }
      prev_cost = result.total_cost;
    } else {
      std::printf("%10.1f | %12s | %12s | infeasible\n", budget, "-", "-");
    }
  }

  // Below the longest direct line (a5 = 100.18) nothing can work.
  {
    synth::SynthesisOptions opts;
    opts.delay_budget = {{m, 95.0}};
    const auto synthesis = synth::synthesize(cg, lib, opts);
    if (synthesis.ok() ||
        synthesis.status().code() != support::ErrorCode::kInfeasible) {
      std::puts("FAIL: sub-direct budget should be infeasible");
      ++failures;
    } else {
      std::printf("%10.1f | %12s | %12s | infeasible (below direct line)\n",
                  95.0, "-", "-");
    }
  }

  std::puts(
      "\nThe frontier is a staircase: the 28%-cheaper merged architecture\n"
      "costs ~0.5 km of detour plus one junction hop on its slowest\n"
      "channel; once the budget denies that slack, the synthesizer pays\n"
      "the point-to-point premium for the direct lines.");
  std::puts(failures == 0 ? "\nPareto sweep: PASS" : "\nPareto sweep: FAIL");
  return failures == 0 ? 0 : 1;
}
