// Extension bench: scaling of candidate generation with instance size, and
// an ablation of the paper's pruning machinery (Lemmas 3.1/3.2, Theorems
// 3.1/3.2). The paper's central efficiency claim is that the sufficient
// non-mergeability conditions keep the candidate set S small enough that
// "the entire solution space is explored" at tractable cost; this bench
// quantifies that on random clustered WAN-like instances.
//
// Columns: |A| = constraint arcs; candidates = UCP columns produced;
// subsets = k-subsets examined by the Fig. 2 loop; time = candidate
// generation + UCP solve wall clock.
#include <chrono>
#include <cstdio>
#include <utility>

#include "commlib/standard_libraries.hpp"
#include "synth/candidate_generator.hpp"
#include "synth/synthesizer.hpp"
#include "ucp/cover.hpp"
#include "workloads/random_gen.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Row {
  std::size_t candidates{0};
  std::size_t subsets{0};
  double cost{0.0};
  double lower_bound{0.0};  ///< solver root bound; == cost on exact runs
  double millis{0.0};
  bool truncated{false};
};

Row run(const cdcs::model::ConstraintGraph& cg,
        const cdcs::commlib::Library& lib,
        const cdcs::synth::SynthesisOptions& opts) {
  const auto t0 = Clock::now();
  const cdcs::synth::SynthesisResult result =
      cdcs::synth::synthesize(cg, lib, opts).value();
  const auto t1 = Clock::now();
  return Row{result.candidates().size(),
             result.candidate_set.stats.subsets_examined, result.total_cost,
             result.degradation.lower_bound,
             std::chrono::duration<double, std::milli>(t1 - t0).count(),
             result.candidate_set.stats.enumeration_truncated};
}

}  // namespace

int main() {
  using namespace cdcs;
  const commlib::Library lib = commlib::wan_library();

  std::puts(
      "=== Scaling: full algorithm (all pruning on) vs ablations ===\n"
      "Random 3-cluster WAN-like instances; merge size capped at 6 for the\n"
      "no-pruning ablation only where noted.\n");
  std::printf("%4s | %10s %10s %9s %10s %10s %6s | %10s %10s | %10s %10s %8s\n",
              "|A|", "cand(full)", "subs(full)", "t_full", "cost(full)",
              "lb(full)", "gap%", "cand(noT31)", "subs(noT31)", "cand(none)",
              "subs(none)", "t_none");

  for (int n : {6, 8, 10, 12, 14, 16}) {
    workloads::RandomWorkloadParams params;
    params.seed = 1000 + n;
    params.num_clusters = 3;
    params.ports_per_cluster = 3;
    params.num_channels = n;
    const model::ConstraintGraph cg = workloads::random_workload(params);

    // All configurations drop priced-but-unprofitable mergings (a merging
    // costing at least the sum of its members' point-to-point optima can
    // never improve a cover, so exactness is preserved); without this the
    // UCP column count -- not the algorithm -- dominates the measurement.
    synth::SynthesisOptions full;  // all pruning on
    full.drop_unprofitable = true;
    const Row full_row = run(cg, lib, full);

    synth::SynthesisOptions no_t31 = full;
    no_t31.use_theorem31 = false;
    const Row no_t31_row = run(cg, lib, no_t31);

    synth::SynthesisOptions none = full;
    none.use_lemma31 = false;
    none.use_lemma32 = false;
    none.use_theorem31 = false;
    none.use_theorem32 = false;
    none.max_merge_k = 6;  // unpruned enumeration is exponential
    const Row none_row = run(cg, lib, none);

    // Cost vs lower bound: both come from the cover solver's root bound --
    // equal on exact runs, and the gap quantifies any anytime degradation.
    std::printf(
        "%4d | %10zu %10zu %8.1fms %10.2f %10.2f %5.2f%% | %10zu %10zu | "
        "%10zu %10zu %6.1fms%s\n",
        n, full_row.candidates, full_row.subsets, full_row.millis,
        full_row.cost, full_row.lower_bound,
        cdcs::ucp::optimality_gap(full_row.cost, full_row.lower_bound) * 100.0,
        no_t31_row.candidates, no_t31_row.subsets, none_row.candidates,
        none_row.subsets, none_row.millis,
        none_row.truncated ? " (truncated)" : "");

    // All configurations are exact (pruning only removes provably
    // suboptimal candidates), so costs must agree where the capped
    // no-pruning run could still express the optimum.
    if (std::abs(full_row.cost - no_t31_row.cost) > 1e-6 * full_row.cost) {
      std::printf("WARNING: Theorem 3.1 ablation changed the optimum "
                  "(%.2f vs %.2f)\n",
                  full_row.cost, no_t31_row.cost);
    }
  }

  std::puts(
      "\n=== Pivot-rule ablation (Lemma 3.2): candidates per k, n = 12 ===");
  {
    workloads::RandomWorkloadParams params;
    params.seed = 77;
    params.num_clusters = 3;
    params.ports_per_cluster = 3;
    params.num_channels = 12;
    const model::ConstraintGraph cg = workloads::random_workload(params);
    for (const auto& [rule, name] :
         {std::pair{synth::PivotRule::kMinDistance, "min-distance"},
          std::pair{synth::PivotRule::kAnyPivot, "any-pivot"},
          std::pair{synth::PivotRule::kMaxIndex, "max-index"}}) {
      synth::SynthesisOptions opts;
      opts.pivot_rule = rule;
      const synth::CandidateSet set =
          synth::generate_candidates(cg, lib, opts).value();
      std::printf("%14s:", name);
      for (std::size_t k = 2; k < set.stats.survivors_per_k.size(); ++k) {
        std::printf(" k%zu=%zu", k, set.stats.survivors_per_k[k]);
      }
      std::printf("  (columns=%zu)\n", set.candidates.size());
    }
  }
  return 0;
}
