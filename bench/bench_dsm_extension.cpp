// Extension bench (paper Sec. 4-5 outlook): latency-insensitive repeater
// planning across technology nodes. As feature size shrinks, the critical
// length l_crit shrinks and -- more dramatically -- the wire length
// reachable in one clock period collapses, so stateless buffers must be
// progressively replaced by stateful relay stations (latches) that pipeline
// the channel. The paper's Fig. 5 instance (the MPEG-4 decoder's critical
// channels) is re-planned at 0.18u, 0.13u and 0.09u equivalents.
//
// The 0.18u row must degenerate to the paper's result: 55 repeaters, all
// stateless, no added pipeline latency.
#include <cstdio>

#include "synth/latency_insensitive.hpp"
#include "workloads/mpeg4_soc.hpp"

int main() {
  using namespace cdcs;
  const model::ConstraintGraph cg = workloads::mpeg4_soc();

  struct TechNode {
    const char* name;
    synth::DsmParams params;
  };
  // l_crit scales roughly with feature size; clock reach collapses faster
  // because clock frequency rises as wires get slower per mm.
  const TechNode nodes[] = {
      {"0.18u", {.l_crit = 0.60, .clock_reach = 12.0, .buffer_cost = 1.0,
                 .latch_cost = 3.0}},
      {"0.13u", {.l_crit = 0.45, .clock_reach = 3.0, .buffer_cost = 1.0,
                 .latch_cost = 3.0}},
      {"0.09u", {.l_crit = 0.30, .clock_reach = 1.5, .buffer_cost = 1.0,
                 .latch_cost = 3.0}},
  };

  std::puts("=== Latency-insensitive repeater planning, MPEG-4 decoder ===");
  std::printf("%6s %8s %8s | %8s %8s %8s | %10s\n", "tech", "l_crit",
              "reach", "buffers", "latches", "maxdepth", "cost");
  int failures = 0;
  for (const TechNode& node : nodes) {
    const synth::DsmPlan plan = synth::dsm_plan(cg, node.params);
    int max_depth = 0;
    for (const synth::DsmPlanRow& row : plan.rows) {
      max_depth = std::max(max_depth, row.segmentation.pipeline_depth);
    }
    std::printf("%6s %7.2f %8.1f | %8d %8d %8d | %10.0f\n", node.name,
                node.params.l_crit, node.params.clock_reach,
                plan.total_buffers, plan.total_latches, max_depth,
                plan.total_cost);
    if (std::string_view(node.name) == "0.18u") {
      if (plan.total_buffers != 55 || plan.total_latches != 0) {
        std::puts("FAIL: 0.18u row does not degenerate to Fig. 5's 55 "
                  "stateless repeaters");
        ++failures;
      }
    }
  }

  std::puts("\nPer-channel detail at 0.09u:");
  const synth::DsmPlan dsm = synth::dsm_plan(cg, nodes[2].params);
  for (const synth::DsmPlanRow& row : dsm.rows) {
    std::printf("  %-22s d=%5.2f  buffers=%2d latches=%d depth=+%d cycles\n",
                row.channel.c_str(), row.length, row.segmentation.buffers,
                row.segmentation.latches, row.segmentation.pipeline_depth);
  }
  std::puts(failures == 0 ? "\nDSM extension: PASS" : "\nDSM extension: FAIL");
  return failures == 0 ? 0 : 1;
}
