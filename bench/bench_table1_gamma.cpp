// Reproduces Table 1 of the paper: the Constrained Distance Sum Matrix
// Gamma(a_i, a_j) = d(a_i) + d(a_j) for the WAN example, in kilometers,
// truncated to two decimals exactly as printed in the paper.
#include <cmath>
#include <cstdio>
#include <string>

#include "io/tables.hpp"
#include "workloads/wan2002.hpp"

int main() {
  using namespace cdcs;
  const model::ConstraintGraph cg = workloads::wan2002();
  const synth::ArcPairMatrix gamma = synth::gamma_matrix(cg);

  std::puts("=== Table 1: Gamma(a_i, a_j) = d(a_i) + d(a_j)  [km] ===");
  std::fputs(io::format_arc_pair_matrix(cg, gamma).c_str(), stdout);

  // Paper values for the upper triangle, row-major (Table 1, DAC 2002).
  static const char* kPaper[] = {
      "10.38", "14.05", "102.02", "105.18", "103.61", "8.60",   "8.60",
      "14.44", "102.40", "105.56", "104.00", "8.99",   "8.99",
      "106.07", "109.23", "107.67", "12.66",  "12.66",
      "197.20", "195.63", "100.62", "100.62",
      "198.79", "103.78", "103.78",
      "102.22", "102.22",
      "7.21"};
  // The paper truncates values to two decimals (e.g. 10.3852 -> 10.38)
  // except for a single entry, Gamma(a1,a5) = 105.1798, which it prints
  // rounded as 105.18; entries within half an ulp-of-print are accepted as
  // "rounded" matches and reported separately.
  const auto arcs = cg.arcs();
  std::size_t idx = 0;
  std::size_t truncated_matches = 0;
  std::size_t rounded_matches = 0;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    for (std::size_t j = i + 1; j < arcs.size(); ++j, ++idx) {
      const double value = gamma(arcs[i], arcs[j]);
      const std::string ours = io::truncate_decimals(value);
      if (ours == kPaper[idx]) {
        ++truncated_matches;
      } else if (std::abs(value - std::stod(kPaper[idx])) <= 0.005 + 1e-9) {
        ++rounded_matches;
        std::printf("note (%s,%s): paper rounds %.4f to %s\n",
                    cg.channel(arcs[i]).name.c_str(),
                    cg.channel(arcs[j]).name.c_str(), value, kPaper[idx]);
      } else {
        ++mismatches;
        std::printf("MISMATCH (%s,%s): paper %s vs computed %s\n",
                    cg.channel(arcs[i]).name.c_str(),
                    cg.channel(arcs[j]).name.c_str(), kPaper[idx],
                    ours.c_str());
      }
    }
  }
  std::printf(
      "\nPaper comparison: %zu/%zu entries match (%zu truncated, %zu "
      "rounded)%s\n",
      idx - mismatches, idx, truncated_matches, rounded_matches,
      mismatches == 0 ? " -- exact reproduction" : "");
  return mismatches == 0 ? 0 : 1;
}
