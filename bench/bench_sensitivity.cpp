// Extension bench: sensitivity of the Figure 4 result to the library's
// price ratio. The WAN optimum merges {a4,a5,a6} onto an optical trunk
// because hauling three 10 Mbps flows over one $4/m fiber beats three $2/m
// radios ($6/m of corridor). Sweeping the optical price maps the crossover:
//
//   * below ~$6/m the trunk also wants to swallow more traffic;
//   * at exactly $6/m the merging ties three radios;
//   * above it the architecture degenerates to all point-to-point.
//
// The bench asserts the paper's operating point ($4/m) sits strictly inside
// the merging regime and that the structural transition happens at the
// predicted ratio.
#include <cstdio>

#include "commlib/standard_libraries.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/wan2002.hpp"

int main() {
  using namespace cdcs;
  const model::ConstraintGraph cg = workloads::wan2002();

  std::puts(
      "=== Fig. 4 sensitivity: optical price sweep (radio fixed at $2/m) "
      "===\n");
  std::printf("%12s | %12s | %10s | %s\n", "optical $/m", "total cost",
              "merged", "selected structure");

  int failures = 0;
  bool merged_at_4 = false;
  bool ptp_at_8 = false;
  for (double dollars_per_m : {2.5, 3.0, 4.0, 5.0, 5.9, 6.1, 7.0, 8.0}) {
    commlib::Library lib("wan-sweep");
    lib.add_link(commlib::Link{.name = "radio",
                               .max_span =
                                   std::numeric_limits<double>::infinity(),
                               .bandwidth = 11.0,
                               .cost_per_length = 2000.0});
    lib.add_link(commlib::Link{.name = "optical",
                               .max_span =
                                   std::numeric_limits<double>::infinity(),
                               .bandwidth = 1000.0,
                               .cost_per_length = dollars_per_m * 1000.0});
    lib.add_node(commlib::Node{
        .name = "junction", .kind = commlib::NodeKind::kSwitch, .cost = 0.0});

    synth::SynthesisOptions opts;
    opts.drop_unprofitable = true;
    const synth::SynthesisResult result = synth::synthesize(cg, lib, opts).value();
    if (!result.validation.ok()) {
      std::printf("FAIL: $%.1f/m result does not validate\n", dollars_per_m);
      ++failures;
    }

    std::size_t merged_arcs = 0;
    std::string structure;
    for (const synth::Candidate* c : result.selected()) {
      if (c->ptp) continue;
      merged_arcs += c->arcs.size();
      if (!structure.empty()) structure += " + ";
      structure += "merge {";
      for (std::size_t i = 0; i < c->arcs.size(); ++i) {
        structure += (i ? "," : "") + cg.channel(c->arcs[i]).name;
      }
      structure += c->merging ? "} star" : (c->chain ? "} chain" : "} tree");
    }
    if (structure.empty()) structure = "all point-to-point radio";
    std::printf("%12.1f | %12.0f | %10zu | %s\n", dollars_per_m,
                result.total_cost, merged_arcs, structure.c_str());
    if (dollars_per_m == 4.0 && merged_arcs == 3) merged_at_4 = true;
    if (dollars_per_m == 8.0 && merged_arcs == 0) ptp_at_8 = true;
  }

  if (!merged_at_4) {
    std::puts("FAIL: the paper's $4/m point does not merge {a4,a5,a6}");
    ++failures;
  }
  if (!ptp_at_8) {
    std::puts("FAIL: expensive optical should kill all mergings");
    ++failures;
  }
  std::puts(
      "\nCrossover: with 3x10 Mbps aggregated, the trunk competes with\n"
      "3 radios at $6/m of corridor; beyond it (plus spoke overhead) the\n"
      "point-to-point architecture takes over -- the \"who wins where\"\n"
      "boundary behind the paper's headline result.");
  std::puts(failures == 0 ? "\nSensitivity sweep: PASS"
                          : "\nSensitivity sweep: FAIL");
  return failures == 0 ? 0 : 1;
}
