// Reproduces the Section 4 candidate-generation narrative for the WAN
// example (Fig. 3):
//   * "arc a8 is not mergeable with any other arc" -> eliminated at k = 2;
//   * "the set S contains thirteen 2-way, twenty-one 3-way, sixteen 4-way,
//     and five 5-way candidate arc mergings".
// Our exact reconstruction reproduces 13 / 21 / 16 with the single-pivot
// (minimum-distance) application of Lemma 3.2. At k = 5 the sufficient
// conditions published in the paper leave SIX candidates (all 5-subsets of
// {a1..a6}) plus the full 6-way merging, while the paper reports five and
// claims a7 joins no 4-way merging -- a claim inconsistent with its own
// 4-way count of sixteen (only fifteen 4-subsets avoid a7 among the seven
// arcs that survive k = 2). The +-1 divergence is attributable to the
// unpublished pruning detail in the authors' technical report; this bench
// prints both and flags the known deltas. It also reports the strictly
// stronger (still sound) every-pivot application for comparison.
#include <cstdio>

#include "commlib/standard_libraries.hpp"
#include "synth/candidate_generator.hpp"
#include "workloads/wan2002.hpp"

int main() {
  using namespace cdcs;
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();

  struct PaperRow {
    std::size_t k;
    std::size_t count;
  };
  static constexpr PaperRow kPaperCounts[] = {{2, 13}, {3, 21}, {4, 16}, {5, 5}};

  int failures = 0;
  for (const synth::PivotRule rule :
       {synth::PivotRule::kMinDistance, synth::PivotRule::kAnyPivot}) {
    synth::SynthesisOptions opts;
    opts.pivot_rule = rule;
    const synth::CandidateSet set = synth::generate_candidates(cg, lib, opts).value();
    const auto& s = set.stats;

    std::printf("--- Lemma 3.2 pivot rule: %s ---\n",
                rule == synth::PivotRule::kMinDistance
                    ? "min-distance (paper-matching)"
                    : "every pivot (strongest sound)");
    std::printf("%4s %10s %10s\n", "k", "survivors", "paper");
    for (std::size_t k = 2; k < s.survivors_per_k.size(); ++k) {
      if (s.survivors_per_k[k] == 0 && k > 6) continue;
      const char* paper = "-";
      char buf[16] = "-";
      for (const PaperRow& row : kPaperCounts) {
        if (row.k == k) {
          std::snprintf(buf, sizeof buf, "%zu", row.count);
          paper = buf;
        }
      }
      std::printf("%4zu %10zu %10s\n", k, s.survivors_per_k[k], paper);
    }
    for (std::size_t i = 0; i < s.arc_eliminated_after_k.size(); ++i) {
      if (s.arc_eliminated_after_k[i] > 0) {
        std::printf("  %s eliminated after k=%d (Theorem 3.1)\n",
                    cg.channel(model::ArcId{static_cast<std::uint32_t>(i)})
                        .name.c_str(),
                    s.arc_eliminated_after_k[i]);
      }
    }

    if (rule == synth::PivotRule::kMinDistance) {
      // The reproduction contract: 13 / 21 / 16 exactly; a8 out at k = 2.
      if (s.survivors_per_k[2] != 13 || s.survivors_per_k[3] != 21 ||
          s.survivors_per_k[4] != 16) {
        std::puts("FAIL: k=2..4 candidate counts do not match the paper");
        ++failures;
      }
      if (s.arc_eliminated_after_k[7] != 2) {
        std::puts("FAIL: a8 was not eliminated at k=2");
        ++failures;
      }
      if (s.survivors_per_k[5] != 5) {
        std::printf(
            "known delta: %zu 5-way candidates vs the paper's 5 (see header "
            "comment)\n",
            s.survivors_per_k[5]);
      }
    }
    std::puts("");
  }
  std::puts(failures == 0 ? "Figure 3 candidate statistics: REPRODUCED"
                          : "Figure 3 candidate statistics: FAILED");
  return failures == 0 ? 0 : 1;
}
