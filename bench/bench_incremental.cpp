// Edit-replay timings for the incremental synthesis engine
// (synth/engine.hpp): how much faster is Engine::apply() on a small edit
// than throwing the session away and calling synthesize() from scratch?
//
// Each scenario replays a deterministic edit sequence twice over the same
// graph states -- once through a long-lived Engine (persistent pricing
// cache + cover-solution reuse), once from scratch per step -- and reports
// total wall-clock, per-step averages, the speedup ratio, and the pricing
// hit rate. The engine runs under its default WarmPolicy::kBitIdentical,
// so both columns compute the exact same results (the oracle in
// tests/test_incremental.cpp); only the wall-clock may differ.
//
// The machine-readable companion (and the CI acceptance gate: >= 5x on
// WAN single-arc edits) lives in bench_perf_summary.cpp's
// "incremental_replay" section; this binary is the human-readable view.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "commlib/standard_libraries.hpp"
#include "io/edit_script.hpp"
#include "synth/engine.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/mpeg4_soc.hpp"
#include "workloads/wan2002.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct Scenario {
  const char* name;
  cdcs::model::ConstraintGraph graph;
  cdcs::commlib::Library library;
  std::string script;  // io/edit_script.hpp text, one batch per `solve`
  int repeat;          // replay the whole script this many times
};

void run(const Scenario& sc) {
  using namespace cdcs;
  const auto parsed = io::read_edit_script_from_string(sc.script);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: bad script: %s\n", sc.name,
                 parsed.status().to_string().c_str());
    std::exit(2);
  }

  synth::Engine engine(sc.graph, sc.library);
  if (!engine.resynthesize().ok()) std::exit(2);

  double warm_ms = 0.0;
  double cold_ms = 0.0;
  std::size_t steps = 0;
  for (int rep = 0; rep < sc.repeat; ++rep) {
    for (const model::Delta& batch : parsed->batches) {
      auto t0 = Clock::now();
      const auto warm = engine.apply(batch);
      warm_ms += ms_since(t0);
      if (!warm.ok()) {
        std::fprintf(stderr, "%s: apply failed: %s\n", sc.name,
                     warm.status().to_string().c_str());
        std::exit(2);
      }

      t0 = Clock::now();
      const auto cold = synth::synthesize(engine.graph(), sc.library);
      cold_ms += ms_since(t0);
      if (!cold.ok() || cold->total_cost != warm->total_cost) {
        std::fprintf(stderr, "%s: incremental/scratch cost mismatch\n",
                     sc.name);
        std::exit(1);
      }
      ++steps;
    }
  }

  const auto stats = engine.stats();
  const double hits = static_cast<double>(stats.pricing_hits);
  const double lookups =
      hits + static_cast<double>(stats.pricing_misses);
  std::printf(
      "%-22s %5zu steps  incremental %8.2f ms (%6.3f ms/step)  "
      "scratch %8.2f ms (%6.3f ms/step)  speedup %5.2fx  hit rate %.3f  "
      "cover reuse %zu/%zu\n",
      sc.name, steps, warm_ms, warm_ms / static_cast<double>(steps), cold_ms,
      cold_ms / static_cast<double>(steps),
      cold_ms / warm_ms, lookups > 0 ? hits / lookups : 0.0,
      stats.cover_reuses, stats.cover_reuses + stats.cover_solves);
}

}  // namespace

int main() {
  using namespace cdcs;

  // Single-arc bandwidth toggles: the bread-and-butter incremental case --
  // one dirty arc per step, every other subset served from the cache.
  // After the first full cycle every pricing input has been seen, so the
  // steady state is the interesting number; `repeat` provides it.
  Scenario wan_single{
      "wan/single-arc",
      workloads::wan2002(),
      commlib::wan_library(),
      "set-bandwidth a3 25\nsolve\n"
      "set-bandwidth a3 10\nsolve\n"
      "set-bandwidth a7 40\nsolve\n"
      "set-bandwidth a7 10\nsolve\n",
      10};

  // Port moves: a one-port edit dirties its whole incident star.
  Scenario wan_move{
      "wan/move-port",
      workloads::wan2002(),
      commlib::wan_library(),
      "move-port B 5 3\nsolve\n"
      "move-port B 4 3\nsolve\n",
      10};

  // Structural churn: add/remove cycles force arc renumbering (and a new
  // UCP row set) every step; the cache still absorbs the unchanged core.
  Scenario wan_churn{
      "wan/churn",
      workloads::wan2002(),
      commlib::wan_library(),
      "add-arc x1 D A 5\nadd-arc x2 E B 5\nsolve\n"
      "remove-arc x1\nremove-arc x2\nsolve\n",
      10};

  // SoC floorplan iteration (Manhattan norm, 14 channels).
  Scenario soc_move{
      "soc/move-port",
      workloads::mpeg4_soc(),
      commlib::soc_library(),
      "move-port dma 2.60 3.30\nsolve\n"
      "move-port dma 2.45 3.40\nsolve\n",
      10};

  run(wan_single);
  run(wan_move);
  run(wan_churn);
  run(soc_move);
  return 0;
}
