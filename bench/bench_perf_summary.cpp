// Machine-readable performance summary for CI trend tracking.
//
// Emits one JSON document (stdout, or the file named by argv[1]) with the
// numbers the performance work is judged on (see docs/performance.md):
//   * end-to-end WAN synthesis wall-clock across pricing thread counts,
//     plus a warm-pricing-cache run (all best-of-N, all cost-checked
//     against the serial run -- a determinism violation fails the tool);
//   * branch-and-bound nodes_explored on the bench_ucp_solver corpus
//     (must never grow: the bitset reductions are semantics-preserving);
//   * pricing-cache hit accounting for a repeated synthesize() call;
//   * the partitioned-synthesis scaling gate on a pinned 1k-arc geo-WAN
//     instance (stitched cost, summed cluster lower bound, optimality gap,
//     thread-count determinism, and the exact-vs-partitioned speedup).
//
// CI redirects this to BENCH_pr.json and uploads it as an artifact; the
// checked-in copy at the repo root records the numbers for this tree on
// the container it was developed on (see "host" below for context).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "commlib/standard_libraries.hpp"
#include "support/metrics.hpp"
#include "support/obs_context.hpp"
#include "support/profiler.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"
#include "synth/engine.hpp"
#include "synth/partition.hpp"
#include "synth/pricing_cache.hpp"
#include "synth/synthesizer.hpp"
#include "ucp/bnb.hpp"
#include "ucp/cover_solver.hpp"
#include "workloads/fingerprint.hpp"
#include "workloads/scale_gen.hpp"
#include "workloads/wan2002.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

std::uint64_t counter_total(const cdcs::support::MetricsSnapshot& s,
                            const char* name) {
  const auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

/// Same generator as bench_ucp_solver.cpp / Exact.SeedCorpusNodeCounts.
cdcs::ucp::CoverProblem random_problem(int rows, int cols, double density,
                                       unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> weight(0.5, 10.0);
  cdcs::ucp::CoverProblem p(rows);
  for (int j = 0; j < cols; ++j) {
    std::vector<std::size_t> covered;
    for (int r = 0; r < rows; ++r) {
      if (unit(rng) < density) covered.push_back(r);
    }
    if (covered.empty()) covered.push_back(j % rows);
    p.add_column(covered, weight(rng));
  }
  for (int r = 0; r < rows; ++r) {
    p.add_column({static_cast<std::size_t>(r)}, 12.0);
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdcs;

  std::FILE* out = stdout;
  if (argc > 1) {
    out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
  }

  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  int failures = 0;

  // Baseline for the trailing "metrics" section: everything the bench does
  // below accumulates into the global registry; the delta is this run's
  // totals. Timing stays DISABLED (no set_timing_enabled) so only
  // deterministic event counts land in the registry -- wall-clock numbers
  // come from the explicit Clock measurements, never from metrics.
  const support::MetricsSnapshot metrics_baseline =
      support::MetricsRegistry::global().snapshot();

  std::fprintf(out, "{\n  \"host\": {\"hardware_threads\": %u},\n",
               std::thread::hardware_concurrency());

  // --- WAN end-to-end synthesis across thread counts -------------------
  // hardware_threads is repeated here so the sweep is self-describing: on a
  // 1-core container the thread counts are purely oversubscription and the
  // regression checker must not (and does not) expect the sweep to scale.
  const double serial_cost = synth::synthesize(cg, lib).value().total_cost;
  std::fprintf(out,
               "  \"wan_synthesis\": {\n    \"total_cost\": %.6f,\n"
               "    \"hardware_threads\": %u,\n",
               serial_cost, std::thread::hardware_concurrency());
  constexpr int kReps = 5;
  synth::PricingCache cache;
  bool first = true;
  std::fprintf(out, "    \"wall_ms_best_of_%d\": {", kReps);
  for (const auto& [key, threads, use_cache] :
       {std::tuple{"threads_1", 1, false}, std::tuple{"threads_2", 2, false},
        std::tuple{"threads_4", 4, false}, std::tuple{"threads_8", 8, false},
        std::tuple{"threads_8_warm_cache", 8, true}}) {
    synth::SynthesisOptions options;
    options.threads = threads;
    if (use_cache) options.pricing_cache = &cache;
    double best_ms = 1e100;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = Clock::now();
      const synth::SynthesisResult r =
          synth::synthesize(cg, lib, options).value();
      best_ms = std::min(best_ms, ms_since(t0));
      if (r.total_cost != serial_cost) {
        std::fprintf(stderr, "DETERMINISM VIOLATION: %s cost %.9f != %.9f\n",
                     key, r.total_cost, serial_cost);
        ++failures;
      }
    }
    std::fprintf(out, "%s\n      \"%s\": %.3f", first ? "" : ",", key,
                 best_ms);
    first = false;
  }
  std::fprintf(out, "\n    }\n  },\n");

  // --- UCP solver v2 vs legacy on the bench corpus ----------------------
  // Every configuration must prove the SAME cost (solver v2's optimality
  // contract); v2's Lagrangian bounds + reduced-cost fixing are judged on
  // node and wall-clock reduction against the legacy (v1) configuration.
  // The wall numbers are machine-dependent, but the v2/legacy RATIO is not,
  // which is what the acceptance gate below and the CI regression checker
  // (tools/check_bench_regression.py) compare.
  ucp::BnbOptions force_bnb;
  force_bnb.dense_dp_max_rows = 0;
  ucp::BnbOptions legacy = force_bnb;
  legacy.use_lagrangian_bound = false;
  legacy.use_reduced_cost_fixing = false;
  ucp::BnbOptions best_first = force_bnb;
  best_first.search_order = ucp::SearchOrder::kBestFirst;
  std::fprintf(out, "  \"ucp_bnb\": [\n");
  first = true;
  for (const auto& [rows, cols, density] :
       {std::tuple{10, 30, 0.30}, std::tuple{12, 200, 0.25},
        std::tuple{15, 60, 0.25}, std::tuple{15, 1000, 0.20},
        std::tuple{20, 100, 0.20}, std::tuple{20, 2000, 0.15}}) {
    const ucp::CoverProblem p =
        random_problem(rows, cols, density, 91 + rows);
    auto t0 = Clock::now();
    const ucp::CoverSolution v1 = ucp::solve_exact(p, legacy);
    const double t_v1 = ms_since(t0);
    t0 = Clock::now();
    const ucp::CoverSolution s = ucp::solve_exact(p, force_bnb);
    const double t_ms = ms_since(t0);
    const ucp::CoverSolution bf = ucp::solve_exact(p, best_first);

    if (std::abs(v1.cost - s.cost) > 1e-9 ||
        std::abs(v1.cost - bf.cost) > 1e-9) {
      std::fprintf(stderr,
                   "COST MISMATCH on %dx%d: legacy %.9f, v2 %.9f, "
                   "best-first %.9f\n",
                   rows, cols, v1.cost, s.cost, bf.cost);
      ++failures;
    }
    // Acceptance gate for the v2 solver on the hardest instance: at least
    // 10x fewer nodes and 5x less wall-clock than the legacy tree.
    if (rows == 20 && cols == 2000) {
      if (s.nodes_explored * 10 > v1.nodes_explored) {
        std::fprintf(stderr,
                     "NODE REGRESSION on 20x2000: v2 %zu nodes vs legacy "
                     "%zu (< 10x reduction)\n",
                     s.nodes_explored, v1.nodes_explored);
        ++failures;
      }
      if (t_ms * 5.0 > t_v1) {
        std::fprintf(stderr,
                     "WALL REGRESSION on 20x2000: v2 %.1fms vs legacy "
                     "%.1fms (< 5x speedup)\n",
                     t_ms, t_v1);
        ++failures;
      }
    }
    std::fprintf(out,
                 "%s    {\"rows\": %d, \"cols\": %d, \"density\": %.2f, "
                 "\"measured_density\": %.4f, \"backend\": \"%s\", "
                 "\"cost\": %.6f, \"nodes_explored\": %zu, "
                 "\"wall_ms\": %.3f, \"legacy_nodes\": %zu, "
                 "\"legacy_wall_ms\": %.3f, \"best_first_nodes\": %zu, "
                 "\"optimal\": %s}",
                 first ? "" : ",\n", rows, cols, density, s.density,
                 s.backend.c_str(), s.cost, s.nodes_explored, t_ms,
                 v1.nodes_explored, t_v1, bf.nodes_explored,
                 s.optimal ? "true" : "false");
    first = false;
  }
  std::fprintf(out, "\n  ],\n");

  // --- Incremental engine: single-arc edit replay vs from-scratch ------
  // The acceptance gate for the incremental session (synth/engine.hpp):
  // replaying single-arc bandwidth edits through Engine::apply() must be
  // at least 5x faster than from-scratch synthesize() on the same edited
  // graphs, while producing bit-identical results (the oracle in
  // tests/test_incremental.cpp; costs are cross-checked here too). Both
  // sides of the ratio come from this run on this machine, so the number
  // is machine-independent -- the regression checker compares it like the
  // v2/legacy wall ratio.
  {
    synth::Engine engine(cg, lib);
    if (!engine.resynthesize().ok()) {
      std::fprintf(stderr, "INCREMENTAL: baseline resynthesize failed\n");
      ++failures;
    }
    const char* kToggles[][2] = {{"a3", "25"}, {"a3", "10"},
                                 {"a7", "40"}, {"a7", "10"}};
    constexpr int kIncReps = 10;  // steady state after the first cycle
    double warm_ms = 0.0;
    double scratch_ms = 0.0;
    std::size_t steps = 0;
    for (int rep = 0; rep < kIncReps; ++rep) {
      for (const auto& [arc, bw] : kToggles) {
        model::Delta d;
        d.ops.push_back(model::SetBandwidthOp{arc, std::atof(bw)});
        auto t0 = Clock::now();
        const auto warm = engine.apply(d);
        warm_ms += ms_since(t0);
        t0 = Clock::now();
        const auto scratch = synth::synthesize(engine.graph(), lib);
        scratch_ms += ms_since(t0);
        if (!warm.ok() || !scratch.ok() ||
            warm->total_cost != scratch->total_cost) {
          std::fprintf(stderr,
                       "INCREMENTAL DETERMINISM VIOLATION at step %zu\n",
                       steps);
          ++failures;
        }
        ++steps;
      }
    }
    const double speedup = warm_ms > 0.0 ? scratch_ms / warm_ms : 0.0;
    const auto session = engine.stats();
    const double lookups = static_cast<double>(session.pricing_hits +
                                               session.pricing_misses);
    std::fprintf(out,
                 "  \"incremental_replay\": {\"workload\": \"wan_single_arc\", "
                 "\"steps\": %zu, \"incremental_ms\": %.3f, "
                 "\"scratch_ms\": %.3f, \"speedup\": %.3f, "
                 "\"pricing_hit_rate\": %.4f},\n",
                 steps, warm_ms, scratch_ms, speedup,
                 lookups > 0.0
                     ? static_cast<double>(session.pricing_hits) / lookups
                     : 0.0);
    if (speedup < 5.0) {
      std::fprintf(stderr,
                   "INCREMENTAL REGRESSION: single-arc edit replay only "
                   "%.2fx faster than from-scratch (< 5x)\n",
                   speedup);
      ++failures;
    }
  }

  // --- Pricing cache accounting across repeated runs -------------------
  synth::PricingCache sweep_cache;
  synth::SynthesisOptions cached;
  cached.pricing_cache = &sweep_cache;
  (void)synth::synthesize(cg, lib, cached).value();
  const auto cold = sweep_cache.stats();
  const synth::SynthesisResult warm_run =
      synth::synthesize(cg, lib, cached).value();
  const auto warm = sweep_cache.stats();
  const auto& warm_stats = warm_run.candidate_set.stats;
  std::fprintf(out,
               "  \"pricing_cache\": {\"entries\": %zu, "
               "\"cold_run_misses\": %zu, \"warm_run_hits\": %zu, "
               "\"warm_run_misses\": %zu},\n",
               warm.entries, cold.misses, warm_stats.pricing_cache_hits,
               warm_stats.pricing_cache_misses);
  if (warm_stats.pricing_cache_misses != 0) {
    std::fprintf(stderr, "CACHE REGRESSION: warm run missed %zu subsets\n",
                 warm_stats.pricing_cache_misses);
    ++failures;
  }

  // --- Registry totals across the whole bench run ----------------------
  // Whole-process deltas from the metrics registry (support/metrics.hpp):
  // every number here is an event COUNT, fully deterministic for this
  // fixed workload, so check_bench_regression.py can compare it exactly
  // across machines. cache_hit_rate is hits/(hits+misses) over every
  // cache-backed synthesize() above (warm-cache sweep + incremental replay
  // + the pricing_cache section).
  {
    const support::MetricsSnapshot m =
        support::MetricsRegistry::global().snapshot().delta_since(
            metrics_baseline);
    const std::uint64_t hits = counter_total(m, "synth.pricing_cache.hits");
    const std::uint64_t misses =
        counter_total(m, "synth.pricing_cache.misses");
    const std::uint64_t lookups = hits + misses;
    std::fprintf(
        out,
        "  \"metrics\": {\"synth_runs\": %llu, "
        "\"subsets_examined\": %llu, \"ucp_solves\": %llu, "
        "\"ucp_dense_dp_solves\": %llu, \"ucp_nodes_total\": %llu, "
        "\"ucp_rc_fixed_columns\": %llu, \"engine_applies\": %llu, "
        "\"cache_hits\": %llu, \"cache_misses\": %llu, "
        "\"cache_hit_rate\": %.4f, "
        "\"fault_fires\": %llu, \"journal_appends\": %llu},\n",
        static_cast<unsigned long long>(counter_total(m, "synth.runs")),
        static_cast<unsigned long long>(
            counter_total(m, "synth.subsets_examined")),
        static_cast<unsigned long long>(counter_total(m, "ucp.solves")),
        static_cast<unsigned long long>(counter_total(m, "ucp.dp_solves")),
        static_cast<unsigned long long>(
            counter_total(m, "ucp.nodes_explored")),
        static_cast<unsigned long long>(
            counter_total(m, "ucp.rc_fixed_columns")),
        static_cast<unsigned long long>(counter_total(m, "engine.applies")),
        static_cast<unsigned long long>(hits),
        static_cast<unsigned long long>(misses),
        lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups)
                    : 0.0,
        // Robustness guard (docs/robustness.md): the bench harness must
        // never run with fault injection armed or journaling on -- both
        // totals are pinned at zero by tools/check_bench_regression.py.
        static_cast<unsigned long long>(counter_total(m, "fault.fires")),
        static_cast<unsigned long long>(
            counter_total(m, "io.journal.appends")));
  }

  // --- In-process profiler over one scoped serial synthesize ------------
  // A fresh trace session + observability scope around a single 1-thread
  // WAN synthesize. The per-(scope, span-name) COUNTS are a deterministic
  // function of this fixed workload and are diffed exactly by
  // tools/check_bench_regression.py; the *_us timings and latency buckets
  // are machine noise and are ignored by the checker. Timing stays
  // disabled -- the trace layer stamps its own timestamps.
  {
    support::ScopedTraceSession session;
    support::ObsContext bench_scope("bench=wan_profile");
    (void)synth::synthesize(cg, lib).value();
    std::ostringstream profile_json;
    support::write_profile_json(profile_json,
                                support::build_profile(session.sink()));
    std::fprintf(out, "  \"profile\": %s,\n", profile_json.str().c_str());
  }

  // --- Cover-solver backend matrix --------------------------------------
  // Deliberately after the metrics delta (the extra solves here must not
  // perturb the exact-match event counts). Every registered backend plus
  // the portfolio runs the pinned solver corpus; everything emitted is a
  // deterministic pure function of the instance (costs, node counts, the
  // portfolio winner), so tools/check_bench_regression.py diffs the whole
  // section exactly (costs with a float tolerance). Gates:
  //   * every applicable backend proves the reference cost;
  //   * the portfolio winner, cost, and cover are identical across pool
  //     sizes 1/2/8 and across repeated runs (the determinism contract of
  //     ucp/cover_solver.hpp).
  {
    std::fprintf(out, "  \"cover_solver_matrix\": [\n");
    first = true;
    for (const auto& [rows, cols, density] :
         {std::tuple{10, 30, 0.30}, std::tuple{12, 200, 0.25},
          std::tuple{15, 60, 0.25}, std::tuple{20, 100, 0.20},
          std::tuple{20, 2000, 0.15}}) {
      const ucp::CoverProblem p =
          random_problem(rows, cols, density, 91 + rows);
      const ucp::CoverSolution reference = ucp::solve_exact(p, {});
      std::fprintf(out,
                   "%s    {\"rows\": %d, \"cols\": %d, \"density\": %.2f, "
                   "\"cost\": %.6f, \"backends\": {",
                   first ? "" : ",\n", rows, cols, density, reference.cost);
      first = false;
      bool first_backend = true;
      for (const ucp::CoverSolver* solver : ucp::registered_cover_solvers()) {
        if (!solver->applicable(p)) continue;
        ucp::BnbOptions opts;
        opts.backend = solver->name();
        const ucp::CoverSolution s = ucp::solve_exact(p, opts);
        if (!s.optimal || std::abs(s.cost - reference.cost) > 1e-9) {
          std::fprintf(stderr,
                       "COVER SOLVER MATRIX VIOLATION: %s on %dx%d cost "
                       "%.9f (optimal=%d) != reference %.9f\n",
                       s.backend.c_str(), rows, cols, s.cost,
                       s.optimal ? 1 : 0, reference.cost);
          ++failures;
        }
        std::fprintf(out, "%s\"%s\": {\"nodes\": %zu, \"optimal\": %s}",
                     first_backend ? "" : ", ", s.backend.c_str(),
                     s.nodes_explored, s.optimal ? "true" : "false");
        first_backend = false;
      }

      // Portfolio determinism sweep: pool sizes 1/2/8, two runs each.
      ucp::CoverSolution base;
      bool deterministic = true;
      for (const int workers : {1, 2, 8}) {
        support::ThreadPool pool(static_cast<std::size_t>(workers));
        for (int rep = 0; rep < 2; ++rep) {
          ucp::BnbOptions opts;
          opts.backend = "portfolio";
          opts.pool = &pool;
          const ucp::CoverSolution r = ucp::solve_exact(p, opts);
          if (workers == 1 && rep == 0) {
            base = r;
          } else if (r.backend != base.backend || r.cost != base.cost ||
                     r.chosen != base.chosen) {
            deterministic = false;
          }
        }
      }
      if (!deterministic || !base.optimal ||
          std::abs(base.cost - reference.cost) > 1e-9) {
        std::fprintf(stderr,
                     "PORTFOLIO DETERMINISM VIOLATION on %dx%d: winner "
                     "'%s', cost %.9f vs reference %.9f, deterministic=%d\n",
                     rows, cols, base.backend.c_str(), base.cost,
                     reference.cost, deterministic ? 1 : 0);
        ++failures;
      }
      std::fprintf(out,
                   "}, \"portfolio\": {\"winner\": \"%s\", \"cost\": %.6f, "
                   "\"deterministic\": %s}}",
                   base.backend.c_str(), base.cost,
                   deterministic ? "true" : "false");
    }
    std::fprintf(out, "\n  ],\n");
  }

  // --- Parallel branch-and-bound on the hardest corpus instance ---------
  // Also deliberately after the metrics delta: free-run node counts are
  // schedule-dependent. Acceptance gates (docs/performance.md section 8):
  //   * rounds mode is bit-identical (cost, cover, nodes, explored-set
  //     fingerprint) at 1, 2, and 8 threads, and matches the serial cost;
  //   * free-run proves the same optimal cost at 1 and 4 threads;
  //   * free-run speedup at 4 threads, tiered by the host: >= 1.5x with
  //     4+ hardware threads, >= 1.0x (no slowdown beyond noise) with 2-3,
  //     informational only on a 1-core host (CI container) -- a speedup
  //     claim measured under pure oversubscription would be fiction.
  {
    const ucp::CoverProblem p = random_problem(20, 2000, 0.15, 111);
    ucp::BnbOptions serial_opt = force_bnb;
    serial_opt.search_order = ucp::SearchOrder::kBestFirst;
    const ucp::CoverSolution serial = ucp::solve_exact(p, serial_opt);

    ucp::BnbOptions rounds_opt = serial_opt;
    rounds_opt.mode = ucp::BnbMode::kRounds;
    ucp::CoverSolution rounds_base;
    bool rounds_identical = true;
    for (const int threads : {1, 2, 8}) {
      rounds_opt.threads = threads;
      const ucp::CoverSolution r = ucp::solve_exact(p, rounds_opt);
      if (threads == 1) {
        rounds_base = r;
      } else if (r.cost != rounds_base.cost ||
                 r.chosen != rounds_base.chosen ||
                 r.nodes_explored != rounds_base.nodes_explored ||
                 r.explored_fingerprint != rounds_base.explored_fingerprint) {
        rounds_identical = false;
      }
    }
    if (!rounds_identical ||
        std::abs(rounds_base.cost - serial.cost) > 1e-9) {
      std::fprintf(stderr,
                   "PARALLEL BNB ROUNDS VIOLATION on 20x2000: identical=%d, "
                   "cost %.9f vs serial %.9f\n",
                   rounds_identical ? 1 : 0, rounds_base.cost, serial.cost);
      ++failures;
    }

    ucp::BnbOptions free_opt = serial_opt;
    free_opt.mode = ucp::BnbMode::kFreeRun;
    bool free_optimal = true;
    double free_cost = 0.0;
    double t_free_1 = 1e100, t_free_4 = 1e100;
    for (const int threads : {1, 4}) {
      free_opt.threads = threads;
      double& best = threads == 1 ? t_free_1 : t_free_4;
      for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = Clock::now();
        const ucp::CoverSolution f = ucp::solve_exact(p, free_opt);
        best = std::min(best, ms_since(t0));
        free_cost = f.cost;
        if (!f.optimal || std::abs(f.cost - serial.cost) > 1e-9) {
          free_optimal = false;
        }
      }
    }
    if (!free_optimal) {
      std::fprintf(stderr,
                   "PARALLEL BNB FREE-RUN VIOLATION on 20x2000: cost %.9f "
                   "vs serial %.9f (or optimality not proven)\n",
                   free_cost, serial.cost);
      ++failures;
    }

    const unsigned hw = std::thread::hardware_concurrency();
    const double free_speedup = t_free_4 > 0.0 ? t_free_1 / t_free_4 : 0.0;
    const double required_speedup = hw >= 4 ? 1.5 : (hw >= 2 ? 1.0 : 0.0);
    const bool speedup_enforced = hw >= 2;
    const bool free_speedup_ok =
        !speedup_enforced || free_speedup >= required_speedup;
    if (!free_speedup_ok) {
      std::fprintf(stderr,
                   "PARALLEL BNB SPEEDUP REGRESSION: free-run 4-thread "
                   "speedup %.2fx < required %.2fx on a %u-thread host\n",
                   free_speedup, required_speedup, hw);
      ++failures;
    }

    std::fprintf(
        out,
        "  \"parallel_bnb\": {\"rows\": 20, \"cols\": 2000, "
        "\"serial_cost\": %.6f, \"rounds_cost\": %.6f, "
        "\"rounds_nodes\": %zu, \"rounds_fingerprint\": \"%016llx\", "
        "\"rounds_threads_identical\": %s, \"free_cost\": %.6f, "
        "\"free_optimal\": %s, \"free_wall_ms_t1\": %.3f, "
        "\"free_wall_ms_t4\": %.3f, \"free_speedup_t4\": %.3f, "
        "\"speedup_enforced\": %s, \"free_speedup_ok\": %s},\n",
        serial.cost, rounds_base.cost, rounds_base.nodes_explored,
        static_cast<unsigned long long>(rounds_base.explored_fingerprint),
        rounds_identical ? "true" : "false", free_cost,
        free_optimal ? "true" : "false", t_free_1, t_free_4, free_speedup,
        speedup_enforced ? "true" : "false",
        free_speedup_ok ? "true" : "false");
  }

  // --- Partitioned synthesis scaling gate -------------------------------
  // Deliberately AFTER the metrics delta above: the exact-path comparison
  // below is deadline-bounded, so its event counts (subsets examined, UCP
  // nodes) depend on machine speed and must not land in the exact-match
  // "metrics" section. Everything emitted here is either machine-
  // independent (stitched cost, lower bound, cluster shape, fingerprint)
  // or a same-machine ratio/flag (the exact-vs-partitioned comparison).
  //
  // Acceptance gates (this binary exits non-zero on violation):
  //   * the 1k-arc geo-WAN instance synthesizes end-to-end through the
  //     partitioned path with optimality gap <= 10% of the summed
  //     per-cluster lower bounds;
  //   * the result is bit-identical at 1, 2, and 8 worker threads;
  //   * the exact monolithic path, given a 10x-partitioned-wall budget on
  //     the same instance, either blows the deadline or is >= 10x slower.
  {
    const model::ConstraintGraph big =
        workloads::geo_wan(workloads::GeoWanParams::sized(1000, 7));
    // Input canary: the cost comparison in check_bench_regression.py is
    // only sound while the generator is bit-stable across machines.
    constexpr std::uint64_t kPinnedFingerprint = 0x65b4e049bc0a41e8ull;
    const std::uint64_t fp = workloads::fingerprint(big);
    if (fp != kPinnedFingerprint) {
      std::fprintf(stderr,
                   "GENERATOR DRIFT: geo_wan(1000, seed 7) fingerprint "
                   "%016llx != pinned %016llx\n",
                   static_cast<unsigned long long>(fp),
                   static_cast<unsigned long long>(kPinnedFingerprint));
      ++failures;
    }

    synth::SynthesisOptions popts;
    popts.partitioning.enabled = true;
    const synth::Partition part =
        synth::partition_graph(big, popts.partitioning);

    double best_ms = 1e100;
    double cost = 0.0, lower_bound = 0.0, gap = 0.0;
    std::vector<std::size_t> chosen;
    bool threads_identical = true;
    for (const int threads : {1, 2, 8}) {
      popts.threads = threads;
      const auto t0 = Clock::now();
      const synth::SynthesisResult r =
          synth::synthesize(big, lib, popts).value();
      best_ms = std::min(best_ms, ms_since(t0));
      if (!r.validation.ok()) {
        std::fprintf(stderr, "PARTITIONED: validation failed at %d threads\n",
                     threads);
        ++failures;
      }
      if (threads == 1) {
        cost = r.total_cost;
        lower_bound = r.degradation.lower_bound;
        gap = r.degradation.optimality_gap;
        chosen = r.cover.chosen;
      } else if (r.total_cost != cost || r.cover.chosen != chosen) {
        std::fprintf(stderr,
                     "PARTITIONED DETERMINISM VIOLATION: %d threads cost "
                     "%.9f != %.9f (or cover differs)\n",
                     threads, r.total_cost, cost);
        threads_identical = false;
        ++failures;
      }
    }
    if (gap > 0.10) {
      std::fprintf(stderr,
                   "PARTITIONED GAP REGRESSION: optimality gap %.4f "
                   "exceeds the 10%% acceptance bound\n",
                   gap);
      ++failures;
    }

    synth::SynthesisOptions eopts;
    const double exact_budget_ms = std::max(10.0 * best_ms, 1000.0);
    eopts.deadline = support::Deadline::after_ms(exact_budget_ms);
    const auto t0 = Clock::now();
    const synth::SynthesisResult exact =
        synth::synthesize(big, lib, eopts).value();
    const double exact_ms = ms_since(t0);
    const bool exact_expired =
        exact.degradation.stage != synth::SynthesisStage::kExact;
    const bool exact_timeout_or_10x =
        exact_expired || exact_ms >= 10.0 * best_ms;
    if (!exact_timeout_or_10x) {
      std::fprintf(stderr,
                   "PARTITIONED SPEEDUP REGRESSION: exact path finished in "
                   "%.1fms vs partitioned %.1fms (< 10x, no timeout) -- "
                   "partitioning is not earning its approximation\n",
                   exact_ms, best_ms);
      ++failures;
    }

    std::fprintf(
        out,
        "  \"partitioned_scaling\": {\"workload\": \"geo_wan\", "
        "\"arcs\": %zu, \"seed\": 7, \"fingerprint\": \"%016llx\", "
        "\"clusters\": %zu, \"interior_clusters\": %zu, "
        "\"boundary_arcs\": %zu, \"cost\": %.6f, \"lower_bound\": %.6f, "
        "\"optimality_gap\": %.6f, \"threads_identical\": %s, "
        "\"partitioned_wall_ms\": %.3f, \"exact_budget_ms\": %.1f, "
        "\"exact_wall_ms\": %.3f, \"exact_deadline_expired\": %s, "
        "\"exact_timeout_or_10x\": %s}\n}\n",
        big.num_channels(), static_cast<unsigned long long>(fp),
        part.clusters.size(), part.num_interior, part.boundary_arcs.size(),
        cost, lower_bound, gap, threads_identical ? "true" : "false",
        best_ms, exact_budget_ms, exact_ms,
        exact_expired ? "true" : "false",
        exact_timeout_or_10x ? "true" : "false");
  }

  if (out != stdout) std::fclose(out);
  return failures == 0 ? 0 : 1;
}
