// Extension bench: end-to-end optimality certification. On random small
// instances (where exhaustive set-partition enumeration is feasible) the
// paper's pipeline -- pruned candidate generation + exact UCP -- must match
// the true optimum exactly; the point-to-point and greedy-merge baselines
// show how much the exact exploration buys.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "baseline/baselines.hpp"
#include "commlib/standard_libraries.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/random_gen.hpp"

int main() {
  using namespace cdcs;
  const commlib::Library lib = commlib::wan_library();

  std::puts("=== Optimality: pipeline vs exhaustive partition optimum ===");
  std::printf("%5s | %12s %12s %12s %12s | %8s %8s\n", "seed", "exhaustive",
              "pipeline", "greedy", "ptp", "agree", "t_pipe");

  int agreements = 0;
  int trials = 0;
  double sum_greedy_gap = 0.0;
  double sum_ptp_gap = 0.0;
  for (int seed = 0; seed < 15; ++seed) {
    workloads::RandomWorkloadParams params;
    params.seed = static_cast<std::uint64_t>(seed) * 131 + 5;
    params.num_clusters = 2;
    params.ports_per_cluster = 3;
    params.num_channels = 7;
    params.cluster_radius = 4.0;
    params.area_extent = 150.0;
    const model::ConstraintGraph cg = workloads::random_workload(params);

    const baseline::BaselineResult exact =
        baseline::exhaustive_partition_optimum(cg, lib);
    const auto t0 = std::chrono::steady_clock::now();
    const synth::SynthesisResult pipeline = synth::synthesize(cg, lib).value();
    const double t_pipe =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    const baseline::BaselineResult greedy =
        baseline::greedy_merge_baseline(cg, lib);
    const baseline::BaselineResult ptp =
        baseline::point_to_point_baseline(cg, lib);

    const bool agree =
        std::abs(pipeline.total_cost - exact.cost) <= 1e-6 * exact.cost;
    agreements += agree;
    ++trials;
    sum_greedy_gap += (greedy.cost - exact.cost) / exact.cost;
    sum_ptp_gap += (ptp.cost - exact.cost) / exact.cost;
    std::printf("%5d | %12.0f %12.0f %12.0f %12.0f | %8s %6.1fms\n", seed,
                exact.cost, pipeline.total_cost, greedy.cost, ptp.cost,
                agree ? "yes" : "NO", t_pipe);
  }
  std::printf(
      "\nPipeline matched the exhaustive optimum on %d/%d instances.\n"
      "Average gap above optimum: greedy-merge %.2f%%, point-to-point "
      "%.2f%%.\n",
      agreements, trials, 100.0 * sum_greedy_gap / trials,
      100.0 * sum_ptp_gap / trials);
  return agreements == trials ? 0 : 1;
}
