// Extension bench: the Def 2.8 capacity ambiguity, quantified.
//
// The paper's definition only requires a merged common path to carry the
// MAX of the merged bandwidths, but its mux description and its WAN result
// imply SUM semantics (see DESIGN.md #5.2). This bench synthesizes every
// built-in workload under both policies and reports the cost gap and the
// structural difference -- i.e. how much "cheaper" the literal reading is,
// and why it cannot be what the authors computed (under max semantics the
// WAN would merge everything onto shared radio trunks, contradicting
// Figure 4's optical trunk).
#include <cstdio>

#include "commlib/standard_libraries.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/lan.hpp"
#include "workloads/mcm.hpp"
#include "workloads/mpeg4_soc.hpp"
#include "workloads/wan2002.hpp"

namespace {

using namespace cdcs;

struct Run {
  double cost{0.0};
  std::size_t merged_arcs{0};
  bool valid{false};
};

Run run(const model::ConstraintGraph& cg, const commlib::Library& lib,
        model::CapacityPolicy policy) {
  synth::SynthesisOptions opts;
  opts.policy = policy;
  opts.drop_unprofitable = true;
  const synth::SynthesisResult result = synth::synthesize(cg, lib, opts).value();
  Run r;
  r.cost = result.total_cost;
  r.valid = result.validation.ok();
  for (const synth::Candidate* c : result.selected()) {
    if (!c->ptp) r.merged_arcs += c->arcs.size();
  }
  return r;
}

}  // namespace

int main() {
  std::puts(
      "=== CapacityPolicy: physical (sum) vs literal Def 2.8 (max) ===\n");
  std::printf("%10s | %12s %9s | %12s %9s | %8s\n", "workload", "sum-cost",
              "merged", "max-cost", "merged", "gap%");

  int failures = 0;
  const auto report = [&](const char* name, const model::ConstraintGraph& cg,
                          const commlib::Library& lib) {
    const Run sum = run(cg, lib, model::CapacityPolicy::kSharedSum);
    const Run max = run(cg, lib, model::CapacityPolicy::kMaxPerConstraint);
    std::printf("%10s | %12.1f %8zu | %12.1f %8zu | %7.1f%%\n", name,
                sum.cost, sum.merged_arcs, max.cost, max.merged_arcs,
                100.0 * (sum.cost - max.cost) / sum.cost);
    if (!sum.valid || !max.valid) {
      std::printf("FAIL: %s did not validate under its own policy\n", name);
      ++failures;
    }
    // The literal policy can only be cheaper: it relaxes the trunk demand.
    if (max.cost > sum.cost + 1e-6) {
      std::printf("FAIL: %s max-policy cost exceeds sum-policy cost\n", name);
      ++failures;
    }
  };

  report("wan", workloads::wan2002(), commlib::wan_library());
  report("soc", workloads::mpeg4_soc(), commlib::soc_library(0.6));
  report("lan", workloads::campus_lan(), commlib::lan_library());
  report("mcm", workloads::mcm_board(), commlib::mcm_library());

  std::puts(
      "\nReading: the max policy merges far more aggressively (it shares\n"
      "trunks for free). On the WAN it would abandon Figure 4's optical\n"
      "trunk for shared radio chains -- evidence the paper computed with\n"
      "sum semantics, which this library therefore defaults to.");
  std::puts(failures == 0 ? "\nPolicy comparison: PASS"
                          : "\nPolicy comparison: FAIL");
  return failures == 0 ? 0 : 1;
}
