// Extension bench: merging-structure ablation (star trunk-and-split vs
// daisy-chain drops). The paper's Def 2.8 merging has one common path; this
// library prices two realizations and lets the covering step pick. Two
// sweeps map the territory:
//
//   (A) geometry sweep at 15 Mbps per channel (above the 11 Mbps radio, so
//       every spoke pays optical-class rates): with its bandwidth-
//       downgrading segments and Steiner-like refined drop points, the
//       chain wins every shape, by the largest margin on corridors.
//
//   (B) bandwidth sweep on the cluster shape (the paper's WAN geometry):
//       while per-channel demand fits the cheap radio link, the star's
//       radio spokes are unbeatable; once demand crosses the radio's
//       11 Mbps, spokes pay trunk rates and the chain takes over. The
//       crossover tracks the link-technology boundary, exactly the effect
//       that drives the paper's Figure 4 (10 Mbps spokes -> star).
#include <cmath>
#include <cstdio>

#include "commlib/standard_libraries.hpp"
#include "synth/synthesizer.hpp"

#include <algorithm>

namespace {

using namespace cdcs;

struct Costs {
  double star;
  double chain;
  double tree;
  double ptp;
};

Costs price_instance(double angle_deg, double bandwidth,
                     const commlib::Library& lib) {
  const double rad = angle_deg * 3.14159265358979 / 180.0;
  const double dx = 6.0 * std::cos(rad);
  const double dy = 6.0 * std::sin(rad);
  model::ConstraintGraph cg;
  const model::VertexId src = cg.add_port("s", {0, 0});
  const model::VertexId t1 = cg.add_port("t1", {20.0 - dx, -dy});
  const model::VertexId t2 = cg.add_port("t2", {20.0, 0});
  const model::VertexId t3 = cg.add_port("t3", {20.0 + dx, dy});
  cg.add_channel(src, t1, bandwidth);
  cg.add_channel(src, t2, bandwidth);
  cg.add_channel(src, t3, bandwidth);
  const std::vector<model::ArcId> all = {model::ArcId{0}, model::ArcId{1},
                                         model::ArcId{2}};
  const auto star = synth::price_merging(cg, lib, all);
  const auto chain = synth::price_chain_merging(cg, lib, all);
  const auto tree = synth::price_tree_merging(cg, lib, all);
  double ptp = 0.0;
  for (model::ArcId a : all) {
    ptp +=
        synth::best_point_to_point_cost(cg.distance(a), cg.bandwidth(a), lib);
  }
  return {star ? star->cost : -1.0, chain ? chain->cost : -1.0,
          tree ? tree->cost : -1.0, ptp};
}

const char* winner_of(const Costs& c) {
  const double best = std::min({c.star, c.chain, c.tree});
  const bool s = c.star <= best + 1.0;
  const bool ch = c.chain <= best + 1.0;
  const bool t = c.tree <= best + 1.0;
  if (s && !ch && !t) return "star";
  if (ch && !s && !t) return "chain";
  if (t && !s && !ch) return "tree";
  return "tie";
}

}  // namespace

int main() {
  const commlib::Library lib = commlib::wan_library();

  std::puts("=== (A) Geometry sweep, 15 Mbps channels ===");
  std::puts(
      "targets at (20,0) +- 6km * (cos t, sin t); t = 0 corridor, t = 90\n"
      "perpendicular cluster.\n");
  std::printf("%7s | %10s %10s %10s %10s | %s\n", "t[deg]", "star", "chain",
              "tree", "ptp", "winner");
  for (double deg : {0.0, 15.0, 30.0, 45.0, 60.0, 75.0, 90.0}) {
    const Costs c = price_instance(deg, 15.0, lib);
    std::printf("%7.0f | %10.0f %10.0f %10.0f %10.0f | %s\n", deg, c.star,
                c.chain, c.tree, c.ptp, winner_of(c));
  }

  std::puts(
      "\n=== (B) Bandwidth sweep, cluster shape (t = 90) ===\n"
      "Crossover at the radio link's 11 Mbps capacity: cheap-link spokes\n"
      "favor the star, above it the chain's segment downgrading wins.\n");
  std::printf("%7s | %10s %10s %10s %10s | %s\n", "b[Mbps]", "star",
              "chain", "tree", "ptp", "winner");
  int star_wins = 0;
  int chain_wins = 0;
  for (double b : {5.0, 8.0, 10.0, 11.0, 12.0, 15.0, 20.0}) {
    const Costs c = price_instance(90.0, b, lib);
    std::printf("%7.1f | %10.0f %10.0f %10.0f %10.0f | %s\n", b, c.star,
                c.chain, c.tree, c.ptp, winner_of(c));
    if (c.star < c.chain - 1.0) ++star_wins;
    if (c.chain < c.star - 1.0) ++chain_wins;
  }
  std::printf("\nbandwidth sweep: star wins %d, chain wins %d\n", star_wins,
              chain_wins);

  std::puts(
      "\n=== (C) Manhattan cross fan-out (on-chip, max policy) ===\n"
      "Source at the stem of a cross; targets on the arms plus one beyond.\n"
      "With unit per-edge bandwidth the RSMT tree is the provable optimum\n"
      "structure: shared stem, branch at the crossing, pass-through drop.\n");
  int tree_wins = 0;
  {
    model::ConstraintGraph cg(geom::Norm::kManhattan);
    const model::VertexId s = cg.add_port("s", {2, 0});
    const model::VertexId t1 = cg.add_port("t1", {0, 4});
    const model::VertexId t2 = cg.add_port("t2", {2, 6});
    const model::VertexId t3 = cg.add_port("t3", {4, 4});
    const model::VertexId t4 = cg.add_port("t4", {2, 8});
    for (model::VertexId t : {t1, t2, t3, t4}) cg.add_channel(s, t, 1.0);
    const commlib::Library noc = commlib::noc_library(/*l_crit_mm=*/10.0);
    const std::vector<model::ArcId> all = {model::ArcId{0}, model::ArcId{1},
                                           model::ArcId{2}, model::ArcId{3}};
    const auto policy = model::CapacityPolicy::kMaxPerConstraint;
    const auto star = synth::price_merging(cg, noc, all, policy);
    const auto chain = synth::price_chain_merging(cg, noc, all, policy);
    const auto tree = synth::price_tree_merging(cg, noc, all, policy);
    std::printf("  star %.2f   chain %.2f   tree %.2f\n",
                star ? star->cost : -1.0, chain ? chain->cost : -1.0,
                tree ? tree->cost : -1.0);
    if (tree && star && chain && tree->cost < star->cost &&
        tree->cost < chain->cost) {
      ++tree_wins;
      std::puts("  winner: tree (RSMT)");
    }
  }

  const bool ok = star_wins > 0 && chain_wins > 0 && tree_wins > 0;
  std::puts(ok ? "\nTopology ablation: PASS (all three structures earn "
                 "their keep)"
               : "\nTopology ablation: FAIL");
  return ok ? 0 : 1;
}
