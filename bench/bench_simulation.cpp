// Extension bench: dynamic validation of the Figure 4 architecture by
// discrete-event simulation. The synthesized WAN (optical trunk for
// {a4,a5,a6}, dedicated radios elsewhere) is driven with Poisson traffic at
// increasing load; the point-to-point baseline architecture is simulated at
// the same loads for comparison.
//
// Expected shape: both architectures sustain rated load (the synthesizer
// sized every link for its planned flow); the merged architecture's shared
// trunk runs at trivial utilization (30 Mbps on a 1 Gbps fiber) while the
// radios approach saturation exactly at load 1.1 (11 Mbps links, 10 Mbps
// demand) -- and beyond it the radios saturate while the trunk shrugs.
#include <cstdio>

#include "commlib/standard_libraries.hpp"
#include "sim/network_sim.hpp"
#include "synth/assemble.hpp"
#include "synth/candidate_generator.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/wan2002.hpp"

namespace {

using namespace cdcs;

/// Builds the point-to-point architecture as an implementation graph.
std::unique_ptr<model::ImplementationGraph> ptp_architecture(
    const model::ConstraintGraph& cg, const commlib::Library& lib) {
  synth::SynthesisOptions opts;
  opts.max_merge_k = 1;  // no mergings: singletons only
  const synth::CandidateSet set = synth::generate_candidates(cg, lib, opts).value();
  std::vector<std::size_t> all;
  for (std::size_t i = 0; i < set.candidates.size(); ++i) all.push_back(i);
  return synth::assemble(cg, lib, set.candidates, all);
}

struct Row {
  double delivered_frac{0.0};
  double mean_latency{0.0};
  double max_link_util{0.0};
  bool stable{false};
};

Row run(const model::ImplementationGraph& impl, double load) {
  sim::SimConfig cfg;
  cfg.duration = 800.0;
  cfg.load = load;
  cfg.delay.link_delay_per_length = 0.005;
  const sim::SimReport r = sim::simulate_network(impl, cfg);
  Row row;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  double latency = 0.0;
  for (const sim::ChannelSimStats& c : r.channels) {
    injected += c.injected;
    delivered += c.delivered;
    latency += c.mean_latency * static_cast<double>(c.delivered);
  }
  row.delivered_frac =
      injected ? static_cast<double>(delivered) / injected : 1.0;
  row.mean_latency = delivered ? latency / delivered : 0.0;
  for (const sim::LinkSimStats& l : r.links) {
    row.max_link_util = std::max(row.max_link_util, l.utilization);
  }
  row.stable = r.stable();
  return row;
}

}  // namespace

int main() {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();

  const synth::SynthesisResult merged = synth::synthesize(cg, lib).value();
  const auto ptp = ptp_architecture(cg, lib);

  std::puts(
      "=== Dynamic validation: Fig. 4 architecture vs point-to-point ===\n"
      "Poisson traffic at `load` x each channel's 10 Mbps demand.\n");
  std::printf("%6s | %10s %10s %9s %7s | %10s %10s %9s %7s\n", "load",
              "merged-dlv", "latency", "max-util", "stable", "ptp-dlv",
              "latency", "max-util", "stable");

  int failures = 0;
  for (double load : {0.5, 0.8, 1.0, 1.05, 1.3}) {
    const Row m = run(*merged.implementation, load);
    const Row p = run(*ptp, load);
    std::printf("%6.2f | %9.1f%% %10.3f %8.2f%% %7s | %9.1f%% %10.3f %8.2f%% %7s\n",
                load, 100.0 * m.delivered_frac, m.mean_latency,
                100.0 * m.max_link_util, m.stable ? "yes" : "NO",
                100.0 * p.delivered_frac, p.mean_latency,
                100.0 * p.max_link_util, p.stable ? "yes" : "NO");
    // Both architectures must sustain sub-capacity load...
    if (load <= 1.0 && (!m.stable || !p.stable)) {
      std::printf("FAIL: load %.2f should be sustainable\n", load);
      ++failures;
    }
    // ...and both saturate past the radios' 1.1x headroom.
    if (load >= 1.3 && (m.stable || p.stable)) {
      std::printf("FAIL: load %.2f should saturate the radio links\n", load);
      ++failures;
    }
  }

  std::puts(
      "\nThe merged architecture matches point-to-point delivery at every\n"
      "load: sharing the optical trunk costs no dynamic performance (its\n"
      "utilization stays ~3%), so the 28% capex saving of Figure 4 is\n"
      "'free' in throughput/latency terms.");
  std::puts(failures == 0 ? "\nDynamic validation: PASS"
                          : "\nDynamic validation: FAIL");
  return failures == 0 ? 0 : 1;
}
