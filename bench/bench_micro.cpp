// Micro-benchmarks (google-benchmark) for the pipeline's inner kernels:
// Gamma/Delta matrix construction, point-to-point pricing, merging pricing
// (the placement NLP), candidate generation on the paper's WAN instance,
// and the exact UCP solve of its 65-column covering matrix.
#include <benchmark/benchmark.h>

#include "commlib/standard_libraries.hpp"
#include "synth/candidate_generator.hpp"
#include "synth/synthesizer.hpp"
#include "ucp/bnb.hpp"
#include "workloads/random_gen.hpp"
#include "workloads/wan2002.hpp"

namespace {

using namespace cdcs;

void BM_GammaDelta(benchmark::State& state) {
  workloads::RandomWorkloadParams params;
  params.num_channels = static_cast<int>(state.range(0));
  params.ports_per_cluster = 4;
  const model::ConstraintGraph cg = workloads::random_workload(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::gamma_matrix(cg));
    benchmark::DoNotOptimize(synth::delta_matrix(cg));
  }
}
BENCHMARK(BM_GammaDelta)->Arg(8)->Arg(32)->Arg(128);

void BM_PtpPricing(benchmark::State& state) {
  const commlib::Library lib = commlib::lan_library();
  double d = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::best_point_to_point(d, 80.0, lib));
    d = d < 2000.0 ? d + 13.7 : 1.0;
  }
}
BENCHMARK(BM_PtpPricing);

void BM_MergingPricer3Way(benchmark::State& state) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  const std::vector<model::ArcId> subset = {model::ArcId{3}, model::ArcId{4},
                                            model::ArcId{5}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::price_merging(cg, lib, subset));
  }
}
BENCHMARK(BM_MergingPricer3Way);

void BM_WanCandidateGeneration(benchmark::State& state) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::generate_candidates(cg, lib, {}));
  }
}
BENCHMARK(BM_WanCandidateGeneration);

void BM_WanUcpSolve(benchmark::State& state) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  const synth::CandidateSet set = synth::generate_candidates(cg, lib, {}).value();
  ucp::CoverProblem cover(cg.num_channels());
  for (const synth::Candidate& c : set.candidates) {
    std::vector<std::size_t> rows;
    for (model::ArcId a : c.arcs) rows.push_back(a.index());
    cover.add_column(rows, c.cost);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ucp::solve_exact(cover));
  }
}
BENCHMARK(BM_WanUcpSolve);

void BM_WanEndToEnd(benchmark::State& state) {
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::synthesize(cg, lib));
  }
}
BENCHMARK(BM_WanEndToEnd);

}  // namespace

BENCHMARK_MAIN();
