// Reproduces Table 2 of the paper: the Merging Distance Sum Matrix
// Delta(a_i, a_j) = ||p(u_i) - p(u_j)|| + ||p(v_i) - p(v_j)|| for the WAN
// example, in kilometers, truncated to two decimals as printed.
#include <cmath>
#include <cstdio>
#include <string>

#include "io/tables.hpp"
#include "workloads/wan2002.hpp"

int main() {
  using namespace cdcs;
  const model::ConstraintGraph cg = workloads::wan2002();
  const synth::ArcPairMatrix delta = synth::delta_matrix(cg);

  std::puts(
      "=== Table 2: Delta(a_i, a_j) = ||u_i-u_j|| + ||v_i-v_j||  [km] ===");
  std::fputs(io::format_arc_pair_matrix(cg, delta).c_str(), stdout);

  // Paper values for the upper triangle, row-major (Table 2, DAC 2002).
  // The paper prints integral values without trailing zeros ("5", "9.05").
  static const double kPaper[] = {
      9.05, 14.05, 102.02, 97.02, 102.40, 200.09, 200.17,
      5.0,  103.61, 98.61, 104.00, 201.69, 201.58,
      98.61, 103.61, 107.67, 198.61, 198.42,
      5.0,   9.05,  100.00, 100.63,
      5.38,  103.07, 103.78,
      101.40, 102.22,
      7.21};
  const auto arcs = cg.arcs();
  std::size_t idx = 0;
  std::size_t truncated_matches = 0;
  std::size_t rounded_matches = 0;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    for (std::size_t j = i + 1; j < arcs.size(); ++j, ++idx) {
      const double value = delta(arcs[i], arcs[j]);
      const std::string ours = io::truncate_decimals(value);
      if (ours == io::truncate_decimals(kPaper[idx])) {
        ++truncated_matches;
      } else if (std::abs(value - kPaper[idx]) <= 0.005 + 1e-9) {
        ++rounded_matches;
        std::printf("note (%s,%s): paper rounds %.4f to %.2f\n",
                    cg.channel(arcs[i]).name.c_str(),
                    cg.channel(arcs[j]).name.c_str(), value, kPaper[idx]);
      } else {
        ++mismatches;
        std::printf("MISMATCH (%s,%s): paper %.2f vs computed %s\n",
                    cg.channel(arcs[i]).name.c_str(),
                    cg.channel(arcs[j]).name.c_str(), kPaper[idx],
                    ours.c_str());
      }
    }
  }
  std::printf(
      "\nPaper comparison: %zu/%zu entries match (%zu truncated, %zu "
      "rounded)%s\n",
      idx - mismatches, idx, truncated_matches, rounded_matches,
      mismatches == 0 ? " -- exact reproduction" : "");
  return mismatches == 0 ? 0 : 1;
}
