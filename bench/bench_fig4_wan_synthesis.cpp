// Reproduces Figure 4: the optimum-cost WAN architecture. The paper:
// "the minimum cost solution is obtained by merging the arcs a4 with a5 and
// a6 in an optical link and implementing each of the other arcs with a
// dedicated radio link."
//
// This bench runs the full pipeline (candidate generation -> exact UCP ->
// materialization -> flow validation) and checks the structural claims:
//   * exactly one merging is selected and it is {a4, a5, a6};
//   * its trunk maps to the optical link (3 x 10 Mbps > 11 Mbps radio);
//   * every other arc is a dedicated radio matching;
//   * the result validates under physical (shared-sum) capacities and is
//     cheaper than the point-to-point baseline.
//
// It also sweeps the pricing thread count (--threads equivalent) and a
// warm pricing cache, checking the engine's determinism guarantee on the
// way: every configuration must land on the same architecture at the same
// cost (docs/performance.md).
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "baseline/baselines.hpp"
#include "commlib/standard_libraries.hpp"
#include "io/report.hpp"
#include "synth/pricing_cache.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/wan2002.hpp"

int main() {
  using namespace cdcs;
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();

  const synth::SynthesisResult result = synth::synthesize(cg, lib).value();
  std::fputs(io::describe(result, cg, lib).c_str(), stdout);

  const baseline::BaselineResult ptp =
      baseline::point_to_point_baseline(cg, lib);
  std::printf("\nPoint-to-point baseline: $%.0f\n", ptp.cost);
  std::printf("Synthesized optimum:     $%.0f  (%.1f%% saving)\n",
              result.total_cost,
              100.0 * (ptp.cost - result.total_cost) / ptp.cost);

  int failures = 0;
  const auto radio = lib.find_link("radio");
  const auto optical = lib.find_link("optical");

  std::size_t mergings = 0;
  for (const synth::Candidate* c : result.selected()) {
    if (c->merging) {
      ++mergings;
      std::vector<std::string> names;
      for (model::ArcId a : c->arcs) names.push_back(cg.channel(a).name);
      const bool is_456 =
          names == std::vector<std::string>{"a4", "a5", "a6"};
      if (!is_456) {
        std::puts("FAIL: selected merging is not {a4,a5,a6}");
        ++failures;
      }
      if (c->merging->trunk->link != *optical) {
        std::puts("FAIL: merged trunk is not the optical link");
        ++failures;
      }
    } else if (c->ptp) {
      if (c->ptp->link != *radio || !c->ptp->is_matching()) {
        std::printf("FAIL: %s is not a dedicated radio matching\n",
                    cg.channel(c->arcs.front()).name.c_str());
        ++failures;
      }
    }
  }
  if (mergings != 1) {
    std::printf("FAIL: expected exactly 1 merging, got %zu\n", mergings);
    ++failures;
  }
  if (!result.cover.optimal) {
    std::puts("FAIL: UCP search did not prove optimality");
    ++failures;
  }
  if (!result.validation.ok()) {
    std::puts("FAIL: implementation does not validate");
    ++failures;
  }
  if (result.total_cost >= ptp.cost) {
    std::puts("FAIL: merging did not beat the point-to-point baseline");
    ++failures;
  }

  // Threading / pricing-cache sweep: best-of-5 wall clock per config, and
  // every config must reproduce the serial cost exactly.
  std::puts("\nPricing parallelism sweep (best of 5 runs):");
  synth::PricingCache cache;
  for (const auto& [label, threads, use_cache] :
       {std::tuple{"1 thread", 1, false}, std::tuple{"2 threads", 2, false},
        std::tuple{"4 threads", 4, false}, std::tuple{"8 threads", 8, false},
        std::tuple{"8 threads + warm cache", 8, true}}) {
    synth::SynthesisOptions options;
    options.threads = threads;
    if (use_cache) options.pricing_cache = &cache;
    double best_ms = 1e100;
    double cost = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const synth::SynthesisResult r =
          synth::synthesize(cg, lib, options).value();
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      best_ms = std::min(best_ms, ms);
      cost = r.total_cost;
    }
    std::printf("  %-22s: %7.2f ms, cost $%.0f%s\n", label, best_ms, cost,
                cost == result.total_cost ? "" : "  ** COST DIVERGED");
    if (cost != result.total_cost) ++failures;
  }
  if (cache.stats().hits == 0) {
    std::puts("FAIL: warm-cache run recorded no cache hits");
    ++failures;
  }

  std::puts(failures == 0 ? "\nFigure 4 architecture: REPRODUCED"
                          : "\nFigure 4 architecture: FAILED");
  return failures == 0 ? 0 : 1;
}
