// Extension bench: NoC-style tile-grid synthesis -- the problem class the
// paper's approach grew into (COSI). A grid of tiles with hotspot (memory
// controller), neighbor, and bit-complement traffic over an on-chip library
// whose 4-wire bus bundle gives trunk sharing a genuine economy of scale
// (bus4: 4x bandwidth at 2.5x track cost).
//
// Reports synthesized cost vs the point-to-point baseline, the structures
// selected, and validation status. Hotspot traffic merges aggressively
// (every tile streams to one controller); neighbor traffic stays
// point-to-point (nothing shares a corridor); bit-complement sits between.
#include <chrono>
#include <cstdio>

#include "baseline/baselines.hpp"
#include "commlib/standard_libraries.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/noc_mesh.hpp"

namespace {

const char* traffic_name(cdcs::workloads::NocTraffic t) {
  switch (t) {
    case cdcs::workloads::NocTraffic::kNeighbor:
      return "neighbor";
    case cdcs::workloads::NocTraffic::kHotspotMemory:
      return "hotspot";
    case cdcs::workloads::NocTraffic::kBitComplement:
      return "bit-complement";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace cdcs;
  const commlib::Library lib = commlib::noc_library();

  std::puts("=== NoC tile-grid synthesis (Manhattan, wire+bus4 library) ===");
  std::printf("%6s %15s | %5s | %9s %9s %7s | %5s %5s %5s | %8s | %5s\n", "grid",
              "traffic", "|A|", "ptp", "synth", "save%", "star",
              "chain", "tree", "time", "valid");

  int failures = 0;
  for (const auto& [rows, cols, traffic] :
       {std::tuple{3, 3, workloads::NocTraffic::kNeighbor},
        std::tuple{3, 3, workloads::NocTraffic::kHotspotMemory},
        std::tuple{3, 3, workloads::NocTraffic::kBitComplement},
        std::tuple{4, 4, workloads::NocTraffic::kNeighbor},
        std::tuple{4, 4, workloads::NocTraffic::kHotspotMemory},
        std::tuple{4, 4, workloads::NocTraffic::kBitComplement}}) {
    workloads::NocMeshParams params;
    params.rows = rows;
    params.cols = cols;
    params.traffic = traffic;
    const model::ConstraintGraph cg = workloads::noc_mesh(params);

    synth::SynthesisOptions opts;
    opts.drop_unprofitable = true;  // keep UCP columns to the useful set
    opts.max_merge_k = 4;           // bus4 carries at most 4 unit channels

    const auto t0 = std::chrono::steady_clock::now();
    const synth::SynthesisResult result = synth::synthesize(cg, lib, opts).value();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

    const baseline::BaselineResult ptp =
        baseline::point_to_point_baseline(cg, lib);

    std::size_t merges = 0;
    std::size_t chains = 0;
    std::size_t trees = 0;
    for (const synth::Candidate* c : result.selected()) {
      if (c->merging) ++merges;
      if (c->chain) ++chains;
      if (c->tree) ++trees;
    }
    const double save = 100.0 * (ptp.cost - result.total_cost) / ptp.cost;
    std::printf("%3dx%-2d %15s | %5zu | %9.2f %9.2f %6.1f%% | %5zu %5zu %5zu | %6.0fms | %s\n",
                rows, cols, traffic_name(traffic), cg.num_channels(),
                ptp.cost, result.total_cost, save, merges, chains, trees, ms,
                result.validation.ok() ? "PASS" : "FAIL");
    if (!result.validation.ok() || result.total_cost > ptp.cost + 1e-6) {
      ++failures;
    }
    // Hotspot traffic must actually merge; neighbor traffic must not pay
    // for structures it does not need.
    if (traffic == workloads::NocTraffic::kHotspotMemory &&
        merges + chains + trees == 0) {
      std::puts("FAIL: hotspot traffic found no profitable merging");
      ++failures;
    }
  }
  std::puts(failures == 0 ? "\nNoC mesh synthesis: PASS"
                          : "\nNoC mesh synthesis: FAIL");
  return failures == 0 ? 0 : 1;
}
