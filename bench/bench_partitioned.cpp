// Scaling bench for hierarchical partitioned synthesis (synth/partition.hpp
// + synth/partitioned_synthesizer.hpp; docs/performance.md).
//
// The monolithic pipeline explores the full merging space and is exact, but
// its enumeration cost explodes with the arc count; the partitioned path
// clusters the arcs geometrically, synthesizes every cluster independently
// (fanned across the thread pool), and stitches the per-cluster optima with
// an honest aggregate lower bound. This bench quantifies the trade on
// geo-WAN instances from 100 to 10k arcs:
//
//   * scaling table: arcs, clusters, boundary arcs, UCP columns, stitched
//     cost, summed cluster lower bound, optimality gap, wall clock;
//   * an exact-path comparison at the smallest size (the largest where the
//     exact pipeline is still tractable), run under a deadline of 10x the
//     partitioned wall so a blown-up exact run cannot stall the bench;
//   * a second table for the other large-instance families (fat-tree
//     datacenter traffic, 16x16 NoC mesh).
//
// Exit code: 0 unless any partitioned run fails validation, exceeds the
// 10% optimality-gap acceptance bound, or (with --deadline-ms) degrades
// past the incumbent rung -- so CI can run this directly as a smoke gate.
//
// Flags (all also accept --flag=value):
//   --max-arcs N       skip scaling rows larger than N (default 10000)
//   --threads N        worker threads (default 0 = all hardware)
//   --deadline-ms MS   per-run synthesis deadline (default 0 = none)
//   --exact-max-arcs N largest size to run the exact comparison at
//                      (default 100; 0 disables the comparison)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "commlib/standard_libraries.hpp"
#include "synth/partition.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/fingerprint.hpp"
#include "workloads/noc_mesh.hpp"
#include "workloads/scale_gen.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct Row {
  std::size_t clusters{0};
  std::size_t boundary{0};
  std::size_t candidates{0};
  double cost{0.0};
  double lower_bound{0.0};
  double gap{0.0};
  double millis{0.0};
  bool valid{false};
  cdcs::synth::SynthesisStage stage{cdcs::synth::SynthesisStage::kExact};
};

Row run_partitioned(const cdcs::model::ConstraintGraph& cg,
                    const cdcs::commlib::Library& lib,
                    cdcs::synth::SynthesisOptions opts) {
  using namespace cdcs;
  opts.partitioning.enabled = true;
  const synth::Partition part = synth::partition_graph(cg, opts.partitioning);
  const auto t0 = Clock::now();
  const synth::SynthesisResult r = synth::synthesize(cg, lib, opts).value();
  Row row;
  row.millis = ms_since(t0);
  row.clusters = part.clusters.size();
  row.boundary = part.boundary_arcs.size();
  row.candidates = r.candidates().size();
  row.cost = r.total_cost;
  row.lower_bound = r.degradation.lower_bound;
  row.gap = r.degradation.optimality_gap;
  row.valid = r.validation.ok();
  row.stage = r.degradation.stage;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdcs;

  std::size_t max_arcs = 10000;
  int threads = 0;
  double deadline_ms = 0.0;
  std::size_t exact_max_arcs = 100;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline = true;
    }
    auto next = [&]() -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an argument\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--max-arcs") {
      max_arcs = static_cast<std::size_t>(std::atoll(next().c_str()));
    } else if (arg == "--threads") {
      threads = std::atoi(next().c_str());
    } else if (arg == "--deadline-ms") {
      deadline_ms = std::atof(next().c_str());
    } else if (arg == "--exact-max-arcs") {
      exact_max_arcs = static_cast<std::size_t>(std::atoll(next().c_str()));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--max-arcs N] [--threads N] [--deadline-ms MS]"
                   " [--exact-max-arcs N]\n",
                   argv[0]);
      return 2;
    }
  }

  const commlib::Library lib = commlib::wan_library();
  int failures = 0;

  auto base_options = [&] {
    synth::SynthesisOptions opts;
    opts.threads = threads;
    if (deadline_ms > 0.0) {
      opts.deadline = support::Deadline::after_ms(deadline_ms);
    }
    return opts;
  };
  auto gate = [&](const char* label, const Row& row) {
    if (!row.valid) {
      std::fprintf(stderr, "FAIL %s: validation failed\n", label);
      ++failures;
    }
    if (row.gap > 0.10) {
      std::fprintf(stderr, "FAIL %s: optimality gap %.4f exceeds 0.10\n",
                   label, row.gap);
      ++failures;
    }
    if (deadline_ms > 0.0 &&
        row.stage > synth::SynthesisStage::kIncumbent) {
      const std::string_view stage = to_string(row.stage);
      std::fprintf(stderr, "FAIL %s: degraded past incumbent (%.*s)\n", label,
                   static_cast<int>(stage.size()), stage.data());
      ++failures;
    }
  };

  std::puts("=== Partitioned synthesis scaling: geo-WAN, seed 7 ===");
  std::printf("%6s | %8s %8s %10s | %14s %14s %7s | %10s %s\n", "arcs",
              "clusters", "boundary", "columns", "cost", "lower_bound",
              "gap%", "wall", "stage");
  for (std::size_t arcs : {std::size_t{100}, std::size_t{1000},
                           std::size_t{5000}, std::size_t{10000}}) {
    if (arcs > max_arcs) continue;
    const model::ConstraintGraph cg =
        workloads::geo_wan(workloads::GeoWanParams::sized(arcs, 7));
    const Row row = run_partitioned(cg, lib, base_options());
    const std::string_view stage = to_string(row.stage);
    std::printf(
        "%6zu | %8zu %8zu %10zu | %14.3f %14.3f %6.2f%% | %8.1fms %.*s\n",
        arcs, row.clusters, row.boundary, row.candidates, row.cost,
        row.lower_bound, row.gap * 100.0, row.millis,
        static_cast<int>(stage.size()), stage.data());
    gate("geo_wan", row);

    // Exact-path comparison where still tractable: same instance through
    // the monolithic pipeline under a 10x-partitioned-wall deadline. The
    // partitioned path earns its keep when the exact run either blows the
    // deadline (degrading to an anytime cover) or costs >= 10x the wall.
    if (arcs <= exact_max_arcs) {
      synth::SynthesisOptions exact = base_options();
      const double budget_ms = std::max(10.0 * row.millis, 1000.0);
      exact.deadline = support::Deadline::after_ms(budget_ms);
      const auto t0 = Clock::now();
      const synth::SynthesisResult r =
          synth::synthesize(cg, lib, exact).value();
      const double exact_ms = ms_since(t0);
      const bool expired =
          r.degradation.stage != synth::SynthesisStage::kExact;
      std::printf(
          "       | exact path: cost %.3f, wall %.1fms (budget %.0fms)%s, "
          "partitioned overhead %+.2f%%\n",
          r.total_cost, exact_ms, budget_ms,
          expired ? ", DEADLINE EXPIRED" : "",
          r.total_cost > 0.0 ? (row.cost / r.total_cost - 1.0) * 100.0 : 0.0);
    }
  }

  std::puts("\n=== Other large-instance families ===");
  std::printf("%-22s | %6s %8s %8s | %14s %7s | %10s\n", "workload", "arcs",
              "clusters", "boundary", "cost", "gap%", "wall");
  {
    const model::ConstraintGraph ft =
        workloads::fat_tree_traffic(workloads::FatTreeParams::sized(500, 3));
    if (ft.num_channels() <= max_arcs) {
      const Row row = run_partitioned(ft, lib, base_options());
      std::printf("%-22s | %6zu %8zu %8zu | %14.3f %6.2f%% | %8.1fms\n",
                  "fat_tree(500)", ft.num_channels(), row.clusters,
                  row.boundary, row.cost, row.gap * 100.0, row.millis);
      gate("fat_tree", row);
    }
    workloads::NocMeshParams noc;
    noc.rows = 16;
    noc.cols = 16;
    const model::ConstraintGraph mesh = workloads::noc_mesh(noc);
    if (mesh.num_channels() <= max_arcs) {
      const Row row = run_partitioned(mesh, lib, base_options());
      std::printf("%-22s | %6zu %8zu %8zu | %14.3f %6.2f%% | %8.1fms\n",
                  "noc_mesh(16x16)", mesh.num_channels(), row.clusters,
                  row.boundary, row.cost, row.gap * 100.0, row.millis);
      gate("noc_mesh", row);
    }
  }

  // Input canary: the scaling numbers above are only comparable across
  // machines while the generators are bit-stable.
  std::printf("\ngeo_wan(1000, seed 7) fingerprint: %016llx\n",
              static_cast<unsigned long long>(workloads::fingerprint(
                  workloads::geo_wan(workloads::GeoWanParams::sized(1000, 7)))));
  return failures == 0 ? 0 : 1;
}
