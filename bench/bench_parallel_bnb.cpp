// Parallel branch-and-bound bench: the rounds-mode determinism contract and
// the free-run speedup, on the bench_ucp_solver corpus (same generator and
// seeds as tests/test_parallel_bnb.cpp and Exact.SeedCorpusNodeCounts).
//
//   bench_parallel_bnb [--deterministic]
//
// For every corpus instance this binary ASSERTS (non-zero exit on failure):
//   * rounds mode at 1, 2, and 8 threads returns bit-identical cost, cover,
//     node count, and explored-set fingerprint, all matching the serial
//     best-first cost;
//   * free-run mode at 1 and 4 threads proves the same optimal cost.
// The wall-clock table is informational -- speedups depend on the machine
// (CI runs on a 1-core container; see docs/performance.md section 8) and
// are gated in bench_perf_summary, not here.
//
// --deterministic skips the free-run wall measurements (keeps only one
// free-run correctness solve per instance) so the CI bench-smoke job gets a
// fast, timing-independent pass/fail signal.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <thread>
#include <tuple>
#include <vector>

#include "ucp/bnb.hpp"

namespace {

cdcs::ucp::CoverProblem random_problem(int rows, int cols, double density,
                                       unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> weight(0.5, 10.0);
  cdcs::ucp::CoverProblem p(rows);
  for (int j = 0; j < cols; ++j) {
    std::vector<std::size_t> covered;
    for (int r = 0; r < rows; ++r) {
      if (unit(rng) < density) covered.push_back(r);
    }
    if (covered.empty()) covered.push_back(j % rows);
    p.add_column(covered, weight(rng));
  }
  for (int r = 0; r < rows; ++r) {
    p.add_column({static_cast<std::size_t>(r)}, 12.0);  // feasibility floor
  }
  return p;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdcs::ucp;
  bool deterministic = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--deterministic") == 0) {
      deterministic = true;
    } else {
      std::fprintf(stderr, "usage: %s [--deterministic]\n", argv[0]);
      return 2;
    }
  }

  std::printf(
      "=== Parallel weighted-UCP branch-and-bound ===\n"
      "hardware threads: %u%s\n\n"
      "%5s %5s | %10s %9s | %9s %9s %16s | %9s %9s %8s\n",
      std::thread::hardware_concurrency(),
      deterministic ? "  (--deterministic: free-run timing skipped)" : "",
      "rows", "cols", "cost", "t_serial", "t_rnds_1", "t_rnds_8",
      "rounds_fp", "t_free_1", "t_free_4", "speedup");

  BnbOptions serial_opt;
  serial_opt.dense_dp_max_rows = 0;  // force B&B even on <= 20 rows
  serial_opt.search_order = SearchOrder::kBestFirst;

  int failures = 0;
  for (const auto& [rows, cols, density] :
       {std::tuple{10, 30, 0.30}, std::tuple{12, 200, 0.25},
        std::tuple{15, 60, 0.25}, std::tuple{20, 100, 0.20},
        std::tuple{20, 2000, 0.15}}) {
    const CoverProblem p =
        random_problem(rows, cols, density, 91 + static_cast<unsigned>(rows));

    auto t0 = std::chrono::steady_clock::now();
    const CoverSolution serial = solve_exact(p, serial_opt);
    const double t_serial = ms_since(t0);

    // Rounds mode: the explored tree must be a function of the instance
    // alone -- identical at every thread count, cost matching serial.
    BnbOptions rounds_opt = serial_opt;
    rounds_opt.mode = BnbMode::kRounds;
    CoverSolution rounds_base;
    double t_rounds_1 = 0.0, t_rounds_8 = 0.0;
    for (const int threads : {1, 2, 8}) {
      rounds_opt.threads = threads;
      t0 = std::chrono::steady_clock::now();
      const CoverSolution r = solve_exact(p, rounds_opt);
      const double t = ms_since(t0);
      if (threads == 1) {
        rounds_base = r;
        t_rounds_1 = t;
        if (!r.optimal || std::abs(r.cost - serial.cost) > 1e-9) {
          std::fprintf(stderr,
                       "ROUNDS COST MISMATCH on %dx%d: %.9f != serial %.9f "
                       "(optimal=%d)\n",
                       rows, cols, r.cost, serial.cost, r.optimal ? 1 : 0);
          ++failures;
        }
      } else {
        if (threads == 8) t_rounds_8 = t;
        if (r.cost != rounds_base.cost || r.chosen != rounds_base.chosen ||
            r.nodes_explored != rounds_base.nodes_explored ||
            r.explored_fingerprint != rounds_base.explored_fingerprint) {
          std::fprintf(
              stderr,
              "ROUNDS DETERMINISM VIOLATION on %dx%d at %d threads: "
              "fp %016llx nodes %zu vs fp %016llx nodes %zu\n",
              rows, cols, threads,
              static_cast<unsigned long long>(r.explored_fingerprint),
              r.nodes_explored,
              static_cast<unsigned long long>(
                  rounds_base.explored_fingerprint),
              rounds_base.nodes_explored);
          ++failures;
        }
      }
    }

    // Free-run mode: nondeterministic tree, but the returned cost must be
    // the proven optimum every time.
    BnbOptions free_opt = serial_opt;
    free_opt.mode = BnbMode::kFreeRun;
    double t_free_1 = 0.0, t_free_4 = 0.0;
    const int reps = deterministic ? 1 : 3;
    for (const int threads : deterministic ? std::vector<int>{4}
                                           : std::vector<int>{1, 4}) {
      free_opt.threads = threads;
      double best = 1e100;
      for (int rep = 0; rep < reps; ++rep) {
        t0 = std::chrono::steady_clock::now();
        const CoverSolution f = solve_exact(p, free_opt);
        best = std::min(best, ms_since(t0));
        if (!f.optimal || std::abs(f.cost - serial.cost) > 1e-9) {
          std::fprintf(stderr,
                       "FREE-RUN COST MISMATCH on %dx%d at %d threads: "
                       "%.9f != serial %.9f (optimal=%d)\n",
                       rows, cols, threads, f.cost, serial.cost,
                       f.optimal ? 1 : 0);
          ++failures;
        }
      }
      (threads == 1 ? t_free_1 : t_free_4) = best;
    }

    std::printf(
        "%5d %5d | %10.4f %8.2fms | %7.2fms %7.2fms %016llx | %7.2fms "
        "%7.2fms %7.2fx\n",
        rows, cols, serial.cost, t_serial, t_rounds_1, t_rounds_8,
        static_cast<unsigned long long>(rounds_base.explored_fingerprint),
        t_free_1, t_free_4, t_free_4 > 0.0 ? t_free_1 / t_free_4 : 0.0);
  }

  if (failures != 0) {
    std::fprintf(stderr, "\n%d violation(s)\n", failures);
    return 1;
  }
  std::puts("\nall determinism and optimality assertions held");
  return 0;
}
