// Extension bench: the exact weighted-UCP branch-and-bound (the paper's
// step 2, reimplementing the toolbox of refs [4]/[8]) against the greedy
// ln(n)-approximation, on random covering matrices of increasing size.
// Reports optimality gap and wall-clock, plus the effect of disabling the
// solver's reductions.
#include <chrono>
#include <cstdio>
#include <random>
#include <tuple>

#include "ucp/bnb.hpp"
#include "ucp/dp.hpp"
#include "ucp/greedy.hpp"

namespace {

cdcs::ucp::CoverProblem random_problem(int rows, int cols, double density,
                                       unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> weight(0.5, 10.0);
  cdcs::ucp::CoverProblem p(rows);
  for (int j = 0; j < cols; ++j) {
    std::vector<std::size_t> covered;
    for (int r = 0; r < rows; ++r) {
      if (unit(rng) < density) covered.push_back(r);
    }
    if (covered.empty()) covered.push_back(j % rows);
    p.add_column(covered, weight(rng));
  }
  for (int r = 0; r < rows; ++r) {
    p.add_column({static_cast<std::size_t>(r)}, 12.0);  // feasibility floor
  }
  return p;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace cdcs::ucp;
  std::puts(
      "=== Weighted UCP: dense DP vs branch-and-bound vs greedy ===\n"
      "solve_exact dispatches to the subset DP for <= 20 rows; this bench\n"
      "forces both exact engines for comparison.\n");
  std::printf("%5s %5s %8s | %10s %9s | %9s %9s | %8s | %7s\n", "rows",
              "cols", "density", "exact", "t_dp", "t_bnb", "bnb-nodes",
              "t_greedy", "gap%");

  BnbOptions force_bnb;
  force_bnb.dense_dp_max_rows = 0;

  double worst_gap = 0.0;
  for (const auto& [rows, cols, density] :
       {std::tuple{10, 30, 0.30}, std::tuple{12, 200, 0.25},
        std::tuple{15, 60, 0.25}, std::tuple{15, 1000, 0.20},
        std::tuple{20, 100, 0.20}, std::tuple{20, 2000, 0.15}}) {
    const CoverProblem p = random_problem(rows, cols, density, 91 + rows);

    auto t0 = std::chrono::steady_clock::now();
    const CoverSolution dp = solve_dp(p);
    const double t_dp = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    const CoverSolution bnb = solve_exact(p, force_bnb);
    const double t_bnb = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    const CoverSolution greedy = solve_greedy(p);
    const double t_greedy = ms_since(t0);

    if (bnb.optimal && std::abs(dp.cost - bnb.cost) > 1e-9) {
      std::printf("ERROR: DP (%f) and BnB (%f) disagree!\n", dp.cost,
                  bnb.cost);
      return 1;
    }
    const double gap = 100.0 * (greedy.cost - dp.cost) / dp.cost;
    worst_gap = std::max(worst_gap, gap);
    std::printf(
        "%5d %5d %8.2f | %10.2f %7.1fms | %7.1fms %9zu | %6.2fms | %6.1f%s\n",
        rows, cols, density, dp.cost, t_dp, t_bnb, bnb.nodes_explored,
        t_greedy, gap, bnb.optimal ? "" : " (bnb incumbent)");
  }
  std::printf("\nWorst greedy optimality gap observed: %.1f%%\n", worst_gap);

  // --- Solver v2 vs the legacy v1 configuration -------------------------
  // Same corpus, three solver configurations. All must prove the SAME cost;
  // the interesting columns are nodes and wall-clock.
  std::puts(
      "\n=== Solver v2 (Lagrangian bounds + reduced-cost fixing) vs legacy "
      "===");
  std::printf("%5s %5s | %9s %10s | %9s %10s | %9s %10s\n", "rows", "cols",
              "v1-nodes", "v1-ms", "v2-nodes", "v2-ms", "bf-nodes", "bf-ms");
  BnbOptions legacy = force_bnb;
  legacy.use_lagrangian_bound = false;
  legacy.use_reduced_cost_fixing = false;
  BnbOptions best_first = force_bnb;
  best_first.search_order = SearchOrder::kBestFirst;
  for (const auto& [rows, cols, density] :
       {std::tuple{10, 30, 0.30}, std::tuple{12, 200, 0.25},
        std::tuple{15, 60, 0.25}, std::tuple{15, 1000, 0.20},
        std::tuple{20, 100, 0.20}, std::tuple{20, 2000, 0.15}}) {
    const CoverProblem p = random_problem(rows, cols, density, 91 + rows);

    auto t0 = std::chrono::steady_clock::now();
    const CoverSolution v1 = solve_exact(p, legacy);
    const double t_v1 = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    const CoverSolution v2 = solve_exact(p, force_bnb);
    const double t_v2 = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    const CoverSolution bf = solve_exact(p, best_first);
    const double t_bf = ms_since(t0);

    if (std::abs(v1.cost - v2.cost) > 1e-9 ||
        std::abs(v1.cost - bf.cost) > 1e-9) {
      std::printf("ERROR: configurations disagree on %dx%d: %f / %f / %f\n",
                  rows, cols, v1.cost, v2.cost, bf.cost);
      return 1;
    }
    std::printf("%5d %5d | %9zu %8.1fms | %9zu %8.1fms | %9zu %8.1fms\n",
                rows, cols, v1.nodes_explored, t_v1, v2.nodes_explored, t_v2,
                bf.nodes_explored, t_bf);
  }

  std::puts("\n=== BnB reduction ablation (20x100, density 0.2) ===");
  const CoverProblem p = random_problem(20, 100, 0.2, 111);
  BnbOptions no_dom = force_bnb;
  no_dom.use_row_dominance = false;
  no_dom.use_column_dominance = false;
  BnbOptions no_lb = force_bnb;
  no_lb.use_mis_lower_bound = false;
  for (const auto& [name, opts] :
       {std::pair{"all reductions", force_bnb},
        std::pair{"no dominance", no_dom},
        std::pair{"no MIS bound", no_lb}}) {
    const auto t0 = std::chrono::steady_clock::now();
    const CoverSolution s = solve_exact(p, opts);
    std::printf("%16s: cost %.2f, %zu nodes, %.1f ms\n", name, s.cost,
                s.nodes_explored, ms_since(t0));
  }
  return 0;
}
