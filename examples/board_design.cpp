// Board-level (multi-chip module) design -- the third system class the
// paper's Sec. 2 names. Two CPUs, a memory hub and an I/O die exchange
// coherence/memory/DMA traffic; the library offers cheap distance-limited
// PCB trace bundles (re-drivers extend them, parallel bundles widen them)
// against expensive board-length serdes links. Synthesis decides per
// channel -- and where several flows toward the same die should share a
// serdes trunk -- then a delay analysis checks the coherence round trip.
#include <iostream>

#include "baseline/baselines.hpp"
#include "commlib/standard_libraries.hpp"
#include "io/report.hpp"
#include "sim/delay.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/mcm.hpp"

int main() {
  using namespace cdcs;
  const model::ConstraintGraph cg = workloads::mcm_board();
  const commlib::Library lib = commlib::mcm_library();

  const synth::SynthesisResult result = synth::synthesize(cg, lib).value();
  std::cout << io::describe(result, cg, lib);

  const baseline::BaselineResult ptp =
      baseline::point_to_point_baseline(cg, lib);
  std::cout << "\nPoint-to-point board: $" << ptp.cost
            << "\nSynthesized board:    $" << result.total_cost << "  ("
            << 100.0 * (ptp.cost - result.total_cost) / ptp.cost
            << "% saving)\n";

  // Trace propagation ~70 ps/cm; each active part adds ~2 ns.
  const sim::DelayReport delays = sim::analyze_delays(
      *result.implementation,
      {.link_delay_per_length = 0.07, .node_delay = 2.0});  // ns
  std::cout << "\nWorst-path delays (ns):\n";
  for (const sim::ChannelDelay& c : delays.channels) {
    std::cout << "  " << c.name << ": " << c.worst_path_delay << " ns ("
              << c.hops << " hops)\n";
  }
  return result.validation.ok() ? 0 : 1;
}
