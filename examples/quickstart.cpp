// Quickstart: synthesize a communication architecture for a three-module
// system with a two-link library, end to end, in ~40 lines of API use.
//
//   1. Describe the system as a constraint graph: ports with positions,
//      channels with bandwidths (distances derive from the positions).
//   2. Describe what you can buy as a communication library.
//   3. synthesize() explores matchings, segmentations, duplications and
//      mergings, and returns the provably cheapest architecture.
#include <iostream>

#include "io/report.hpp"
#include "synth/synthesizer.hpp"

int main() {
  using namespace cdcs;

  // A sensor hub streaming to a processor, which streams to a base station
  // 40 km away; the sensor also sends a low-rate telemetry channel to the
  // base station directly.
  model::ConstraintGraph cg(geom::Norm::kEuclidean);
  const model::VertexId sensor = cg.add_port("sensor", {0.0, 0.0});
  const model::VertexId proc = cg.add_port("processor", {1.0, 2.0});
  const model::VertexId base = cg.add_port("base", {40.0, 5.0});
  cg.add_channel(sensor, proc, 8.0, "samples");
  cg.add_channel(proc, base, 6.0, "results");
  cg.add_channel(sensor, base, 6.0, "telemetry");

  commlib::Library lib("quickstart");
  lib.add_link(commlib::Link{.name = "microwave",
                             .max_span = 50.0,
                             .bandwidth = 10.0,
                             .fixed_cost = 0.0,
                             .cost_per_length = 120.0});
  lib.add_link(commlib::Link{.name = "fiber",
                             .max_span = 1e9,
                             .bandwidth = 1000.0,
                             .fixed_cost = 0.0,
                             .cost_per_length = 200.0});
  lib.add_node(commlib::Node{
      .name = "junction", .kind = commlib::NodeKind::kSwitch, .cost = 50.0});

  const synth::SynthesisResult result = synth::synthesize(cg, lib).value();

  std::cout << io::describe(result, cg, lib);
  std::cout << "\nImplementation graph: " << result.implementation->num_vertices()
            << " vertices, " << result.implementation->num_link_arcs()
            << " link arcs\n";
  return result.validation.ok() ? 0 : 1;
}
