// File-driven synthesis: the command-line front end for users who want to
// run the synthesizer on their own systems without writing C++.
//
//   ./file_based_synthesis [options] <constraint.graph> <comm.lib>
//
// Options:
//   --policy sum|max         trunk capacity accounting (default: sum)
//   --pivot min-d|any|max-i  Lemma 3.2 pivot rule (default: min-d)
//   --max-k N                largest merging size considered (default: |A|)
//   --lean                   drop unprofitable mergings from the UCP
//   --no-chains              price only star merging structures
//   --tables                 print the Gamma/Delta matrices (paper style)
//   --delay WIRE NODE BUDGET per-length delay, per-node delay, and budget:
//                            prints per-channel worst-path delays and flags
//                            budget violations (the paper's clock-period
//                            assumption check)
//   --deadline-ms MS         wall-clock budget; on expiry the synthesizer
//                            degrades to the best anytime cover and reports
//                            the stage + optimality gap (never fails)
//   --threads N              worker threads for candidate pricing and
//                            per-cluster synthesis (default 0 = all
//                            hardware threads). Results are bit-identical
//                            for every N (docs/performance.md)
//   --partition              enable hierarchical partitioned synthesis:
//                            cluster the arcs geometrically, synthesize
//                            each cluster independently (in parallel), and
//                            stitch the per-cluster optima. Scales to
//                            thousands of arcs; reports the summed cluster
//                            lower bound and the optimality gap. Instances
//                            at or below the threshold still take the
//                            exact path (docs/performance.md)
//   --partition-threshold N  arc count at or below which --partition falls
//                            back to the exact monolithic pipeline
//                            (default 64)
//   --partition-cluster-arcs N  target maximum arcs per cluster
//                            (default 24)
//   --cover-solver NAME      cover-solver backend: a registered name
//                            (dense_dp, bnb_v2, hitting_set, parallel_bnb,
//                            dfs_v1), 'portfolio' to race them and return
//                            the deterministic fixed-priority winner, or
//                            'heuristic' to pick per instance from
//                            rows x cols x density. Default: the legacy
//                            automatic dispatch. Subsumes --search-order
//                            and --bnb-mode (docs/performance.md)
//   --search-order dfs|best-first
//                            DEPRECATED: prefer --cover-solver
//                            (dfs -> dfs_v1, best-first -> bnb_v2).
//                            cover-solver node order (default dfs); both
//                            prove the same optimal cost
//   --bnb-mode serial|rounds|free
//                            DEPRECATED: prefer --cover-solver
//                            (rounds/free -> parallel_bnb; free also needs
//                            --bnb-mode free for the asynchronous engine).
//                            cover-solver engine (default serial). 'rounds'
//                            is the deterministic parallel engine (same
//                            result at every thread count); 'free' is the
//                            fastest, same proven-optimal cost
//                            (docs/performance.md section 8)
//   --ucp-threads N          cover-solver worker threads for the parallel
//                            modes (default 0 = all hardware threads);
//                            shares one pool with --threads
//   --no-lagrangian          disable the solver's Lagrangian node bounds
//   --no-rc-fixing           disable reduced-cost column fixing
//   --no-grid-prefilter      disable the geometric grid pre-filter
//   --repair                 sanitize-and-repair the constraint graph
//                            (merge parallel channels by summing bandwidth)
//                            instead of rejecting it; defects the parser
//                            itself rejects (duplicate channel names, bad
//                            numbers) still fail at read time
//   --edit-script FILE       incremental batch mode: replay the edit script
//                            (io/edit_script.hpp format) through ONE
//                            synth::Engine session, re-synthesizing after
//                            each `solve` and reporting per-batch cost,
//                            stage, and reuse statistics. --dot/--save/
//                            --delay and the exit code describe the LAST
//                            result
//   --warm                   with --edit-script: warm-start the cover
//                            solver from the previous solve (same optimal
//                            cost; node counts may differ)
//   --journal FILE           with --edit-script: write-ahead log the
//                            session to FILE (io/journal.hpp) -- base
//                            snapshot plus every applied batch -- so a
//                            crash at any point is recoverable via
//                            Engine::recover (docs/robustness.md)
//   --fault-plan SPEC        arm deterministic fault injection: rules
//                            'site@n' (nth hit), 'site%k' (every k-th),
//                            'site~p' (seeded probability) joined with
//                            ';', optional 'seed=N'. Sites are listed in
//                            docs/robustness.md; unknown sites fail usage
//   --dot FILE               write the result as Graphviz DOT
//   --save FILE              write the implementation graph (io format)
//   --trace-out FILE         record a Chrome trace_event JSON trace of the
//                            run (load in https://ui.perfetto.dev). The file
//                            is written on EVERY exit path -- a failing
//                            synthesis still flushes a valid (truncated)
//                            trace of what ran (docs/observability.md)
//   --metrics-out FILE       write the run's metrics delta as flat JSON
//                            (counters/gauges/histograms); enables wall-time
//                            timing
//   --report-perf            print the consolidated perf section (per-stage
//                            wall time, cache, UCP telemetry) instead of the
//                            one-line Perf summary; enables timing AND a
//                            trace session so the in-process profiler's
//                            top-N hotspots table can be derived
//   --obs-session LABEL      open an observability scope (e.g. wan_a) for
//                            the whole run: every span/counter/flight event
//                            is attributed 'LABEL/solve=N' in traces and
//                            postmortems (docs/observability.md)
//   --postmortem-dir DIR     arm automatic postmortem dumps: the first
//                            fault fire or degraded exit writes
//                            DIR/postmortem_<n>.json (flight recorder +
//                            metrics + trace ring), exactly once per run
//   --quiet                  suppress the full report (exit code only)
//
// Every value-taking option also accepts --flag=value.
//
// Exit codes (stable; see docs/robustness.md):
//   0 success, 1 validation failure, 2 usage error, 3 parse error,
//   4 invalid input, 5 deadline exceeded, 6 infeasible, 7 internal error.
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "io/dot.hpp"
#include "io/edit_script.hpp"
#include "io/impl_format.hpp"
#include "io/report.hpp"
#include "io/tables.hpp"
#include "io/text_format.hpp"
#include "model/sanitize.hpp"
#include "sim/delay.hpp"
#include "support/fault.hpp"
#include "support/flight_recorder.hpp"
#include "support/metrics.hpp"
#include "support/obs_context.hpp"
#include "support/profiler.hpp"
#include "support/trace.hpp"
#include "synth/engine.hpp"
#include "synth/synthesizer.hpp"
#include "ucp/cover_solver.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [options] <constraint.graph> <comm.lib>\n"
         "  --policy sum|max   trunk capacity accounting (default sum)\n"
         "  --pivot min-d|any|max-i   Lemma 3.2 pivot rule (default min-d)\n"
         "  --max-k N          largest merging size considered\n"
         "  --lean             drop unprofitable mergings\n"
         "  --no-chains        star structures only\n"
         "  --tables           print Gamma/Delta matrices\n"
         "  --deadline-ms MS   wall-clock budget (degrades, never fails)\n"
         "  --threads N        pricing worker threads (0 = all hardware)\n"
         "  --partition        hierarchical partitioned synthesis "
         "(large instances)\n"
         "  --partition-threshold N   exact-path fallback arc count "
         "(default 64)\n"
         "  --partition-cluster-arcs N   target max arcs per cluster "
         "(default 24)\n"
         "  --cover-solver NAME   backend (" +
             cdcs::ucp::registered_cover_solver_list() +
             "),\n"
             "                     'portfolio' (deterministic race) or "
             "'heuristic'\n"
             "  --search-order dfs|best-first   DEPRECATED (use "
             "--cover-solver:\n"
             "                     dfs -> dfs_v1, best-first -> bnb_v2)\n"
             "  --bnb-mode serial|rounds|free   DEPRECATED (use "
             "--cover-solver\n"
             "                     parallel_bnb; rounds = deterministic, "
             "free = fastest)\n"
         "  --ucp-threads N    cover-solver worker threads (0 = all "
         "hardware)\n"
         "  --no-lagrangian    disable Lagrangian solver bounds\n"
         "  --no-rc-fixing     disable reduced-cost column fixing\n"
         "  --no-grid-prefilter   disable the geometric grid pre-filter\n"
         "  --repair           repair invalid constraint graphs\n"
         "  --edit-script FILE incremental replay through one session\n"
         "  --warm             warm-start re-solves (with --edit-script)\n"
         "  --journal FILE     write-ahead log the session (--edit-script)\n"
         "  --fault-plan SPEC  arm fault injection ('site@n;site%k;site~p"
         ";seed=N')\n"
         "  --dot FILE         write Graphviz DOT\n"
         "  --save FILE        write the implementation graph\n"
         "  --trace-out FILE   write a Chrome trace_event JSON trace\n"
         "  --metrics-out FILE write the run's metrics as flat JSON\n"
         "  --report-perf      print the consolidated perf + profile "
         "sections\n"
         "  --obs-session LABEL   attribute the run to an observability "
         "scope\n"
         "  --postmortem-dir DIR  dump a postmortem JSON on fault/degraded "
         "exit\n"
         "  --quiet            suppress the report\n"
         "(value options also accept --flag=value)\n";
  return 2;
}

/// Structured-diagnostic exit: prints the status chain and maps its code to
/// the documented exit status.
int fail(const cdcs::support::Status& status) {
  std::cerr << "error: " << status.to_string() << '\n';
  return cdcs::support::exit_code(status.code());
}

/// Observability state that must survive run()'s early returns: main()
/// flushes the trace and metrics files AFTER run() finishes, whatever its
/// exit path, so a synthesis failure mid-session still leaves a valid
/// (truncated-but-well-formed) trace on disk.
struct Observability {
  std::string trace_out;
  std::string metrics_out;
  std::string obs_session;
  std::string postmortem_dir;
  bool report_perf = false;
  std::optional<cdcs::support::ScopedTraceSession> session;
  cdcs::support::MetricsSnapshot baseline;
};

int run(int argc, char** argv, Observability& obs) {
  using namespace cdcs;

  synth::SynthesisOptions options;
  bool print_tables = false;
  bool repair = false;
  bool quiet = false;
  bool check_delay = false;
  sim::DelayModel delay_model;
  double delay_budget = 0.0;
  std::string dot_file;
  std::string save_file;
  std::string edit_script_file;
  std::string journal_file;
  bool warm = false;
  std::vector<std::string> positional;

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    // --flag=value: split once; next() consumes the inline value first.
    std::string inline_value;
    bool has_inline = false;
    if (arg.starts_with("--")) {
      if (const std::size_t eq = arg.find('=');
          eq != std::string_view::npos) {
        inline_value = std::string(arg.substr(eq + 1));
        arg = arg.substr(0, eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> std::string {
      if (has_inline) {
        has_inline = false;
        return inline_value;
      }
      if (i + 1 >= argc) {
        std::cerr << arg << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--policy") {
      const std::string v = next();
      if (v == "sum") {
        options.policy = model::CapacityPolicy::kSharedSum;
      } else if (v == "max") {
        options.policy = model::CapacityPolicy::kMaxPerConstraint;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--pivot") {
      const std::string v = next();
      if (v == "min-d") {
        options.pivot_rule = synth::PivotRule::kMinDistance;
      } else if (v == "any") {
        options.pivot_rule = synth::PivotRule::kAnyPivot;
      } else if (v == "max-i") {
        options.pivot_rule = synth::PivotRule::kMaxIndex;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--max-k") {
      options.max_merge_k = std::atoi(next().c_str());
    } else if (arg == "--lean") {
      options.drop_unprofitable = true;
    } else if (arg == "--no-chains") {
      options.enable_chain_topology = false;
    } else if (arg == "--tables") {
      print_tables = true;
    } else if (arg == "--deadline-ms") {
      options.deadline = support::Deadline::after_ms(std::atof(next().c_str()));
    } else if (arg == "--threads") {
      options.threads = std::atoi(next().c_str());
    } else if (arg == "--partition") {
      options.partitioning.enabled = true;
    } else if (arg == "--partition-threshold") {
      options.partitioning.arc_threshold =
          static_cast<std::size_t>(std::atoi(next().c_str()));
    } else if (arg == "--partition-cluster-arcs") {
      options.partitioning.max_cluster_arcs =
          static_cast<std::size_t>(std::atoi(next().c_str()));
    } else if (arg == "--cover-solver") {
      const std::string v = next();
      if (v != "portfolio" && v != "heuristic" &&
          ucp::find_cover_solver(v) == nullptr) {
        std::cerr << "unknown cover-solver backend '" << v
                  << "' (registered: " << ucp::registered_cover_solver_list()
                  << "; also: portfolio, heuristic)\n";
        return usage(argv[0]);
      }
      options.solver.backend = v;
    } else if (arg == "--search-order") {
      const std::string v = next();
      if (v == "dfs") {
        options.solver.search_order = ucp::SearchOrder::kDepthFirst;
      } else if (v == "best-first") {
        options.solver.search_order = ucp::SearchOrder::kBestFirst;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--bnb-mode") {
      const std::string v = next();
      if (v == "serial") {
        options.solver.mode = ucp::BnbMode::kSerial;
      } else if (v == "rounds") {
        options.solver.mode = ucp::BnbMode::kRounds;
      } else if (v == "free") {
        options.solver.mode = ucp::BnbMode::kFreeRun;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--ucp-threads") {
      options.solver.threads = std::atoi(next().c_str());
    } else if (arg == "--no-lagrangian") {
      options.solver.use_lagrangian_bound = false;
      options.solver.use_reduced_cost_fixing = false;  // needs the bound
    } else if (arg == "--no-rc-fixing") {
      options.solver.use_reduced_cost_fixing = false;
    } else if (arg == "--no-grid-prefilter") {
      options.use_grid_prefilter = false;
    } else if (arg == "--repair") {
      repair = true;
    } else if (arg == "--edit-script") {
      edit_script_file = next();
    } else if (arg == "--warm") {
      warm = true;
    } else if (arg == "--journal") {
      journal_file = next();
    } else if (arg == "--fault-plan") {
      auto plan = support::FaultPlan::parse(next());
      if (!plan.ok()) {
        std::cerr << "bad --fault-plan: " << plan.status().to_string()
                  << '\n';
        return 2;
      }
      options.fault_injection.injector =
          std::make_shared<support::FaultInjector>(*std::move(plan));
    } else if (arg == "--delay") {
      delay_model.link_delay_per_length = std::atof(next().c_str());
      delay_model.node_delay = std::atof(next().c_str());
      delay_budget = std::atof(next().c_str());
      check_delay = true;
    } else if (arg == "--dot") {
      dot_file = next();
    } else if (arg == "--save") {
      save_file = next();
    } else if (arg == "--trace-out") {
      obs.trace_out = next();
    } else if (arg == "--metrics-out") {
      obs.metrics_out = next();
    } else if (arg == "--report-perf") {
      obs.report_perf = true;
    } else if (arg == "--obs-session") {
      obs.obs_session = next();
    } else if (arg == "--postmortem-dir") {
      obs.postmortem_dir = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.starts_with("--")) {
      return usage(argv[0]);
    } else {
      positional.emplace_back(arg);
    }
    if (has_inline) return usage(argv[0]);  // --flag=value on a plain flag
  }
  if (positional.size() != 2) return usage(argv[0]);
  if (!journal_file.empty() && edit_script_file.empty()) {
    std::cerr << "--journal requires --edit-script (journaling is a session "
                 "feature)\n";
    return 2;
  }

  // Observability setup precedes everything that can fail so partial runs
  // are captured too. Timing (clock reads in ScopedTimer) is opt-in via the
  // flags that consume it; the baseline makes the exported metrics a
  // per-run delta of the process-global registry.
  // --report-perf also installs a session: the profile section is derived
  // from the trace ring, so the spans have to be captured somewhere even
  // when no --trace-out file was requested.
  if (!obs.trace_out.empty() || obs.report_perf) obs.session.emplace();
  if (!obs.metrics_out.empty() || obs.report_perf) {
    support::set_timing_enabled(true);
  }
  if (!obs.postmortem_dir.empty()) {
    support::set_postmortem_dir(obs.postmortem_dir);
  }
  std::optional<support::ObsContext> run_scope;
  if (!obs.obs_session.empty()) run_scope.emplace(obs.obs_session);
  obs.baseline = support::MetricsRegistry::global().snapshot();

  std::ifstream graph_file(positional[0]);
  if (!graph_file) {
    std::cerr << "cannot open constraint graph '" << positional[0] << "'\n";
    return 2;
  }
  std::ifstream lib_file(positional[1]);
  if (!lib_file) {
    std::cerr << "cannot open library '" << positional[1] << "'\n";
    return 2;
  }

  auto graph_read = io::read_constraint_graph(graph_file);
  if (!graph_read.ok()) {
    return fail(std::move(graph_read)
                    .take_status()
                    .with_context("reading '" + positional[0] + "'"));
  }
  model::ConstraintGraph cg = *std::move(graph_read);

  auto lib_read = io::read_library(lib_file);
  if (!lib_read.ok()) {
    return fail(std::move(lib_read)
                    .take_status()
                    .with_context("reading '" + positional[1] + "'"));
  }
  const commlib::Library lib = *std::move(lib_read);

  if (repair) {
    model::SanitizeReport report;
    auto repaired =
        model::sanitize(cg, model::SanitizeOptions{.repair = true}, &report);
    if (!repaired.ok()) return fail(std::move(repaired).take_status());
    for (const std::string& note : report.repairs) {
      std::cerr << "repair: " << note << '\n';
    }
    cg = *std::move(repaired);
  }

  if (print_tables) {
    std::cout << "Gamma (Constrained Distance Sum):\n"
              << io::format_arc_pair_matrix(cg, synth::gamma_matrix(cg))
              << "\nDelta (Merging Distance Sum):\n"
              << io::format_arc_pair_matrix(cg, synth::delta_matrix(cg))
              << '\n';
  }

  // Incremental mode: replay the whole script through ONE session, then
  // fall through to the normal reporting with the last result.
  std::optional<synth::Engine> engine;
  support::Expected<synth::SynthesisResult> synthesis =
      support::Status::Internal("unreachable");
  if (!edit_script_file.empty()) {
    std::ifstream script_file(edit_script_file);
    if (!script_file) {
      std::cerr << "cannot open edit script '" << edit_script_file << "'\n";
      return 2;
    }
    auto script_read = io::read_edit_script(script_file);
    if (!script_read.ok()) {
      return fail(std::move(script_read)
                      .take_status()
                      .with_context("reading '" + edit_script_file + "'"));
    }
    const io::EditScript script = *std::move(script_read);

    engine.emplace(std::move(cg), lib, options,
                   warm ? synth::Engine::WarmPolicy::kWarmStart
                        : synth::Engine::WarmPolicy::kBitIdentical);
    if (!journal_file.empty()) {
      if (const support::Status st = engine->open_journal(journal_file);
          !st.ok()) {
        return fail(st);
      }
      if (!quiet) std::cout << "journaling to " << journal_file << '\n';
    }
    synthesis = engine->resynthesize();
    if (!synthesis.ok()) return fail(synthesis.status());
    if (!quiet) {
      std::cout << "baseline: cost " << synthesis->total_cost << " ("
                << to_string(synthesis->degradation.stage) << ")\n";
    }
    for (std::size_t b = 0; b < script.batches.size(); ++b) {
      synthesis = engine->apply(script.batches[b]);
      if (!synthesis.ok()) {
        support::Status st = synthesis.status();
        return fail(
            std::move(st).with_context("edit batch " + std::to_string(b + 1)));
      }
      if (!quiet) {
        const synth::Engine::SessionStats s = engine->stats();
        std::cout << "batch " << (b + 1) << ": "
                  << script.batches[b].ops.size() << " op(s), cost "
                  << synthesis->total_cost << " ("
                  << to_string(synthesis->degradation.stage) << "), "
                  << s.last_dirty_arcs << " dirty arc(s), "
                  << synthesis->candidate_set.stats.pricing_cache_hits
                  << " pricing hit(s), "
                  << synthesis->candidate_set.stats.pricing_cache_misses
                  << " miss(es)\n";
      }
    }
    if (!quiet) {
      const synth::Engine::SessionStats s = engine->stats();
      std::cout << "session: " << s.applies << " solve(s), "
                << s.cover_reuses << " cover reuse(s), pricing hit rate "
                << (s.pricing_hits + s.pricing_misses == 0
                        ? 0.0
                        : static_cast<double>(s.pricing_hits) /
                              static_cast<double>(s.pricing_hits +
                                                  s.pricing_misses))
                << '\n';
    }
  } else {
    synthesis = synth::synthesize(cg, lib, options);
    if (!synthesis.ok()) return fail(synthesis.status());
  }
  const model::ConstraintGraph& result_cg = engine ? engine->graph() : cg;
  const synth::SynthesisResult& result = *synthesis;
  if (!quiet) {
    std::cout << io::describe(result, result_cg, lib,
                              /*include_perf_line=*/!obs.report_perf);
    if (obs.report_perf) {
      std::cout << io::describe_perf(
          support::MetricsRegistry::global().snapshot().delta_since(
              obs.baseline),
          &result);
      if (obs.session.has_value()) {
        std::cout << io::describe_profile(
            support::build_profile(obs.session->sink()));
      }
    }
  }

  if (check_delay) {
    const sim::DelayReport delays =
        sim::analyze_delays(*result.implementation, delay_model);
    std::cout << "\nChannel delays (worst path):\n";
    for (const sim::ChannelDelay& c : delays.channels) {
      std::cout << "  " << c.name << ": " << c.worst_path_delay << " ("
                << c.hops << " hops)"
                << (c.worst_path_delay > delay_budget ? "  ** OVER BUDGET"
                                                      : "")
                << '\n';
    }
    const auto violations = delays.violations(delay_budget);
    std::cout << violations.size() << " channel(s) over the "
              << delay_budget << " budget\n";
  }

  if (!dot_file.empty()) {
    std::ofstream dot(dot_file);
    dot << io::to_dot(*result.implementation);
    if (!quiet) std::cout << "wrote " << dot_file << '\n';
  }
  if (!save_file.empty()) {
    std::ofstream save(save_file);
    save << io::write_implementation(*result.implementation);
    if (!quiet) std::cout << "wrote " << save_file << '\n';
  }
  return result.validation.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Observability obs;
  const int code = run(argc, argv, obs);

  // Flush observability files on EVERY exit path (success, validation
  // failure, synthesis error mid-edit-script): whatever events made it into
  // the ring are exported as a well-formed trace -- the exporter closes any
  // span the failure left open.
  if (obs.session.has_value() && !obs.trace_out.empty()) {
    obs.session->close();
    std::ofstream out(obs.trace_out);
    if (!out) {
      std::cerr << "cannot write trace '" << obs.trace_out << "'\n";
      return code == 0 ? 2 : code;
    }
    const std::size_t events =
        cdcs::support::write_chrome_trace(out, obs.session->sink());
    std::cout << "wrote trace " << obs.trace_out << " (" << events
              << " event(s))\n";
  }
  if (!obs.metrics_out.empty()) {
    std::ofstream out(obs.metrics_out);
    if (!out) {
      std::cerr << "cannot write metrics '" << obs.metrics_out << "'\n";
      return code == 0 ? 2 : code;
    }
    cdcs::support::write_metrics_json(
        out, cdcs::support::MetricsRegistry::global().snapshot().delta_since(
                 obs.baseline));
    std::cout << "wrote metrics " << obs.metrics_out << '\n';
  }
  return code;
}
