// The introduction's LAN motivation: should a campus network be built from
// fiber, wireless, or a mix? Wireless links are cheap but range- and
// rate-limited; fiber costs per meter of trench but carries anything.
// Synthesis answers per channel -- and discovers where several channels
// should share one fiber trunk.
#include <iostream>

#include "baseline/baselines.hpp"
#include "commlib/standard_libraries.hpp"
#include "io/report.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/lan.hpp"

int main() {
  using namespace cdcs;
  const model::ConstraintGraph cg = workloads::campus_lan();
  const commlib::Library lib = commlib::lan_library();

  const synth::SynthesisResult result = synth::synthesize(cg, lib).value();
  std::cout << io::describe(result, cg, lib);

  // How much did exploring mergings/segmentations buy over naive
  // point-to-point wiring?
  const baseline::BaselineResult ptp =
      baseline::point_to_point_baseline(cg, lib);
  std::cout << "\nPoint-to-point baseline cost: " << ptp.cost
            << "\nSynthesized cost:             " << result.total_cost
            << "\nSaving:                       "
            << (ptp.cost - result.total_cost) << " ("
            << 100.0 * (ptp.cost - result.total_cost) / ptp.cost << "%)\n";
  return result.validation.ok() ? 0 : 1;
}
