// The paper's Section 4 WAN example (Figs. 3-4) end to end: build the
// reconstructed constraint graph, synthesize against the radio/optical
// library, and print the chosen architecture plus the candidate statistics
// the paper reports (13 two-way, 21 three-way, 16 four-way mergings, a8
// unmergeable).
#include <iostream>

#include "commlib/standard_libraries.hpp"
#include "io/dot.hpp"
#include "io/report.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/wan2002.hpp"

int main(int argc, char** argv) {
  using namespace cdcs;
  const model::ConstraintGraph cg = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();

  const synth::SynthesisResult result = synth::synthesize(cg, lib).value();
  std::cout << io::describe(result, cg, lib);

  if (argc > 1 && std::string_view(argv[1]) == "--dot") {
    std::cout << "\n--- implementation graph (Graphviz) ---\n"
              << io::to_dot(*result.implementation);
  }
  return result.validation.ok() ? 0 : 1;
}
