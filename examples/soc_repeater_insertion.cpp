// The paper's second Section 4 example (Fig. 5): optimal repeater insertion
// on the critical channels of a multi-processor MPEG-4 decoder in a 0.18u
// process. Library: one metal wire of critical length l_crit = 0.6 mm plus
// optimally-sized inverter/mux/demux; cost = number of inserted repeaters;
// Manhattan distance. The paper's result: 55 repeaters in total.
#include <cstdio>

#include "commlib/standard_libraries.hpp"
#include "io/report.hpp"
#include "synth/synthesizer.hpp"
#include "workloads/mpeg4_soc.hpp"

int main() {
  using namespace cdcs;
  const model::ConstraintGraph cg = workloads::mpeg4_soc();
  const commlib::Library lib =
      commlib::soc_library(workloads::kMpeg4CritLengthMm);

  const synth::SynthesisResult result = synth::synthesize(cg, lib).value();

  std::puts("Per-channel segmentation (repeaters = floor(manhattan/l_crit)):");
  std::size_t repeaters = 0;
  for (const synth::Candidate* c : result.selected()) {
    if (c->ptp) {
      const int r = c->ptp->segments - 1;
      repeaters += r * c->ptp->parallel;
      std::printf("  %-22s d=%5.2f mm  -> %d repeaters\n",
                  cg.channel(c->arcs.front()).name.c_str(), c->ptp->span, r);
    } else {
      std::printf("  (merging selected: %s)\n",
                  io::describe_candidate(*c, cg, lib).c_str());
    }
  }
  const std::size_t inserted =
      result.implementation->count_nodes(commlib::NodeKind::kRepeater);
  std::printf("\nTotal repeaters inserted: %zu (paper: 55, l_crit = %.1f mm)\n",
              inserted, workloads::kMpeg4CritLengthMm);
  std::printf("Implementation cost (Def 2.5): %.0f\n", result.total_cost);
  std::printf("Validation: %s\n", result.validation.ok() ? "PASS" : "FAIL");
  return result.validation.ok() && inserted == 55 ? 0 : 1;
}
