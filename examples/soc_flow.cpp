// Full SoC flow: netlist -> analytical placement -> constraint graph ->
// communication synthesis. The paper assumes port positions are given; this
// example produces them with the quadratic placer (src/place), then runs
// the repeater-insertion synthesis of the paper's second example on the
// resulting floorplan -- the complete path from a connectivity netlist to a
// repeater-annotated communication architecture.
#include <cstdio>

#include "commlib/standard_libraries.hpp"
#include "place/placement.hpp"
#include "synth/synthesizer.hpp"

int main() {
  using namespace cdcs;

  // --- 1. Netlist: blocks, I/O pads on the die boundary (5 x 5 mm), and
  //        weighted nets (weight = relative bandwidth demand). ---
  place::PlacementProblem netlist;
  const auto pad_mem = netlist.add_fixed("pad_sdram", {2.5, 5.0});
  const auto pad_vid = netlist.add_fixed("pad_video", {5.0, 0.5});
  const auto pad_aud = netlist.add_fixed("pad_audio", {0.0, 0.5});
  const auto pad_host = netlist.add_fixed("pad_host", {0.0, 4.5});

  const auto risc = netlist.add_module("risc_cpu");
  const auto sdram = netlist.add_module("sdram_ctrl");
  const auto vld = netlist.add_module("vld");
  const auto idct = netlist.add_module("idct");
  const auto mc = netlist.add_module("motion_comp");
  const auto dma = netlist.add_module("dma");
  const auto vout = netlist.add_module("video_out");
  const auto audio = netlist.add_module("audio_if");

  netlist.connect(pad_host, risc, 2.0);
  netlist.connect(pad_mem, sdram, 8.0);
  netlist.connect(pad_vid, vout, 4.0);
  netlist.connect(pad_aud, audio, 1.0);
  netlist.connect(risc, sdram, 2.0);
  netlist.connect(sdram, dma, 6.0);
  netlist.connect(dma, vld, 3.0);
  netlist.connect(vld, idct, 3.0);
  netlist.connect(idct, mc, 3.0);
  netlist.connect(mc, vout, 4.0);
  netlist.connect(dma, mc, 2.0);
  netlist.connect(dma, audio, 1.0);

  const place::PlacementResult placed = place::place(netlist);
  std::printf("Placement: %s after %d CG iterations, Phi = %.3f\n\n",
              placed.converged ? "converged" : "NOT converged",
              placed.iterations, placed.quadratic_wirelength);
  for (std::size_t i = 0; i < netlist.modules.size(); ++i) {
    std::printf("  %-12s at (%.2f, %.2f)%s\n",
                netlist.modules[i].name.c_str(), placed.positions[i].x,
                placed.positions[i].y,
                netlist.modules[i].fixed ? "  [pad]" : "");
  }

  // --- 2. Constraint graph from the placed netlist: one channel per
  //        inter-block net (pads excluded), Manhattan distances. ---
  model::ConstraintGraph cg(geom::Norm::kManhattan);
  std::vector<model::VertexId> port(netlist.modules.size());
  for (std::size_t i = 0; i < netlist.modules.size(); ++i) {
    if (!netlist.modules[i].fixed) {
      port[i] = cg.add_port(netlist.modules[i].name, placed.positions[i]);
    }
  }
  std::size_t skipped_short = 0;
  for (const place::Net& n : netlist.nets) {
    if (netlist.modules[n.a].fixed || netlist.modules[n.b].fixed) continue;
    // Quadratic placement pulls tightly-coupled blocks together; channels
    // shorter than the critical length need no synthesis.
    const double d = geom::distance(placed.positions[n.a],
                                    placed.positions[n.b],
                                    geom::Norm::kManhattan);
    if (d < 0.05) {
      ++skipped_short;
      continue;
    }
    cg.add_channel(port[n.a], port[n.b], /*bandwidth=*/1.0,
                   netlist.modules[n.a].name + "->" +
                       netlist.modules[n.b].name);
  }
  std::printf("\nConstraint graph: %zu channels (%zu sub-50um nets skipped)\n",
              cg.num_channels(), skipped_short);

  // --- 3. Synthesis with the paper's 0.18u repeater library. ---
  const commlib::Library lib = commlib::soc_library(0.6);
  const synth::SynthesisResult result = synth::synthesize(cg, lib).value();
  std::printf("Synthesized repeaters: %zu (cost %.0f), validation %s\n",
              result.implementation->count_nodes(commlib::NodeKind::kRepeater),
              result.total_cost, result.validation.ok() ? "PASS" : "FAIL");
  for (const synth::Candidate* c : result.selected()) {
    if (c->ptp && c->ptp->segments > 1) {
      std::printf("  %-24s %.2f mm -> %d repeaters\n",
                  cg.channel(c->arcs.front()).name.c_str(), c->ptp->span,
                  c->ptp->segments - 1);
    }
  }
  return result.validation.ok() ? 0 : 1;
}
