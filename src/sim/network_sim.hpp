// Discrete-event performance simulation of a synthesized communication
// architecture.
//
// The paper's structural model guarantees capacity feasibility (every link
// carries at most its bandwidth under the planned flow split); this module
// checks the *dynamic* story the related work validates by simulation
// ([Knudsen-Madsen], [Lahiri-Raghunathan-Dey]): packets arrive in bursts,
// queue at links, and experience latency. Each constraint channel injects a
// Poisson packet stream at a configurable fraction of its required
// bandwidth; packets traverse one of the channel's registered paths (picked
// proportionally to the planned flow split), queueing FIFO at every link
// (single server, service time = packet size / link bandwidth) and paying
// propagation and node-processing delays.
//
// Outputs per channel (throughput, mean/max end-to-end latency) and per
// link (utilization, peak backlog). A stable, well-synthesized network
// sustains offered load < 100% with bounded queues; offered load beyond
// link capacity shows up as saturated utilization and growing delay -- the
// bench drives both regimes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/implementation_graph.hpp"
#include "sim/delay.hpp"

namespace cdcs::sim {

struct SimConfig {
  double duration{1000.0};    ///< simulated time units
  double load{0.8};           ///< injected rate as a fraction of each b(a)
  double packet_size{1.0};    ///< "bits": service time = size / b(link)
  std::uint64_t seed{1};
  DelayModel delay;           ///< propagation + node processing
  double warmup_fraction{0.1};  ///< stats ignore the first fraction
};

struct ChannelSimStats {
  model::ArcId arc;
  std::string name;
  std::uint64_t injected{0};
  std::uint64_t delivered{0};
  double mean_latency{0.0};
  double max_latency{0.0};
  /// Delivered throughput in bandwidth units (packets * size / time).
  double throughput{0.0};
};

struct LinkSimStats {
  double utilization{0.0};  ///< busy time / measured time
  std::uint64_t served{0};
  std::uint64_t peak_queue{0};  ///< max packets waiting + in service
};

struct SimReport {
  std::vector<ChannelSimStats> channels;
  std::vector<LinkSimStats> links;  ///< indexed by implementation arc index
  double measured_time{0.0};

  /// True when every link stayed below the utilization bound and every
  /// channel delivered at least `min_delivery` of its injected packets.
  bool stable(double max_utilization = 0.999,
              double min_delivery = 0.95) const;
};

/// Simulates `impl` under `config`. Channels without registered paths are
/// skipped. Deterministic for a fixed seed.
SimReport simulate_network(const model::ImplementationGraph& impl,
                           const SimConfig& config);

}  // namespace cdcs::sim
