#include "sim/delay.hpp"

#include <algorithm>
#include <limits>

namespace cdcs::sim {

std::vector<ChannelDelay> DelayReport::violations(double budget) const {
  std::vector<ChannelDelay> out;
  for (const ChannelDelay& c : channels) {
    if (c.worst_path_delay > budget) out.push_back(c);
  }
  return out;
}

DelayReport analyze_delays(const model::ImplementationGraph& impl,
                           const DelayModel& model) {
  DelayReport report;
  const auto& cg = impl.constraints();
  for (model::ArcId a : cg.arcs()) {
    const std::vector<model::Path>& paths = impl.arc_implementation(a);
    if (paths.empty()) continue;
    ChannelDelay cd;
    cd.arc = a;
    cd.name = cg.channel(a).name;
    cd.best_path_delay = std::numeric_limits<double>::infinity();
    for (const model::Path& q : paths) {
      double delay = 0.0;
      std::size_t hops = 0;
      for (model::ArcId la : q.arcs) {
        delay += model.link_delay_per_length * impl.arc_span(la);
        const model::VertexId mid = impl.arc_target(la);
        if (impl.is_communication(mid)) {
          delay += model.node_delay;
          ++hops;
        }
      }
      // The final vertex is chi(v): computational, no node delay. Any
      // comm vertex counted above is interior to the path.
      if (delay > cd.worst_path_delay) {
        cd.worst_path_delay = delay;
        cd.hops = hops;
      }
      cd.best_path_delay = std::min(cd.best_path_delay, delay);
    }
    report.max_delay = std::max(report.max_delay, cd.worst_path_delay);
    report.channels.push_back(std::move(cd));
  }
  return report;
}

}  // namespace cdcs::sim
