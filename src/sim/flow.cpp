#include "sim/flow.hpp"

#include <algorithm>
#include <limits>
#include <string>

namespace cdcs::sim {

FlowAssignment assign_flows(const model::ImplementationGraph& impl) {
  FlowAssignment out;
  out.arc_load.assign(impl.num_link_arcs(), 0.0);
  const auto arcs = impl.constraints().arcs();
  out.unrouted.reserve(arcs.size());

  for (model::ArcId ca : arcs) {
    double remaining = impl.constraints().bandwidth(ca);
    const std::vector<model::Path>& paths = impl.arc_implementation(ca);
    for (std::size_t qi = 0; qi < paths.size() && remaining > 0.0; ++qi) {
      // Residual bottleneck of this path given flow already placed.
      double residual = std::numeric_limits<double>::infinity();
      for (model::ArcId a : paths[qi].arcs) {
        residual = std::min(
            residual, impl.arc_bandwidth(a) - out.arc_load[a.index()]);
      }
      const double f = std::clamp(residual, 0.0, remaining);
      if (f <= 0.0) continue;
      for (model::ArcId a : paths[qi].arcs) out.arc_load[a.index()] += f;
      out.path_flows.push_back(PathFlow{ca, qi, f});
      remaining -= f;
    }
    out.unrouted.push_back(std::max(remaining, 0.0));
  }
  return out;
}

std::vector<std::string> capacity_violations(
    const model::ImplementationGraph& impl, const FlowAssignment& flows,
    double tolerance) {
  std::vector<std::string> problems;
  for (std::size_t i = 0; i < flows.arc_load.size(); ++i) {
    const model::ArcId a{static_cast<std::uint32_t>(i)};
    const double cap = impl.arc_bandwidth(a);
    if (flows.arc_load[i] > cap + tolerance) {
      problems.push_back("link arc #" + std::to_string(i) + " ('" +
                         impl.library().link(impl.link_arc(a).link).name +
                         "') carries " + std::to_string(flows.arc_load[i]) +
                         " over capacity " + std::to_string(cap) +
                         " (excess " +
                         std::to_string(flows.arc_load[i] - cap) + ")");
    }
  }
  const auto arcs = impl.constraints().arcs();
  for (std::size_t i = 0; i < flows.unrouted.size(); ++i) {
    if (flows.unrouted[i] > tolerance) {
      problems.push_back(
          "constraint arc '" + impl.constraints().channel(arcs[i]).name +
          "' has " + std::to_string(flows.unrouted[i]) + " of its " +
          std::to_string(impl.constraints().bandwidth(arcs[i])) +
          " bandwidth unrouted");
    }
  }
  return problems;
}

}  // namespace cdcs::sim
