// Path-based flow assignment over an implementation graph.
//
// Definition 2.4 requires each constraint arc's bandwidth to be covered by
// the bandwidths of its implementing paths. When arcs are shared across
// constraint arcs (K-way merging, Def 2.8) the paper's literal condition only
// compares against each path's own link bandwidths; the physical reading of
// a mux ("merges them into one outgoing link whose bandwidth is larger than
// the sum of the incoming one") additionally requires that the *total* flow
// crossing any shared link fits its bandwidth. This module computes an
// explicit flow assignment so both readings can be checked (see
// CapacityPolicy in model/validator.hpp).
//
// The assignment is a greedy water-fill: constraint arcs are processed in
// order; each routes its demand over its registered paths, bounded by the
// residual capacity of every link along each path. Success is a *proof* of
// feasibility (the explicit flows are returned); failure is conservative --
// an LP could in principle succeed where the greedy order fails -- but for
// the tree-shaped structures this library synthesizes (parallel bundles and
// shared trunks sized for the sum of their demands) the greedy fill is exact.
#pragma once

#include <vector>

#include "model/implementation_graph.hpp"

namespace cdcs::sim {

struct PathFlow {
  model::ArcId constraint_arc;
  std::size_t path_index{0};
  double flow{0.0};
};

struct FlowAssignment {
  std::vector<PathFlow> path_flows;
  /// Total flow routed over each implementation arc, indexed by arc index.
  std::vector<double> arc_load;
  /// Demand left unrouted per constraint arc (all zero on success).
  std::vector<double> unrouted;

  bool feasible(double tolerance = 1e-9) const {
    for (double u : unrouted) {
      if (u > tolerance) return false;
    }
    return true;
  }
};

/// Routes every constraint arc's bandwidth over its registered paths under
/// shared-sum link capacities.
FlowAssignment assign_flows(const model::ImplementationGraph& impl);

/// Human-readable list of links whose load exceeds their bandwidth and of
/// constraint arcs whose demand could not be routed (empty = feasible).
std::vector<std::string> capacity_violations(
    const model::ImplementationGraph& impl, const FlowAssignment& flows,
    double tolerance = 1e-9);

}  // namespace cdcs::sim
