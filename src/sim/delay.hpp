// Channel delay analysis over an implementation graph.
//
// The paper's on-chip result "is valid as long as ... all links on the chip
// have a delay smaller than the clock period" (Sec. 4). This module makes
// that assumption checkable: given per-library-element delay figures, it
// computes the worst-case end-to-end delay of every constraint arc's
// implementation (max over its paths of the sum of link and node delays)
// and reports which channels violate a delay budget.
//
// The delay model is intentionally first-order, matching the paper's
// abstraction level:
//   * a link instance of span s contributes  link_delay_per_length * s
//     (with optimal repeatering, on-chip wire delay is linear in length --
//     the very premise of l_crit segmentation [Otten-Brayton]; for WAN/LAN
//     media this is the propagation delay);
//   * every communication vertex (repeater, mux, demux, switch) contributes
//     its node_delay.
#pragma once

#include <string>
#include <vector>

#include "model/implementation_graph.hpp"

namespace cdcs::sim {

struct DelayModel {
  /// Delay per unit length of wire/medium (e.g. ns per mm, or us per km).
  double link_delay_per_length{1.0};
  /// Delay through any communication vertex (repeater/mux/demux/switch).
  double node_delay{0.0};
};

struct ChannelDelay {
  model::ArcId arc;
  std::string name;
  double worst_path_delay{0.0};  ///< max over the arc's registered paths
  double best_path_delay{0.0};   ///< min over paths (single-path: == worst)
  std::size_t hops{0};           ///< comm vertices on the worst path
};

struct DelayReport {
  std::vector<ChannelDelay> channels;
  double max_delay{0.0};

  /// Channels whose worst-case delay exceeds `budget`.
  std::vector<ChannelDelay> violations(double budget) const;
};

/// Analyzes every constraint arc of `impl`. Arcs without registered paths
/// are skipped (the Def 2.4 validator reports those).
DelayReport analyze_delays(const model::ImplementationGraph& impl,
                           const DelayModel& model);

}  // namespace cdcs::sim
