#include "sim/network_sim.hpp"

#include <algorithm>
#include <queue>
#include <random>

#include "sim/flow.hpp"

namespace cdcs::sim {
namespace {

struct PacketRoute {
  model::ArcId channel;
  std::vector<model::ArcId> hops;  ///< link arcs in traversal order
};

struct Event {
  double time{0.0};
  std::uint32_t packet{0};
  std::uint32_t hop{0};  ///< index into the packet's route
  friend bool operator>(const Event& a, const Event& b) {
    return a.time > b.time;
  }
};

struct Packet {
  std::uint32_t route{0};
  double injected_at{0.0};
};

}  // namespace

bool SimReport::stable(double max_utilization, double min_delivery) const {
  for (const LinkSimStats& l : links) {
    if (l.utilization > max_utilization) return false;
  }
  for (const ChannelSimStats& c : channels) {
    if (c.injected > 0 &&
        static_cast<double>(c.delivered) <
            min_delivery * static_cast<double>(c.injected)) {
      return false;
    }
  }
  return true;
}

SimReport simulate_network(const model::ImplementationGraph& impl,
                           const SimConfig& config) {
  const auto& cg = impl.constraints();
  SimReport report;
  report.links.resize(impl.num_link_arcs());
  const double warmup = config.duration * config.warmup_fraction;
  report.measured_time = config.duration - warmup;

  // Routes per channel, weighted by the planned flow split.
  std::vector<PacketRoute> routes;
  std::vector<std::vector<std::size_t>> routes_of_channel(cg.num_channels());
  std::vector<std::vector<double>> route_weight(cg.num_channels());
  const FlowAssignment flows = assign_flows(impl);
  for (const PathFlow& pf : flows.path_flows) {
    const auto& paths = impl.arc_implementation(pf.constraint_arc);
    routes_of_channel[pf.constraint_arc.index()].push_back(routes.size());
    route_weight[pf.constraint_arc.index()].push_back(pf.flow);
    routes.push_back(PacketRoute{pf.constraint_arc,
                                 paths[pf.path_index].arcs});
  }

  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // Pre-generate Poisson injections per channel.
  std::vector<Packet> packets;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  report.channels.reserve(cg.num_channels());
  for (model::ArcId ca : cg.arcs()) {
    ChannelSimStats stats;
    stats.arc = ca;
    stats.name = cg.channel(ca).name;
    const auto& channel_routes = routes_of_channel[ca.index()];
    if (!channel_routes.empty()) {
      const double rate =
          config.load * cg.bandwidth(ca) / config.packet_size;
      std::exponential_distribution<double> gap(rate);
      // Route chooser: cumulative weights.
      std::vector<double> cum;
      double total = 0.0;
      for (double w : route_weight[ca.index()]) {
        total += w;
        cum.push_back(total);
      }
      for (double t = gap(rng); t < config.duration; t += gap(rng)) {
        const double pick = unit(rng) * total;
        std::size_t ri = 0;
        while (ri + 1 < cum.size() && cum[ri] < pick) ++ri;
        const std::uint32_t packet_id =
            static_cast<std::uint32_t>(packets.size());
        packets.push_back(Packet{
            static_cast<std::uint32_t>(channel_routes[ri]), t});
        queue.push(Event{t, packet_id, 0});
        if (t >= warmup) ++stats.injected;
      }
    }
    report.channels.push_back(std::move(stats));
  }

  // Per-link single-server FIFO state.
  std::vector<double> free_at(impl.num_link_arcs(), 0.0);
  std::vector<double> busy_time(impl.num_link_arcs(), 0.0);
  std::vector<std::uint64_t> in_system(impl.num_link_arcs(), 0);

  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    // The horizon is hard: packets still in flight at `duration` are lost,
    // so an overloaded link's delivered throughput saturates at its
    // capacity instead of draining after the arrival process stops.
    if (ev.time >= config.duration) continue;
    const Packet& pkt = packets[ev.packet];
    const PacketRoute& route = routes[pkt.route];

    if (ev.hop == route.hops.size()) {
      // Delivered.
      if (pkt.injected_at >= warmup) {
        ChannelSimStats& cs = report.channels[route.channel.index()];
        const double latency = ev.time - pkt.injected_at;
        cs.mean_latency += latency;  // sum for now; normalized below
        cs.max_latency = std::max(cs.max_latency, latency);
        ++cs.delivered;
      }
      continue;
    }

    const model::ArcId link = route.hops[ev.hop];
    const std::size_t li = link.index();
    const double service = config.packet_size / impl.arc_bandwidth(link);
    const double start = std::max(ev.time, free_at[li]);
    const double done = start + service;
    // Queue depth proxy: packets that will still be in the server when this
    // one arrives, plus this one.
    const std::uint64_t depth = static_cast<std::uint64_t>(
        std::max(0.0, (free_at[li] - ev.time) / service)) + 1;
    report.links[li].peak_queue = std::max(report.links[li].peak_queue, depth);
    free_at[li] = done;
    // Busy time is clamped to the measurement window [warmup, duration]:
    // deeply-queued packets schedule service far beyond the horizon, which
    // must read as 100% utilization, not more.
    const double measured_start = std::max(start, warmup);
    const double measured_done = std::min(done, config.duration);
    if (measured_done > measured_start) {
      busy_time[li] += measured_done - measured_start;
      ++report.links[li].served;
    }

    double next_time = done +
                       config.delay.link_delay_per_length *
                           impl.arc_span(link);
    const model::VertexId mid = impl.arc_target(link);
    if (impl.is_communication(mid)) next_time += config.delay.node_delay;
    queue.push(Event{next_time, ev.packet, ev.hop + 1});
    (void)in_system;
  }

  for (ChannelSimStats& cs : report.channels) {
    if (cs.delivered > 0) {
      cs.mean_latency /= static_cast<double>(cs.delivered);
      cs.throughput = static_cast<double>(cs.delivered) * config.packet_size /
                      report.measured_time;
    }
  }
  for (std::size_t i = 0; i < report.links.size(); ++i) {
    report.links[i].utilization = busy_time[i] / report.measured_time;
  }
  return report;
}

}  // namespace cdcs::sim
