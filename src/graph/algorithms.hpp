// Graph algorithms over Digraph: traversal, shortest paths, connectivity.
//
// The implementation-graph validator uses BFS reachability and Dijkstra
// (min-cost / max-bottleneck path searches) to check Def 2.4; the flow
// validator and the DOT writer use component and ordering queries. All
// algorithms are generic over the payload types and take the arc weight as a
// callable so the same routine serves length, cost, and bandwidth queries.
#pragma once

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "graph/digraph.hpp"

namespace cdcs::graph {

/// Vertices reachable from `start` following arc direction (including start).
template <typename VP, typename AP>
std::vector<bool> reachable_from(const Digraph<VP, AP>& g, VertexId start) {
  std::vector<bool> seen(g.num_vertices(), false);
  std::vector<VertexId> stack{start};
  seen[start.index()] = true;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (ArcId a : g.out_arcs(v)) {
      const VertexId w = g.target(a);
      if (!seen[w.index()]) {
        seen[w.index()] = true;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

/// Result of a single-source shortest-path run. `arc_into[v]` is the arc used
/// to reach v on the best path (invalid for unreached vertices and the source).
struct ShortestPaths {
  std::vector<double> distance;
  std::vector<ArcId> arc_into;

  bool reached(VertexId v) const {
    return distance[v.index()] < std::numeric_limits<double>::infinity();
  }
};

/// Dijkstra with a caller-supplied nonnegative arc weight. `allowed` (when
/// non-null, sized num_vertices) masks which vertices may be traversed; the
/// validator uses it to forbid paths through computational vertices (Def 2.4
/// condition 1).
template <typename VP, typename AP, typename WeightFn>
ShortestPaths dijkstra(const Digraph<VP, AP>& g, VertexId source,
                       WeightFn&& weight,
                       const std::vector<bool>* allowed = nullptr) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ShortestPaths result{std::vector<double>(g.num_vertices(), kInf),
                       std::vector<ArcId>(g.num_vertices(), ArcId{})};
  using Entry = std::pair<double, VertexId>;
  auto cmp = [](const Entry& a, const Entry& b) { return a.first > b.first; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  result.distance[source.index()] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > result.distance[v.index()]) continue;  // stale entry
    for (ArcId a : g.out_arcs(v)) {
      const VertexId w = g.target(a);
      if (allowed != nullptr && !(*allowed)[w.index()]) continue;
      const double nd = d + weight(a);
      if (nd < result.distance[w.index()]) {
        result.distance[w.index()] = nd;
        result.arc_into[w.index()] = a;
        heap.push({nd, w});
      }
    }
  }
  return result;
}

/// Reconstructs the arc sequence of the best path source -> v found by
/// dijkstra. Empty when v was not reached (or v == source).
template <typename VP, typename AP>
std::vector<ArcId> extract_path(const Digraph<VP, AP>& g,
                                const ShortestPaths& sp, VertexId v) {
  std::vector<ArcId> path;
  if (!sp.reached(v)) return path;
  VertexId cur = v;
  while (sp.arc_into[cur.index()].valid()) {
    const ArcId a = sp.arc_into[cur.index()];
    path.push_back(a);
    cur = g.source(a);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

/// Widest-path ("max bottleneck bandwidth") from source: maximizes the
/// minimum arc capacity along the path. Used by the Def 2.4 validator to find
/// the most capable residual path for each constraint arc.
template <typename VP, typename AP, typename CapFn>
ShortestPaths widest_paths(const Digraph<VP, AP>& g, VertexId source,
                           CapFn&& capacity,
                           const std::vector<bool>* allowed = nullptr) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // distance[] holds the negated bottleneck so that "smaller is better"
  // bookkeeping is shared with dijkstra consumers; callers should use
  // bottleneck_of() below.
  ShortestPaths result{std::vector<double>(g.num_vertices(), kInf),
                       std::vector<ArcId>(g.num_vertices(), ArcId{})};
  std::vector<double> best(g.num_vertices(), 0.0);
  using Entry = std::pair<double, VertexId>;
  std::priority_queue<Entry> heap;  // max-heap on bottleneck
  best[source.index()] = kInf;
  result.distance[source.index()] = -kInf;
  heap.push({kInf, source});
  while (!heap.empty()) {
    const auto [b, v] = heap.top();
    heap.pop();
    if (b < best[v.index()]) continue;
    for (ArcId a : g.out_arcs(v)) {
      const VertexId w = g.target(a);
      if (allowed != nullptr && !(*allowed)[w.index()]) continue;
      const double nb = std::min(b, capacity(a));
      if (nb > best[w.index()]) {
        best[w.index()] = nb;
        result.distance[w.index()] = -nb;
        result.arc_into[w.index()] = a;
        heap.push({nb, w});
      }
    }
  }
  return result;
}

/// Bottleneck value recorded by widest_paths for vertex v (0 if unreached).
inline double bottleneck_of(const ShortestPaths& sp, VertexId v) {
  const double d = sp.distance[v.index()];
  return d == std::numeric_limits<double>::infinity() ? 0.0 : -d;
}

/// Weakly-connected component label per vertex, labels dense from 0.
template <typename VP, typename AP>
std::vector<int> weak_components(const Digraph<VP, AP>& g) {
  std::vector<int> comp(g.num_vertices(), -1);
  int next = 0;
  for (std::uint32_t s = 0; s < g.num_vertices(); ++s) {
    if (comp[s] != -1) continue;
    comp[s] = next;
    std::vector<VertexId> stack{VertexId{s}};
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      auto visit = [&](VertexId w) {
        if (comp[w.index()] == -1) {
          comp[w.index()] = next;
          stack.push_back(w);
        }
      };
      for (ArcId a : g.out_arcs(v)) visit(g.target(a));
      for (ArcId a : g.in_arcs(v)) visit(g.source(a));
    }
    ++next;
  }
  return comp;
}

/// Topological order of vertices; empty when the graph has a directed cycle.
template <typename VP, typename AP>
std::vector<VertexId> topological_order(const Digraph<VP, AP>& g) {
  std::vector<std::size_t> indegree(g.num_vertices(), 0);
  g.for_each_arc([&](ArcId a) { ++indegree[g.target(a).index()]; });
  std::vector<VertexId> order;
  order.reserve(g.num_vertices());
  std::vector<VertexId> ready;
  for (std::uint32_t v = 0; v < g.num_vertices(); ++v) {
    if (indegree[v] == 0) ready.push_back(VertexId{v});
  }
  while (!ready.empty()) {
    const VertexId v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (ArcId a : g.out_arcs(v)) {
      const VertexId w = g.target(a);
      if (--indegree[w.index()] == 0) ready.push_back(w);
    }
  }
  if (order.size() != g.num_vertices()) order.clear();
  return order;
}

template <typename VP, typename AP>
bool has_cycle(const Digraph<VP, AP>& g) {
  return g.num_vertices() != 0 && topological_order(g).empty();
}

}  // namespace cdcs::graph
