// Minimal directed-graph substrate.
//
// Both the constraint graph (Def 2.1) and the implementation graph (Def 2.4)
// are directed graphs with per-vertex and per-arc payloads. No external graph
// library is assumed; this header provides an append-only adjacency-list
// digraph with strongly-typed ids. Append-only is a deliberate invariant:
// synthesis never deletes model elements (candidate structures are built in
// fresh graphs instead), so ids stay dense and stable, which lets every other
// module use plain vectors indexed by id.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

namespace cdcs::graph {

/// Strongly-typed index. Tag disambiguates vertex vs arc ids at compile time.
template <typename Tag>
struct Id {
  std::uint32_t value{kInvalid};

  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : value(v) {}

  constexpr bool valid() const { return value != kInvalid; }
  constexpr std::size_t index() const { return value; }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;
};

struct VertexTag {};
struct ArcTag {};
using VertexId = Id<VertexTag>;
using ArcId = Id<ArcTag>;

/// Directed graph with vertex payload VP and arc payload AP.
template <typename VP, typename AP>
class Digraph {
 public:
  struct Arc {
    VertexId source;
    VertexId target;
    AP payload;
  };

  VertexId add_vertex(VP payload = VP{}) {
    vertices_.push_back(std::move(payload));
    out_.emplace_back();
    in_.emplace_back();
    return VertexId{static_cast<std::uint32_t>(vertices_.size() - 1)};
  }

  ArcId add_arc(VertexId source, VertexId target, AP payload = AP{}) {
    check_vertex(source);
    check_vertex(target);
    arcs_.push_back(Arc{source, target, std::move(payload)});
    const ArcId id{static_cast<std::uint32_t>(arcs_.size() - 1)};
    out_[source.index()].push_back(id);
    in_[target.index()].push_back(id);
    return id;
  }

  std::size_t num_vertices() const { return vertices_.size(); }
  std::size_t num_arcs() const { return arcs_.size(); }

  VP& vertex(VertexId v) {
    check_vertex(v);
    return vertices_[v.index()];
  }
  const VP& vertex(VertexId v) const {
    check_vertex(v);
    return vertices_[v.index()];
  }

  Arc& arc(ArcId a) {
    check_arc(a);
    return arcs_[a.index()];
  }
  const Arc& arc(ArcId a) const {
    check_arc(a);
    return arcs_[a.index()];
  }

  VertexId source(ArcId a) const { return arc(a).source; }
  VertexId target(ArcId a) const { return arc(a).target; }

  const std::vector<ArcId>& out_arcs(VertexId v) const {
    check_vertex(v);
    return out_[v.index()];
  }
  const std::vector<ArcId>& in_arcs(VertexId v) const {
    check_vertex(v);
    return in_[v.index()];
  }

  std::size_t out_degree(VertexId v) const { return out_arcs(v).size(); }
  std::size_t in_degree(VertexId v) const { return in_arcs(v).size(); }

  /// Visits every vertex id in insertion order.
  template <typename F>
  void for_each_vertex(F&& f) const {
    for (std::uint32_t i = 0; i < vertices_.size(); ++i) f(VertexId{i});
  }

  /// Visits every arc id in insertion order.
  template <typename F>
  void for_each_arc(F&& f) const {
    for (std::uint32_t i = 0; i < arcs_.size(); ++i) f(ArcId{i});
  }

 private:
  void check_vertex(VertexId v) const {
    if (!v.valid() || v.index() >= vertices_.size()) {
      throw std::out_of_range("Digraph: invalid vertex id");
    }
  }
  void check_arc(ArcId a) const {
    if (!a.valid() || a.index() >= arcs_.size()) {
      throw std::out_of_range("Digraph: invalid arc id");
    }
  }

  std::vector<VP> vertices_;
  std::vector<Arc> arcs_;
  std::vector<std::vector<ArcId>> out_;
  std::vector<std::vector<ArcId>> in_;
};

}  // namespace cdcs::graph

template <typename Tag>
struct std::hash<cdcs::graph::Id<Tag>> {
  std::size_t operator()(cdcs::graph::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
