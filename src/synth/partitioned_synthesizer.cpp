#include "synth/partitioned_synthesizer.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"
#include "synth/candidate_generator.hpp"
#include "synth/partition.hpp"
#include "synth/pipeline.hpp"
#include "ucp/cover.hpp"

namespace cdcs::synth {
namespace {

/// Everything one cluster contributes to the stitch.
struct ClusterOutcome {
  CandidateSet set;
  ucp::CoverSolution cover;
  DegradationReport degradation;
};

/// The cluster's arcs as an independent constraint graph. Ports keep their
/// global names and positions (ascending global vertex order), channels
/// keep their global names and bandwidths (ascending global arc order), so
/// every derived quantity -- distances, Gamma/Delta, pricing -- is computed
/// from the exact same doubles as in the full graph.
model::ConstraintGraph cluster_subgraph(const model::ConstraintGraph& cg,
                                        const Cluster& cluster) {
  std::vector<std::uint32_t> verts;
  verts.reserve(cluster.arcs.size() * 2);
  for (model::ArcId a : cluster.arcs) {
    verts.push_back(static_cast<std::uint32_t>(cg.source(a).index()));
    verts.push_back(static_cast<std::uint32_t>(cg.target(a).index()));
  }
  std::sort(verts.begin(), verts.end());
  verts.erase(std::unique(verts.begin(), verts.end()), verts.end());

  model::ConstraintGraph sub(cg.norm());
  std::vector<model::VertexId> local;
  local.reserve(verts.size());
  for (std::uint32_t v : verts) {
    const model::VertexId gv{v};
    local.push_back(sub.add_port(cg.port(gv).name, cg.position(gv)));
  }
  auto local_of = [&](model::VertexId gv) {
    const std::size_t pos = static_cast<std::size_t>(
        std::lower_bound(verts.begin(), verts.end(),
                         static_cast<std::uint32_t>(gv.index())) -
        verts.begin());
    return local[pos];
  };
  for (model::ArcId a : cluster.arcs) {
    sub.add_channel(local_of(cg.source(a)), local_of(cg.target(a)),
                    cg.bandwidth(a), cg.channel(a).name);
  }
  return sub;
}

/// Rewrites cluster-local ArcIds (index i) to global ids (cluster.arcs[i]).
void remap_arc_ids(std::vector<model::ArcId>& arcs,
                   const std::vector<model::ArcId>& global) {
  for (model::ArcId& a : arcs) a = global[a.index()];
}

void remap_candidate(Candidate& c, const std::vector<model::ArcId>& global) {
  remap_arc_ids(c.arcs, global);
  if (c.merging) remap_arc_ids(c.merging->arcs, global);
  if (c.chain) remap_arc_ids(c.chain->arcs, global);
  if (c.tree) remap_arc_ids(c.tree->arcs, global);
}

void add_per_k(std::vector<std::size_t>& into,
               const std::vector<std::size_t>& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (std::size_t k = 0; k < from.size(); ++k) into[k] += from[k];
}

/// Folds one cluster's generation stats into the global stats (per-k
/// vectors summed, eliminations mapped to global arc indices, flags OR-ed).
void merge_stats(GenerationStats& into, const GenerationStats& from,
                 const std::vector<model::ArcId>& global) {
  add_per_k(into.survivors_per_k, from.survivors_per_k);
  add_per_k(into.pruned_geometry_per_k, from.pruned_geometry_per_k);
  add_per_k(into.grid_prefilter_skips_per_k, from.grid_prefilter_skips_per_k);
  add_per_k(into.pruned_bandwidth_per_k, from.pruned_bandwidth_per_k);
  add_per_k(into.unpriceable_per_k, from.unpriceable_per_k);
  add_per_k(into.dropped_unprofitable_per_k, from.dropped_unprofitable_per_k);
  for (std::size_t i = 0; i < from.arc_eliminated_after_k.size(); ++i) {
    into.arc_eliminated_after_k[global[i].index()] =
        from.arc_eliminated_after_k[i];
  }
  into.subsets_examined += from.subsets_examined;
  into.enumeration_truncated |= from.enumeration_truncated;
  into.deadline_expired |= from.deadline_expired;
  into.pricing_cache_hits += from.pricing_cache_hits;
  into.pricing_cache_misses += from.pricing_cache_misses;
}

}  // namespace

bool partitioning_applies(const model::ConstraintGraph& cg,
                          const SynthesisOptions& options) {
  return options.partitioning.enabled &&
         cg.num_channels() >= options.partitioning.arc_threshold;
}

support::Expected<SynthesisResult> synthesize_partitioned(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const SynthesisOptions& options, const ucp::BnbOptions& solver_options) {
  auto& registry = support::MetricsRegistry::global();

  Partition part;
  {
    support::ScopedTimer span(
        "partition", "pipeline",
        &registry.histogram("synth.stage.partition.us"),
        &registry.counter("synth.stage.partition.wall_us"));
    part = partition_graph(cg, options.partitioning);
  }
  if (part.clusters.size() <= 1) {
    // Degenerate partition: the plain pipeline is the same computation.
    return run_pipeline(cg, library, options, solver_options, nullptr);
  }
  registry.counter("partition.runs").add(1);
  registry.counter("partition.clusters").add(part.clusters.size());
  registry.counter("partition.boundary_arcs").add(part.boundary_arcs.size());
  support::trace_instant(
      "partition", "pipeline",
      "{\"clusters\":" + std::to_string(part.clusters.size()) +
          ",\"interior\":" + std::to_string(part.num_interior) +
          ",\"boundary_arcs\":" + std::to_string(part.boundary_arcs.size()) +
          "}");

  // Parallelism budget: the outer pool fans whole clusters out, and any
  // threads it cannot absorb (more hardware than clusters) are granted to
  // the node level INSIDE each cluster solve -- pricing and, in a parallel
  // BnbMode, the B&B tree itself. On hosts where clusters >= threads the
  // per-cluster budget is 1 and the computation (hence every pinned
  // fingerprint) is exactly the old serial-inside-clusters one.
  const std::size_t total_threads =
      support::resolve_thread_count(options.threads);
  const std::size_t workers = std::min(total_threads, part.clusters.size());
  const int cluster_budget =
      static_cast<int>(std::max<std::size_t>(1, total_threads / workers));

  // Per-cluster configuration: partitioning must not recurse, and any
  // caller-provided warm start targets the global instance, not a cluster.
  // Cluster solves never borrow the outer pool (a pool task submitting to
  // its own pool and blocking on the future could deadlock); with a budget
  // above 1 they self-create.
  SynthesisOptions cluster_options = options;
  cluster_options.partitioning.enabled = false;
  cluster_options.threads = cluster_budget;
  cluster_options.pool = nullptr;
  if (const int cap = options.partitioning.cluster_max_merge_k; cap > 0) {
    cluster_options.max_merge_k = options.max_merge_k > 0
                                      ? std::min(options.max_merge_k, cap)
                                      : cap;
  }
  // Backend selection (cluster_solver.backend) rides along verbatim: each
  // cluster's cover goes through solve_exact's registry dispatch, so
  // "heuristic" re-picks a backend PER CLUSTER from that cluster's own
  // rows x cols x density -- small clusters hit the dense DP, wide sparse
  // ones the hitting-set solver -- and "portfolio" races within a cluster.
  ucp::BnbOptions cluster_solver = solver_options;
  cluster_solver.warm_start.clear();
  cluster_solver.warm_multipliers.clear();
  cluster_solver.threads = cluster_budget;
  cluster_solver.pool = nullptr;

  std::unique_ptr<support::ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<support::ThreadPool>(workers);

  std::vector<support::Expected<ClusterOutcome>> outcomes =
      support::parallel_map_ordered(
          pool.get(), part.clusters.size(),
          [&](std::size_t i) -> support::Expected<ClusterOutcome> {
            const Cluster& cl = part.clusters[i];
            support::Span span(
                cl.repair ? "repair-cluster" : "cluster", "partition",
                "{\"index\":" + std::to_string(i) +
                    ",\"arcs\":" + std::to_string(cl.arcs.size()) + "}");
            const model::ConstraintGraph sub = cluster_subgraph(cg, cl);
            support::Expected<CandidateSet> gen =
                generate_candidates(sub, library, cluster_options);
            if (!gen.ok()) {
              return std::move(gen).take_status().with_context(
                  "partitioned cluster " + std::to_string(i) +
                  " candidate generation");
            }
            ClusterOutcome out;
            out.set = *std::move(gen);
            support::Expected<CoverOutcome> covered =
                cover_and_ladder(sub.num_channels(), out.set, cluster_options,
                                 cluster_solver, nullptr);
            if (!covered.ok()) {
              return std::move(covered).take_status().with_context(
                  "partitioned cluster " + std::to_string(i) + " cover");
            }
            out.cover = std::move(covered->cover);
            out.degradation = std::move(covered->degradation);
            return out;
          });

  // Stitch in cluster order (deterministic regardless of which worker ran
  // which cluster: parallel_map_ordered hands results back in index order).
  SynthesisResult result;
  GenerationStats& stats = result.candidate_set.stats;
  stats.arc_eliminated_after_k.assign(cg.num_channels(), 0);
  stats.threads_used = workers;
  SynthesisStage worst = SynthesisStage::kExact;
  double lower_bound_sum = 0.0;
  std::size_t base = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok()) {
      return std::move(outcomes[i])
          .take_status()
          .with_context("partitioned synthesis");
    }
    ClusterOutcome& out = *outcomes[i];
    const std::vector<model::ArcId>& global = part.clusters[i].arcs;
    merge_stats(stats, out.set.stats, global);
    for (Candidate& c : out.set.candidates) {
      remap_candidate(c, global);
      result.candidate_set.candidates.push_back(std::move(c));
    }
    for (std::size_t j : out.cover.chosen) {
      result.cover.chosen.push_back(base + j);
    }
    base += out.set.candidates.size();
    result.cover.cost += out.cover.cost;
    result.cover.nodes_explored += out.cover.nodes_explored;
    result.cover.deadline_expired |= out.cover.deadline_expired;
    lower_bound_sum += out.degradation.lower_bound;
    worst = std::max(worst, out.degradation.stage);
  }
  // Global optimality across clusters is unproven even when every cluster
  // solved exactly (a cross-cluster merge could in principle beat the
  // stitched optimum, though the partitioner only separated arcs whose
  // pairings the geometry prunes), so the stitched cover is an incumbent
  // with an honest aggregate bound.
  result.cover.optimal = false;
  result.cover.lower_bound = lower_bound_sum;

  DegradationReport& deg = result.degradation;
  deg.stage = std::max(SynthesisStage::kIncumbent, worst);
  deg.lower_bound = lower_bound_sum;
  deg.reason =
      "partitioned synthesis: " + std::to_string(part.clusters.size()) +
      " clusters (" + std::to_string(part.num_interior) + " interior, " +
      std::to_string(part.num_repair()) + " boundary-repair), " +
      std::to_string(part.boundary_arcs.size()) +
      " boundary arcs; per-cluster optima stitched, global optimality "
      "not proven";
  if (worst != SynthesisStage::kExact) {
    deg.reason += "; worst cluster rung: ";
    deg.reason += to_string(worst);
  }
  deg.optimality_gap = ucp::optimality_gap(result.cover.cost, lower_bound_sum);
  registry.counter("synth.degraded_runs").add(1);
  support::trace_instant(
      "degraded", "pipeline",
      "{\"stage\":\"" + std::string(to_string(deg.stage)) + "\"}");

  assemble_and_validate(cg, library, options, result);
  registry.counter("synth.runs").add(1);
  return result;
}

}  // namespace cdcs::synth
