// Pricing of a candidate K-way arc merging (Sec. 3: "the exact structures
// (i.e. the exact topology, communication node position, number of links,
// ...) are later obtained solving a simple nonlinear optimization problem,
// which computes also their costs").
//
// A K-way merging of arcs a_i = (u_i, v_i) is realized by the generic
// hub--trunk--split structure:
//
//     chi(u_i) --ingress_i--> [hub H] ==== common trunk ==== [split S]
//                                                     --egress_i--> chi(v_i)
//
// * When all sources coincide, the trunk starts directly at the (unique)
//   computational vertex: no hub node, no ingress legs. Symmetrically for a
//   common target. (The WAN example's winning merging {a4,a5,a6} has the
//   common source D, so its structure is trunk-from-D plus a split near the
//   A/B/C cluster -- Figure 4.)
// * The trunk carries the *sum* of the merged bandwidths under
//   CapacityPolicy::kSharedSum (physical mux semantics) or the max under
//   kMaxPerConstraint (Def 2.8 literal).
// * Every leg and the trunk are themselves priced by the point-to-point
//   optimizer, so a merging may internally use segmentation or duplication.
//
// The positions of H and S are the decision variables of the paper's
// "minimize C(x) subject to K x = d" program; the objective is a nonnegative
// sum of library-priced leg costs, each a non-decreasing function of a
// norm-distance to H or S. It is minimized by Weiszfeld-seeded alternating
// 2-D derivative-free descent (exact for the linear per-length cost models of
// the paper's domains, where the subproblem is weighted Fermat-Weber).
#pragma once

#include <optional>
#include <vector>

#include "model/validator.hpp"
#include "support/deadline.hpp"
#include "synth/ptp.hpp"

namespace cdcs::synth {

struct MergingPlan {
  std::vector<model::ArcId> arcs;  ///< merged constraint arcs, sorted, k >= 2

  bool has_hub{false};    ///< sources differ -> hub communication vertex
  bool has_split{false};  ///< targets differ -> split communication vertex
  geom::Point2D hub_pos;    ///< trunk start (== common source when !has_hub)
  geom::Point2D split_pos;  ///< trunk end (== common target when !has_split)
  std::optional<commlib::NodeIndex> hub_node;    ///< mux-capable, iff has_hub
  std::optional<commlib::NodeIndex> split_node;  ///< demux-capable, iff has_split

  double trunk_bandwidth{0.0};
  std::optional<PtpPlan> trunk;  ///< nullopt iff hub_pos == split_pos exactly

  /// Per merged arc (parallel to `arcs`): plan for chi(u_i) -> hub. Present
  /// iff has_hub (zero-span legs keep a plan so the path reaches the hub
  /// vertex); absent when the trunk starts at the common source.
  std::vector<std::optional<PtpPlan>> ingress;
  std::vector<std::optional<PtpPlan>> egress;

  double cost{0.0};  ///< trunk + all legs + hub/split node costs
};

/// Prices the best hub--trunk--split realization of `subset` (|subset| >= 2).
/// Returns nullopt when the library lacks a required element (no mux-capable
/// node while sources differ, no demux-capable node while targets differ, or
/// some leg/trunk has no feasible point-to-point plan). A non-null `deadline`
/// that has expired makes the pricer bail out immediately with nullopt, so
/// candidate generation degrades to the already-priced structures.
std::optional<MergingPlan> price_merging(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    std::vector<model::ArcId> subset,
    model::CapacityPolicy policy = model::CapacityPolicy::kSharedSum,
    const support::Deadline* deadline = nullptr);

}  // namespace cdcs::synth
