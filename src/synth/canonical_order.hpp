// Canonical, graph-independent ordering of an arc subset by endpoint
// geometry.
//
// Subset pricing (merging_pricer, chain_pricer, tree_pricer) is sensitive
// to the order its input arcs arrive in: leg costs are summed in sequence
// (floating-point addition does not associate) and equal-cost structures
// tie-break by evaluation order. Sorting by raw ArcId -- the historical
// normalization -- bakes the graph's id assignment into the priced result,
// so the same physical subset prices differently after arcs are renumbered
// (e.g. a remove + re-add in an incremental session) or in a graph built in
// a different insertion order. Sorting by the per-arc GEOMETRY RECORD
//
//     (source.x, source.y, target.x, target.y, bandwidth)
//
// instead makes the priced plan a pure function of the subset's geometry:
// the invariant both the pricing cache ("a hit is bit-identical to the
// fresh solve it replaces", synth/pricing_cache.hpp) and the incremental
// engine's oracle ("apply() is bit-identical to from-scratch synthesis",
// synth/engine.hpp) are built on.
//
// Ties (arcs with identical records) keep their relative input order;
// such arcs are geometrically indistinguishable, so either assignment
// prices the same.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "model/constraint_graph.hpp"

namespace cdcs::synth {

/// The 5-double geometry record canonical ordering (and the pricing-cache
/// key) is defined over.
std::array<double, 5> arc_geometry_record(const model::ConstraintGraph& cg,
                                          model::ArcId a);

/// Canonical ordering of `subset`: positions into the caller's subset such
/// that visiting subset[order[0]], subset[order[1]], ... yields the per-arc
/// geometry records in sorted (lexicographic) order, stable on ties. Two
/// geometrically identical subsets produce the same record sequence through
/// their own canonical orders, REGARDLESS of how their graphs' arc ids are
/// permuted relative to each other.
std::vector<std::uint32_t> canonical_subset_order(
    const model::ConstraintGraph& cg, const std::vector<model::ArcId>& subset);

/// Permutes `subset` in place into canonical order.
void canonicalize_subset(const model::ConstraintGraph& cg,
                         std::vector<model::ArcId>& subset);

}  // namespace cdcs::synth
