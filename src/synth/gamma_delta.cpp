#include "synth/gamma_delta.hpp"

namespace cdcs::synth {

ArcPairMatrix gamma_matrix(const model::ConstraintGraph& cg) {
  const std::vector<model::ArcId> arcs = cg.arcs();
  ArcPairMatrix m(arcs.size());
  for (model::ArcId a : arcs) {
    for (model::ArcId b : arcs) {
      m.at(a, b) = cg.distance(a) + cg.distance(b);
    }
  }
  return m;
}

ArcPairMatrix delta_matrix(const model::ConstraintGraph& cg) {
  const std::vector<model::ArcId> arcs = cg.arcs();
  ArcPairMatrix m(arcs.size());
  for (model::ArcId a : arcs) {
    for (model::ArcId b : arcs) {
      m.at(a, b) = cg.vertex_distance(cg.source(a), cg.source(b)) +
                   cg.vertex_distance(cg.target(a), cg.target(b));
    }
  }
  return m;
}

std::vector<double> bandwidth_vector(const model::ConstraintGraph& cg) {
  std::vector<double> b;
  b.reserve(cg.num_channels());
  for (model::ArcId a : cg.arcs()) b.push_back(cg.bandwidth(a));
  return b;
}

}  // namespace cdcs::synth
