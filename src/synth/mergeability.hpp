// Merge-pruning tests: Lemma 3.1, Lemma 3.2, Theorem 3.2 (and the machinery
// for Theorem 3.1's progressive arc elimination lives in the candidate
// generator, which owns the k-loop).
//
// All tests are *sufficient conditions for non-mergeability*: when a test
// fires, the subset provably cannot be a K-way merging in any optimal
// implementation (given Assumption 2.1), so it is pruned from the candidate
// set S without losing the global optimum.
//
// Lemma 3.2's inequality with pivot a_j rearranges to pure Gamma/Delta row
// sums over the subset:
//     (k-1) d(a_j) + sum_{i != j} d(a_i)  <=  sum_{i != j} Delta(a_i, a_j)
// <=> sum_{i != j} Gamma(a_i, a_j)        <=  sum_{i != j} Delta(a_i, a_j)
// The lemma holds for *any* choice of pivot, so applying it with every pivot
// ("AnyPivot") is the strongest sound use. The paper's own experiment is
// consistent with a single-pivot application (the minimum-distance arc),
// which reproduces its candidate counts (13 / 21 / 16 on the WAN example);
// both policies are provided, plus max-index for a literal "last element is
// a_k" implementation.
#pragma once

#include <span>

#include "synth/gamma_delta.hpp"

namespace cdcs::synth {

enum class PivotRule {
  kMinDistance,  ///< pivot = arc with minimal d(a); matches the paper's counts
  kAnyPivot,     ///< try every pivot; prunes strictly more, still exact
  kMaxIndex,     ///< pivot = highest arc index in the subset
};

/// Lemma 3.1: returns true when the pair {a, b} is *pruned* (provably not
/// 2-way mergeable): d(a) + d(b) <= ||u_a - u_b|| + ||v_a - v_b||.
bool lemma31_prunes(const ArcPairMatrix& gamma, const ArcPairMatrix& delta,
                    model::ArcId a, model::ArcId b, double tolerance = 1e-9);

/// Lemma 3.2 with a single pivot j in `subset`: true when the subset is
/// pruned using that pivot.
bool lemma32_prunes_with_pivot(const ArcPairMatrix& gamma,
                               const ArcPairMatrix& delta,
                               std::span<const model::ArcId> subset,
                               model::ArcId pivot, double tolerance = 1e-9);

/// Lemma 3.2 under a pivot rule: true when the subset is pruned.
bool lemma32_prunes(const model::ConstraintGraph& cg,
                    const ArcPairMatrix& gamma, const ArcPairMatrix& delta,
                    std::span<const model::ArcId> subset, PivotRule rule,
                    double tolerance = 1e-9);

/// Theorem 3.2: true when the subset is pruned on bandwidth grounds:
///   sum_i b(a_i) >= max_{l in L} b(l) + min_j b(a_j).
/// `max_link_bandwidth` is Library::max_link_bandwidth().
bool theorem32_prunes(std::span<const double> subset_bandwidths,
                      double max_link_bandwidth, double tolerance = 1e-9);

}  // namespace cdcs::synth
