// Deterministic geometric partitioning of the constraint graph for
// hierarchical synthesis (docs/performance.md, "Partitioned synthesis").
//
// The paper's algorithm is exact but super-linear: candidate enumeration
// visits O(C(n,k)) subsets per k and the Gamma/Delta matrices are O(n^2),
// so the 20-arc corpus does not extrapolate to thousands of arcs. Following
// the decomposition line of work (Ogras & Marculescu, PAPERS.md), we split
// the instance into geometrically tight clusters, synthesize each with the
// unmodified pipeline, and stitch. The partition is driven by the SAME
// geometry the pruning lemmas use: a pair (a, b) can only survive Lemma 3.1
// when 2*||m_a - m_b|| < d(a) + d(b) (midpoint distance lower-bounds the
// Delta detour, see synth/mergeability.hpp and the grid pre-filter in
// candidate_generator.cpp), so arcs whose midpoints are far apart relative
// to their lengths cannot be merged profitably and belong in different
// clusters for free.
//
// Pipeline:
//   1. k-d median split over arc MIDPOINTS (not endpoints: a hotspot
//      pattern routes every arc into one port, and endpoint clustering
//      would glue the whole instance together) until every leaf holds at
//      most max_cluster_arcs arcs. Splits choose the wider bbox axis
//      (tie -> x) and order ties by arc index, so the leaf sequence is a
//      deterministic function of the instance alone.
//   2. Lossless connected-component refinement inside each leaf: arcs
//      sharing an endpoint are grouped, and two groups are kept separate
//      only when the bbox separation test PROVES every cross pair is
//      Lemma 3.1-pruned (2*dist(bbox_m(C1), bbox_m(C2)) >= maxlen(C1) +
//      maxlen(C2)); otherwise they stay one cluster. Splitting is therefore
//      only applied where it provably cannot lose a 2-way merge.
//   3. Boundary extraction: an interior arc close enough to ANOTHER
//      cluster's midpoint box that a cross-cluster merge could survive the
//      geometric pruning is pulled out as a boundary arc (capped at
//      max_boundary_fraction, highest violation first). Boundary arcs are
//      re-grouped by the same k-d split into repair clusters, appended
//      after the interior clusters -- the boundary-repair pass re-prices
//      and re-covers exactly the border-crossing arcs.
//
// Every arc lands in exactly one cluster; cluster arc lists are ascending;
// the cluster sequence (interior leaves in DFS order, then repair groups)
// is stable. partitioned_synthesizer.cpp builds one subgraph per cluster
// and fans them out across a thread pool.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/bbox.hpp"
#include "model/constraint_graph.hpp"
#include "synth/options.hpp"

namespace cdcs::synth {

/// One cluster of the partition: a set of constraint arcs synthesized as an
/// independent subinstance.
struct Cluster {
  std::vector<model::ArcId> arcs;  ///< global arc ids, ascending
  geom::BBox midpoint_bbox;        ///< bbox of the member arcs' midpoints
  double max_arc_length{0.0};      ///< max d(a) over the members
  bool repair{false};  ///< boundary-repair group (not an interior cluster)
};

struct Partition {
  /// Interior clusters (k-d leaves after refinement and boundary
  /// extraction) first, then the boundary-repair groups. Every arc of the
  /// graph appears in exactly one cluster.
  std::vector<Cluster> clusters;
  /// Arcs extracted into repair groups, ascending. Empty when no arc sits
  /// close enough to a foreign cluster to threaten a cross-cluster merge.
  std::vector<model::ArcId> boundary_arcs;
  /// clusters[0..num_interior) are interior; the rest are repair groups.
  std::size_t num_interior{0};

  std::size_t num_repair() const { return clusters.size() - num_interior; }
};

/// Deterministically partitions `cg` per `opts` (see file comment). A graph
/// with at most opts.max_cluster_arcs arcs yields interior clusters only
/// (no boundary); an arcless graph yields no clusters at all.
Partition partition_graph(const model::ConstraintGraph& cg,
                          const PartitioningOptions& opts);

}  // namespace cdcs::synth
