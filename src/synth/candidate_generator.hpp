// GenerateCandidateArcImplementations (Fig. 2): builds the set S of candidate
// arc implementations -- the optimum point-to-point implementation of every
// constraint arc, plus every k-way merging that survives the pruning tests
// (Lemma 3.1 for pairs, Lemma 3.2 for k >= 3, Theorem 3.2 on bandwidth),
// with Theorem 3.1 progressively eliminating arcs that can no longer appear
// in any larger merging.
//
// The data model (Candidate/GenerationStats/CandidateSet) lives in
// synth/candidate.hpp and the knobs in synth/options.hpp; this header adds
// only the generator entry point.
#pragma once

#include "support/status.hpp"
#include "synth/candidate.hpp"
#include "synth/options.hpp"

namespace cdcs::synth {

/// Runs Fig. 2. Returns kInfeasible when some constraint arc has no feasible
/// point-to-point implementation (the problem is unsatisfiable with this
/// library, since merging legs rely on the same plans). Never throws.
/// Singletons are emitted first (candidate i covers arc i for i < |A|) and
/// are never deadline-gated; see SynthesisOptions::deadline.
support::Expected<CandidateSet> generate_candidates(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const SynthesisOptions& options = {});

}  // namespace cdcs::synth
