// GenerateCandidateArcImplementations (Fig. 2): builds the set S of candidate
// arc implementations -- the optimum point-to-point implementation of every
// constraint arc, plus every k-way merging that survives the pruning tests
// (Lemma 3.1 for pairs, Lemma 3.2 for k >= 3, Theorem 3.2 on bandwidth),
// with Theorem 3.1 progressively eliminating arcs that can no longer appear
// in any larger merging.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "support/deadline.hpp"
#include "support/status.hpp"
#include "synth/chain_pricer.hpp"
#include "ucp/bnb.hpp"
#include "synth/mergeability.hpp"
#include "synth/merging_pricer.hpp"
#include "synth/plan_delay.hpp"
#include "synth/tree_pricer.hpp"

namespace cdcs::synth {

class PricingCache;

/// Deterministic fault-injection hooks for robustness testing. Each switch
/// forces one failure edge of the pipeline so the corresponding degradation
/// path can be exercised without timing races. All off in production.
struct FaultInjection {
  /// Every merging/chain/tree pricer call returns nullopt: candidate
  /// generation yields only the point-to-point singletons.
  bool fail_merging_pricers = false;
  /// The cover solver sees an already-expired deadline even when the
  /// caller's deadline is unlimited.
  bool expire_solver_deadline = false;
  /// Discard the solver's incumbent (as if branch-and-bound had not found
  /// one yet), forcing the greedy-cover fallback stage.
  bool drop_incumbent = false;
  /// Make the greedy cover report failure, forcing the final
  /// point-to-point-only fallback stage.
  bool fail_greedy_cover = false;
};

struct SynthesisOptions {
  model::CapacityPolicy policy = model::CapacityPolicy::kSharedSum;
  PivotRule pivot_rule = PivotRule::kMinDistance;

  // Ablation switches (all on = the paper's algorithm).
  bool use_lemma31 = true;    ///< pairwise geometric pruning at k = 2
  bool use_lemma32 = true;    ///< pivot-based geometric pruning at k >= 3
  bool use_theorem31 = true;  ///< progressive per-arc elimination
  bool use_theorem32 = true;  ///< bandwidth-sum pruning

  /// Bounding-box grid pre-filter: bucket arc midpoints into a uniform grid
  /// and skip subsets whose members are so far apart that the Lemma 3.1/3.2
  /// distance tests are GUARANTEED to prune them (a conservative
  /// triangle-inequality bound; see candidate_generator.cpp). Pure speedup:
  /// the surviving candidate set is bit-identical. Skips are counted in
  /// GenerationStats::grid_prefilter_skips_per_k (and, since every skipped
  /// subset would have been geometry-pruned anyway, also in
  /// pruned_geometry_per_k). Only active for subsets whose corresponding
  /// lemma switch is on.
  bool use_grid_prefilter = true;

  /// Drop priced mergings that do not beat the sum of their members'
  /// point-to-point costs. Keeps the UCP matrix lean; never loses the
  /// optimum (the member singletons cover the same rows for less).
  bool drop_unprofitable = false;

  /// Also price the daisy-chain (bus) structure for subsets with a common
  /// endpoint and keep the cheaper of star/chain per subset.
  bool enable_chain_topology = true;

  /// Also price the Steiner-tree structure (Hanan-grid topology) for
  /// subsets with a common endpoint; the cheapest of star/chain/tree wins.
  bool enable_tree_topology = true;

  /// Largest merging size considered; 0 means |A| (the paper's algorithm).
  int max_merge_k = 0;

  /// Safety valve on subset enumeration per k (the paper's examples stay in
  /// the tens; random scaling benches can explode combinatorially).
  std::size_t max_subsets_per_k = 5'000'000;

  /// Delay-constrained synthesis: when set, every candidate must keep the
  /// worst-case delay of each of its channels within `budget` under
  /// `model` (per-length wire delay + per-node processing). Merged
  /// structures whose detours/hops blow the budget are dropped; a
  /// point-to-point singleton violating it makes the instance infeasible
  /// (std::runtime_error), since no structure can be faster than the
  /// dedicated straight-line implementation.
  struct DelayBudget {
    sim::DelayModel model;
    double budget{0.0};
  };
  std::optional<DelayBudget> delay_budget;

  /// Wall-clock budget for the whole synthesis run (generation + covering).
  /// Point-to-point singletons are ALWAYS generated in full -- they are the
  /// last-resort cover -- but merging enumeration stops once the deadline
  /// expires (stats.deadline_expired records this) and the remaining budget
  /// is handed to the cover solver.
  support::Deadline deadline;

  /// Worker threads for subset pricing. 1 (default) prices on the caller's
  /// thread; N > 1 fans each k's surviving subsets out to a fixed pool of N
  /// workers, merging results in enumeration order so the candidate set is
  /// BIT-IDENTICAL to the serial run (docs/performance.md); 0 means all
  /// hardware threads. Enumeration and pruning always stay serial -- they
  /// are cheap and their order carries Theorem 3.1 semantics.
  int threads = 1;

  /// Optional pricing memoization shared across synthesize() calls
  /// (synth/pricing_cache.hpp). Borrowed, not owned; must outlive the run.
  /// Thread-safe; hits skip the placement solves entirely.
  PricingCache* pricing_cache = nullptr;

  /// Deterministic failure forcing for tests; see FaultInjection.
  FaultInjection fault_injection;

  /// Cover-solver configuration (Lagrangian bounds, reduced-cost fixing,
  /// search order, ...). The 3-argument synthesize() overload uses this;
  /// the 4-argument overload overrides it explicitly. The synthesizer
  /// additionally seeds `solver.warm_start` with the point-to-point
  /// singleton cover when the caller left it empty.
  ucp::BnbOptions solver;
};

/// One column of the covering problem: a single arc's point-to-point
/// implementation, a star merging, a daisy-chain merging, or a Steiner-tree
/// merging. Exactly one of the four plans is set.
struct Candidate {
  std::vector<model::ArcId> arcs;  ///< rows covered, sorted by index
  double cost{0.0};
  std::optional<PtpPlan> ptp;          ///< set iff arcs.size() == 1
  std::optional<MergingPlan> merging;  ///< star structure (k >= 2)
  std::optional<ChainPlan> chain;      ///< daisy-chain structure (k >= 2)
  std::optional<TreePlan> tree;        ///< Steiner-tree structure (k >= 2)
};

struct GenerationStats {
  /// survivors_per_k[k] = subsets of size k passing all pruning tests
  /// (the paper's "thirteen 2-way, twenty-one 3-way, ..." counts).
  std::vector<std::size_t> survivors_per_k;
  std::vector<std::size_t> pruned_geometry_per_k;   ///< Lemma 3.1 / 3.2
  /// Subsets skipped by the midpoint-grid pre-filter WITHOUT evaluating the
  /// lemma tests. A subset counted here is also counted in
  /// pruned_geometry_per_k (the filter only skips subsets the lemmas are
  /// guaranteed to prune), so survivors + pruned_geometry stays invariant.
  std::vector<std::size_t> grid_prefilter_skips_per_k;
  std::vector<std::size_t> pruned_bandwidth_per_k;  ///< Theorem 3.2
  std::vector<std::size_t> unpriceable_per_k;  ///< survived tests, no library plan
  std::vector<std::size_t> dropped_unprofitable_per_k;
  /// Per arc index: the k whose round eliminated the arc (Theorem 3.1);
  /// 0 when the arc stayed active to the end.
  std::vector<int> arc_eliminated_after_k;
  std::size_t subsets_examined{0};
  bool enumeration_truncated{false};  ///< hit max_subsets_per_k
  bool deadline_expired{false};  ///< merging enumeration cut short by deadline
  /// Resolved pricing parallelism (SynthesisOptions::threads after the
  /// 0 = hardware-threads expansion).
  std::size_t threads_used{1};
  /// Pricing-cache traffic attributable to THIS run (the cache object
  /// accumulates across runs; these two do not).
  std::size_t pricing_cache_hits{0};
  std::size_t pricing_cache_misses{0};
};

struct CandidateSet {
  std::vector<Candidate> candidates;  ///< singletons first, then mergings by k
  GenerationStats stats;
};

/// Runs Fig. 2. Returns kInfeasible when some constraint arc has no feasible
/// point-to-point implementation (the problem is unsatisfiable with this
/// library, since merging legs rely on the same plans). Never throws.
/// Singletons are emitted first (candidate i covers arc i for i < |A|) and
/// are never deadline-gated; see SynthesisOptions::deadline.
support::Expected<CandidateSet> generate_candidates(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const SynthesisOptions& options = {});

}  // namespace cdcs::synth
