// Memoization cache for subset pricing (the placement NLP / Weiszfeld
// solves that dominate candidate-generation time).
//
// The three structure pricers are pure functions of
//     (subset endpoint geometry, subset bandwidths, norm, capacity policy,
//      communication library),
// so a priced subset can be reused across increasing k within one run,
// across repeated synthesize() calls (Pareto sweeps over delay budgets,
// sensitivity runs), and even across distinct constraint graphs that happen
// to contain geometrically identical subsets. The cache key is the
// canonical subset signature: the per-arc (source, target, bandwidth)
// records in subset order plus the library fingerprint
// (commlib::Library::fingerprint), the norm, the capacity policy, and the
// structure-enable flags. Anything the pricers read is in the key, so a
// hit is bit-identical to a fresh solve; mutating or swapping the library
// changes its fingerprint and invalidates every entry automatically.
//
// Entries store the RAW priced structures, before delay-budget filtering
// and profitability accounting -- those are cheap per-subset decisions the
// generator re-applies per run, which is what lets a Pareto sweep over
// delay budgets hit the cache at every point.
//
// Plans embed model::ArcId values of the graph they were priced on; a
// cached entry carries position permutations into its subset so lookup()
// can retarget the plans onto the caller's arc ids (Entry::retarget).
//
// The key's per-arc records are stored in CANONICAL order -- sorted by the
// geometry record itself, not by the caller's arc ids -- and the entry's
// permutations are relative to that canonical order. Two sessions that
// enumerate the geometrically same subset with permuted arc insertion
// orders (and therefore permuted subset orders, since subsets follow arc-id
// order) thus share one entry: the same subset shuffled is a HIT, not a
// miss, and retargeting maps the plans through the canonical order onto
// whatever arc ids the calling graph uses (canonical_subset_order).
//
// Thread safety: lookup/insert take a mutex (pricing is milliseconds, the
// critical section is a map probe); hit/miss counters are sharded
// support::Counter metrics -- the SINGLE source of truth for cache
// accounting (GenerationStats and Engine::SessionStats report deltas of
// these counters, never their own increments; see docs/observability.md).
// The cache never evicts on its own -- covering instances price at most a
// few thousand subsets -- so correctness never depends on retention policy;
// clear() is the only eviction path and counts what it dropped.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "support/metrics.hpp"
#include "synth/canonical_order.hpp"
#include "synth/chain_pricer.hpp"
#include "synth/merging_pricer.hpp"
#include "synth/tree_pricer.hpp"

namespace cdcs::synth {

class PricingCache {
 public:
  /// Canonical subset signature; see file comment for what must be in here
  /// (everything the pricers read) and why.
  struct Key {
    std::uint64_t library_fingerprint{0};
    geom::Norm norm{};
    model::CapacityPolicy policy{};
    bool chain_enabled{false};
    bool tree_enabled{false};
    /// Five doubles per arc: source x/y, target x/y, bandwidth -- in
    /// CANONICAL order (sorted by the record), not subset order.
    std::vector<double> arc_geometry;

    friend bool operator==(const Key&, const Key&) = default;
  };

  /// The raw pricing outcome for one subset. nullopt plans mean "that
  /// structure is not realizable for this subset" (a definitive answer,
  /// cacheable); pricings aborted by a deadline are never inserted.
  struct Entry {
    std::optional<MergingPlan> star;
    std::optional<ChainPlan> chain;
    std::optional<TreePlan> tree;

    /// Builds an entry from freshly priced plans, recording each plan's
    /// arc order as positions into the CANONICAL record order of `subset`
    /// (`canonical_order`, from canonical_subset_order) for retargeting.
    static Entry make(const std::vector<model::ArcId>& subset,
                      const std::vector<std::uint32_t>& canonical_order,
                      std::optional<MergingPlan> star,
                      std::optional<ChainPlan> chain,
                      std::optional<TreePlan> tree);

    /// Rewrites the plans' arc ids onto `subset` (the caller's graph, whose
    /// canonical record order is `canonical_order`), preserving each plan's
    /// internal order via the stored canonical permutations.
    void retarget(const std::vector<model::ArcId>& subset,
                  const std::vector<std::uint32_t>& canonical_order);

   private:
    /// plan.arcs[i] == subset[canonical_order[perm[i]]], per structure.
    std::vector<std::uint32_t> star_perm_;
    std::vector<std::uint32_t> chain_perm_;
    std::vector<std::uint32_t> tree_perm_;
  };

  /// Snapshot of the cache's metric counters (the one place hits/misses
  /// are counted; everything else diffs snapshots of this).
  struct Stats {
    std::size_t hits{0};
    std::size_t misses{0};
    std::size_t entries{0};
    /// Entries dropped by clear() over the cache's lifetime.
    std::size_t evictions{0};

    double hit_rate() const {
      const std::size_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  /// Returns a copy of the entry for `key` (the caller then retargets it
  /// onto its own subset's arc ids). Counts a hit or a miss.
  std::optional<Entry> lookup(const Key& key);

  /// Inserts (or overwrites) the entry for `key`.
  void insert(const Key& key, Entry entry);

  Stats stats() const;
  void clear();

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  mutable std::mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> map_;
  support::Counter hits_;
  support::Counter misses_;
  support::Counter evictions_;
};

/// Builds the canonical signature of `subset` under (cg, library, policy),
/// with the per-arc records in canonical_subset_order.
PricingCache::Key make_pricing_key(const model::ConstraintGraph& cg,
                                   const commlib::Library& library,
                                   const std::vector<model::ArcId>& subset,
                                   model::CapacityPolicy policy,
                                   bool chain_enabled, bool tree_enabled);

}  // namespace cdcs::synth
