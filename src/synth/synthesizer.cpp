#include "synth/synthesizer.hpp"

#include <exception>
#include <string>
#include <utility>

#include "model/sanitize.hpp"
#include "support/metrics.hpp"
#include "synth/partitioned_synthesizer.hpp"
#include "synth/pipeline.hpp"

namespace cdcs::synth {

// Both overloads are one-shot sessions: the same staged pipeline the
// incremental Engine drives (synth/pipeline.hpp), run with no session state,
// wrapped in the input gate and the catch-all so no exception escapes the
// API boundary.
support::Expected<SynthesisResult> synthesize(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const SynthesisOptions& options) {
  return synthesize(cg, library, options, options.solver);
}

support::Expected<SynthesisResult> synthesize(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const SynthesisOptions& options,
    const ucp::BnbOptions& solver_options) {
  support::ScopedTimer run_span(
      "synthesize", "pipeline",
      &support::MetricsRegistry::global().histogram("synth.run.us"));
  support::Status gate = model::check_inputs(cg, library);
  if (!gate.ok()) return std::move(gate).with_context("synthesize");
  try {
    // Large instances take the hierarchical partitioned path when enabled
    // (synth/partitioned_synthesizer.hpp); below the arc threshold the
    // plain pipeline runs untouched -- the exact fallback that keeps every
    // pinned corpus cost and node count bit-identical.
    support::Expected<SynthesisResult> result =
        partitioning_applies(cg, options)
            ? synthesize_partitioned(cg, library, options, solver_options)
            : run_pipeline(cg, library, options, solver_options, nullptr);
    if (!result.ok()) {
      return std::move(result).take_status().with_context("synthesize");
    }
    return result;
  } catch (const std::exception& e) {
    return support::Status::Internal(std::string("unexpected exception: ") +
                                     e.what())
        .with_context("synthesize");
  }
}

}  // namespace cdcs::synth
