#include "synth/synthesizer.hpp"

#include <stdexcept>

#include "model/validator.hpp"

namespace cdcs::synth {

SynthesisResult synthesize(const model::ConstraintGraph& cg,
                           const commlib::Library& library,
                           const SynthesisOptions& options,
                           const ucp::BnbOptions& solver_options) {
  SynthesisResult result;
  result.candidate_set = generate_candidates(cg, library, options);

  ucp::CoverProblem cover(cg.num_channels());
  for (const Candidate& c : result.candidate_set.candidates) {
    std::vector<std::size_t> rows;
    rows.reserve(c.arcs.size());
    for (model::ArcId a : c.arcs) rows.push_back(a.index());
    cover.add_column(rows, c.cost);
  }
  result.cover = ucp::solve_exact(cover, solver_options);
  if (result.cover.chosen.empty() && cg.num_channels() > 0) {
    throw std::runtime_error("synthesize: covering problem is infeasible");
  }

  result.implementation = assemble(cg, library,
                                   result.candidate_set.candidates,
                                   result.cover.chosen);
  result.total_cost = result.implementation->cost();
  result.validation = model::validate(*result.implementation, options.policy);
  return result;
}

}  // namespace cdcs::synth
