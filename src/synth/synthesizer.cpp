#include "synth/synthesizer.hpp"

#include <exception>
#include <numeric>
#include <utility>

#include "model/sanitize.hpp"
#include "model/validator.hpp"
#include "ucp/greedy.hpp"

namespace cdcs::synth {
namespace {

double gap_against(double achieved, double lower_bound) {
  if (lower_bound <= 0.0 || achieved <= lower_bound) return 0.0;
  return (achieved - lower_bound) / lower_bound;
}

/// The pipeline proper; the public synthesize() wraps it in the input gate
/// and the catch-all so no exception escapes the API boundary.
support::Expected<SynthesisResult> run_pipeline(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const SynthesisOptions& options, const ucp::BnbOptions& solver_options) {
  SynthesisResult result;
  support::Expected<CandidateSet> gen =
      generate_candidates(cg, library, options);
  if (!gen.ok()) {
    return std::move(gen).take_status().with_context("candidate generation");
  }
  result.candidate_set = *std::move(gen);
  const GenerationStats& stats = result.candidate_set.stats;

  const std::size_t num_rows = cg.num_channels();
  ucp::CoverProblem cover(num_rows);
  for (const Candidate& c : result.candidate_set.candidates) {
    std::vector<std::size_t> rows;
    rows.reserve(c.arcs.size());
    for (model::ArcId a : c.arcs) rows.push_back(a.index());
    cover.add_column(rows, c.cost);
  }

  ucp::BnbOptions solver = solver_options;
  if (solver.deadline.unlimited()) solver.deadline = options.deadline;
  if (options.fault_injection.expire_solver_deadline) {
    solver.deadline = support::Deadline::expire_after_checks(0);
  }
  // Seed the incumbent with the anytime ladder's last rung: generation
  // emits the singletons first (candidate i covers exactly arc i), so
  // {0..rows-1} is always a feasible cover and branch-and-bound pruning
  // starts with a real upper bound even when greedy underperforms.
  if (solver.warm_start.empty() &&
      result.candidate_set.candidates.size() >= num_rows) {
    solver.warm_start.resize(num_rows);
    std::iota(solver.warm_start.begin(), solver.warm_start.end(),
              std::size_t{0});
  }
  result.cover = ucp::solve_exact(cover, solver);

  DegradationReport& deg = result.degradation;
  deg.lower_bound = result.cover.lower_bound;

  if (options.fault_injection.drop_incumbent) {
    result.cover.chosen.clear();
    result.cover.cost = 0.0;
    result.cover.optimal = false;
  }

  const bool generation_complete =
      !stats.enumeration_truncated && !stats.deadline_expired;
  const bool solver_usable = num_rows == 0 ||
                             (!result.cover.chosen.empty() &&
                              cover.covers_all(result.cover.chosen));

  if (solver_usable) {
    if (result.cover.optimal && generation_complete) {
      deg.stage = SynthesisStage::kExact;
    } else {
      deg.stage = SynthesisStage::kIncumbent;
      if (!result.cover.optimal) {
        deg.reason = result.cover.deadline_expired
                         ? "deadline expired in the cover solver; best "
                           "incumbent returned"
                         : "cover solver node budget exhausted; best "
                           "incumbent returned";
      } else {
        deg.reason = stats.deadline_expired
                         ? "deadline expired during candidate enumeration; "
                           "cover is optimal over the partial candidate set"
                         : "candidate enumeration truncated at "
                           "max_subsets_per_k; cover is optimal over the "
                           "partial candidate set";
      }
    }
  } else {
    // The solver produced nothing usable (deadline hit before any incumbent,
    // or fault injection discarded it). Greedy cover next.
    ucp::CoverSolution greedy;
    if (!options.fault_injection.fail_greedy_cover) {
      greedy = ucp::solve_greedy(cover);
    }
    if (!greedy.chosen.empty() && cover.covers_all(greedy.chosen)) {
      result.cover = std::move(greedy);
      result.cover.deadline_expired = true;
      deg.stage = SynthesisStage::kGreedy;
      deg.reason = "cover solver returned no usable incumbent; greedy cover";
    } else {
      // Last rung: one optimum point-to-point link per arc. Generation
      // emits the singletons first (candidate i covers exactly arc i) and
      // never deadline-gates them, so this cover always exists here.
      if (result.candidate_set.candidates.size() < num_rows) {
        return support::Status::Internal(
            "point-to-point fallback: candidate set is missing singletons");
      }
      result.cover = ucp::CoverSolution{};
      result.cover.chosen.resize(num_rows);
      std::iota(result.cover.chosen.begin(), result.cover.chosen.end(),
                std::size_t{0});
      result.cover.cost = cover.cost_of(result.cover.chosen);
      result.cover.deadline_expired = true;
      deg.stage = SynthesisStage::kPointToPoint;
      deg.reason =
          "no usable incumbent and no greedy cover; every arc implemented "
          "point-to-point";
    }
    result.cover.lower_bound = deg.lower_bound;
  }
  deg.optimality_gap = deg.degraded()
                           ? gap_against(result.cover.cost, deg.lower_bound)
                           : 0.0;

  result.implementation = assemble(cg, library,
                                   result.candidate_set.candidates,
                                   result.cover.chosen);
  result.total_cost = result.implementation->cost();
  result.validation = model::validate(*result.implementation, options.policy);
  return result;
}

}  // namespace

support::Expected<SynthesisResult> synthesize(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const SynthesisOptions& options) {
  return synthesize(cg, library, options, options.solver);
}

support::Expected<SynthesisResult> synthesize(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const SynthesisOptions& options,
    const ucp::BnbOptions& solver_options) {
  support::Status gate = model::check_inputs(cg, library);
  if (!gate.ok()) return std::move(gate).with_context("synthesize");
  try {
    support::Expected<SynthesisResult> result =
        run_pipeline(cg, library, options, solver_options);
    if (!result.ok()) {
      return std::move(result).take_status().with_context("synthesize");
    }
    return result;
  } catch (const std::exception& e) {
    return support::Status::Internal(std::string("unexpected exception: ") +
                                     e.what())
        .with_context("synthesize");
  }
}

}  // namespace cdcs::synth
