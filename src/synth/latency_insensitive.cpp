#include "synth/latency_insensitive.hpp"

#include <cmath>
#include <stdexcept>

namespace cdcs::synth {
namespace {

/// ceil(a / b) with protection against exact-multiple floating noise.
int robust_ceil_div(double a, double b) {
  const double q = a / b;
  const double r = std::round(q);
  if (std::abs(q - r) < 1e-9 * std::max(1.0, std::abs(q))) {
    return static_cast<int>(r);
  }
  return static_cast<int>(std::ceil(q));
}

}  // namespace

DsmSegmentation dsm_segment(double length, const DsmParams& params) {
  if (length <= 0.0) {
    throw std::invalid_argument("dsm_segment: length must be positive");
  }
  if (params.l_crit <= 0.0 || params.clock_reach <= 0.0) {
    throw std::invalid_argument("dsm_segment: non-positive parameter");
  }
  const int total_repeaters = robust_ceil_div(length, params.l_crit) - 1;
  int latches = robust_ceil_div(length, params.clock_reach) - 1;
  latches = std::min(latches, total_repeaters);
  latches = std::max(latches, 0);
  const int buffers = total_repeaters - latches;

  DsmSegmentation out;
  out.buffers = buffers;
  out.latches = latches;
  out.pipeline_depth = latches;  // each relay station adds one cycle
  out.cost = buffers * params.buffer_cost + latches * params.latch_cost;
  return out;
}

DsmPlan dsm_plan(const model::ConstraintGraph& cg, const DsmParams& params) {
  DsmPlan plan;
  for (model::ArcId a : cg.arcs()) {
    DsmPlanRow row;
    row.channel = cg.channel(a).name;
    row.length = cg.distance(a);
    row.segmentation = dsm_segment(row.length, params);
    plan.total_buffers += row.segmentation.buffers;
    plan.total_latches += row.segmentation.latches;
    plan.total_cost += row.segmentation.cost;
    plan.rows.push_back(std::move(row));
  }
  return plan;
}

}  // namespace cdcs::synth
