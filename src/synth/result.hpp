// Synthesis result types -- the anytime-ladder stage, the degradation
// report, and SynthesisResult itself. Split from synthesizer.hpp so result
// consumers (reporting, IO, benches, the incremental engine's callers) see
// only the data model: no candidate enumeration, no assembler, no cover
// solver headers.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "model/validator.hpp"
#include "synth/candidate.hpp"
#include "ucp/cover.hpp"

namespace cdcs::synth {

/// The rung of the anytime ladder that produced the returned cover.
enum class SynthesisStage {
  kExact,         ///< proven-optimal cover over the full candidate set
  kIncumbent,     ///< solver's best feasible cover (budget/deadline cut off)
  kGreedy,        ///< ln(n) greedy cover (solver returned nothing usable)
  kPointToPoint,  ///< every arc on its own optimum point-to-point link
};

constexpr std::string_view to_string(SynthesisStage stage) {
  switch (stage) {
    case SynthesisStage::kExact:
      return "exact";
    case SynthesisStage::kIncumbent:
      return "incumbent";
    case SynthesisStage::kGreedy:
      return "greedy";
    case SynthesisStage::kPointToPoint:
      return "point-to-point";
  }
  return "unknown";
}

/// How (and how far) the run degraded from the exact algorithm.
struct DegradationReport {
  SynthesisStage stage{SynthesisStage::kExact};
  /// Human-readable cause when stage != kExact ("deadline expired in the
  /// cover solver", ...). Empty for exact runs.
  std::string reason;
  /// Lower bound on the optimal cover cost over the generated candidate
  /// set (== achieved cost for exact runs; the subgradient Lagrangian root
  /// bound -- falling back to the independent-rows bound -- otherwise).
  /// When candidate enumeration itself was cut short the true optimum over
  /// the full set could be lower still.
  double lower_bound{0.0};
  /// (achieved - lower_bound) / lower_bound; 0 for exact runs or when the
  /// bound is degenerate (<= 0).
  double optimality_gap{0.0};

  bool degraded() const { return stage != SynthesisStage::kExact; }
};

struct SynthesisResult {
  CandidateSet candidate_set;
  ucp::CoverSolution cover;         ///< chosen indices == candidate indices
  double total_cost{0.0};           ///< Def 2.5 cost of `implementation`
  std::unique_ptr<model::ImplementationGraph> implementation;
  model::ValidationReport validation;
  DegradationReport degradation;    ///< which ladder rung produced `cover`

  const std::vector<Candidate>& candidates() const {
    return candidate_set.candidates;
  }
  /// The selected candidates (columns of the UCP optimum).
  std::vector<const Candidate*> selected() const {
    std::vector<const Candidate*> sel;
    for (std::size_t j : cover.chosen) {
      sel.push_back(&candidate_set.candidates[j]);
    }
    return sel;
  }
};

}  // namespace cdcs::synth
