// Materialization: turns selected candidates (point-to-point plans and
// merging plans) into a concrete ImplementationGraph -- communication
// vertices with positions, link arcs with spans, and registered paths per
// constraint arc (Sec. 3: "the exact topology, communication node position,
// number of links").
//
// Conventions:
//  * Segmentation repeaters sit ON the paths, evenly spaced along the
//    straight segment between the chain endpoints (positions lerp(F, T,
//    i/K); for every norm, distances along a straight segment are additive,
//    so each piece's span is exactly span/K <= d(l)).
//  * Duplication mux/demux instances are accounted as communication vertices
//    co-located with the bundle endpoints but OFF the paths, keeping the
//    paths literally in the Def 2.7 parallel-links shape while still paying
//    c(mux) + c(demux) in Def 2.5's cost.
//  * A merging's hub/split nodes are ON the paths at the positions the
//    pricer optimized.
#pragma once

#include <memory>

#include "synth/candidate.hpp"

namespace cdcs::synth {

/// Builds the implementation graph realizing every candidate in `chosen`
/// (indices into `candidates`). Each constraint arc covered by several
/// chosen candidates receives the union of their paths (legal, if wasteful;
/// the exact UCP never selects such overlaps when costs are positive).
/// Throws std::invalid_argument when `chosen` does not cover every arc.
std::unique_ptr<model::ImplementationGraph> assemble(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const std::vector<Candidate>& candidates,
    const std::vector<std::size_t>& chosen);

}  // namespace cdcs::synth
