#include "synth/engine.hpp"

#include <algorithm>
#include <exception>
#include <map>
#include <string>
#include <utility>

#include "model/sanitize.hpp"
#include "support/metrics.hpp"
#include "synth/candidate_generator.hpp"

namespace cdcs::synth {

Engine::Engine(model::ConstraintGraph graph, commlib::Library library,
               SynthesisOptions options, WarmPolicy policy)
    : graph_(std::move(graph)),
      library_(std::move(library)),
      options_(std::move(options)),
      policy_(policy) {
  if (options_.pricing_cache == nullptr) {
    options_.pricing_cache = &own_cache_;
  }
  cache_baseline_ = options_.pricing_cache->stats();
}

support::Expected<SynthesisResult> Engine::apply(const model::Delta& delta) {
  support::Span span("engine.apply", "engine",
                     "{\"revision\":" + std::to_string(graph_.revision()) +
                         ",\"ops\":" + std::to_string(delta.ops.size()) + "}");
  support::Expected<model::DeltaEffect> effect =
      model::apply_delta(graph_, delta);
  if (!effect.ok()) {
    return std::move(effect).take_status().with_context("Engine::apply");
  }
  stats_.last_dirty_arcs = effect->dirty_arcs.size();
  stats_.revision = graph_.revision();
  support::MetricsRegistry::global()
      .counter("engine.dirty_arcs")
      .add(effect->dirty_arcs.size());

  if (policy_ == WarmPolicy::kWarmStart && effect->structure_changed) {
    // Remap the previous solve's state across the arc renumbering: a chosen
    // arc set touching a removed arc is gone; multipliers follow their rows
    // (new rows start at 0, the subgradient's own cold start).
    std::vector<std::vector<std::uint32_t>> remapped_sets;
    for (const std::vector<std::uint32_t>& arcs : last_chosen_arc_sets_) {
      std::vector<std::uint32_t> mapped;
      mapped.reserve(arcs.size());
      for (std::uint32_t a : arcs) {
        if (a >= effect->arc_remap.size() ||
            !effect->arc_remap[a].valid()) {
          mapped.clear();
          break;
        }
        mapped.push_back(effect->arc_remap[a].index());
      }
      if (!mapped.empty()) {
        std::sort(mapped.begin(), mapped.end());
        remapped_sets.push_back(std::move(mapped));
      }
    }
    last_chosen_arc_sets_ = std::move(remapped_sets);

    std::vector<double> remapped_mult(graph_.num_channels(), 0.0);
    bool any = false;
    for (std::size_t old = 0;
         old < last_root_multipliers_.size() && old < effect->arc_remap.size();
         ++old) {
      if (effect->arc_remap[old].valid()) {
        remapped_mult[effect->arc_remap[old].index()] =
            last_root_multipliers_[old];
        any = true;
      }
    }
    last_root_multipliers_ =
        any ? std::move(remapped_mult) : std::vector<double>{};
  }

  return synthesize_current();
}

support::Expected<SynthesisResult> Engine::resynthesize() {
  support::Span span("engine.resynthesize", "engine");
  stats_.last_dirty_arcs = 0;
  stats_.revision = graph_.revision();
  return synthesize_current();
}

support::Expected<SynthesisResult> Engine::synthesize_current() {
  support::Status gate = model::check_inputs(graph_, library_);
  if (!gate.ok()) return std::move(gate).with_context("Engine::apply");
  try {
    SynthesisResult partial;
    support::Expected<CandidateSet> gen =
        generate_candidates(graph_, library_, options_);
    if (!gen.ok()) {
      return std::move(gen)
          .take_status()
          .with_context("candidate generation")
          .with_context("Engine::apply");
    }
    partial.candidate_set = *std::move(gen);

    ucp::BnbOptions solver = options_.solver;
    if (policy_ == WarmPolicy::kWarmStart) {
      // Previous cover -> column indices in the fresh candidate list, by
      // arc set. Any set without a matching column (its structure was
      // re-priced away) aborts the seed; the solver falls back to its
      // built-in greedy + singleton seeding.
      std::map<std::vector<std::uint32_t>, std::size_t> by_arcs;
      for (std::size_t j = 0; j < partial.candidate_set.candidates.size();
           ++j) {
        std::vector<std::uint32_t> key;
        for (model::ArcId a : partial.candidate_set.candidates[j].arcs) {
          key.push_back(a.index());
        }
        by_arcs.emplace(std::move(key), j);  // first (cheapest-kept) wins
      }
      std::vector<std::size_t> warm;
      for (const std::vector<std::uint32_t>& arcs : last_chosen_arc_sets_) {
        auto it = by_arcs.find(arcs);
        if (it == by_arcs.end()) {
          warm.clear();
          break;
        }
        warm.push_back(it->second);
      }
      if (!warm.empty()) solver.warm_start = std::move(warm);
      if (last_root_multipliers_.size() == graph_.num_channels()) {
        solver.warm_multipliers = last_root_multipliers_;
      }
    }

    support::Expected<SynthesisResult> result = finish_pipeline(
        graph_, library_, options_, solver, &session_, std::move(partial));
    if (!result.ok()) {
      return std::move(result).take_status().with_context("Engine::apply");
    }

    stats_.applies += 1;
    stats_.cover_solves = session_.cover_solves;
    stats_.cover_reuses = session_.cover_reuses;
    support::MetricsRegistry::global().counter("engine.applies").add(1);

    last_chosen_arc_sets_.clear();
    for (std::size_t j : result->cover.chosen) {
      std::vector<std::uint32_t> arcs;
      for (model::ArcId a : result->candidate_set.candidates[j].arcs) {
        arcs.push_back(a.index());
      }
      last_chosen_arc_sets_.push_back(std::move(arcs));
    }
    last_root_multipliers_ = result->cover.root_multipliers;
    return result;
  } catch (const std::exception& e) {
    return support::Status::Internal(std::string("unexpected exception: ") +
                                     e.what())
        .with_context("Engine::apply");
  }
}

Engine::SessionStats Engine::stats() const {
  SessionStats s = stats_;
  // Pricing accounting reads the cache's own counters (the single place
  // hits/misses are incremented) rather than re-accumulating per-run
  // deltas, so SessionStats can never drift from PricingCache::Stats.
  const PricingCache::Stats cs = options_.pricing_cache->stats();
  s.pricing_hits =
      cs.hits >= cache_baseline_.hits ? cs.hits - cache_baseline_.hits : 0;
  s.pricing_misses = cs.misses >= cache_baseline_.misses
                         ? cs.misses - cache_baseline_.misses
                         : 0;
  s.revision = graph_.revision();
  return s;
}

}  // namespace cdcs::synth
