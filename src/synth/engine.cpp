#include "synth/engine.hpp"

#include <algorithm>
#include <exception>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "model/sanitize.hpp"
#include "support/fault.hpp"
#include "support/flight_recorder.hpp"
#include "support/metrics.hpp"
#include "support/obs_context.hpp"
#include "synth/candidate_generator.hpp"

namespace cdcs::synth {

Engine::Engine(model::ConstraintGraph graph, commlib::Library library,
               SynthesisOptions options, WarmPolicy policy)
    : graph_(std::move(graph)),
      library_(std::move(library)),
      options_(std::move(options)),
      policy_(policy) {
  if (options_.pricing_cache == nullptr) {
    options_.pricing_cache = &own_cache_;
  }
  cache_baseline_ = options_.pricing_cache->stats();
}

support::Expected<SynthesisResult> Engine::apply(const model::Delta& delta) {
  support::Span span("engine.apply", "engine",
                     "{\"revision\":" + std::to_string(graph_.revision()) +
                         ",\"ops\":" + std::to_string(delta.ops.size()) + "}");
  support::flight_record("stage",
                         "engine.apply revision=" +
                             std::to_string(graph_.revision()) +
                             " ops=" + std::to_string(delta.ops.size()));
  // All-or-nothing: snapshot every piece of session state this apply can
  // touch, so any downstream failure (journal append, injected fault,
  // synthesis error) restores the session byte-for-byte.
  model::ConstraintGraph graph_before = graph_;
  SessionState session_before = session_;
  SessionStats stats_before = stats_;
  std::vector<std::vector<std::uint32_t>> sets_before = last_chosen_arc_sets_;
  std::vector<double> multipliers_before = last_root_multipliers_;

  support::Expected<model::DeltaEffect> effect =
      model::apply_delta(graph_, delta);
  if (!effect.ok()) {
    // apply_delta is itself atomic: nothing to roll back.
    return std::move(effect).take_status().with_context("Engine::apply");
  }
  stats_.last_dirty_arcs = effect->dirty_arcs.size();
  stats_.revision = graph_.revision();
  support::MetricsRegistry::global()
      .counter("engine.dirty_arcs")
      .add(effect->dirty_arcs.size());

  if (policy_ == WarmPolicy::kWarmStart && effect->structure_changed) {
    // Remap the previous solve's state across the arc renumbering: a chosen
    // arc set touching a removed arc is gone; multipliers follow their rows
    // (new rows start at 0, the subgradient's own cold start).
    std::vector<std::vector<std::uint32_t>> remapped_sets;
    for (const std::vector<std::uint32_t>& arcs : last_chosen_arc_sets_) {
      std::vector<std::uint32_t> mapped;
      mapped.reserve(arcs.size());
      for (std::uint32_t a : arcs) {
        if (a >= effect->arc_remap.size() ||
            !effect->arc_remap[a].valid()) {
          mapped.clear();
          break;
        }
        mapped.push_back(effect->arc_remap[a].index());
      }
      if (!mapped.empty()) {
        std::sort(mapped.begin(), mapped.end());
        remapped_sets.push_back(std::move(mapped));
      }
    }
    last_chosen_arc_sets_ = std::move(remapped_sets);

    std::vector<double> remapped_mult(graph_.num_channels(), 0.0);
    bool any = false;
    for (std::size_t old = 0;
         old < last_root_multipliers_.size() && old < effect->arc_remap.size();
         ++old) {
      if (effect->arc_remap[old].valid()) {
        remapped_mult[effect->arc_remap[old].index()] =
            last_root_multipliers_[old];
        any = true;
      }
    }
    last_root_multipliers_ =
        any ? std::move(remapped_mult) : std::vector<double>{};
  }

  // Write-ahead: the delta lands on disk before synthesis runs, so a crash
  // during (or after) the solve still replays this batch on recovery.
  bool journaled = false;
  if (journal_.is_open()) {
    support::Status logged = journal_.append_delta(delta);
    if (!logged.ok()) {
      rollback_apply(std::move(graph_before), std::move(session_before),
                     std::move(stats_before), std::move(sets_before),
                     std::move(multipliers_before), /*journaled=*/false);
      return std::move(logged).with_context("Engine::apply");
    }
    journaled = true;
  }

  if (options_.fault_injection.fires(support::fault_sites::kEngineApply)) {
    rollback_apply(std::move(graph_before), std::move(session_before),
                   std::move(stats_before), std::move(sets_before),
                   std::move(multipliers_before), journaled);
    return support::Status::Internal(
               "injected fault at " +
               std::string(support::fault_sites::kEngineApply))
        .with_context("Engine::apply");
  }

  support::Expected<SynthesisResult> result = synthesize_current();
  if (!result.ok()) {
    rollback_apply(std::move(graph_before), std::move(session_before),
                   std::move(stats_before), std::move(sets_before),
                   std::move(multipliers_before), journaled);
  }
  return result;
}

void Engine::rollback_apply(
    model::ConstraintGraph&& graph, SessionState&& session,
    SessionStats&& stats,
    std::vector<std::vector<std::uint32_t>>&& chosen_sets,
    std::vector<double>&& multipliers, bool journaled) {
  graph_ = std::move(graph);
  session_ = std::move(session);
  stats_ = std::move(stats);
  last_chosen_arc_sets_ = std::move(chosen_sets);
  last_root_multipliers_ = std::move(multipliers);
  support::MetricsRegistry::global().counter("engine.rollbacks").add(1);
  if (journaled && journal_.is_open()) {
    support::Status truncated = journal_.truncate_last_record();
    if (!truncated.ok()) {
      // The file now holds a record for a batch the session rolled back.
      // Stop journaling rather than let the log diverge from the session;
      // recovery from this file would replay one batch too many.
      journal_.close();
    }
  }
}

support::Status Engine::open_journal(const std::string& path,
                                     io::JournalOptions journal_options) {
  if (journal_options.injector == nullptr) {
    journal_options.injector = options_.fault_injection.injector;
  }
  support::Expected<io::JournalWriter> writer =
      io::JournalWriter::create(path, graph_, std::move(journal_options));
  if (!writer.ok()) {
    return std::move(writer).take_status().with_context(
        "Engine::open_journal");
  }
  journal_ = *std::move(writer);
  return support::Status::Ok();
}

support::Expected<std::unique_ptr<Engine>> Engine::recover(
    const std::string& journal_path, commlib::Library library,
    SynthesisOptions options, WarmPolicy policy, RecoveryReport* report,
    io::JournalOptions journal_options) {
  support::Span span("engine.recover", "engine");
  if (options.fault_injection.fires(support::fault_sites::kEngineRecover)) {
    return support::Status::Internal(
               "injected fault at " +
               std::string(support::fault_sites::kEngineRecover))
        .with_context("Engine::recover('" + journal_path + "')");
  }
  support::Expected<io::JournalContents> contents =
      io::read_journal(journal_path);
  if (!contents.ok()) {
    return std::move(contents).take_status().with_context("Engine::recover");
  }

  // Replay graph-only: synthesis is a deterministic function of the graph,
  // so one resynthesize() on the result reproduces the uninterrupted
  // session's last solution bit-for-bit (under kBitIdentical).
  model::ConstraintGraph graph = std::move(contents->base);
  std::uint64_t replayed = 0;
  for (const model::Delta& delta : contents->deltas) {
    support::Expected<model::DeltaEffect> effect =
        model::apply_delta(graph, delta);
    if (!effect.ok()) {
      // The record checksummed clean, so a replay failure means the journal
      // and the session logic disagree -- corruption or a bug, not a torn
      // tail.
      return std::move(effect)
          .take_status()
          .with_context("replaying journal record " +
                        std::to_string(replayed + 2))
          .with_context("Engine::recover('" + journal_path + "')");
    }
    ++replayed;
  }

  if (journal_options.injector == nullptr) {
    journal_options.injector = options.fault_injection.injector;
  }
  support::Expected<io::JournalWriter> writer = io::JournalWriter::append_to(
      journal_path, contents->valid_prefix_bytes,
      std::move(contents->record_offsets), std::move(journal_options));
  if (!writer.ok()) {
    return std::move(writer).take_status().with_context("Engine::recover");
  }

  if (report != nullptr) {
    report->records_recovered = contents->records_recovered;
    report->deltas_replayed = replayed;
    report->bytes_dropped = contents->bytes_dropped;
    report->tail_truncated = contents->tail_truncated();
  }
  auto engine = std::make_unique<Engine>(std::move(graph), std::move(library),
                                         std::move(options), policy);
  engine->journal_ = *std::move(writer);
  support::MetricsRegistry::global().counter("engine.recoveries").add(1);
  support::flight_record("stage", "engine.recover replayed=" +
                                      std::to_string(replayed));
  return engine;
}

support::Expected<SynthesisResult> Engine::resynthesize() {
  support::Span span("engine.resynthesize", "engine");
  stats_.last_dirty_arcs = 0;
  stats_.revision = graph_.revision();
  return synthesize_current();
}

support::Expected<SynthesisResult> Engine::synthesize_current() {
  // Everything this solve emits -- spans, counters, flight events -- is
  // attributed to its revision, nesting under any session-level scope the
  // caller (CLI --obs-session, a service tenant) already opened.
  support::ObsContext obs_scope("solve=" + std::to_string(graph_.revision()));
  support::Status gate = model::check_inputs(graph_, library_);
  if (!gate.ok()) return std::move(gate).with_context("Engine::apply");
  try {
    SynthesisResult partial;
    support::Expected<CandidateSet> gen =
        generate_candidates(graph_, library_, options_);
    if (!gen.ok()) {
      return std::move(gen)
          .take_status()
          .with_context("candidate generation")
          .with_context("Engine::apply");
    }
    partial.candidate_set = *std::move(gen);

    ucp::BnbOptions solver = options_.solver;
    if (policy_ == WarmPolicy::kWarmStart) {
      // Previous cover -> column indices in the fresh candidate list, by
      // arc set. Any set without a matching column (its structure was
      // re-priced away) aborts the seed; the solver falls back to its
      // built-in greedy + singleton seeding.
      std::map<std::vector<std::uint32_t>, std::size_t> by_arcs;
      for (std::size_t j = 0; j < partial.candidate_set.candidates.size();
           ++j) {
        std::vector<std::uint32_t> key;
        for (model::ArcId a : partial.candidate_set.candidates[j].arcs) {
          key.push_back(a.index());
        }
        by_arcs.emplace(std::move(key), j);  // first (cheapest-kept) wins
      }
      std::vector<std::size_t> warm;
      for (const std::vector<std::uint32_t>& arcs : last_chosen_arc_sets_) {
        auto it = by_arcs.find(arcs);
        if (it == by_arcs.end()) {
          warm.clear();
          break;
        }
        warm.push_back(it->second);
      }
      if (!warm.empty()) solver.warm_start = std::move(warm);
      if (last_root_multipliers_.size() == graph_.num_channels()) {
        solver.warm_multipliers = last_root_multipliers_;
      }
    }

    support::Expected<SynthesisResult> result = finish_pipeline(
        graph_, library_, options_, solver, &session_, std::move(partial));
    if (!result.ok()) {
      return std::move(result).take_status().with_context("Engine::apply");
    }

    stats_.applies += 1;
    stats_.cover_solves = session_.cover_solves;
    stats_.cover_reuses = session_.cover_reuses;
    support::MetricsRegistry::global().counter("engine.applies").add(1);

    last_chosen_arc_sets_.clear();
    for (std::size_t j : result->cover.chosen) {
      std::vector<std::uint32_t> arcs;
      for (model::ArcId a : result->candidate_set.candidates[j].arcs) {
        arcs.push_back(a.index());
      }
      last_chosen_arc_sets_.push_back(std::move(arcs));
    }
    last_root_multipliers_ = result->cover.root_multipliers;
    return result;
  } catch (const std::exception& e) {
    return support::Status::Internal(std::string("unexpected exception: ") +
                                     e.what())
        .with_context("Engine::apply");
  }
}

Engine::SessionStats Engine::stats() const {
  SessionStats s = stats_;
  // Pricing accounting reads the cache's own counters (the single place
  // hits/misses are incremented) rather than re-accumulating per-run
  // deltas, so SessionStats can never drift from PricingCache::Stats.
  const PricingCache::Stats cs = options_.pricing_cache->stats();
  s.pricing_hits =
      cs.hits >= cache_baseline_.hits ? cs.hits - cache_baseline_.hits : 0;
  s.pricing_misses = cs.misses >= cache_baseline_.misses
                         ? cs.misses - cache_baseline_.misses
                         : 0;
  s.revision = graph_.revision();
  return s;
}

}  // namespace cdcs::synth
