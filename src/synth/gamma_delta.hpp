// The two symmetric matrices driving merge pruning (Sec. 3, Tables 1-2):
//
//   Gamma(a_i, a_j) = d(a_i) + d(a_j)                 (Constrained Distance Sum)
//   Delta(a_i, a_j) = ||p(u_i)-p(u_j)|| + ||p(v_i)-p(v_j)||   (Merging Distance Sum)
//
// Gamma is the combined length the two channels must cover anyway; Delta is
// the detour incurred by routing both through a shared structure. Lemma 3.1
// prunes a pair whenever Gamma <= Delta.
#pragma once

#include <cstddef>
#include <vector>

#include "model/constraint_graph.hpp"

namespace cdcs::synth {

/// Dense symmetric matrix indexed by constraint-arc index.
class ArcPairMatrix {
 public:
  explicit ArcPairMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

  std::size_t size() const { return n_; }

  double operator()(model::ArcId a, model::ArcId b) const {
    return data_[a.index() * n_ + b.index()];
  }
  double& at(model::ArcId a, model::ArcId b) {
    return data_[a.index() * n_ + b.index()];
  }

 private:
  std::size_t n_;
  std::vector<double> data_;
};

/// ComputeConstrainedDistanceSumMatrix of Fig. 2 (Table 1).
ArcPairMatrix gamma_matrix(const model::ConstraintGraph& cg);

/// ComputeMergingDistanceSumMatrix of Fig. 2 (Table 2).
ArcPairMatrix delta_matrix(const model::ConstraintGraph& cg);

/// ComputeBandwidthVector of Fig. 2: b(a) per arc, by arc index.
std::vector<double> bandwidth_vector(const model::ConstraintGraph& cg);

}  // namespace cdcs::synth
