#include "synth/pipeline.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <utility>

#include "model/validator.hpp"
#include "support/fault.hpp"
#include "support/flight_recorder.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "synth/assemble.hpp"
#include "synth/candidate_generator.hpp"
#include "ucp/bnb.hpp"
#include "ucp/cover_solver.hpp"
#include "ucp/greedy.hpp"

namespace cdcs::synth {
namespace {

/// Bit-exact signature of one cover solve: the full matrix plus every
/// BnbOptions field the search reads. Two runs with equal signatures (and
/// unlimited deadlines) are the same deterministic computation, so the
/// previous CoverSolution -- nodes_explored, bounds, multipliers and all --
/// IS the result of redoing the solve. Encoded as doubles: every encoded
/// integer (row/column indices, node budgets) is far below 2^53, so the
/// round-trip is exact.
std::vector<double> cover_signature(std::size_t num_rows,
                                    const CandidateSet& set,
                                    const ucp::BnbOptions& solver) {
  std::vector<double> sig;
  sig.reserve(8 + set.candidates.size() * 4 + solver.warm_start.size() +
              solver.warm_multipliers.size());
  sig.push_back(static_cast<double>(num_rows));
  sig.push_back(static_cast<double>(set.candidates.size()));
  for (const Candidate& c : set.candidates) {
    sig.push_back(c.cost);
    sig.push_back(static_cast<double>(c.arcs.size()));
    for (model::ArcId a : c.arcs) sig.push_back(static_cast<double>(a.index()));
  }
  sig.push_back(static_cast<double>(solver.max_nodes));
  sig.push_back(static_cast<double>(
      (std::uint64_t{solver.use_row_dominance} << 0) |
      (std::uint64_t{solver.use_column_dominance} << 1) |
      (std::uint64_t{solver.use_mis_lower_bound} << 2) |
      (std::uint64_t{solver.use_lagrangian_bound} << 3) |
      (std::uint64_t{solver.use_reduced_cost_fixing} << 4) |
      (std::uint64_t{solver.search_order == ucp::SearchOrder::kBestFirst}
       << 5)));
  sig.push_back(static_cast<double>(solver.column_dominance_max_depth));
  sig.push_back(static_cast<double>(solver.lagrangian_root_iterations));
  sig.push_back(static_cast<double>(solver.lagrangian_node_iterations));
  sig.push_back(static_cast<double>(solver.reduced_cost_fixing_period));
  sig.push_back(static_cast<double>(solver.best_first_max_frontier));
  sig.push_back(static_cast<double>(solver.dense_dp_max_rows));
  // Engine mode and its round granularity change the explored tree, so they
  // are part of the solve's identity. Thread count deliberately is NOT:
  // kRounds is bit-identical at every worker count (the determinism
  // contract), and kFreeRun never reaches the reuse path at all.
  sig.push_back(static_cast<double>(static_cast<int>(solver.mode)));
  sig.push_back(static_cast<double>(solver.rounds_batch_size));
  sig.push_back(static_cast<double>(solver.warm_start.size()));
  for (std::size_t j : solver.warm_start) {
    sig.push_back(static_cast<double>(j));
  }
  sig.push_back(static_cast<double>(solver.warm_multipliers.size()));
  for (double m : solver.warm_multipliers) sig.push_back(m);
  // Backend selection changes which engine runs, so it is part of the
  // solve's identity (length + characters; each char value is exact as a
  // double).
  sig.push_back(static_cast<double>(solver.backend.size()));
  for (char ch : solver.backend) {
    sig.push_back(static_cast<double>(static_cast<unsigned char>(ch)));
  }
  return sig;
}

}  // namespace

ucp::CoverProblem build_cover_problem(std::size_t num_rows,
                                      const CandidateSet& set) {
  ucp::CoverProblem cover(num_rows);
  for (const Candidate& c : set.candidates) {
    std::vector<std::size_t> rows;
    rows.reserve(c.arcs.size());
    for (model::ArcId a : c.arcs) rows.push_back(a.index());
    cover.add_column(rows, c.cost);
  }
  return cover;
}

ucp::BnbOptions effective_solver_options(const SynthesisOptions& options,
                                         const ucp::BnbOptions& solver_options,
                                         std::size_t num_rows,
                                         std::size_t num_candidates) {
  ucp::BnbOptions solver = solver_options;
  if (solver.deadline.unlimited()) solver.deadline = options.deadline;
  if (options.fault_injection.fires(support::fault_sites::kUcpSolve)) {
    solver.deadline = support::Deadline::expire_after_checks(0);
  }
  // Let the parallel engines consult the armed plan's "ucp.frontier" site
  // and share the caller's worker pool when one is mounted.
  if (solver.fault_injector == nullptr &&
      options.fault_injection.injector != nullptr) {
    solver.fault_injector = options.fault_injection.injector.get();
  }
  if (solver.pool == nullptr) solver.pool = options.pool;
  // Seed the incumbent with the anytime ladder's last rung: generation
  // emits the singletons first (candidate i covers exactly arc i), so
  // {0..rows-1} is always a feasible cover and branch-and-bound pruning
  // starts with a real upper bound even when greedy underperforms.
  if (solver.warm_start.empty() && num_candidates >= num_rows) {
    solver.warm_start.resize(num_rows);
    std::iota(solver.warm_start.begin(), solver.warm_start.end(),
              std::size_t{0});
  }
  return solver;
}

support::Expected<CoverOutcome> cover_and_ladder(
    std::size_t num_rows, const CandidateSet& set,
    const SynthesisOptions& options, const ucp::BnbOptions& solver_options,
    SessionState* session) {
  const GenerationStats& stats = set.stats;
  auto& registry = support::MetricsRegistry::global();
  CoverOutcome result;

  const ucp::CoverProblem cover = build_cover_problem(num_rows, set);
  const ucp::BnbOptions solver = effective_solver_options(
      options, solver_options, num_rows, set.candidates.size());

  // Cover stage: reuse the session's previous solution when this instance
  // is bit-identical to the one it solved (same matrix, same solver
  // configuration, no deadline in play -- an expired deadline makes the
  // result time-dependent, which a signature cannot capture). Free-run
  // solves are excluded (the explored tree, hence nodes_explored and which
  // of several optimal covers comes back, varies run to run), as are solves
  // with an armed fault injector (its hit counters are stateful: replaying
  // a cached result would skip consultations the plan is counting on).
  // Portfolio solves are excluded too: the race's member outcomes depend on
  // pool timing, so the recorded portfolio report is not a pure function of
  // the signature even though the winner is.
  const bool reusable = session != nullptr && solver.deadline.unlimited() &&
                        solver.mode != ucp::BnbMode::kFreeRun &&
                        solver.fault_injector == nullptr &&
                        solver.backend != "portfolio";
  std::vector<double> signature;
  if (reusable) {
    signature = cover_signature(num_rows, set, solver);
  }
  if (reusable && !session->last_cover_signature.empty() &&
      signature == session->last_cover_signature) {
    support::Span span("cover", "pipeline", "{\"reused\":true}");
    result.cover = session->last_cover;
    session->cover_reuses += 1;
    registry.counter("ucp.cover_reuses").add(1);
    support::flight_record("stage", "cover reused");
  } else {
    support::ScopedTimer span("cover", "pipeline",
                              &registry.histogram("synth.stage.cover.us"),
                              &registry.counter("synth.stage.cover.wall_us"));
    result.cover = ucp::solve_exact(cover, solver);
    registry.counter("ucp.solves").add(1);
    registry.counter("ucp.nodes_explored").add(result.cover.nodes_explored);
    support::flight_record(
        "backend", "cover backend=" + result.cover.backend + " stop=" +
                       std::string(to_string(result.cover.stop)) +
                       (result.cover.optimal ? " optimal" : " incumbent"));
    if (!result.cover.portfolio.empty()) {
      std::string summary = "race";
      for (const ucp::PortfolioMember& m : result.cover.portfolio) {
        summary += ' ';
        summary += m.backend;
        summary += '=';
        summary += to_string(m.outcome);
      }
      support::flight_record("portfolio", std::move(summary));
    }
    if (session != nullptr) {
      session->cover_solves += 1;
      if (reusable) {
        session->last_cover_signature = std::move(signature);
        session->last_cover = result.cover;
      } else {
        // A deadline-bound solve is not reusable; drop any stale state so
        // a later unlimited run cannot match against it.
        session->last_cover_signature.clear();
        session->last_cover = {};
      }
    }
  }

  {
  support::ScopedTimer ladder_span(
      "ladder", "pipeline", &registry.histogram("synth.stage.ladder.us"),
      &registry.counter("synth.stage.ladder.wall_us"));
  DegradationReport& deg = result.degradation;
  deg.lower_bound = result.cover.lower_bound;

  if (options.fault_injection.fires(support::fault_sites::kUcpIncumbent)) {
    result.cover.chosen.clear();
    result.cover.cost = 0.0;
    result.cover.optimal = false;
  }

  const bool generation_complete =
      !stats.enumeration_truncated && !stats.deadline_expired;
  const bool solver_usable = num_rows == 0 ||
                             (!result.cover.chosen.empty() &&
                              cover.covers_all(result.cover.chosen));

  if (solver_usable) {
    if (result.cover.optimal && generation_complete) {
      deg.stage = SynthesisStage::kExact;
    } else {
      deg.stage = SynthesisStage::kIncumbent;
      if (!result.cover.optimal) {
        switch (result.cover.stop) {
          case ucp::CoverStop::kDeadline:
            deg.reason =
                "deadline expired in the cover solver; best incumbent "
                "returned";
            break;
          case ucp::CoverStop::kFrontierCap:
            deg.reason =
                "cover solver frontier cap reached (raise "
                "best_first_max_frontier); best incumbent returned";
            break;
          case ucp::CoverStop::kAborted:
            deg.reason =
                "cover solver aborted by injected fault; best incumbent "
                "returned";
            break;
          default:
            deg.reason =
                "cover solver node budget exhausted; best incumbent "
                "returned";
            break;
        }
      } else {
        deg.reason = stats.deadline_expired
                         ? "deadline expired during candidate enumeration; "
                           "cover is optimal over the partial candidate set"
                         : "candidate enumeration truncated at "
                           "max_subsets_per_k; cover is optimal over the "
                           "partial candidate set";
      }
    }
  } else {
    // The solver produced nothing usable (deadline hit before any incumbent,
    // or fault injection discarded it). Greedy cover next.
    ucp::CoverSolution greedy;
    if (!options.fault_injection.fires(support::fault_sites::kUcpGreedy)) {
      greedy = ucp::solve_greedy(cover);
    }
    if (!greedy.chosen.empty() && cover.covers_all(greedy.chosen)) {
      result.cover = std::move(greedy);
      result.cover.deadline_expired = true;
      deg.stage = SynthesisStage::kGreedy;
      deg.reason = "cover solver returned no usable incumbent; greedy cover";
    } else {
      // Last rung: one optimum point-to-point link per arc. Generation
      // emits the singletons first (candidate i covers exactly arc i) and
      // never deadline-gates them, so this cover always exists here.
      if (set.candidates.size() < num_rows) {
        return support::Status::Internal(
            "point-to-point fallback: candidate set is missing singletons");
      }
      result.cover = ucp::CoverSolution{};
      result.cover.chosen.resize(num_rows);
      std::iota(result.cover.chosen.begin(), result.cover.chosen.end(),
                std::size_t{0});
      result.cover.cost = cover.cost_of(result.cover.chosen);
      result.cover.deadline_expired = true;
      deg.stage = SynthesisStage::kPointToPoint;
      deg.reason =
          "no usable incumbent and no greedy cover; every arc implemented "
          "point-to-point";
    }
    result.cover.lower_bound = deg.lower_bound;
  }
  // For exact runs the bound equals the achieved cost, so the gap is 0
  // either way; computing it unconditionally lets reporting surface the
  // bound-relative gap whenever a meaningful lower bound exists.
  deg.optimality_gap = ucp::optimality_gap(result.cover.cost, deg.lower_bound);
  if (deg.degraded()) {
    registry.counter("synth.degraded_runs").add(1);
    support::trace_instant("degraded", "pipeline",
                           "{\"stage\":\"" +
                               std::string(to_string(deg.stage)) + "\"}");
    support::flight_record(
        "ladder", "degraded to " + std::string(to_string(deg.stage)) +
                      " stop=" + std::string(to_string(result.cover.stop)) +
                      ": " + deg.reason);
    // A degraded exit (stage past exact: incumbent/greedy/point-to-point,
    // which subsumes deadline expiry and kAborted) is a postmortem trigger.
    support::maybe_dump_postmortem(
        "degraded", std::string(to_string(deg.stage)) + ": " + deg.reason);
  }
  }  // ladder span
  return result;
}

void assemble_and_validate(const model::ConstraintGraph& cg,
                           const commlib::Library& library,
                           const SynthesisOptions& options,
                           SynthesisResult& result) {
  auto& registry = support::MetricsRegistry::global();
  {
    support::ScopedTimer span(
        "assemble", "pipeline", &registry.histogram("synth.stage.assemble.us"),
        &registry.counter("synth.stage.assemble.wall_us"));
    result.implementation = assemble(cg, library,
                                     result.candidate_set.candidates,
                                     result.cover.chosen);
    result.total_cost = result.implementation->cost();
  }
  {
    support::ScopedTimer span(
        "validate", "pipeline", &registry.histogram("synth.stage.validate.us"),
        &registry.counter("synth.stage.validate.wall_us"));
    result.validation = model::validate(*result.implementation, options.policy);
  }
  support::flight_record(
      "stage", "assembled cost=" + std::to_string(result.total_cost) +
                   (result.validation.ok() ? " valid" : " INVALID"));
}

support::Expected<SynthesisResult> finish_pipeline(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const SynthesisOptions& options, const ucp::BnbOptions& solver_options,
    SessionState* session, SynthesisResult result) {
  support::Expected<CoverOutcome> outcome =
      cover_and_ladder(cg.num_channels(), result.candidate_set, options,
                       solver_options, session);
  if (!outcome.ok()) return std::move(outcome).take_status();
  result.cover = std::move(outcome->cover);
  result.degradation = std::move(outcome->degradation);
  assemble_and_validate(cg, library, options, result);
  support::MetricsRegistry::global().counter("synth.runs").add(1);
  return result;
}

support::Expected<SynthesisResult> run_pipeline(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const SynthesisOptions& options, const ucp::BnbOptions& solver_options,
    SessionState* session) {
  // One pool for the whole run, sized for the wider of the two parallel
  // stages: subset pricing (options.threads) and the parallel cover solver
  // (solver.threads). They run one after the other, so sharing costs
  // nothing and keeps --threads plus --ucp-threads from spawning two pools.
  SynthesisOptions opts = options;
  ucp::BnbOptions solver = solver_options;
  std::unique_ptr<support::ThreadPool> shared_pool;
  if (opts.pool == nullptr && solver.pool == nullptr) {
    const std::size_t pricing_workers =
        support::resolve_thread_count(opts.threads);
    // The portfolio races serial members across the pool, so it wants
    // workers even when `mode` is kSerial; otherwise only the parallel
    // engine does.
    const std::size_t solver_workers =
        solver.backend == "portfolio" ||
                solver.mode != ucp::BnbMode::kSerial
            ? support::resolve_thread_count(solver.threads)
            : 1;
    const std::size_t pool_size = std::max(pricing_workers, solver_workers);
    if (pool_size > 1) {
      shared_pool = std::make_unique<support::ThreadPool>(pool_size);
      opts.pool = shared_pool.get();
      solver.pool = shared_pool.get();
    }
  }
  SynthesisResult result;
  support::Expected<CandidateSet> gen =
      generate_candidates(cg, library, opts);
  if (!gen.ok()) {
    return std::move(gen).take_status().with_context("candidate generation");
  }
  result.candidate_set = *std::move(gen);
  return finish_pipeline(cg, library, opts, solver, session,
                         std::move(result));
}

}  // namespace cdcs::synth
