// Incremental synthesis engine: a long-lived session over one evolving
// constraint graph.
//
// Where synthesize() is the paper's one-shot batch flow, an Engine answers
// an EDIT STREAM: it owns the graph, the communication library, the pricing
// memoization (the persistent pool of priced candidate structures), and the
// last cover solution, and re-synthesizes after each model::Delta:
//
//     Engine engine(workloads::wan2002(), commlib::wan_library());
//     auto base = engine.resynthesize();
//     model::Delta d;
//     d.ops.push_back(model::SetBandwidthOp{"a3", 25.0});
//     auto next = engine.apply(d);   // warm: only dirty subsets re-price
//
// Reuse model (docs/architecture.md): every apply() re-runs the full
// enumeration (cheap, and the source of the candidate set's determinism),
// but subset pricing -- the dominant cost -- is served from the session
// PricingCache. A subset's cache key is a pure function of its endpoint
// geometry, bandwidths, and the library, so an edit invalidates exactly the
// subsets whose pricing inputs it changed (the DeltaEffect::dirty_arcs and
// every subset containing one): everything else hits. The cover solve is
// likewise skipped when the UCP instance is bit-identical to the previous
// one (SessionState). Under the default WarmPolicy::kBitIdentical the
// solver inputs are exactly a cold run's, so apply() output is BIT-IDENTICAL
// to from-scratch synthesize() on the edited graph -- the oracle
// tests/test_incremental.cpp pins at 1/2/8 threads.
//
// Lifetime: results reference the session's graph and library (like
// synthesize() results reference the caller's); the Engine must outlive
// them, and a result's implementation graph describes the session state at
// the apply() that produced it -- read what you need before the next apply.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "commlib/library.hpp"
#include "io/journal.hpp"
#include "model/delta.hpp"
#include "support/status.hpp"
#include "synth/options.hpp"
#include "synth/pipeline.hpp"
#include "synth/pricing_cache.hpp"
#include "synth/result.hpp"

namespace cdcs::synth {

class Engine {
 public:
  /// How much previous-solve state apply() feeds into the cover solver.
  enum class WarmPolicy {
    /// Solver inputs identical to a from-scratch run; output bit-identical
    /// to synthesize() on the edited graph. All reuse is confined to
    /// provably output-preserving caches. The default.
    kBitIdentical,
    /// Additionally seed the solver with the previous cover as incumbent
    /// and the previous root Lagrangian multipliers (remapped across arc
    /// renumbering). Same proven-optimal COST, but node counts and
    /// equal-cost tie-breaks may differ from a cold run.
    kWarmStart,
  };

  /// The session takes the graph and library by value and owns them; edit
  /// them only through apply(). `options.pricing_cache`, when set, is used
  /// (and shared) instead of the engine's own cache and must outlive the
  /// engine.
  Engine(model::ConstraintGraph graph, commlib::Library library,
         SynthesisOptions options = {},
         WarmPolicy policy = WarmPolicy::kBitIdentical);

  const model::ConstraintGraph& graph() const { return graph_; }
  const commlib::Library& library() const { return library_; }
  const SynthesisOptions& options() const { return options_; }
  WarmPolicy policy() const { return policy_; }

  /// Applies `delta` to the session graph and re-synthesizes. ALL-OR-
  /// NOTHING: on any failure -- a rejected batch, a journal append that
  /// exhausts its retries, an injected engine.apply fault, or a synthesis
  /// error -- the whole session (graph, cover-reuse state, warm-start
  /// state, stats, journal) is restored to its pre-apply state, and a
  /// journal record already written for the failed batch is truncated back
  /// out. Error statuses are synthesize()'s plus kInvalidInput for a bad
  /// delta. Like synthesize(), never throws.
  support::Expected<SynthesisResult> apply(const model::Delta& delta);

  /// Re-synthesizes the current graph without edits (an empty apply()).
  support::Expected<SynthesisResult> resynthesize();

  // -- Durability (docs/robustness.md) ------------------------------------
  //
  // open_journal() starts write-ahead logging this session to a journal
  // file (io/journal.hpp): the current graph is snapshotted as the base
  // record, and every subsequent successful apply() appends its delta
  // BEFORE synthesis runs, so a crash at any point leaves base + applied
  // batches on disk. recover() rebuilds the session from such a journal --
  // replaying the deltas over the snapshot graph-only, healing a torn
  // tail by truncating to the last valid record -- and reopens the file
  // for appending. Under WarmPolicy::kBitIdentical a resynthesize() on the
  // recovered engine returns bit-identical results (same cover cost, same
  // ucp_nodes) to the uninterrupted session's last apply(), because
  // synthesis is a deterministic function of the graph.

  /// Snapshots the current graph into a fresh journal at `path` and turns
  /// on logging for subsequent apply() calls. `journal_options.injector`
  /// defaults to this session's fault injector when unset. Replaces any
  /// journal already open.
  support::Status open_journal(const std::string& path,
                               io::JournalOptions journal_options = {});

  /// Stops journaling (the file keeps its records; nothing is deleted).
  void close_journal() { journal_.close(); }

  bool journaling() const { return journal_.is_open(); }

  struct RecoveryReport {
    std::uint64_t records_recovered{0};  ///< valid records, incl. snapshot
    std::uint64_t deltas_replayed{0};
    std::uint64_t bytes_dropped{0};      ///< torn tail truncated away
    bool tail_truncated{false};
  };

  /// Rebuilds a session from a journal: reads the base snapshot, replays
  /// every recovered delta (graph-only; call resynthesize() on the result
  /// to rebuild the solution), truncates any torn tail, and reopens the
  /// journal for appending. `options.fault_injection` is consulted at the
  /// engine.recover site; `journal_options.injector` defaults from it.
  /// Returns a pointer because Engine is immovable (it owns a mutex-holding
  /// pricing cache).
  static support::Expected<std::unique_ptr<Engine>> recover(
      const std::string& journal_path, commlib::Library library,
      SynthesisOptions options = {},
      WarmPolicy policy = WarmPolicy::kBitIdentical,
      RecoveryReport* report = nullptr,
      io::JournalOptions journal_options = {});

  struct SessionStats {
    std::size_t applies{0};        ///< successful apply()/resynthesize() runs
    std::size_t cover_solves{0};   ///< exact cover solves actually run
    std::size_t cover_reuses{0};   ///< cover solves skipped (identical UCP)
    /// Pricing-cache traffic since the engine was constructed -- a snapshot
    /// delta of the cache's own counters (the single source of truth; see
    /// PricingCache::Stats), so it agrees with cache->stats() even when an
    /// apply() fails after generation. Over a cache SHARED with other
    /// concurrent users it includes their traffic too.
    std::size_t pricing_hits{0};
    std::size_t pricing_misses{0};
    std::size_t last_dirty_arcs{0};  ///< dirtied by the latest delta
    std::uint64_t revision{0};       ///< graph revision after latest apply
  };
  SessionStats stats() const;

 private:
  support::Expected<SynthesisResult> synthesize_current();
  /// Restores every piece of session state apply() snapshots, and truncates
  /// the journal record of the failed batch when one was already appended.
  void rollback_apply(model::ConstraintGraph&& graph, SessionState&& session,
                      SessionStats&& stats,
                      std::vector<std::vector<std::uint32_t>>&& chosen_sets,
                      std::vector<double>&& multipliers, bool journaled);

  model::ConstraintGraph graph_;
  commlib::Library library_;
  SynthesisOptions options_;
  WarmPolicy policy_;
  PricingCache own_cache_;  ///< used unless options_.pricing_cache is set
  /// Cache counters at construction; stats() reports the delta since.
  PricingCache::Stats cache_baseline_;
  SessionState session_;
  SessionStats stats_;

  // WarmPolicy::kWarmStart state from the previous successful apply():
  // the chosen candidates as sorted arc-index sets (remapped across arc
  // renumbering; a set touching a removed arc is dropped) and the root
  // Lagrangian multipliers per row.
  std::vector<std::vector<std::uint32_t>> last_chosen_arc_sets_;
  std::vector<double> last_root_multipliers_;

  /// Write-ahead log of applied deltas; closed unless open_journal() /
  /// recover() armed it.
  io::JournalWriter journal_;
};

}  // namespace cdcs::synth
