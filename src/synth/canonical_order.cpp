#include "synth/canonical_order.hpp"

#include <algorithm>

namespace cdcs::synth {

std::array<double, 5> arc_geometry_record(const model::ConstraintGraph& cg,
                                          model::ArcId a) {
  const geom::Point2D u = cg.position(cg.source(a));
  const geom::Point2D v = cg.position(cg.target(a));
  return {u.x, u.y, v.x, v.y, cg.bandwidth(a)};
}

std::vector<std::uint32_t> canonical_subset_order(
    const model::ConstraintGraph& cg,
    const std::vector<model::ArcId>& subset) {
  std::vector<std::array<double, 5>> records;
  records.reserve(subset.size());
  for (model::ArcId a : subset) records.push_back(arc_geometry_record(cg, a));
  std::vector<std::uint32_t> order(subset.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return records[a] < records[b];
                   });
  return order;
}

void canonicalize_subset(const model::ConstraintGraph& cg,
                         std::vector<model::ArcId>& subset) {
  const std::vector<std::uint32_t> order = canonical_subset_order(cg, subset);
  std::vector<model::ArcId> out(subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i) out[i] = subset[order[i]];
  subset = std::move(out);
}

}  // namespace cdcs::synth
