// Top-level constraint-driven communication synthesis (Problem 2.1).
//
// Pipeline, exactly as Sec. 3 describes:
//   1. sanitize             -- reject structurally invalid inputs up front
//                              (model/sanitize.hpp);
//   2. generate_candidates  -- Fig. 2: point-to-point optima + non-pruned
//                              k-way mergings, each priced by the placement
//                              optimizer;
//   3. weighted UCP         -- rows = constraint arcs, columns = candidates,
//                              solved exactly by branch-and-bound;
//   4. assemble             -- materialize the winning columns into the
//                              final implementation graph;
//   5. validate             -- independent Def 2.4 / flow check.
//
// Resilience: synthesize() never throws and always returns a *valid* cover
// when one exists, even under a wall-clock deadline. On resource exhaustion
// it degrades along an explicit anytime ladder (docs/robustness.md):
//
//   exact optimum  ->  best incumbent  ->  greedy cover  ->  per-arc
//                                                            point-to-point
//
// and reports which rung it landed on (plus a lower bound and optimality
// gap) in SynthesisResult::degradation.
#pragma once

#include <memory>
#include <string>

#include "support/status.hpp"
#include "synth/assemble.hpp"
#include "ucp/bnb.hpp"

namespace cdcs::synth {

/// The rung of the anytime ladder that produced the returned cover.
enum class SynthesisStage {
  kExact,         ///< proven-optimal cover over the full candidate set
  kIncumbent,     ///< solver's best feasible cover (budget/deadline cut off)
  kGreedy,        ///< ln(n) greedy cover (solver returned nothing usable)
  kPointToPoint,  ///< every arc on its own optimum point-to-point link
};

constexpr std::string_view to_string(SynthesisStage stage) {
  switch (stage) {
    case SynthesisStage::kExact:
      return "exact";
    case SynthesisStage::kIncumbent:
      return "incumbent";
    case SynthesisStage::kGreedy:
      return "greedy";
    case SynthesisStage::kPointToPoint:
      return "point-to-point";
  }
  return "unknown";
}

/// How (and how far) the run degraded from the exact algorithm.
struct DegradationReport {
  SynthesisStage stage{SynthesisStage::kExact};
  /// Human-readable cause when stage != kExact ("deadline expired in the
  /// cover solver", ...). Empty for exact runs.
  std::string reason;
  /// Lower bound on the optimal cover cost over the generated candidate
  /// set (== achieved cost for exact runs; the subgradient Lagrangian root
  /// bound -- falling back to the independent-rows bound -- otherwise).
  /// When candidate enumeration itself was cut short the true optimum over
  /// the full set could be lower still.
  double lower_bound{0.0};
  /// (achieved - lower_bound) / lower_bound; 0 for exact runs or when the
  /// bound is degenerate (<= 0).
  double optimality_gap{0.0};

  bool degraded() const { return stage != SynthesisStage::kExact; }
};

struct SynthesisResult {
  CandidateSet candidate_set;
  ucp::CoverSolution cover;         ///< chosen indices == candidate indices
  double total_cost{0.0};           ///< Def 2.5 cost of `implementation`
  std::unique_ptr<model::ImplementationGraph> implementation;
  model::ValidationReport validation;
  DegradationReport degradation;    ///< which ladder rung produced `cover`

  const std::vector<Candidate>& candidates() const {
    return candidate_set.candidates;
  }
  /// The selected candidates (columns of the UCP optimum).
  std::vector<const Candidate*> selected() const {
    std::vector<const Candidate*> sel;
    for (std::size_t j : cover.chosen) {
      sel.push_back(&candidate_set.candidates[j]);
    }
    return sel;
  }
};

/// Solves Problem 2.1 for (cg, library). The returned implementation graph
/// keeps references to `cg` and `library`; both must outlive the result.
///
/// Never throws. Error statuses:
///   * kInvalidInput -- cg/library fail the model::check_inputs gate;
///   * kInfeasible   -- some arc has no point-to-point implementation at all;
///   * kInternal     -- an invariant broke downstream (a bug, not bad input).
/// A deadline (SynthesisOptions::deadline) is NOT an error: the result
/// degrades along the anytime ladder and `result.degradation` says how.
///
/// The cover solver runs with `options.solver` (Lagrangian bounds,
/// reduced-cost fixing, search order, ...); the 4-argument overload
/// overrides that with an explicit BnbOptions. Either way the solver's
/// incumbent is warm-started with the point-to-point singleton cover, so
/// pruning starts from the anytime ladder's last-resort upper bound.
support::Expected<SynthesisResult> synthesize(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const SynthesisOptions& options = {});
support::Expected<SynthesisResult> synthesize(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const SynthesisOptions& options, const ucp::BnbOptions& solver_options);

}  // namespace cdcs::synth
