// Top-level constraint-driven communication synthesis (Problem 2.1).
//
// Pipeline, exactly as Sec. 3 describes:
//   1. generate_candidates  -- Fig. 2: point-to-point optima + non-pruned
//                              k-way mergings, each priced by the placement
//                              optimizer;
//   2. weighted UCP         -- rows = constraint arcs, columns = candidates,
//                              solved exactly by branch-and-bound;
//   3. assemble             -- materialize the winning columns into the
//                              final implementation graph;
//   4. validate             -- independent Def 2.4 / flow check.
#pragma once

#include <memory>

#include "synth/assemble.hpp"
#include "ucp/bnb.hpp"

namespace cdcs::synth {

struct SynthesisResult {
  CandidateSet candidate_set;
  ucp::CoverSolution cover;         ///< chosen indices == candidate indices
  double total_cost{0.0};           ///< Def 2.5 cost of `implementation`
  std::unique_ptr<model::ImplementationGraph> implementation;
  model::ValidationReport validation;

  const std::vector<Candidate>& candidates() const {
    return candidate_set.candidates;
  }
  /// The selected candidates (columns of the UCP optimum).
  std::vector<const Candidate*> selected() const {
    std::vector<const Candidate*> sel;
    for (std::size_t j : cover.chosen) {
      sel.push_back(&candidate_set.candidates[j]);
    }
    return sel;
  }
};

/// Solves Problem 2.1 for (cg, library). The returned implementation graph
/// keeps references to `cg` and `library`; both must outlive the result.
/// Throws std::runtime_error when some arc cannot be implemented at all.
SynthesisResult synthesize(const model::ConstraintGraph& cg,
                           const commlib::Library& library,
                           const SynthesisOptions& options = {},
                           const ucp::BnbOptions& solver_options = {});

}  // namespace cdcs::synth
