// Top-level constraint-driven communication synthesis (Problem 2.1).
//
// Pipeline, exactly as Sec. 3 describes:
//   1. sanitize             -- reject structurally invalid inputs up front
//                              (model/sanitize.hpp);
//   2. generate_candidates  -- Fig. 2: point-to-point optima + non-pruned
//                              k-way mergings, each priced by the placement
//                              optimizer;
//   3. weighted UCP         -- rows = constraint arcs, columns = candidates,
//                              solved exactly by branch-and-bound;
//   4. assemble             -- materialize the winning columns into the
//                              final implementation graph;
//   5. validate             -- independent Def 2.4 / flow check.
//
// Resilience: synthesize() never throws and always returns a *valid* cover
// when one exists, even under a wall-clock deadline. On resource exhaustion
// it degrades along an explicit anytime ladder (docs/robustness.md):
//
//   exact optimum  ->  best incumbent  ->  greedy cover  ->  per-arc
//                                                            point-to-point
//
// and reports which rung it landed on (plus a lower bound and optimality
// gap) in SynthesisResult::degradation.
//
// The result types live in synth/result.hpp and the options in
// synth/options.hpp; the staged pipeline these wrappers drive is
// synth/pipeline.hpp, and the incremental session entry point is
// synth/engine.hpp. Including this header pulls neither the assembler nor
// the cover solver.
#pragma once

#include "support/status.hpp"
#include "synth/options.hpp"
#include "synth/result.hpp"

namespace cdcs::synth {

/// Solves Problem 2.1 for (cg, library). The returned implementation graph
/// keeps references to `cg` and `library`; both must outlive the result.
///
/// Never throws. Error statuses:
///   * kInvalidInput -- cg/library fail the model::check_inputs gate;
///   * kInfeasible   -- some arc has no point-to-point implementation at all;
///   * kInternal     -- an invariant broke downstream (a bug, not bad input).
/// A deadline (SynthesisOptions::deadline) is NOT an error: the result
/// degrades along the anytime ladder and `result.degradation` says how.
///
/// The cover solver runs with `options.solver` (Lagrangian bounds,
/// reduced-cost fixing, search order, ...); the 4-argument overload
/// overrides that with an explicit BnbOptions. Either way the solver's
/// incumbent is warm-started with the point-to-point singleton cover, so
/// pruning starts from the anytime ladder's last-resort upper bound.
///
/// Both overloads are thin wrappers over a throwaway synth::Engine session
/// (synth/engine.hpp); edit streams should hold a session open instead of
/// calling these in a loop.
support::Expected<SynthesisResult> synthesize(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const SynthesisOptions& options = {});
support::Expected<SynthesisResult> synthesize(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const SynthesisOptions& options, const ucp::BnbOptions& solver_options);

}  // namespace cdcs::synth
