// The staged synthesis pipeline (Fig. 2 + covering + materialization),
// factored out of the one-shot synthesize() wrappers so the incremental
// synth::Engine drives the SAME stages over its session state:
//
//   generate  -- candidate enumeration + pricing (candidate_generator.hpp;
//                pricing memoized via SynthesisOptions::pricing_cache)
//   cover     -- build the UCP matrix and solve it exactly, or reuse the
//                session's previous solution when the matrix and solver
//                configuration are bit-identical to the last solve
//   ladder    -- anytime degradation (exact -> incumbent -> greedy -> ptp)
//   assemble  -- materialize the chosen columns (assemble.hpp)
//   validate  -- independent Def 2.4 / flow check
//
// Reuse is strictly output-preserving: a SessionState only ever short-cuts
// work whose result is provably bit-identical to redoing it (the cover
// signature captures every solver input), so a warm run returns exactly the
// bytes a cold run would -- the invariant the incremental oracle tests pin
// (docs/architecture.md).
#pragma once

#include <cstddef>
#include <vector>

#include "support/status.hpp"
#include "synth/options.hpp"
#include "synth/result.hpp"
#include "ucp/cover.hpp"

namespace cdcs::synth {

/// Persistent cover-solver state a session threads through run_pipeline.
/// The one-shot synthesize() wrappers pass nullptr (every stage runs cold).
struct SessionState {
  /// Signature of the last exactly-solved cover instance: the full UCP
  /// matrix plus every solver option that steers the search (see
  /// cover_signature in pipeline.cpp). Empty = nothing reusable held.
  std::vector<double> last_cover_signature;
  /// What solve_exact returned for that signature (stored pre-ladder, so
  /// fault injection and fallbacks never contaminate it).
  ucp::CoverSolution last_cover;

  /// Session counters (Engine::stats()).
  std::size_t cover_solves{0};
  std::size_t cover_reuses{0};
};

/// Stage 2 -> 3 bridge: the UCP matrix (row i = constraint arc i, one
/// column per candidate, weighted by candidate cost).
ucp::CoverProblem build_cover_problem(std::size_t num_rows,
                                      const CandidateSet& set);

/// The solver configuration stage 3 actually runs: `solver_options` with
/// the pipeline deadline inherited, fault injection applied, and -- when the
/// caller left warm_start empty and the singletons exist -- the
/// point-to-point singleton cover seeded as the incumbent.
ucp::BnbOptions effective_solver_options(const SynthesisOptions& options,
                                         const ucp::BnbOptions& solver_options,
                                         std::size_t num_rows,
                                         std::size_t num_candidates);

/// Outcome of stages 3-4 (cover + anytime ladder) over one candidate set:
/// the cover actually returned (after any fallback rung) and the
/// degradation report explaining which rung produced it. Split out of
/// finish_pipeline so the partitioned synthesizer can run cover + ladder
/// per cluster and assemble/validate ONCE on the stitched whole.
struct CoverOutcome {
  ucp::CoverSolution cover;
  DegradationReport degradation;
};

/// Stages 3-4: build the UCP matrix from `set`, solve it (or reuse the
/// session's bit-identical previous solve), and walk the anytime ladder.
/// `num_rows` is the arc count of the (sub)instance; `session` may be
/// nullptr. Behavior-identical to the cover/ladder half of the historical
/// finish_pipeline, which is now a composition of this and
/// assemble_and_validate.
support::Expected<CoverOutcome> cover_and_ladder(
    std::size_t num_rows, const CandidateSet& set,
    const SynthesisOptions& options, const ucp::BnbOptions& solver_options,
    SessionState* session);

/// Stage 5: materialize result.cover into result.implementation /
/// total_cost and run the independent Def 2.4 validation. Requires
/// result.candidate_set and result.cover to be filled; may throw (the
/// assembler rejects non-covering selections), which the synthesize()
/// catch-all converts to a Status.
void assemble_and_validate(const model::ConstraintGraph& cg,
                           const commlib::Library& library,
                           const SynthesisOptions& options,
                           SynthesisResult& result);

/// Stages 3-5 (cover, ladder, assemble, validate) on a result whose
/// candidate_set stage 2 already filled -- the entry point for callers that
/// interpose on the candidate list between generation and covering (the
/// engine's warm-start column mapping). `session` may be nullptr.
support::Expected<SynthesisResult> finish_pipeline(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const SynthesisOptions& options, const ucp::BnbOptions& solver_options,
    SessionState* session, SynthesisResult result);

/// Stages 2-5 end to end. `session` may be nullptr (one-shot run). Does not
/// gate inputs and may throw; synthesize()/Engine::apply wrap it in the
/// check_inputs gate and the catch-all.
support::Expected<SynthesisResult> run_pipeline(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const SynthesisOptions& options, const ucp::BnbOptions& solver_options,
    SessionState* session);

}  // namespace cdcs::synth
