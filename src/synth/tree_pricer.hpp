// Steiner-tree merging structures.
//
// The most general realization of a common-endpoint merging: a tree rooted
// at the common port whose leaves are the other endpoints, with demux (or
// mux, when target-rooted) nodes at every branching/drop vertex and each
// tree edge carrying exactly the demand of the subtree behind it. The star
// (one junction) and the daisy chain (a path of junctions) are special
// cases; on 2-D spreads the Steiner topology dominates both whenever
// per-channel demand prices spokes at trunk rates.
//
// Topology: the exact Dreyfus-Wagner optimum on the terminals' Hanan grid
// (geom/steiner.hpp) -- the true rectilinear Steiner minimal tree under the
// Manhattan norm, a strong topology heuristic under other norms. Degree-2
// pass-through junctions are contracted away (a bend in a route is free;
// segmentation inside an edge is the point-to-point optimizer's job), so
// every surviving junction is a genuine branch or drop point that pays for
// its library node.
//
// Note the Hanan topology is computed from terminal geometry alone; edge
// *costs* are then priced per-edge with the bandwidth actually flowing
// through (sum or max per CapacityPolicy), so a cost-optimal topology under
// strongly bandwidth-dependent pricing may differ. The candidate generator
// prices star, chain and tree and keeps the cheapest, so the tree only ever
// improves the candidate set.
#pragma once

#include "synth/merging_pricer.hpp"

namespace cdcs::synth {

struct TreePlan {
  std::vector<model::ArcId> arcs;  ///< merged arcs, sorted by index
  bool source_rooted{true};

  /// Tree vertices; vertex 0 is the root (the common port's position).
  std::vector<geom::Point2D> vertices;
  /// Per merged arc (parallel to `arcs`): the tree vertex of its own port.
  std::vector<std::size_t> spoke_vertex;
  /// True for tree vertices that are junctions (materialized as library
  /// nodes); false for the root and pure-leaf spokes (computational ports).
  std::vector<bool> is_junction;
  std::optional<commlib::NodeIndex> junction_node;  ///< demux / mux

  struct Edge {
    std::size_t parent{0};
    std::size_t child{0};
    double bandwidth{0.0};  ///< demand flowing over this edge
    PtpPlan plan;
  };
  /// Directed away from the root, in topological (BFS) order.
  std::vector<Edge> edges;

  /// Per merged arc: the zero-span drop link plan used when its port sits
  /// at an internal junction (traffic continues past the drop).
  std::vector<std::optional<PtpPlan>> drop;

  double cost{0.0};
};

/// Prices the Steiner-tree realization of `subset` (common source or common
/// target required; both-common and mixed subsets return nullopt, as do
/// subsets whose library lacks the junction node or a feasible edge plan).
/// An expired `deadline` (when non-null) makes the pricer return nullopt
/// before starting the Hanan-grid search.
std::optional<TreePlan> price_tree_merging(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    std::vector<model::ArcId> subset,
    model::CapacityPolicy policy = model::CapacityPolicy::kSharedSum,
    const support::Deadline* deadline = nullptr);

}  // namespace cdcs::synth
