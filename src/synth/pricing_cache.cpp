#include "synth/pricing_cache.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>

namespace cdcs::synth {
namespace {

inline void fnv_mix(std::size_t& h, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (v >> shift) & 0xff;
    h *= 0x100000001b3ULL;
  }
}

/// Canonical position of each of `arcs` within `subset`; the pricers only
/// permute, never substitute, so every arc must be found.
/// `inverse_canonical[p]` is the canonical position of caller position p.
std::vector<std::uint32_t> permutation_into(
    const std::vector<model::ArcId>& subset,
    const std::vector<std::uint32_t>& inverse_canonical,
    const std::vector<model::ArcId>& arcs) {
  std::vector<std::uint32_t> perm;
  perm.reserve(arcs.size());
  for (model::ArcId a : arcs) {
    std::uint32_t pos = static_cast<std::uint32_t>(subset.size());
    for (std::uint32_t i = 0; i < subset.size(); ++i) {
      if (subset[i] == a) {
        pos = i;
        break;
      }
    }
    if (pos == subset.size()) {
      throw std::logic_error(
          "pricing cache: plan references an arc outside its subset");
    }
    perm.push_back(inverse_canonical[pos]);
  }
  return perm;
}

void apply_permutation(std::vector<model::ArcId>& arcs,
                       const std::vector<std::uint32_t>& perm,
                       const std::vector<model::ArcId>& subset,
                       const std::vector<std::uint32_t>& canonical_order) {
  arcs.resize(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    arcs[i] = subset[canonical_order[perm[i]]];
  }
}

}  // namespace

PricingCache::Entry PricingCache::Entry::make(
    const std::vector<model::ArcId>& subset,
    const std::vector<std::uint32_t>& canonical_order,
    std::optional<MergingPlan> star, std::optional<ChainPlan> chain,
    std::optional<TreePlan> tree) {
  std::vector<std::uint32_t> inverse(canonical_order.size());
  for (std::uint32_t c = 0; c < canonical_order.size(); ++c) {
    inverse[canonical_order[c]] = c;
  }
  Entry e;
  e.star = std::move(star);
  e.chain = std::move(chain);
  e.tree = std::move(tree);
  if (e.star) e.star_perm_ = permutation_into(subset, inverse, e.star->arcs);
  if (e.chain) {
    e.chain_perm_ = permutation_into(subset, inverse, e.chain->arcs);
  }
  if (e.tree) e.tree_perm_ = permutation_into(subset, inverse, e.tree->arcs);
  return e;
}

void PricingCache::Entry::retarget(
    const std::vector<model::ArcId>& subset,
    const std::vector<std::uint32_t>& canonical_order) {
  if (star) apply_permutation(star->arcs, star_perm_, subset, canonical_order);
  if (chain) {
    apply_permutation(chain->arcs, chain_perm_, subset, canonical_order);
  }
  if (tree) apply_permutation(tree->arcs, tree_perm_, subset, canonical_order);
}

std::size_t PricingCache::KeyHash::operator()(const Key& k) const {
  std::size_t h = 0xcbf29ce484222325ULL;
  fnv_mix(h, k.library_fingerprint);
  fnv_mix(h, static_cast<std::uint64_t>(k.norm));
  fnv_mix(h, static_cast<std::uint64_t>(k.policy));
  fnv_mix(h, (std::uint64_t{k.chain_enabled} << 1) |
                 std::uint64_t{k.tree_enabled});
  fnv_mix(h, static_cast<std::uint64_t>(k.arc_geometry.size()));
  for (double v : k.arc_geometry) {
    fnv_mix(h, std::bit_cast<std::uint64_t>(v == 0.0 ? 0.0 : v));
  }
  return h;
}

std::optional<PricingCache::Entry> PricingCache::lookup(const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    misses_.add(1);
    return std::nullopt;
  }
  hits_.add(1);
  return it->second;
}

void PricingCache::insert(const Key& key, Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  map_[key] = std::move(entry);
}

PricingCache::Stats PricingCache::stats() const {
  Stats s;
  s.hits = hits_.value();
  s.misses = misses_.value();
  s.evictions = evictions_.value();
  std::lock_guard<std::mutex> lock(mu_);
  s.entries = map_.size();
  return s;
}

void PricingCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  evictions_.add(map_.size());
  map_.clear();
  hits_.reset();
  misses_.reset();
}

PricingCache::Key make_pricing_key(const model::ConstraintGraph& cg,
                                   const commlib::Library& library,
                                   const std::vector<model::ArcId>& subset,
                                   model::CapacityPolicy policy,
                                   bool chain_enabled, bool tree_enabled) {
  PricingCache::Key key;
  key.library_fingerprint = library.fingerprint();
  key.norm = cg.norm();
  key.policy = policy;
  key.chain_enabled = chain_enabled;
  key.tree_enabled = tree_enabled;
  key.arc_geometry.reserve(subset.size() * 5);
  for (std::uint32_t pos : canonical_subset_order(cg, subset)) {
    for (double v : arc_geometry_record(cg, subset[pos])) {
      key.arc_geometry.push_back(v);
    }
  }
  return key;
}

}  // namespace cdcs::synth
