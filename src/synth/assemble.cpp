#include "synth/assemble.hpp"

#include <stdexcept>

namespace cdcs::synth {
namespace {

using model::ArcId;
using model::ImplementationGraph;
using model::Path;
using model::VertexId;

/// Realizes a PtpPlan between two existing vertices: `parallel` chains of
/// `segments` links each, repeaters along the way, mux/demux accounting
/// vertices for bundles. Returns one arc sequence per chain.
std::vector<std::vector<ArcId>> realize_chains(ImplementationGraph& impl,
                                               VertexId from, VertexId to,
                                               const PtpPlan& plan) {
  const geom::Point2D p_from = impl.position(from);
  const geom::Point2D p_to = impl.position(to);

  if (plan.parallel > 1) {
    // Cost accounting for the bundle's mux/demux pair (see header).
    impl.add_comm_vertex(*plan.mux, p_from);
    impl.add_comm_vertex(*plan.demux, p_to);
  }

  std::vector<std::vector<ArcId>> chains;
  chains.reserve(plan.parallel);
  for (int m = 0; m < plan.parallel; ++m) {
    std::vector<ArcId> chain;
    VertexId cur = from;
    for (int s = 1; s <= plan.segments; ++s) {
      VertexId next;
      if (s == plan.segments) {
        next = to;
      } else {
        next = impl.add_comm_vertex(
            *plan.repeater,
            geom::lerp(p_from, p_to,
                       static_cast<double>(s) / plan.segments));
      }
      chain.push_back(impl.add_link_arc(cur, next, plan.link));
      cur = next;
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

void realize_ptp(ImplementationGraph& impl, ArcId arc, const PtpPlan& plan) {
  const auto& cg = impl.constraints();
  const std::vector<std::vector<ArcId>> chains = realize_chains(
      impl, impl.chi(cg.source(arc)), impl.chi(cg.target(arc)), plan);
  for (const std::vector<ArcId>& chain : chains) {
    impl.register_path(arc, Path{chain});
  }
}

void realize_merging(ImplementationGraph& impl, const MergingPlan& plan) {
  const auto& cg = impl.constraints();

  const VertexId hub = plan.has_hub
                           ? impl.add_comm_vertex(*plan.hub_node, plan.hub_pos)
                           : impl.chi(cg.source(plan.arcs.front()));
  const VertexId split =
      plan.has_split ? impl.add_comm_vertex(*plan.split_node, plan.split_pos)
                     : impl.chi(cg.target(plan.arcs.front()));

  if (!plan.trunk) {
    throw std::logic_error("realize_merging: merging plan without trunk");
  }
  const std::vector<std::vector<ArcId>> trunk_chains =
      realize_chains(impl, hub, split, *plan.trunk);

  for (std::size_t i = 0; i < plan.arcs.size(); ++i) {
    const ArcId arc = plan.arcs[i];
    std::vector<std::vector<ArcId>> ingress_chains{{}};
    if (plan.ingress[i]) {
      ingress_chains = realize_chains(impl, impl.chi(cg.source(arc)), hub,
                                      *plan.ingress[i]);
    }
    std::vector<std::vector<ArcId>> egress_chains{{}};
    if (plan.egress[i]) {
      egress_chains = realize_chains(impl, split, impl.chi(cg.target(arc)),
                                     *plan.egress[i]);
    }
    // One path per (ingress chain, trunk chain, egress chain) combination;
    // flows split across them as capacity allows.
    for (const auto& in : ingress_chains) {
      for (const auto& tr : trunk_chains) {
        for (const auto& eg : egress_chains) {
          Path path;
          path.arcs.reserve(in.size() + tr.size() + eg.size());
          path.arcs.insert(path.arcs.end(), in.begin(), in.end());
          path.arcs.insert(path.arcs.end(), tr.begin(), tr.end());
          path.arcs.insert(path.arcs.end(), eg.begin(), eg.end());
          impl.register_path(arc, std::move(path));
        }
      }
    }
  }
}

void realize_chain(ImplementationGraph& impl, const ChainPlan& plan) {
  const auto& cg = impl.constraints();
  const std::size_t k = plan.arcs.size();

  // Chain vertex sequence: root, drop_1..drop_{k-1}, terminus. Root and
  // terminus are computational vertices; drops are library nodes.
  std::vector<VertexId> nodes;
  nodes.reserve(k + 1);
  const ArcId first = plan.arcs.front();
  const ArcId last = plan.arcs.back();
  nodes.push_back(plan.source_rooted ? impl.chi(cg.source(first))
                                     : impl.chi(cg.target(first)));
  for (const geom::Point2D& p : plan.drop_pos) {
    nodes.push_back(impl.add_comm_vertex(*plan.drop_node, p));
  }
  nodes.push_back(plan.source_rooted ? impl.chi(cg.target(last))
                                     : impl.chi(cg.source(last)));

  // Trunk segments run root -> terminus when source-rooted and terminus ->
  // root when target-rooted (flows travel toward the common target).
  std::vector<std::vector<std::vector<ArcId>>> seg_chains(k);
  for (std::size_t j = 0; j < k; ++j) {
    const VertexId from = plan.source_rooted ? nodes[j] : nodes[j + 1];
    const VertexId to = plan.source_rooted ? nodes[j + 1] : nodes[j];
    seg_chains[j] = realize_chains(impl, from, to, plan.segments[j]);
  }

  for (std::size_t i = 0; i < k; ++i) {
    const ArcId arc = plan.arcs[i];
    // Trunk portion: segments 0..i (arc i leaves/enters at drop i+1; the
    // last arc travels the whole trunk).
    const std::size_t used = std::min(i + 1, k);
    // Leg: drop node <-> the arc's own port (absent for the last arc).
    std::vector<std::vector<ArcId>> leg_chains{{}};
    if (i + 1 < k) {
      const VertexId drop = nodes[i + 1];
      if (plan.source_rooted) {
        leg_chains =
            realize_chains(impl, drop, impl.chi(cg.target(arc)), plan.legs[i]);
      } else {
        leg_chains =
            realize_chains(impl, impl.chi(cg.source(arc)), drop, plan.legs[i]);
      }
    }
    // One path per combination of per-segment parallel chains would explode
    // for duplicated trunks; paths are registered per parallel rank instead
    // (rank r uses the r-th chain of every segment, wrapping around), which
    // covers every link with at least one path and keeps path counts linear.
    std::size_t max_par = 1;
    for (std::size_t j = 0; j < used; ++j) {
      max_par = std::max(max_par, seg_chains[j].size());
    }
    max_par = std::max(max_par, leg_chains.size());
    for (std::size_t r = 0; r < max_par; ++r) {
      Path path;
      if (plan.source_rooted) {
        for (std::size_t j = 0; j < used; ++j) {
          const auto& chain = seg_chains[j][r % seg_chains[j].size()];
          path.arcs.insert(path.arcs.end(), chain.begin(), chain.end());
        }
        const auto& leg = leg_chains[r % leg_chains.size()];
        path.arcs.insert(path.arcs.end(), leg.begin(), leg.end());
      } else {
        const auto& leg = leg_chains[r % leg_chains.size()];
        path.arcs.insert(path.arcs.end(), leg.begin(), leg.end());
        // Toward the root: traverse used segments in reverse order.
        for (std::size_t j = used; j-- > 0;) {
          const auto& chain = seg_chains[j][r % seg_chains[j].size()];
          path.arcs.insert(path.arcs.end(), chain.begin(), chain.end());
        }
      }
      impl.register_path(arc, std::move(path));
    }
  }
}

void realize_tree(ImplementationGraph& impl, const TreePlan& plan) {
  const auto& cg = impl.constraints();

  // Map tree vertices to implementation vertices: the root is the common
  // computational port; junctions become library-node vertices; pure-leaf
  // spokes resolve to their own ports (per arc, below).
  const ArcId first = plan.arcs.front();
  const VertexId root_v = plan.source_rooted ? impl.chi(cg.source(first))
                                             : impl.chi(cg.target(first));
  std::vector<VertexId> vertex_of(plan.vertices.size(), VertexId{});
  // Root index in the plan is edges' ultimate ancestor; find it as the
  // parent that never appears as a child.
  std::vector<bool> is_child(plan.vertices.size(), false);
  for (const auto& e : plan.edges) is_child[e.child] = true;
  std::size_t root_idx = SIZE_MAX;
  for (const auto& e : plan.edges) {
    if (!is_child[e.parent]) root_idx = e.parent;
  }
  if (root_idx == SIZE_MAX) {
    throw std::logic_error("realize_tree: no root in edge set");
  }
  vertex_of[root_idx] = root_v;
  for (std::size_t v = 0; v < plan.vertices.size(); ++v) {
    if (plan.is_junction[v]) {
      vertex_of[v] = impl.add_comm_vertex(*plan.junction_node,
                                          plan.vertices[v]);
    }
  }
  // Pure-leaf spokes: the arc's own port.
  for (std::size_t i = 0; i < plan.arcs.size(); ++i) {
    const std::size_t tv = plan.spoke_vertex[i];
    if (!plan.is_junction[tv] && tv != root_idx) {
      vertex_of[tv] = plan.source_rooted
                          ? impl.chi(cg.target(plan.arcs[i]))
                          : impl.chi(cg.source(plan.arcs[i]));
    }
  }

  // Realize the edges (direction follows traffic: away from the root when
  // source-rooted, toward it otherwise).
  std::vector<std::vector<std::vector<ArcId>>> edge_chains(plan.edges.size());
  std::vector<std::size_t> parent_edge(plan.vertices.size(), SIZE_MAX);
  for (std::size_t e = 0; e < plan.edges.size(); ++e) {
    const auto& edge = plan.edges[e];
    parent_edge[edge.child] = e;
    const VertexId from = plan.source_rooted ? vertex_of[edge.parent]
                                             : vertex_of[edge.child];
    const VertexId to = plan.source_rooted ? vertex_of[edge.child]
                                           : vertex_of[edge.parent];
    edge_chains[e] = realize_chains(impl, from, to, edge.plan);
  }

  for (std::size_t i = 0; i < plan.arcs.size(); ++i) {
    const ArcId arc = plan.arcs[i];
    // Edges on the root -> spoke path, root-side first.
    std::vector<std::size_t> route;
    for (std::size_t v = plan.spoke_vertex[i]; parent_edge[v] != SIZE_MAX;
         v = plan.edges[parent_edge[v]].parent) {
      route.push_back(parent_edge[v]);
    }
    std::reverse(route.begin(), route.end());

    // Drop link for spokes sitting at junctions.
    std::vector<std::vector<ArcId>> drop_chains{{}};
    if (plan.drop[i]) {
      const VertexId junction = vertex_of[plan.spoke_vertex[i]];
      if (plan.source_rooted) {
        drop_chains = realize_chains(impl, junction,
                                     impl.chi(cg.target(arc)), *plan.drop[i]);
      } else {
        drop_chains = realize_chains(impl, impl.chi(cg.source(arc)),
                                     junction, *plan.drop[i]);
      }
    }

    std::size_t max_par = drop_chains.size();
    for (std::size_t e : route) {
      max_par = std::max(max_par, edge_chains[e].size());
    }
    for (std::size_t r = 0; r < max_par; ++r) {
      Path path;
      if (plan.source_rooted) {
        for (std::size_t e : route) {
          const auto& chain = edge_chains[e][r % edge_chains[e].size()];
          path.arcs.insert(path.arcs.end(), chain.begin(), chain.end());
        }
        const auto& drop = drop_chains[r % drop_chains.size()];
        path.arcs.insert(path.arcs.end(), drop.begin(), drop.end());
      } else {
        const auto& drop = drop_chains[r % drop_chains.size()];
        path.arcs.insert(path.arcs.end(), drop.begin(), drop.end());
        for (std::size_t idx = route.size(); idx-- > 0;) {
          const auto& chain =
              edge_chains[route[idx]][r % edge_chains[route[idx]].size()];
          path.arcs.insert(path.arcs.end(), chain.begin(), chain.end());
        }
      }
      impl.register_path(arc, std::move(path));
    }
  }
}

}  // namespace

std::unique_ptr<model::ImplementationGraph> assemble(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const std::vector<Candidate>& candidates,
    const std::vector<std::size_t>& chosen) {
  std::vector<bool> covered(cg.num_channels(), false);
  for (std::size_t idx : chosen) {
    for (ArcId a : candidates.at(idx).arcs) covered[a.index()] = true;
  }
  for (std::size_t i = 0; i < covered.size(); ++i) {
    if (!covered[i]) {
      throw std::invalid_argument(
          "assemble: chosen candidates do not cover constraint arc #" +
          std::to_string(i + 1));
    }
  }

  auto impl = std::make_unique<ImplementationGraph>(cg, library);
  for (std::size_t idx : chosen) {
    const Candidate& c = candidates.at(idx);
    if (c.ptp) {
      realize_ptp(*impl, c.arcs.front(), *c.ptp);
    } else if (c.merging) {
      realize_merging(*impl, *c.merging);
    } else if (c.chain) {
      realize_chain(*impl, *c.chain);
    } else if (c.tree) {
      realize_tree(*impl, *c.tree);
    } else {
      throw std::logic_error("assemble: candidate carries no plan");
    }
  }
  return impl;
}

}  // namespace cdcs::synth
