#include "synth/plan_delay.hpp"

#include <algorithm>

namespace cdcs::synth {

double ptp_plan_delay(const PtpPlan& plan, const sim::DelayModel& model) {
  return model.link_delay_per_length * plan.span +
         model.node_delay * (plan.segments - 1);
}

double worst_arc_delay(const MergingPlan& plan,
                       const sim::DelayModel& model) {
  const double trunk = plan.trunk ? ptp_plan_delay(*plan.trunk, model) : 0.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < plan.arcs.size(); ++i) {
    double d = trunk;
    if (plan.has_hub) {
      d += model.node_delay;  // the hub vertex itself
      if (plan.ingress[i]) d += ptp_plan_delay(*plan.ingress[i], model);
    }
    if (plan.has_split) {
      d += model.node_delay;  // the split vertex
      if (plan.egress[i]) d += ptp_plan_delay(*plan.egress[i], model);
    }
    worst = std::max(worst, d);
  }
  return worst;
}

double worst_arc_delay(const ChainPlan& plan, const sim::DelayModel& model) {
  const std::size_t k = plan.arcs.size();
  double worst = 0.0;
  double upstream = 0.0;  // segments + drop nodes accumulated so far
  for (std::size_t i = 0; i < k; ++i) {
    upstream += ptp_plan_delay(plan.segments[i], model);
    double d = upstream;
    if (i + 1 < k) {
      d += model.node_delay;  // this channel's own drop vertex
      d += ptp_plan_delay(plan.legs[i], model);
    }
    worst = std::max(worst, d);
    // Channels further along the chain pass through this drop vertex.
    if (i + 1 < k) upstream += model.node_delay;
  }
  return worst;
}

double worst_arc_delay(const TreePlan& plan, const sim::DelayModel& model) {
  // Delay from the root to every tree vertex, edges in BFS order.
  std::vector<double> to_vertex(plan.vertices.size(), 0.0);
  for (const TreePlan::Edge& e : plan.edges) {
    to_vertex[e.child] = to_vertex[e.parent] +
                         ptp_plan_delay(e.plan, model) +
                         (plan.is_junction[e.child] ? model.node_delay : 0.0);
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < plan.arcs.size(); ++i) {
    double d = to_vertex[plan.spoke_vertex[i]];
    if (plan.drop[i]) d += ptp_plan_delay(*plan.drop[i], model);
    worst = std::max(worst, d);
  }
  return worst;
}

}  // namespace cdcs::synth
