// Candidate arc implementations -- the data model shared by candidate
// generation (synth/candidate_generator.hpp), covering, assembly, and every
// result consumer. Split from the generator so result-only includers do not
// pull the enumeration/pruning machinery or the cover solver.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "synth/chain_pricer.hpp"
#include "synth/merging_pricer.hpp"
#include "synth/ptp.hpp"
#include "synth/tree_pricer.hpp"

namespace cdcs::synth {

/// One column of the covering problem: a single arc's point-to-point
/// implementation, a star merging, a daisy-chain merging, or a Steiner-tree
/// merging. Exactly one of the four plans is set.
struct Candidate {
  std::vector<model::ArcId> arcs;  ///< rows covered, sorted by index
  double cost{0.0};
  std::optional<PtpPlan> ptp;          ///< set iff arcs.size() == 1
  std::optional<MergingPlan> merging;  ///< star structure (k >= 2)
  std::optional<ChainPlan> chain;      ///< daisy-chain structure (k >= 2)
  std::optional<TreePlan> tree;        ///< Steiner-tree structure (k >= 2)
};

struct GenerationStats {
  /// survivors_per_k[k] = subsets of size k passing all pruning tests
  /// (the paper's "thirteen 2-way, twenty-one 3-way, ..." counts).
  std::vector<std::size_t> survivors_per_k;
  std::vector<std::size_t> pruned_geometry_per_k;   ///< Lemma 3.1 / 3.2
  /// Subsets skipped by the midpoint-grid pre-filter WITHOUT evaluating the
  /// lemma tests. A subset counted here is also counted in
  /// pruned_geometry_per_k (the filter only skips subsets the lemmas are
  /// guaranteed to prune), so survivors + pruned_geometry stays invariant.
  std::vector<std::size_t> grid_prefilter_skips_per_k;
  std::vector<std::size_t> pruned_bandwidth_per_k;  ///< Theorem 3.2
  std::vector<std::size_t> unpriceable_per_k;  ///< survived tests, no library plan
  std::vector<std::size_t> dropped_unprofitable_per_k;
  /// Per arc index: the k whose round eliminated the arc (Theorem 3.1);
  /// 0 when the arc stayed active to the end.
  std::vector<int> arc_eliminated_after_k;
  std::size_t subsets_examined{0};
  bool enumeration_truncated{false};  ///< hit max_subsets_per_k
  bool deadline_expired{false};  ///< merging enumeration cut short by deadline
  /// Resolved pricing parallelism (SynthesisOptions::threads after the
  /// 0 = hardware-threads expansion).
  std::size_t threads_used{1};
  /// Pricing-cache traffic attributable to THIS run (the cache object
  /// accumulates across runs; these two do not).
  std::size_t pricing_cache_hits{0};
  std::size_t pricing_cache_misses{0};
};

struct CandidateSet {
  std::vector<Candidate> candidates;  ///< singletons first, then mergings by k
  GenerationStats stats;
};

}  // namespace cdcs::synth
