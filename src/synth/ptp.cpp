#include "synth/ptp.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "sim/delay.hpp"

namespace cdcs::synth {
namespace {

/// ceil(a / b) for positive doubles with protection against the classic
/// "exact multiple plus epsilon" off-by-one: values within 1e-9 relative of
/// an integer are treated as that integer.
int robust_ceil_div(double a, double b) {
  const double q = a / b;
  const double r = std::round(q);
  if (std::abs(q - r) < 1e-9 * std::max(1.0, std::abs(q))) {
    return static_cast<int>(r);
  }
  return static_cast<int>(std::ceil(q));
}

}  // namespace

std::optional<PtpPlan> best_point_to_point(double span, double bandwidth,
                                           const commlib::Library& library,
                                           const DelayConstraint* delay) {
  std::optional<PtpPlan> best;
  const auto repeater = library.cheapest_node(commlib::NodeKind::kRepeater);
  const auto mux = library.cheapest_node(commlib::NodeKind::kMux);
  const auto demux = library.cheapest_node(commlib::NodeKind::kDemux);

  for (commlib::LinkIndex li = 0; li < library.links().size(); ++li) {
    const commlib::Link& l = library.link(li);
    if (l.bandwidth <= 0.0) continue;

    // K: segments needed to span the distance with this link type.
    int k = 1;
    if (!l.spans(span)) {
      if (!std::isfinite(l.max_span) || l.max_span <= 0.0) continue;
      k = robust_ceil_div(span, l.max_span);
    }
    // M: parallel branches needed to cover the bandwidth.
    const int m = std::max(1, robust_ceil_div(bandwidth, l.bandwidth));

    if (k > 1 && !repeater) continue;  // no way to chain links
    if (m > 1 && (!mux || !demux)) continue;  // no way to bundle links
    if (delay != nullptr &&
        delay->model->link_delay_per_length * span +
                delay->model->node_delay * (k - 1) >
            delay->budget + 1e-12) {
      continue;  // busts the latency budget
    }

    // Per-branch link cost: the K pieces sum to `span` length, so the
    // per-length component is charged once per branch and the fixed
    // component once per piece.
    const double branch_links = l.cost_per_length * span + l.fixed_cost * k;
    double cost = m * branch_links;
    if (k > 1) cost += m * (k - 1) * library.node(*repeater).cost;
    if (m > 1) cost += library.node(*mux).cost + library.node(*demux).cost;

    // Ties (e.g. two bundled radios vs one optical at the same $/km) break
    // toward the structurally simplest plan: fewest parallel branches, then
    // fewest segments.
    const bool better =
        !best || cost < best->cost - 1e-9 ||
        (cost <= best->cost + 1e-9 &&
         (m < best->parallel ||
          (m == best->parallel && k < best->segments)));
    if (better) {
      best = PtpPlan{.link = li,
                     .segments = k,
                     .parallel = m,
                     .repeater = k > 1 ? repeater : std::nullopt,
                     .mux = m > 1 ? mux : std::nullopt,
                     .demux = m > 1 ? demux : std::nullopt,
                     .span = span,
                     .bandwidth = bandwidth,
                     .cost = cost};
    }
  }
  return best;
}

double best_point_to_point_cost(double span, double bandwidth,
                                const commlib::Library& library) {
  const std::optional<PtpPlan> plan =
      best_point_to_point(span, bandwidth, library);
  return plan ? plan->cost : std::numeric_limits<double>::infinity();
}

std::vector<std::string> check_assumption_2_1(
    const commlib::Library& library, const std::vector<double>& spans,
    const std::vector<double>& bandwidths) {
  std::vector<std::string> problems;
  struct Sample {
    double d, b, cost;
  };
  std::vector<Sample> samples;
  for (double d : spans) {
    for (double b : bandwidths) {
      const double c = best_point_to_point_cost(d, b, library);
      if (c <= 0.0) {
        problems.push_back("C(P(a)) is not positive at d=" + std::to_string(d) +
                           " b=" + std::to_string(b));
      }
      samples.push_back({d, b, c});
    }
  }
  for (const Sample& s : samples) {
    for (const Sample& t : samples) {
      if (s.d <= t.d && s.b <= t.b && s.cost > t.cost + 1e-9) {
        problems.push_back(
            "cost monotonicity violated: (d=" + std::to_string(s.d) +
            ", b=" + std::to_string(s.b) + ") costs " + std::to_string(s.cost) +
            " > (d=" + std::to_string(t.d) + ", b=" + std::to_string(t.b) +
            ") costing " + std::to_string(t.cost));
      }
    }
  }
  return problems;
}

}  // namespace cdcs::synth
