// Optimum point-to-point arc implementation (Sec. 2, steps (1)-(4), and
// Def 2.6 / Lemma 2.1).
//
// Given a span d and a required bandwidth b, the cheapest stand-alone
// implementation from the library is one of:
//   (1) arc matching       -- one link with d(l) >= d and b(l) >= b;
//   (2) K-way segmentation -- K links of the same type chained through K-1
//                             repeaters when no single link spans d;
//   (3) K-way duplication  -- M parallel links plus a mux/demux pair when no
//                             single link sustains b;
//   (4) both combined      -- M parallel chains of K segments each.
// For a fixed link type, the minimum feasible K and M minimize every cost
// term independently (segment count, repeater count, parallel count), so the
// optimizer evaluates exactly one plan per link type and takes the cheapest.
#pragma once

#include <optional>

#include "commlib/library.hpp"

namespace cdcs::sim {
struct DelayModel;  // sim/delay.hpp
}

namespace cdcs::synth {

/// Optional latency constraint for point-to-point planning: only plans
/// whose end-to-end delay (span * link_delay_per_length + repeaters *
/// node_delay) stays within `budget` qualify. A pricier low-hop link can
/// thereby beat a cheaper segmented one that busts the budget.
struct DelayConstraint {
  const sim::DelayModel* model{nullptr};
  double budget{0.0};
};

/// A recipe for the cheapest point-to-point realization of one (span,
/// bandwidth) requirement with a single link type.
struct PtpPlan {
  commlib::LinkIndex link{0};
  int segments{1};  ///< K: links chained in series per parallel branch
  int parallel{1};  ///< M: parallel branches
  std::optional<commlib::NodeIndex> repeater;  ///< set iff segments > 1
  std::optional<commlib::NodeIndex> mux;       ///< set iff parallel > 1
  std::optional<commlib::NodeIndex> demux;     ///< set iff parallel > 1
  double span{0.0};       ///< total geometric distance covered
  double bandwidth{0.0};  ///< requirement this plan was sized for
  double cost{0.0};       ///< links + repeaters + mux/demux

  bool is_matching() const { return segments == 1 && parallel == 1; }
};

/// Cheapest plan implementing (span, bandwidth) with `library`, or nullopt
/// when the library cannot implement it at all (e.g. span exceeds every
/// link's reach and no repeater exists, or bandwidth exceeds every link and
/// no mux/demux exists). With a DelayConstraint, only delay-feasible plans
/// qualify (nullopt when none exists).
std::optional<PtpPlan> best_point_to_point(
    double span, double bandwidth, const commlib::Library& library,
    const DelayConstraint* delay = nullptr);

/// C(P(a)) of the optimum point-to-point implementation, +infinity when
/// infeasible. Convenience wrapper used by pricing loops.
double best_point_to_point_cost(double span, double bandwidth,
                                const commlib::Library& library);

/// Checks Assumption 2.1 over a grid of (distance, bandwidth) pairs drawn
/// from `spans` x `bandwidths`: whenever d <= d' and b <= b', the optimal
/// point-to-point cost must not decrease, and every cost must be positive.
/// Returns human-readable violations (empty = assumption holds on the grid).
std::vector<std::string> check_assumption_2_1(
    const commlib::Library& library, const std::vector<double>& spans,
    const std::vector<double>& bandwidths);

}  // namespace cdcs::synth
