#include "synth/tree_pricer.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "geom/steiner.hpp"
#include "synth/canonical_order.hpp"

namespace cdcs::synth {
namespace {

constexpr double kCoincideEps = 1e-9;

/// Oriented tree scaffolding built from the undirected Steiner result.
struct Oriented {
  std::vector<geom::Point2D> pos;
  std::vector<std::size_t> parent;             // SIZE_MAX for the root
  std::vector<std::vector<std::size_t>> kids;  // children per vertex
  std::vector<std::size_t> bfs;                // root first
};

/// BFS-orients the tree from `root`. Returns false on a disconnected or
/// cyclic edge set (never produced by the Steiner solver; defensive).
bool orient(const geom::PlanarSteinerTree& tree, std::size_t root,
            Oriented& out) {
  const std::size_t n = tree.vertices.size();
  std::vector<std::vector<std::size_t>> adj(n);
  for (const auto& e : tree.edges) {
    adj[e.a].push_back(e.b);
    adj[e.b].push_back(e.a);
  }
  out.pos = tree.vertices;
  out.parent.assign(n, SIZE_MAX);
  out.kids.assign(n, {});
  out.bfs.clear();
  std::vector<bool> seen(n, false);
  seen[root] = true;
  out.bfs.push_back(root);
  for (std::size_t i = 0; i < out.bfs.size(); ++i) {
    const std::size_t v = out.bfs[i];
    for (std::size_t w : adj[v]) {
      if (seen[w]) continue;
      seen[w] = true;
      out.parent[w] = v;
      out.kids[v].push_back(w);
      out.bfs.push_back(w);
    }
  }
  return out.bfs.size() == n;
}

/// Splices out non-terminal degree-2 vertices (one parent, one child):
/// bends are free, and per-edge pricing handles long spans internally.
void contract_passthrough(Oriented& t, const std::vector<bool>& is_terminal,
                          std::size_t root) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t v = 0; v < t.pos.size(); ++v) {
      if (v == root || is_terminal[v]) continue;
      if (t.parent[v] == SIZE_MAX || t.kids[v].size() != 1) continue;
      const std::size_t p = t.parent[v];
      const std::size_t c = t.kids[v].front();
      // Splice: p adopts c.
      auto& siblings = t.kids[p];
      *std::find(siblings.begin(), siblings.end(), v) = c;
      t.parent[c] = p;
      t.parent[v] = SIZE_MAX;
      t.kids[v].clear();
      changed = true;
    }
  }
  // Rebuild BFS order over the contracted tree.
  t.bfs.clear();
  t.bfs.push_back(root);
  for (std::size_t i = 0; i < t.bfs.size(); ++i) {
    for (std::size_t w : t.kids[t.bfs[i]]) t.bfs.push_back(w);
  }
}

}  // namespace

std::optional<TreePlan> price_tree_merging(const model::ConstraintGraph& cg,
                                           const commlib::Library& library,
                                           std::vector<model::ArcId> subset,
                                           model::CapacityPolicy policy,
                                           const support::Deadline* deadline) {
  if (deadline && deadline->expired()) return std::nullopt;
  if (subset.size() < 2 || subset.size() > 9) return std::nullopt;
  // Canonical geometry order, NOT ArcId order: the priced plan must be
  // a pure function of the subset's geometry (synth/canonical_order.hpp)
  // so renumbered or reordered arc ids price bit-identically.
  canonicalize_subset(cg, subset);
  const geom::Norm norm = cg.norm();

  const geom::Point2D first_src = cg.position(cg.source(subset.front()));
  const geom::Point2D first_dst = cg.position(cg.target(subset.front()));
  bool common_source = true;
  bool common_target = true;
  for (model::ArcId a : subset) {
    if (!geom::almost_equal(cg.position(cg.source(a)), first_src,
                            kCoincideEps)) {
      common_source = false;
    }
    if (!geom::almost_equal(cg.position(cg.target(a)), first_dst,
                            kCoincideEps)) {
      common_target = false;
    }
  }
  if (common_source == common_target) return std::nullopt;

  TreePlan plan;
  plan.arcs = subset;
  plan.source_rooted = common_source;
  const geom::Point2D root_pos = common_source ? first_src : first_dst;
  plan.junction_node = library.cheapest_node(
      common_source ? commlib::NodeKind::kDemux : commlib::NodeKind::kMux);
  if (!plan.junction_node) return std::nullopt;

  // Terminals: root first, then the spokes (arc order).
  std::vector<geom::Point2D> terminals{root_pos};
  std::vector<double> demand;
  for (model::ArcId a : subset) {
    terminals.push_back(common_source ? cg.position(cg.target(a))
                                      : cg.position(cg.source(a)));
    demand.push_back(cg.bandwidth(a));
  }

  const geom::PlanarSteinerTree steiner =
      geom::steiner_tree_on_hanan_grid(terminals, norm);
  const std::size_t root = steiner.terminal_vertex.front();

  Oriented tree;
  if (!orient(steiner, root, tree)) return std::nullopt;

  std::vector<bool> is_terminal(tree.pos.size(), false);
  for (std::size_t tv : steiner.terminal_vertex) is_terminal[tv] = true;
  contract_passthrough(tree, is_terminal, root);

  // Demand pulled through each vertex = combine over spokes in its subtree;
  // accumulate bottom-up over the BFS order.
  std::vector<double> pulled(tree.pos.size(), 0.0);
  plan.spoke_vertex.resize(subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    plan.spoke_vertex[i] = steiner.terminal_vertex[i + 1];
  }
  auto combine = [&](double a, double b) {
    return policy == model::CapacityPolicy::kSharedSum ? a + b
                                                       : std::max(a, b);
  };
  for (std::size_t i = 0; i < subset.size(); ++i) {
    pulled[plan.spoke_vertex[i]] =
        combine(pulled[plan.spoke_vertex[i]], demand[i]);
  }
  for (std::size_t i = tree.bfs.size(); i-- > 1;) {
    const std::size_t v = tree.bfs[i];
    pulled[tree.parent[v]] = combine(pulled[tree.parent[v]], pulled[v]);
  }

  // Price the edges.
  double cost = 0.0;
  for (std::size_t i = 1; i < tree.bfs.size(); ++i) {
    const std::size_t v = tree.bfs[i];
    const std::size_t p = tree.parent[v];
    const auto edge_plan = best_point_to_point(
        geom::distance(tree.pos[p], tree.pos[v], norm), pulled[v], library);
    if (!edge_plan) return std::nullopt;
    cost += edge_plan->cost;
    plan.edges.push_back(TreePlan::Edge{p, v, pulled[v], *edge_plan});
  }

  // Junction nodes: every non-root vertex with children, plus any vertex
  // serving several coincident spokes (distinct ports at one position must
  // each receive their own drop link from a shared junction).
  plan.vertices = tree.pos;
  plan.is_junction.assign(tree.pos.size(), false);
  std::vector<int> spokes_at(tree.pos.size(), 0);
  for (std::size_t sv : plan.spoke_vertex) ++spokes_at[sv];
  for (std::size_t i = 1; i < tree.bfs.size(); ++i) {
    const std::size_t v = tree.bfs[i];
    if (!tree.kids[v].empty() || spokes_at[v] > 1) {
      plan.is_junction[v] = true;
      cost += library.node(*plan.junction_node).cost;
    }
  }
  plan.drop.resize(subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    if (plan.is_junction[plan.spoke_vertex[i]]) {
      const auto drop_plan = best_point_to_point(0.0, demand[i], library);
      if (!drop_plan) return std::nullopt;
      cost += drop_plan->cost;
      plan.drop[i] = drop_plan;
    }
  }
  plan.cost = cost;
  return plan;
}

}  // namespace cdcs::synth
