#include "synth/candidate_generator.hpp"

#include <functional>

namespace cdcs::synth {

support::Expected<CandidateSet> generate_candidates(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const SynthesisOptions& options) {
  CandidateSet out;
  const std::vector<model::ArcId> arcs = cg.arcs();
  const std::size_t n = arcs.size();
  const int max_k = options.max_merge_k > 0
                        ? std::min<int>(options.max_merge_k, static_cast<int>(n))
                        : static_cast<int>(n);

  auto& stats = out.stats;
  stats.survivors_per_k.assign(max_k + 1, 0);
  stats.pruned_geometry_per_k.assign(max_k + 1, 0);
  stats.pruned_bandwidth_per_k.assign(max_k + 1, 0);
  stats.unpriceable_per_k.assign(max_k + 1, 0);
  stats.dropped_unprofitable_per_k.assign(max_k + 1, 0);
  stats.arc_eliminated_after_k.assign(n, 0);

  // --- Optimum point-to-point implementations (Def 2.6 / Lemma 2.1). ---
  const DelayConstraint delay_constraint =
      options.delay_budget
          ? DelayConstraint{&options.delay_budget->model,
                            options.delay_budget->budget}
          : DelayConstraint{};
  const DelayConstraint* delay =
      options.delay_budget ? &delay_constraint : nullptr;

  std::vector<double> ptp_cost(n, 0.0);
  for (model::ArcId a : arcs) {
    std::optional<PtpPlan> plan =
        best_point_to_point(cg.distance(a), cg.bandwidth(a), library, delay);
    if (!plan) {
      return support::Status::Infeasible(
          "constraint arc '" + cg.channel(a).name +
          "' has no feasible point-to-point implementation in library '" +
          library.name() +
          (options.delay_budget ? "' within the delay budget" : "'"));
    }
    ptp_cost[a.index()] = plan->cost;
    out.candidates.push_back(
        Candidate{.arcs = {a}, .cost = plan->cost, .ptp = plan});
  }
  const ArcPairMatrix gamma = gamma_matrix(cg);
  const ArcPairMatrix delta = delta_matrix(cg);
  const std::vector<double> bw = bandwidth_vector(cg);
  const double max_link_bw = library.max_link_bandwidth();

  // --- k-way mergings for increasing k (main loop of Fig. 2). ---
  std::vector<bool> active(n, true);
  for (int k = 2; k <= max_k; ++k) {
    std::vector<model::ArcId> pool;
    for (model::ArcId a : arcs) {
      if (active[a.index()]) pool.push_back(a);
    }
    if (pool.size() < static_cast<std::size_t>(k)) break;

    std::vector<bool> participates(n, false);
    std::size_t survivors_this_k = 0;
    std::size_t enumerated_this_k = 0;
    std::vector<model::ArcId> subset(k);
    std::vector<double> subset_bw(k);

    const std::function<void(std::size_t, int)> recurse =
        [&](std::size_t start, int depth) {
          if (stats.enumeration_truncated || stats.deadline_expired) return;
          if (depth == k) {
            ++stats.subsets_examined;
            if (++enumerated_this_k > options.max_subsets_per_k) {
              stats.enumeration_truncated = true;
              return;
            }
            if (options.deadline.expired()) {
              stats.deadline_expired = true;
              return;
            }
            for (int i = 0; i < k; ++i) subset_bw[i] = bw[subset[i].index()];
            if (options.use_theorem32 &&
                theorem32_prunes(subset_bw, max_link_bw)) {
              ++stats.pruned_bandwidth_per_k[k];
              return;
            }
            const bool geometric_pruned =
                (k == 2 && options.use_lemma31 &&
                 lemma31_prunes(gamma, delta, subset[0], subset[1])) ||
                (k >= 3 && options.use_lemma32 &&
                 lemma32_prunes(cg, gamma, delta, subset, options.pivot_rule));
            if (geometric_pruned) {
              ++stats.pruned_geometry_per_k[k];
              return;
            }
            ++survivors_this_k;
            for (model::ArcId a : subset) participates[a.index()] = true;

            if (options.fault_injection.fail_merging_pricers) {
              ++stats.unpriceable_per_k[k];
              return;
            }
            std::optional<MergingPlan> star = price_merging(
                cg, library, subset, options.policy, &options.deadline);
            std::optional<ChainPlan> chain =
                options.enable_chain_topology
                    ? price_chain_merging(cg, library, subset, options.policy,
                                          {}, &options.deadline)
                    : std::nullopt;
            std::optional<TreePlan> tree =
                options.enable_tree_topology
                    ? price_tree_merging(cg, library, subset, options.policy,
                                         &options.deadline)
                    : std::nullopt;
            // Delay-constrained synthesis: a merged structure whose slowest
            // channel busts the budget is not a candidate.
            if (options.delay_budget) {
              const auto& db = *options.delay_budget;
              if (star && worst_arc_delay(*star, db.model) > db.budget) {
                star.reset();
              }
              if (chain && worst_arc_delay(*chain, db.model) > db.budget) {
                chain.reset();
              }
              if (tree && worst_arc_delay(*tree, db.model) > db.budget) {
                tree.reset();
              }
            }
            if (!star && !chain && !tree) {
              ++stats.unpriceable_per_k[k];
              return;
            }
            // Keep the cheapest structure for this subset.
            constexpr double kInf = std::numeric_limits<double>::infinity();
            const double star_cost = star ? star->cost : kInf;
            const double chain_cost = chain ? chain->cost : kInf;
            const double tree_cost = tree ? tree->cost : kInf;
            const double cost =
                std::min({star_cost, chain_cost, tree_cost});
            if (options.drop_unprofitable) {
              double members = 0.0;
              for (model::ArcId a : subset) members += ptp_cost[a.index()];
              if (cost >= members - 1e-9) {
                ++stats.dropped_unprofitable_per_k[k];
                return;
              }
            }
            // Ties break toward the structurally simplest realization.
            Candidate candidate{.arcs = subset, .cost = cost};
            if (star && star_cost == cost) {
              candidate.merging = std::move(star);
            } else if (chain && chain_cost == cost) {
              candidate.chain = std::move(chain);
            } else {
              candidate.tree = std::move(tree);
            }
            out.candidates.push_back(std::move(candidate));
            return;
          }
          for (std::size_t i = start; i < pool.size(); ++i) {
            subset[depth] = pool[i];
            recurse(i + 1, depth + 1);
          }
        };
    recurse(0, 0);
    stats.survivors_per_k[k] = survivors_this_k;
    if (stats.deadline_expired) break;

    // Theorem 3.1: an arc in no surviving k-subset can join no larger
    // merging either; drop its Gamma-matrix column for all following k.
    if (options.use_theorem31) {
      for (model::ArcId a : pool) {
        if (!participates[a.index()]) {
          active[a.index()] = false;
          stats.arc_eliminated_after_k[a.index()] = k;
        }
      }
    }
    if (survivors_this_k == 0) break;  // Gamma's column set is empty
  }
  return out;
}

}  // namespace cdcs::synth
