#include "synth/candidate_generator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <numeric>

#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "synth/mergeability.hpp"
#include "synth/plan_delay.hpp"
#include "synth/pricing_cache.hpp"

namespace cdcs::synth {
namespace {

/// Raw pricing outcome for one subset (before delay filtering and
/// profitability accounting, which stay serial in the merge step).
struct PricedStructures {
  std::optional<MergingPlan> star;
  std::optional<ChainPlan> chain;
  std::optional<TreePlan> tree;
};

/// Advances `idx` (ascending positions into a pool of size n) to the next
/// k-combination in lexicographic order; false when exhausted. This is the
/// same visit order as the recursive enumerator it replaced, which is what
/// keeps Theorem 3.1 bookkeeping, truncation points, and candidate order
/// stable across the refactor.
bool next_combination(std::vector<std::size_t>& idx, std::size_t n) {
  const std::size_t k = idx.size();
  for (std::size_t i = k; i-- > 0;) {
    if (idx[i] + (k - i) < n) {
      ++idx[i];
      for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
      return true;
    }
  }
  return false;
}

/// Pricer call/latency telemetry, resolved once per generation run so the
/// per-subset hot path touches only the sharded primitives
/// (docs/observability.md lists the metric names).
struct PricerMetrics {
  support::Counter* star_calls;
  support::Counter* chain_calls;
  support::Counter* tree_calls;
  support::Histogram* subset_us;

  static PricerMetrics resolve() {
    auto& reg = support::MetricsRegistry::global();
    return PricerMetrics{&reg.counter("pricer.star.calls"),
                         &reg.counter("pricer.chain.calls"),
                         &reg.counter("pricer.tree.calls"),
                         &reg.histogram("pricer.subset.us")};
  }
};

/// Prices one subset through all enabled structure pricers, consulting the
/// memoization cache when present. Pure per subset (pricers read only the
/// subset's geometry, the library, and the policy), which is what makes the
/// parallel fan-out deterministic. Runs on worker threads: everything it
/// touches is either const-shared or the thread-safe cache/deadline/metrics.
PricedStructures price_subset(const model::ConstraintGraph& cg,
                              const commlib::Library& library,
                              const SynthesisOptions& options,
                              const std::vector<model::ArcId>& subset,
                              const PricerMetrics& metrics) {
  support::ScopedTimer timer("price.subset", "pricer", metrics.subset_us);
  // The pricers canonicalize their input to the subset's geometry order
  // internally (synth/canonical_order.hpp), so the priced result is a pure
  // function of the subset's geometry -- which is exactly what licenses
  // serving it from the cache under whatever arc ids the requesting graph
  // happens to use: a hit is bit-identical to the fresh solve it replaces.
  PricingCache* cache = options.pricing_cache;
  std::optional<PricingCache::Key> key;
  std::vector<std::uint32_t> canonical_order;
  if (cache != nullptr) {
    canonical_order = canonical_subset_order(cg, subset);
    key = make_pricing_key(cg, library, subset, options.policy,
                           options.enable_chain_topology,
                           options.enable_tree_topology);
    if (std::optional<PricingCache::Entry> entry = cache->lookup(*key)) {
      entry->retarget(subset, canonical_order);
      return PricedStructures{std::move(entry->star), std::move(entry->chain),
                              std::move(entry->tree)};
    }
  }

  PricedStructures p;
  {
    support::Span span("price.star", "pricer");
    metrics.star_calls->add(1);
    p.star = price_merging(cg, library, subset, options.policy,
                           &options.deadline);
  }
  if (options.enable_chain_topology) {
    support::Span span("price.chain", "pricer");
    metrics.chain_calls->add(1);
    p.chain = price_chain_merging(cg, library, subset, options.policy, {},
                                  &options.deadline);
  }
  if (options.enable_tree_topology) {
    support::Span span("price.tree", "pricer");
    metrics.tree_calls->add(1);
    p.tree = price_tree_merging(cg, library, subset, options.policy,
                                &options.deadline);
  }
  // A pricer that bailed out on an expired deadline returns nullopt without
  // that being a statement about the subset; caching it would poison later
  // (unhurried) runs. latched() is poll-free, so fault-injection budgets
  // are not consumed here.
  if (cache != nullptr && !options.deadline.latched()) {
    cache->insert(*key, PricingCache::Entry::make(subset, canonical_order,
                                                  p.star, p.chain, p.tree));
  }
  return p;
}

/// Bounding-box grid pre-filter for the geometric pruning tests.
///
/// Arc midpoints m_a = (u_a + v_a)/2 are bucketed into a uniform grid of
/// pitch `g` (the mean arc length). For any of the supported norms
/// (L1/L2/Linf), ||x|| >= |x_axis| per axis, so two midpoints whose cells
/// differ by c cells along some axis are at least (c-1)*g apart. Combined
/// with the triangle inequality
///     Delta(a,b) = ||u_a-u_b|| + ||v_a-v_b|| >= ||(u_a+v_a)-(u_b+v_b)||
///                = 2 ||m_a - m_b||,
/// a subset whose members are provably far apart satisfies the Lemma 3.1 /
/// Lemma 3.2 pruning inequality (Gamma <= Delta) OUTRIGHT -- the filter
/// skips the lemma evaluation only when its outcome is guaranteed, so the
/// surviving candidate set is bit-identical with the filter on or off.
class MidpointGrid {
 public:
  MidpointGrid(const model::ConstraintGraph& cg,
               const std::vector<model::ArcId>& arcs) {
    double total = 0.0;
    for (model::ArcId a : arcs) total += cg.distance(a);
    pitch_ = arcs.empty() ? 0.0 : total / static_cast<double>(arcs.size());
    if (!(pitch_ > 0.0) || !std::isfinite(pitch_)) return;  // degenerate: off
    enabled_ = true;
    const std::size_t n = arcs.size();
    cell_x_.resize(n);
    cell_y_.resize(n);
    for (model::ArcId a : arcs) {
      const geom::Point2D u = cg.position(cg.source(a));
      const geom::Point2D v = cg.position(cg.target(a));
      cell_x_[a.index()] =
          static_cast<std::int64_t>(std::floor((u.x + v.x) * 0.5 / pitch_));
      cell_y_[a.index()] =
          static_cast<std::int64_t>(std::floor((u.y + v.y) * 0.5 / pitch_));
    }
  }

  bool enabled() const { return enabled_; }

  /// Conservative lower bound on ||m_a - m_b||: cells c apart along an axis
  /// put the midpoints at least (c-1)*pitch apart along it, and every
  /// supported norm dominates each per-axis distance.
  double midpoint_distance_lb(model::ArcId a, model::ArcId b) const {
    const std::int64_t dx =
        std::llabs(cell_x_[a.index()] - cell_x_[b.index()]);
    const std::int64_t dy =
        std::llabs(cell_y_[a.index()] - cell_y_[b.index()]);
    const std::int64_t cells = std::max(dx, dy) - 1;
    return cells > 0 ? static_cast<double>(cells) * pitch_ : 0.0;
  }

  /// True when Lemma 3.1 is GUARANTEED to prune the pair {a, b}:
  /// 2*lb(m_a, m_b) >= Gamma(a,b) implies Gamma <= Delta.
  bool guarantees_lemma31(const ArcPairMatrix& gamma, model::ArcId a,
                          model::ArcId b) const {
    return 2.0 * midpoint_distance_lb(a, b) >= gamma(a, b);
  }

  /// True when Lemma 3.2 is GUARANTEED to prune `subset` under `rule`:
  /// the bound is applied pairwise against the pivot the rule would select
  /// (for kAnyPivot the min-distance pivot suffices -- any one passing
  /// pivot makes the any_of fire).
  bool guarantees_lemma32(const model::ConstraintGraph& cg,
                          const ArcPairMatrix& gamma,
                          std::span<const model::ArcId> subset,
                          PivotRule rule) const {
    model::ArcId pivot = subset.front();
    if (rule == PivotRule::kMaxIndex) {
      pivot = *std::max_element(subset.begin(), subset.end());
    } else {
      // kMinDistance's selection (strict <, earliest wins); also a sound
      // pivot choice for kAnyPivot.
      for (model::ArcId a : subset) {
        if (cg.distance(a) < cg.distance(pivot)) pivot = a;
      }
    }
    double sum_gamma = 0.0;
    double sum_lb2 = 0.0;
    for (model::ArcId a : subset) {
      if (a == pivot) continue;
      sum_gamma += gamma(a, pivot);
      sum_lb2 += 2.0 * midpoint_distance_lb(a, pivot);
    }
    return sum_lb2 >= sum_gamma;
  }

 private:
  bool enabled_{false};
  double pitch_{0.0};
  std::vector<std::int64_t> cell_x_;
  std::vector<std::int64_t> cell_y_;
};

}  // namespace

support::Expected<CandidateSet> generate_candidates(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const SynthesisOptions& options) {
  auto& registry = support::MetricsRegistry::global();
  support::ScopedTimer stage_timer(
      "generate", "pipeline", &registry.histogram("synth.stage.generate.us"),
      &registry.counter("synth.stage.generate.wall_us"));
  // The cache's counters are the one place hits/misses are counted; this
  // run's share is the delta across the run (PricingCache::Stats snapshots).
  const PricingCache::Stats cache_before =
      options.pricing_cache != nullptr ? options.pricing_cache->stats()
                                       : PricingCache::Stats{};
  CandidateSet out;
  const std::vector<model::ArcId> arcs = cg.arcs();
  const std::size_t n = arcs.size();
  const int max_k = options.max_merge_k > 0
                        ? std::min<int>(options.max_merge_k, static_cast<int>(n))
                        : static_cast<int>(n);

  auto& stats = out.stats;
  stats.survivors_per_k.assign(max_k + 1, 0);
  stats.pruned_geometry_per_k.assign(max_k + 1, 0);
  stats.grid_prefilter_skips_per_k.assign(max_k + 1, 0);
  stats.pruned_bandwidth_per_k.assign(max_k + 1, 0);
  stats.unpriceable_per_k.assign(max_k + 1, 0);
  stats.dropped_unprofitable_per_k.assign(max_k + 1, 0);
  stats.arc_eliminated_after_k.assign(n, 0);

  // --- Optimum point-to-point implementations (Def 2.6 / Lemma 2.1). ---
  const DelayConstraint delay_constraint =
      options.delay_budget
          ? DelayConstraint{&options.delay_budget->model,
                            options.delay_budget->budget}
          : DelayConstraint{};
  const DelayConstraint* delay =
      options.delay_budget ? &delay_constraint : nullptr;

  support::Counter& ptp_calls = registry.counter("pricer.ptp.calls");
  std::vector<double> ptp_cost(n, 0.0);
  for (model::ArcId a : arcs) {
    support::Span ptp_span("price.ptp", "pricer");
    ptp_calls.add(1);
    std::optional<PtpPlan> plan =
        best_point_to_point(cg.distance(a), cg.bandwidth(a), library, delay);
    if (!plan) {
      return support::Status::Infeasible(
          "constraint arc '" + cg.channel(a).name +
          "' has no feasible point-to-point implementation in library '" +
          library.name() +
          (options.delay_budget ? "' within the delay budget" : "'"));
    }
    ptp_cost[a.index()] = plan->cost;
    out.candidates.push_back(
        Candidate{.arcs = {a}, .cost = plan->cost, .ptp = plan});
  }
  const ArcPairMatrix gamma = gamma_matrix(cg);
  const ArcPairMatrix delta = delta_matrix(cg);
  const std::vector<double> bw = bandwidth_vector(cg);
  const double max_link_bw = library.max_link_bandwidth();
  const MidpointGrid grid(cg, arcs);
  const bool grid_on = options.use_grid_prefilter && grid.enabled();

  const std::size_t threads = support::resolve_thread_count(options.threads);
  stats.threads_used = threads;
  // Prefer the caller's pool (run_pipeline mounts one shared with the
  // parallel cover solver); self-create only when parallel pricing was
  // requested with no pool to borrow.
  std::unique_ptr<support::ThreadPool> owned_pool;
  support::ThreadPool* pool = threads > 1 ? options.pool : nullptr;
  if (threads > 1 && pool == nullptr) {
    owned_pool = std::make_unique<support::ThreadPool>(threads);
    pool = owned_pool.get();
  }
  const PricerMetrics pricer_metrics = PricerMetrics::resolve();

  // Pricing-batch size: large enough to amortize fan-out overhead and keep
  // every worker busy, small enough to bound the held-subsets memory when
  // max_subsets_per_k is in the millions.
  const std::size_t batch_capacity =
      threads > 1 ? std::max<std::size_t>(1024, 8 * threads) : 1024;

  // --- k-way mergings for increasing k (main loop of Fig. 2). ---
  std::vector<bool> active(n, true);
  for (int k = 2; k <= max_k; ++k) {
    std::vector<model::ArcId> pool_arcs;
    for (model::ArcId a : arcs) {
      if (active[a.index()]) pool_arcs.push_back(a);
    }
    if (pool_arcs.size() < static_cast<std::size_t>(k)) break;

    std::vector<bool> participates(n, false);
    std::size_t survivors_this_k = 0;
    std::size_t enumerated_this_k = 0;
    std::vector<model::ArcId> subset(k);
    std::vector<double> subset_bw(k);

    std::vector<std::size_t> idx(k);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    bool exhausted = false;
    std::vector<std::vector<model::ArcId>> batch;
    batch.reserve(batch_capacity);

    while (!exhausted && !stats.enumeration_truncated &&
           !stats.deadline_expired) {
      // Phase 1 (serial): enumerate in lexicographic order and apply the
      // pruning tests; they are microseconds per subset and their visit
      // order is semantically load-bearing (truncation, Theorem 3.1).
      batch.clear();
      while (batch.size() < batch_capacity && !exhausted) {
        for (int i = 0; i < k; ++i) subset[i] = pool_arcs[idx[i]];
        const auto advance = [&] { exhausted = !next_combination(idx, pool_arcs.size()); };

        ++stats.subsets_examined;
        if (++enumerated_this_k > options.max_subsets_per_k) {
          stats.enumeration_truncated = true;
          break;
        }
        if (options.deadline.expired()) {
          stats.deadline_expired = true;
          break;
        }
        for (int i = 0; i < k; ++i) subset_bw[i] = bw[subset[i].index()];
        if (options.use_theorem32 &&
            theorem32_prunes(subset_bw, max_link_bw)) {
          ++stats.pruned_bandwidth_per_k[k];
          advance();
          continue;
        }
        // Grid pre-filter: skip the lemma evaluation when its firing is
        // guaranteed by the midpoint-cell distances alone. Only sound when
        // the corresponding lemma is enabled (the skip *stands in* for that
        // test), and counted into pruned_geometry_per_k as well so the
        // survivors + pruned_geometry invariant is unchanged.
        const bool grid_skipped =
            grid_on &&
            ((k == 2 && options.use_lemma31 &&
              grid.guarantees_lemma31(gamma, subset[0], subset[1])) ||
             (k >= 3 && options.use_lemma32 &&
              grid.guarantees_lemma32(cg, gamma, subset,
                                      options.pivot_rule)));
        if (grid_skipped) {
          ++stats.pruned_geometry_per_k[k];
          ++stats.grid_prefilter_skips_per_k[k];
          advance();
          continue;
        }
        const bool geometric_pruned =
            (k == 2 && options.use_lemma31 &&
             lemma31_prunes(gamma, delta, subset[0], subset[1])) ||
            (k >= 3 && options.use_lemma32 &&
             lemma32_prunes(cg, gamma, delta, subset, options.pivot_rule));
        if (geometric_pruned) {
          ++stats.pruned_geometry_per_k[k];
          advance();
          continue;
        }
        ++survivors_this_k;
        for (model::ArcId a : subset) participates[a.index()] = true;
        if (options.fault_injection.fires(support::fault_sites::kPricerMerge)) {
          ++stats.unpriceable_per_k[k];
        } else {
          batch.push_back(subset);
        }
        advance();
      }

      // Phase 2: price the surviving subsets. Concurrent when a pool
      // exists, inline otherwise; either way the results come back in
      // enumeration order, so phase 3 is the same fold as the serial run.
      std::vector<PricedStructures> priced = support::parallel_map_ordered(
          pool, batch.size(), [&](std::size_t i) {
            return price_subset(cg, library, options, batch[i],
                                pricer_metrics);
          });

      // Phase 3 (serial, enumeration order): delay-gate the structures,
      // keep the cheapest per subset, and account profitability.
      for (std::size_t b = 0; b < batch.size(); ++b) {
        std::optional<MergingPlan> star = std::move(priced[b].star);
        std::optional<ChainPlan> chain = std::move(priced[b].chain);
        std::optional<TreePlan> tree = std::move(priced[b].tree);
        const std::vector<model::ArcId>& merged = batch[b];
        // Delay-constrained synthesis: a merged structure whose slowest
        // channel busts the budget is not a candidate.
        if (options.delay_budget) {
          const auto& db = *options.delay_budget;
          if (star && worst_arc_delay(*star, db.model) > db.budget) {
            star.reset();
          }
          if (chain && worst_arc_delay(*chain, db.model) > db.budget) {
            chain.reset();
          }
          if (tree && worst_arc_delay(*tree, db.model) > db.budget) {
            tree.reset();
          }
        }
        if (!star && !chain && !tree) {
          ++stats.unpriceable_per_k[k];
          continue;
        }
        // Keep the cheapest structure for this subset.
        constexpr double kInf = std::numeric_limits<double>::infinity();
        const double star_cost = star ? star->cost : kInf;
        const double chain_cost = chain ? chain->cost : kInf;
        const double tree_cost = tree ? tree->cost : kInf;
        const double cost = std::min({star_cost, chain_cost, tree_cost});
        if (options.drop_unprofitable) {
          double members = 0.0;
          for (model::ArcId a : merged) members += ptp_cost[a.index()];
          if (cost >= members - 1e-9) {
            ++stats.dropped_unprofitable_per_k[k];
            continue;
          }
        }
        // Ties break toward the structurally simplest realization.
        Candidate candidate{.arcs = merged, .cost = cost};
        if (star && star_cost == cost) {
          candidate.merging = std::move(star);
        } else if (chain && chain_cost == cost) {
          candidate.chain = std::move(chain);
        } else {
          candidate.tree = std::move(tree);
        }
        out.candidates.push_back(std::move(candidate));
      }
    }
    stats.survivors_per_k[k] = survivors_this_k;
    if (stats.deadline_expired) break;

    // Theorem 3.1: an arc in no surviving k-subset can join no larger
    // merging either; drop its Gamma-matrix column for all following k.
    if (options.use_theorem31) {
      for (model::ArcId a : pool_arcs) {
        if (!participates[a.index()]) {
          active[a.index()] = false;
          stats.arc_eliminated_after_k[a.index()] = k;
        }
      }
    }
    if (survivors_this_k == 0) break;  // Gamma's column set is empty
  }
  if (options.pricing_cache != nullptr) {
    // Saturating delta: a concurrent clear() of a shared cache can only
    // shrink the counters; report zero rather than wrapping.
    const PricingCache::Stats after = options.pricing_cache->stats();
    stats.pricing_cache_hits =
        after.hits >= cache_before.hits ? after.hits - cache_before.hits : 0;
    stats.pricing_cache_misses = after.misses >= cache_before.misses
                                     ? after.misses - cache_before.misses
                                     : 0;
    registry.counter("synth.pricing_cache.evictions")
        .add(after.evictions >= cache_before.evictions
                 ? after.evictions - cache_before.evictions
                 : 0);
  }
  registry.counter("synth.subsets_examined").add(stats.subsets_examined);
  registry.counter("synth.candidates").add(out.candidates.size());
  registry.counter("synth.pricing_cache.hits").add(stats.pricing_cache_hits);
  registry.counter("synth.pricing_cache.misses")
      .add(stats.pricing_cache_misses);
  return out;
}

}  // namespace cdcs::synth
