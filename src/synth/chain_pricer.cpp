#include "synth/chain_pricer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "geom/weiszfeld.hpp"
#include "synth/canonical_order.hpp"

namespace cdcs::synth {
namespace {

constexpr double kCoincideEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Marginal per-length slope of carrying bandwidth b (see merging_pricer).
double length_slope_for(double b, const commlib::Library& lib) {
  const bool can_bundle =
      lib.cheapest_node(commlib::NodeKind::kMux).has_value() &&
      lib.cheapest_node(commlib::NodeKind::kDemux).has_value();
  double best = kInf;
  for (const commlib::Link& l : lib.links()) {
    if (l.bandwidth <= 0.0) continue;
    const double dup = std::ceil(b / l.bandwidth - 1e-12);
    if (dup > 1.0 && !can_bundle) continue;
    best = std::min(best, std::max(dup, 1.0) * l.cost_per_length);
  }
  return std::isfinite(best) && best > 0.0 ? best : 1.0;
}

struct OrderEvaluation {
  std::vector<geom::Point2D> drop_pos;
  double cost{kInf};
  std::vector<PtpPlan> segments;
  std::vector<double> segment_bw;
  std::vector<PtpPlan> legs;
};

/// Prices one drop order. `spokes[i]`/`demand[i]` follow the order.
OrderEvaluation evaluate_order(const geom::Point2D root,
                               const std::vector<geom::Point2D>& spokes,
                               const std::vector<double>& demand,
                               const commlib::Library& lib, geom::Norm norm,
                               model::CapacityPolicy policy,
                               double node_cost, int refine_rounds) {
  const std::size_t k = spokes.size();
  OrderEvaluation out;

  // Cumulative bandwidth carried by segment j (0-based: root->drop1 is 0):
  // everything not yet dropped.
  std::vector<double> seg_bw(k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    double bw = 0.0;
    for (std::size_t i = j; i < k; ++i) {
      bw = policy == model::CapacityPolicy::kSharedSum
               ? bw + demand[i]
               : std::max(bw, demand[i]);
    }
    seg_bw[j] = bw;
  }

  // Chain point sequence q_0 = root, q_1..q_{k-1} = drop nodes, q_k =
  // terminus (the last spoke's own port). Drops start at their targets.
  std::vector<geom::Point2D> q(k + 1);
  q[0] = root;
  for (std::size_t i = 0; i + 1 < k; ++i) q[i + 1] = spokes[i];
  q[k] = spokes[k - 1];

  // Fermat-Weber re-centering of interior drops.
  for (int round = 0; round < refine_rounds; ++round) {
    for (std::size_t j = 1; j < k; ++j) {
      const geom::Point2D pts[] = {q[j - 1], q[j + 1], spokes[j - 1]};
      const double ws[] = {length_slope_for(seg_bw[j - 1], lib),
                           length_slope_for(seg_bw[j], lib),
                           length_slope_for(demand[j - 1], lib)};
      q[j] = geom::weighted_geometric_median(pts, ws, norm);
    }
  }

  // Final pricing through the point-to-point optimizer.
  double cost = 0.0;
  out.segments.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    const auto plan = best_point_to_point(
        geom::distance(q[j], q[j + 1], norm), seg_bw[j], lib);
    if (!plan) return out;  // cost stays infinite
    cost += plan->cost;
    out.segments.push_back(*plan);
  }
  out.legs.reserve(k - 1);
  for (std::size_t i = 0; i + 1 < k; ++i) {
    const auto leg = best_point_to_point(
        geom::distance(q[i + 1], spokes[i], norm), demand[i], lib);
    if (!leg) return out;
    cost += leg->cost;
    out.legs.push_back(*leg);
  }
  cost += static_cast<double>(k - 1) * node_cost;

  out.cost = cost;
  out.segment_bw = std::move(seg_bw);
  out.drop_pos.assign(q.begin() + 1, q.end() - 1);
  return out;
}

}  // namespace

std::optional<ChainPlan> price_chain_merging(const model::ConstraintGraph& cg,
                                             const commlib::Library& library,
                                             std::vector<model::ArcId> subset,
                                             model::CapacityPolicy policy,
                                             const ChainPricerOptions& options,
                                             const support::Deadline* deadline) {
  if (deadline && deadline->expired()) return std::nullopt;
  if (subset.size() < 2) return std::nullopt;
  // Canonical geometry order, NOT ArcId order: the priced plan must be
  // a pure function of the subset's geometry (synth/canonical_order.hpp)
  // so renumbered or reordered arc ids price bit-identically.
  canonicalize_subset(cg, subset);
  const geom::Norm norm = cg.norm();

  // Determine the common side.
  const geom::Point2D first_src = cg.position(cg.source(subset.front()));
  const geom::Point2D first_dst = cg.position(cg.target(subset.front()));
  bool common_source = true;
  bool common_target = true;
  for (model::ArcId a : subset) {
    if (!geom::almost_equal(cg.position(cg.source(a)), first_src,
                            kCoincideEps)) {
      common_source = false;
    }
    if (!geom::almost_equal(cg.position(cg.target(a)), first_dst,
                            kCoincideEps)) {
      common_target = false;
    }
  }
  if (!common_source && !common_target) return std::nullopt;
  if (common_source && common_target) return std::nullopt;  // star territory

  const bool source_rooted = common_source;
  const geom::Point2D root = source_rooted ? first_src : first_dst;
  const auto drop_kind = source_rooted ? commlib::NodeKind::kDemux
                                       : commlib::NodeKind::kMux;
  const auto drop_node = library.cheapest_node(drop_kind);
  if (!drop_node) return std::nullopt;
  const double node_cost = library.node(*drop_node).cost;

  std::vector<geom::Point2D> spokes;
  std::vector<double> demands;
  for (model::ArcId a : subset) {
    spokes.push_back(source_rooted ? cg.position(cg.target(a))
                                   : cg.position(cg.source(a)));
    demands.push_back(cg.bandwidth(a));
  }

  const std::size_t k = subset.size();
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), 0);

  auto evaluate_permutation =
      [&](const std::vector<std::size_t>& perm) -> OrderEvaluation {
    std::vector<geom::Point2D> sp;
    std::vector<double> dm;
    for (std::size_t i : perm) {
      sp.push_back(spokes[i]);
      dm.push_back(demands[i]);
    }
    return evaluate_order(root, sp, dm, library, norm, policy, node_cost,
                          options.refine_rounds);
  };

  OrderEvaluation best;
  std::vector<std::size_t> best_order;
  auto consider = [&](const std::vector<std::size_t>& perm) {
    if (deadline && deadline->expired()) return;
    OrderEvaluation eval = evaluate_permutation(perm);
    if (eval.cost < best.cost) {
      best = std::move(eval);
      best_order = perm;
    }
  };

  if (k <= static_cast<std::size_t>(options.exhaustive_order_max_k)) {
    std::vector<std::size_t> perm = order;
    std::sort(perm.begin(), perm.end());
    do {
      consider(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
  } else {
    // Nearest-first from the root.
    std::vector<std::size_t> by_dist = order;
    std::sort(by_dist.begin(), by_dist.end(), [&](std::size_t a, std::size_t b) {
      return geom::distance(root, spokes[a], norm) <
             geom::distance(root, spokes[b], norm);
    });
    consider(by_dist);
    // Projection order along root -> centroid.
    geom::Point2D centroid{0, 0};
    for (const geom::Point2D& p : spokes) centroid += p;
    centroid = centroid / static_cast<double>(k);
    const geom::Point2D axis = centroid - root;
    std::vector<std::size_t> by_proj = order;
    std::sort(by_proj.begin(), by_proj.end(),
              [&](std::size_t a, std::size_t b) {
                const geom::Point2D da = spokes[a] - root;
                const geom::Point2D db = spokes[b] - root;
                return da.x * axis.x + da.y * axis.y <
                       db.x * axis.x + db.y * axis.y;
              });
    consider(by_proj);
  }

  if (!std::isfinite(best.cost)) return std::nullopt;

  ChainPlan plan;
  plan.source_rooted = source_rooted;
  for (std::size_t i : best_order) plan.arcs.push_back(subset[i]);
  plan.drop_pos = std::move(best.drop_pos);
  plan.drop_node = drop_node;
  plan.segments = std::move(best.segments);
  plan.segment_bandwidth = std::move(best.segment_bw);
  plan.legs = std::move(best.legs);
  plan.cost = best.cost;
  return plan;
}

}  // namespace cdcs::synth
