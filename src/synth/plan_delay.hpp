// Delay figures of candidate plans, computed before materialization.
//
// The paper's on-chip result holds "as long as all links have a delay
// smaller than the clock period"; more generally a synthesized channel may
// have a latency budget. These helpers evaluate the worst-case end-to-end
// delay each plan would impose on each of its channels (wire/medium delay
// per unit length plus a processing delay per communication node), so
// candidate generation can filter structures that violate a budget BEFORE
// the covering step -- delay-constrained synthesis (see
// SynthesisOptions::delay_budget).
//
// The figures equal what sim::analyze_delays reports on the materialized
// graph (same model; repeaters sit on the paths, bundle mux/demux are
// off-path accounting nodes).
#pragma once

#include "sim/delay.hpp"
#include "synth/chain_pricer.hpp"
#include "synth/merging_pricer.hpp"
#include "synth/tree_pricer.hpp"

namespace cdcs::synth {

/// Delay of one chain of a point-to-point plan: span * wire-delay plus a
/// node delay per interior repeater.
double ptp_plan_delay(const PtpPlan& plan, const sim::DelayModel& model);

/// Worst per-channel delay the star merging imposes (ingress + hub + trunk
/// + split + egress for its slowest member).
double worst_arc_delay(const MergingPlan& plan, const sim::DelayModel& model);

/// Worst per-channel delay of the daisy chain (the terminus channel rides
/// the whole trunk; earlier drops pay the upstream segments plus their own
/// leg and every drop node they pass).
double worst_arc_delay(const ChainPlan& plan, const sim::DelayModel& model);

/// Worst per-channel delay of the Steiner tree (root-to-spoke path edges
/// plus the junction nodes along it, plus the drop link where present).
double worst_arc_delay(const TreePlan& plan, const sim::DelayModel& model);

}  // namespace cdcs::synth
