// Latency-insensitive segmentation -- the extension sketched in the paper's
// conclusions (Sec. 4-5): "with the advent of deep sub-micron (DSM) process
// technology (0.13u and below) [all links shorter than a clock period] will
// be true for fewer wires. Still the approach presented in this work can be
// combined with the recently proposed latency-insensitive methodology [1],
// after making sure to define a cost function centered on the minimization
// of both stateless (buffers) and stateful (latches) repeaters."
//
// Model: a wire of length L is segmented into pieces no longer than l_crit
// (electrical constraint), requiring ceil(L / l_crit) - 1 repeaters in
// total. A signal can only travel `clock_reach` of wire within one clock
// period; every clock-period boundary crossed therefore needs its repeater
// to be a STATEFUL relay station (latch), which pipelines the channel by one
// cycle (the latency-insensitive protocol of [1] absorbs the added
// latency). The remaining repeaters stay stateless buffers. When
// clock_reach >= L no latch is needed and the result degenerates to the
// paper's Fig. 5 cost model.
#pragma once

#include <string>
#include <vector>

#include "model/constraint_graph.hpp"

namespace cdcs::synth {

struct DsmSegmentation {
  int buffers{0};     ///< stateless repeaters (optimally sized inverters)
  int latches{0};     ///< stateful relay stations at clock-period boundaries
  int pipeline_depth{0};  ///< extra cycles introduced on the channel
  double cost{0.0};
};

struct DsmParams {
  double l_crit{0.6};        ///< max electrical segment length [mm]
  double clock_reach{5.0};   ///< wire length traversable per clock [mm]
  double buffer_cost{1.0};
  double latch_cost{3.0};    ///< a relay station is a few flops + control
};

/// Segments one channel of length `length` under `params`. Total repeater
/// count is ceil(length / l_crit) - 1; of these, ceil(length / clock_reach)
/// - 1 must be latches (capped by the total). Throws std::invalid_argument
/// on non-positive lengths or parameters.
DsmSegmentation dsm_segment(double length, const DsmParams& params);

struct DsmPlanRow {
  std::string channel;
  double length{0.0};
  DsmSegmentation segmentation;
};

struct DsmPlan {
  std::vector<DsmPlanRow> rows;
  int total_buffers{0};
  int total_latches{0};
  double total_cost{0.0};
};

/// Applies dsm_segment to every channel of a constraint graph (lengths under
/// the graph's norm).
DsmPlan dsm_plan(const model::ConstraintGraph& cg, const DsmParams& params);

}  // namespace cdcs::synth
