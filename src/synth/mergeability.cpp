#include "synth/mergeability.hpp"

#include <algorithm>
#include <limits>

namespace cdcs::synth {

bool lemma31_prunes(const ArcPairMatrix& gamma, const ArcPairMatrix& delta,
                    model::ArcId a, model::ArcId b, double tolerance) {
  return gamma(a, b) <= delta(a, b) + tolerance;
}

bool lemma32_prunes_with_pivot(const ArcPairMatrix& gamma,
                               const ArcPairMatrix& delta,
                               std::span<const model::ArcId> subset,
                               model::ArcId pivot, double tolerance) {
  double sum_gamma = 0.0;
  double sum_delta = 0.0;
  for (model::ArcId a : subset) {
    if (a == pivot) continue;
    sum_gamma += gamma(a, pivot);
    sum_delta += delta(a, pivot);
  }
  return sum_gamma <= sum_delta + tolerance;
}

bool lemma32_prunes(const model::ConstraintGraph& cg,
                    const ArcPairMatrix& gamma, const ArcPairMatrix& delta,
                    std::span<const model::ArcId> subset, PivotRule rule,
                    double tolerance) {
  switch (rule) {
    case PivotRule::kAnyPivot: {
      return std::any_of(subset.begin(), subset.end(), [&](model::ArcId p) {
        return lemma32_prunes_with_pivot(gamma, delta, subset, p, tolerance);
      });
    }
    case PivotRule::kMinDistance: {
      model::ArcId pivot = subset.front();
      for (model::ArcId a : subset) {
        if (cg.distance(a) < cg.distance(pivot)) pivot = a;
      }
      return lemma32_prunes_with_pivot(gamma, delta, subset, pivot, tolerance);
    }
    case PivotRule::kMaxIndex: {
      const model::ArcId pivot = *std::max_element(subset.begin(), subset.end());
      return lemma32_prunes_with_pivot(gamma, delta, subset, pivot, tolerance);
    }
  }
  return false;
}

bool theorem32_prunes(std::span<const double> subset_bandwidths,
                      double max_link_bandwidth, double tolerance) {
  double sum = 0.0;
  double min_b = std::numeric_limits<double>::infinity();
  for (double b : subset_bandwidths) {
    sum += b;
    min_b = std::min(min_b, b);
  }
  return sum + tolerance >= max_link_bandwidth + min_b;
}

}  // namespace cdcs::synth
