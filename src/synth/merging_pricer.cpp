#include "synth/merging_pricer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/minimize.hpp"
#include "geom/weiszfeld.hpp"
#include "synth/canonical_order.hpp"

namespace cdcs::synth {
namespace {

constexpr double kCoincideEps = 1e-9;

bool all_coincide(const std::vector<geom::Point2D>& pts) {
  return std::all_of(pts.begin(), pts.end(), [&](geom::Point2D p) {
    return geom::almost_equal(p, pts.front(), kCoincideEps);
  });
}

/// Marginal cost per unit length of the cheapest realization carrying
/// bandwidth b: min over links of dup(b, l) * cost_per_length(l), where
/// dup is the duplication factor (only available when the library has
/// mux/demux-capable nodes). Under a linear cost model this slope is EXACT
/// -- the leg cost is slope * length plus span-independent node constants --
/// so the placement problem becomes a weighted Fermat-Weber instance.
/// For general libraries it is the Weiszfeld warm-start weight.
double length_slope(double b, const commlib::Library& lib, bool can_bundle) {
  double best = std::numeric_limits<double>::infinity();
  for (const commlib::Link& l : lib.links()) {
    if (l.bandwidth <= 0.0) continue;
    const double dup = std::ceil(b / l.bandwidth - 1e-12);
    if (dup > 1.0 && !can_bundle) continue;
    best = std::min(best, std::max(dup, 1.0) * l.cost_per_length);
  }
  return std::isfinite(best) && best > 0.0 ? best : 1.0;
}

}  // namespace

std::optional<MergingPlan> price_merging(const model::ConstraintGraph& cg,
                                         const commlib::Library& library,
                                         std::vector<model::ArcId> subset,
                                         model::CapacityPolicy policy,
                                         const support::Deadline* deadline) {
  if (deadline && deadline->expired()) return std::nullopt;
  if (subset.size() < 2) return std::nullopt;
  // Canonical geometry order, NOT ArcId order: the priced plan must be
  // a pure function of the subset's geometry (synth/canonical_order.hpp)
  // so renumbered or reordered arc ids price bit-identically.
  canonicalize_subset(cg, subset);

  const geom::Norm norm = cg.norm();
  std::vector<geom::Point2D> sources;
  std::vector<geom::Point2D> targets;
  std::vector<double> bandwidths;
  for (model::ArcId a : subset) {
    sources.push_back(cg.position(cg.source(a)));
    targets.push_back(cg.position(cg.target(a)));
    bandwidths.push_back(cg.bandwidth(a));
  }

  MergingPlan plan;
  plan.arcs = subset;
  plan.has_hub = !all_coincide(sources);
  plan.has_split = !all_coincide(targets);

  if (plan.has_hub) {
    plan.hub_node = library.cheapest_node(commlib::NodeKind::kMux);
    if (!plan.hub_node) return std::nullopt;
  }
  if (plan.has_split) {
    plan.split_node = library.cheapest_node(commlib::NodeKind::kDemux);
    if (!plan.split_node) return std::nullopt;
  }

  plan.trunk_bandwidth = 0.0;
  for (double b : bandwidths) {
    plan.trunk_bandwidth = policy == model::CapacityPolicy::kSharedSum
                               ? plan.trunk_bandwidth + b
                               : std::max(plan.trunk_bandwidth, b);
  }

  // Variable cost as a function of the two trunk endpoints. Node costs are
  // constants and added at the end.
  auto legs_cost = [&](geom::Point2D hub, geom::Point2D split) {
    double total = best_point_to_point_cost(
        geom::distance(hub, split, norm), plan.trunk_bandwidth, library);
    for (std::size_t i = 0; i < subset.size(); ++i) {
      if (plan.has_hub) {
        total += best_point_to_point_cost(
            geom::distance(sources[i], hub, norm), bandwidths[i], library);
      }
      if (plan.has_split) {
        total += best_point_to_point_cost(
            geom::distance(split, targets[i], norm), bandwidths[i], library);
      }
    }
    return total;
  };

  // Fixed endpoints when a side is common; otherwise optimize.
  geom::Point2D hub = sources.front();
  geom::Point2D split = targets.front();

  if (plan.has_hub || plan.has_split) {
    const bool can_bundle =
        library.cheapest_node(commlib::NodeKind::kMux).has_value() &&
        library.cheapest_node(commlib::NodeKind::kDemux).has_value();
    const double trunk_w =
        length_slope(plan.trunk_bandwidth, library, can_bundle);
    std::vector<double> leg_w;
    leg_w.reserve(bandwidths.size());
    for (double b : bandwidths) {
      leg_w.push_back(length_slope(b, library, can_bundle));
    }

    // Weiszfeld placement: each free endpoint is pulled by its own legs
    // plus the trunk toward the opposite endpoint. Exact for linear cost
    // models; a warm start otherwise.
    auto weiszfeld_hub = [&]() {
      std::vector<geom::Point2D> pts = sources;
      std::vector<double> ws = leg_w;
      pts.push_back(split);
      ws.push_back(trunk_w);
      return geom::weighted_geometric_median(pts, ws, norm);
    };
    auto weiszfeld_split = [&]() {
      std::vector<geom::Point2D> pts = targets;
      std::vector<double> ws = leg_w;
      pts.push_back(hub);
      ws.push_back(trunk_w);
      return geom::weighted_geometric_median(pts, ws, norm);
    };
    if (plan.has_hub) hub = weiszfeld_hub();
    if (plan.has_split) split = weiszfeld_split();

    const int rounds = (plan.has_hub && plan.has_split) ? 3 : 1;
    if (library.linear_cost_model()) {
      // Leg costs are exactly slope * length + constants: alternating
      // Weiszfeld solves each coordinate block to optimality.
      for (int r = 1; r < rounds; ++r) {
        if (plan.has_hub) hub = weiszfeld_hub();
        if (plan.has_split) split = weiszfeld_split();
      }
    } else {
      // Segmented / fixed-cost libraries make the objective piecewise;
      // refine the Weiszfeld seed with a bounded derivative-free search.
      geom::BBox box;
      for (geom::Point2D p : sources) box.expand(p);
      for (geom::Point2D p : targets) box.expand(p);
      box.inflate(1e-6);
      geom::NelderMeadOptions nm;
      nm.max_iterations = 150;
      nm.restarts = 1;
      nm.tolerance = 1e-8;
      for (int r = 0; r < rounds; ++r) {
        if (plan.has_hub) {
          auto f = [&](geom::Point2D h) { return legs_cost(h, split); };
          const geom::MinimizeResult2D res =
              geom::minimize_in_box(f, box, 6, nm);
          if (res.value <= legs_cost(hub, split)) hub = res.x;
        }
        if (plan.has_split) {
          auto f = [&](geom::Point2D s) { return legs_cost(hub, s); };
          const geom::MinimizeResult2D res =
              geom::minimize_in_box(f, box, 6, nm);
          if (res.value <= legs_cost(hub, split)) split = res.x;
        }
      }
    }
  }

  plan.hub_pos = hub;
  plan.split_pos = split;

  // Materialize the leg plans at the chosen positions.
  double cost = 0.0;
  const double trunk_span = geom::distance(hub, split, norm);
  std::optional<PtpPlan> trunk =
      best_point_to_point(trunk_span, plan.trunk_bandwidth, library);
  if (!trunk) return std::nullopt;
  plan.trunk = trunk;
  cost += trunk->cost;

  plan.ingress.resize(subset.size());
  plan.egress.resize(subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    if (plan.has_hub) {
      auto leg = best_point_to_point(geom::distance(sources[i], hub, norm),
                                     bandwidths[i], library);
      if (!leg) return std::nullopt;
      cost += leg->cost;
      plan.ingress[i] = leg;
    }
    if (plan.has_split) {
      auto leg = best_point_to_point(geom::distance(split, targets[i], norm),
                                     bandwidths[i], library);
      if (!leg) return std::nullopt;
      cost += leg->cost;
      plan.egress[i] = leg;
    }
  }
  if (plan.hub_node) cost += library.node(*plan.hub_node).cost;
  if (plan.split_node) cost += library.node(*plan.split_node).cost;
  plan.cost = cost;
  return plan;
}

}  // namespace cdcs::synth
