#include "synth/partition.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <utility>

#include "geom/norm.hpp"

namespace cdcs::synth {
namespace {

struct ArcGeom {
  geom::Point2D mid;
  double len{0.0};
};

/// Norm-distance from a point to an axis-aligned box (0 inside). A valid
/// lower bound on the distance to any point of the box for every supported
/// norm, because each norm is coordinate-wise monotone in |dx|, |dy|.
double point_box_distance(geom::Point2D p, const geom::BBox& box,
                          geom::Norm norm) {
  if (box.empty()) return std::numeric_limits<double>::infinity();
  return geom::distance(p, box.clamp(p), norm);
}

/// Norm-distance lower bound between two boxes: the per-axis gaps form a
/// displacement no pair of contained points can undercut.
double box_box_distance(const geom::BBox& a, const geom::BBox& b,
                        geom::Norm norm) {
  if (a.empty() || b.empty()) return std::numeric_limits<double>::infinity();
  const double dx =
      std::max({0.0, a.min_x - b.max_x, b.min_x - a.max_x});
  const double dy =
      std::max({0.0, a.min_y - b.max_y, b.min_y - a.max_y});
  return geom::length({dx, dy}, norm);
}

/// Recursive k-d median split of `idx` (arc indices) on midpoint
/// coordinates until every leaf holds at most `leaf_size` arcs. Leaves are
/// emitted in DFS order (low side first); ties in the split coordinate are
/// broken by arc index, so the output is a pure function of the geometry.
void kd_split(const std::vector<ArcGeom>& g, std::vector<std::size_t> idx,
              std::size_t leaf_size,
              std::vector<std::vector<std::size_t>>& leaves) {
  if (idx.size() <= leaf_size) {
    leaves.push_back(std::move(idx));
    return;
  }
  geom::BBox box;
  for (std::size_t i : idx) box.expand(g[i].mid);
  const bool split_x = box.width() >= box.height();
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    const double ca = split_x ? g[a].mid.x : g[a].mid.y;
    const double cb = split_x ? g[b].mid.x : g[b].mid.y;
    if (ca != cb) return ca < cb;
    return a < b;
  });
  const std::size_t half = idx.size() / 2;
  std::vector<std::size_t> lo(idx.begin(), idx.begin() + half);
  std::vector<std::size_t> hi(idx.begin() + half, idx.end());
  kd_split(g, std::move(lo), leaf_size, leaves);
  kd_split(g, std::move(hi), leaf_size, leaves);
}

/// Plain union-find over a fixed universe [0, n).
struct UnionFind {
  std::vector<std::size_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
};

Cluster make_cluster(std::vector<std::size_t> members,
                     const std::vector<ArcGeom>& g, bool repair) {
  std::sort(members.begin(), members.end());
  Cluster c;
  c.repair = repair;
  c.arcs.reserve(members.size());
  for (std::size_t i : members) {
    c.arcs.push_back(model::ArcId{static_cast<std::uint32_t>(i)});
    c.midpoint_bbox.expand(g[i].mid);
    c.max_arc_length = std::max(c.max_arc_length, g[i].len);
  }
  return c;
}

/// Splits one k-d leaf into endpoint-connected components, then re-merges
/// any two components the bbox separation test cannot PROVE unmergeable:
/// components C1, C2 stay apart only when for every a in C1, b in C2
///   2*||m_a - m_b|| >= 2*dist(bbox(C1), bbox(C2))
///                   >= maxlen(C1) + maxlen(C2) >= d(a) + d(b),
/// i.e. Lemma 3.1 prunes every cross pair (and with it every larger subset
/// spanning both: enumeration grows subsets from surviving pairs). The
/// refinement is therefore lossless for 2-way merges by construction.
std::vector<Cluster> refine_leaf(const std::vector<std::size_t>& leaf,
                                 const model::ConstraintGraph& cg,
                                 const std::vector<ArcGeom>& g) {
  std::vector<Cluster> out;
  if (leaf.empty()) return out;

  // Endpoint components within the leaf.
  UnionFind uf(leaf.size());
  std::vector<std::pair<std::uint32_t, std::size_t>> touch;  // (vertex, pos)
  touch.reserve(leaf.size() * 2);
  for (std::size_t p = 0; p < leaf.size(); ++p) {
    const model::ArcId a{static_cast<std::uint32_t>(leaf[p])};
    touch.emplace_back(static_cast<std::uint32_t>(cg.source(a).index()), p);
    touch.emplace_back(static_cast<std::uint32_t>(cg.target(a).index()), p);
  }
  std::sort(touch.begin(), touch.end());
  for (std::size_t i = 1; i < touch.size(); ++i) {
    if (touch[i].first == touch[i - 1].first) {
      uf.unite(touch[i].second, touch[i - 1].second);
    }
  }

  // Component geometry, keyed by root position (ascending -> stable order).
  std::vector<std::size_t> roots;
  for (std::size_t p = 0; p < leaf.size(); ++p) {
    if (uf.find(p) == p) roots.push_back(p);
  }
  std::vector<geom::BBox> boxes(roots.size());
  std::vector<double> maxlen(roots.size(), 0.0);
  std::vector<std::size_t> comp_of(leaf.size());
  for (std::size_t p = 0; p < leaf.size(); ++p) {
    const std::size_t r = uf.find(p);
    const std::size_t ci = static_cast<std::size_t>(
        std::lower_bound(roots.begin(), roots.end(), r) - roots.begin());
    comp_of[p] = ci;
    boxes[ci].expand(g[leaf[p]].mid);
    maxlen[ci] = std::max(maxlen[ci], g[leaf[p]].len);
  }

  // Re-merge components whose separation is NOT proven.
  UnionFind cf(roots.size());
  for (std::size_t i = 0; i < roots.size(); ++i) {
    for (std::size_t j = i + 1; j < roots.size(); ++j) {
      const double lb = box_box_distance(boxes[i], boxes[j], cg.norm());
      if (2.0 * lb < maxlen[i] + maxlen[j]) cf.unite(i, j);
    }
  }

  // Emit final groups ordered by their smallest member arc index (the leaf
  // is already index-sorted per group construction below).
  std::vector<std::vector<std::size_t>> groups(roots.size());
  for (std::size_t p = 0; p < leaf.size(); ++p) {
    groups[cf.find(comp_of[p])].push_back(leaf[p]);
  }
  std::vector<std::size_t> order;
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    if (!groups[gi].empty()) order.push_back(gi);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return *std::min_element(groups[a].begin(), groups[a].end()) <
           *std::min_element(groups[b].begin(), groups[b].end());
  });
  for (std::size_t gi : order) {
    out.push_back(make_cluster(std::move(groups[gi]), g, /*repair=*/false));
  }
  return out;
}

void rebuild_geometry(Cluster& c, const std::vector<ArcGeom>& g) {
  c.midpoint_bbox = geom::BBox{};
  c.max_arc_length = 0.0;
  for (model::ArcId a : c.arcs) {
    c.midpoint_bbox.expand(g[a.index()].mid);
    c.max_arc_length = std::max(c.max_arc_length, g[a.index()].len);
  }
}

}  // namespace

Partition partition_graph(const model::ConstraintGraph& cg,
                          const PartitioningOptions& opts) {
  const std::size_t n = cg.num_channels();
  const std::size_t leaf_size = std::max<std::size_t>(1, opts.max_cluster_arcs);

  std::vector<ArcGeom> g(n);
  for (std::size_t i = 0; i < n; ++i) {
    const model::ArcId a{static_cast<std::uint32_t>(i)};
    const geom::Point2D u = cg.position(cg.source(a));
    const geom::Point2D v = cg.position(cg.target(a));
    g[i].mid = geom::lerp(u, v, 0.5);
    g[i].len = cg.distance(a);
  }

  Partition part;
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});

  std::vector<std::vector<std::size_t>> leaves;
  kd_split(g, std::move(all), leaf_size, leaves);
  for (const std::vector<std::size_t>& leaf : leaves) {
    std::vector<Cluster> refined = refine_leaf(leaf, cg, g);
    for (Cluster& c : refined) part.clusters.push_back(std::move(c));
  }

  // Boundary extraction (only meaningful with at least two clusters).
  if (part.clusters.size() > 1 && opts.max_boundary_fraction > 0.0) {
    struct Candidate {
      double score;       // violation margin; larger = more boundary-like
      std::size_t arc;    // global arc index
      std::size_t owner;  // owning cluster
    };
    std::vector<Candidate> cands;
    for (std::size_t ci = 0; ci < part.clusters.size(); ++ci) {
      for (model::ArcId a : part.clusters[ci].arcs) {
        double best = 0.0;
        for (std::size_t cj = 0; cj < part.clusters.size(); ++cj) {
          if (cj == ci) continue;
          const Cluster& other = part.clusters[cj];
          const double lb =
              point_box_distance(g[a.index()].mid, other.midpoint_bbox,
                                 cg.norm());
          const double radius = opts.boundary_margin *
                                (g[a.index()].len + other.max_arc_length);
          if (2.0 * lb < radius) best = std::max(best, radius - 2.0 * lb);
        }
        if (best > 0.0) cands.push_back({best, a.index(), ci});
      }
    }
    const std::size_t cap = static_cast<std::size_t>(
        opts.max_boundary_fraction * static_cast<double>(n));
    if (cands.size() > cap) {
      std::sort(cands.begin(), cands.end(),
                [](const Candidate& a, const Candidate& b) {
                  if (a.score != b.score) return a.score > b.score;
                  return a.arc < b.arc;
                });
      cands.resize(cap);
    }
    if (!cands.empty()) {
      std::vector<std::size_t> boundary;
      std::vector<char> is_boundary(n, 0);
      for (const Candidate& c : cands) {
        boundary.push_back(c.arc);
        is_boundary[c.arc] = 1;
      }
      std::sort(boundary.begin(), boundary.end());
      for (std::size_t b : boundary) {
        part.boundary_arcs.push_back(
            model::ArcId{static_cast<std::uint32_t>(b)});
      }
      // Strip boundary arcs out of their interior clusters.
      std::vector<Cluster> kept;
      for (Cluster& c : part.clusters) {
        std::vector<model::ArcId> rest;
        for (model::ArcId a : c.arcs) {
          if (!is_boundary[a.index()]) rest.push_back(a);
        }
        if (rest.empty()) continue;
        c.arcs = std::move(rest);
        rebuild_geometry(c, g);
        kept.push_back(std::move(c));
      }
      part.clusters = std::move(kept);
      part.num_interior = part.clusters.size();
      // Repair groups: k-d split of the boundary arcs (no further
      // refinement or extraction -- this IS the repair pass's scope).
      std::vector<std::vector<std::size_t>> repair_leaves;
      kd_split(g, std::move(boundary), leaf_size, repair_leaves);
      for (std::vector<std::size_t>& leaf : repair_leaves) {
        part.clusters.push_back(make_cluster(std::move(leaf), g,
                                             /*repair=*/true));
      }
      return part;
    }
  }
  part.num_interior = part.clusters.size();
  return part;
}

}  // namespace cdcs::synth
