// SynthesisOptions and fault-injection switches -- the knobs shared by the
// one-shot synthesize() entry points, the incremental synth::Engine, and the
// CLI flag parsers. Split from candidate_generator.hpp so option-carrying
// code does not pull the enumeration machinery (it still sees BnbOptions,
// via the lightweight ucp/bnb_options.hpp, because the solver configuration
// is embedded by value).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string_view>

#include "model/validator.hpp"
#include "sim/delay.hpp"
#include "support/deadline.hpp"
#include "support/fault.hpp"
#include "synth/mergeability.hpp"
#include "ucp/bnb_options.hpp"

namespace cdcs::synth {

class PricingCache;

/// Deterministic fault-injection hooks for robustness testing. The general
/// mechanism is the `injector` (a support::FaultInjector armed with a
/// --fault-plan; see support/fault.hpp and docs/robustness.md): every
/// instrumented failure edge calls fires(<site>) and degrades when it
/// returns true. The four legacy bools are SHIMS over the same sites --
/// each forces its site unconditionally, and its firings are booked
/// through the same metrics counters -- kept so existing callers and
/// scripts keep working. All off in production.
struct FaultInjection {
  /// Every merging/chain/tree pricer call returns nullopt: candidate
  /// generation yields only the point-to-point singletons.
  /// Shim for fault site "pricer.merge".
  bool fail_merging_pricers = false;
  /// The cover solver sees an already-expired deadline even when the
  /// caller's deadline is unlimited. Shim for fault site "ucp.solve".
  bool expire_solver_deadline = false;
  /// Discard the solver's incumbent (as if branch-and-bound had not found
  /// one yet), forcing the greedy-cover fallback stage. Shim for fault
  /// site "ucp.incumbent".
  bool drop_incumbent = false;
  /// Make the greedy cover report failure, forcing the final
  /// point-to-point-only fallback stage. Shim for fault site "ucp.greedy".
  bool fail_greedy_cover = false;

  /// Plan-driven injector shared across the pipeline, the engine, and the
  /// journal (so one plan sees every site's hits in order). Null = no
  /// plan armed.
  std::shared_ptr<support::FaultInjector> injector;

  /// True when the failure edge `site` must fire now: consults the armed
  /// injector first (counting the hit either way), then the legacy bool
  /// shim mapped to the site. Shim-driven fires are booked in the same
  /// metrics counters as plan-driven ones.
  bool fires(std::string_view site) const {
    bool fired = injector != nullptr && injector->should_fail(site);
    if (!fired && legacy_bool(site)) {
      support::record_fault_fire(site);
      fired = true;
    }
    return fired;
  }

  bool legacy_bool(std::string_view site) const {
    namespace fsite = support::fault_sites;
    // All-off fast path: fires() sits on the per-subset enumeration hot
    // path, so skip the site-name comparisons in the common case.
    if (!(fail_merging_pricers || expire_solver_deadline || drop_incumbent ||
          fail_greedy_cover)) {
      return false;
    }
    if (site == fsite::kPricerMerge) return fail_merging_pricers;
    if (site == fsite::kUcpSolve) return expire_solver_deadline;
    if (site == fsite::kUcpIncumbent) return drop_incumbent;
    if (site == fsite::kUcpGreedy) return fail_greedy_cover;
    return false;
  }

  bool any_armed() const {
    return fail_merging_pricers || expire_solver_deadline || drop_incumbent ||
           fail_greedy_cover || (injector != nullptr && !injector->plan().empty());
  }
};

/// Hierarchical partitioned synthesis (synth/partition.hpp,
/// synth/partitioned_synthesizer.hpp; docs/performance.md). Large instances
/// are clustered geometrically, each cluster is synthesized by the ordinary
/// pipeline, boundary arcs are re-priced and re-covered in their own repair
/// groups, and the per-cluster covers are stitched into one result whose
/// lower_bound is the sum of the cluster Lagrangian roots. Deterministic:
/// the same instance partitions and stitches identically at every thread
/// count. Small instances (below `arc_threshold`) always take the exact
/// single-pipeline path untouched, so pinned costs and node counts on the
/// paper corpus cannot change. The incremental synth::Engine ignores this
/// block (sessions always run the plain pipeline).
struct PartitioningOptions {
  /// Master switch; off = the plain pipeline regardless of instance size.
  bool enabled = false;
  /// Instances with fewer arcs than this run the plain pipeline even when
  /// `enabled` (the exact fallback of docs/performance.md).
  std::size_t arc_threshold = 64;
  /// k-d median splitting of arc midpoints stops once a leaf holds at most
  /// this many arcs; every emitted cluster (interior or repair) obeys it.
  std::size_t max_cluster_arcs = 24;
  /// Slack multiplier on the Lemma 3.1 mergeability radius used to flag
  /// boundary arcs: arc `a` in cluster C is boundary when some other
  /// cluster C' has 2*dist(m_a, bbox(C')) < margin*(d(a) + maxlen(C')).
  /// 1.0 = exactly the radius within which a cross-cluster pair could
  /// survive the geometric pruning; larger = more conservative repair.
  double boundary_margin = 1.0;
  /// Cap on the fraction of arcs extracted into boundary-repair groups
  /// (highest violation margin first; deterministic tie-break on arc
  /// index). Keeps hotspot-style traffic, where every long arc looks
  /// boundary, from collapsing the partition.
  double max_boundary_fraction = 0.25;
  /// Per-cluster cap on merging size (applied as max_merge_k inside each
  /// cluster, taking the caller's own max_merge_k when that is tighter).
  /// A geometrically tight 24-arc cluster would otherwise enumerate
  /// exponentially many large subsets; mergings beyond 4-way essentially
  /// never win in the corpus geometries. 0 = inherit the caller's
  /// max_merge_k unchanged.
  int cluster_max_merge_k = 4;
};

struct SynthesisOptions {
  model::CapacityPolicy policy = model::CapacityPolicy::kSharedSum;
  PivotRule pivot_rule = PivotRule::kMinDistance;

  // Ablation switches (all on = the paper's algorithm).
  bool use_lemma31 = true;    ///< pairwise geometric pruning at k = 2
  bool use_lemma32 = true;    ///< pivot-based geometric pruning at k >= 3
  bool use_theorem31 = true;  ///< progressive per-arc elimination
  bool use_theorem32 = true;  ///< bandwidth-sum pruning

  /// Bounding-box grid pre-filter: bucket arc midpoints into a uniform grid
  /// and skip subsets whose members are so far apart that the Lemma 3.1/3.2
  /// distance tests are GUARANTEED to prune them (a conservative
  /// triangle-inequality bound; see candidate_generator.cpp). Pure speedup:
  /// the surviving candidate set is bit-identical. Skips are counted in
  /// GenerationStats::grid_prefilter_skips_per_k (and, since every skipped
  /// subset would have been geometry-pruned anyway, also in
  /// pruned_geometry_per_k). Only active for subsets whose corresponding
  /// lemma switch is on.
  bool use_grid_prefilter = true;

  /// Drop priced mergings that do not beat the sum of their members'
  /// point-to-point costs. Keeps the UCP matrix lean; never loses the
  /// optimum (the member singletons cover the same rows for less).
  bool drop_unprofitable = false;

  /// Also price the daisy-chain (bus) structure for subsets with a common
  /// endpoint and keep the cheaper of star/chain per subset.
  bool enable_chain_topology = true;

  /// Also price the Steiner-tree structure (Hanan-grid topology) for
  /// subsets with a common endpoint; the cheapest of star/chain/tree wins.
  bool enable_tree_topology = true;

  /// Largest merging size considered; 0 means |A| (the paper's algorithm).
  int max_merge_k = 0;

  /// Safety valve on subset enumeration per k (the paper's examples stay in
  /// the tens; random scaling benches can explode combinatorially).
  std::size_t max_subsets_per_k = 5'000'000;

  /// Delay-constrained synthesis: when set, every candidate must keep the
  /// worst-case delay of each of its channels within `budget` under
  /// `model` (per-length wire delay + per-node processing). Merged
  /// structures whose detours/hops blow the budget are dropped; a
  /// point-to-point singleton violating it makes the instance infeasible
  /// (std::runtime_error), since no structure can be faster than the
  /// dedicated straight-line implementation.
  struct DelayBudget {
    sim::DelayModel model;
    double budget{0.0};
  };
  std::optional<DelayBudget> delay_budget;

  /// Wall-clock budget for the whole synthesis run (generation + covering).
  /// Point-to-point singletons are ALWAYS generated in full -- they are the
  /// last-resort cover -- but merging enumeration stops once the deadline
  /// expires (stats.deadline_expired records this) and the remaining budget
  /// is handed to the cover solver.
  support::Deadline deadline;

  /// Worker threads for subset pricing and partitioned cluster fan-out.
  /// 0 (default) means all hardware threads; N >= 1 is taken literally
  /// (1 = price on the caller's thread). N > 1 fans each k's surviving
  /// subsets out to a fixed pool of N workers, merging results in
  /// enumeration order so the candidate set is BIT-IDENTICAL to the serial
  /// run for every N (docs/performance.md) -- which is why "all hardware
  /// threads" is a safe default. Enumeration and pruning always stay
  /// serial -- they are cheap and their order carries Theorem 3.1
  /// semantics. Determinism tests pin explicit counts anyway so their
  /// fingerprints never depend on the host.
  int threads = 0;

  /// Optional pricing memoization shared across synthesize() calls
  /// (synth/pricing_cache.hpp). Borrowed, not owned; must outlive the run.
  /// Thread-safe; hits skip the placement solves entirely.
  PricingCache* pricing_cache = nullptr;

  /// Optional borrowed thread pool for subset pricing (not owned; must
  /// outlive the run). Null with `threads` > 1 makes the generator create
  /// its own. run_pipeline mounts ONE shared pool here and in
  /// `solver.pool`, sized max(threads, solver.threads), so the `--threads`
  /// pricing workers and the `--ucp-threads` B&B workers share it instead
  /// of doubling up (docs/performance.md section 8).
  support::ThreadPool* pool = nullptr;

  /// Deterministic failure forcing for tests; see FaultInjection.
  FaultInjection fault_injection;

  /// Hierarchical partitioned synthesis for large instances; see
  /// PartitioningOptions. Off by default.
  PartitioningOptions partitioning;

  /// Cover-solver configuration (Lagrangian bounds, reduced-cost fixing,
  /// search order, ...). The 3-argument synthesize() overload uses this;
  /// the 4-argument overload overrides it explicitly. The synthesizer
  /// additionally seeds `solver.warm_start` with the point-to-point
  /// singleton cover when the caller left it empty.
  ucp::BnbOptions solver;
};

}  // namespace cdcs::synth
