// Daisy-chain (bus-style) merging structures.
//
// The star pricer (merging_pricer.hpp) realizes a K-way merging with ONE
// split point. When the merged targets are spread along the trunk's
// direction, a chain is often cheaper: the trunk visits drop points in
// sequence, each drop peels one channel off, and the bandwidth carried by
// successive trunk segments shrinks as channels are dropped:
//
//   chi(u*) ====B1+..+Bk==== [drop 1] ====B2+..+Bk==== [drop 2] ... chi(v_k)
//                               |                         |
//                             leg 1                     leg 2
//                            chi(v_1)                  chi(v_2)
//
// The last channel terminates the trunk directly (no drop node). The
// mirrored structure handles a common TARGET (muxes joining flows on the
// way in). Chains require a common endpoint on one side; subsets with both
// sides heterogeneous fall back to the star structure alone.
//
// Drop order: for small k every permutation is priced (exact given the
// per-order placement); for larger k two natural orders are tried --
// nearest-first from the root and projection order along the root-to-
// centroid axis. Per order, drop positions start at their targets and are
// refined by a few rounds of weighted Fermat-Weber re-centering (exact
// subproblems under linear cost models).
//
// This module generalizes the paper's single-common-path merging in the
// direction its successor framework (COSI) explored; candidate generation
// prices both structures and keeps the cheaper, so the paper's experiments
// are unchanged wherever the star wins (it does on the WAN example).
#pragma once

#include "synth/merging_pricer.hpp"

namespace cdcs::synth {

struct ChainPlan {
  /// Merged arcs in DROP ORDER: arcs[i] is served by the i-th drop; the
  /// last arc terminates the trunk.
  std::vector<model::ArcId> arcs;
  bool source_rooted{true};  ///< true: common source; false: common target

  /// Drop positions, one per arcs[0..k-2] (the last arc has no drop node).
  std::vector<geom::Point2D> drop_pos;
  std::optional<commlib::NodeIndex> drop_node;  ///< demux (source-rooted) / mux

  /// Trunk segments: root->drop1, drop1->drop2, ..., drop_{k-1}->terminus.
  std::vector<PtpPlan> segments;
  std::vector<double> segment_bandwidth;
  /// Per drop (size k-1): plan for drop_i -> chi(v_i) (or chi(u_i) -> drop_i
  /// when target-rooted).
  std::vector<PtpPlan> legs;

  double cost{0.0};
};

struct ChainPricerOptions {
  /// Try all permutations up to this k (k-1 drops); beyond it, two
  /// heuristic orders are used.
  int exhaustive_order_max_k = 5;
  /// Fermat-Weber re-centering passes per order.
  int refine_rounds = 3;
};

/// Prices the best daisy-chain realization of `subset` (|subset| >= 2).
/// Returns nullopt when the subset has no common endpoint side, when the
/// library lacks the required drop node, or when some segment/leg is
/// unimplementable. An expired `deadline` (when non-null) is also polled
/// between candidate drop orders, abandoning the remaining orders.
std::optional<ChainPlan> price_chain_merging(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    std::vector<model::ArcId> subset,
    model::CapacityPolicy policy = model::CapacityPolicy::kSharedSum,
    const ChainPricerOptions& options = {},
    const support::Deadline* deadline = nullptr);

}  // namespace cdcs::synth
