// Hierarchical partitioned synthesis: the scale path for instances far
// beyond the paper's 20-arc corpus (docs/performance.md).
//
// partition_graph (synth/partition.hpp) clusters the instance; each cluster
// becomes an independent subgraph synthesized by the UNMODIFIED pipeline
// (generate -> cover -> ladder), the boundary-repair groups re-price and
// re-cover exactly the border-crossing arcs, and the per-cluster covers are
// stitched into one SynthesisResult:
//   * candidate arcs and plan arc lists are remapped from cluster-local to
//     global ArcIds (the remap is monotone, so sortedness is preserved);
//   * chosen column indices are offset into the concatenated candidate set;
//   * cover cost / nodes / generation stats are summed, and lower_bound is
//     the SUM of the cluster Lagrangian root bounds -- a true bound for the
//     decomposed problem (each cluster's bound is proven over its own
//     candidate set), so the reported optimality gap is measured, not
//     guessed. Cross-cluster merges the decomposition forgoes are exactly
//     the pairs the partitioner's geometric test kept only when provably
//     Lemma 3.1-pruned, plus the capped boundary tail.
//   * assembly and Def 2.4 validation run ONCE over the whole graph.
//
// Clusters fan out across a support::ThreadPool via parallel_map_ordered:
// each cluster is priced serially (threads=1) and the stitch folds results
// in cluster order, so the output is BIT-IDENTICAL for every thread count.
// The stitched result reports stage kIncumbent (global optimality across
// clusters is not proven even when every cluster solved exactly) with the
// aggregate lower bound and gap in the degradation report.
#pragma once

#include "commlib/library.hpp"
#include "model/constraint_graph.hpp"
#include "support/status.hpp"
#include "synth/options.hpp"
#include "synth/result.hpp"
#include "ucp/bnb_options.hpp"

namespace cdcs::synth {

/// True when synthesize() should take the partitioned path: partitioning is
/// enabled AND the instance is at least arc_threshold arcs (the exact
/// fallback below the threshold keeps every pinned corpus result
/// bit-identical).
bool partitioning_applies(const model::ConstraintGraph& cg,
                          const SynthesisOptions& options);

/// Partitioned synthesis end to end (see file comment). Called by
/// synthesize() behind its input gate and catch-all; callers outside the
/// synthesizer must apply their own. Delegates to the plain pipeline when
/// the partition degenerates to at most one cluster. Caller-provided
/// solver warm starts are instance-specific and therefore dropped for the
/// per-cluster solves.
support::Expected<SynthesisResult> synthesize_partitioned(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    const SynthesisOptions& options, const ucp::BnbOptions& solver_options);

}  // namespace cdcs::synth
