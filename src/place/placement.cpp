#include "place/placement.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace cdcs::place {

std::size_t PlacementProblem::add_module(std::string name) {
  modules.push_back(Module{std::move(name), false, {0.0, 0.0}});
  return modules.size() - 1;
}

std::size_t PlacementProblem::add_fixed(std::string name,
                                        geom::Point2D position) {
  modules.push_back(Module{std::move(name), true, position});
  return modules.size() - 1;
}

void PlacementProblem::connect(std::size_t a, std::size_t b, double weight) {
  nets.push_back(Net{a, b, weight});
}

std::vector<std::string> PlacementProblem::validate() const {
  std::vector<std::string> problems;
  for (const Net& n : nets) {
    if (n.a >= modules.size() || n.b >= modules.size()) {
      problems.push_back("net endpoint out of range");
      continue;
    }
    if (n.a == n.b) problems.push_back("net connects a module to itself");
    if (n.weight <= 0.0) {
      problems.push_back("net between '" + modules[n.a].name + "' and '" +
                         modules[n.b].name + "' has non-positive weight");
    }
  }
  // Union-find over nets; every component containing a movable module must
  // also contain a fixed one, or the quadratic form has no unique minimum.
  std::vector<std::size_t> parent(modules.size());
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](std::size_t v) {
    while (parent[v] != v) v = parent[v] = parent[parent[v]];
    return v;
  };
  for (const Net& n : nets) {
    if (n.a < modules.size() && n.b < modules.size()) {
      parent[find(n.a)] = find(n.b);
    }
  }
  std::vector<bool> anchored(modules.size(), false);
  for (std::size_t i = 0; i < modules.size(); ++i) {
    if (modules[i].fixed) anchored[find(i)] = true;
  }
  for (std::size_t i = 0; i < modules.size(); ++i) {
    if (!modules[i].fixed && !anchored[find(i)]) {
      problems.push_back("module '" + modules[i].name +
                         "' floats free: its component has no fixed module");
    }
  }
  return problems;
}

namespace {

/// One conjugate-gradient solve of L x = b restricted to movable modules,
/// where L is the graph Laplacian of the net weights (fixed modules folded
/// into b). Matrix-free: L*v is accumulated by streaming over nets.
struct CgOutcome {
  int iterations{0};
  bool converged{false};
};

CgOutcome solve_coordinate(const PlacementProblem& p,
                           const std::vector<std::size_t>& movable_index,
                           std::vector<double>& x,  // per movable module
                           const std::vector<double>& rhs,
                           const PlacementOptions& options) {
  const std::size_t m = x.size();
  auto apply_laplacian = [&](const std::vector<double>& v,
                             std::vector<double>& out) {
    std::fill(out.begin(), out.end(), 0.0);
    for (const Net& n : p.nets) {
      const std::size_t ia = movable_index[n.a];
      const std::size_t ib = movable_index[n.b];
      const double va = ia != SIZE_MAX ? v[ia] : 0.0;
      const double vb = ib != SIZE_MAX ? v[ib] : 0.0;
      if (ia != SIZE_MAX) out[ia] += n.weight * (va - vb);
      if (ib != SIZE_MAX) out[ib] += n.weight * (vb - va);
    }
  };

  std::vector<double> r(m), d(m), q(m);
  apply_laplacian(x, q);
  double rr = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    r[i] = rhs[i] - q[i];
    d[i] = r[i];
    rr += r[i] * r[i];
  }
  double rhs_norm = 0.0;
  for (double b : rhs) rhs_norm += b * b;
  const double threshold =
      options.tolerance * options.tolerance * std::max(rhs_norm, 1e-30);

  CgOutcome outcome;
  while (outcome.iterations < options.max_iterations && rr > threshold) {
    apply_laplacian(d, q);
    double dq = 0.0;
    for (std::size_t i = 0; i < m; ++i) dq += d[i] * q[i];
    if (dq <= 0.0) break;  // singular direction; validate() should prevent
    const double alpha = rr / dq;
    double rr_next = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      x[i] += alpha * d[i];
      r[i] -= alpha * q[i];
      rr_next += r[i] * r[i];
    }
    const double beta = rr_next / rr;
    for (std::size_t i = 0; i < m; ++i) d[i] = r[i] + beta * d[i];
    rr = rr_next;
    ++outcome.iterations;
  }
  outcome.converged = rr <= threshold;
  return outcome;
}

}  // namespace

PlacementResult place(const PlacementProblem& problem,
                      const PlacementOptions& options) {
  const std::vector<std::string> problems = problem.validate();
  if (!problems.empty()) {
    throw std::invalid_argument("place: " + problems.front());
  }

  // Index movable modules densely.
  std::vector<std::size_t> movable_index(problem.modules.size(), SIZE_MAX);
  std::vector<std::size_t> movable;
  for (std::size_t i = 0; i < problem.modules.size(); ++i) {
    if (!problem.modules[i].fixed) {
      movable_index[i] = movable.size();
      movable.push_back(i);
    }
  }

  PlacementResult result;
  result.positions.resize(problem.modules.size());
  for (std::size_t i = 0; i < problem.modules.size(); ++i) {
    result.positions[i] = problem.modules[i].position;
  }
  if (movable.empty()) {
    result.converged = true;
  } else {
    // Fold fixed neighbors into the right-hand side, one axis at a time.
    for (int axis = 0; axis < 2; ++axis) {
      std::vector<double> rhs(movable.size(), 0.0);
      for (const Net& n : problem.nets) {
        const bool a_mov = movable_index[n.a] != SIZE_MAX;
        const bool b_mov = movable_index[n.b] != SIZE_MAX;
        const auto coord = [&](std::size_t i) {
          return axis == 0 ? problem.modules[i].position.x
                           : problem.modules[i].position.y;
        };
        if (a_mov && !b_mov) rhs[movable_index[n.a]] += n.weight * coord(n.b);
        if (b_mov && !a_mov) rhs[movable_index[n.b]] += n.weight * coord(n.a);
      }
      std::vector<double> x(movable.size());
      for (std::size_t i = 0; i < movable.size(); ++i) {
        x[i] = axis == 0 ? problem.modules[movable[i]].position.x
                         : problem.modules[movable[i]].position.y;
      }
      const CgOutcome outcome =
          solve_coordinate(problem, movable_index, x, rhs, options);
      result.iterations = std::max(result.iterations, outcome.iterations);
      result.converged = axis == 0 ? outcome.converged
                                   : (result.converged && outcome.converged);
      for (std::size_t i = 0; i < movable.size(); ++i) {
        if (axis == 0) {
          result.positions[movable[i]].x = x[i];
        } else {
          result.positions[movable[i]].y = x[i];
        }
      }
    }
  }

  for (const Net& n : problem.nets) {
    result.quadratic_wirelength +=
        n.weight *
        geom::squared_length(result.positions[n.a] - result.positions[n.b]);
  }
  return result;
}

}  // namespace cdcs::place
