// Quadratic (force-directed) module placement.
//
// The paper assumes every port position p(v) is given ("for each port of
// every computational module on the chip a certain location could be
// specified"). Real flows have to produce those positions first. This
// module provides the classic analytical-placement substrate: modules
// connected by weighted two-point nets, a few modules fixed (I/O pads,
// pre-placed macros), the rest placed by minimizing the quadratic wirelength
//
//     Phi(x) = sum_nets w * ||p(u) - p(v)||^2
//
// whose optimum solves one Laplacian linear system per coordinate --
// solved here by conjugate gradient without forming the matrix. Movable
// modules end up at the weighted barycenter of their neighbors (the
// classic "spring" equilibrium), which is unique whenever every movable
// component is anchored through some fixed module.
//
// The output feeds straight into ConstraintGraph construction: place the
// modules, then emit a channel per net with its bandwidth requirement (see
// examples/soc_flow.cpp).
#pragma once

#include <string>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/point.hpp"

namespace cdcs::place {

struct Module {
  std::string name;
  bool fixed{false};
  geom::Point2D position;  ///< required when fixed; initial guess otherwise
};

struct Net {
  std::size_t a{0};
  std::size_t b{0};
  double weight{1.0};  ///< typically the net's bandwidth or criticality
};

struct PlacementProblem {
  std::vector<Module> modules;
  std::vector<Net> nets;

  std::size_t add_module(std::string name);
  std::size_t add_fixed(std::string name, geom::Point2D position);
  void connect(std::size_t a, std::size_t b, double weight = 1.0);

  /// Structural sanity: net endpoints in range, positive weights, at least
  /// one fixed module per connected component containing movables (else the
  /// quadratic form is singular). Returns human-readable problems.
  std::vector<std::string> validate() const;
};

struct PlacementOptions {
  double tolerance = 1e-9;   ///< CG residual threshold (relative)
  int max_iterations = 1000;
};

struct PlacementResult {
  std::vector<geom::Point2D> positions;  ///< per module, fixed ones unchanged
  double quadratic_wirelength{0.0};      ///< Phi at the solution
  int iterations{0};                     ///< CG iterations (max of x/y solves)
  bool converged{false};
};

/// Solves the quadratic placement. Throws std::invalid_argument when
/// validate() reports problems.
PlacementResult place(const PlacementProblem& problem,
                      const PlacementOptions& options = {});

}  // namespace cdcs::place
