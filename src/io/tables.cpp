#include "io/tables.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace cdcs::io {

std::string truncate_decimals(double value, int decimals) {
  const double scale = std::pow(10.0, decimals);
  const double truncated = std::trunc(value * scale) / scale;
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << truncated;
  return os.str();
}

std::string format_arc_pair_matrix(const model::ConstraintGraph& cg,
                                   const synth::ArcPairMatrix& m,
                                   int decimals) {
  const std::vector<model::ArcId> arcs = cg.arcs();
  constexpr int kCell = 9;
  std::ostringstream os;
  os << std::setw(kCell) << "";
  for (model::ArcId a : arcs) {
    os << std::setw(kCell) << cg.channel(a).name;
  }
  os << '\n';
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    os << std::setw(kCell) << cg.channel(arcs[i]).name;
    for (std::size_t j = 0; j < arcs.size(); ++j) {
      if (j <= i) {
        os << std::setw(kCell) << "";
      } else {
        os << std::setw(kCell)
           << truncate_decimals(m(arcs[i], arcs[j]), decimals);
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace cdcs::io
