// Human-readable synthesis reports used by the examples and benchmarks.
#pragma once

#include <string>

#include "synth/synthesizer.hpp"

namespace cdcs::io {

/// One line per selected candidate: arcs covered, structure, link usage,
/// cost; followed by totals, candidate statistics and validation status.
std::string describe(const synth::SynthesisResult& result,
                     const model::ConstraintGraph& cg,
                     const commlib::Library& library);

/// Short structural summary of one candidate ("merge {a4,a5,a6} via optical
/// trunk ..." / "a1: radio matching ...").
std::string describe_candidate(const synth::Candidate& candidate,
                               const model::ConstraintGraph& cg,
                               const commlib::Library& library);

}  // namespace cdcs::io
