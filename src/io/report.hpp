// Human-readable synthesis reports used by the examples and benchmarks.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "support/metrics.hpp"
#include "support/profiler.hpp"
#include "synth/synthesizer.hpp"

namespace cdcs::io {

/// One line per selected candidate: arcs covered, structure, link usage,
/// cost; followed by totals, candidate statistics and validation status.
/// `include_perf_line` controls the one-line "Perf:" summary; the CLI's
/// --report-perf turns it off and prints describe_perf() instead.
std::string describe(const synth::SynthesisResult& result,
                     const model::ConstraintGraph& cg,
                     const commlib::Library& library,
                     bool include_perf_line = true);

/// Consolidated performance section over a per-run metrics delta
/// (MetricsSnapshot::delta_since): per-stage wall time, pricing-cache and
/// pricer-call totals, UCP search telemetry, and thread-pool load. Metric
/// names are the registry taxonomy in docs/observability.md; sections whose
/// metrics are absent (e.g. wall times without --metrics-out/--report-perf
/// enabling timing) are omitted.
/// When `result` is supplied, the backend line is followed by the run's
/// CoverStop string and -- for degraded runs -- the active degradation
/// stage and reason, so a degraded run is diagnosable from the report
/// alone.
std::string describe_perf(const support::MetricsSnapshot& delta,
                          const synth::SynthesisResult* result = nullptr);

/// Top-N hotspots table over in-process profiler entries
/// (support::build_profile): one row per (scope, span-name) ordered by
/// total time, with count / total / self / max / mean columns.
std::string describe_profile(const std::vector<support::ProfileEntry>& entries,
                             std::size_t top_n = 10);

/// Short structural summary of one candidate ("merge {a4,a5,a6} via optical
/// trunk ..." / "a1: radio matching ...").
std::string describe_candidate(const synth::Candidate& candidate,
                               const model::ConstraintGraph& cg,
                               const commlib::Library& library);

}  // namespace cdcs::io
