#include "io/text_format.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

namespace cdcs::io {
namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error("line " + std::to_string(line) + ": " + message);
}

/// Strips comments/whitespace; returns false for blank lines.
bool tokenize(const std::string& line, std::vector<std::string>& tokens) {
  tokens.clear();
  std::istringstream is(line.substr(0, line.find('#')));
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return !tokens.empty();
}

double parse_span(const std::string& tok, int line) {
  if (tok == "inf" || tok == "infinity") {
    return std::numeric_limits<double>::infinity();
  }
  try {
    return std::stod(tok);
  } catch (const std::exception&) {
    fail(line, "bad span '" + tok + "'");
  }
}

double parse_num(const std::string& tok, int line, const char* what) {
  try {
    return std::stod(tok);
  } catch (const std::exception&) {
    fail(line, std::string("bad ") + what + " '" + tok + "'");
  }
}

}  // namespace

model::ConstraintGraph read_constraint_graph(std::istream& in) {
  geom::Norm norm = geom::Norm::kEuclidean;
  bool norm_seen = false;
  struct PendingPort {
    std::string name;
    geom::Point2D pos;
  };
  std::vector<PendingPort> ports;
  struct PendingChannel {
    std::string name, src, dst;
    double bandwidth;
    int line;
  };
  std::vector<PendingChannel> channels;

  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::vector<std::string> t;
    if (!tokenize(line, t)) continue;
    if (t[0] == "norm") {
      if (t.size() != 2) fail(lineno, "norm takes one argument");
      if (norm_seen) fail(lineno, "duplicate norm directive");
      norm = geom::norm_from_string(t[1]);
      norm_seen = true;
    } else if (t[0] == "port") {
      if (t.size() != 4) fail(lineno, "port takes: name x y");
      ports.push_back({t[1],
                       {parse_num(t[2], lineno, "x coordinate"),
                        parse_num(t[3], lineno, "y coordinate")}});
    } else if (t[0] == "channel") {
      if (t.size() != 5) fail(lineno, "channel takes: name src dst bandwidth");
      channels.push_back(
          {t[1], t[2], t[3], parse_num(t[4], lineno, "bandwidth"), lineno});
    } else {
      fail(lineno, "unknown directive '" + t[0] + "'");
    }
  }

  model::ConstraintGraph cg(norm);
  std::map<std::string, model::VertexId> by_name;
  for (const PendingPort& p : ports) {
    if (by_name.contains(p.name)) {
      throw std::runtime_error("duplicate port name '" + p.name + "'");
    }
    by_name.emplace(p.name, cg.add_port(p.name, p.pos));
  }
  for (const PendingChannel& c : channels) {
    const auto su = by_name.find(c.src);
    const auto sv = by_name.find(c.dst);
    if (su == by_name.end()) fail(c.line, "unknown port '" + c.src + "'");
    if (sv == by_name.end()) fail(c.line, "unknown port '" + c.dst + "'");
    cg.add_channel(su->second, sv->second, c.bandwidth, c.name);
  }
  return cg;
}

model::ConstraintGraph read_constraint_graph_from_string(
    const std::string& text) {
  std::istringstream is(text);
  return read_constraint_graph(is);
}

std::string write_constraint_graph(const model::ConstraintGraph& cg) {
  std::ostringstream os;
  os.precision(17);
  os << "norm " << geom::to_string(cg.norm()) << '\n';
  for (model::VertexId v : cg.ports()) {
    os << "port " << cg.port(v).name << ' ' << cg.position(v).x << ' '
       << cg.position(v).y << '\n';
  }
  for (model::ArcId a : cg.arcs()) {
    os << "channel " << cg.channel(a).name << ' '
       << cg.port(cg.source(a)).name << ' ' << cg.port(cg.target(a)).name
       << ' ' << cg.bandwidth(a) << '\n';
  }
  return os.str();
}

commlib::Library read_library(std::istream& in) {
  commlib::Library lib;
  std::string line;
  int lineno = 0;
  std::string name;
  std::vector<commlib::Link> links;
  std::vector<commlib::Node> nodes;
  while (std::getline(in, line)) {
    ++lineno;
    std::vector<std::string> t;
    if (!tokenize(line, t)) continue;
    if (t[0] == "library") {
      if (t.size() != 2) fail(lineno, "library takes one argument");
      name = t[1];
    } else if (t[0] == "link") {
      if (t.size() != 6) {
        fail(lineno, "link takes: name max_span bandwidth fixed per_length");
      }
      links.push_back(commlib::Link{
          .name = t[1],
          .max_span = parse_span(t[2], lineno),
          .bandwidth = parse_num(t[3], lineno, "bandwidth"),
          .fixed_cost = parse_num(t[4], lineno, "fixed cost"),
          .cost_per_length = parse_num(t[5], lineno, "per-length cost")});
    } else if (t[0] == "node") {
      if (t.size() != 4) fail(lineno, "node takes: name kind cost");
      commlib::NodeKind kind;
      if (t[2] == "repeater") {
        kind = commlib::NodeKind::kRepeater;
      } else if (t[2] == "mux") {
        kind = commlib::NodeKind::kMux;
      } else if (t[2] == "demux") {
        kind = commlib::NodeKind::kDemux;
      } else if (t[2] == "switch") {
        kind = commlib::NodeKind::kSwitch;
      } else {
        fail(lineno, "unknown node kind '" + t[2] + "'");
      }
      nodes.push_back(commlib::Node{
          .name = t[1], .kind = kind, .cost = parse_num(t[3], lineno, "cost")});
    } else {
      fail(lineno, "unknown directive '" + t[0] + "'");
    }
  }
  commlib::Library out(name);
  for (commlib::Link& l : links) out.add_link(std::move(l));
  for (commlib::Node& n : nodes) out.add_node(std::move(n));
  return out;
}

commlib::Library read_library_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_library(is);
}

std::string write_library(const commlib::Library& lib) {
  std::ostringstream os;
  os.precision(17);
  os << "library " << lib.name() << '\n';
  for (const commlib::Link& l : lib.links()) {
    os << "link " << l.name << ' ';
    if (std::isinf(l.max_span)) {
      os << "inf";
    } else {
      os << l.max_span;
    }
    os << ' ' << l.bandwidth << ' ' << l.fixed_cost << ' ' << l.cost_per_length
       << '\n';
  }
  for (const commlib::Node& n : lib.nodes()) {
    os << "node " << n.name << ' ' << commlib::to_string(n.kind) << ' '
       << n.cost << '\n';
  }
  return os.str();
}

}  // namespace cdcs::io
