#include "io/text_format.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <sstream>

namespace cdcs::io {

using support::Expected;
using support::Status;

namespace {

Status parse_error(int line, const std::string& message) {
  return Status::ParseError("line " + std::to_string(line) + ": " + message);
}

/// Strips comments/whitespace; returns false for blank lines.
bool tokenize(const std::string& line, std::vector<std::string>& tokens) {
  tokens.clear();
  std::istringstream is(line.substr(0, line.find('#')));
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return !tokens.empty();
}

/// Parses a finite double; rejects junk, overflow ("1e999"), NaN and
/// infinity.
std::optional<double> parse_finite(const std::string& tok) {
  try {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size() || !std::isfinite(v)) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<double> parse_span(const std::string& tok) {
  if (tok == "inf" || tok == "infinity") {
    return std::numeric_limits<double>::infinity();
  }
  return parse_finite(tok);
}

std::optional<geom::Norm> parse_norm(const std::string& tok) {
  try {
    return geom::norm_from_string(tok);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

Expected<model::ConstraintGraph> read_constraint_graph(std::istream& in) {
  geom::Norm norm = geom::Norm::kEuclidean;
  bool norm_seen = false;
  struct PendingPort {
    std::string name;
    geom::Point2D pos;
    int line;
  };
  std::vector<PendingPort> ports;
  struct PendingChannel {
    std::string name, src, dst;
    double bandwidth;
    int line;
  };
  std::vector<PendingChannel> channels;

  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::vector<std::string> t;
    if (!tokenize(line, t)) continue;
    if (t[0] == "norm") {
      if (t.size() != 2) return parse_error(lineno, "norm takes one argument");
      if (norm_seen) return parse_error(lineno, "duplicate norm directive");
      const std::optional<geom::Norm> n = parse_norm(t[1]);
      if (!n) return parse_error(lineno, "unknown norm '" + t[1] + "'");
      norm = *n;
      norm_seen = true;
    } else if (t[0] == "port") {
      if (t.size() != 4) return parse_error(lineno, "port takes: name x y");
      const std::optional<double> x = parse_finite(t[2]);
      const std::optional<double> y = parse_finite(t[3]);
      if (!x) {
        return parse_error(lineno, "bad x coordinate '" + t[2] +
                                       "' (must be a finite number)");
      }
      if (!y) {
        return parse_error(lineno, "bad y coordinate '" + t[3] +
                                       "' (must be a finite number)");
      }
      ports.push_back({t[1], {*x, *y}, lineno});
    } else if (t[0] == "channel") {
      if (t.size() != 5) {
        return parse_error(lineno, "channel takes: name src dst bandwidth");
      }
      const std::optional<double> bw = parse_finite(t[4]);
      if (!bw || *bw <= 0.0) {
        return parse_error(lineno, "bad bandwidth '" + t[4] +
                                       "' for channel '" + t[1] +
                                       "' (must be a finite positive number)");
      }
      channels.push_back({t[1], t[2], t[3], *bw, lineno});
    } else {
      return parse_error(lineno, "unknown directive '" + t[0] + "'");
    }
  }
  if (in.bad()) {
    return Status::ParseError(
        "I/O error after line " + std::to_string(lineno) +
        "; the input stream is truncated or unreadable");
  }

  model::ConstraintGraph cg(norm);
  std::map<std::string, model::VertexId> by_name;
  for (const PendingPort& p : ports) {
    if (by_name.contains(p.name)) {
      return parse_error(p.line, "duplicate port name '" + p.name + "'");
    }
    auto added = cg.try_add_port(p.name, p.pos);
    if (!added.ok()) {
      return std::move(added).take_status().with_context(
          "line " + std::to_string(p.line));
    }
    by_name.emplace(p.name, *added);
  }
  std::set<std::string> channel_names;
  for (const PendingChannel& c : channels) {
    if (!channel_names.insert(c.name).second) {
      return parse_error(c.line, "duplicate channel definition '" + c.name +
                                     "' (channel names must be unique)");
    }
    const auto su = by_name.find(c.src);
    const auto sv = by_name.find(c.dst);
    if (su == by_name.end()) {
      return parse_error(c.line, "unknown port '" + c.src + "'");
    }
    if (sv == by_name.end()) {
      return parse_error(c.line, "unknown port '" + c.dst + "'");
    }
    if (su->second == sv->second) {
      return parse_error(c.line, "channel '" + c.name +
                                     "' is a self-loop on port '" + c.src +
                                     "'; channels are point-to-point");
    }
    auto added = cg.try_add_channel(su->second, sv->second, c.bandwidth,
                                    c.name);
    if (!added.ok()) {
      return std::move(added).take_status().with_context(
          "line " + std::to_string(c.line));
    }
  }
  return cg;
}

Expected<model::ConstraintGraph> read_constraint_graph_from_string(
    const std::string& text) {
  std::istringstream is(text);
  return read_constraint_graph(is);
}

std::string write_constraint_graph(const model::ConstraintGraph& cg) {
  std::ostringstream os;
  os.precision(17);
  os << "norm " << geom::to_string(cg.norm()) << '\n';
  for (model::VertexId v : cg.ports()) {
    os << "port " << cg.port(v).name << ' ' << cg.position(v).x << ' '
       << cg.position(v).y << '\n';
  }
  for (model::ArcId a : cg.arcs()) {
    os << "channel " << cg.channel(a).name << ' '
       << cg.port(cg.source(a)).name << ' ' << cg.port(cg.target(a)).name
       << ' ' << cg.bandwidth(a) << '\n';
  }
  return os.str();
}

Expected<commlib::Library> read_library(std::istream& in) {
  commlib::Library lib;
  std::string line;
  int lineno = 0;
  std::string name;
  std::vector<commlib::Link> links;
  std::vector<commlib::Node> nodes;
  std::set<std::string> link_names, node_names;
  while (std::getline(in, line)) {
    ++lineno;
    std::vector<std::string> t;
    if (!tokenize(line, t)) continue;
    if (t[0] == "library") {
      if (t.size() != 2) {
        return parse_error(lineno, "library takes one argument");
      }
      name = t[1];
    } else if (t[0] == "link") {
      if (t.size() != 6) {
        return parse_error(lineno,
                           "link takes: name max_span bandwidth fixed "
                           "per_length");
      }
      if (!link_names.insert(t[1]).second) {
        return parse_error(lineno, "duplicate link name '" + t[1] + "'");
      }
      const std::optional<double> span = parse_span(t[2]);
      const std::optional<double> bw = parse_finite(t[3]);
      const std::optional<double> fixed = parse_finite(t[4]);
      const std::optional<double> per_len = parse_finite(t[5]);
      if (!span || *span <= 0.0) {
        return parse_error(lineno, "bad span '" + t[2] +
                                       "' (must be positive or 'inf')");
      }
      if (!bw || *bw <= 0.0) {
        return parse_error(lineno,
                           "bad bandwidth '" + t[3] + "' for link '" + t[1] +
                               "' (must be a finite positive number)");
      }
      if (!fixed || *fixed < 0.0) {
        return parse_error(lineno, "bad fixed cost '" + t[4] + "' for link '" +
                                       t[1] + "' (must be finite and >= 0)");
      }
      if (!per_len || *per_len < 0.0) {
        return parse_error(lineno, "bad per-length cost '" + t[5] +
                                       "' for link '" + t[1] +
                                       "' (must be finite and >= 0)");
      }
      links.push_back(commlib::Link{.name = t[1],
                                    .max_span = *span,
                                    .bandwidth = *bw,
                                    .fixed_cost = *fixed,
                                    .cost_per_length = *per_len});
    } else if (t[0] == "node") {
      if (t.size() != 4) return parse_error(lineno, "node takes: name kind cost");
      if (!node_names.insert(t[1]).second) {
        return parse_error(lineno, "duplicate node name '" + t[1] + "'");
      }
      commlib::NodeKind kind;
      if (t[2] == "repeater") {
        kind = commlib::NodeKind::kRepeater;
      } else if (t[2] == "mux") {
        kind = commlib::NodeKind::kMux;
      } else if (t[2] == "demux") {
        kind = commlib::NodeKind::kDemux;
      } else if (t[2] == "switch") {
        kind = commlib::NodeKind::kSwitch;
      } else {
        return parse_error(lineno, "unknown node kind '" + t[2] + "'");
      }
      const std::optional<double> cost = parse_finite(t[3]);
      if (!cost || *cost < 0.0) {
        return parse_error(lineno, "bad cost '" + t[3] + "' for node '" +
                                       t[1] + "' (must be finite and >= 0)");
      }
      nodes.push_back(
          commlib::Node{.name = t[1], .kind = kind, .cost = *cost});
    } else {
      return parse_error(lineno, "unknown directive '" + t[0] + "'");
    }
  }
  if (in.bad()) {
    return Status::ParseError(
        "I/O error after line " + std::to_string(lineno) +
        "; the input stream is truncated or unreadable");
  }
  commlib::Library out(name);
  for (commlib::Link& l : links) {
    auto added = out.try_add_link(std::move(l));
    if (!added.ok()) {
      return std::move(added).take_status().with_context("reading library");
    }
  }
  for (commlib::Node& n : nodes) {
    auto added = out.try_add_node(std::move(n));
    if (!added.ok()) {
      return std::move(added).take_status().with_context("reading library");
    }
  }
  return out;
}

Expected<commlib::Library> read_library_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_library(is);
}

std::string write_library(const commlib::Library& lib) {
  std::ostringstream os;
  os.precision(17);
  os << "library " << lib.name() << '\n';
  for (const commlib::Link& l : lib.links()) {
    os << "link " << l.name << ' ';
    if (std::isinf(l.max_span)) {
      os << "inf";
    } else {
      os << l.max_span;
    }
    os << ' ' << l.bandwidth << ' ' << l.fixed_cost << ' ' << l.cost_per_length
       << '\n';
  }
  for (const commlib::Node& n : lib.nodes()) {
    os << "node " << n.name << ' ' << commlib::to_string(n.kind) << ' '
       << n.cost << '\n';
  }
  return os.str();
}

}  // namespace cdcs::io
