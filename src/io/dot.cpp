#include "io/dot.hpp"

#include <array>
#include <sstream>

namespace cdcs::io {
namespace {

constexpr std::array<const char*, 4> kLinkStyles = {"dashed", "solid",
                                                    "dotted", "bold"};

std::string pos_attr(geom::Point2D p) {
  std::ostringstream os;
  os << "pos=\"" << p.x << ',' << p.y << "!\"";
  return os.str();
}

}  // namespace

std::string to_dot(const model::ConstraintGraph& cg) {
  std::ostringstream os;
  os << "digraph constraints {\n  node [shape=ellipse];\n";
  for (model::VertexId v : cg.ports()) {
    os << "  v" << v.index() << " [label=\"" << cg.port(v).name << "\", "
       << pos_attr(cg.position(v)) << "];\n";
  }
  for (model::ArcId a : cg.arcs()) {
    os << "  v" << cg.source(a).index() << " -> v" << cg.target(a).index()
       << " [label=\"" << cg.channel(a).name << " d=" << cg.distance(a)
       << " b=" << cg.bandwidth(a) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const model::ImplementationGraph& impl) {
  const auto& cg = impl.constraints();
  const auto& lib = impl.library();
  std::ostringstream os;
  os << "digraph implementation {\n";
  for (std::size_t i = 0; i < impl.num_vertices(); ++i) {
    const model::VertexId v{static_cast<std::uint32_t>(i)};
    if (impl.is_computational(v)) {
      os << "  v" << i << " [shape=ellipse, label=\"" << cg.port(v).name
         << "\", " << pos_attr(impl.position(v)) << "];\n";
    } else {
      os << "  v" << i << " [shape=box, label=\""
         << lib.node(impl.comm_vertex(v).node).name << "\", "
         << pos_attr(impl.position(v)) << "];\n";
    }
  }
  for (std::size_t i = 0; i < impl.num_link_arcs(); ++i) {
    const model::ArcId a{static_cast<std::uint32_t>(i)};
    const auto& la = impl.link_arc(a);
    os << "  v" << impl.arc_source(a).index() << " -> v"
       << impl.arc_target(a).index() << " [label=\"" << lib.link(la.link).name
       << "\", style=" << kLinkStyles[la.link % kLinkStyles.size()] << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace cdcs::io
