// Plain-text interchange formats for constraint graphs and communication
// libraries, so workloads and libraries can be stored beside the code and
// exchanged with other tools.
//
// Constraint graph format (one directive per line, '#' comments):
//     norm euclidean|manhattan|chebyshev
//     port <name> <x> <y>
//     channel <name> <src-port> <dst-port> <bandwidth>
//
// Library format:
//     library <name>
//     link <name> <max_span|inf> <bandwidth> <fixed_cost> <cost_per_length>
//     node <name> repeater|mux|demux|switch <cost>
#pragma once

#include <iosfwd>
#include <string>

#include "commlib/library.hpp"
#include "model/constraint_graph.hpp"

namespace cdcs::io {

/// Parses the constraint-graph format; throws std::runtime_error with a
/// line-numbered message on malformed input.
model::ConstraintGraph read_constraint_graph(std::istream& in);
model::ConstraintGraph read_constraint_graph_from_string(const std::string& text);

std::string write_constraint_graph(const model::ConstraintGraph& cg);

commlib::Library read_library(std::istream& in);
commlib::Library read_library_from_string(const std::string& text);

std::string write_library(const commlib::Library& lib);

}  // namespace cdcs::io
