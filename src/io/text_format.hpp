// Plain-text interchange formats for constraint graphs and communication
// libraries, so workloads and libraries can be stored beside the code and
// exchanged with other tools.
//
// Constraint graph format (one directive per line, '#' comments):
//     norm euclidean|manhattan|chebyshev
//     port <name> <x> <y>
//     channel <name> <src-port> <dst-port> <bandwidth>
//
// Library format:
//     library <name>
//     link <name> <max_span|inf> <bandwidth> <fixed_cost> <cost_per_length>
//     node <name> repeater|mux|demux|switch <cost>
//
// The readers never throw: malformed input -- unknown directives, wrong
// field counts, unparseable or out-of-range numbers, non-finite coordinates
// or bandwidths, duplicate port/channel/link/node names, references to
// undefined ports, self-loop channels, I/O errors on truncated streams --
// comes back as a kParseError Status with a line-numbered message.
#pragma once

#include <iosfwd>
#include <string>

#include "commlib/library.hpp"
#include "model/constraint_graph.hpp"
#include "support/status.hpp"

namespace cdcs::io {

support::Expected<model::ConstraintGraph> read_constraint_graph(
    std::istream& in);
support::Expected<model::ConstraintGraph> read_constraint_graph_from_string(
    const std::string& text);

std::string write_constraint_graph(const model::ConstraintGraph& cg);

support::Expected<commlib::Library> read_library(std::istream& in);
support::Expected<commlib::Library> read_library_from_string(
    const std::string& text);

std::string write_library(const commlib::Library& lib);

}  // namespace cdcs::io
