#include "io/journal.hpp"

#include <array>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>

#include "io/edit_script.hpp"
#include "io/text_format.hpp"
#include "support/flight_recorder.hpp"
#include "support/metrics.hpp"

namespace cdcs::io {
namespace {

namespace fs = std::filesystem;
using support::Status;

constexpr std::string_view kGraphTag = "graph\n";
constexpr std::string_view kDeltaTag = "delta\n";
constexpr std::size_t kHeaderBytes = 8;  // u32 length + u32 crc
/// Sanity ceiling on a record's payload length. A torn header can decode
/// to any u32; lengths past this are treated as part of the torn tail
/// rather than attempted as allocations.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 30;

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> kTable = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return kTable;
}

void put_u32_le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t get_u32_le(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

std::string encode_record(const std::string& payload) {
  std::string record;
  record.reserve(kHeaderBytes + payload.size());
  put_u32_le(record, static_cast<std::uint32_t>(payload.size()));
  put_u32_le(record, crc32(payload));
  record += payload;
  return record;
}

/// Best-effort truncate of `path` back to `size` bytes (clears a torn
/// record before a retry or after a failed append).
Status truncate_file(const std::string& path, std::uint64_t size) {
  std::error_code ec;
  fs::resize_file(path, size, ec);
  if (ec) {
    return Status::Internal("cannot truncate journal '" + path + "' to " +
                            std::to_string(size) + " bytes: " + ec.message());
  }
  return Status::Ok();
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

support::Expected<JournalWriter> JournalWriter::create(
    std::string path, const model::ConstraintGraph& base,
    JournalOptions options) {
  JournalWriter w;
  w.path_ = std::move(path);
  w.options_ = std::move(options);
  if (w.fires(support::fault_sites::kJournalOpen)) {
    return Status::Internal("injected fault at " +
                            std::string(support::fault_sites::kJournalOpen) +
                            " opening journal '" + w.path_ + "'");
  }
  {
    std::ofstream out(w.path_, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot create journal '" + w.path_ + "'");
    }
    out.write(kJournalMagic.data(),
              static_cast<std::streamsize>(kJournalMagic.size()));
    out.flush();
    if (!out) {
      return Status::Internal("cannot write journal magic to '" + w.path_ +
                              "'");
    }
  }
  w.end_offset_ = kJournalMagic.size();
  w.open_ = true;
  Status s = w.append_record(std::string(kGraphTag) +
                             write_constraint_graph(base));
  if (!s.ok()) {
    return std::move(s).with_context("writing base snapshot to journal '" +
                                     w.path_ + "'");
  }
  return w;
}

support::Expected<JournalWriter> JournalWriter::append_to(
    std::string path, std::uint64_t valid_prefix_bytes,
    std::vector<std::uint64_t> record_offsets, JournalOptions options) {
  JournalWriter w;
  w.path_ = std::move(path);
  w.options_ = std::move(options);
  if (w.fires(support::fault_sites::kJournalOpen)) {
    return Status::Internal("injected fault at " +
                            std::string(support::fault_sites::kJournalOpen) +
                            " reopening journal '" + w.path_ + "'");
  }
  std::error_code ec;
  const std::uint64_t size = fs::file_size(w.path_, ec);
  if (ec) {
    return Status::Internal("cannot stat journal '" + w.path_ +
                            "': " + ec.message());
  }
  if (size < valid_prefix_bytes) {
    return Status::InvalidInput(
        "journal '" + w.path_ + "' is " + std::to_string(size) +
        " bytes, shorter than its claimed valid prefix of " +
        std::to_string(valid_prefix_bytes));
  }
  if (size > valid_prefix_bytes) {  // heal the torn tail
    Status s = truncate_file(w.path_, valid_prefix_bytes);
    if (!s.ok()) return s;
    support::MetricsRegistry::global()
        .counter("io.journal.truncations")
        .add(1);
  }
  w.end_offset_ = valid_prefix_bytes;
  w.record_offsets_ = std::move(record_offsets);
  w.open_ = true;
  return w;
}

support::Status JournalWriter::append_delta(const model::Delta& delta) {
  EditScript script;
  script.batches.push_back(delta);
  return append_record(std::string(kDeltaTag) + write_edit_script(script));
}

support::Status JournalWriter::append_record(const std::string& payload) {
  if (!open_) {
    return Status::Internal("append to a closed journal writer");
  }
  const std::string record = encode_record(payload);
  auto& registry = support::MetricsRegistry::global();
  Status last_failure;
  const int attempts = options_.max_write_attempts < 1
                           ? 1
                           : options_.max_write_attempts;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      registry.counter("io.journal.retries").add(1);
      if (options_.backoff_base_ms != 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            static_cast<unsigned>(attempt - 1) * options_.backoff_base_ms));
      }
    }
    if (fires(support::fault_sites::kJournalWrite)) {
      // Simulate a torn write: half the record lands, then the write
      // "fails". The truncate below (and read_journal's torn-tail
      // handling) must both cope.
      {
        // Scoped so the stream is flushed and CLOSED before the truncate
        // below -- a live ofstream would re-extend the file from its
        // buffer when destroyed after fs::resize_file.
        std::ofstream out(path_, std::ios::binary | std::ios::in |
                                     std::ios::out);
        if (out) {
          out.seekp(static_cast<std::streamoff>(end_offset_));
          out.write(record.data(),
                    static_cast<std::streamsize>(record.size() / 2));
        }
      }
      last_failure = Status::Internal(
          "injected fault at " +
          std::string(support::fault_sites::kJournalWrite));
      (void)truncate_file(path_, end_offset_);
      continue;
    }
    {
      std::ofstream out(path_,
                        std::ios::binary | std::ios::in | std::ios::out);
      if (!out) {
        last_failure =
            Status::Internal("cannot open journal '" + path_ + "'");
        continue;
      }
      out.seekp(static_cast<std::streamoff>(end_offset_));
      out.write(record.data(), static_cast<std::streamsize>(record.size()));
      out.flush();
      if (!out) {
        last_failure = Status::Internal("short write appending " +
                                        std::to_string(record.size()) +
                                        " bytes to journal '" + path_ + "'");
        (void)truncate_file(path_, end_offset_);
        continue;
      }
    }
    if (fires(support::fault_sites::kJournalFsync)) {
      // A failed sync leaves the record's durability unknown; re-write it
      // from the record boundary so the retry re-establishes a known
      // state.
      last_failure = Status::Internal(
          "injected fault at " +
          std::string(support::fault_sites::kJournalFsync));
      (void)truncate_file(path_, end_offset_);
      continue;
    }
    record_offsets_.push_back(end_offset_);
    end_offset_ += record.size();
    registry.counter("io.journal.appends").add(1);
    registry.counter("io.journal.bytes").add(record.size());
    support::flight_record(
        "journal", "append record=" +
                       std::to_string(record_offsets_.size() - 1) +
                       " bytes=" + std::to_string(record.size()));
    return Status::Ok();
  }
  return std::move(last_failure)
      .with_context("journal append failed after " +
                    std::to_string(attempts) + " attempt(s)");
}

support::Status JournalWriter::truncate_last_record() {
  if (!open_) {
    return Status::Internal("truncate on a closed journal writer");
  }
  if (record_offsets_.size() <= 1) {
    return Status::Internal(
        "cannot truncate the base snapshot out of journal '" + path_ + "'");
  }
  const std::uint64_t new_end = record_offsets_.back();
  Status s = truncate_file(path_, new_end);
  if (!s.ok()) return s;
  record_offsets_.pop_back();
  end_offset_ = new_end;
  support::MetricsRegistry::global().counter("io.journal.truncations").add(1);
  return Status::Ok();
}

support::Expected<JournalContents> read_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidInput("cannot open journal '" + path + "'");
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::Internal("I/O error reading journal '" + path + "'");
  }
  if (data.size() < kJournalMagic.size() ||
      std::string_view(data).substr(0, kJournalMagic.size()) !=
          kJournalMagic) {
    return Status::ParseError("'" + path + "' is not a journal (bad magic; " +
                              "expected leading \"" +
                              std::string(kJournalMagic) + "\")");
  }

  JournalContents contents;
  std::size_t pos = kJournalMagic.size();
  bool have_base = false;
  while (pos < data.size()) {
    // Torn-tail checks: anything that a crash mid-append can produce
    // (short header, implausible or short payload, checksum mismatch)
    // ends the valid prefix cleanly.
    if (data.size() - pos < kHeaderBytes) break;
    const std::uint32_t length = get_u32_le(data.data() + pos);
    const std::uint32_t crc = get_u32_le(data.data() + pos + 4);
    if (length > kMaxPayloadBytes) break;
    if (data.size() - pos - kHeaderBytes < length) break;
    const std::string_view payload(data.data() + pos + kHeaderBytes, length);
    if (crc32(payload) != crc) break;

    // The checksum held, so the payload is exactly what was written; any
    // parse failure from here is corruption, not a torn tail.
    const std::uint64_t record_number = contents.records_recovered + 1;
    const std::string where = "journal '" + path + "' record " +
                              std::to_string(record_number) + " at offset " +
                              std::to_string(pos);
    if (payload.substr(0, kGraphTag.size()) == kGraphTag) {
      if (have_base) {
        return Status::ParseError(where + ": unexpected second base snapshot");
      }
      auto graph = read_constraint_graph_from_string(
          std::string(payload.substr(kGraphTag.size())));
      if (!graph.ok()) {
        return std::move(graph).take_status().with_context(
            where + " (base snapshot)");
      }
      contents.base = *std::move(graph);
      have_base = true;
    } else if (payload.substr(0, kDeltaTag.size()) == kDeltaTag) {
      if (!have_base) {
        return Status::ParseError(where +
                                  ": delta record before the base snapshot");
      }
      auto script = read_edit_script_from_string(
          std::string(payload.substr(kDeltaTag.size())));
      if (!script.ok()) {
        return std::move(script).take_status().with_context(where +
                                                            " (delta batch)");
      }
      if (script->batches.size() != 1) {
        return Status::ParseError(
            where + ": expected exactly one delta batch, got " +
            std::to_string(script->batches.size()));
      }
      contents.deltas.push_back(std::move(script->batches.front()));
    } else {
      return Status::ParseError(where + ": unknown record tag");
    }
    pos += kHeaderBytes + length;
    contents.record_offsets.push_back(
        static_cast<std::uint64_t>(pos - kHeaderBytes - length));
    contents.records_recovered = record_number;
    contents.valid_prefix_bytes = pos;
  }

  if (!have_base) {
    return Status::ParseError(
        "journal '" + path + "' has no complete base snapshot (" +
        std::to_string(data.size() - kJournalMagic.size()) +
        " byte(s) of torn tail after the magic)");
  }
  contents.bytes_dropped = data.size() - pos;
  support::MetricsRegistry::global()
      .counter("io.journal.recovered_records")
      .add(contents.records_recovered);
  return contents;
}

}  // namespace cdcs::io
