#include "io/report.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>

#include "ucp/cover_solver.hpp"

namespace cdcs::io {
namespace {

std::string arc_list(const std::vector<model::ArcId>& arcs,
                     const model::ConstraintGraph& cg) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    if (i > 0) os << ',';
    os << cg.channel(arcs[i]).name;
  }
  os << '}';
  return os.str();
}

std::string plan_summary(const synth::PtpPlan& plan,
                         const commlib::Library& lib) {
  std::ostringstream os;
  os << lib.link(plan.link).name;
  if (plan.segments > 1) os << " x" << plan.segments << " segments";
  if (plan.parallel > 1) os << " x" << plan.parallel << " parallel";
  return os.str();
}

}  // namespace

std::string describe_candidate(const synth::Candidate& c,
                               const model::ConstraintGraph& cg,
                               const commlib::Library& lib) {
  std::ostringstream os;
  if (c.ptp) {
    os << cg.channel(c.arcs.front()).name << ": point-to-point "
       << plan_summary(*c.ptp, lib);
  } else if (c.merging) {
    const synth::MergingPlan& m = *c.merging;
    os << "merge " << arc_list(c.arcs, cg) << " via "
       << plan_summary(*m.trunk, lib) << " trunk (" << m.trunk_bandwidth
       << " bw)";
    if (m.has_hub) os << ", hub at " << m.hub_pos;
    if (m.has_split) os << ", split at " << m.split_pos;
  } else if (c.chain) {
    const synth::ChainPlan& ch = *c.chain;
    os << "chain-merge " << arc_list(c.arcs, cg) << " ("
       << (ch.source_rooted ? "source" : "target") << "-rooted, "
       << ch.drop_pos.size() << " drops, first segment "
       << plan_summary(ch.segments.front(), lib) << " @ "
       << ch.segment_bandwidth.front() << " bw)";
  } else if (c.tree) {
    const synth::TreePlan& t = *c.tree;
    std::size_t junctions = 0;
    for (bool j : t.is_junction) junctions += j;
    os << "tree-merge " << arc_list(c.arcs, cg) << " ("
       << (t.source_rooted ? "source" : "target") << "-rooted, "
       << t.edges.size() << " edges, " << junctions << " junctions)";
  }
  os << ", cost " << c.cost;
  return os.str();
}

std::string describe(const synth::SynthesisResult& result,
                     const model::ConstraintGraph& cg,
                     const commlib::Library& lib, bool include_perf_line) {
  std::ostringstream os;
  const auto& stats = result.candidate_set.stats;

  os << "Candidate set: " << cg.num_channels() << " point-to-point";
  for (std::size_t k = 2; k < stats.survivors_per_k.size(); ++k) {
    if (stats.survivors_per_k[k] > 0) {
      os << ", " << stats.survivors_per_k[k] << " " << k << "-way";
    }
  }
  os << " (" << result.candidates().size() << " UCP columns)\n";

  std::size_t grid_skips = 0;
  for (std::size_t s : stats.grid_prefilter_skips_per_k) grid_skips += s;
  if (grid_skips > 0) {
    os << "  grid pre-filter skipped " << grid_skips
       << " geometrically distant subset" << (grid_skips == 1 ? "" : "s")
       << "\n";
  }

  for (std::size_t i = 0; i < stats.arc_eliminated_after_k.size(); ++i) {
    if (stats.arc_eliminated_after_k[i] > 0) {
      os << "  " << cg.channel(model::ArcId{static_cast<std::uint32_t>(i)}).name
         << " eliminated from mergings after k="
         << stats.arc_eliminated_after_k[i] << "\n";
    }
  }

  os << "Selected implementation (cost " << result.total_cost << "):\n";
  for (const synth::Candidate* c : result.selected()) {
    os << "  " << describe_candidate(*c, cg, lib) << '\n';
  }
  os << "UCP: " << (result.cover.optimal ? "proven optimal" : "incumbent")
     << " in " << result.cover.nodes_explored << " nodes";
  if (!result.cover.backend.empty()) {
    os << " via " << result.cover.backend;
  }
  os << '\n';
  if (!result.cover.portfolio.empty()) {
    os << "  portfolio:";
    for (const ucp::PortfolioMember& member : result.cover.portfolio) {
      os << ' ' << member.backend << '=' << ucp::to_string(member.outcome);
    }
    os << '\n';
  }
  if (include_perf_line &&
      (stats.threads_used > 1 ||
       stats.pricing_cache_hits + stats.pricing_cache_misses > 0)) {
    os << "Perf: " << stats.threads_used << " pricing thread"
       << (stats.threads_used == 1 ? "" : "s");
    const std::size_t probes =
        stats.pricing_cache_hits + stats.pricing_cache_misses;
    if (probes > 0) {
      os << ", pricing cache " << stats.pricing_cache_hits << "/" << probes
         << " hits";
    }
    os << '\n';
  }
  const synth::DegradationReport& deg = result.degradation;
  os << "Stage: " << synth::to_string(deg.stage);
  if (deg.degraded()) {
    os << " (" << deg.reason << "; lower bound " << deg.lower_bound
       << ", optimality gap " << deg.optimality_gap * 100.0 << "%)";
  } else if (deg.lower_bound > 0.0) {
    // Exact runs carry a meaningful bound too (== the achieved cost, gap
    // 0%); print it whenever it exists so every run reports how far from
    // the proven floor it landed, not only the degraded ones.
    os << " (lower bound " << deg.lower_bound << ", optimality gap "
       << deg.optimality_gap * 100.0 << "%)";
  }
  os << '\n';
  os << "Validation: "
     << (result.validation.ok() ? "PASS" : "FAIL") << '\n';
  for (const std::string& p : result.validation.problems) {
    os << "  problem: " << p << '\n';
  }
  return os.str();
}

namespace {

std::uint64_t counter_or(const support::MetricsSnapshot& m,
                         const std::string& name) {
  const auto it = m.counters.find(name);
  return it == m.counters.end() ? 0 : it->second;
}

double gauge_or(const support::MetricsSnapshot& m, const std::string& name) {
  const auto it = m.gauges.find(name);
  return it == m.gauges.end() ? 0.0 : it->second;
}

std::string ms_of_us(double us) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << us / 1000.0 << " ms";
  return os.str();
}

std::string pct(std::uint64_t part, std::uint64_t whole) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << (whole == 0
             ? 0.0
             : 100.0 * static_cast<double>(part) / static_cast<double>(whole))
     << "%";
  return os.str();
}

}  // namespace

std::string describe_perf(const support::MetricsSnapshot& m,
                          const synth::SynthesisResult* result) {
  std::ostringstream os;
  os << "Perf:\n";

  // Per-stage wall time; present only when timing was enabled for the run.
  static constexpr const char* kStages[] = {"generate", "cover", "ladder",
                                            "assemble", "validate"};
  std::uint64_t total_us = 0;
  for (const char* stage : kStages) {
    total_us += counter_or(m, std::string("synth.stage.") + stage + ".wall_us");
  }
  if (total_us > 0) {
    os << "  stages (wall):";
    const char* sep = " ";
    for (const char* stage : kStages) {
      const std::uint64_t us =
          counter_or(m, std::string("synth.stage.") + stage + ".wall_us");
      os << sep << stage << " " << ms_of_us(static_cast<double>(us));
      sep = ", ";
    }
    os << "\n";
  }

  const std::uint64_t hits = counter_or(m, "synth.pricing_cache.hits");
  const std::uint64_t misses = counter_or(m, "synth.pricing_cache.misses");
  os << "  pricing: " << counter_or(m, "synth.subsets_examined")
     << " subset(s) examined, cache " << hits << "/" << (hits + misses)
     << " hits (" << pct(hits, hits + misses) << ")";
  if (const std::uint64_t ev = counter_or(m, "synth.pricing_cache.evictions");
      ev > 0) {
    os << ", " << ev << " eviction(s)";
  }
  os << "\n";
  os << "  pricers: ptp " << counter_or(m, "pricer.ptp.calls") << ", star "
     << counter_or(m, "pricer.star.calls") << ", chain "
     << counter_or(m, "pricer.chain.calls") << ", tree "
     << counter_or(m, "pricer.tree.calls") << " call(s)";
  if (const auto it = m.histograms.find("pricer.subset.us");
      it != m.histograms.end() && it->second.count > 0) {
    os << "; subset pricing mean " << ms_of_us(it->second.mean());
  }
  os << "\n";

  os << "  ucp: " << counter_or(m, "ucp.solves") << " solve(s)";
  if (const std::uint64_t dp = counter_or(m, "ucp.dp_solves"); dp > 0) {
    os << " (" << dp << " dense-DP)";
  }
  os << ", " << counter_or(m, "ucp.cover_reuses") << " cover reuse(s), "
     << counter_or(m, "ucp.nodes_explored") << " node(s), "
     << counter_or(m, "ucp.incumbent_updates") << " incumbent update(s), "
     << counter_or(m, "ucp.rc_fixed_columns")
     << " column(s) fixed by reduced cost\n";

  // Per-backend solve/node counters ("ucp.backend.<name>.solves"/".nodes"),
  // emitted by solve_exact's registry dispatch. std::map keys keep the
  // listing alphabetical, hence deterministic.
  {
    const std::string prefix = "ucp.backend.";
    const std::string solves_suffix = ".solves";
    bool first = true;
    for (const auto& [name, value] : m.counters) {
      if (name.rfind(prefix, 0) != 0 ||
          name.size() <= prefix.size() + solves_suffix.size() ||
          name.compare(name.size() - solves_suffix.size(),
                       solves_suffix.size(), solves_suffix) != 0) {
        continue;
      }
      const std::string backend = name.substr(
          prefix.size(), name.size() - prefix.size() - solves_suffix.size());
      os << (first ? "  backends:" : ",") << " " << backend << " " << value
         << " solve(s)/"
         << counter_or(m, prefix + backend + ".nodes") << " node(s)";
      first = false;
    }
    if (!first) os << "\n";
  }

  // Why the winning solve stopped -- and, when the ladder had to step past
  // exact, which rung and why. Degraded runs are diagnosable from the
  // report alone.
  if (result != nullptr) {
    os << "  cover stop: " << ucp::to_string(result->cover.stop);
    if (!result->cover.backend.empty()) {
      os << " (backend " << result->cover.backend << ")";
    }
    os << "\n";
    if (result->degradation.degraded()) {
      os << "  degradation: stage=" << to_string(result->degradation.stage)
         << " -- " << result->degradation.reason << "\n";
    }
  }

  // Portfolio race outcomes ("ucp.portfolio.<outcome>.<backend>").
  {
    const std::string prefix = "ucp.portfolio.";
    bool first = true;
    for (const auto& [name, value] : m.counters) {
      if (name.rfind(prefix, 0) != 0) continue;
      os << (first ? "  portfolio:" : ",") << " "
         << name.substr(prefix.size()) << " x" << value;
      first = false;
    }
    if (!first) os << "\n";
  }

  if (const std::uint64_t degraded = counter_or(m, "synth.degraded_runs");
      degraded > 0) {
    os << "  degraded: " << degraded << " of " << counter_or(m, "synth.runs")
       << " run(s)\n";
  }

  const auto tasks = m.histograms.find("thread_pool.task.us");
  const double peak_depth = gauge_or(m, "thread_pool.queue_depth");
  if (peak_depth > 0.0 ||
      (tasks != m.histograms.end() && tasks->second.count > 0)) {
    os << "  thread pool: peak queue depth "
       << static_cast<std::uint64_t>(peak_depth);
    if (tasks != m.histograms.end() && tasks->second.count > 0) {
      os << ", " << tasks->second.count << " task(s), mean "
         << ms_of_us(tasks->second.mean());
    }
    os << "\n";
  }
  return os.str();
}

std::string describe_profile(const std::vector<support::ProfileEntry>& entries,
                             std::size_t top_n) {
  std::ostringstream os;
  os << "Profile (top " << std::min(top_n, entries.size()) << " of "
     << entries.size() << " span(s), by total time):\n";
  // Entries arrive in (scope, name) key order; rank hotspots by inclusive
  // time with the deterministic key order as the tie-break.
  std::vector<const support::ProfileEntry*> ranked;
  ranked.reserve(entries.size());
  for (const support::ProfileEntry& e : entries) ranked.push_back(&e);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const support::ProfileEntry* a,
                      const support::ProfileEntry* b) {
                     return a->total_us > b->total_us;
                   });
  if (ranked.size() > top_n) ranked.resize(top_n);
  for (const support::ProfileEntry* e : ranked) {
    os << "  " << e->name;
    if (!e->scope.empty()) os << " [" << e->scope << "]";
    const double mean_us =
        e->count == 0 ? 0.0
                      : static_cast<double>(e->total_us) /
                            static_cast<double>(e->count);
    os << ": " << e->count << " call(s), total "
       << ms_of_us(static_cast<double>(e->total_us)) << ", self "
       << ms_of_us(static_cast<double>(e->self_us)) << ", max "
       << ms_of_us(static_cast<double>(e->max_us)) << ", mean "
       << ms_of_us(mean_us) << "\n";
  }
  return os.str();
}

}  // namespace cdcs::io
