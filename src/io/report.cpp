#include "io/report.hpp"

#include <sstream>

namespace cdcs::io {
namespace {

std::string arc_list(const std::vector<model::ArcId>& arcs,
                     const model::ConstraintGraph& cg) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    if (i > 0) os << ',';
    os << cg.channel(arcs[i]).name;
  }
  os << '}';
  return os.str();
}

std::string plan_summary(const synth::PtpPlan& plan,
                         const commlib::Library& lib) {
  std::ostringstream os;
  os << lib.link(plan.link).name;
  if (plan.segments > 1) os << " x" << plan.segments << " segments";
  if (plan.parallel > 1) os << " x" << plan.parallel << " parallel";
  return os.str();
}

}  // namespace

std::string describe_candidate(const synth::Candidate& c,
                               const model::ConstraintGraph& cg,
                               const commlib::Library& lib) {
  std::ostringstream os;
  if (c.ptp) {
    os << cg.channel(c.arcs.front()).name << ": point-to-point "
       << plan_summary(*c.ptp, lib);
  } else if (c.merging) {
    const synth::MergingPlan& m = *c.merging;
    os << "merge " << arc_list(c.arcs, cg) << " via "
       << plan_summary(*m.trunk, lib) << " trunk (" << m.trunk_bandwidth
       << " bw)";
    if (m.has_hub) os << ", hub at " << m.hub_pos;
    if (m.has_split) os << ", split at " << m.split_pos;
  } else if (c.chain) {
    const synth::ChainPlan& ch = *c.chain;
    os << "chain-merge " << arc_list(c.arcs, cg) << " ("
       << (ch.source_rooted ? "source" : "target") << "-rooted, "
       << ch.drop_pos.size() << " drops, first segment "
       << plan_summary(ch.segments.front(), lib) << " @ "
       << ch.segment_bandwidth.front() << " bw)";
  } else if (c.tree) {
    const synth::TreePlan& t = *c.tree;
    std::size_t junctions = 0;
    for (bool j : t.is_junction) junctions += j;
    os << "tree-merge " << arc_list(c.arcs, cg) << " ("
       << (t.source_rooted ? "source" : "target") << "-rooted, "
       << t.edges.size() << " edges, " << junctions << " junctions)";
  }
  os << ", cost " << c.cost;
  return os.str();
}

std::string describe(const synth::SynthesisResult& result,
                     const model::ConstraintGraph& cg,
                     const commlib::Library& lib) {
  std::ostringstream os;
  const auto& stats = result.candidate_set.stats;

  os << "Candidate set: " << cg.num_channels() << " point-to-point";
  for (std::size_t k = 2; k < stats.survivors_per_k.size(); ++k) {
    if (stats.survivors_per_k[k] > 0) {
      os << ", " << stats.survivors_per_k[k] << " " << k << "-way";
    }
  }
  os << " (" << result.candidates().size() << " UCP columns)\n";

  std::size_t grid_skips = 0;
  for (std::size_t s : stats.grid_prefilter_skips_per_k) grid_skips += s;
  if (grid_skips > 0) {
    os << "  grid pre-filter skipped " << grid_skips
       << " geometrically distant subset" << (grid_skips == 1 ? "" : "s")
       << "\n";
  }

  for (std::size_t i = 0; i < stats.arc_eliminated_after_k.size(); ++i) {
    if (stats.arc_eliminated_after_k[i] > 0) {
      os << "  " << cg.channel(model::ArcId{static_cast<std::uint32_t>(i)}).name
         << " eliminated from mergings after k="
         << stats.arc_eliminated_after_k[i] << "\n";
    }
  }

  os << "Selected implementation (cost " << result.total_cost << "):\n";
  for (const synth::Candidate* c : result.selected()) {
    os << "  " << describe_candidate(*c, cg, lib) << '\n';
  }
  os << "UCP: " << (result.cover.optimal ? "proven optimal" : "incumbent")
     << " in " << result.cover.nodes_explored << " nodes\n";
  if (stats.threads_used > 1 ||
      stats.pricing_cache_hits + stats.pricing_cache_misses > 0) {
    os << "Perf: " << stats.threads_used << " pricing thread"
       << (stats.threads_used == 1 ? "" : "s");
    const std::size_t probes =
        stats.pricing_cache_hits + stats.pricing_cache_misses;
    if (probes > 0) {
      os << ", pricing cache " << stats.pricing_cache_hits << "/" << probes
         << " hits";
    }
    os << '\n';
  }
  const synth::DegradationReport& deg = result.degradation;
  os << "Stage: " << synth::to_string(deg.stage);
  if (deg.degraded()) {
    os << " (" << deg.reason << "; lower bound " << deg.lower_bound
       << ", optimality gap " << deg.optimality_gap * 100.0 << "%)";
  }
  os << '\n';
  os << "Validation: "
     << (result.validation.ok() ? "PASS" : "FAIL") << '\n';
  for (const std::string& p : result.validation.problems) {
    os << "  problem: " << p << '\n';
  }
  return os.str();
}

}  // namespace cdcs::io
