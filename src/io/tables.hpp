// Paper-style table rendering. The DAC-2002 tables print values TRUNCATED
// (not rounded) to two decimals -- e.g. Gamma(a1,a2) = 10.3852... appears as
// 10.38 and Delta(a1,a2) = 9.0554... as 9.05 -- so the formatter reproduces
// truncation to match entry-for-entry.
#pragma once

#include <string>

#include "synth/gamma_delta.hpp"

namespace cdcs::io {

/// Truncates (toward zero) to `decimals` digits: truncate(10.389, 2) = "10.38".
std::string truncate_decimals(double value, int decimals = 2);

/// Renders the upper triangle of a symmetric arc-pair matrix in the layout
/// of the paper's Tables 1-2 (header row of arc names, blank lower triangle).
std::string format_arc_pair_matrix(const model::ConstraintGraph& cg,
                                   const synth::ArcPairMatrix& m,
                                   int decimals = 2);

}  // namespace cdcs::io
