// Plain-text serialization of implementation graphs, so synthesis results
// can be stored, diffed, and reloaded for analysis without re-running the
// synthesizer. The format references the constraint graph's channel names
// and the library's element names, both of which must be supplied when
// reading (an implementation graph is only meaningful relative to its
// constraint graph and library -- Def 2.4).
//
// Format (one directive per line, '#' comments):
//     implementation
//     comm_vertex <index> <node-name> <x> <y>
//     link_arc <index> <src-vertex> <dst-vertex> <link-name>
//     path <channel-name> <link-arc-index>...
//
// Vertex indices 0..|V|-1 are the computational vertices (in constraint-
// graph order); communication vertices continue from |V|. Indices are
// written explicitly and verified on read so files remain diffable and
// corruption is caught early.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "model/implementation_graph.hpp"
#include "support/status.hpp"

namespace cdcs::io {

std::string write_implementation(const model::ImplementationGraph& impl);

/// Parses and reconstructs an implementation graph over (cg, library).
/// Returns a line-numbered kParseError on malformed input, unknown element
/// names, index mismatches, or paths that violate the Def 2.4 shape checks
/// enforced by register_path. Never throws.
support::Expected<std::unique_ptr<model::ImplementationGraph>>
read_implementation(std::istream& in, const model::ConstraintGraph& cg,
                    const commlib::Library& library);

support::Expected<std::unique_ptr<model::ImplementationGraph>>
read_implementation_from_string(const std::string& text,
                                const model::ConstraintGraph& cg,
                                const commlib::Library& library);

}  // namespace cdcs::io
