// Edit-script format for incremental synthesis (synth/engine.hpp) -- the
// replay input of the --edit-script CLI mode and the data/edits/ corpus.
//
// One directive per line, '#' comments, names as in the constraint-graph
// text format (io/text_format.hpp):
//     add-port <name> <x> <y>
//     add-arc <name> <src-port> <dst-port> <bandwidth>
//     remove-arc <name>
//     set-bandwidth <name> <bandwidth>
//     move-port <name> <x> <y>
//     solve
//
// `solve` closes the current batch: the ops since the previous `solve` form
// one atomic model::Delta, and the engine re-synthesizes after each batch
// (a bare `solve` is a legal empty batch -- re-synthesize without edits).
// Trailing ops after the last `solve` form a final implicit batch.
//
// The reader never throws: malformed input (unknown directives, wrong field
// counts, non-finite or non-positive numbers, I/O errors) comes back as a
// kParseError Status with a line-numbered message. Name resolution is NOT
// done here -- an edit referencing an unknown port/channel parses fine and
// fails at apply_delta() time, which is what lets one script target many
// graphs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "model/delta.hpp"
#include "support/status.hpp"

namespace cdcs::io {

/// A parsed edit script: the deltas to apply in order, synthesizing after
/// each one.
struct EditScript {
  std::vector<model::Delta> batches;

  std::size_t total_ops() const {
    std::size_t n = 0;
    for (const model::Delta& d : batches) n += d.ops.size();
    return n;
  }
};

support::Expected<EditScript> read_edit_script(std::istream& in);
support::Expected<EditScript> read_edit_script_from_string(
    const std::string& text);

/// Inverse of the reader (canonical formatting, one batch per `solve`).
std::string write_edit_script(const EditScript& script);

}  // namespace cdcs::io
