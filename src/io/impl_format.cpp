#include "io/impl_format.hpp"

#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace cdcs::io {
namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error("line " + std::to_string(line) + ": " + message);
}

bool tokenize(const std::string& line, std::vector<std::string>& tokens) {
  tokens.clear();
  std::istringstream is(line.substr(0, line.find('#')));
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return !tokens.empty();
}

std::size_t parse_index(const std::string& tok, int line) {
  try {
    return std::stoul(tok);
  } catch (const std::exception&) {
    fail(line, "bad index '" + tok + "'");
  }
}

double parse_num(const std::string& tok, int line) {
  try {
    return std::stod(tok);
  } catch (const std::exception&) {
    fail(line, "bad number '" + tok + "'");
  }
}

}  // namespace

std::string write_implementation(const model::ImplementationGraph& impl) {
  const auto& cg = impl.constraints();
  const auto& lib = impl.library();
  std::ostringstream os;
  os.precision(17);
  os << "implementation\n";
  for (std::size_t i = cg.num_ports(); i < impl.num_vertices(); ++i) {
    const model::VertexId v{static_cast<std::uint32_t>(i)};
    const auto& cv = impl.comm_vertex(v);
    os << "comm_vertex " << i << ' ' << lib.node(cv.node).name << ' '
       << cv.position.x << ' ' << cv.position.y << '\n';
  }
  for (std::size_t i = 0; i < impl.num_link_arcs(); ++i) {
    const model::ArcId a{static_cast<std::uint32_t>(i)};
    os << "link_arc " << i << ' ' << impl.arc_source(a).index() << ' '
       << impl.arc_target(a).index() << ' '
       << lib.link(impl.link_arc(a).link).name << '\n';
  }
  for (model::ArcId ca : cg.arcs()) {
    for (const model::Path& q : impl.arc_implementation(ca)) {
      os << "path " << cg.channel(ca).name;
      for (model::ArcId la : q.arcs) os << ' ' << la.index();
      os << '\n';
    }
  }
  return os.str();
}

std::unique_ptr<model::ImplementationGraph> read_implementation(
    std::istream& in, const model::ConstraintGraph& cg,
    const commlib::Library& library) {
  auto impl = std::make_unique<model::ImplementationGraph>(cg, library);

  std::map<std::string, model::ArcId> channel_by_name;
  for (model::ArcId a : cg.arcs()) {
    channel_by_name.emplace(cg.channel(a).name, a);
  }

  std::string line;
  int lineno = 0;
  bool header_seen = false;
  std::size_t next_vertex = cg.num_ports();
  std::size_t next_arc = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::vector<std::string> t;
    if (!tokenize(line, t)) continue;
    if (t[0] == "implementation") {
      header_seen = true;
    } else if (t[0] == "comm_vertex") {
      if (t.size() != 5) fail(lineno, "comm_vertex takes: index node x y");
      if (parse_index(t[1], lineno) != next_vertex) {
        fail(lineno, "comm_vertex index mismatch (expected " +
                         std::to_string(next_vertex) + ")");
      }
      const auto node = library.find_node(t[2]);
      if (!node) fail(lineno, "unknown node '" + t[2] + "'");
      impl->add_comm_vertex(
          *node, {parse_num(t[3], lineno), parse_num(t[4], lineno)});
      ++next_vertex;
    } else if (t[0] == "link_arc") {
      if (t.size() != 5) fail(lineno, "link_arc takes: index src dst link");
      if (parse_index(t[1], lineno) != next_arc) {
        fail(lineno, "link_arc index mismatch (expected " +
                         std::to_string(next_arc) + ")");
      }
      const std::size_t src = parse_index(t[2], lineno);
      const std::size_t dst = parse_index(t[3], lineno);
      if (src >= impl->num_vertices() || dst >= impl->num_vertices()) {
        fail(lineno, "link_arc endpoint out of range");
      }
      const auto link = library.find_link(t[4]);
      if (!link) fail(lineno, "unknown link '" + t[4] + "'");
      try {
        impl->add_link_arc(model::VertexId{static_cast<std::uint32_t>(src)},
                           model::VertexId{static_cast<std::uint32_t>(dst)},
                           *link);
      } catch (const std::invalid_argument& e) {
        fail(lineno, e.what());
      }
      ++next_arc;
    } else if (t[0] == "path") {
      if (t.size() < 3) fail(lineno, "path takes: channel arc-indices...");
      const auto channel = channel_by_name.find(t[1]);
      if (channel == channel_by_name.end()) {
        fail(lineno, "unknown channel '" + t[1] + "'");
      }
      model::Path path;
      for (std::size_t i = 2; i < t.size(); ++i) {
        const std::size_t idx = parse_index(t[i], lineno);
        if (idx >= impl->num_link_arcs()) {
          fail(lineno, "path references unknown link arc");
        }
        path.arcs.push_back(model::ArcId{static_cast<std::uint32_t>(idx)});
      }
      try {
        impl->register_path(channel->second, std::move(path));
      } catch (const std::invalid_argument& e) {
        fail(lineno, e.what());
      }
    } else {
      fail(lineno, "unknown directive '" + t[0] + "'");
    }
  }
  if (!header_seen) {
    throw std::runtime_error("missing 'implementation' header");
  }
  return impl;
}

std::unique_ptr<model::ImplementationGraph> read_implementation_from_string(
    const std::string& text, const model::ConstraintGraph& cg,
    const commlib::Library& library) {
  std::istringstream is(text);
  return read_implementation(is, cg, library);
}

}  // namespace cdcs::io
