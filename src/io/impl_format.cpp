#include "io/impl_format.hpp"

#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace cdcs::io {

using support::Expected;
using support::Status;

namespace {

Status parse_error(int line, const std::string& message) {
  return Status::ParseError("line " + std::to_string(line) + ": " + message);
}

bool tokenize(const std::string& line, std::vector<std::string>& tokens) {
  tokens.clear();
  std::istringstream is(line.substr(0, line.find('#')));
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return !tokens.empty();
}

std::optional<std::size_t> parse_index(const std::string& tok) {
  if (tok.empty() || tok[0] == '-' || tok[0] == '+') return std::nullopt;
  try {
    std::size_t used = 0;
    const unsigned long v = std::stoul(tok, &used);
    if (used != tok.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<double> parse_num(const std::string& tok) {
  try {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

std::string write_implementation(const model::ImplementationGraph& impl) {
  const auto& cg = impl.constraints();
  const auto& lib = impl.library();
  std::ostringstream os;
  os.precision(17);
  os << "implementation\n";
  for (std::size_t i = cg.num_ports(); i < impl.num_vertices(); ++i) {
    const model::VertexId v{static_cast<std::uint32_t>(i)};
    const auto& cv = impl.comm_vertex(v);
    os << "comm_vertex " << i << ' ' << lib.node(cv.node).name << ' '
       << cv.position.x << ' ' << cv.position.y << '\n';
  }
  for (std::size_t i = 0; i < impl.num_link_arcs(); ++i) {
    const model::ArcId a{static_cast<std::uint32_t>(i)};
    os << "link_arc " << i << ' ' << impl.arc_source(a).index() << ' '
       << impl.arc_target(a).index() << ' '
       << lib.link(impl.link_arc(a).link).name << '\n';
  }
  for (model::ArcId ca : cg.arcs()) {
    for (const model::Path& q : impl.arc_implementation(ca)) {
      os << "path " << cg.channel(ca).name;
      for (model::ArcId la : q.arcs) os << ' ' << la.index();
      os << '\n';
    }
  }
  return os.str();
}

Expected<std::unique_ptr<model::ImplementationGraph>> read_implementation(
    std::istream& in, const model::ConstraintGraph& cg,
    const commlib::Library& library) {
  auto impl = std::make_unique<model::ImplementationGraph>(cg, library);

  std::map<std::string, model::ArcId> channel_by_name;
  for (model::ArcId a : cg.arcs()) {
    channel_by_name.emplace(cg.channel(a).name, a);
  }

  std::string line;
  int lineno = 0;
  bool header_seen = false;
  std::size_t next_vertex = cg.num_ports();
  std::size_t next_arc = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::vector<std::string> t;
    if (!tokenize(line, t)) continue;
    if (t[0] == "implementation") {
      header_seen = true;
    } else if (t[0] == "comm_vertex") {
      if (t.size() != 5) {
        return parse_error(lineno, "comm_vertex takes: index node x y");
      }
      const std::optional<std::size_t> idx = parse_index(t[1]);
      if (!idx) return parse_error(lineno, "bad index '" + t[1] + "'");
      if (*idx != next_vertex) {
        return parse_error(lineno, "comm_vertex index mismatch (expected " +
                                       std::to_string(next_vertex) + ")");
      }
      const auto node = library.find_node(t[2]);
      if (!node) return parse_error(lineno, "unknown node '" + t[2] + "'");
      const std::optional<double> x = parse_num(t[3]);
      const std::optional<double> y = parse_num(t[4]);
      if (!x || !y) {
        return parse_error(lineno, "bad coordinates '" + t[3] + "' '" + t[4] +
                                       "'");
      }
      impl->add_comm_vertex(*node, {*x, *y});
      ++next_vertex;
    } else if (t[0] == "link_arc") {
      if (t.size() != 5) {
        return parse_error(lineno, "link_arc takes: index src dst link");
      }
      const std::optional<std::size_t> idx = parse_index(t[1]);
      if (!idx) return parse_error(lineno, "bad index '" + t[1] + "'");
      if (*idx != next_arc) {
        return parse_error(lineno, "link_arc index mismatch (expected " +
                                       std::to_string(next_arc) + ")");
      }
      const std::optional<std::size_t> src = parse_index(t[2]);
      const std::optional<std::size_t> dst = parse_index(t[3]);
      if (!src || !dst) return parse_error(lineno, "bad endpoint index");
      if (*src >= impl->num_vertices() || *dst >= impl->num_vertices()) {
        return parse_error(lineno, "link_arc endpoint out of range");
      }
      const auto link = library.find_link(t[4]);
      if (!link) return parse_error(lineno, "unknown link '" + t[4] + "'");
      try {
        impl->add_link_arc(model::VertexId{static_cast<std::uint32_t>(*src)},
                           model::VertexId{static_cast<std::uint32_t>(*dst)},
                           *link);
      } catch (const std::exception& e) {
        return parse_error(lineno, e.what());
      }
      ++next_arc;
    } else if (t[0] == "path") {
      if (t.size() < 3) {
        return parse_error(lineno, "path takes: channel arc-indices...");
      }
      const auto channel = channel_by_name.find(t[1]);
      if (channel == channel_by_name.end()) {
        return parse_error(lineno, "unknown channel '" + t[1] + "'");
      }
      model::Path path;
      for (std::size_t i = 2; i < t.size(); ++i) {
        const std::optional<std::size_t> idx = parse_index(t[i]);
        if (!idx) return parse_error(lineno, "bad index '" + t[i] + "'");
        if (*idx >= impl->num_link_arcs()) {
          return parse_error(lineno, "path references unknown link arc");
        }
        path.arcs.push_back(model::ArcId{static_cast<std::uint32_t>(*idx)});
      }
      try {
        impl->register_path(channel->second, std::move(path));
      } catch (const std::exception& e) {
        return parse_error(lineno, e.what());
      }
    } else {
      return parse_error(lineno, "unknown directive '" + t[0] + "'");
    }
  }
  if (in.bad()) {
    return Status::ParseError(
        "I/O error after line " + std::to_string(lineno) +
        "; the input stream is truncated or unreadable");
  }
  if (!header_seen) {
    return Status::ParseError("missing 'implementation' header");
  }
  return impl;
}

Expected<std::unique_ptr<model::ImplementationGraph>>
read_implementation_from_string(const std::string& text,
                                const model::ConstraintGraph& cg,
                                const commlib::Library& library) {
  std::istringstream is(text);
  return read_implementation(is, cg, library);
}

}  // namespace cdcs::io
