#include "io/edit_script.hpp"

#include <cmath>
#include <optional>
#include <sstream>

namespace cdcs::io {

using support::Expected;
using support::Status;

namespace {

Status parse_error(int line, const std::string& message) {
  return Status::ParseError("line " + std::to_string(line) + ": " + message);
}

bool tokenize(const std::string& line, std::vector<std::string>& tokens) {
  tokens.clear();
  std::istringstream is(line.substr(0, line.find('#')));
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return !tokens.empty();
}

std::optional<double> parse_finite(const std::string& tok) {
  try {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size() || !std::isfinite(v)) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

Expected<EditScript> read_edit_script(std::istream& in) {
  EditScript script;
  model::Delta batch;

  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::vector<std::string> t;
    if (!tokenize(line, t)) continue;
    if (t[0] == "add-port") {
      if (t.size() != 4) {
        return parse_error(lineno, "add-port takes: name x y");
      }
      const std::optional<double> x = parse_finite(t[2]);
      const std::optional<double> y = parse_finite(t[3]);
      if (!x) {
        return parse_error(lineno, "bad x coordinate '" + t[2] +
                                       "' (must be a finite number)");
      }
      if (!y) {
        return parse_error(lineno, "bad y coordinate '" + t[3] +
                                       "' (must be a finite number)");
      }
      batch.ops.push_back(model::AddPortOp{t[1], {*x, *y}});
    } else if (t[0] == "add-arc") {
      if (t.size() != 5) {
        return parse_error(lineno, "add-arc takes: name src dst bandwidth");
      }
      const std::optional<double> bw = parse_finite(t[4]);
      if (!bw || *bw <= 0.0) {
        return parse_error(lineno, "bad bandwidth '" + t[4] + "' for arc '" +
                                       t[1] +
                                       "' (must be a finite positive number)");
      }
      batch.ops.push_back(model::AddArcOp{t[1], t[2], t[3], *bw});
    } else if (t[0] == "remove-arc") {
      if (t.size() != 2) return parse_error(lineno, "remove-arc takes: name");
      batch.ops.push_back(model::RemoveArcOp{t[1]});
    } else if (t[0] == "set-bandwidth") {
      if (t.size() != 3) {
        return parse_error(lineno, "set-bandwidth takes: name bandwidth");
      }
      const std::optional<double> bw = parse_finite(t[2]);
      if (!bw || *bw <= 0.0) {
        return parse_error(lineno, "bad bandwidth '" + t[2] + "' for arc '" +
                                       t[1] +
                                       "' (must be a finite positive number)");
      }
      batch.ops.push_back(model::SetBandwidthOp{t[1], *bw});
    } else if (t[0] == "move-port") {
      if (t.size() != 4) {
        return parse_error(lineno, "move-port takes: name x y");
      }
      const std::optional<double> x = parse_finite(t[2]);
      const std::optional<double> y = parse_finite(t[3]);
      if (!x) {
        return parse_error(lineno, "bad x coordinate '" + t[2] +
                                       "' (must be a finite number)");
      }
      if (!y) {
        return parse_error(lineno, "bad y coordinate '" + t[3] +
                                       "' (must be a finite number)");
      }
      batch.ops.push_back(model::MovePortOp{t[1], {*x, *y}});
    } else if (t[0] == "solve") {
      if (t.size() != 1) return parse_error(lineno, "solve takes no arguments");
      script.batches.push_back(std::move(batch));
      batch = {};
    } else {
      return parse_error(lineno, "unknown directive '" + t[0] + "'");
    }
  }
  if (in.bad()) {
    return Status::ParseError(
        "I/O error after line " + std::to_string(lineno) +
        "; the input stream is truncated or unreadable");
  }
  // Trailing ops without a closing `solve` form a final implicit batch.
  if (!batch.ops.empty()) script.batches.push_back(std::move(batch));
  return script;
}

Expected<EditScript> read_edit_script_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_edit_script(in);
}

std::string write_edit_script(const EditScript& script) {
  std::ostringstream out;
  out.precision(17);
  for (const model::Delta& batch : script.batches) {
    for (const model::EditOp& op : batch.ops) {
      if (const auto* p = std::get_if<model::AddPortOp>(&op)) {
        out << "add-port " << p->port << ' ' << p->position.x << ' '
            << p->position.y << '\n';
      } else if (const auto* a = std::get_if<model::AddArcOp>(&op)) {
        out << "add-arc " << a->channel << ' ' << a->source << ' '
            << a->target << ' ' << a->bandwidth << '\n';
      } else if (const auto* r = std::get_if<model::RemoveArcOp>(&op)) {
        out << "remove-arc " << r->channel << '\n';
      } else if (const auto* s = std::get_if<model::SetBandwidthOp>(&op)) {
        out << "set-bandwidth " << s->channel << ' ' << s->bandwidth << '\n';
      } else if (const auto* m = std::get_if<model::MovePortOp>(&op)) {
        out << "move-port " << m->port << ' ' << m->to.x << ' ' << m->to.y
            << '\n';
      }
    }
    out << "solve\n";
  }
  return out.str();
}

}  // namespace cdcs::io
