// Append-only edit-batch journal (write-ahead log) for durable incremental
// synthesis sessions (synth/engine.hpp; format reference in
// docs/robustness.md and docs/file-formats.md).
//
// On-disk layout:
//
//     8-byte magic "CDCSWAL1"
//     record*            where record = [u32 LE payload length]
//                                       [u32 LE CRC-32 of payload]
//                                       [payload bytes]
//
// The first record's payload is "graph\n" + the constraint-graph text
// format (io/text_format.hpp): the base snapshot the session opened on.
// Every later record's payload is "delta\n" + one edit-script batch
// (io/edit_script.hpp, `solve`-terminated): one applied model::Delta, in
// apply order. The CRC is the standard reflected CRC-32 (poly 0xEDB88320,
// init/xor-out 0xFFFFFFFF -- the zlib/binascii one), so corpus files can
// be forged with stock tooling.
//
// Torn tails: a crash mid-append leaves a partial record (short header,
// short payload, or checksum mismatch). read_journal() stops at the first
// such record, reports the valid prefix (records_recovered,
// valid_prefix_bytes) and the dropped byte count, and never fails on a
// torn tail -- only on a journal whose *checksummed* content is malformed
// (bad magic, unknown record tag, unparseable payload), which means
// corruption no replay should trust.
//
// Writes: JournalWriter keeps no file handle between appends -- each
// append opens, seeks to the logical end, writes one record, flushes, and
// closes, so the file is always a valid prefix plus at most one torn
// record. Transient write failures (including the io.journal.write /
// io.journal.fsync fault sites, support/fault.hpp) are retried up to
// JournalOptions::max_write_attempts times with a deterministic linear
// backoff (attempt i sleeps (i-1)*backoff_base_ms), truncating the torn
// record before each retry.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "model/constraint_graph.hpp"
#include "model/delta.hpp"
#include "support/fault.hpp"
#include "support/status.hpp"

namespace cdcs::io {

/// First bytes of every journal file.
inline constexpr std::string_view kJournalMagic = "CDCSWAL1";

/// Standard reflected CRC-32 (zlib / binascii.crc32). Exposed so tests and
/// tools can forge or verify record checksums.
std::uint32_t crc32(std::string_view data);

struct JournalOptions {
  /// Total attempts per record append (first try + retries), >= 1.
  int max_write_attempts{3};
  /// Deterministic linear backoff between attempts: attempt i (1-based)
  /// sleeps (i-1) * backoff_base_ms before writing. 0 disables sleeping
  /// (the schedule stays deterministic either way).
  unsigned backoff_base_ms{0};
  /// Optional fault injector consulted at io.journal.open /
  /// io.journal.write / io.journal.fsync (support/fault.hpp).
  std::shared_ptr<support::FaultInjector> injector;
};

/// Appends snapshot/delta records to a journal file. Move-only; the
/// default-constructed writer is closed. Not thread-safe: the owning
/// engine serializes appends.
class JournalWriter {
 public:
  JournalWriter() = default;
  JournalWriter(JournalWriter&&) = default;
  JournalWriter& operator=(JournalWriter&&) = default;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Creates (truncating) `path` and writes the magic plus the base-graph
  /// snapshot record. kInternal when the open fault site fires or the
  /// snapshot append exhausts its retries.
  static support::Expected<JournalWriter> create(
      std::string path, const model::ConstraintGraph& base,
      JournalOptions options = {});

  /// Reopens an existing journal for appending after read_journal():
  /// `valid_prefix_bytes` and `record_offsets` come straight from
  /// JournalContents. Truncates any torn tail past the valid prefix.
  static support::Expected<JournalWriter> append_to(
      std::string path, std::uint64_t valid_prefix_bytes,
      std::vector<std::uint64_t> record_offsets, JournalOptions options = {});

  /// Appends one applied edit batch. On failure the file is truncated back
  /// to the previous record boundary (best effort), so the journal stays a
  /// valid prefix.
  support::Status append_delta(const model::Delta& delta);

  /// Removes the most recently appended record from the file -- the undo
  /// path when the engine rolls back an apply whose journal record already
  /// landed. The base snapshot cannot be truncated away.
  support::Status truncate_last_record();

  bool is_open() const { return open_; }
  void close() { open_ = false; }

  const std::string& path() const { return path_; }
  /// Total records on disk, including the base snapshot.
  std::uint64_t records() const { return record_offsets_.size(); }
  /// Logical end of the journal (= file size while healthy).
  std::uint64_t end_offset() const { return end_offset_; }

 private:
  support::Status append_record(const std::string& payload);
  bool fires(std::string_view site) const {
    return options_.injector != nullptr &&
           options_.injector->should_fail(site);
  }

  std::string path_;
  JournalOptions options_;
  std::uint64_t end_offset_{0};
  std::vector<std::uint64_t> record_offsets_;  ///< start offset per record
  bool open_{false};
};

/// What read_journal() recovered.
struct JournalContents {
  model::ConstraintGraph base;        ///< the snapshot record
  std::vector<model::Delta> deltas;   ///< one per delta record, in order
  /// Valid records (snapshot + deltas) recovered from the prefix.
  std::uint64_t records_recovered{0};
  /// Bytes past the valid prefix (a torn or checksum-failed tail).
  std::uint64_t bytes_dropped{0};
  bool tail_truncated() const { return bytes_dropped != 0; }
  /// File offset where the valid prefix ends; truncate here to heal.
  std::uint64_t valid_prefix_bytes{0};
  /// Start offset of each valid record (for JournalWriter::append_to).
  std::vector<std::uint64_t> record_offsets;
};

/// Reads a journal, stopping cleanly at a torn tail (see the header
/// comment for exactly which states are torn vs malformed). kParseError on
/// bad magic, an unknown record tag, a checksummed-but-unparseable
/// payload, or a torn base snapshot (nothing to recover); the message
/// names the record number and byte offset.
support::Expected<JournalContents> read_journal(const std::string& path);

}  // namespace cdcs::io
