// Graphviz DOT export for constraint and implementation graphs -- the
// library's equivalent of the paper's Figures 1, 3, 4 and 5 drawings.
#pragma once

#include <string>

#include "model/implementation_graph.hpp"

namespace cdcs::io {

/// Ports as ellipses at their positions, channels annotated "d / b".
std::string to_dot(const model::ConstraintGraph& cg);

/// Computational vertices as ellipses, communication vertices as boxes
/// labeled with their library node, link arcs labeled with their library
/// link and styled per link index (solid/dashed/dotted, as Fig. 4 uses solid
/// for the optical trunk and dash-dot for radio links).
std::string to_dot(const model::ImplementationGraph& impl);

}  // namespace cdcs::io
