// Comparison baselines for the synthesis algorithm.
//
//  * point_to_point_baseline: the optimum point-to-point implementation
//    graph of Def 2.6 -- every arc implemented independently, no sharing.
//    This is the architecture the paper's algorithm must never lose to
//    (Lemma 2.1 guarantees it exists whenever any solution does).
//  * greedy_merge_baseline: an agglomerative heuristic in the style of
//    classic network-design local search: start from singleton groups,
//    repeatedly apply the pairwise group merge with the largest cost saving
//    until no merge saves. Polynomial, but can miss optima that require
//    going "uphill" through an unprofitable intermediate merge.
//  * exhaustive_partition_optimum: prices every set partition of the arcs
//    (blocks of size 1 = point-to-point, larger blocks = mergings) and
//    returns the cheapest. Exponential (Bell numbers); used on small
//    instances to certify that candidate generation + exact UCP finds the
//    true optimum.
#pragma once

#include <optional>

#include "synth/merging_pricer.hpp"

namespace cdcs::baseline {

struct BaselineResult {
  /// Groups of arcs implemented together (singletons = point-to-point).
  std::vector<std::vector<model::ArcId>> groups;
  double cost{0.0};
};

/// Def 2.6 baseline. Throws std::runtime_error when any arc is infeasible.
BaselineResult point_to_point_baseline(const model::ConstraintGraph& cg,
                                       const commlib::Library& library);

BaselineResult greedy_merge_baseline(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    model::CapacityPolicy policy = model::CapacityPolicy::kSharedSum);

/// Exact partition optimum; refuses instances with more than `max_arcs`
/// arcs (Bell(12) is already ~4.2M partitions).
BaselineResult exhaustive_partition_optimum(
    const model::ConstraintGraph& cg, const commlib::Library& library,
    model::CapacityPolicy policy = model::CapacityPolicy::kSharedSum,
    std::size_t max_arcs = 10);

}  // namespace cdcs::baseline
