#include "baseline/baselines.hpp"

#include <functional>
#include <limits>
#include <stdexcept>

#include "synth/chain_pricer.hpp"
#include "synth/tree_pricer.hpp"
#include "synth/ptp.hpp"

namespace cdcs::baseline {
namespace {

/// Cost of implementing one group: point-to-point for singletons, the best
/// of the star / daisy-chain / Steiner-tree merging structures otherwise
/// (mirroring the candidate generator, so baseline-vs-pipeline comparisons
/// are apples-to-apples); +infinity when unimplementable.
double group_cost(const std::vector<model::ArcId>& group,
                  const model::ConstraintGraph& cg,
                  const commlib::Library& library,
                  model::CapacityPolicy policy) {
  if (group.size() == 1) {
    return synth::best_point_to_point_cost(cg.distance(group.front()),
                                           cg.bandwidth(group.front()),
                                           library);
  }
  double best = std::numeric_limits<double>::infinity();
  if (const auto star = synth::price_merging(cg, library, group, policy)) {
    best = std::min(best, star->cost);
  }
  if (const auto chain =
          synth::price_chain_merging(cg, library, group, policy)) {
    best = std::min(best, chain->cost);
  }
  if (const auto tree = synth::price_tree_merging(cg, library, group, policy)) {
    best = std::min(best, tree->cost);
  }
  return best;
}

}  // namespace

BaselineResult point_to_point_baseline(const model::ConstraintGraph& cg,
                                       const commlib::Library& library) {
  BaselineResult result;
  for (model::ArcId a : cg.arcs()) {
    const double c = synth::best_point_to_point_cost(cg.distance(a),
                                                     cg.bandwidth(a), library);
    if (!std::isfinite(c)) {
      throw std::runtime_error("point_to_point_baseline: arc '" +
                               cg.channel(a).name + "' is unimplementable");
    }
    result.groups.push_back({a});
    result.cost += c;
  }
  return result;
}

BaselineResult greedy_merge_baseline(const model::ConstraintGraph& cg,
                                     const commlib::Library& library,
                                     model::CapacityPolicy policy) {
  BaselineResult result = point_to_point_baseline(cg, library);
  std::vector<double> costs;
  costs.reserve(result.groups.size());
  for (const auto& g : result.groups) {
    costs.push_back(group_cost(g, cg, library, policy));
  }

  bool improved = true;
  while (improved && result.groups.size() > 1) {
    improved = false;
    double best_saving = 1e-9;
    std::size_t best_i = 0, best_j = 0;
    double best_merged_cost = 0.0;
    for (std::size_t i = 0; i < result.groups.size(); ++i) {
      for (std::size_t j = i + 1; j < result.groups.size(); ++j) {
        std::vector<model::ArcId> merged = result.groups[i];
        merged.insert(merged.end(), result.groups[j].begin(),
                      result.groups[j].end());
        const double c = group_cost(merged, cg, library, policy);
        const double saving = costs[i] + costs[j] - c;
        if (saving > best_saving) {
          best_saving = saving;
          best_i = i;
          best_j = j;
          best_merged_cost = c;
        }
      }
    }
    if (best_saving > 1e-9) {
      improved = true;
      result.groups[best_i].insert(result.groups[best_i].end(),
                                   result.groups[best_j].begin(),
                                   result.groups[best_j].end());
      costs[best_i] = best_merged_cost;
      result.groups.erase(result.groups.begin() + best_j);
      costs.erase(costs.begin() + best_j);
    }
  }
  result.cost = 0.0;
  for (double c : costs) result.cost += c;
  return result;
}

BaselineResult exhaustive_partition_optimum(const model::ConstraintGraph& cg,
                                            const commlib::Library& library,
                                            model::CapacityPolicy policy,
                                            std::size_t max_arcs) {
  const std::vector<model::ArcId> arcs = cg.arcs();
  if (arcs.size() > max_arcs) {
    throw std::invalid_argument(
        "exhaustive_partition_optimum: instance too large (" +
        std::to_string(arcs.size()) + " arcs > " + std::to_string(max_arcs) +
        ")");
  }

  BaselineResult best;
  best.cost = std::numeric_limits<double>::infinity();

  std::vector<std::vector<model::ArcId>> partition;
  // Enumerates set partitions in restricted-growth order: arc i either joins
  // an existing block or opens a new one.
  const std::function<void(std::size_t, double)> recurse =
      [&](std::size_t i, double cost_so_far) {
        if (cost_so_far >= best.cost) return;  // blocks only get pricier
        if (i == arcs.size()) {
          double total = 0.0;
          for (const auto& block : partition) {
            total += group_cost(block, cg, library, policy);
            if (total >= best.cost) return;
          }
          if (total < best.cost) {
            best.cost = total;
            best.groups = partition;
          }
          return;
        }
        for (std::size_t b = 0; b < partition.size(); ++b) {
          partition[b].push_back(arcs[i]);
          recurse(i + 1, cost_so_far);
          partition[b].pop_back();
        }
        partition.push_back({arcs[i]});
        recurse(i + 1, cost_so_far);
        partition.pop_back();
      };
  recurse(0, 0.0);
  return best;
}

}  // namespace cdcs::baseline
