// Content fingerprint of a constraint graph, for pinning generator outputs.
//
// Every workload generator in this directory is documented as deterministic;
// the tests pin each generator's fingerprint so that ANY drift in the
// emitted graph -- a port moved, a bandwidth nudged, an arc reordered, a
// name changed -- fails loudly instead of silently shifting benchmark
// baselines (the partitioned-scaling costs in BENCH_pr.json are compared
// exactly across machines, which is only sound while the inputs are
// bit-stable).
//
// The hash is FNV-1a 64 over the full construction-visible content: norm,
// port names and position bit patterns, arc endpoints, channel names and
// bandwidth bit patterns, all in insertion order. Positions/bandwidths are
// hashed as their IEEE-754 bit patterns, so two graphs fingerprint equal
// iff they are bit-identical inputs to the synthesizer.
#pragma once

#include <cstdint>

#include "model/constraint_graph.hpp"

namespace cdcs::workloads {

std::uint64_t fingerprint(const model::ConstraintGraph& cg);

}  // namespace cdcs::workloads
