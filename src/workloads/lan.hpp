// Campus-LAN workload for the introduction's fiber-vs-wireless design
// question: clients and servers spread over a few hundred meters, some
// channels demanding more than a wireless link can sustain. Pairs with
// commlib::lan_library().
#pragma once

#include "model/constraint_graph.hpp"

namespace cdcs::workloads {

/// Three buildings, six hosts, ten channels; Euclidean norm, meters, Mbps.
model::ConstraintGraph campus_lan();

}  // namespace cdcs::workloads
