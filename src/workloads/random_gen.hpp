// Random clustered constraint-graph generator for scaling benchmarks and
// property tests. Mirrors the structure of the paper's WAN example: a few
// geographically tight clusters with cheap-to-merge inter-cluster traffic.
#pragma once

#include <cstdint>

#include "model/constraint_graph.hpp"

namespace cdcs::workloads {

struct RandomWorkloadParams {
  int num_clusters = 3;
  int ports_per_cluster = 3;
  double cluster_radius = 5.0;     ///< intra-cluster spread
  double area_extent = 200.0;      ///< cluster centers drawn in this square
  int num_channels = 10;
  double min_bandwidth = 5.0;
  double max_bandwidth = 15.0;
  geom::Norm norm = geom::Norm::kEuclidean;
  std::uint64_t seed = 1;
  /// Fraction of channels forced to cross clusters (merge opportunities).
  double inter_cluster_fraction = 0.5;
};

/// Deterministic for a fixed parameter set (seeded Mersenne Twister).
model::ConstraintGraph random_workload(const RandomWorkloadParams& params);

}  // namespace cdcs::workloads
