// Multi-chip-module / board-level workload -- the paper's Sec. 2 list of
// target systems names "a multi-chip multi-processor system" alongside SoCs
// and LANs. Four dies on a substrate: two CPUs, a memory-hub die and an I/O
// die, with coherence, memory and DMA traffic. Pairs with
// commlib::mcm_library(): cheap distance-limited PCB traces (re-drivers
// extend them) versus expensive but fast board-length serdes links --
// the same matching/segmentation/duplication/merging trade-offs as the WAN,
// at centimeter scale.
#pragma once

#include "model/constraint_graph.hpp"

namespace cdcs::workloads {

/// Positions in centimeters (Euclidean), bandwidths in GB/s.
model::ConstraintGraph mcm_board();

}  // namespace cdcs::workloads
