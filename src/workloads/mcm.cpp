#include "workloads/mcm.hpp"

namespace cdcs::workloads {

model::ConstraintGraph mcm_board() {
  model::ConstraintGraph cg(geom::Norm::kEuclidean);
  // A 30 x 20 cm board; the memory hub sits between the CPUs, the I/O die
  // at the edge by the connectors.
  const model::VertexId cpu0 = cg.add_port("cpu0", {8.0, 12.0});
  const model::VertexId cpu1 = cg.add_port("cpu1", {22.0, 12.0});
  const model::VertexId hub = cg.add_port("mem_hub", {15.0, 8.0});
  const model::VertexId io = cg.add_port("io_die", {27.0, 3.0});

  // Cache-coherence: wide, symmetric, latency-critical.
  cg.add_channel(cpu0, cpu1, 24.0, "coh0->1");
  cg.add_channel(cpu1, cpu0, 24.0, "coh1->0");
  // Memory traffic: both CPUs stream reads/writes through the hub.
  cg.add_channel(cpu0, hub, 16.0, "mem-wr0");
  cg.add_channel(hub, cpu0, 20.0, "mem-rd0");
  cg.add_channel(cpu1, hub, 16.0, "mem-wr1");
  cg.add_channel(hub, cpu1, 20.0, "mem-rd1");
  // I/O DMA: device traffic lands in memory, plus a doorbell path per CPU.
  cg.add_channel(io, hub, 12.0, "dma-in");
  cg.add_channel(hub, io, 6.0, "dma-out");
  cg.add_channel(cpu0, io, 2.0, "mmio0");
  cg.add_channel(cpu1, io, 2.0, "mmio1");
  return cg;
}

}  // namespace cdcs::workloads
