// Exact reconstruction of the paper's Section 4 WAN example (Figs. 3-4,
// Tables 1-2).
//
// The paper publishes the Gamma and Delta matrices to two decimal digits but
// not the node coordinates. Solving the resulting system yields an exact
// integer-coordinate reconstruction (verified entry-by-entry against both
// tables, which the paper prints TRUNCATED -- not rounded -- to 2 decimals):
//
//   positions (km):  A=(0,0)  B=(4,3)  C=(9,1)  D=(-2,-97)  E=(0,-100)
//   arcs:  a1=(A,B) a2=(C,B) a3=(C,A) a4=(D,A) a5=(D,B) a6=(D,C)
//          a7=(D,E) a8=(E,D)
//   norm:  Euclidean;  every channel requires 10 Mbps.
//
// e.g. d(a4) = ||D-A|| = sqrt(4 + 9409) = sqrt(9413) = 97.0206...,
// giving Gamma(a1,a4) = 5 + 97.0206 = 102.02 as printed.
#pragma once

#include "model/constraint_graph.hpp"

namespace cdcs::workloads {

/// The five-node WAN constraint graph with its 8 channels (10 Mbps each).
model::ConstraintGraph wan2002();

/// Channel bandwidth used by every WAN arc, in Mbps.
inline constexpr double kWanBandwidthMbps = 10.0;

}  // namespace cdcs::workloads
