// Tile-grid ("NoC-style") SoC workload: an R x C grid of tiles with a
// traffic pattern over it. This is the problem shape the paper's line of
// work grew into (networks-on-chip synthesis, the COSI project): many
// medium-length channels on a Manhattan die where trunk sharing between
// same-direction flows is the interesting question.
//
// Traffic patterns:
//   * kNeighbor     -- each tile streams to its east and south neighbors
//                      (systolic/pipelined traffic);
//   * kHotspotMemory -- every tile streams to a memory controller tile on
//                      the die edge (DRAM-bound traffic, heavy merging
//                      opportunity);
//   * kBitComplement -- tile (r, c) streams to (R-1-r, C-1-c) (classic NoC
//                      stress pattern, long criss-cross channels).
#pragma once

#include <cstdint>

#include "model/constraint_graph.hpp"

namespace cdcs::workloads {

enum class NocTraffic {
  kNeighbor,
  kHotspotMemory,
  kBitComplement,
};

struct NocMeshParams {
  int rows = 4;
  int cols = 4;
  double tile_pitch_mm = 1.2;  ///< center-to-center tile spacing
  NocTraffic traffic = NocTraffic::kHotspotMemory;
  double bandwidth = 1.0;      ///< per-channel demand (per-wire units)
};

/// Builds the tile grid and its traffic channels (Manhattan norm, mm).
/// Hotspot traffic targets the tile at (rows-1, cols/2).
model::ConstraintGraph noc_mesh(const NocMeshParams& params);

}  // namespace cdcs::workloads
