// Large-instance generators for the partitioned-synthesis scaling benches
// (bench/bench_partitioned.cpp; docs/performance.md). Two families beyond
// the existing noc_mesh grids:
//
//   * geo_wan        -- a continental WAN: many geographically tight sites
//                       (dense local traffic, heavy merging opportunity
//                       inside a site) plus sparse long-haul site-to-site
//                       flows (the boundary arcs a partitioner must repair).
//                       Pairs with commlib::wan_library().
//   * fat_tree_traffic -- datacenter-style traffic over a pod/rack/host
//                       layout: host->ToR uplinks, ToR->aggregation,
//                       aggregation->core, plus random inter-pod host
//                       flows. Pairs with commlib::wan_library() too (the
//                       any-length link models make every span feasible).
//
// Both are PORTABLE-deterministic: all randomness comes from the splitmix64
// finalizer (the same primitive support/fault.hpp uses) with explicit
// uniform mapping, never from std::uniform_*_distribution, whose output is
// standard-library specific. The same params therefore produce the same
// graph (and the same workloads::fingerprint) on every platform, which is
// what lets CI compare partitioned-synthesis costs exactly across machines.
// (Contrast random_gen.hpp, whose mt19937+distribution output is pinned
// only per standard library.)
#pragma once

#include <cstddef>
#include <cstdint>

#include "model/constraint_graph.hpp"

namespace cdcs::workloads {

struct GeoWanParams {
  std::size_t sites = 12;            ///< geographically tight port clusters
  std::size_t ports_per_site = 6;
  std::size_t local_arcs_per_site = 8;  ///< intra-site flows
  std::size_t long_haul_arcs = 24;      ///< site-to-site flows
  double region_extent = 500.0;  ///< site centers drawn in this square
  double site_radius = 4.0;      ///< port spread around a site center
  double min_bandwidth = 5.0;    ///< per-flow demand range (Mbps)
  double max_bandwidth = 15.0;
  std::uint64_t seed = 1;

  /// Parameters producing exactly `arcs` total arcs with the default mix
  /// (~80% local, ~20% long-haul).
  static GeoWanParams sized(std::size_t arcs, std::uint64_t seed = 1);
};

/// Euclidean norm; total arcs = sites * local_arcs_per_site +
/// long_haul_arcs. No parallel channels, no self-loops.
model::ConstraintGraph geo_wan(const GeoWanParams& params);

struct FatTreeParams {
  std::size_t pods = 4;
  std::size_t racks_per_pod = 4;
  std::size_t hosts_per_rack = 4;
  std::size_t inter_pod_flows = 20;  ///< random host-to-host cross traffic
  double rack_pitch = 3.0;           ///< rack spacing within a pod
  double pod_gap = 12.0;             ///< extra gap between pods
  double host_bandwidth = 2.0;       ///< host -> ToR demand
  double agg_bandwidth = 8.0;        ///< ToR -> aggregation demand
  double core_bandwidth = 24.0;      ///< aggregation -> core demand
  std::uint64_t seed = 1;

  /// Parameters producing exactly `arcs` total arcs with the default pod
  /// shape (inter-pod flows absorb the remainder).
  static FatTreeParams sized(std::size_t arcs, std::uint64_t seed = 1);
};

/// Euclidean norm; total arcs = pods * racks_per_pod * hosts_per_rack
/// (host uplinks) + pods * racks_per_pod (ToR->agg) + pods (agg->core)
/// + inter_pod_flows. No parallel channels, no self-loops.
model::ConstraintGraph fat_tree_traffic(const FatTreeParams& params);

}  // namespace cdcs::workloads
