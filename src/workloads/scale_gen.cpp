#include "workloads/scale_gen.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

namespace cdcs::workloads {
namespace {

/// splitmix64: the portable RNG primitive (same finalizer as
/// support/fault.hpp). Explicit uniform mappings below keep every draw
/// standard-library independent.
std::uint64_t next_u64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double u01(std::uint64_t& state) {
  return static_cast<double>(next_u64(state) >> 11) * 0x1.0p-53;
}

double in_range(std::uint64_t& state, double lo, double hi) {
  return lo + (hi - lo) * u01(state);
}

std::size_t pick(std::uint64_t& state, std::size_t n) {
  return static_cast<std::size_t>(next_u64(state) % n);
}

std::uint64_t pair_key(std::size_t u, std::size_t v) {
  return (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint64_t>(v);
}

}  // namespace

GeoWanParams GeoWanParams::sized(std::size_t arcs, std::uint64_t seed) {
  GeoWanParams p;
  p.seed = seed;
  std::size_t long_haul = arcs / 5;
  const std::size_t local_total = arcs - long_haul;
  p.sites = std::max<std::size_t>(2, local_total / 8);
  p.local_arcs_per_site = local_total / p.sites;
  p.long_haul_arcs = arcs - p.sites * p.local_arcs_per_site;
  return p;
}

model::ConstraintGraph geo_wan(const GeoWanParams& params) {
  model::ConstraintGraph cg(geom::Norm::kEuclidean);
  std::uint64_t rng = params.seed;

  const std::size_t sites = std::max<std::size_t>(1, params.sites);
  const std::size_t ports = std::max<std::size_t>(2, params.ports_per_site);
  // At most one channel per ordered port pair within a site.
  const std::size_t local =
      std::min(params.local_arcs_per_site, ports * (ports - 1));

  std::vector<geom::Point2D> centers(sites);
  for (std::size_t s = 0; s < sites; ++s) {
    centers[s] = {in_range(rng, 0.0, params.region_extent),
                  in_range(rng, 0.0, params.region_extent)};
  }
  std::vector<std::vector<model::VertexId>> site_ports(sites);
  for (std::size_t s = 0; s < sites; ++s) {
    for (std::size_t p = 0; p < ports; ++p) {
      const geom::Point2D pos = {
          centers[s].x + in_range(rng, -params.site_radius, params.site_radius),
          centers[s].y +
              in_range(rng, -params.site_radius, params.site_radius)};
      site_ports[s].push_back(cg.add_port(
          "s" + std::to_string(s) + "p" + std::to_string(p), pos));
    }
  }

  auto bandwidth = [&] {
    return in_range(rng, params.min_bandwidth, params.max_bandwidth);
  };

  // Intra-site flows: distinct ordered port pairs per site. Random draws
  // with a deterministic exhaustive fallback, so the generator never loops
  // unboundedly even when `local` approaches the pair count.
  for (std::size_t s = 0; s < sites; ++s) {
    std::unordered_set<std::uint64_t> used;
    for (std::size_t k = 0; k < local; ++k) {
      std::size_t u = 0, v = 0;
      bool found = false;
      for (int attempt = 0; attempt < 64 && !found; ++attempt) {
        u = pick(rng, ports);
        v = pick(rng, ports);
        found = u != v && used.insert(pair_key(u, v)).second;
      }
      if (!found) {
        for (u = 0; u < ports && !found; ++u) {
          for (v = 0; v < ports && !found; ++v) {
            if (u != v && used.insert(pair_key(u, v)).second) {
              found = true;
              break;
            }
          }
        }
        if (!found) break;  // site saturated (local == ports*(ports-1))
        --u;                // undo the final ++ of the search loop
      }
      cg.add_channel(site_ports[s][u], site_ports[s][v], bandwidth());
    }
  }

  // Long-haul site-to-site flows: one port on each side, globally distinct
  // ordered port pairs (intra-site pairs cannot collide -- different sites).
  if (sites > 1) {
    std::unordered_set<std::uint64_t> used;
    for (std::size_t k = 0; k < params.long_haul_arcs; ++k) {
      for (int attempt = 0; attempt < 256; ++attempt) {
        const std::size_t si = pick(rng, sites);
        const std::size_t sj = pick(rng, sites);
        if (si == sj) continue;
        const model::VertexId u = site_ports[si][pick(rng, ports)];
        const model::VertexId v = site_ports[sj][pick(rng, ports)];
        if (!used.insert(pair_key(u.index(), v.index())).second) continue;
        cg.add_channel(u, v, bandwidth());
        break;
      }
    }
  }
  return cg;
}

FatTreeParams FatTreeParams::sized(std::size_t arcs, std::uint64_t seed) {
  FatTreeParams p;
  p.seed = seed;
  // Structural arcs per default pod: hosts (4*4) + ToR uplinks (4) + core
  // uplink (1) = 21; target ~80/20 structural/cross-flow mix.
  const std::size_t per_pod = p.racks_per_pod * p.hosts_per_rack +
                              p.racks_per_pod + 1;
  p.pods = std::max<std::size_t>(2, arcs / 26);
  while (p.pods > 2 && p.pods * per_pod > arcs) --p.pods;
  p.inter_pod_flows =
      arcs > p.pods * per_pod ? arcs - p.pods * per_pod : 0;
  return p;
}

model::ConstraintGraph fat_tree_traffic(const FatTreeParams& params) {
  model::ConstraintGraph cg(geom::Norm::kEuclidean);
  std::uint64_t rng = params.seed;

  const std::size_t pods = std::max<std::size_t>(1, params.pods);
  const std::size_t racks = std::max<std::size_t>(1, params.racks_per_pod);
  const std::size_t hosts = std::max<std::size_t>(1, params.hosts_per_rack);
  const double pod_width = static_cast<double>(racks) * params.rack_pitch;

  std::vector<std::vector<model::VertexId>> pod_hosts(pods);
  std::vector<model::VertexId> aggs;
  std::vector<std::pair<model::VertexId, model::VertexId>> uplinks;  // ToR,agg
  const model::VertexId core = cg.add_port(
      "core",
      {(static_cast<double>(pods) * (pod_width + params.pod_gap)) / 2.0,
       -6.0 * params.rack_pitch});

  for (std::size_t p = 0; p < pods; ++p) {
    const double pod_x =
        static_cast<double>(p) * (pod_width + params.pod_gap);
    const std::string pn = "p" + std::to_string(p);
    const model::VertexId agg = cg.add_port(
        pn + "agg", {pod_x + pod_width / 2.0, -2.0 * params.rack_pitch});
    aggs.push_back(agg);
    for (std::size_t r = 0; r < racks; ++r) {
      const double rack_x = pod_x + static_cast<double>(r) * params.rack_pitch;
      const std::string rn = pn + "r" + std::to_string(r);
      const model::VertexId tor = cg.add_port(rn + "t", {rack_x, 0.0});
      uplinks.emplace_back(tor, agg);
      for (std::size_t h = 0; h < hosts; ++h) {
        const model::VertexId host = cg.add_port(
            rn + "h" + std::to_string(h),
            {rack_x, params.rack_pitch * (0.5 + 0.5 * static_cast<double>(h))});
        pod_hosts[p].push_back(host);
        cg.add_channel(host, tor,
                       params.host_bandwidth * in_range(rng, 0.75, 1.25));
      }
    }
  }
  for (const auto& [tor, agg] : uplinks) {
    cg.add_channel(tor, agg, params.agg_bandwidth);
  }
  for (model::VertexId agg : aggs) {
    cg.add_channel(agg, core, params.core_bandwidth);
  }

  // Cross-pod host-to-host flows (the traffic that rewards trunk sharing
  // between pods), globally distinct ordered pairs.
  if (pods > 1) {
    std::unordered_set<std::uint64_t> used;
    for (std::size_t k = 0; k < params.inter_pod_flows; ++k) {
      for (int attempt = 0; attempt < 256; ++attempt) {
        const std::size_t pa = pick(rng, pods);
        const std::size_t pb = pick(rng, pods);
        if (pa == pb) continue;
        const model::VertexId u = pod_hosts[pa][pick(rng, pod_hosts[pa].size())];
        const model::VertexId v = pod_hosts[pb][pick(rng, pod_hosts[pb].size())];
        if (!used.insert(pair_key(u.index(), v.index())).second) continue;
        cg.add_channel(u, v,
                       params.host_bandwidth * in_range(rng, 0.5, 1.5));
        break;
      }
    }
  }
  return cg;
}

}  // namespace cdcs::workloads
