#include "workloads/mpeg4_soc.hpp"

namespace cdcs::workloads {

model::ConstraintGraph mpeg4_soc() {
  model::ConstraintGraph cg(geom::Norm::kManhattan);
  const model::VertexId risc = cg.add_port("risc_cpu", {0.85, 4.25});
  const model::VertexId dsp = cg.add_port("dsp", {3.85, 4.30});
  const model::VertexId sdram = cg.add_port("sdram_ctrl", {2.50, 4.70});
  const model::VertexId vld = cg.add_port("vld", {0.80, 2.60});
  const model::VertexId idct = cg.add_port("idct", {2.20, 2.40});
  const model::VertexId mc = cg.add_port("motion_comp", {3.97, 2.50});
  const model::VertexId dma = cg.add_port("dma", {2.45, 3.40});
  const model::VertexId vout = cg.add_port("video_out", {4.30, 0.80});
  const model::VertexId audio = cg.add_port("audio_if", {0.70, 0.90});
  const model::VertexId bus = cg.add_port("bus_bridge", {2.75, 1.20});

  const double b = kMpeg4ChannelBandwidth;
  // The decode pipeline plus host/memory traffic: the "most critical
  // channels" of the design.
  cg.add_channel(sdram, dma, b, "sdram->dma");
  cg.add_channel(dma, vld, b, "dma->vld");
  cg.add_channel(vld, idct, b, "vld->idct");
  cg.add_channel(idct, mc, b, "idct->mc");
  cg.add_channel(mc, vout, b, "mc->video_out");
  cg.add_channel(risc, sdram, b, "risc->sdram");
  cg.add_channel(dsp, sdram, b, "dsp->sdram");
  cg.add_channel(dma, mc, b, "dma->mc");
  cg.add_channel(risc, dsp, b, "risc->dsp");
  cg.add_channel(bus, audio, b, "bus->audio");
  cg.add_channel(dma, vout, b, "dma->video_out");
  cg.add_channel(sdram, mc, b, "sdram->mc");
  cg.add_channel(risc, vld, b, "risc->vld");
  cg.add_channel(sdram, vout, b, "sdram->video_out");
  return cg;
}

}  // namespace cdcs::workloads
