#include "workloads/random_gen.hpp"

#include <random>
#include <string>
#include <vector>

namespace cdcs::workloads {

model::ConstraintGraph random_workload(const RandomWorkloadParams& params) {
  std::mt19937_64 rng(params.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  model::ConstraintGraph cg(params.norm);

  std::vector<geom::Point2D> centers;
  for (int c = 0; c < params.num_clusters; ++c) {
    centers.push_back(
        {unit(rng) * params.area_extent, unit(rng) * params.area_extent});
  }

  std::vector<std::vector<model::VertexId>> cluster_ports(params.num_clusters);
  for (int c = 0; c < params.num_clusters; ++c) {
    for (int p = 0; p < params.ports_per_cluster; ++p) {
      const geom::Point2D pos{
          centers[c].x + (unit(rng) * 2.0 - 1.0) * params.cluster_radius,
          centers[c].y + (unit(rng) * 2.0 - 1.0) * params.cluster_radius};
      cluster_ports[c].push_back(cg.add_port(
          "n" + std::to_string(c) + "_" + std::to_string(p), pos));
    }
  }

  std::uniform_int_distribution<int> cluster_pick(0, params.num_clusters - 1);
  std::uniform_int_distribution<int> port_pick(0, params.ports_per_cluster - 1);
  std::uniform_real_distribution<double> bw(params.min_bandwidth,
                                            params.max_bandwidth);

  int added = 0;
  int guard = 0;
  while (added < params.num_channels && guard < params.num_channels * 100) {
    ++guard;
    const bool inter = unit(rng) < params.inter_cluster_fraction &&
                       params.num_clusters > 1;
    const int cu = cluster_pick(rng);
    int cv = cu;
    if (inter) {
      while (cv == cu) cv = cluster_pick(rng);
    }
    const model::VertexId u = cluster_ports[cu][port_pick(rng)];
    const model::VertexId v = cluster_ports[cv][port_pick(rng)];
    if (u == v) continue;
    cg.add_channel(u, v, bw(rng));
    ++added;
  }
  return cg;
}

}  // namespace cdcs::workloads
