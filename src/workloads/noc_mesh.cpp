#include "workloads/noc_mesh.hpp"

#include <stdexcept>
#include <string>

namespace cdcs::workloads {

model::ConstraintGraph noc_mesh(const NocMeshParams& params) {
  if (params.rows < 2 || params.cols < 2) {
    throw std::invalid_argument("noc_mesh: grid must be at least 2x2");
  }
  model::ConstraintGraph cg(geom::Norm::kManhattan);

  std::vector<model::VertexId> tile(params.rows * params.cols);
  auto at = [&](int r, int c) { return tile[r * params.cols + c]; };
  for (int r = 0; r < params.rows; ++r) {
    for (int c = 0; c < params.cols; ++c) {
      tile[r * params.cols + c] = cg.add_port(
          "tile_" + std::to_string(r) + "_" + std::to_string(c),
          {c * params.tile_pitch_mm, r * params.tile_pitch_mm});
    }
  }

  // Coordinates are separated with '_': concatenating bare digits made
  // (1,10) and (11,0) both "t110", a duplicate-channel-name collision on
  // meshes with more than 10 rows or columns.
  auto name = [&](int r1, int c1, int r2, int c2) {
    return "t" + std::to_string(r1) + "_" + std::to_string(c1) + "->t" +
           std::to_string(r2) + "_" + std::to_string(c2);
  };

  switch (params.traffic) {
    case NocTraffic::kNeighbor:
      for (int r = 0; r < params.rows; ++r) {
        for (int c = 0; c < params.cols; ++c) {
          if (c + 1 < params.cols) {
            cg.add_channel(at(r, c), at(r, c + 1), params.bandwidth,
                           name(r, c, r, c + 1));
          }
          if (r + 1 < params.rows) {
            cg.add_channel(at(r, c), at(r + 1, c), params.bandwidth,
                           name(r, c, r + 1, c));
          }
        }
      }
      break;
    case NocTraffic::kHotspotMemory: {
      const int mr = params.rows - 1;
      const int mc = params.cols / 2;
      for (int r = 0; r < params.rows; ++r) {
        for (int c = 0; c < params.cols; ++c) {
          if (r == mr && c == mc) continue;
          cg.add_channel(at(r, c), at(mr, mc), params.bandwidth,
                         name(r, c, mr, mc));
        }
      }
      break;
    }
    case NocTraffic::kBitComplement:
      for (int r = 0; r < params.rows; ++r) {
        for (int c = 0; c < params.cols; ++c) {
          const int r2 = params.rows - 1 - r;
          const int c2 = params.cols - 1 - c;
          if (r2 == r && c2 == c) continue;
          cg.add_channel(at(r, c), at(r2, c2), params.bandwidth,
                         name(r, c, r2, c2));
        }
      }
      break;
  }
  return cg;
}

}  // namespace cdcs::workloads
