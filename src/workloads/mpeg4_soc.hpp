// Synthetic multi-processor MPEG-4 decoder floorplan for the paper's second
// application example (Fig. 5): optimal repeater insertion on the most
// critical on-chip channels of a 0.18u design, with critical wire length
// l_crit = 0.6 mm and Manhattan distance.
//
// SUBSTITUTION NOTE (see DESIGN.md #5.1): the paper's floorplan is
// proprietary and unpublished; this one places the canonical MPEG-4 decoder
// SoC blocks (RISC host, DSP, SDRAM controller, VLD, IDCT, motion
// compensation, DMA, video/audio I/O, peripheral bus bridge) on a ~5x5 mm
// die and selects 14 critical channels whose synthesis requires exactly the
// paper's 55 repeaters. The experiment's code path (segmentation-only
// synthesis with a fixed-length single-link library, cost =
// floor(manhattan/l_crit) repeaters per channel) is identical for any
// floorplan with the same total.
#pragma once

#include "model/constraint_graph.hpp"

namespace cdcs::workloads {

/// Critical length for the 0.18u process of the paper's example, in mm.
inline constexpr double kMpeg4CritLengthMm = 0.6;

/// Bandwidth demand per critical channel, normalized to one wire's capacity.
inline constexpr double kMpeg4ChannelBandwidth = 1.0;

/// The 10-module, 14-channel critical-channel constraint graph (Manhattan
/// norm, positions in mm).
model::ConstraintGraph mpeg4_soc();

}  // namespace cdcs::workloads
