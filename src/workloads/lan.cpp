#include "workloads/lan.hpp"

namespace cdcs::workloads {

model::ConstraintGraph campus_lan() {
  model::ConstraintGraph cg(geom::Norm::kEuclidean);
  // Building 1: office wing.
  const model::VertexId ws1 = cg.add_port("workstation-1", {0.0, 0.0});
  const model::VertexId ws2 = cg.add_port("workstation-2", {18.0, 6.0});
  // Building 2: lab, ~200 m east.
  const model::VertexId lab1 = cg.add_port("lab-server", {210.0, 20.0});
  const model::VertexId lab2 = cg.add_port("lab-capture", {228.0, 34.0});
  // Building 3: data center, ~350 m north-east.
  const model::VertexId dc = cg.add_port("datacenter", {340.0, 260.0});
  const model::VertexId backup = cg.add_port("backup-array", {352.0, 268.0});

  // Office traffic: light, wireless-friendly.
  cg.add_channel(ws1, ws2, 20.0, "office-share");
  cg.add_channel(ws1, lab1, 30.0, "ws1->lab");
  cg.add_channel(ws2, lab1, 30.0, "ws2->lab");
  // Lab instrumentation: a capture stream beyond one wireless link.
  cg.add_channel(lab2, lab1, 90.0, "capture->server");
  // Lab to datacenter bulk transfers; the raw capture archive stream also
  // exceeds wireless rates, so both lab sources want fiber northbound --
  // a natural trunk-sharing opportunity.
  cg.add_channel(lab1, dc, 400.0, "lab->dc");
  cg.add_channel(lab2, dc, 100.0, "capture->archive");
  cg.add_channel(dc, lab1, 150.0, "dc->lab");
  // Office offsite backups.
  cg.add_channel(ws1, dc, 40.0, "ws1->dc");
  cg.add_channel(ws2, dc, 40.0, "ws2->dc");
  // Intra-datacenter mirroring.
  cg.add_channel(dc, backup, 2000.0, "dc->backup");
  return cg;
}

}  // namespace cdcs::workloads
