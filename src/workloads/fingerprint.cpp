#include "workloads/fingerprint.hpp"

#include <cstring>
#include <string>

namespace cdcs::workloads {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

struct Fnv1a {
  std::uint64_t h{kFnvOffset};

  void byte(std::uint8_t b) {
    h ^= b;
    h *= kFnvPrime;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    for (char c : s) byte(static_cast<std::uint8_t>(c));
  }
};

}  // namespace

std::uint64_t fingerprint(const model::ConstraintGraph& cg) {
  Fnv1a h;
  h.byte(static_cast<std::uint8_t>(cg.norm()));
  h.u64(cg.num_ports());
  for (model::VertexId v : cg.ports()) {
    h.str(cg.port(v).name);
    h.f64(cg.position(v).x);
    h.f64(cg.position(v).y);
  }
  h.u64(cg.num_channels());
  for (model::ArcId a : cg.arcs()) {
    h.str(cg.channel(a).name);
    h.u64(cg.source(a).index());
    h.u64(cg.target(a).index());
    h.f64(cg.bandwidth(a));
  }
  return h.h;
}

}  // namespace cdcs::workloads
