#include "workloads/wan2002.hpp"

namespace cdcs::workloads {

model::ConstraintGraph wan2002() {
  model::ConstraintGraph cg(geom::Norm::kEuclidean);
  const model::VertexId a = cg.add_port("A", {0.0, 0.0});
  const model::VertexId b = cg.add_port("B", {4.0, 3.0});
  const model::VertexId c = cg.add_port("C", {9.0, 1.0});
  const model::VertexId d = cg.add_port("D", {-2.0, -97.0});
  const model::VertexId e = cg.add_port("E", {0.0, -100.0});

  cg.add_channel(a, b, kWanBandwidthMbps, "a1");
  cg.add_channel(c, b, kWanBandwidthMbps, "a2");
  cg.add_channel(c, a, kWanBandwidthMbps, "a3");
  cg.add_channel(d, a, kWanBandwidthMbps, "a4");
  cg.add_channel(d, b, kWanBandwidthMbps, "a5");
  cg.add_channel(d, c, kWanBandwidthMbps, "a6");
  cg.add_channel(d, e, kWanBandwidthMbps, "a7");
  cg.add_channel(e, d, kWanBandwidthMbps, "a8");
  return cg;
}

}  // namespace cdcs::workloads
