// Edit deltas over a constraint graph (the model half of incremental
// synthesis; synth/engine.hpp is the consumer).
//
// A Delta is an ordered batch of edit operations addressing ports and
// channels BY NAME -- names are the only identity that survives the dense
// arc renumbering a RemoveArc causes, and they are what edit scripts
// (io/edit_script.hpp, data/edits/) are written in. apply_delta() resolves
// the names, applies the operations in order through the revision-stamped
// ConstraintGraph mutation API, and reports which arcs the batch dirtied
// (post-apply ids) plus the old-id -> new-id remap when arcs were removed.
//
// Atomicity: apply_delta validates against a scratch copy first, so a
// rejected batch (unknown name, duplicate port, non-finite value, ...)
// leaves the input graph completely untouched.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "model/constraint_graph.hpp"

namespace cdcs::model {

struct AddPortOp {
  std::string port;  ///< must not collide with an existing port name
  geom::Point2D position;
};

struct AddArcOp {
  std::string channel;  ///< must not collide with an existing channel name
  std::string source;   ///< port name
  std::string target;   ///< port name
  double bandwidth{0.0};
};

struct RemoveArcOp {
  std::string channel;
};

struct SetBandwidthOp {
  std::string channel;
  double bandwidth{0.0};
};

struct MovePortOp {
  std::string port;
  geom::Point2D to;
};

using EditOp =
    std::variant<AddPortOp, AddArcOp, RemoveArcOp, SetBandwidthOp, MovePortOp>;

/// Human-readable op kind ("add-port", "move-port", ...) for diagnostics.
std::string_view op_kind(const EditOp& op);

/// One atomic batch of edits; synthesis happens between batches, never
/// between the ops of one batch.
struct Delta {
  std::vector<EditOp> ops;

  bool empty() const { return ops.empty(); }
};

/// What a successfully applied batch changed, in post-apply arc ids.
struct DeltaEffect {
  /// Arcs whose pricing inputs changed: added arcs, bandwidth edits, and
  /// every arc incident to a moved port. Sorted ascending, deduplicated.
  std::vector<ArcId> dirty_arcs;
  /// Old arc id -> new arc id (invalid ArcId for removed arcs). Identity
  /// when `structure_changed` is false; sized to the pre-apply arc count.
  std::vector<ArcId> arc_remap;
  /// True when the row set of the covering problem changed (arcs were
  /// added or removed), so no previous cover can be reused as-is.
  bool structure_changed{false};
  std::uint64_t revision_before{0};
  std::uint64_t revision_after{0};
};

/// Applies `delta` to `cg` in op order. On any failure the graph is left
/// unmodified and a kInvalidInput status names the offending op.
support::Expected<DeltaEffect> apply_delta(ConstraintGraph& cg,
                                           const Delta& delta);

}  // namespace cdcs::model
