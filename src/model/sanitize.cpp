#include "model/sanitize.hpp"

#include <cmath>
#include <map>
#include <set>
#include <utility>

namespace cdcs::model {

using support::Expected;
using support::Status;

Status check_graph(const ConstraintGraph& cg) {
  for (VertexId v : cg.ports()) {
    const geom::Point2D p = cg.position(v);
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
      return Status::InvalidInput("port '" + cg.port(v).name +
                                  "' has a non-finite position (" +
                                  std::to_string(p.x) + ", " +
                                  std::to_string(p.y) + ")");
    }
  }
  std::set<std::string> names;
  for (ArcId a : cg.arcs()) {
    const Channel& c = cg.channel(a);
    if (!std::isfinite(c.bandwidth) || c.bandwidth <= 0.0) {
      return Status::InvalidInput("channel '" + c.name +
                                  "' has invalid bandwidth " +
                                  std::to_string(c.bandwidth) +
                                  "; bandwidths must be finite and positive");
    }
    const double geometric = cg.vertex_distance(cg.source(a), cg.target(a));
    if (std::abs(geometric - c.distance) >
        1e-9 * std::max(1.0, geometric)) {
      return Status::InvalidInput(
          "channel '" + c.name + "' cached distance " +
          std::to_string(c.distance) +
          " disagrees with its endpoint positions (" +
          std::to_string(geometric) + ")");
    }
    if (!names.insert(c.name).second) {
      return Status::InvalidInput("duplicate channel name '" + c.name +
                                  "'; channel names identify covering rows "
                                  "and must be unique");
    }
  }
  return Status::Ok();
}

Status check_library(const commlib::Library& library) {
  // Library::validate() already names the offending element in each
  // message; surface the first problem as the diagnosis and the rest as
  // context.
  std::vector<std::string> problems = library.validate();
  if (problems.empty()) return Status::Ok();
  Status s = Status::InvalidInput(std::move(problems.front()));
  for (std::size_t i = 1; i < problems.size(); ++i) {
    s.add_context("also: " + problems[i]);
  }
  return std::move(s).with_context("library '" + library.name() + "'");
}

Status check_inputs(const ConstraintGraph& cg,
                    const commlib::Library& library) {
  if (Status s = check_graph(cg); !s.ok()) {
    return std::move(s).with_context("constraint graph");
  }
  return check_library(library);
}

Expected<ConstraintGraph> sanitize(const ConstraintGraph& cg,
                                   const SanitizeOptions& options,
                                   SanitizeReport* report) {
  SanitizeReport local;
  SanitizeReport& rep = report ? *report : local;

  // Non-finite geometry cannot be repaired: there is no defensible guess.
  for (VertexId v : cg.ports()) {
    const geom::Point2D p = cg.position(v);
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
      return Status::InvalidInput("port '" + cg.port(v).name +
                                  "' has a non-finite position (" +
                                  std::to_string(p.x) + ", " +
                                  std::to_string(p.y) + ")");
    }
  }

  ConstraintGraph out(cg.norm());
  for (VertexId v : cg.ports()) {
    auto added = out.try_add_port(cg.port(v).name, cg.position(v));
    if (!added.ok()) return std::move(added).take_status();
  }

  // Screen channels in input order (so a clean graph copies over with
  // identical arc numbering).
  struct Pending {
    VertexId u, v;
    double bandwidth;
    std::string name;
  };
  std::vector<Pending> pending;
  std::set<std::string> seen_names;
  for (ArcId a : cg.arcs()) {
    const Channel& c = cg.channel(a);
    if (!std::isfinite(c.bandwidth) || c.bandwidth <= 0.0) {
      if (!options.repair) {
        return Status::InvalidInput("channel '" + c.name +
                                    "' has invalid bandwidth " +
                                    std::to_string(c.bandwidth) +
                                    "; bandwidths must be finite and positive");
      }
      if (std::isnan(c.bandwidth)) {
        // NaN is unrecoverable even in repair mode: dropping a constraint
        // would silently under-build the network.
        return Status::InvalidInput(
            "channel '" + c.name +
            "' has NaN bandwidth; cannot repair (no defensible demand)");
      }
      rep.repairs.push_back("dropped channel '" + c.name +
                            "' with non-positive bandwidth " +
                            std::to_string(c.bandwidth));
      continue;
    }
    std::string name = c.name;
    if (!seen_names.insert(name).second) {
      if (!options.repair) {
        return Status::InvalidInput("duplicate channel name '" + name +
                                    "'; channel names identify covering rows "
                                    "and must be unique");
      }
      std::string unique = name;
      int suffix = 2;
      while (!seen_names.insert(unique = name + "#" +
                                         std::to_string(suffix)).second) {
        ++suffix;
      }
      rep.repairs.push_back("renamed duplicate channel '" + name + "' to '" +
                            unique + "'");
      name = unique;
    }
    pending.push_back(
        Pending{cg.source(a), cg.target(a), c.bandwidth, std::move(name)});
  }

  // Repair-mode normalization: merge parallel channels (same ordered port
  // pair) into the first occurrence, summing bandwidth.
  if (options.repair && options.merge_parallel_channels) {
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> first_at;
    std::vector<Pending> merged;
    std::map<std::size_t, std::vector<std::string>> absorbed;
    for (Pending& p : pending) {
      const auto key = std::make_pair(p.u.value, p.v.value);
      const auto it = first_at.find(key);
      if (it == first_at.end()) {
        first_at.emplace(key, merged.size());
        merged.push_back(std::move(p));
      } else {
        merged[it->second].bandwidth += p.bandwidth;
        absorbed[it->second].push_back(p.name);
      }
    }
    for (const auto& [idx, names] : absorbed) {
      std::string members = "'" + merged[idx].name + "'";
      for (const std::string& n : names) members += ", '" + n + "'";
      rep.repairs.push_back(
          "merged " + std::to_string(names.size() + 1) +
          " parallel channels (" + members + ") from '" +
          cg.port(merged[idx].u).name + "' to '" + cg.port(merged[idx].v).name +
          "' into one channel of bandwidth " +
          std::to_string(merged[idx].bandwidth));
    }
    pending = std::move(merged);
  }

  for (Pending& p : pending) {
    auto added = out.try_add_channel(p.u, p.v, p.bandwidth, std::move(p.name));
    if (!added.ok()) return std::move(added).take_status();
  }
  return out;
}

}  // namespace cdcs::model
