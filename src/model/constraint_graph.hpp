// The communication constraint graph G = G(V, A) of Definition 2.1.
//
// Vertices are ports of computational modules with a position p(v); directed
// arcs are point-to-point unidirectional channels with the two arc properties
// d(a) (distance, always derived from the endpoint positions under the
// graph's norm, keeping the Def 2.1 consistency requirement true by
// construction) and b(a) (required bandwidth).
//
// Mutation & revisions: besides append-only construction, the graph supports
// in-place edits (set_bandwidth, move_port) and channel removal
// (erase_channels, which renumbers the surviving arcs densely). Every
// successful mutation bumps a monotonically increasing revision() stamp, and
// each arc remembers the revision of the last edit that changed one of its
// pricing inputs (endpoint positions, bandwidth) in arc_revision(). This is
// what lets an incremental synthesis session (synth/engine.hpp) tell exactly
// which arcs an edit batch dirtied and reuse everything else.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/norm.hpp"
#include "geom/point.hpp"
#include "graph/digraph.hpp"
#include "support/status.hpp"

namespace cdcs::model {

using graph::ArcId;
using graph::VertexId;

struct Port {
  std::string name;
  geom::Point2D position;
};

struct Channel {
  std::string name;       ///< e.g. "a4"; defaults to "a<index+1>"
  double bandwidth{0.0};  ///< b(a), in the library's bandwidth unit
  double distance{0.0};   ///< d(a) = ||p(u) - p(v)||, derived, cached
};

class ConstraintGraph {
 public:
  explicit ConstraintGraph(geom::Norm norm = geom::Norm::kEuclidean)
      : norm_(norm) {}

  geom::Norm norm() const { return norm_; }

  /// Non-throwing construction: rejects non-finite positions with a
  /// structured kInvalidInput diagnosis. Primary API for code fed by
  /// external input (parsers, sanitization).
  support::Expected<VertexId> try_add_port(std::string name,
                                           geom::Point2D position);

  /// Non-throwing construction: rejects non-finite or non-positive
  /// bandwidths, out-of-range vertex ids, and self-loops.
  support::Expected<ArcId> try_add_channel(VertexId u, VertexId v,
                                           double bandwidth,
                                           std::string name = {});

  /// Legacy convenience wrapper over try_add_port; throws StatusError on a
  /// rejected port. Prefer try_add_port when the input is untrusted.
  VertexId add_port(std::string name, geom::Point2D position);

  /// Adds a channel u -> v with required bandwidth b(a) > 0. The distance
  /// d(a) is computed from the endpoint positions. `name` defaults to
  /// "a<k>" with k the 1-based arc index (the paper's numbering). Legacy
  /// wrapper over try_add_channel; throws StatusError on rejection.
  ArcId add_channel(VertexId u, VertexId v, double bandwidth,
                    std::string name = {});

  std::size_t num_ports() const { return g_.num_vertices(); }
  std::size_t num_channels() const { return g_.num_arcs(); }

  const Port& port(VertexId v) const { return g_.vertex(v); }
  const Channel& channel(ArcId a) const { return g_.arc(a).payload; }

  geom::Point2D position(VertexId v) const { return g_.vertex(v).position; }
  VertexId source(ArcId a) const { return g_.source(a); }
  VertexId target(ArcId a) const { return g_.target(a); }
  double distance(ArcId a) const { return channel(a).distance; }
  double bandwidth(ArcId a) const { return channel(a).bandwidth; }

  /// All arc ids in insertion order (the paper indexes arcs a1..a|A| this way).
  std::vector<ArcId> arcs() const;
  std::vector<VertexId> ports() const;

  /// Arcs incident to `v` (out first, then in), in insertion order.
  std::vector<ArcId> incident_arcs(VertexId v) const;

  // --- Revision-stamped in-place edits (delta API; see model/delta.hpp) ---

  /// Monotonic edit counter: 0 for an empty graph, bumped by every
  /// successful mutation (including construction-time adds).
  std::uint64_t revision() const { return revision_; }

  /// Revision of the last edit that changed this arc's pricing inputs
  /// (its endpoints' positions or its bandwidth); the revision at which the
  /// arc was added when never edited since.
  std::uint64_t arc_revision(ArcId a) const {
    return arc_revisions_.at(a.index());
  }

  /// Changes b(a) in place. Rejects non-finite or non-positive bandwidths
  /// and invalid arc ids without modifying the graph.
  support::Status set_bandwidth(ArcId a, double bandwidth);

  /// Moves a port to a new position, recomputing d(a) for (and stamping)
  /// every incident arc. Rejects non-finite positions and invalid ids.
  support::Status move_port(VertexId v, geom::Point2D position);

  /// Removes the given channels, renumbering the survivors densely while
  /// preserving their relative insertion order, names, payloads, and
  /// revision stamps (ports are untouched). Returns the old-arc-id ->
  /// new-arc-id map (invalid ArcId for removed arcs). Rejects invalid or
  /// duplicate ids without modifying the graph.
  support::Expected<std::vector<ArcId>> erase_channels(
      const std::vector<ArcId>& remove);

  /// Distance between two vertices under this graph's norm.
  double vertex_distance(VertexId u, VertexId v) const {
    return geom::distance(position(u), position(v), norm_);
  }

  /// Def 2.1 sanity: positive bandwidths, finite positions, cached distances
  /// consistent with positions. Returns human-readable violations.
  std::vector<std::string> validate() const;

 private:
  geom::Norm norm_;
  graph::Digraph<Port, Channel> g_;
  std::uint64_t revision_{0};
  std::vector<std::uint64_t> arc_revisions_;  ///< parallel to arc ids
};

}  // namespace cdcs::model
